// Package repro is a from-scratch Go reproduction of "PID-Comm: A Fast
// and Flexible Collective Communication Framework for Commodity
// Processing-in-DIMM Devices" (ISCA 2024), including the UPMEM-like
// PIM-DIMM substrate it runs on.
//
// # Layout
//
// The public API is package pidcomm; everything else is internal:
//
//	pidcomm             stable surface: Machine/Tenant sessions, the
//	                    Collective descriptor with its three entry
//	                    points (Run/Compile/Submit), compiled plans,
//	                    async futures
//	internal/core       the engine: hypercube model, Collective
//	                    normalization, schedule IR, functional +
//	                    cost-only backends, compiled plans, level
//	                    autotuner, tenant arenas + weighted-fair
//	                    submission scheduling
//	internal/dram       the DIMM hierarchy, entangled-group striping,
//	                    per-bank arena carving
//	internal/host       the host CPU: bulk/staged and burst/streaming
//	                    transfer paths, domain transfer, charge seams
//	internal/dpu        the per-bank PEs and the kernel launch engine
//	internal/cost       the parametric timing model: meter, breakdowns,
//	                    overlap-aware timeline
//	internal/elem, vec  element types/operators and the 64-byte register
//	                    model
//	internal/apps       the five application studies (DLRM, GNN, BFS,
//	                    CC, MLP), bit-exact vs CPU references
//	internal/multihost  the multi-host extension study (§ IX-A)
//	internal/bench      the evaluation harness (one experiment per paper
//	                    artifact, plus replay and async experiments)
//	internal/fuzz       randomized cross-level consistency checking
//
// Commands: cmd/pidbench regenerates the paper's tables and figures,
// cmd/pidinfo prints configuration/support matrices and plan-cache
// statistics, cmd/pidtrace prints bus-traffic statistics, cmd/pidlayout
// visualizes hypercube mappings, cmd/pidfuzz runs the fuzzer.
//
// Start with the README (architecture diagram, quickstart, async usage),
// then the pidcomm godoc. The root package exists to host bench_test.go,
// which exposes one testing.B benchmark per paper artifact, and
// docs_test.go, which gates CI on every package staying documented.
package repro
