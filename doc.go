// Package repro is a from-scratch Go reproduction of "PID-Comm: A Fast
// and Flexible Collective Communication Framework for Commodity
// Processing-in-DIMM Devices" (ISCA 2024), including the UPMEM-like
// PIM-DIMM substrate it runs on.
//
// Start with the README, the public API in package pidcomm, and
// cmd/pidbench for regenerating the paper's tables and figures. The root
// package exists to host bench_test.go, which exposes one testing.B
// benchmark per paper artifact.
package repro
