// DLRM example: recommendation-model inference over a 3-D hypercube
// (§ VII-A, Figure 11): embedding tables split across tables (z), rows
// (y) and embedding columns (x); each batch flows through AlltoAll(xyz),
// lookup, ReduceScatter(y), AlltoAll(xz) and the top MLP.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/dlrm"
	"repro/internal/core"
)

func main() {
	cfg := dlrm.Config{
		Tables: 8, RowsPerTable: 2048, EmbDim: 16, Batch: 1024,
		X: 2, Y: 2, Z: 8, TopOut: 32, TopLayers: 2, Batches: 4, Seed: 3,
	}
	fmt.Printf("DLRM: %d tables x %d rows x dim %d, batch %d x %d, hypercube [%d %d %d]\n",
		cfg.Tables, cfg.RowsPerTable, cfg.EmbDim, cfg.Batch, cfg.Batches, cfg.X, cfg.Y, cfg.Z)

	want, cpuT, err := dlrm.RunCPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, lvl := range []core.Level{core.Baseline, core.CM} {
		got, prof, err := dlrm.RunPIM(cfg, lvl)
		if err != nil {
			log.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				log.Fatalf("%v: output mismatch at %d", lvl, i)
			}
		}
		name := "Base    "
		if lvl != core.Baseline {
			name = "PID-Comm"
		}
		fmt.Printf("%s  total %7.2f ms   %v\n", name, float64(prof.Total())*1e3, prof)
	}
	fmt.Printf("CPU-only reference: %.2f ms\n", float64(cpuT)*1e3)
	fmt.Println("outputs bit-exact against the CPU reference")
}
