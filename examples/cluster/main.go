// Cluster example (§ IX-A, Figure 23(b)): hosts driving their own
// PIM-enabled DIMMs cooperate over an MPI-like network. A cluster
// collective treats all H×P PEs as one flat communicator and is lowered
// — per host — into a single schedule-IR plan, so it compiles, caches,
// fuses and replays exactly like a single-machine collective.
//
// Part 1 runs a functional 2-host cluster on real data and checks the
// global AllReduce result. Part 2 sweeps host counts on the cost-only
// backend, comparing the hierarchical lowering (local reduce →
// inter-host ring → local broadcast) against the naive flat emulation
// that ships every PE's raw data to a root host, then re-prices the
// winner on a 100 Gbps, 4-NIC fabric by overriding cost.NetParams.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/pidcomm"
)

func main() {
	// --- Part 1: functional cluster, real data -------------------------
	geo := pidcomm.Geometry{Channels: 1, RanksPerChannel: 2, BanksPerChip: 8, MramPerBank: 1 << 18}
	cl, err := pidcomm.NewCluster(2, geo, []int{geo.NumPEs()})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := cl.Comm()
	if err != nil {
		log.Fatal(err)
	}
	G := cl.NumPEs()
	m := 8 * G // per-PE bytes; AllReduce needs a multiple of 8×(global ranks)
	ones := make([]byte, m)
	for i := 0; i < m; i += 4 {
		binary.LittleEndian.PutUint32(ones[i:], 1)
	}
	for h := 0; h < cl.NumHosts(); h++ {
		for p := 0; p < cl.PEsPerHost(); p++ {
			sess.Host(h).SetPEBuffer(p, 0, ones)
		}
	}
	bd, err := sess.Run(pidcomm.ClusterCollective{Collective: pidcomm.Collective{
		Prim: pidcomm.AllReduce, Dims: "1",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
		Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.CM,
	}})
	if err != nil {
		log.Fatal(err)
	}
	got := binary.LittleEndian.Uint32(sess.Host(1).GetPEBuffer(0, 2*m, 4))
	if got != uint32(G) {
		log.Fatalf("global AllReduce: element = %d, want %d", got, G)
	}
	fmt.Printf("2 hosts x %d PEs, functional: every element summed to %d across all %d PEs; "+
		"AllReduce %6.3f ms (network %4.1f%%)\n\n",
		cl.PEsPerHost(), got, G, float64(bd.Total())*1e3,
		100*float64(bd.Get(cost.Network))/float64(bd.Total()))

	// --- Part 2: cost-only sweep, hierarchical vs flat -----------------
	// Cost-only clusters move no bytes (payload regions are priced, not
	// populated), so host counts that would never fit in memory sweep in
	// milliseconds.
	sweep := pidcomm.Geometry{Channels: 1, RanksPerChannel: 4, BanksPerChip: 8, MramPerBank: 1 << 18}
	perPE := 16 << 10
	fmt.Println("cost-only global AllReduce, 16 KiB/PE, 10 Gbps (paper operating point):")
	for _, hosts := range []int{4, 16, 64} {
		hier := measure(hosts, sweep, perPE, pidcomm.DefaultParams(), false)
		flat := measure(hosts, sweep, perPE, pidcomm.DefaultParams(), true)
		fmt.Printf("  %3d hosts: hierarchical %8.3f ms, flat %9.3f ms  (%.1fx)\n",
			hosts, float64(hier.Total())*1e3, float64(flat.Total())*1e3,
			float64(flat.Total())/float64(hier.Total()))
	}

	// Re-price a bandwidth-bound payload (4 MiB/PE — the ring ships about
	// 2×perPE over the wire) on a faster fabric: every cost.NetParams knob
	// moves the network leg analytically.
	big := pidcomm.Geometry{Channels: 1, RanksPerChannel: 4, BanksPerChip: 8, MramPerBank: 16 << 20}
	bigPerPE := 4 << 20
	p := pidcomm.DefaultParams()
	p.Net.LinkBW = 100e9 / 8 // 100 Gbps links...
	p.Net.NICsPerHost = 4    // ...four per host
	slow := measure(64, big, bigPerPE, pidcomm.DefaultParams(), false)
	fast := measure(64, big, bigPerPE, p, false)
	fmt.Printf("\n64 hosts, 4 MiB/PE: 10 Gbps x1 %8.3f ms -> 100 Gbps x4 %8.3f ms (network %6.3f -> %6.3f ms)\n",
		float64(slow.Total())*1e3, float64(fast.Total())*1e3,
		float64(slow.Get(cost.Network))*1e3, float64(fast.Get(cost.Network))*1e3)
}

// measure prices one global AllReduce of perPE bytes per PE on a fresh
// cost-only cluster.
func measure(hosts int, geo pidcomm.Geometry, perPE int, p pidcomm.Params, flat bool) pidcomm.Breakdown {
	cl, err := pidcomm.NewCluster(hosts, geo, []int{geo.NumPEs()},
		pidcomm.CostOnly(), pidcomm.WithParams(p))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := cl.Comm()
	if err != nil {
		log.Fatal(err)
	}
	P := cl.PEsPerHost()
	m := perPE / (8 * P) * (8 * P) // local legs split m into 8-byte blocks per local rank
	if m == 0 {
		m = 8 * P
	}
	bd, err := sess.Run(pidcomm.ClusterCollective{Collective: pidcomm.Collective{
		Prim: pidcomm.AllReduce, Dims: "1",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
		Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.CM,
	}, Flat: flat})
	if err != nil {
		log.Fatal(err)
	}
	return bd
}
