// GNN example: train-free 3-layer graph neural network inference over a
// 2-D hypercube of PEs (§ VII-B), comparing the conventional baseline
// against PID-Comm for both communication strategies (RS&AR and AR&AG),
// and validating the integer results against the CPU reference.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/gnn"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/elem"
)

func main() {
	in := data.GNNInput{Name: "demo", Graph: data.RMAT(2048, 8192, 7), F: 64}
	cfg := gnn.Config{Input: &in, Rows: 8, Cols: 8, Layers: 3, Elem: elem.I32, Seed: 9}

	want, cpuT, err := gnn.RunCPU(cfg, gnn.RSAR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d features; 8x8 PE grid\n",
		in.Graph.V, in.Graph.NumEdges(), in.F)
	fmt.Printf("CPU-only reference: %.2f ms\n\n", float64(cpuT)*1e3)

	for _, variant := range []gnn.Variant{gnn.RSAR, gnn.ARAG} {
		for _, lvl := range []core.Level{core.Baseline, core.CM} {
			got, prof, err := gnn.RunPIM(cfg, variant, lvl)
			if err != nil {
				log.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					log.Fatalf("%v/%v: mismatch at %d", variant, lvl, i)
				}
			}
			name := "Base    "
			if lvl != core.Baseline {
				name = "PID-Comm"
			}
			fmt.Printf("%v %s  total %7.2f ms   %s\n", variant, name,
				float64(prof.Total())*1e3, prof)
		}
	}
	fmt.Println("\nall variants bit-exact against the CPU reference")
}
