// Quickstart: create a simulated PIM-enabled DIMM system, define a 2-D
// virtual hypercube over its PEs, run one multi-instance AlltoAll along
// the x axis at every optimization level, and compare the simulated
// communication times (the Figure 16 ablation in miniature).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/pidcomm"
)

func main() {
	// One channel, two ranks: 128 PEs with 64 KiB MRAM each.
	sys, err := pidcomm.NewSystem(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 2, BanksPerChip: 8, MramPerBank: 64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := pidcomm.NewHypercubeManager(sys, []int{16, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hypercube %v over %d PEs; dims \"10\" forms %d AlltoAll instances\n",
		mgr.Shape(), 128, 8)

	const blk = 1024   // bytes per block: the paper's operating regime
	const m = 16 * blk // 16 ranks per group
	rng := rand.New(rand.NewSource(42))
	// fill returns the per-PE inputs it wrote; the optimized collectives
	// consume the source region (PE-assisted reordering is in place).
	fill := func(comm *pidcomm.Comm) [][]byte {
		in := make([][]byte, 128)
		for pe := range in {
			in[pe] = make([]byte, m)
			rng.Read(in[pe])
			comm.SetPEBuffer(pe, 0, in[pe])
		}
		return in
	}

	for _, lvl := range []pidcomm.Level{pidcomm.Baseline, pidcomm.PR, pidcomm.IM, pidcomm.CM} {
		comm := mgr.Comm()
		fill(comm)
		bd, err := comm.AlltoAll("10", 0, 2*m, m, lvl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5v %8.1f us  (%s)\n", lvl, float64(bd.Total())*1e6, bd)
	}

	// The Auto pseudo-level resolves to the cheapest applicable level via
	// a cost-only dry run (cached per call signature).
	{
		comm := mgr.Comm()
		fill(comm)
		bd, err := comm.AlltoAll("10", 0, 2*m, m, pidcomm.Auto)
		if err != nil {
			log.Fatal(err)
		}
		picked, err := comm.AutoLevel(pidcomm.AlltoAll, "10", m, pidcomm.I32, pidcomm.Sum)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Auto  %8.1f us  (picked %v)\n", float64(bd.Total())*1e6, picked)
	}

	// Semantics check through the reference model.
	comm := mgr.Comm()
	all := fill(comm)
	if _, err := comm.AlltoAll("10", 0, 2*m, m, pidcomm.CM); err != nil {
		log.Fatal(err)
	}
	groups, _ := mgr.Groups("10")
	grp := groups[0]
	in := make([][]byte, len(grp))
	for i, pe := range grp {
		in[i] = all[pe]
	}
	want := core.RefAlltoAll(in, blk)
	for j, pe := range grp {
		got := comm.GetPEBuffer(pe, 2*m, m)
		for i := range got {
			if got[i] != want[j][i] {
				log.Fatalf("verification failed at PE %d byte %d", pe, i)
			}
		}
	}
	fmt.Println("result verified against the reference model")
}
