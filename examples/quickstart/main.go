// Quickstart: build a simulated PIM-enabled DIMM machine, define a 2-D
// virtual hypercube over its PEs, run one multi-instance AlltoAll along
// the x axis at every optimization level, and compare the simulated
// communication times (the Figure 16 ablation in miniature). Every
// collective is described by a pidcomm.Collective and executed with
// Run — the descriptor's zero-value Level is the Auto autotuner.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/pidcomm"
)

func main() {
	// One channel, two ranks: 128 PEs with 64 KiB MRAM each.
	mach, err := pidcomm.NewMachine(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 2, BanksPerChip: 8, MramPerBank: 64 << 10,
	}, []int{16, 8})
	if err != nil {
		log.Fatal(err)
	}
	comm, err := mach.Comm()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hypercube %v over %d PEs; dims \"10\" forms %d AlltoAll instances\n",
		mach.Shape(), mach.NumPEs(), 8)

	const blk = 1024   // bytes per block: the paper's operating regime
	const m = 16 * blk // 16 ranks per group
	rng := rand.New(rand.NewSource(42))
	// fill returns the per-PE inputs it wrote; the optimized collectives
	// consume the source region (PE-assisted reordering is in place), so
	// every level starts from a fresh fill.
	fill := func() [][]byte {
		in := make([][]byte, 128)
		for pe := range in {
			in[pe] = make([]byte, m)
			rng.Read(in[pe])
			comm.SetPEBuffer(pe, 0, in[pe])
		}
		return in
	}
	aa := pidcomm.Collective{
		Prim: pidcomm.AlltoAll, Dims: "10",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
	}

	for _, lvl := range []pidcomm.Level{pidcomm.Baseline, pidcomm.PR, pidcomm.IM, pidcomm.CM} {
		fill()
		d := aa
		d.Level = lvl
		bd, err := comm.Run(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5v %8.1f us  (%s)\n", lvl, float64(bd.Total())*1e6, bd)
	}

	// The Auto pseudo-level — the descriptor's zero value — resolves to
	// the cheapest applicable level via a cost-only dry run (cached per
	// call signature).
	{
		fill()
		bd, err := comm.Run(aa) // Level unset: Auto
		if err != nil {
			log.Fatal(err)
		}
		picked, err := comm.AutoLevel(aa)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Auto  %8.1f us  (picked %v)\n", float64(bd.Total())*1e6, picked)
	}

	// Semantics check through the reference model.
	all := fill()
	d := aa
	d.Level = pidcomm.CM
	if _, err := comm.Run(d); err != nil {
		log.Fatal(err)
	}
	groups, _ := mach.Groups("10")
	grp := groups[0]
	in := make([][]byte, len(grp))
	for i, pe := range grp {
		in[i] = all[pe]
	}
	want := core.RefAlltoAll(in, blk)
	for j, pe := range grp {
		got := comm.GetPEBuffer(pe, 2*m, m)
		for i := range got {
			if got[i] != want[j][i] {
				log.Fatalf("verification failed at PE %d byte %d", pe, i)
			}
		}
	}
	fmt.Println("result verified against the reference model")
}
