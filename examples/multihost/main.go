// Multi-host example (§ IX-A, Figure 23(b)): two hosts, each driving its
// own channel of PIM-enabled DIMMs, cooperate over a 10 Gbps link. A
// global AllReduce sends only locally-reduced data across the wire, so
// the network share stays small; a global AlltoAll must move (H-1)/H of
// all data and pays much more.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
	"repro/internal/multihost"
)

func main() {
	geo := dram.Geometry{Channels: 1, RanksPerChannel: 2, BanksPerChip: 8, MramPerBank: 1 << 18}
	for _, hosts := range []int{1, 2, 4} {
		cl, err := multihost.New(hosts, geo, cost.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		P := cl.PEsPerHost()
		m := P * 512
		rng := rand.New(rand.NewSource(11))
		buf := make([]byte, m)
		for h := 0; h < hosts; h++ {
			for p := 0; p < P; p++ {
				rng.Read(buf)
				cl.Host(h).SetPEBuffer(p, 0, buf)
			}
		}
		bd, err := cl.AllReduce(0, 2*m, m, elem.I32, elem.Sum, core.CM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d host(s) x %d PEs: AllReduce %7.3f ms (network %5.1f%%)\n",
			hosts, P, float64(bd.Total())*1e3,
			100*float64(bd.Get(cost.Network))/float64(bd.Total()))
	}
}
