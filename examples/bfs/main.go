// BFS example (§ VII-C): level-synchronous breadth-first search where
// every iteration's frontier bitmaps are combined with an OR AllReduce.
// Compares the conventional communication design against PID-Comm and
// validates distances against the CPU reference.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/bfs"
	"repro/internal/core"
	"repro/internal/data"
)

func main() {
	cfg := bfs.Config{Graph: data.RMAT(1<<14, 1<<17, 99), PEs: 128, Source: 3}
	fmt.Printf("BFS over %d vertices / %d edges on %d PEs, source %d\n",
		cfg.Graph.V, cfg.Graph.NumEdges(), cfg.PEs, cfg.Source)

	want, cpuT, err := bfs.RunCPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	maxD := int32(0)
	for _, d := range want {
		if d >= 0 {
			reached++
			if d > maxD {
				maxD = d
			}
		}
	}
	fmt.Printf("reachable: %d vertices, eccentricity %d; CPU-only: %.2f ms\n\n",
		reached, maxD, float64(cpuT)*1e3)

	for _, lvl := range []core.Level{core.Baseline, core.CM} {
		dist, prof, err := bfs.RunPIM(cfg, lvl)
		if err != nil {
			log.Fatal(err)
		}
		for v := range dist {
			if dist[v] != want[v] {
				log.Fatalf("%v: distance mismatch at vertex %d", lvl, v)
			}
		}
		name := "Base    "
		if lvl != core.Baseline {
			name = "PID-Comm"
		}
		fmt.Printf("%s  total %7.2f ms   AllReduce %6.2f ms   kernel %6.2f ms\n",
			name, float64(prof.Total())*1e3,
			float64(prof.ByPrimitive[core.AllReduce])*1e3,
			float64(prof.KernelTime)*1e3)
	}
	fmt.Println("\ndistances bit-exact against the CPU reference")
}
