package cost

// NetParams models the inter-host network of a cluster (§ IX-A): every
// host drives one or more NICs into a flat link or a small switched
// fabric. The model is deliberately deterministic — no random jitter —
// so cluster collectives replay bit-identically: skew is a fixed
// worst-case bound added to every round, the style of knob scale-out
// comms configs expose.
//
// The time of one overlapped exchange round in which every host moves
// bytes payload bytes is
//
//	LinkLatency + SwitchTiers*SwitchLatency + Skew
//	    + bytes / (LinkBW * Efficiency * NICsPerHost)
//
// (see RoundTime). Pairwise transfers of distinct host pairs overlap, as
// MPI point-to-points do, so a collective charges RoundTime once per
// round, not once per pair.
type NetParams struct {
	// LinkBW is the raw per-NIC link bandwidth in bytes/second (the
	// paper controls MPI bandwidth to 10 Gbps Ethernet).
	LinkBW float64

	// LinkLatency is the base one-way latency of a message on the link.
	LinkLatency Seconds

	// Efficiency derates LinkBW for protocol overhead (headers, MPI
	// envelope, pacing); 1 means the full link rate is achieved.
	Efficiency float64

	// NICsPerHost is the number of network interfaces a host stripes a
	// round's payload across.
	NICsPerHost int

	// SwitchTiers is the number of switch hops between two hosts (0
	// models a flat point-to-point harness); each tier adds
	// SwitchLatency to every round.
	SwitchTiers int

	// SwitchLatency is the per-tier store-and-forward latency.
	SwitchLatency Seconds

	// Skew is a deterministic per-round synchronization slack: the fixed
	// worst-case arrival spread between hosts entering a round. It is a
	// constant — never drawn from a distribution — so cost breakdowns
	// stay bit-reproducible.
	Skew Seconds
}

// DefaultNetParams returns the calibrated defaults of the multi-host
// study: one NIC per host on 10 Gbps Ethernet with 25 us latency, no
// switch tier, no skew — exactly the hard-coded pair the model replaces,
// so existing baselines are unchanged.
func DefaultNetParams() NetParams {
	return NetParams{
		LinkBW:        10e9 / 8, // 10 Gbps
		LinkLatency:   25e-6,
		Efficiency:    1.0,
		NICsPerHost:   1,
		SwitchTiers:   0,
		SwitchLatency: 5e-6,
		Skew:          0,
	}
}

// GoodputBW returns the effective per-host bandwidth in bytes/second:
// the raw link rate derated by Efficiency and striped across NICs.
func (n NetParams) GoodputBW() float64 {
	return n.LinkBW * n.Efficiency * float64(n.NICsPerHost)
}

// RoundLatency returns the fixed per-round cost: link latency, switch
// traversals and the deterministic skew bound.
func (n NetParams) RoundLatency() Seconds {
	return n.LinkLatency + Seconds(n.SwitchTiers)*n.SwitchLatency + n.Skew
}

// RoundTime returns the simulated time of one overlapped exchange round
// in which every host moves bytes payload bytes.
func (n NetParams) RoundTime(bytes int64) Seconds {
	return n.RoundLatency() + Seconds(float64(bytes)/n.GoodputBW())
}

// Validate reports whether the network parameters are physically
// meaningful.
func (n NetParams) Validate() error {
	checks := []struct {
		ok   bool
		what string
	}{
		{n.LinkBW > 0, "Net.LinkBW"},
		{n.LinkLatency >= 0, "Net.LinkLatency"},
		{n.Efficiency > 0 && n.Efficiency <= 1, "Net.Efficiency"},
		{n.NICsPerHost > 0, "Net.NICsPerHost"},
		{n.SwitchTiers >= 0, "Net.SwitchTiers"},
		{n.SwitchLatency >= 0, "Net.SwitchLatency"},
		{n.Skew >= 0, "Net.Skew"},
	}
	for _, c := range checks {
		if !c.ok {
			return &ParamError{Field: c.what}
		}
	}
	return nil
}
