package cost

import (
	"math/rand"
	"testing"
)

func TestLaneOf(t *testing.T) {
	want := map[Category]Lane{
		DomainTransfer: LaneCPU,
		HostMod:        LaneCPU,
		HostMem:        LaneCPU,
		Other:          LaneCPU,
		PEMem:          LaneBus,
		Network:        LaneNet,
		PEMod:          LanePE,
		Kernel:         LanePE,
	}
	for _, c := range Categories() {
		if got := LaneOf(c); got != want[c] {
			t.Errorf("LaneOf(%v) = %v, want %v", c, got, want[c])
		}
	}
}

func TestSegmentsOfCoalesces(t *testing.T) {
	adds := []TraceEntry{
		{PEMod, 1}, {Other, 2}, {HostMod, 3}, {PEMem, 4}, {Network, 5}, {Kernel, 0}, {Kernel, 6},
	}
	segs := SegmentsOf(adds)
	want := []Segment{{LanePE, 1}, {LaneCPU, 5}, {LaneBus, 4}, {LaneNet, 5}, {LanePE, 6}}
	if len(segs) != len(want) {
		t.Fatalf("got %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d: got %v, want %v", i, segs[i], want[i])
		}
	}
}

// Two independent plans of shape [PE p][Bus b][PE p] overlap: the second
// plan's leading PE segment backfills the gap under the first plan's bus
// epoch.
func TestTimelineOverlapsIndependentPlans(t *testing.T) {
	plan := []Segment{{LanePE, 1}, {LaneBus, 4}, {LanePE, 1}}
	var tl Timeline
	s1, f1 := tl.Place(0, plan)
	if s1 != 0 || f1 != 6 {
		t.Fatalf("first plan: [%v,%v), want [0,6)", s1, f1)
	}
	s2, f2 := tl.Place(0, plan)
	// PE lead-in backfills at t=1, bus queues behind the first epoch.
	if s2 != 1 {
		t.Errorf("second plan start = %v, want 1 (backfilled under first bus epoch)", s2)
	}
	if f2 >= 12 {
		t.Errorf("second plan finish = %v, want < 12 (serial)", f2)
	}
	if tl.Elapsed() != f2 {
		t.Errorf("Elapsed = %v, want %v", tl.Elapsed(), f2)
	}
}

func TestTimelineSerialIsSum(t *testing.T) {
	plan := []Segment{{LanePE, 1}, {LaneBus, 4}, {LaneCPU, 2}}
	var tl Timeline
	tl.PlaceSerial(plan)
	tl.PlaceSerial(plan)
	if got, want := tl.Elapsed(), Seconds(14); got != want {
		t.Fatalf("serial elapsed = %v, want %v", got, want)
	}
}

// Async placement never exceeds serial placement, and a later earliest
// bound is respected.
func TestTimelinePlaceNeverExceedsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var plans [][]Segment
		var serialTotal Seconds
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			var p []Segment
			for s := 0; s < 1+rng.Intn(5); s++ {
				seg := Segment{Lane(rng.Intn(int(NumLanes))), Seconds(rng.Float64() * 3)}
				p = append(p, seg)
				serialTotal += seg.Dur
			}
			plans = append(plans, p)
		}
		var tl Timeline
		for _, p := range plans {
			if _, f := tl.Place(0, p); f > serialTotal+1e-12 {
				t.Fatalf("trial %d: finish %v exceeds serial total %v", trial, f, serialTotal)
			}
		}
		if tl.Elapsed() > serialTotal+1e-12 {
			t.Fatalf("trial %d: makespan %v exceeds serial total %v", trial, tl.Elapsed(), serialTotal)
		}
	}
}

// Clone must deep-copy the per-lane interval sets: placements on the
// clone (whose insert-shift mutates the backing arrays) must not leak
// into the original, and vice versa — the contract the lookahead
// scheduler's scoring relies on.
func TestTimelineCloneIsIndependent(t *testing.T) {
	var tl Timeline
	tl.Place(0, []Segment{{LanePE, 1}, {LaneBus, 4}, {LanePE, 1}})
	before := tl.Elapsed()

	cl := tl.Clone()
	if cl.Elapsed() != before {
		t.Fatalf("clone elapsed %v, want %v", cl.Elapsed(), before)
	}
	// Backfill a gap on the clone: insert-shifts the busy sets.
	cl.Place(0, []Segment{{LanePE, 1}, {LaneBus, 4}, {LanePE, 1}})
	cl.Place(0, []Segment{{LaneCPU, 2}, {LaneBus, 1}})
	if tl.Elapsed() != before {
		t.Errorf("placing on the clone moved the original: %v, want %v", tl.Elapsed(), before)
	}
	after := cl.Elapsed()
	s, f := tl.Place(0, []Segment{{LaneCPU, 1}, {LaneBus, 2}})
	if cl.Elapsed() != after {
		t.Errorf("placing on the original moved the clone: %v, want %v", cl.Elapsed(), after)
	}
	// The original still backfills its own gaps as if never cloned: the
	// CPU lead-in lands at t=0 and the bus segment queues behind the
	// original's lone bus epoch [1,5).
	if s != 0 || f != 7 {
		t.Errorf("original placement [%v,%v), want [0,7)", s, f)
	}
}

func TestTimelineEarliestBound(t *testing.T) {
	var tl Timeline
	tl.Place(0, []Segment{{LaneBus, 5}})
	s, _ := tl.Place(7, []Segment{{LanePE, 1}})
	if s != 7 {
		t.Fatalf("start = %v, want 7 (earliest bound)", s)
	}
	tl.Reset()
	if tl.Elapsed() != 0 {
		t.Fatalf("Reset did not clear the timeline")
	}
}
