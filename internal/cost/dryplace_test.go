package cost

import "testing"

func TestPipelinedMakespan(t *testing.T) {
	// A single-lane trace cannot pipeline: depth copies serialize on the
	// lane, so the makespan is depth times the serial time.
	mono := []Segment{{Lane: LaneCPU, Dur: 3}}
	if got := PipelinedMakespan(mono, 4); got != 12 {
		t.Fatalf("single-lane makespan = %v, want 12", got)
	}
	// A perfectly balanced two-lane trace pipelines: copy k's CPU segment
	// overlaps copy k-1's bus segment, so depth copies finish in
	// (depth+1) stage times, not 2*depth.
	duo := []Segment{{Lane: LaneCPU, Dur: 3}, {Lane: LaneBus, Dur: 3}}
	serial := PipelinedMakespan(duo, 1)
	if serial != 6 {
		t.Fatalf("solo placement = %v, want 6 (the meter total)", serial)
	}
	if got := PipelinedMakespan(duo, 4); got != 15 {
		t.Fatalf("pipelined makespan = %v, want 15", got)
	}
	// The pipelined score ranks a lane-balanced trace ahead of a
	// meter-cheaper single-lane one — the inversion the makespan
	// objective exists to catch.
	cheap := []Segment{{Lane: LaneCPU, Dur: 5}}
	if PipelinedMakespan(cheap, 4) <= PipelinedMakespan(duo, 4) {
		t.Fatal("expected the balanced trace to win under pipelining")
	}
	if got := PipelinedMakespan(nil, 4); got != 0 {
		t.Fatalf("empty trace makespan = %v, want 0", got)
	}
}
