package cost

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Category classifies where simulated time is spent. The set mirrors the
// breakdown categories of Figure 17 (Domain Transfer, Host-side Modulation,
// Host Mem Access, PE Mem Access, PE-side Modulation, Other) plus Kernel and
// Network used by the application studies (Figures 4, 13, 21, 23b).
type Category int

const (
	// DomainTransfer is host-side 8x8 byte transposition between the PIM
	// byte domain and the host byte domain (§ II-B).
	DomainTransfer Category = iota
	// HostMod is host-side data modulation (rearrangement, shifts,
	// reductions) whether in memory or in vector registers.
	HostMod
	// HostMem is host main-memory traffic for staging buffers.
	HostMem
	// PEMem is data movement between the host and the DIMM banks over the
	// external bus (CPU-DPU and DPU-CPU transfers), bounded by channel
	// bandwidth.
	PEMem
	// PEMod is PE-side modulation: the reorder kernels of PE-assisted
	// reordering running on the DPUs.
	PEMod
	// Kernel is application compute on the DPUs (SpGEMM, GeMM, ...).
	Kernel
	// Network is inter-host communication in the multi-host study.
	Network
	// Other covers kernel-launch and synchronization overheads.
	Other

	numCategories
)

// String returns the short label used in breakdown tables.
func (c Category) String() string {
	switch c {
	case DomainTransfer:
		return "DomainTransfer"
	case HostMod:
		return "HostMod"
	case HostMem:
		return "HostMem"
	case PEMem:
		return "PEMem"
	case PEMod:
		return "PEMod"
	case Kernel:
		return "Kernel"
	case Network:
		return "Network"
	case Other:
		return "Other"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all categories in display order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Seconds is simulated wall-clock time.
type Seconds float64

// Meter accumulates simulated time per category. The zero value is ready
// to use. Meter is safe for concurrent use: independent actors (parallel
// collectives, application kernel launches) may accrue into one meter,
// each addition applied atomically. Parallel actors whose times overlap
// rather than add (e.g. the PEs of one kernel launch) still accumulate
// locally and merge via MergeMax/Add.
type Meter struct {
	mu    sync.Mutex
	byCat [numCategories]Seconds
	rec   func(Category, Seconds)
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

// TraceEntry is one recorded meter addition. A sequence of entries is the
// unit of the compiled-plan replay path: replaying a trace re-applies the
// original floating-point additions with the same operands in the same
// order, so the meter evolves bit-identically to a live execution.
type TraceEntry struct {
	Cat Category
	T   Seconds
}

// SetRecorder registers f to observe every subsequent Add/AddBytes in
// call order; nil stops recording. Merge, MergeMax and Scale are NOT
// recorded — a recorded meter must only be driven through additions
// (core.traceSchedule asserts this invariant after tracing). f runs with
// the meter's lock held and must not call back into the meter.
func (m *Meter) SetRecorder(f func(Category, Seconds)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rec = f
}

// Add accrues t seconds to category c.
func (m *Meter) Add(c Category, t Seconds) {
	if t < 0 {
		panic(fmt.Sprintf("cost: negative time %v for %v", t, c))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byCat[c] += t
	if m.rec != nil {
		m.rec(c, t)
	}
}

// AddBytes accrues bytes/bw seconds to category c. bw is in bytes/second.
func (m *Meter) AddBytes(c Category, bytes int64, bw float64) {
	if bw <= 0 {
		panic(fmt.Sprintf("cost: non-positive bandwidth %v for %v", bw, c))
	}
	m.Add(c, Seconds(float64(bytes)/bw))
}

// Get returns the accumulated time in category c.
func (m *Meter) Get(c Category) Seconds {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byCat[c]
}

// Total returns the sum over all categories.
func (m *Meter) Total() Seconds {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t Seconds
	for _, v := range m.byCat {
		t += v
	}
	return t
}

// Merge adds every category of other into m.
func (m *Meter) Merge(other *Meter) {
	o := other.Snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, v := range o.byCat {
		m.byCat[i] += v
	}
}

// MergeMax merges other into m taking, per category, the maximum of the two.
// It models perfectly overlapped parallel actors (e.g. the per-rank transfer
// engines, or the DPUs running a kernel): the slowest actor determines the
// elapsed time.
func (m *Meter) MergeMax(other *Meter) {
	o := other.Snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, v := range o.byCat {
		if v > m.byCat[i] {
			m.byCat[i] = v
		}
	}
}

// Scale multiplies every category by f (used to model partial overlap).
func (m *Meter) Scale(f float64) {
	if f < 0 {
		panic("cost: negative scale")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.byCat {
		m.byCat[i] *= Seconds(f)
	}
}

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byCat = [numCategories]Seconds{}
}

// Snapshot returns a copy of the meter's current state.
func (m *Meter) Snapshot() Breakdown {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Breakdown{byCat: m.byCat}
}

// Breakdown is an immutable snapshot of a Meter, used for reporting.
type Breakdown struct {
	byCat [numCategories]Seconds
}

// Get returns the time in category c.
func (b Breakdown) Get(c Category) Seconds { return b.byCat[c] }

// Total returns the total time.
func (b Breakdown) Total() Seconds {
	var t Seconds
	for _, v := range b.byCat {
		t += v
	}
	return t
}

// Sub returns b - earlier per category, clamping small negatives from
// floating-point noise to zero. It is used to isolate one phase's cost.
func (b Breakdown) Sub(earlier Breakdown) Breakdown {
	var out Breakdown
	for i := range b.byCat {
		d := b.byCat[i] - earlier.byCat[i]
		if d < 0 {
			d = 0
		}
		out.byCat[i] = d
	}
	return out
}

// Add returns b + other per category.
func (b Breakdown) Add(other Breakdown) Breakdown {
	var out Breakdown
	for i := range b.byCat {
		out.byCat[i] = b.byCat[i] + other.byCat[i]
	}
	return out
}

// Max returns the per-category maximum of b and other. It models
// perfectly overlapped parallel actors — the cluster layer folds its
// per-host breakdowns with Max, since the hosts of one collective run
// concurrently and the slowest determines the elapsed time (the
// Breakdown counterpart of Meter.MergeMax).
func (b Breakdown) Max(other Breakdown) Breakdown {
	out := b
	for i, v := range other.byCat {
		if v > out.byCat[i] {
			out.byCat[i] = v
		}
	}
	return out
}

// CommTotal returns the time spent on communication categories (everything
// except application Kernel time).
func (b Breakdown) CommTotal() Seconds {
	return b.Total() - b.byCat[Kernel]
}

// String renders the breakdown as "total (cat=t, ...)" listing non-zero
// categories in descending order of contribution.
func (b Breakdown) String() string {
	type entry struct {
		c Category
		t Seconds
	}
	var entries []entry
	for i, v := range b.byCat {
		if v > 0 {
			entries = append(entries, entry{Category(i), v})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].t > entries[j].t })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%.6gs (", float64(b.Total()))
	for i, e := range entries {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%.3g", e.c, float64(e.t))
	}
	sb.WriteString(")")
	return sb.String()
}
