package cost

// Params holds the hardware parameters of the simulated system. Defaults
// approximate the paper's testbed: an Intel Xeon Gold 5215 host with
// AVX-512 and four channels of four-rank UPMEM DIMMs (1024 DPUs).
//
// All bandwidths are bytes/second; throughputs are bytes/cycle on the host
// clock. The modulation thread is single (the paper's host-side modulation
// is single-handed, § III-A); vectorized phases get SIMD throughput.
type Params struct {
	// HostClockHz is the host core clock (Xeon Gold 5215: 2.5-3.4 GHz).
	HostClockHz float64

	// ChannelBW is the effective per-channel external-bus bandwidth for
	// rank-interleaved bulk transfers. DDR4-2400 peak is 19.2 GB/s; UPMEM
	// transfers reach roughly 60% of that in practice.
	ChannelBW float64

	// HostMemBW is the effective host main-memory streaming bandwidth
	// available to the (single-threaded) staging copies of the baseline
	// design.
	HostMemBW float64

	// ScalarModBPC is host bytes/cycle for the baseline's global data
	// modulation: pointer-chasing scatter/gather over a working set far
	// exceeding the caches.
	ScalarModBPC float64

	// LocalModBPC is host bytes/cycle for cache-friendly local modulation
	// after PE-assisted reordering confines movement to register-sized
	// neighborhoods.
	LocalModBPC float64

	// SIMDModBPC is host bytes/cycle for in-register modulation: one
	// AVX-512 shuffle/rotate processes 64 B in ~2-3 cycles. Plain
	// sequential replication (memcpy) also runs at this class.
	SIMDModBPC float64

	// ScalarRedBPC is host bytes/cycle for the baseline's scalar
	// reductions over staged data (load-add-store loops; the most
	// compute-intensive host-side work, § VIII-D).
	ScalarRedBPC float64

	// LocalRedBPC is host bytes/cycle for reductions over PE-pre-
	// reordered (cache-local) data.
	LocalRedBPC float64

	// DTBPC is host bytes/cycle for the vectorized 8x8 byte transpose of
	// a domain transfer.
	DTBPC float64

	// ReduceBPC is host bytes/cycle for vertical SIMD reductions.
	ReduceBPC float64

	// DPUMramBW is per-DPU MRAM streaming bandwidth (UPMEM: ~628 MB/s).
	DPUMramBW float64

	// DPUWramBW is per-DPU WRAM bandwidth (~2.8 GB/s effective with
	// enough tasklets).
	DPUWramBW float64

	// DPUInstrHz is per-DPU retired-instruction throughput with the
	// pipeline saturated by >=11 tasklets (UPMEM: 350 MHz, ~1 IPC).
	DPUInstrHz float64

	// KernelLaunch is the fixed host-side cost of launching a kernel on a
	// set of ranks and synchronizing completion.
	KernelLaunch Seconds

	// RankParallel enables the rank-level transfer parallelism of the
	// UPMEM driver (transfers to different ranks of a channel pipeline).
	// Disabling it serializes per-rank transfers (ablation).
	RankParallel bool

	// DSAOffload models the paper's § IX-B what-if: a future Intel Data
	// Streaming Accelerator that supports shifting, addition and domain
	// transfers, replacing the host core for PID-Comm's data modulation.
	// When enabled, host-side DT/modulation/reduction run DSAFactor times
	// faster and overlap better with transfers.
	DSAOffload bool

	// DSAFactor is the modulation-throughput multiplier when DSAOffload
	// is set (a DSA moves/transforms at near-memory bandwidth instead of
	// core-pipeline throughput).
	DSAFactor float64

	// Net models the inter-host network of the multi-host study (§ IX-A):
	// link bandwidth and latency plus efficiency, NIC striping, switch
	// tiers and deterministic skew (see NetParams).
	Net NetParams
}

// DefaultParams returns the calibrated defaults described in DESIGN.md § 4.
func DefaultParams() Params {
	return Params{
		HostClockHz:  3.0e9,
		ChannelBW:    12.8e9,
		HostMemBW:    20.0e9,
		ScalarModBPC: 3.0,
		LocalModBPC:  9.0,
		SIMDModBPC:   48.0,
		ScalarRedBPC: 2.2,
		LocalRedBPC:  4.5,
		DTBPC:        16.0,
		ReduceBPC:    32.0,
		DPUMramBW:    628e6,
		DPUWramBW:    2.8e9,
		DPUInstrHz:   350e6,
		KernelLaunch: 20e-6,
		RankParallel: true,
		DSAOffload:   false,
		DSAFactor:    4.0,
		Net:          DefaultNetParams(),
	}
}

// HostCycles converts a host cycle count to seconds.
func (p Params) HostCycles(n float64) Seconds { return Seconds(n / p.HostClockHz) }

// HostBytesAt converts a byte count processed at bpc bytes/cycle to seconds.
func (p Params) HostBytesAt(bytes int64, bpc float64) Seconds {
	if bpc <= 0 {
		panic("cost: non-positive bytes/cycle")
	}
	return p.HostCycles(float64(bytes) / bpc)
}

// DPUInstrTime converts a DPU instruction count to seconds on one DPU.
func (p Params) DPUInstrTime(n int64) Seconds { return Seconds(float64(n) / p.DPUInstrHz) }

// Validate reports whether all parameters are physically meaningful.
func (p Params) Validate() error {
	checks := []struct {
		ok   bool
		what string
	}{
		{p.HostClockHz > 0, "HostClockHz"},
		{p.ChannelBW > 0, "ChannelBW"},
		{p.HostMemBW > 0, "HostMemBW"},
		{p.ScalarModBPC > 0, "ScalarModBPC"},
		{p.LocalModBPC > 0, "LocalModBPC"},
		{p.SIMDModBPC > 0, "SIMDModBPC"},
		{p.ScalarRedBPC > 0, "ScalarRedBPC"},
		{p.LocalRedBPC > 0, "LocalRedBPC"},
		{p.DTBPC > 0, "DTBPC"},
		{p.ReduceBPC > 0, "ReduceBPC"},
		{p.DPUMramBW > 0, "DPUMramBW"},
		{p.DPUWramBW > 0, "DPUWramBW"},
		{p.DPUInstrHz > 0, "DPUInstrHz"},
		{p.KernelLaunch >= 0, "KernelLaunch"},
		{p.DSAFactor > 0 || !p.DSAOffload, "DSAFactor"},
	}
	for _, c := range checks {
		if !c.ok {
			return &ParamError{Field: c.what}
		}
	}
	return p.Net.Validate()
}

// ParamError reports an invalid Params field.
type ParamError struct{ Field string }

func (e *ParamError) Error() string { return "cost: invalid parameter " + e.Field }
