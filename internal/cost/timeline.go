package cost

// This file provides overlap-aware elapsed-time accounting. The Meter
// (cost.go) sums *work*: every charge adds to its category no matter when
// it happens, which models fully serialized execution. Asynchronous plan
// execution (core/async.go) needs a second notion — *elapsed* simulated
// time when independent collectives overlap — which the Timeline provides:
// work is placed on the lane (hardware resource) that performs it, lanes
// run in parallel, and the elapsed time is the makespan.
//
// Four lanes model the independently-clocked resources of the
// PIM-DIMM system:
//
//   - LaneCPU: the host core doing domain transfers, modulation,
//     reductions and staging-buffer traffic;
//   - LaneBus: the external memory bus moving bursts between host and
//     DIMMs;
//   - LanePE: the in-DIMM processing elements running reorder kernels and
//     application kernels;
//   - LaneNet: the host's NIC(s) moving inter-host rounds of a cluster
//     collective, so a submitted cluster plan's network leg can overlap
//     another plan's bus or PE work.
//
// A serial execution occupies its lanes back-to-back; two independent
// plans may interleave, e.g. plan B's PE-side reordering runs while plan
// A's bus epoch is in flight — the overlap PID-Comm's async execution is
// after. The total work per lane is unchanged; only the makespan shrinks.

// Lane identifies one of the overlappable hardware resources of the
// simulated machine.
type Lane int

const (
	// LaneCPU is host-core compute: domain transfer, modulation,
	// reduction, staging-memory traffic, launch/sync overhead.
	LaneCPU Lane = iota
	// LaneBus is the external bus between host and DIMMs (and the
	// network link of the multi-host study).
	LaneBus
	// LanePE is the in-DIMM PE array: reorder kernels and application
	// kernels.
	LanePE
	// LaneNet is the inter-host network interface of the cluster layer.
	LaneNet

	// NumLanes is the lane count.
	NumLanes
)

// String returns a short lane label.
func (l Lane) String() string {
	switch l {
	case LaneCPU:
		return "cpu"
	case LaneBus:
		return "bus"
	case LanePE:
		return "pe"
	case LaneNet:
		return "net"
	default:
		return "lane?"
	}
}

// LaneOf maps a meter category to the hardware resource that spends the
// time: PEMem occupies the bus, Network occupies the NIC, PEMod and
// Kernel occupy the PE array, everything else occupies the host core.
func LaneOf(c Category) Lane {
	switch c {
	case PEMem:
		return LaneBus
	case Network:
		return LaneNet
	case PEMod, Kernel:
		return LanePE
	default:
		return LaneCPU
	}
}

// Segment is one contiguous occupation of a lane. A plan's charge trace
// coalesces into an ordered segment list (SegmentsOf); within a plan the
// segments execute sequentially, across plans each lane serializes.
type Segment struct {
	Lane Lane
	Dur  Seconds
}

// SegmentsOf coalesces an ordered charge trace into lane segments:
// consecutive charges on the same lane merge into one segment. The sum of
// segment durations equals the trace's total.
func SegmentsOf(adds []TraceEntry) []Segment {
	var segs []Segment
	for _, e := range adds {
		if e.T <= 0 {
			continue
		}
		l := LaneOf(e.Cat)
		if n := len(segs); n > 0 && segs[n-1].Lane == l {
			segs[n-1].Dur += e.T
		} else {
			segs = append(segs, Segment{Lane: l, Dur: e.T})
		}
	}
	return segs
}

// Segments converts a breakdown into lane segments (category order, same
// coalescing as SegmentsOf). Used to place work that was accounted only as
// a breakdown — e.g. an application kernel launch — onto a timeline.
func (b Breakdown) Segments() []Segment {
	var adds []TraceEntry
	for i, v := range b.byCat {
		if v > 0 {
			adds = append(adds, TraceEntry{Cat: Category(i), T: v})
		}
	}
	return SegmentsOf(adds)
}

// interval is one busy span [start, end) on a lane.
type interval struct{ start, end Seconds }

// Timeline is the overlap-aware schedule of one simulated machine: per
// lane a set of busy intervals, placed by first-fit. The zero value is an
// empty timeline ready to use. Timeline is not safe for concurrent use;
// core.Comm guards its timeline with the execution lock.
type Timeline struct {
	busy  [NumLanes][]interval
	total [NumLanes]Seconds
	end   Seconds
	floor Seconds
}

// Elapsed returns the makespan: the finish time of the latest placed
// segment.
func (tl *Timeline) Elapsed() Seconds { return tl.end }

// LaneBusy returns the cumulative time ever placed on a lane — the
// lane's total work, independent of overlap and of SetFloor pruning.
// LaneBusy(l)/Elapsed() is the lane's utilization.
func (tl *Timeline) LaneBusy(l Lane) Seconds { return tl.total[l] }

// Reset empties the timeline.
func (tl *Timeline) Reset() { *tl = Timeline{} }

// Clone returns an independent deep copy of the timeline: placements on
// the clone never disturb the original and vice versa. Used for what-if
// scoring — the lookahead submission scheduler dry-places each candidate
// plan on a clone of its projection to compare projected makespans. The
// copy is deep because place() books intervals with an in-place
// insert-shift that would corrupt a shared backing array.
func (tl *Timeline) Clone() Timeline {
	out := *tl
	for l := range tl.busy {
		if len(tl.busy[l]) > 0 {
			out.busy[l] = append([]interval(nil), tl.busy[l]...)
		} else {
			out.busy[l] = nil
		}
	}
	return out
}

// SetFloor declares that no future placement will start before f (a
// barrier: a serial run or queue flush happened at f). Busy intervals
// entirely before the floor can never border a usable gap again and are
// pruned, keeping the lists — and the first-fit search — bounded by the
// work in flight since the last barrier rather than the timeline's whole
// history.
func (tl *Timeline) SetFloor(f Seconds) {
	if f <= tl.floor {
		return
	}
	tl.floor = f
	for l := range tl.busy {
		ivs := tl.busy[l]
		i := 0
		for i < len(ivs) && ivs[i].end <= f {
			i++
		}
		if i > 0 {
			tl.busy[l] = append(ivs[:0], ivs[i:]...)
		}
	}
}

// Place schedules segs starting no earlier than earliest: segments run
// sequentially (each starts when its predecessor finishes at the
// earliest) and each occupies the first gap on its lane that fits —
// gaps left by earlier placements are backfilled, which is what lets an
// independent plan slip its PE work under another plan's bus epoch.
// It returns the start of the first segment and the finish of the last.
//
// Placement is monotone: a plan never finishes later than it would under
// fully serial execution, because every delay is caused by real work
// already occupying the lane.
func (tl *Timeline) Place(earliest Seconds, segs []Segment) (start, finish Seconds) {
	cursor := earliest
	if cursor < tl.floor {
		cursor = tl.floor
	}
	start = cursor
	first := true
	for _, s := range segs {
		if s.Dur <= 0 {
			continue
		}
		at := tl.place(s.Lane, cursor, s.Dur)
		if first {
			start = at
			first = false
		}
		cursor = at + s.Dur
	}
	if cursor > tl.end {
		tl.end = cursor
	}
	return start, cursor
}

// PlaceSerial appends segs after everything already placed — the fully
// serialized (barrier) execution path.
func (tl *Timeline) PlaceSerial(segs []Segment) (start, finish Seconds) {
	return tl.Place(tl.end, segs)
}

// place books the first gap of length dur on the lane at or after from
// and returns the booked start time.
func (tl *Timeline) place(lane Lane, from, dur Seconds) Seconds {
	ivs := tl.busy[lane]
	pos := from
	i := 0
	for ; i < len(ivs); i++ {
		if ivs[i].end <= pos {
			continue // entirely before the candidate position
		}
		if pos+dur <= ivs[i].start {
			break // fits in the gap before interval i
		}
		pos = ivs[i].end
	}
	// Insert in place: grow by one, shift the tail, write the slot. The
	// backing array is retained across SetFloor pruning, so once a lane's
	// list reaches its steady-state size this books no allocation —
	// required by the zero-alloc cached-replay contract of core.
	ivs = append(ivs, interval{})
	copy(ivs[i+1:], ivs[i:])
	ivs[i] = interval{pos, pos + dur}
	tl.busy[lane] = ivs
	tl.total[lane] += dur
	return pos
}
