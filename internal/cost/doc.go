// Package cost provides the timing model of the simulated PIM-enabled
// DIMM system: the hardware parameters, the accounting meter that
// produces the per-category execution-time breakdowns of the paper's
// evaluation, and the overlap-aware timeline used by asynchronous plan
// execution.
//
// # Role
//
// The simulator separates *what happens* (bytes moving through
// internal/dram, internal/host, internal/dpu) from *what it costs* (this
// package). The model is deliberately parametric: the paper's claims are
// about the shape of results — which design wins, by what factor, where
// crossovers fall — and those shapes are determined by bandwidth and
// throughput ratios, not absolute hardware speeds. All parameters live in
// Params (params.go), documented with the real-hardware values they
// approximate (Xeon Gold 5215 host, four channels of four-rank UPMEM
// DIMMs).
//
// # Key types
//
//   - Category classifies where simulated time goes, mirroring the
//     breakdown categories of Figure 17 (DomainTransfer, HostMod,
//     HostMem, PEMem, PEMod, Other) plus Kernel and Network for the
//     application and multi-host studies (Figures 4, 13, 21, 23b).
//   - Meter accumulates Seconds per category, thread-safely; Breakdown
//     is its immutable snapshot. The meter never influences functional
//     data movement — the simulator moves real bytes and reports costs
//     here. A meter can record its additions (SetRecorder), which is how
//     core captures a compiled plan's charge trace (TraceEntry).
//   - Timeline (timeline.go) is elapsed-time accounting for overlapped
//     execution: work is placed on one of four lanes (LaneCPU, LaneBus,
//     LanePE, LaneNet — the independently-clocked resources of the
//     machine), lanes run in parallel, and Elapsed is the makespan. The
//     meter sums work; the timeline answers "when would this finish":
//     serial execution makes them equal, asynchronous submission of
//     independent plans makes Elapsed smaller.
//   - NetParams (net.go) parameterizes the inter-host network of the
//     cluster layer: link bandwidth/latency, efficiency, NIC striping,
//     switch tiers and deterministic skew, combined by RoundTime into
//     the cost of one overlapped exchange round.
//
// # Paper map
//
//	Figure 4, 13  Category (Kernel vs communication split)
//	Figure 17     Category breakdowns, Breakdown.String
//	§ VIII-A      Params / DefaultParams (testbed calibration)
//	§ IX-B        Params.DSAOffload (DSA what-if)
//	§ IX-A        Params.Net (NetParams, multi-host network)
package cost
