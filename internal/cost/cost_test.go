package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeterAddAndTotal(t *testing.T) {
	m := NewMeter()
	m.Add(HostMod, 1.5)
	m.Add(HostMem, 0.5)
	m.Add(HostMod, 0.5)
	if got := m.Get(HostMod); got != 2.0 {
		t.Errorf("Get(HostMod) = %v, want 2.0", got)
	}
	if got := m.Total(); got != 2.5 {
		t.Errorf("Total() = %v, want 2.5", got)
	}
}

func TestMeterAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative time")
		}
	}()
	NewMeter().Add(HostMod, -1)
}

func TestMeterAddBytes(t *testing.T) {
	m := NewMeter()
	m.AddBytes(PEMem, 1000, 500)
	if got := m.Get(PEMem); math.Abs(float64(got)-2.0) > 1e-12 {
		t.Errorf("AddBytes: got %v, want 2.0", got)
	}
}

func TestMeterAddBytesBadBW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero bandwidth")
		}
	}()
	NewMeter().AddBytes(PEMem, 1, 0)
}

func TestMeterMerge(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.Add(DomainTransfer, 1)
	b.Add(DomainTransfer, 2)
	b.Add(Kernel, 3)
	a.Merge(b)
	if a.Get(DomainTransfer) != 3 || a.Get(Kernel) != 3 {
		t.Errorf("Merge: got DT=%v Kernel=%v", a.Get(DomainTransfer), a.Get(Kernel))
	}
}

func TestMeterMergeMax(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.Add(PEMod, 5)
	a.Add(Kernel, 1)
	b.Add(PEMod, 3)
	b.Add(Kernel, 4)
	a.MergeMax(b)
	if a.Get(PEMod) != 5 || a.Get(Kernel) != 4 {
		t.Errorf("MergeMax: got PEMod=%v Kernel=%v, want 5, 4", a.Get(PEMod), a.Get(Kernel))
	}
}

func TestMeterScaleAndReset(t *testing.T) {
	m := NewMeter()
	m.Add(Other, 2)
	m.Scale(0.5)
	if m.Get(Other) != 1 {
		t.Errorf("Scale: got %v, want 1", m.Get(Other))
	}
	m.Reset()
	if m.Total() != 0 {
		t.Errorf("Reset: total %v, want 0", m.Total())
	}
}

func TestBreakdownSubClampsToZero(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.Add(HostMem, 1)
	b.Add(HostMem, 2)
	d := a.Snapshot().Sub(b.Snapshot())
	if d.Get(HostMem) != 0 {
		t.Errorf("Sub clamp: got %v, want 0", d.Get(HostMem))
	}
}

func TestBreakdownSubIsolatesPhase(t *testing.T) {
	m := NewMeter()
	m.Add(HostMod, 1)
	before := m.Snapshot()
	m.Add(HostMod, 2)
	m.Add(PEMem, 4)
	phase := m.Snapshot().Sub(before)
	if phase.Get(HostMod) != 2 || phase.Get(PEMem) != 4 {
		t.Errorf("phase = %v", phase)
	}
}

func TestBreakdownCommTotal(t *testing.T) {
	m := NewMeter()
	m.Add(Kernel, 10)
	m.Add(PEMem, 2)
	m.Add(DomainTransfer, 3)
	if got := m.Snapshot().CommTotal(); got != 5 {
		t.Errorf("CommTotal = %v, want 5", got)
	}
}

func TestBreakdownString(t *testing.T) {
	m := NewMeter()
	m.Add(PEMem, 2)
	m.Add(DomainTransfer, 1)
	s := m.Snapshot().String()
	if !strings.Contains(s, "PEMem") || !strings.Contains(s, "DomainTransfer") {
		t.Errorf("String() = %q, missing categories", s)
	}
	// Larger contributor listed first.
	if strings.Index(s, "PEMem") > strings.Index(s, "DomainTransfer") {
		t.Errorf("String() = %q, want descending order", s)
	}
}

func TestCategoriesAndStrings(t *testing.T) {
	cats := Categories()
	if len(cats) != int(numCategories) {
		t.Fatalf("Categories() returned %d, want %d", len(cats), numCategories)
	}
	seen := map[string]bool{}
	for _, c := range cats {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "Category(") {
			t.Errorf("category %d has bad label %q", c, s)
		}
		if seen[s] {
			t.Errorf("duplicate label %q", s)
		}
		seen[s] = true
	}
	if got := Category(99).String(); !strings.HasPrefix(got, "Category(") {
		t.Errorf("unknown category label %q", got)
	}
}

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestParamsValidateCatchesBadFields(t *testing.T) {
	p := DefaultParams()
	p.ChannelBW = 0
	err := p.Validate()
	if err == nil {
		t.Fatal("expected error for zero ChannelBW")
	}
	if !strings.Contains(err.Error(), "ChannelBW") {
		t.Errorf("error %q does not name field", err)
	}
}

func TestParamsHostBytesAt(t *testing.T) {
	p := DefaultParams()
	p.HostClockHz = 1e9
	got := p.HostBytesAt(2e9, 2.0)
	if math.Abs(float64(got)-1.0) > 1e-12 {
		t.Errorf("HostBytesAt = %v, want 1.0", got)
	}
}

func TestParamsDPUInstrTime(t *testing.T) {
	p := DefaultParams()
	p.DPUInstrHz = 100e6
	if got := p.DPUInstrTime(100e6); math.Abs(float64(got)-1.0) > 1e-12 {
		t.Errorf("DPUInstrTime = %v, want 1.0", got)
	}
}

// Property: Merge is commutative and MergeMax is idempotent.
func TestMergeProperties(t *testing.T) {
	f := func(a1, a2, b1, b2 uint16) bool {
		m1, m2 := NewMeter(), NewMeter()
		m1.Add(HostMod, Seconds(a1))
		m1.Add(PEMem, Seconds(a2))
		m2.Add(HostMod, Seconds(b1))
		m2.Add(PEMem, Seconds(b2))

		x := NewMeter()
		x.Merge(m1)
		x.Merge(m2)
		y := NewMeter()
		y.Merge(m2)
		y.Merge(m1)
		if x.Total() != y.Total() {
			return false
		}
		// MergeMax idempotence.
		z := NewMeter()
		z.Merge(m1)
		z.MergeMax(m1)
		return z.Get(HostMod) == m1.Get(HostMod) && z.Get(PEMem) == m1.Get(PEMem)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Breakdown.Add and Meter.Merge agree.
func TestBreakdownAddMatchesMerge(t *testing.T) {
	f := func(a, b uint16) bool {
		m1, m2 := NewMeter(), NewMeter()
		m1.Add(Network, Seconds(a))
		m2.Add(Network, Seconds(b))
		sum := m1.Snapshot().Add(m2.Snapshot())
		m1.Merge(m2)
		return sum.Get(Network) == m1.Get(Network)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
