package cost

// Dry placement: scoring a plan's charge trace by how it would behave
// under overlapped execution, without touching any live timeline. A
// plan's own segments always chain serially (Place walks them with a
// moving cursor), so placing ONE copy of a trace on an empty Timeline
// elapses exactly the meter total — no information beyond the sum. What
// distinguishes two candidate lowerings of the same collective is how
// they share lanes with concurrent work: a bus-heavy trace serializes
// behind other bus-heavy traces while its CPU gaps go to waste, and a
// trace that spreads the same work across lanes pipelines tighter. The
// pipelined dry placement below models exactly the async/serving regime
// (async.go): several independent instances of the same plan in flight,
// each backfilling the lane gaps the others leave.

// PipelinedMakespan places depth independent copies of one plan's lane
// segments on a scratch Timeline — each copy free to start at time zero,
// so copies backfill each other's idle lanes exactly as hazard-free
// submissions do on the live timeline — and returns the elapsed time of
// the whole batch. For a single-lane trace this is depth x the lane
// total (full serialization); for a lane-balanced trace it approaches
// max over lanes of depth x the lane's share. Lower is better; the
// value is comparable only between traces scored at the same depth.
func PipelinedMakespan(segs []Segment, depth int) Seconds {
	var tl Timeline
	for i := 0; i < depth; i++ {
		tl.Place(0, segs)
	}
	return tl.Elapsed()
}
