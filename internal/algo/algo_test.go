package algo_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// The differential suite: every registered algorithm must produce
// byte-identical results to the reference lowering on the functional
// backend, across hypercube shapes (including non-power-of-two and
// strided groups), element types, operators and payload sizes. The
// registration side effect comes from linking the package under test.

var (
	geo64 = dram.Geometry{Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14} // 64 PEs
	geo24 = dram.Geometry{Channels: 3, RanksPerChannel: 1, BanksPerChip: 1, MramPerBank: 1 << 14} // 24 PEs
)

type caseSpec struct {
	name  string
	geo   dram.Geometry
	shape []int
	dims  string
}

var cases = []caseSpec{
	{"1D-full", geo64, []int{64}, "1"},
	{"2D-x", geo64, []int{8, 8}, "10"},
	{"2D-xy", geo64, []int{8, 8}, "11"},
	{"2D-subEG-y", geo64, []int{4, 16}, "01"},
	{"3D-xz", geo64, []int{4, 2, 8}, "101"},
	{"nonpow2-y", geo24, []int{8, 3}, "01"},
	{"nonpow2-strided", geo24, []int{4, 6}, "01"},
}

func newComm(t *testing.T, geo dram.Geometry, shape []int) *core.Comm {
	t.Helper()
	sys, err := dram.NewSystem(geo)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := core.NewHypercube(sys, shape)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewComm(hc, cost.DefaultParams())
}

func fillSrc(c *core.Comm, off, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	numPE := c.Hypercube().System().Geometry().NumPEs()
	buf := make([]byte, n)
	for pe := 0; pe < numPE; pe++ {
		rng.Read(buf)
		c.SetPEBuffer(pe, off, buf)
	}
}

func snapshot(c *core.Comm, off, n int) [][]byte {
	numPE := c.Hypercube().System().Geometry().NumPEs()
	out := make([][]byte, numPE)
	for pe := 0; pe < numPE; pe++ {
		out[pe] = append([]byte(nil), c.GetPEBuffer(pe, off, n)...)
	}
	return out
}

func alternatives(prim core.Primitive) []core.Algorithm {
	return core.RegisteredAlgorithms(prim)[1:] // drop AlgoReference
}

func TestRegistrySeeded(t *testing.T) {
	want := []core.Algorithm{core.AlgoReference, core.AlgoRing, core.AlgoTree, core.AlgoRabenseifner}
	got := core.RegisteredAlgorithms(core.AllReduce)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("AllReduce algorithms = %v, want %v", got, want)
	}
	wantB := []core.Algorithm{core.AlgoReference, core.AlgoRing, core.AlgoTree}
	if got := core.RegisteredAlgorithms(core.Broadcast); fmt.Sprint(got) != fmt.Sprint(wantB) {
		t.Fatalf("Broadcast algorithms = %v, want %v", got, wantB)
	}
	for _, a := range append([]core.Algorithm{core.AlgoAuto}, core.Algorithms()...) {
		back, err := core.ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", a.String(), back, err)
		}
	}
}

func TestAllReduceAlgosMatchReference(t *testing.T) {
	combos := []struct {
		et elem.Type
		op elem.Op
	}{{elem.I32, elem.Sum}, {elem.I8, elem.Xor}, {elem.I64, elem.Max}}
	for _, cs := range cases {
		for _, cb := range combos {
			for _, s := range []int{8, 24} {
				t.Run(fmt.Sprintf("%s/%v-%v/s%d", cs.name, cb.et, cb.op, s), func(t *testing.T) {
					c := newComm(t, cs.geo, cs.shape)
					groups, err := c.Hypercube().Groups(cs.dims)
					if err != nil {
						t.Fatal(err)
					}
					n := len(groups[0])
					if n < 2 {
						t.Skip("single-member groups: no alternatives apply")
					}
					m := n * s
					fillSrc(c, 0, m, 7)
					d := core.Collective{Prim: core.AllReduce, Dims: cs.dims,
						Src: core.Span(0, m), Dst: core.At(m), Elem: cb.et, Op: cb.op,
						Level: core.Baseline}
					if _, err := c.Run(d); err != nil {
						t.Fatal(err)
					}
					want := snapshot(c, m, m)
					for _, alg := range alternatives(core.AllReduce) {
						da := d
						da.Algorithm = alg
						if _, err := c.Run(da); err != nil {
							t.Fatalf("%v: %v", alg, err)
						}
						got := snapshot(c, m, m)
						for pe := range got {
							if !bytes.Equal(got[pe], want[pe]) {
								t.Fatalf("%v: PE %d differs from reference", alg, pe)
							}
						}
					}
				})
			}
		}
	}
}

func TestBroadcastAlgosMatchReference(t *testing.T) {
	for _, cs := range cases {
		t.Run(cs.name, func(t *testing.T) {
			c := newComm(t, cs.geo, cs.shape)
			groups, err := c.Hypercube().Groups(cs.dims)
			if err != nil {
				t.Fatal(err)
			}
			if len(groups[0]) < 2 {
				t.Skip("single-member groups: no alternatives apply")
			}
			const s = 48
			rng := rand.New(rand.NewSource(11))
			bufs := make([][]byte, len(groups))
			for g := range bufs {
				bufs[g] = make([]byte, s)
				rng.Read(bufs[g])
			}
			d := core.Collective{Prim: core.Broadcast, Dims: cs.dims,
				Dst: core.Span(0, s), Hosts: bufs, Level: core.Baseline}
			if _, err := c.Run(d); err != nil {
				t.Fatal(err)
			}
			want := snapshot(c, 0, s)
			for _, alg := range alternatives(core.Broadcast) {
				da := d
				da.Algorithm = alg
				if _, err := c.Run(da); err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				got := snapshot(c, 0, s)
				for pe := range got {
					if !bytes.Equal(got[pe], want[pe]) {
						t.Fatalf("%v: PE %d differs from reference", alg, pe)
					}
				}
			}
		})
	}
}

// TestAlgoRejections pins the explicit-request error paths: an algorithm
// that does not apply at the resolved level, and an algorithm not
// registered for the primitive.
func TestAlgoRejections(t *testing.T) {
	c := newComm(t, geo64, []int{8, 8})
	d := core.Collective{Prim: core.AllReduce, Dims: "10",
		Src: core.Span(0, 64), Dst: core.At(64), Elem: elem.I32, Op: elem.Sum}
	for _, lvl := range []core.Level{core.PR, core.IM} {
		da := d
		da.Level, da.Algorithm = lvl, core.AlgoRing
		if _, err := c.Run(da); err == nil {
			t.Fatalf("ring at %v: want applicability error", lvl)
		}
	}
	da := d
	da.Level, da.Algorithm = core.Baseline, core.AlgoRabenseifner
	da.Prim = core.AlltoAll
	da.Elem, da.Op = 0, 0
	if _, err := c.Run(da); err == nil {
		t.Fatal("rsag AlltoAll: want unregistered-algorithm error")
	}
}

// TestAutoSearchesAlgorithms checks the (algorithm x level) search: an
// Auto-level call with an explicit algorithm constraint resolves to that
// algorithm at its applicable level, and the full search returns a valid
// registered candidate.
func TestAutoSearchesAlgorithms(t *testing.T) {
	c := newComm(t, geo64, []int{8, 8})
	d := core.Collective{Prim: core.AllReduce, Dims: "10",
		Src: core.Span(0, 64), Dst: core.At(64), Elem: elem.I32, Op: elem.Sum,
		Level: core.Auto, Algorithm: core.AlgoRing}
	alg, lvl, err := c.AutoResolveOf(d)
	if err != nil {
		t.Fatal(err)
	}
	if alg != core.AlgoRing || lvl != core.Baseline {
		t.Fatalf("constrained resolve = (%v, %v), want (ring, Base)", alg, lvl)
	}
	if _, err := c.Run(d); err != nil {
		t.Fatal(err)
	}
	d.Algorithm = core.AlgoAuto
	alg, lvl, err = c.AutoResolveOf(d)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range core.RegisteredAlgorithms(core.AllReduce) {
		found = found || a == alg
	}
	if !found {
		t.Fatalf("full search picked unregistered algorithm %v at %v", alg, lvl)
	}
}

// TestMakespanAutoNeverWorse is the autotuner property test: under the
// makespan objective, the picked candidate's pipelined dry-placed
// makespan is never worse than the meter-cheapest pick's makespan (and
// symmetrically for the meter).
func TestMakespanAutoNeverWorse(t *testing.T) {
	sys, err := dram.NewPhantomSystem(dram.Geometry{Channels: 2, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := core.NewHypercube(sys, []int{16, 8})
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewCostComm(hc, cost.DefaultParams())
	find := func(prim core.Primitive, bytes int) core.AutoDecision {
		t.Helper()
		for _, dec := range c.AutoDecisions() {
			if dec.Prim == prim && dec.Bytes == bytes && dec.Constraint == core.AlgoAuto {
				return dec
			}
		}
		t.Fatalf("no cached decision for %v/%d", prim, bytes)
		return core.AutoDecision{}
	}
	type sig struct {
		prim core.Primitive
		m    int
	}
	sigs := []sig{}
	for _, m := range []int{128, 2048, 1 << 15, 1 << 18} {
		sigs = append(sigs, sig{core.AllReduce, m}, sig{core.ReduceScatter, m}, sig{core.AlltoAll, m})
	}
	for _, sg := range sigs {
		d := core.Collective{Prim: sg.prim, Dims: "10",
			Src: core.Span(0, sg.m), Dst: core.At(sg.m), Level: core.Auto}
		if sg.prim != core.AlltoAll {
			d.Elem, d.Op = elem.I32, elem.Sum
		}
		c.SetAutoObjective(core.AutoMeter)
		if _, _, err := c.AutoResolveOf(d); err != nil {
			t.Fatal(err)
		}
		meterPick := find(sg.prim, sg.m)
		c.SetAutoObjective(core.AutoMakespan)
		if _, _, err := c.AutoResolveOf(d); err != nil {
			t.Fatal(err)
		}
		ksPick := find(sg.prim, sg.m)
		if ksPick.Makespan > meterPick.Makespan {
			t.Errorf("%v/%d: makespan objective picked (%v,%v) makespan %v, worse than meter pick (%v,%v) makespan %v",
				sg.prim, sg.m, ksPick.Algo, ksPick.Level, ksPick.Makespan,
				meterPick.Algo, meterPick.Level, meterPick.Makespan)
		}
		if meterPick.Meter > ksPick.Meter {
			t.Errorf("%v/%d: meter objective picked meter %v, worse than makespan pick's meter %v",
				sg.prim, sg.m, meterPick.Meter, ksPick.Meter)
		}
		c.SetAutoObjective(core.AutoMeter)
	}
}

// TestClusterTreeMatchesRing pins the host-level algorithm axis: a
// functional cluster AllReduce produces identical bytes whether the wire
// leg is the ring, the tree, or the Auto pick, and the cost-only Auto
// pick matches the analytic crossover (tree on latency-bound small
// payloads, ring on bandwidth-bound large ones, for enough hosts).
func TestClusterTreeMatchesRing(t *testing.T) {
	const H = 4
	geo := dram.Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 14}
	build := func() *core.Cluster {
		comms := make([]*core.Comm, H)
		for h := range comms {
			sys, err := dram.NewSystem(geo)
			if err != nil {
				t.Fatal(err)
			}
			hc, err := core.NewHypercube(sys, []int{16})
			if err != nil {
				t.Fatal(err)
			}
			comms[h] = core.NewComm(hc, cost.DefaultParams())
		}
		cl, err := core.NewCluster(comms)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	const m = 16 * 8 // H*P blocks of 8 bytes
	seed := func(cl *core.Cluster) {
		rng := rand.New(rand.NewSource(3))
		buf := make([]byte, m)
		for h := 0; h < H; h++ {
			for pe := 0; pe < 16; pe++ {
				rng.Read(buf)
				cl.Host(h).SetPEBuffer(pe, 0, buf)
			}
		}
	}
	run := func(alg core.Algorithm) [][]byte {
		cl := build()
		seed(cl)
		d := core.ClusterCollective{Collective: core.Collective{
			Prim: core.AllReduce, Dims: "1", Src: core.Span(0, m), Dst: core.At(m),
			Elem: elem.I32, Op: elem.Sum, Level: core.Baseline, Algorithm: alg}}
		if _, err := cl.Run(d); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		var out [][]byte
		for h := 0; h < H; h++ {
			for pe := 0; pe < 16; pe++ {
				out = append(out, append([]byte(nil), cl.Host(h).GetPEBuffer(pe, m, m)...))
			}
		}
		return out
	}
	want := run(core.AlgoRing)
	for _, alg := range []core.Algorithm{core.AlgoTree, core.AlgoAuto} {
		got := run(alg)
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%v: global rank %d differs from ring", alg, i)
			}
		}
	}
	// Unsupported cluster algorithm errors instead of being ignored.
	cl := build()
	seed(cl)
	d := core.ClusterCollective{Collective: core.Collective{
		Prim: core.AllReduce, Dims: "1", Src: core.Span(0, m), Dst: core.At(m),
		Elem: elem.I32, Op: elem.Sum, Level: core.Baseline, Algorithm: core.AlgoRabenseifner}}
	if _, err := cl.Run(d); err == nil {
		t.Fatal("cluster rsag: want unsupported-algorithm error")
	}
}
