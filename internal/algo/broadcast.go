package algo

import (
	"repro/internal/core"
)

func init() {
	core.RegisterAlgorithm(core.AlgoSpec{
		Algo: core.AlgoRing, Prim: core.Broadcast,
		Applies: baselineMulti, Lower: lowerRingBroadcast,
	})
	core.RegisterAlgorithm(core.AlgoSpec{
		Algo: core.AlgoTree, Prim: core.Broadcast,
		Applies: baselineMulti, Lower: lowerTreeBroadcast,
	})
}

// deliverStep builds the closing bulk write of the staged broadcast
// shapes: every PE's destination gets its group's host payload through
// the conventional write path (the staged rounds already charged the
// wire; the payload fan-out into the PE-major buffer is memcpy class).
func deliverStep(e *core.AlgoEnv, dstOff, s int) *core.StepBulk {
	return &core.StepBulk{
		Write: true, WriteOff: dstOff, WritePerPE: s,
		Charges: []core.Charge{{Kind: core.ChargeSIMD, Bytes: e.MachineBytes(s)}},
		Modulate: func([]byte) []byte {
			out := e.BulkOut(e.TotalPEs() * s)
			e.EachGroup(func(g int, pes []int) {
				src := e.HostPayload(g)
				for _, pe := range pes {
					copy(out[pe*s:(pe+1)*s], src[:s])
				}
			})
			return out
		},
	}
}

// lowerRingBroadcast stages the payload around each group's ring: n-1
// full-payload hops (each charged as a send plus a receive on the
// host-memory lane), then conventional delivery. The opposite trade to
// the driver's native single-DT broadcast — maximal rounds, but each
// hop engages only one link.
func lowerRingBroadcast(e *core.AlgoEnv) *core.Schedule {
	s := e.BytesPerPE()
	groups := int64(e.NumGroups())
	sched := &core.Schedule{Name: "Broadcast/ring"}
	for r := 1; r < e.GroupSize(); r++ {
		sched.Steps = append(sched.Steps, &core.StepHostCompute{Charges: []core.Charge{
			{Kind: core.ChargeHostMem, Bytes: 2 * groups * int64(s)},
		}})
	}
	sched.Steps = append(sched.Steps, deliverStep(e, e.DstOff(), s), &core.StepSync{})
	return sched
}

// lowerTreeBroadcast stages the payload down a binomial tree:
// ceil(log2 n) doubling rounds — round j has min(2^j, n-2^j) senders,
// each forwarding the full payload — then conventional delivery.
func lowerTreeBroadcast(e *core.AlgoEnv) *core.Schedule {
	s := e.BytesPerPE()
	n := e.GroupSize()
	groups := int64(e.NumGroups())
	sched := &core.Schedule{Name: "Broadcast/tree"}
	for have := 1; have < n; have *= 2 {
		senders := have
		if n-have < senders {
			senders = n - have
		}
		vol := groups * int64(senders) * int64(s)
		sched.Steps = append(sched.Steps, &core.StepHostCompute{Charges: []core.Charge{
			{Kind: core.ChargeHostMem, Bytes: 2 * vol},
		}})
	}
	sched.Steps = append(sched.Steps, deliverStep(e, e.DstOff(), s), &core.StepSync{})
	return sched
}
