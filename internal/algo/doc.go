// Package algo registers alternative collective lowerings — classic MPI
// algorithm shapes expressed in the schedule IR — with the core
// algorithm registry (core.RegisterAlgorithm).
//
// Three AllReduce alternatives and two Broadcast alternatives ship:
//
//   - ring AllReduce: a host-emulated ring — 2(n-1) staged wire rounds
//     of one 1/n block per PE (n-1 reduce-scatter hops, n-1 allgather
//     hops), bandwidth-optimal per-hop volume.
//   - tree AllReduce: a binomial tree — ceil(log2 n) reduce-up rounds
//     plus ceil(log2 n) broadcast-down rounds of the full payload,
//     fewest rounds at full-payload hop cost.
//   - rsag AllReduce: the Rabenseifner composition — a machine-wide
//     ReduceScatter bulk phase (each PE keeps its rank's reduced block)
//     followed by an AllGather bulk phase, trading one extra bus round
//     trip of one block for block-parallel host reduction.
//   - ring/tree Broadcast: the same staged wire shapes delivering the
//     per-group host payload through the conventional bulk path instead
//     of the driver's native single-DT broadcast.
//
// Every lowering is byte-identical to the reference lowering on the
// functional backend — the registry contract. The element types are
// integers and the operators associative and commutative, so reduction
// order cannot change results; the differential suite in this package
// pins the equivalence across primitives, levels and irregular shapes.
// The alternatives apply at the Baseline effective level (they model
// conventional host-path execution); the autotuner skips them at the
// streaming levels and picks them only when strictly better under the
// active objective.
package algo
