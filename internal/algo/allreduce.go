package algo

import (
	"repro/internal/core"
	"repro/internal/elem"
)

func init() {
	core.RegisterAlgorithm(core.AlgoSpec{
		Algo: core.AlgoRing, Prim: core.AllReduce,
		Applies: baselineMulti, Lower: lowerRingAllReduce,
	})
	core.RegisterAlgorithm(core.AlgoSpec{
		Algo: core.AlgoTree, Prim: core.AllReduce,
		Applies: baselineMulti, Lower: lowerTreeAllReduce,
	})
	core.RegisterAlgorithm(core.AlgoSpec{
		Algo: core.AlgoRabenseifner, Prim: core.AllReduce,
		Applies: baselineMulti, Lower: lowerRsagAllReduce,
	})
}

// baselineMulti gates the host-path algorithm shapes: they model
// conventional (bulk) execution, so they implement the Baseline
// effective level only, and a single-member group has no wire to shape.
func baselineMulti(e *core.AlgoEnv) bool {
	return e.Level() == core.Baseline && e.GroupSize() >= 2
}

// reduceReplicate computes every group's canonical-rank-order reduction
// of the per-PE payloads in data (PE-major, m bytes each) and replicates
// it to each member's slot of out. Identical arithmetic to the reference
// Baseline modulation — and with integer element types and
// associative/commutative operators, identical bytes under any schedule
// that reduces the same members.
func reduceReplicate(e *core.AlgoEnv, data, out []byte, m int) {
	t, op := e.Elem(), e.Op()
	e.EachGroupScratch(m, func(g int, pes []int, red []byte) {
		elem.Fill(t, red, op.Identity(t))
		for _, pe := range pes {
			elem.ReduceInto(t, op, red, data[pe*m:(pe+1)*m])
		}
		for _, pe := range pes {
			copy(out[pe*m:(pe+1)*m], red)
		}
	})
}

// retainStep builds the opening bulk read that snapshots every PE's
// payload into a plan-owned buffer the wire rounds conceptually pass
// around (the staging slab is reused by later steps, so a copy is
// mandatory — and is charged as host-memory traffic).
func retainStep(e *core.AlgoEnv, srcOff, m int, data *[]byte) *core.StepBulk {
	return &core.StepBulk{
		Read: true, ReadOff: srcOff, ReadPerPE: m,
		Charges: []core.Charge{{Kind: core.ChargeHostMem, Bytes: e.MachineBytes(m)}},
		Modulate: func(stag []byte) []byte {
			if *data == nil {
				*data = make([]byte, len(stag))
			}
			copy(*data, stag)
			return nil
		},
	}
}

// assembleStep builds the closing bulk write that lands the reduced,
// replicated result at dstOff. The wire rounds already charged the
// reduction and replication work, so this step carries only the write
// traffic itself.
func assembleStep(e *core.AlgoEnv, dstOff, m int, data *[]byte) *core.StepBulk {
	return &core.StepBulk{
		Write: true, WriteOff: dstOff, WritePerPE: m,
		Modulate: func([]byte) []byte {
			out := e.BulkOut(e.TotalPEs() * m)
			reduceReplicate(e, *data, out, m)
			return out
		},
	}
}

// lowerRingAllReduce emulates the ring algorithm on the host: after the
// snapshot, 2(n-1) staged rounds move one s-byte block per PE around the
// group ring — n-1 reduce-scatter hops (each PE folds the arriving block
// into its own) and n-1 allgather hops (pure copies) — then the
// assembled result is written back. Per-hop wire volume is the
// bandwidth-optimal m/n.
func lowerRingAllReduce(e *core.AlgoEnv) *core.Schedule {
	m, s := e.BytesPerPE(), e.BlockSize()
	n := e.GroupSize()
	var data []byte
	sched := &core.Schedule{Name: "AllReduce/ring"}
	sched.Steps = append(sched.Steps, retainStep(e, e.SrcOff(), m, &data))
	for r := 1; r < n; r++ { // reduce-scatter hops
		sched.Steps = append(sched.Steps, &core.StepHostCompute{Charges: []core.Charge{
			{Kind: core.ChargeScalarReduce, Bytes: e.MachineBytes(s)},
			{Kind: core.ChargeHostMem, Bytes: 2 * e.MachineBytes(s)},
		}})
	}
	for r := 1; r < n; r++ { // allgather hops
		sched.Steps = append(sched.Steps, &core.StepHostCompute{Charges: []core.Charge{
			{Kind: core.ChargeSIMD, Bytes: e.MachineBytes(s)},
			{Kind: core.ChargeHostMem, Bytes: 2 * e.MachineBytes(s)},
		}})
	}
	sched.Steps = append(sched.Steps, assembleStep(e, e.DstOff(), m, &data), &core.StepSync{})
	return sched
}

// treeSenders returns the per-round sender counts of a binomial tree
// over n ranks: in reduce round j (pair distance d = 1<<j), every rank r
// with r mod 2d == d sends its full payload to r-d. The counts sum to
// n-1; the broadcast-down pass replays them in reverse.
func treeSenders(n int) []int {
	var out []int
	for d := 1; d < n; d <<= 1 {
		senders := 0
		for r := 0; r < n; r++ {
			if r%(2*d) == d {
				senders++
			}
		}
		out = append(out, senders)
	}
	return out
}

// lowerTreeAllReduce emulates the binomial tree: ceil(log2 n) reduce-up
// rounds and ceil(log2 n) broadcast-down rounds, each moving the full
// m-byte payload per participating pair — the fewest rounds any
// algorithm achieves, at full-payload hop cost.
func lowerTreeAllReduce(e *core.AlgoEnv) *core.Schedule {
	m := e.BytesPerPE()
	rounds := treeSenders(e.GroupSize())
	groups := int64(e.NumGroups())
	var data []byte
	sched := &core.Schedule{Name: "AllReduce/tree"}
	sched.Steps = append(sched.Steps, retainStep(e, e.SrcOff(), m, &data))
	for _, senders := range rounds { // reduce up
		vol := groups * int64(senders) * int64(m)
		sched.Steps = append(sched.Steps, &core.StepHostCompute{Charges: []core.Charge{
			{Kind: core.ChargeScalarReduce, Bytes: vol},
			{Kind: core.ChargeHostMem, Bytes: 2 * vol},
		}})
	}
	for i := len(rounds) - 1; i >= 0; i-- { // broadcast down
		vol := groups * int64(rounds[i]) * int64(m)
		sched.Steps = append(sched.Steps, &core.StepHostCompute{Charges: []core.Charge{
			{Kind: core.ChargeSIMD, Bytes: vol},
			{Kind: core.ChargeHostMem, Bytes: 2 * vol},
		}})
	}
	sched.Steps = append(sched.Steps, assembleStep(e, e.DstOff(), m, &data), &core.StepSync{})
	return sched
}

// lowerRsagAllReduce is the Rabenseifner composition as two machine-wide
// bulk phases: a ReduceScatter pass that leaves each PE holding its
// rank's reduced block at dst, a sync barrier, then an AllGather pass
// that reads the blocks back and assembles the full replicated result.
// Host reduction shrinks to one block per PE (block-parallel across the
// group) at the price of one extra bus round trip of one block per PE.
func lowerRsagAllReduce(e *core.AlgoEnv) *core.Schedule {
	m, s := e.BytesPerPE(), e.BlockSize()
	srcOff, dstOff := e.SrcOff(), e.DstOff()
	t, op := e.Elem(), e.Op()
	sched := &core.Schedule{Name: "AllReduce/rsag"}
	sched.Steps = append(sched.Steps,
		&core.StepBulk{
			Read: true, ReadOff: srcOff, ReadPerPE: m,
			Write: true, WriteOff: dstOff, WritePerPE: s,
			// The whole input is reduced once, same volume as the
			// reference — just block-sharded across ranks.
			Charges: []core.Charge{{Kind: core.ChargeScalarReduce, Bytes: e.MachineBytes(m)}},
			Modulate: func(stag []byte) []byte {
				out := e.BulkOut(e.TotalPEs() * s)
				e.EachGroupScratch(s, func(g int, pes []int, red []byte) {
					for i, pe := range pes {
						elem.Fill(t, red, op.Identity(t))
						for _, src := range pes {
							elem.ReduceInto(t, op, red, stag[src*m+i*s:src*m+(i+1)*s])
						}
						copy(out[pe*s:(pe+1)*s], red)
					}
				})
				return out
			},
		},
		&core.StepSync{}, // RS/AG phase barrier
		&core.StepBulk{
			Read: true, ReadOff: dstOff, ReadPerPE: s,
			Write: true, WriteOff: dstOff, WritePerPE: m,
			// Replication pass over all output, memcpy class — the
			// reference's second charge.
			Charges: []core.Charge{{Kind: core.ChargeSIMD, Bytes: e.MachineBytes(m)}},
			Modulate: func(stag []byte) []byte {
				out := e.BulkOut(e.TotalPEs() * m)
				e.EachGroup(func(g int, pes []int) {
					for _, pe := range pes {
						for k, src := range pes {
							copy(out[pe*m+k*s:pe*m+(k+1)*s], stag[src*s:(src+1)*s])
						}
					}
				})
				return out
			},
		},
		&core.StepSync{},
	)
	return sched
}
