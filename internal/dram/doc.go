// Package dram simulates the memory side of a commodity PIM-enabled DIMM
// system (UPMEM-like, § II-A, Figure 1).
//
// # The entangled-group constraint
//
// The hierarchy is channel -> rank -> chip -> bank. The 8 chips of a rank
// share the 64-bit channel bus, 8 bits each, and operate in unison: a
// 64-byte DDR4 burst addressed to bank b of a rank is striped byte-wise
// across bank b of all 8 chips. The set of banks {bank b of chips 0..7}
// is an *entangled group*; its 8 banks (and the PEs attached to them)
// must be accessed together to draw full bus bandwidth. This striping is
// also why host and PEs see different byte orders — the domain-transfer
// problem of § II-B that cross-domain modulation (§ V-A3) attacks.
//
// The package stores real bytes in per-bank MRAM arrays and implements
// the physical striping exactly: burst byte i lands in chip i%8 at local
// offset base+i/8. Everything above (domain transfer, collectives) builds
// on this layout, so data placement bugs surface as data corruption in
// tests rather than as silent cost-model drift.
//
// # Key types
//
//   - Geometry sizes a system (channels, ranks, banks, MRAM per bank);
//     PaperGeometry returns the paper's 1024-PE testbed (§ VIII-A).
//   - System allocates the banks and implements burst striping
//     (ReadBurst/WriteBurst), PE linearization (PEFromLinear) and the
//     group-to-rank mapping (RankOfGroup).
//   - NewPhantomSystem allocates a geometry-only system with no backing
//     MRAM: topology and size queries work, byte access panics. Combined
//     with the cost-only backend it makes paper-scale sweeps allocation-
//     free.
//   - Arena / CarveArena / FreeArena carve each bank's MRAM into
//     disjoint, burst-aligned per-tenant windows — the provisioning
//     substrate of the multi-tenant session layer (core.Tenant,
//     pidcomm.Machine). Allocation is first-fit over a coalescing free
//     list, so tenant churn (create/teardown at runtime,
//     Machine.CloseTenant) returns windows to the pool instead of
//     fragmenting MRAM; FreeSpans and LargestFree expose the pool state.
//
// # Concurrency
//
// System holds no locks: MRAM is plain memory. Concurrent access is
// safe exactly when the bursts touched are disjoint, which is the
// discipline the parallel functional executor (internal/par, core's
// worker pool) maintains by construction — workers shard column ranges
// and PE lists so no two shards ever address the same burst. Anything
// less disciplined must serialize externally; the race detector enforces
// this in CI.
//
// # Paper map
//
//	Figure 1, § II-A  Geometry, the entangled-group striping
//	§ II-B            the PIM/host byte-domain split ReadBurst exposes
//	§ VIII-A          PaperGeometry (4 ch x 4 ranks x 8 chips x 8 banks)
package dram
