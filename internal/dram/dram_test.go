package dram

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testGeo() Geometry {
	return Geometry{Channels: 2, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1024}
}

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Geometry)
		ok   bool
	}{
		{"valid", func(g *Geometry) {}, true},
		{"paper", func(g *Geometry) { *g = PaperGeometry(4096) }, true},
		{"zero channels", func(g *Geometry) { g.Channels = 0 }, false},
		{"non-pow2 ranks", func(g *Geometry) { g.RanksPerChannel = 3 }, false},
		{"non-pow2 banks", func(g *Geometry) { g.BanksPerChip = 6 }, false},
		{"tiny mram", func(g *Geometry) { g.MramPerBank = 4 }, false},
		{"zero mram", func(g *Geometry) { g.MramPerBank = 0 }, false},
	}
	for _, tc := range cases {
		g := testGeo()
		tc.mut(&g)
		err := g.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestPaperGeometryCounts(t *testing.T) {
	g := PaperGeometry(1 << 20)
	if got := g.NumPEs(); got != 1024 {
		t.Errorf("NumPEs = %d, want 1024", got)
	}
	if got := g.NumGroups(); got != 128 {
		t.Errorf("NumGroups = %d, want 128", got)
	}
}

func TestLinearPERoundTrip(t *testing.T) {
	s, err := NewSystem(testGeo())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Geometry().NumPEs(); i++ {
		id := s.PEFromLinear(i)
		if got := s.LinearPE(id); got != i {
			t.Fatalf("round trip %d -> %+v -> %d", i, id, got)
		}
	}
}

func TestLinearPEOrderChipFastest(t *testing.T) {
	s, _ := NewSystem(testGeo())
	// Consecutive linear indices within a group differ only in chip.
	id0 := s.PEFromLinear(0)
	id1 := s.PEFromLinear(1)
	if id1.Chip != id0.Chip+1 || id1.Bank != id0.Bank || id1.Rank != id0.Rank || id1.Channel != id0.Channel {
		t.Errorf("linear order not chip-fastest: %+v then %+v", id0, id1)
	}
	// After 8 chips the bank advances.
	id8 := s.PEFromLinear(8)
	if id8.Bank != id0.Bank+1 || id8.Chip != 0 {
		t.Errorf("PE 8 should be next bank: %+v", id8)
	}
}

func TestGroupPEsContiguous(t *testing.T) {
	s, _ := NewSystem(testGeo())
	for g := 0; g < s.Geometry().NumGroups(); g++ {
		pes := s.GroupPEs(g)
		if len(pes) != ChipsPerRank {
			t.Fatalf("group %d size %d", g, len(pes))
		}
		first := s.PEFromLinear(pes[0])
		for c, pe := range pes {
			id := s.PEFromLinear(pe)
			if id.Chip != c || id.Bank != first.Bank || id.Rank != first.Rank || id.Channel != first.Channel {
				t.Fatalf("group %d member %d has wrong coords %+v", g, c, id)
			}
			gotG, gotC := s.GroupOf(pe)
			if gotG != g || gotC != c {
				t.Fatalf("GroupOf(%d) = (%d,%d), want (%d,%d)", pe, gotG, gotC, g, c)
			}
		}
	}
}

func TestRankOfGroup(t *testing.T) {
	s, _ := NewSystem(testGeo())
	// Groups 0..BanksPerChip-1 are rank 0 channel 0; next BanksPerChip are rank 1.
	b := s.Geometry().BanksPerChip
	ch, rk := s.RankOfGroup(0)
	if ch != 0 || rk != 0 {
		t.Errorf("group 0 at (ch %d, rank %d)", ch, rk)
	}
	ch, rk = s.RankOfGroup(b)
	if ch != 0 || rk != 1 {
		t.Errorf("group %d at (ch %d, rank %d), want (0,1)", b, ch, rk)
	}
}

func TestBurstStriping(t *testing.T) {
	s, _ := NewSystem(testGeo())
	var in [BurstBytes]byte
	for i := range in {
		in[i] = byte(i)
	}
	s.WriteBurst(3, 16, &in)
	// Physical check: bank c of group 3 must hold bytes {c, 8+c, ...} at
	// offsets 16..23.
	for c := 0; c < ChipsPerRank; c++ {
		m := s.BankBytes(3*ChipsPerRank + c)
		for w := 0; w < BankBurstBytes; w++ {
			if m[16+w] != byte(8*w+c) {
				t.Fatalf("bank %d word %d = %d, want %d", c, w, m[16+w], 8*w+c)
			}
		}
	}
	var out [BurstBytes]byte
	s.ReadBurst(3, 16, &out)
	if out != in {
		t.Fatal("read-back mismatch")
	}
}

func TestBurstRoundTripProperty(t *testing.T) {
	s, _ := NewSystem(testGeo())
	f := func(seed int64, g, off uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		group := int(g) % s.Geometry().NumGroups()
		offset := (int(off) % (s.Geometry().MramPerBank/BankBurstBytes - 1)) * BankBurstBytes
		var in, out [BurstBytes]byte
		rng.Read(in[:])
		s.WriteBurst(group, offset, &in)
		s.ReadBurst(group, offset, &out)
		return in == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBurstsDoNotOverlap(t *testing.T) {
	s, _ := NewSystem(testGeo())
	var a, b [BurstBytes]byte
	for i := range a {
		a[i] = 0xAA
		b[i] = 0xBB
	}
	s.WriteBurst(0, 0, &a)
	s.WriteBurst(0, 8, &b)
	s.WriteBurst(1, 0, &b)
	var out [BurstBytes]byte
	s.ReadBurst(0, 0, &out)
	if out != a {
		t.Error("adjacent burst or group clobbered burst at (0,0)")
	}
}

func TestBurstAlignmentPanics(t *testing.T) {
	s, _ := NewSystem(testGeo())
	var buf [BurstBytes]byte
	for _, bad := range []struct{ group, off int }{
		{-1, 0}, {1000, 0}, {0, 4}, {0, -8}, {0, 1024},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for group=%d off=%d", bad.group, bad.off)
				}
			}()
			s.ReadBurst(bad.group, bad.off, &buf)
		}()
	}
}

func TestBankBytesIsLive(t *testing.T) {
	s, _ := NewSystem(testGeo())
	m := s.BankBytes(5)
	m[0] = 42
	if s.BankBytes(5)[0] != 42 {
		t.Error("BankBytes should return live storage")
	}
}

func TestNewSystemRejectsBadGeometry(t *testing.T) {
	if _, err := NewSystem(Geometry{}); err == nil {
		t.Error("expected error for zero geometry")
	}
}

// Writing a burst through WriteBurst and reading each bank's share directly
// must agree with reading the burst and slicing lanes after transpose; this
// pins the striping orientation used throughout the repo.
func TestStripingOrientationPinned(t *testing.T) {
	s, _ := NewSystem(testGeo())
	var in [BurstBytes]byte
	for i := range in {
		in[i] = byte(i * 3)
	}
	s.WriteBurst(2, 0, &in)
	for c := 0; c < ChipsPerRank; c++ {
		bank := s.BankBytes(2*ChipsPerRank + c)[:BankBurstBytes]
		want := make([]byte, BankBurstBytes)
		for w := range want {
			want[w] = in[8*w+c]
		}
		if !bytes.Equal(bank, want) {
			t.Fatalf("bank %d: got %v want %v", c, bank, want)
		}
	}
}
