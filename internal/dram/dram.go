package dram

import (
	"fmt"
	"sync"
)

// ChipsPerRank is fixed by the DDR4 x8 DIMM organization: 8 chips with
// 8-bit buses concatenate into the 64-bit channel bus.
const ChipsPerRank = 8

// BurstBytes is the DDR4 burst granularity: 8 beats x 64 bits = 64 bytes.
// It is also the entangled-group access unit (8 bytes per bank).
const BurstBytes = 64

// BankBurstBytes is each bank's share of a burst.
const BankBurstBytes = BurstBytes / ChipsPerRank

// Geometry describes a PIM-enabled DIMM system.
type Geometry struct {
	// Channels is the number of memory channels (paper system: 4).
	Channels int
	// RanksPerChannel is the number of ranks per channel (paper: 4).
	RanksPerChannel int
	// BanksPerChip is the number of banks (= PEs) per chip (paper: 8).
	BanksPerChip int
	// MramPerBank is the per-bank MRAM capacity in bytes (UPMEM: 64 MiB;
	// tests use small values).
	MramPerBank int
}

// Validate checks the geometry for physical plausibility.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("dram: Channels must be positive, got %d", g.Channels)
	case g.RanksPerChannel <= 0 || g.RanksPerChannel&(g.RanksPerChannel-1) != 0:
		return fmt.Errorf("dram: RanksPerChannel must be a positive power of two, got %d", g.RanksPerChannel)
	case g.BanksPerChip <= 0 || g.BanksPerChip&(g.BanksPerChip-1) != 0:
		return fmt.Errorf("dram: BanksPerChip must be a positive power of two, got %d", g.BanksPerChip)
	case g.MramPerBank <= 0 || g.MramPerBank%BankBurstBytes != 0:
		return fmt.Errorf("dram: MramPerBank must be a positive multiple of %d, got %d", BankBurstBytes, g.MramPerBank)
	}
	return nil
}

// NumPEs returns the total number of PEs (= banks) in the system.
func (g Geometry) NumPEs() int {
	return g.Channels * g.RanksPerChannel * ChipsPerRank * g.BanksPerChip
}

// NumGroups returns the number of entangled groups.
func (g Geometry) NumGroups() int { return g.NumPEs() / ChipsPerRank }

// GroupsPerRank returns entangled groups per rank (= banks per chip).
func (g Geometry) GroupsPerRank() int { return g.BanksPerChip }

// PaperGeometry returns the paper's testbed: 4 channels x 4 ranks x 8 chips
// x 8 banks = 1024 PEs, with mramPerBank bytes of MRAM each.
func PaperGeometry(mramPerBank int) Geometry {
	return Geometry{Channels: 4, RanksPerChannel: 4, BanksPerChip: 8, MramPerBank: mramPerBank}
}

// PEID identifies a PE by its physical coordinates.
type PEID struct {
	Channel, Rank, Chip, Bank int
}

// System is a simulated PIM-DIMM memory system holding real bytes — or,
// in phantom mode, only the geometry: a phantom system answers every
// size/topology query but backs no MRAM, so cost-only analyses can model
// paper-scale machines without allocating gigabytes. Any attempt to move
// actual bytes through a phantom system panics, which is what guarantees
// a cost-only backend really never touches data.
type System struct {
	geo Geometry
	// mram[linear PE index] is that bank's MRAM; nil in phantom mode.
	mram [][]byte
	// phantom marks a geometry-only system.
	phantom bool

	// carveMu guards free, the sorted, coalesced list of unallocated
	// per-bank MRAM spans the arena allocator (CarveArena/FreeArena)
	// hands windows out of.
	carveMu sync.Mutex
	free    []Arena
}

// Arena is a per-bank MRAM byte window [Base, Base+Bytes), identical on
// every PE: the unit of multi-tenant isolation. Arenas are carved
// first-fit from a coalescing free list, so tenants can come and go at
// runtime: FreeArena returns a window to the allocator and merges it
// with adjacent free spans, keeping churn from fragmenting MRAM.
type Arena struct {
	Base  int
	Bytes int
}

// End returns the first offset past the arena.
func (a Arena) End() int { return a.Base + a.Bytes }

// CarveArena reserves a bytes-sized window of every bank's MRAM (rounded
// up to BankBurstBytes so arena-relative alignment equals absolute
// alignment) and returns the carved window. Allocation is first-fit over
// the free list ordered by base offset, so with no intervening frees
// arenas are carved sequentially from offset 0. Carving works on phantom
// systems too — only sizes are tracked.
func (s *System) CarveArena(bytes int) (Arena, error) {
	if bytes <= 0 {
		return Arena{}, fmt.Errorf("dram: arena bytes must be positive, got %d", bytes)
	}
	if r := bytes % BankBurstBytes; r != 0 {
		bytes += BankBurstBytes - r
	}
	s.carveMu.Lock()
	defer s.carveMu.Unlock()
	for i, f := range s.free {
		if f.Bytes < bytes {
			continue
		}
		a := Arena{Base: f.Base, Bytes: bytes}
		if f.Bytes == bytes {
			s.free = append(s.free[:i], s.free[i+1:]...)
		} else {
			s.free[i] = Arena{Base: f.Base + bytes, Bytes: f.Bytes - bytes}
		}
		return a, nil
	}
	return Arena{}, fmt.Errorf("dram: arena of %d B does not fit: %d of %d B carved, largest free span %d B",
		bytes, s.carvedLocked(), s.geo.MramPerBank, s.largestFreeLocked())
}

// FreeArena returns a previously carved window to the allocator,
// coalescing it with adjacent free spans. The arena must be exactly as
// carved (aligned, inside MRAM) and must not overlap any free span —
// double frees and partial frees are rejected.
func (s *System) FreeArena(a Arena) error {
	if a.Bytes <= 0 {
		return fmt.Errorf("dram: free of arena with non-positive size %d", a.Bytes)
	}
	if a.Base < 0 || a.Base%BankBurstBytes != 0 || a.Bytes%BankBurstBytes != 0 || a.End() > s.geo.MramPerBank {
		return fmt.Errorf("dram: free of malformed arena [%d,%d) (mram %d)", a.Base, a.End(), s.geo.MramPerBank)
	}
	s.carveMu.Lock()
	defer s.carveMu.Unlock()
	// Find the insertion point: first free span at or past the arena.
	i := 0
	for i < len(s.free) && s.free[i].Base < a.Base {
		i++
	}
	if i > 0 && s.free[i-1].End() > a.Base {
		return fmt.Errorf("dram: double free: arena [%d,%d) overlaps free span [%d,%d)",
			a.Base, a.End(), s.free[i-1].Base, s.free[i-1].End())
	}
	if i < len(s.free) && a.End() > s.free[i].Base {
		return fmt.Errorf("dram: double free: arena [%d,%d) overlaps free span [%d,%d)",
			a.Base, a.End(), s.free[i].Base, s.free[i].End())
	}
	mergePrev := i > 0 && s.free[i-1].End() == a.Base
	mergeNext := i < len(s.free) && a.End() == s.free[i].Base
	switch {
	case mergePrev && mergeNext:
		s.free[i-1].Bytes += a.Bytes + s.free[i].Bytes
		s.free = append(s.free[:i], s.free[i+1:]...)
	case mergePrev:
		s.free[i-1].Bytes += a.Bytes
	case mergeNext:
		s.free[i] = Arena{Base: a.Base, Bytes: a.Bytes + s.free[i].Bytes}
	default:
		s.free = append(s.free, Arena{})
		copy(s.free[i+1:], s.free[i:])
		s.free[i] = a
	}
	return nil
}

func (s *System) carvedLocked() int {
	free := 0
	for _, f := range s.free {
		free += f.Bytes
	}
	return s.geo.MramPerBank - free
}

func (s *System) largestFreeLocked() int {
	max := 0
	for _, f := range s.free {
		if f.Bytes > max {
			max = f.Bytes
		}
	}
	return max
}

// CarvedBytes returns the per-bank bytes currently carved into arenas.
func (s *System) CarvedBytes() int {
	s.carveMu.Lock()
	defer s.carveMu.Unlock()
	return s.carvedLocked()
}

// LargestFree returns the largest contiguous free span's size — the
// biggest arena CarveArena can currently satisfy.
func (s *System) LargestFree() int {
	s.carveMu.Lock()
	defer s.carveMu.Unlock()
	return s.largestFreeLocked()
}

// FreeSpans returns a copy of the free list, sorted by base offset and
// maximally coalesced (no two spans are adjacent or overlapping).
func (s *System) FreeSpans() []Arena {
	s.carveMu.Lock()
	defer s.carveMu.Unlock()
	out := make([]Arena, len(s.free))
	copy(out, s.free)
	return out
}

// NewSystem allocates a system with the given geometry.
func NewSystem(geo Geometry) (*System, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	s := &System{geo: geo, mram: make([][]byte, geo.NumPEs()), free: []Arena{{Base: 0, Bytes: geo.MramPerBank}}}
	for i := range s.mram {
		s.mram[i] = make([]byte, geo.MramPerBank)
	}
	return s, nil
}

// NewPhantomSystem validates the geometry and returns a system with no
// backing MRAM. It is the substrate for cost-only execution: region
// checks, group enumeration and bus accounting all work, but ReadBurst,
// WriteBurst and BankBytes panic.
func NewPhantomSystem(geo Geometry) (*System, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	return &System{geo: geo, phantom: true, free: []Arena{{Base: 0, Bytes: geo.MramPerBank}}}, nil
}

// Phantom reports whether the system backs no MRAM.
func (s *System) Phantom() bool { return s.phantom }

func (s *System) checkBacked(op string) {
	if s.phantom {
		panic(fmt.Sprintf("dram: %s on a phantom (cost-only) system", op))
	}
}

// Geometry returns the system geometry.
func (s *System) Geometry() Geometry { return s.geo }

// LinearPE converts physical coordinates to the linear PE index in
// chip -> bank -> rank -> channel order (chip varies fastest). This order
// makes each entangled group a contiguous run of 8 PEs, which is the basis
// of the hypercube mapping (§ IV-C, Figure 6).
func (s *System) LinearPE(id PEID) int {
	g := s.geo
	if id.Channel < 0 || id.Channel >= g.Channels ||
		id.Rank < 0 || id.Rank >= g.RanksPerChannel ||
		id.Chip < 0 || id.Chip >= ChipsPerRank ||
		id.Bank < 0 || id.Bank >= g.BanksPerChip {
		panic(fmt.Sprintf("dram: PE %+v out of range for %+v", id, g))
	}
	return id.Chip + ChipsPerRank*(id.Bank+g.BanksPerChip*(id.Rank+g.RanksPerChannel*id.Channel))
}

// PEFromLinear is the inverse of LinearPE.
func (s *System) PEFromLinear(idx int) PEID {
	g := s.geo
	if idx < 0 || idx >= g.NumPEs() {
		panic(fmt.Sprintf("dram: linear PE %d out of range", idx))
	}
	chip := idx % ChipsPerRank
	idx /= ChipsPerRank
	bank := idx % g.BanksPerChip
	idx /= g.BanksPerChip
	rank := idx % g.RanksPerChannel
	channel := idx / g.RanksPerChannel
	return PEID{Channel: channel, Rank: rank, Chip: chip, Bank: bank}
}

// GroupOf returns the entangled-group index of a linear PE and the PE's
// chip position within the group. Group k contains linear PEs
// [8k, 8k+8); all share (channel, rank, bank) and differ in chip.
func (s *System) GroupOf(linearPE int) (group, chip int) {
	return linearPE / ChipsPerRank, linearPE % ChipsPerRank
}

// GroupPEs returns the linear PE indices of entangled group g in chip order.
func (s *System) GroupPEs(group int) []int {
	if group < 0 || group >= s.geo.NumGroups() {
		panic(fmt.Sprintf("dram: group %d out of range", group))
	}
	out := make([]int, ChipsPerRank)
	for c := range out {
		out[c] = group*ChipsPerRank + c
	}
	return out
}

// RankOfGroup returns the (channel, rank) that entangled group g lives in.
// Transfers to groups in different ranks can proceed in parallel
// (rank-level parallelism); groups in the same rank share the bus timing.
func (s *System) RankOfGroup(group int) (channel, rank int) {
	id := s.PEFromLinear(group * ChipsPerRank)
	return id.Channel, id.Rank
}

// MramSize returns the per-bank MRAM size.
func (s *System) MramSize() int { return s.geo.MramPerBank }

func (s *System) checkBurst(group, offset int) {
	if group < 0 || group >= s.geo.NumGroups() {
		panic(fmt.Sprintf("dram: group %d out of range", group))
	}
	if offset < 0 || offset%BankBurstBytes != 0 || offset+BankBurstBytes > s.geo.MramPerBank {
		panic(fmt.Sprintf("dram: burst offset %d invalid (mram %d)", offset, s.geo.MramPerBank))
	}
}

// ReadBurst reads one 64-byte burst from entangled group g at per-bank
// offset off (must be 8-byte aligned): the returned buffer interleaves the
// 8 banks byte-wise, exactly as the bytes appear on the channel bus. That
// is, out[i] = bank(i%8).mram[off + i/8].
func (s *System) ReadBurst(group, off int, out *[BurstBytes]byte) {
	s.checkBacked("ReadBurst")
	s.checkBurst(group, off)
	base := group * ChipsPerRank
	for c := 0; c < ChipsPerRank; c++ {
		m := s.mram[base+c]
		for w := 0; w < BankBurstBytes; w++ {
			out[8*w+c] = m[off+w]
		}
	}
}

// WriteBurst writes one 64-byte burst to entangled group g at per-bank
// offset off, striping bytes exactly as the memory controller does:
// bank(i%8).mram[off + i/8] = in[i].
func (s *System) WriteBurst(group, off int, in *[BurstBytes]byte) {
	s.checkBacked("WriteBurst")
	s.checkBurst(group, off)
	base := group * ChipsPerRank
	for c := 0; c < ChipsPerRank; c++ {
		m := s.mram[base+c]
		for w := 0; w < BankBurstBytes; w++ {
			m[off+w] = in[8*w+c]
		}
	}
}

// BankBytes exposes the raw MRAM of a PE for the DPU simulator (the PE can
// access its own bank directly, at MRAM bandwidth, without striping --
// that path never crosses the channel bus).
func (s *System) BankBytes(linearPE int) []byte {
	s.checkBacked("BankBytes")
	if linearPE < 0 || linearPE >= s.geo.NumPEs() {
		panic(fmt.Sprintf("dram: PE %d out of range", linearPE))
	}
	return s.mram[linearPE]
}
