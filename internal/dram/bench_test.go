package dram

import "testing"

// Micro-benchmarks of the burst striping layer.

func BenchmarkWriteBurst(b *testing.B) {
	s, err := NewSystem(Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 8, MramPerBank: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	var buf [BurstBytes]byte
	b.SetBytes(BurstBytes)
	for i := 0; i < b.N; i++ {
		s.WriteBurst(i%8, (i%512)*8, &buf)
	}
}

func BenchmarkReadBurst(b *testing.B) {
	s, err := NewSystem(Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 8, MramPerBank: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	var buf [BurstBytes]byte
	b.SetBytes(BurstBytes)
	for i := 0; i < b.N; i++ {
		s.ReadBurst(i%8, (i%512)*8, &buf)
	}
}
