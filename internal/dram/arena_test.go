package dram

import (
	"math/rand"
	"testing"
)

const arenaTestMram = 1 << 12 // 4 KiB per bank keeps the state space small

func arenaTestSystem(t *testing.T) *System {
	t.Helper()
	geo := Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 1, MramPerBank: arenaTestMram}
	s, err := NewPhantomSystem(geo)
	if err != nil {
		t.Fatalf("NewPhantomSystem: %v", err)
	}
	return s
}

// checkAllocatorInvariants asserts the free list is sorted, aligned,
// maximally coalesced, and exactly partitions MRAM together with the
// live arenas.
func checkAllocatorInvariants(t *testing.T, s *System, live []Arena) {
	t.Helper()
	free := s.FreeSpans()
	prevEnd := -1
	freeBytes := 0
	for i, f := range free {
		if f.Bytes <= 0 || f.Base < 0 || f.End() > arenaTestMram {
			t.Fatalf("free span %d malformed: %+v", i, f)
		}
		if f.Base%BankBurstBytes != 0 || f.Bytes%BankBurstBytes != 0 {
			t.Fatalf("free span %d unaligned: %+v", i, f)
		}
		if f.Base <= prevEnd {
			t.Fatalf("free list not sorted/coalesced at %d: %v", i, free)
		}
		prevEnd = f.End()
		freeBytes += f.Bytes
	}
	liveBytes := 0
	for i, a := range live {
		liveBytes += a.Bytes
		// Live arenas must not overlap each other...
		for _, b := range live[i+1:] {
			if a.Base < b.End() && b.Base < a.End() {
				t.Fatalf("live arenas overlap: %+v vs %+v", a, b)
			}
		}
		// ...or any free span.
		for _, f := range free {
			if a.Base < f.End() && f.Base < a.End() {
				t.Fatalf("live arena %+v overlaps free span %+v", a, f)
			}
		}
	}
	if liveBytes+freeBytes != arenaTestMram {
		t.Fatalf("live (%d) + free (%d) != MRAM (%d)", liveBytes, freeBytes, arenaTestMram)
	}
	if got := s.CarvedBytes(); got != liveBytes {
		t.Fatalf("CarvedBytes = %d, want %d", got, liveBytes)
	}
}

// TestArenaChurnProperty drives random alloc/free/realloc sequences and
// checks the tentpole invariant: live arenas never overlap each other or
// the free list, and releasing everything always re-coalesces the
// allocator to its initial single-span free state.
func TestArenaChurnProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := arenaTestSystem(t)
		var live []Arena
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(3); {
			case op == 0 || len(live) == 0: // alloc
				bytes := 1 + rng.Intn(arenaTestMram/4)
				a, err := s.CarveArena(bytes)
				if err == nil {
					live = append(live, a)
				} else if s.LargestFree() >= bytes+BankBurstBytes {
					t.Fatalf("seed %d step %d: carve %d failed with %d free: %v",
						seed, step, bytes, s.LargestFree(), err)
				}
			case op == 1: // free
				i := rng.Intn(len(live))
				if err := s.FreeArena(live[i]); err != nil {
					t.Fatalf("seed %d step %d: free %+v: %v", seed, step, live[i], err)
				}
				live = append(live[:i], live[i+1:]...)
			default: // realloc: free then immediately re-carve a new size
				i := rng.Intn(len(live))
				if err := s.FreeArena(live[i]); err != nil {
					t.Fatalf("seed %d step %d: free %+v: %v", seed, step, live[i], err)
				}
				live = append(live[:i], live[i+1:]...)
				if a, err := s.CarveArena(1 + rng.Intn(arenaTestMram/4)); err == nil {
					live = append(live, a)
				}
			}
			checkAllocatorInvariants(t, s, live)
		}
		// Tear everything down: the allocator must return to one
		// fully-coalesced span covering all of MRAM.
		for _, a := range live {
			if err := s.FreeArena(a); err != nil {
				t.Fatalf("seed %d teardown free %+v: %v", seed, a, err)
			}
		}
		free := s.FreeSpans()
		if len(free) != 1 || free[0] != (Arena{Base: 0, Bytes: arenaTestMram}) {
			t.Fatalf("seed %d: allocator did not re-coalesce: %v", seed, free)
		}
	}
}

func TestArenaFirstFitReusesLowestBase(t *testing.T) {
	s := arenaTestSystem(t)
	a, _ := s.CarveArena(256)
	b, _ := s.CarveArena(256)
	c, _ := s.CarveArena(256)
	if a.Base != 0 || b.Base != 256 || c.Base != 512 {
		t.Fatalf("sequential carve gave %v %v %v", a, b, c)
	}
	if err := s.FreeArena(b); err != nil {
		t.Fatalf("free b: %v", err)
	}
	// A fit-sized carve must reuse the freed hole, not the tail.
	d, err := s.CarveArena(128)
	if err != nil || d.Base != 256 {
		t.Fatalf("carve after free gave %v, %v; want base 256", d, err)
	}
	// An oversized carve skips the hole remainder and lands past c.
	e, err := s.CarveArena(512)
	if err != nil || e.Base != 768 {
		t.Fatalf("oversized carve gave %v, %v; want base 768", e, err)
	}
}

func TestArenaFreeRejectsDoubleAndMalformed(t *testing.T) {
	s := arenaTestSystem(t)
	a, _ := s.CarveArena(256)
	if err := s.FreeArena(a); err != nil {
		t.Fatalf("first free: %v", err)
	}
	if err := s.FreeArena(a); err == nil {
		t.Fatal("double free not rejected")
	}
	b, _ := s.CarveArena(256)
	for _, bad := range []Arena{
		{Base: b.Base, Bytes: 0},
		{Base: b.Base, Bytes: -8},
		{Base: b.Base + 3, Bytes: 8},
		{Base: b.Base, Bytes: 13},
		{Base: arenaTestMram - 8, Bytes: 16},
		{Base: -8, Bytes: 8},
	} {
		if err := s.FreeArena(bad); err == nil {
			t.Fatalf("malformed free %+v not rejected", bad)
		}
	}
	// A span straddling a live arena's tail and the free region beyond
	// it partially overlaps the free list: also a double free.
	c, _ := s.CarveArena(256)
	if err := s.FreeArena(Arena{Base: c.End() - 8, Bytes: 16}); err == nil {
		t.Fatal("overlapping free not rejected")
	}
}

func TestArenaExhaustionReportsLargestFree(t *testing.T) {
	s := arenaTestSystem(t)
	if _, err := s.CarveArena(arenaTestMram + 8); err == nil {
		t.Fatal("oversized carve not rejected")
	}
	a, err := s.CarveArena(arenaTestMram)
	if err != nil {
		t.Fatalf("full-size carve: %v", err)
	}
	if s.LargestFree() != 0 {
		t.Fatalf("LargestFree = %d after full carve", s.LargestFree())
	}
	if _, err := s.CarveArena(8); err == nil {
		t.Fatal("carve from empty pool not rejected")
	}
	if err := s.FreeArena(a); err != nil {
		t.Fatalf("free full arena: %v", err)
	}
	if s.LargestFree() != arenaTestMram {
		t.Fatalf("LargestFree = %d after full free", s.LargestFree())
	}
}
