package elem

import (
	"testing"
	"testing/quick"
)

func TestSizes(t *testing.T) {
	want := map[Type]int{I8: 1, I16: 2, I32: 4, I64: 8}
	for ty, sz := range want {
		if ty.Size() != sz {
			t.Errorf("%v.Size() = %d, want %d", ty, ty.Size(), sz)
		}
	}
}

func TestStrings(t *testing.T) {
	if I8.String() != "INT8" || I64.String() != "INT64" {
		t.Error("type names wrong")
	}
	if Sum.String() != "SUM" || Xor.String() != "XOR" {
		t.Error("op names wrong")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	f := func(v int64, off uint8) bool {
		buf := make([]byte, 64)
		for _, ty := range Types() {
			o := int(off) % (64 - 8)
			Store(ty, buf, o, v)
			got := Load(ty, buf, o)
			// The round trip truncates to the type's width and
			// sign-extends back.
			bits := uint(ty.Size() * 8)
			want := v << (64 - bits) >> (64 - bits)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineSemantics(t *testing.T) {
	cases := []struct {
		op      Op
		a, b, w int64
	}{
		{Sum, 3, 4, 7},
		{Min, -5, 2, -5},
		{Max, -5, 2, 2},
		{Or, 0b0101, 0b0011, 0b0111},
		{And, 0b0101, 0b0011, 0b0001},
		{Xor, 0b0101, 0b0011, 0b0110},
	}
	for _, c := range cases {
		if got := c.op.Combine(c.a, c.b); got != c.w {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.w)
		}
	}
}

// Every operator must be commutative and associative at every width —
// the property that makes multi-instance reductions order-independent.
func TestOpsCommutativeAssociativeProperty(t *testing.T) {
	for _, op := range Ops() {
		for _, ty := range Types() {
			op, ty := op, ty
			f := func(a, b, c int64) bool {
				buf := make([]byte, 8)
				norm := func(v int64) int64 {
					Store(ty, buf, 0, v)
					return Load(ty, buf, 0)
				}
				a, b, c = norm(a), norm(b), norm(c)
				comm := norm(op.Combine(a, b)) == norm(op.Combine(b, a))
				asc := norm(op.Combine(norm(op.Combine(a, b)), c)) ==
					norm(op.Combine(a, norm(op.Combine(b, c))))
				return comm && asc
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Errorf("%v/%v: %v", op, ty, err)
			}
		}
	}
}

// Identity elements must be neutral at the stored width.
func TestIdentityNeutralProperty(t *testing.T) {
	for _, op := range Ops() {
		for _, ty := range Types() {
			op, ty := op, ty
			f := func(v int64) bool {
				buf := make([]byte, 8)
				Store(ty, buf, 0, v)
				v = Load(ty, buf, 0)
				got := op.Combine(op.Identity(ty), v)
				Store(ty, buf, 0, got)
				return Load(ty, buf, 0) == v
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Errorf("%v/%v identity not neutral: %v", op, ty, err)
			}
		}
	}
}

func TestReduceInto(t *testing.T) {
	dst := make([]byte, 8)
	src := make([]byte, 8)
	Fill(I16, dst, 10)
	Fill(I16, src, -3)
	ReduceInto(I16, Sum, dst, src)
	for off := 0; off < 8; off += 2 {
		if got := Load(I16, dst, off); got != 7 {
			t.Fatalf("dst[%d] = %d, want 7", off, got)
		}
	}
}

func TestReduceIntoPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ReduceInto(I32, Sum, make([]byte, 8), make([]byte, 4)) }, // length mismatch
		func() { ReduceInto(I32, Sum, make([]byte, 6), make([]byte, 6)) }, // not multiple of size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFillPartialTail(t *testing.T) {
	buf := make([]byte, 10) // not a multiple of 4
	Fill(I32, buf, -1)
	if Load(I32, buf, 0) != -1 || Load(I32, buf, 4) != -1 {
		t.Error("fill missed aligned elements")
	}
	if buf[8] != 0 || buf[9] != 0 {
		t.Error("fill wrote past the last whole element")
	}
}

func TestSumWrapsAtWidth(t *testing.T) {
	buf := make([]byte, 2)
	Store(I16, buf, 0, 32767)
	v := Sum.Combine(Load(I16, buf, 0), 1)
	Store(I16, buf, 0, v)
	if got := Load(I16, buf, 0); got != -32768 {
		t.Errorf("I16 wrap: got %d", got)
	}
}
