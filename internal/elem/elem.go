// Package elem defines the element data types and reduction operators
// supported by PID-Comm's arithmetic primitives (§ V-C "Data types"):
// signed integers of 8/16/32/64 bits with SUM/MIN/MAX/OR/AND/XOR
// reductions, encoded little-endian in the simulated memories.
package elem

import (
	"encoding/binary"
	"fmt"
)

// Type is an element data type.
type Type int

const (
	// I8 is an 8-bit signed integer. Notably, 8-bit elements can be
	// interpreted by the host without domain transfer (§ V-C), which
	// enables cross-domain modulation even for reducing primitives.
	I8 Type = iota
	// I16 is a 16-bit signed integer.
	I16
	// I32 is a 32-bit signed integer.
	I32
	// I64 is a 64-bit signed integer.
	I64
)

// Types lists all supported element types.
func Types() []Type { return []Type{I8, I16, I32, I64} }

// Size returns the element size in bytes.
func (t Type) Size() int {
	switch t {
	case I8:
		return 1
	case I16:
		return 2
	case I32:
		return 4
	case I64:
		return 8
	default:
		panic(fmt.Sprintf("elem: unknown type %d", int(t)))
	}
}

// String returns the conventional name (INT8, ...).
func (t Type) String() string {
	switch t {
	case I8:
		return "INT8"
	case I16:
		return "INT16"
	case I32:
		return "INT32"
	case I64:
		return "INT64"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Op is a reduction operator.
type Op int

const (
	// Sum adds elements (wrapping two's-complement).
	Sum Op = iota
	// Min takes the signed minimum (used by Connected Components).
	Min
	// Max takes the signed maximum.
	Max
	// Or is bitwise OR (used by BFS frontier updates).
	Or
	// And is bitwise AND.
	And
	// Xor is bitwise XOR.
	Xor
)

// Ops lists all supported reduction operators.
func Ops() []Op { return []Op{Sum, Min, Max, Or, And, Xor} }

// String returns the conventional name (SUM, ...).
func (o Op) String() string {
	switch o {
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Or:
		return "OR"
	case And:
		return "AND"
	case Xor:
		return "XOR"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Load reads the element at byte offset off of buf as a signed value
// widened to int64.
func Load(t Type, buf []byte, off int) int64 {
	switch t {
	case I8:
		return int64(int8(buf[off]))
	case I16:
		return int64(int16(binary.LittleEndian.Uint16(buf[off:])))
	case I32:
		return int64(int32(binary.LittleEndian.Uint32(buf[off:])))
	case I64:
		return int64(binary.LittleEndian.Uint64(buf[off:]))
	default:
		panic(fmt.Sprintf("elem: unknown type %d", int(t)))
	}
}

// Store writes v (truncated to the type's width) at byte offset off of buf.
func Store(t Type, buf []byte, off int, v int64) {
	switch t {
	case I8:
		buf[off] = byte(v)
	case I16:
		binary.LittleEndian.PutUint16(buf[off:], uint16(v))
	case I32:
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
	case I64:
		binary.LittleEndian.PutUint64(buf[off:], uint64(v))
	default:
		panic(fmt.Sprintf("elem: unknown type %d", int(t)))
	}
}

// Combine applies the operator to two values already widened to int64.
// For Sum the result wraps at the target width only when stored.
func (o Op) Combine(a, b int64) int64 {
	switch o {
	case Sum:
		return a + b
	case Min:
		if b < a {
			return b
		}
		return a
	case Max:
		if b > a {
			return b
		}
		return a
	case Or:
		return a | b
	case And:
		return a & b
	case Xor:
		return a ^ b
	default:
		panic(fmt.Sprintf("elem: unknown op %d", int(o)))
	}
}

// Identity returns the operator's identity element for type t.
func (o Op) Identity(t Type) int64 {
	bits := uint(t.Size() * 8)
	switch o {
	case Sum, Or, Xor:
		return 0
	case And:
		return -1 // all ones at any width
	case Min:
		// Maximum representable signed value at this width.
		return int64(1)<<(bits-1) - 1
	case Max:
		// Minimum representable signed value at this width.
		return -(int64(1) << (bits - 1))
	default:
		panic(fmt.Sprintf("elem: unknown op %d", int(o)))
	}
}

// ReduceInto combines src into dst elementwise: dst[i] = op(dst[i], src[i])
// for len(dst)/t.Size() elements. len(dst) must equal len(src) and be a
// multiple of the element size.
func ReduceInto(t Type, o Op, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("elem: length mismatch %d != %d", len(dst), len(src)))
	}
	sz := t.Size()
	if len(dst)%sz != 0 {
		panic(fmt.Sprintf("elem: length %d not a multiple of element size %d", len(dst), sz))
	}
	for off := 0; off < len(dst); off += sz {
		v := o.Combine(Load(t, dst, off), Load(t, src, off))
		Store(t, dst, off, v)
	}
}

// Fill writes v into every element of buf.
func Fill(t Type, buf []byte, v int64) {
	sz := t.Size()
	for off := 0; off+sz <= len(buf); off += sz {
		Store(t, buf, off, v)
	}
}
