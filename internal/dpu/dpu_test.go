package dpu

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cost"
	"repro/internal/dram"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	sys, err := dram.NewSystem(dram.Geometry{Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(sys, cost.DefaultParams())
}

func TestKernelReadsAndWritesMram(t *testing.T) {
	e := testEngine(t)
	// Pre-fill PE 0's MRAM directly.
	m := e.System().BankBytes(0)
	for i := 0; i < 16; i++ {
		m[i] = byte(i + 1)
	}
	meter := cost.NewMeter()
	e.Launch(LaunchSpec{PEs: []int{0}, Category: cost.Kernel}, meter, func(c *Ctx) {
		buf := c.Wram()[:16]
		c.ReadMram(0, buf)
		for i := range buf {
			buf[i] *= 2
		}
		c.Exec(16)
		c.WriteMram(16, buf)
	})
	for i := 0; i < 16; i++ {
		if m[16+i] != byte(2*(i+1)) {
			t.Fatalf("mram[%d] = %d, want %d", 16+i, m[16+i], 2*(i+1))
		}
	}
	if meter.Get(cost.Kernel) <= 0 {
		t.Error("no kernel time accounted")
	}
	if meter.Get(cost.Other) != cost.DefaultParams().KernelLaunch {
		t.Error("launch overhead not accounted")
	}
}

func TestLaunchRunsAllPEs(t *testing.T) {
	e := testEngine(t)
	n := e.System().Geometry().NumPEs()
	pes := make([]int, n)
	for i := range pes {
		pes[i] = i
	}
	var count int64
	meter := cost.NewMeter()
	e.Launch(LaunchSpec{PEs: pes, Category: cost.Kernel}, meter, func(c *Ctx) {
		atomic.AddInt64(&count, 1)
		c.Exec(100)
	})
	if count != int64(n) {
		t.Errorf("kernel ran on %d PEs, want %d", count, n)
	}
}

func TestLaunchTimeIsMaxNotSum(t *testing.T) {
	e := testEngine(t)
	meter := cost.NewMeter()
	// Two PEs, one does 10x the work; elapsed should equal the slow one.
	e.Launch(LaunchSpec{PEs: []int{0, 1}, Category: cost.Kernel}, meter, func(c *Ctx) {
		if c.PE == 0 {
			c.Exec(1000)
		} else {
			c.Exec(10000)
		}
	})
	want := cost.DefaultParams().DPUInstrTime(10000)
	if got := meter.Get(cost.Kernel); math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("kernel time %v, want %v (max of PEs)", got, want)
	}
}

func TestFewTaskletsSlowDown(t *testing.T) {
	e := testEngine(t)
	run := func(tasklets int) cost.Seconds {
		m := cost.NewMeter()
		e.Launch(LaunchSpec{PEs: []int{0}, Tasklets: tasklets, Category: cost.Kernel}, m, func(c *Ctx) {
			c.Exec(11000)
		})
		return m.Get(cost.Kernel)
	}
	one := run(1)
	full := run(SaturatingTasklets)
	if one <= full {
		t.Errorf("1 tasklet (%v) should be slower than %d tasklets (%v)", one, SaturatingTasklets, full)
	}
	if ratio := float64(one) / float64(full); math.Abs(ratio-11) > 0.01 {
		t.Errorf("slowdown ratio %v, want ~11", ratio)
	}
	// More than saturating tasklets does not speed up further.
	if extra := run(24); extra != full {
		t.Errorf("24 tasklets (%v) should equal %d tasklets (%v)", extra, SaturatingTasklets, full)
	}
}

func TestDMABoundKernel(t *testing.T) {
	e := testEngine(t)
	meter := cost.NewMeter()
	e.Launch(LaunchSpec{PEs: []int{0}, Category: cost.PEMod}, meter, func(c *Ctx) {
		buf := c.Wram()[:1024]
		for i := 0; i < 4; i++ {
			c.ReadMram(0, buf)
		}
		c.Exec(1) // negligible compute
	})
	want := cost.Seconds(4096 / cost.DefaultParams().DPUMramBW)
	if got := meter.Get(cost.PEMod); math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("DMA-bound time %v, want %v", got, want)
	}
}

func TestGroupRanks(t *testing.T) {
	e := testEngine(t)
	got := make([]int32, 3)
	meter := cost.NewMeter()
	e.Launch(LaunchSpec{PEs: []int{4, 5, 6}, GroupRanks: []int{2, 0, 1}, Category: cost.PEMod}, meter, func(c *Ctx) {
		atomic.StoreInt32(&got[c.PE-4], int32(c.GroupRank))
	})
	if got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Errorf("GroupRanks = %v", got)
	}
}

func TestGroupRankDefaultsToMinusOne(t *testing.T) {
	e := testEngine(t)
	var got int32
	e.Launch(LaunchSpec{PEs: []int{0}, Category: cost.PEMod}, cost.NewMeter(), func(c *Ctx) {
		atomic.StoreInt32(&got, int32(c.GroupRank))
	})
	if got != -1 {
		t.Errorf("default GroupRank = %d, want -1", got)
	}
}

func TestMramOutOfRangePanics(t *testing.T) {
	e := testEngine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// Launch catches nothing; the panic propagates through the goroutine...
	// run the kernel body inline to keep the panic on this goroutine.
	ctx := &Ctx{PE: 0, mram: e.System().BankBytes(0), wram: make([]byte, WramBytes)}
	ctx.ReadMram(4090, make([]byte, 100))
}

func TestLaunchEmptyPEsIsNoOp(t *testing.T) {
	e := testEngine(t)
	meter := cost.NewMeter()
	e.Launch(LaunchSpec{Category: cost.Kernel}, meter, func(c *Ctx) { t.Error("kernel ran") })
	if meter.Total() != 0 {
		t.Error("empty launch accrued time")
	}
}

func TestWramReuseDoesNotLeakBetweenPEs(t *testing.T) {
	e := testEngine(t)
	// First launch dirties WRAM.
	e.Launch(LaunchSpec{PEs: []int{0}, Category: cost.Kernel}, cost.NewMeter(), func(c *Ctx) {
		c.Wram()[0] = 0xFF
	})
	// Kernels must not rely on WRAM contents; the engine documents them as
	// undefined. This test just checks the scratchpad has full size.
	e.Launch(LaunchSpec{PEs: []int{1}, Category: cost.Kernel}, cost.NewMeter(), func(c *Ctx) {
		if len(c.Wram()) != WramBytes {
			t.Errorf("wram size %d", len(c.Wram()))
		}
	})
}

// Concurrent launches on one engine — the pattern a concurrency-safe
// Comm produces when collectives' reorder kernels and application
// kernels interleave — must be race-free: the WRAM pool is shared, and
// all launches charge one meter. Run under -race (make race).
func TestConcurrentLaunchesShareEngineAndMeter(t *testing.T) {
	e := testEngine(t)
	meter := cost.NewMeter()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns PEs [16g, 16g+16) and its own MRAM
			// region, mirroring disjoint concurrent collectives.
			pes := make([]int, 16)
			for i := range pes {
				pes[i] = g*16 + i
			}
			for iter := 0; iter < 5; iter++ {
				e.Launch(LaunchSpec{PEs: pes, Category: cost.Kernel}, meter, func(c *Ctx) {
					buf := c.Wram()[:64]
					for i := range buf {
						buf[i] = byte(c.PE)
					}
					c.WriteMram(0, buf)
					c.ReadMram(0, buf)
					c.Exec(64)
				})
				e.LaunchCharges(LaunchSpec{PEs: pes, Category: cost.PEMod}, meter,
					func(pe, _ int) (int64, int64) { return 64, 128 })
			}
		}(g)
	}
	wg.Wait()
	if meter.Get(cost.Kernel) <= 0 || meter.Get(cost.PEMod) <= 0 {
		t.Errorf("concurrent launches accrued no time: %v", meter.Snapshot())
	}
}
