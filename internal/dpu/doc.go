// Package dpu models the in-DIMM processing elements (DPUs) attached to
// each memory bank (§ II-A): a PE can stream its own bank's MRAM through
// a small WRAM scratchpad and execute simple integer instructions, with
// no path to any other PE — the architectural constraint all of
// PID-Comm's host-mediated communication exists to work around.
//
// # Key types
//
//   - Ctx is a kernel's view of one PE: ReadMram/WriteMram model the DMA
//     engine (and account its traffic), Exec accounts retired
//     instructions, Wram is the 64 KiB scratchpad.
//   - Kernel is a Go function run against the real simulated MRAM bytes
//     of one PE; correctness is checked end-to-end by the application
//     tests (bit-exact against CPU references).
//   - Engine launches kernels. Launch runs them concurrently across PEs
//     and charges the cost model with the slowest PE's modeled time (all
//     PEs run in parallel on hardware) plus the host-side launch
//     overhead; per-PE time is max(instruction time, MRAM DMA time),
//     modeling tasklet-level DMA/compute overlap, degraded below
//     SaturatingTasklets (UPMEM guidance: >= 11 tasklets for ~1 IPC).
//   - LaunchCharges is the cost-only seam: it charges a launch whose
//     per-PE work is known analytically, sharing the time arithmetic
//     with Launch so both backends produce bit-identical meters.
//
// Engine.Launch is safe for concurrent use; the Comm's collectives and
// application kernels share one engine. Callers keep concurrent kernels'
// MRAM regions disjoint, as on real hardware.
//
// # Paper map
//
//	§ II-A    the PE/bank/WRAM architecture Ctx models
//	§ V-A1    the reorder kernels core launches with Category PEMod
//	§ VII     application kernels (Category Kernel) in internal/apps
package dpu
