package dpu

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/par"
)

// WramBytes is the per-DPU scratchpad size (UPMEM: 64 KiB).
const WramBytes = 64 * 1024

// SaturatingTasklets is the number of hardware threads needed to fill the
// DPU's 14-stage pipeline (UPMEM guidance: >= 11 tasklets for ~1 IPC).
const SaturatingTasklets = 11

// Ctx is a kernel's view of one PE. Kernels access MRAM only through
// ReadMram/WriteMram (modeling the DMA engine) and account compute with
// Exec. Ctx is not safe for concurrent use; each PE gets its own.
type Ctx struct {
	// PE is the linear PE index.
	PE int
	// GroupRank is a kernel argument: the PE's rank within the current
	// communication group (set by the launcher; -1 if not applicable).
	GroupRank int

	mram      []byte
	wram      []byte
	scratch   []byte
	instr     int64
	mramBytes int64
}

// Wram returns the PE's scratchpad. Contents are undefined at kernel entry.
func (c *Ctx) Wram() []byte { return c.wram }

// Scratch returns an n-byte host-side staging slab for kernel-internal
// pipelines (e.g. the rotate-blocks double buffer). Contents are
// undefined at kernel entry; the slab is retained with the pooled
// context, so steady-state kernels allocate nothing. It models WRAM
// streaming state, not extra MRAM — no traffic is accounted.
func (c *Ctx) Scratch(n int) []byte {
	if cap(c.scratch) < n {
		c.scratch = make([]byte, n)
	}
	return c.scratch[:n]
}

// ReadMram copies len(dst) bytes from MRAM offset off into dst (a WRAM
// buffer in the hardware model) and accounts the DMA traffic.
func (c *Ctx) ReadMram(off int, dst []byte) {
	if off < 0 || off+len(dst) > len(c.mram) {
		panic(fmt.Sprintf("dpu: PE %d MRAM read [%d,%d) out of range %d", c.PE, off, off+len(dst), len(c.mram)))
	}
	copy(dst, c.mram[off:])
	c.mramBytes += int64(len(dst))
}

// WriteMram copies src to MRAM offset off and accounts the DMA traffic.
func (c *Ctx) WriteMram(off int, src []byte) {
	if off < 0 || off+len(src) > len(c.mram) {
		panic(fmt.Sprintf("dpu: PE %d MRAM write [%d,%d) out of range %d", c.PE, off, off+len(src), len(c.mram)))
	}
	copy(c.mram[off:], src)
	c.mramBytes += int64(len(src))
}

// MramSize returns the PE's MRAM capacity.
func (c *Ctx) MramSize() int { return len(c.mram) }

// Exec accounts n retired DPU instructions.
func (c *Ctx) Exec(n int64) {
	if n < 0 {
		panic("dpu: negative instruction count")
	}
	c.instr += n
}

// Stats returns the accounted instruction count and MRAM traffic.
func (c *Ctx) Stats() (instr, mramBytes int64) { return c.instr, c.mramBytes }

// Kernel is a function executed on one PE.
type Kernel func(*Ctx)

// Engine launches kernels on the PEs of a dram.System.
type Engine struct {
	sys    *dram.System
	params cost.Params

	mu       sync.Mutex
	ctxs     []*Ctx         // reusable per-worker contexts (WRAM + scratch)
	launches []*launchState // reusable launch descriptors
}

// NewEngine returns an engine for the given system and cost parameters.
func NewEngine(sys *dram.System, params cost.Params) *Engine {
	return &Engine{sys: sys, params: params}
}

// System returns the underlying memory system.
func (e *Engine) System() *dram.System { return e.sys }

// Params returns the engine's cost parameters.
func (e *Engine) Params() cost.Params { return e.params }

// getCtx returns a pooled kernel context with its WRAM (and any grown
// scratch slab) attached; per-PE fields are reset by the launch loop.
func (e *Engine) getCtx() *Ctx {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.ctxs); n > 0 {
		c := e.ctxs[n-1]
		e.ctxs = e.ctxs[:n-1]
		return c
	}
	return &Ctx{wram: make([]byte, WramBytes)}
}

func (e *Engine) putCtx(c *Ctx) {
	c.mram = nil
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ctxs = append(e.ctxs, c)
}

// LaunchSpec configures a kernel launch.
type LaunchSpec struct {
	// PEs are the linear PE indices to run on.
	PEs []int
	// GroupRanks optionally assigns Ctx.GroupRank per PE (same length as
	// PEs); if nil, GroupRank is -1.
	GroupRanks []int
	// Tasklets is the number of tasklets the kernel spawns per DPU
	// (defaults to SaturatingTasklets if zero).
	Tasklets int
	// Category is the meter category for PE execution time (PEMod for
	// reorder kernels, Kernel for application compute).
	Category cost.Category
	// Workers is the number of simulator worker shards the per-PE loop
	// is split across (defaults to GOMAXPROCS if zero; 1 runs the whole
	// launch inline on the caller). Purely a simulator-throughput knob:
	// results, accounting and the charged time are byte-identical at any
	// worker count.
	Workers int
}

// launchState is one in-flight Launch: the par.Runner that executes a
// shard of the PE list on a pooled context and records the shard's
// maximum per-PE time. Recycled via the engine so steady-state launches
// allocate nothing.
type launchState struct {
	e     *Engine
	pes   []int
	ranks []int
	ipc   float64
	k     Kernel
	maxs  []cost.Seconds // per-shard maximum per-PE time
}

// RunShard executes PEs [lo, hi) of the launch on one pooled context.
func (ls *launchState) RunShard(shard, lo, hi int) {
	ctx := ls.e.getCtx()
	var localMax cost.Seconds
	for i := lo; i < hi; i++ {
		pe := ls.pes[i]
		ctx.PE = pe
		ctx.GroupRank = -1
		if ls.ranks != nil {
			ctx.GroupRank = ls.ranks[i]
		}
		ctx.mram = ls.e.sys.BankBytes(pe)
		ctx.instr, ctx.mramBytes = 0, 0
		ls.k(ctx)
		if t := ls.e.peTime(ctx.instr, ctx.mramBytes, ls.ipc); t > localMax {
			localMax = t
		}
	}
	ls.maxs[shard] = localMax
	ls.e.putCtx(ctx)
}

func (e *Engine) getLaunch(workers int) *launchState {
	e.mu.Lock()
	var ls *launchState
	if n := len(e.launches); n > 0 {
		ls = e.launches[n-1]
		e.launches = e.launches[:n-1]
	} else {
		ls = &launchState{e: e}
	}
	e.mu.Unlock()
	if cap(ls.maxs) < workers {
		ls.maxs = make([]cost.Seconds, workers)
	}
	ls.maxs = ls.maxs[:workers]
	for i := range ls.maxs {
		ls.maxs[i] = 0
	}
	return ls
}

func (e *Engine) putLaunch(ls *launchState) {
	ls.pes, ls.ranks, ls.k = nil, nil, nil
	e.mu.Lock()
	e.launches = append(e.launches, ls)
	e.mu.Unlock()
}

// Launch runs the kernel on every PE in spec (sharded across spec.Workers
// pool workers), then charges meter with the modeled elapsed time: the
// maximum per-PE time across PEs (hardware PEs run in parallel) in
// spec.Category, plus the kernel-launch overhead in Other.
//
// Per-PE modeled time is max(instruction time, MRAM DMA time): with enough
// tasklets the DPU overlaps DMA of some tasklets with compute of others;
// with few tasklets the pipeline stalls, modeled by scaling instruction
// throughput by Tasklets/SaturatingTasklets.
//
// Launch is deterministic at any worker count: each PE's accounted work
// depends only on the kernel and that PE's MRAM, shard-local maxima are
// folded in shard order, and float max is exact — so the charged time is
// bit-identical to a serial launch. Meter additions happen only on the
// calling goroutine, after every shard has finished.
//
// Launch is safe to call concurrently from multiple goroutines on one
// engine (the Comm's collectives and application kernels share it): the
// context and launch-descriptor pools are lock-protected and cost.Meter
// is internally synchronized. Callers remain responsible for keeping
// concurrent kernels' MRAM accesses disjoint, as on real hardware.
func (e *Engine) Launch(spec LaunchSpec, meter *cost.Meter, k Kernel) {
	if len(spec.PEs) == 0 {
		return
	}
	if spec.GroupRanks != nil && len(spec.GroupRanks) != len(spec.PEs) {
		panic("dpu: GroupRanks length mismatch")
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ls := e.getLaunch(workers)
	ls.pes, ls.ranks, ls.ipc, ls.k = spec.PEs, spec.GroupRanks, spec.ipc(), k
	par.Do(workers, len(spec.PEs), ls)
	var maxT cost.Seconds
	for _, t := range ls.maxs {
		if t > maxT {
			maxT = t
		}
	}
	e.putLaunch(ls)
	meter.Add(spec.Category, maxT)
	meter.Add(cost.Other, e.params.KernelLaunch)
}

func (s LaunchSpec) ipc() float64 {
	tasklets := s.Tasklets
	if tasklets <= 0 {
		tasklets = SaturatingTasklets
	}
	ipc := float64(tasklets) / SaturatingTasklets
	if ipc > 1 {
		ipc = 1
	}
	return ipc
}

// peTime converts one PE's accounted work to its modeled elapsed time:
// max(instruction time, MRAM DMA time), the overlap model documented on
// Launch. Shared by Launch and LaunchCharges so both compute identical
// floating-point results.
func (e *Engine) peTime(instr, mramBytes int64, ipc float64) cost.Seconds {
	instrT := cost.Seconds(float64(instr) / (e.params.DPUInstrHz * ipc))
	dmaT := cost.Seconds(float64(mramBytes) / e.params.DPUMramBW)
	if dmaT > instrT {
		return dmaT
	}
	return instrT
}

// LaunchCharges charges the meter for a launch whose per-PE work is known
// analytically, without running a kernel or touching MRAM. account
// returns the instruction count and MRAM DMA traffic a Launch-executed
// kernel would have reported for the PE; the time arithmetic is shared
// with Launch, so a cost-only execution reproduces the functional meter
// bit-for-bit. This is the DPU-side seam of the cost-only backend.
func (e *Engine) LaunchCharges(spec LaunchSpec, meter *cost.Meter, account func(pe, groupRank int) (instr, mramBytes int64)) {
	if len(spec.PEs) == 0 {
		return
	}
	if spec.GroupRanks != nil && len(spec.GroupRanks) != len(spec.PEs) {
		panic("dpu: GroupRanks length mismatch")
	}
	ipc := spec.ipc()
	var maxT cost.Seconds
	for i, pe := range spec.PEs {
		rank := -1
		if spec.GroupRanks != nil {
			rank = spec.GroupRanks[i]
		}
		instr, mramBytes := account(pe, rank)
		if t := e.peTime(instr, mramBytes, ipc); t > maxT {
			maxT = t
		}
	}
	meter.Add(spec.Category, maxT)
	meter.Add(cost.Other, e.params.KernelLaunch)
}
