package bench

import "testing"

// TestFusionSpeedupAtLeast1_15x gates the fusion optimizer's headline
// win: the DLRM ReduceScatter→AlltoAll serving pipeline must compile to
// a fused plan at least 1.15x cheaper than the unfused plans at the
// experiment's pinned payload. The cost model is deterministic, so this
// is a hard floor, not a flaky benchmark.
func TestFusionSpeedupAtLeast1_15x(t *testing.T) {
	r, err := fusionPinned()
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup < 1.15 {
		t.Fatalf("fusion speedup %.3fx below the 1.15x gate (unfused %v, fused %v)",
			r.Speedup, r.Unfused, r.Fused)
	}
	rep := r.Report
	// Every batch boundary must cancel its rotate/unrotate pair and all
	// interior synchronizations must collapse into the final one.
	if want := fusionDepth - 1; rep.RotatesMerged != want || rep.RotatesElided != want {
		t.Fatalf("want %d boundary pairs merged+elided, got %+v", want, rep)
	}
	if want := 2*fusionDepth - 1; rep.SyncsElided != want {
		t.Fatalf("want %d interior syncs elided, got %d", want, rep.SyncsElided)
	}
	if rep.EpochsCoalesced != fusionDepth-1 {
		t.Fatalf("want %d epochs coalesced, got %d", fusionDepth-1, rep.EpochsCoalesced)
	}
}
