package bench

import (
	"bytes"
	"testing"

	"repro/internal/cost"
)

// The acceptance gate of the cluster experiment: at the pinned
// configuration the hierarchical lowering must beat the flat baseline,
// and the network leg must be priced (nonzero) on both.
func TestClusterSpeedupGate(t *testing.T) {
	hier, flat, err := clusterPinned()
	if err != nil {
		t.Fatal(err)
	}
	if hier.Get(cost.Network) <= 0 || flat.Get(cost.Network) <= 0 {
		t.Fatal("cluster AllReduce charged no network time")
	}
	speedup := float64(flat.Total()) / float64(hier.Total())
	if speedup <= 1 {
		t.Fatalf("hierarchical lowering does not beat the flat baseline: %.3fx (hier %v, flat %v)",
			speedup, hier.Total(), flat.Total())
	}
	t.Logf("pinned hier/flat speedup: %.2fx", speedup)
}

// The cost-only sweep must reach cluster scale (>= 1024 hosts) quickly —
// this is what CI runs, so it doubles as the wall-clock guard.
func TestClusterSweepScales(t *testing.T) {
	bd, err := MeasureClusterAllReduce(1024, 16<<10, cost.DefaultParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 || bd.Get(cost.Network) <= 0 {
		t.Fatalf("1024-host sweep produced an empty breakdown: %+v", bd)
	}
	small, err := MeasureClusterAllReduce(16, 16<<10, cost.DefaultParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Get(cost.Network) <= small.Get(cost.Network) {
		t.Error("network time did not grow from 16 to 1024 hosts")
	}
}

func TestClusterExperimentRuns(t *testing.T) {
	e, err := ByID("cluster")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(Options{W: &buf}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("cluster experiment produced no output")
	}
}
