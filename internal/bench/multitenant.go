package bench

import (
	"fmt"
	"io"

	"repro/pidcomm"
)

// The multi-tenant serving experiment: N tenants share one simulated
// 1024-PE machine through the Machine/Tenant session API. Each tenant
// is bound to a disjoint MRAM arena and serves a stream of requests —
// a DLRM-style AlltoAll/CM + ReduceScatter/IM pair per request — and
// the experiment compares the makespan of serving the tenants serially
// (blocking Run, one machine-wide barrier per plan) against submitting
// every stream asynchronously, where the weighted-fair scheduler
// interleaves the tenants and the shared three-lane timeline overlaps
// their disjoint footprints.
//
// The per-tenant work is identical in both modes, and each tenant's
// meter is bit-identical to running its stream alone, so the machine
// breakdown (the fold of the tenant meters) is equal in both modes;
// only the elapsed time differs — by exactly the overlap won.

// tenantSpec configures one serving tenant of the experiment.
type tenantSpec struct {
	name   string
	weight float64
}

// multiTenantMachine builds a cost-only paper-scale machine with one
// session per spec, each bound to a fresh arena of arenaBytes.
func multiTenantMachine(specs []tenantSpec, arenaBytes int) (*pidcomm.Machine, []*pidcomm.Comm, error) {
	mach, err := pidcomm.NewMachine(pidcomm.PaperSystem(len(specs)*arenaBytes), []int{32, 32}, pidcomm.CostOnly())
	if err != nil {
		return nil, nil, err
	}
	comms := make([]*pidcomm.Comm, len(specs))
	for i, sp := range specs {
		comms[i], err = mach.NewTenant(pidcomm.TenantConfig{
			Name: sp.name, ArenaBytes: arenaBytes, Weight: sp.weight,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return mach, comms, nil
}

// tenantRequest returns the two descriptors of one serving request,
// laid out in the tenant's arena: an AlltoAll over [0, 2m) and a
// ReduceScatter over [2m, 3m+s). The pair is internally independent
// (footprints disjoint, so the two overlap), while consecutive requests
// of one tenant chain on their WAW hazards.
func tenantRequest(m int) [2]pidcomm.Collective {
	return [2]pidcomm.Collective{
		{Prim: pidcomm.AlltoAll, Dims: "10",
			Src: pidcomm.Span(0, m), Dst: pidcomm.At(m), Level: pidcomm.CM},
		{Prim: pidcomm.ReduceScatter, Dims: "10",
			Src: pidcomm.Span(2*m, m), Dst: pidcomm.At(3 * m),
			Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.IM},
	}
}

// runMultiTenant measures serial vs weighted-fair makespan for the
// given tenants, each serving requests request-pairs of m bytes/PE.
// It returns the two machine breakdowns (for the equality pin) and the
// two makespans.
func runMultiTenant(specs []tenantSpec, m, requests int) (serialBD, fairBD pidcomm.Breakdown, serial, fair pidcomm.Seconds, infos []pidcomm.TenantInfo, err error) {
	arena := 4 * m

	// Serial: every plan runs blocking, a machine-wide barrier each.
	smach, scomms, err := multiTenantMachine(specs, arena)
	if err != nil {
		return
	}
	for r := 0; r < requests; r++ {
		for _, c := range scomms {
			for _, d := range tenantRequest(m) {
				if _, err = c.Run(d); err != nil {
					return
				}
			}
		}
	}
	serialBD, serial = smach.Breakdown(), smach.Elapsed()

	// Weighted-fair: every stream submits asynchronously; the scheduler
	// interleaves tenants by weight and the timeline overlaps their
	// disjoint arenas.
	fmach, fcomms, err := multiTenantMachine(specs, arena)
	if err != nil {
		return
	}
	var futures []*pidcomm.Future
	for r := 0; r < requests; r++ {
		for _, c := range fcomms {
			for _, d := range tenantRequest(m) {
				f, ferr := c.Submit(d)
				if ferr != nil {
					err = ferr
					return
				}
				futures = append(futures, f)
			}
		}
	}
	for _, f := range futures {
		if werr := f.Err(); werr != nil {
			err = werr
			return
		}
	}
	fmach.Flush()
	fairBD, fair = fmach.Breakdown(), fmach.Elapsed()
	infos = fmach.Tenants()
	return
}

// writeMultiTenant renders the experiment table.
func writeMultiTenant(w io.Writer, specs []tenantSpec, m, requests int) error {
	serialBD, fairBD, serial, fair, infos, err := runMultiTenant(specs, m, requests)
	if err != nil {
		return err
	}
	t := newTable("Tenant", "Weight", "Arena KiB/PE", "Plans", "Attributed ms")
	for _, ti := range infos {
		t.add(ti.Name, fmt.Sprintf("%.0f", ti.Weight),
			fmt.Sprintf("%d", ti.ArenaBytes>>10),
			fmt.Sprintf("%d", 2*requests),
			fmt.Sprintf("%.3f", float64(ti.Meter.Total())*1e3))
	}
	t.write(w)
	fmt.Fprintf(w, "\nwork identical across modes: %v\n", serialBD == fairBD)
	fmt.Fprintf(w, "serial makespan        %8.3f ms\n", float64(serial)*1e3)
	fmt.Fprintf(w, "weighted-fair makespan %8.3f ms\n", float64(fair)*1e3)
	fmt.Fprintf(w, "overlap speedup        %8.2fx\n", float64(serial)/float64(fair))
	return nil
}

func init() {
	register("multitenant", "Multi-tenant serving: N tenants sharing 1024 PEs, serial vs weighted-fair makespan", func(o Options) error {
		// Always cost-only: a capacity study over a phantom system (the
		// breakdowns are bit-identical to a functional machine).
		size := sizeFor(o, 16<<10, 256<<10)
		specs := []tenantSpec{
			{"dlrm-a", 4},
			{"dlrm-b", 2},
			{"gnn", 1},
			{"mlp", 1},
		}
		fmt.Fprintf(o.W, "(4 tenants on 1024 PEs (32x32), %d KiB/PE per request, 8 requests each,"+
			" cost-only backend; blocking Run vs weighted-fair Submit)\n", size>>10)
		return writeMultiTenant(o.W, specs, size, 8)
	})
}
