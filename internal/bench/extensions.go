package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/elem"
)

// Extension experiments beyond the paper's figures: the design-choice
// ablations DESIGN.md § 6 calls out, and the § IX-B hardware what-ifs.

// runPrimWithParams is RunPrimitive with a custom cost model.
func runPrimWithParams(shape []int, dims string, size int, prim core.Primitive, lvl core.Level, params cost.Params, costOnly bool) (float64, cost.Breakdown, error) {
	n := 1
	for _, l := range shape {
		n *= l
	}
	mram := 1
	for mram < 4*size+64 {
		mram *= 2
	}
	geo, err := geoForPEsFlexible(n, mram)
	if err != nil {
		return 0, cost.Breakdown{}, err
	}
	comm, err := newCommOn(geo, shape, params, costOnly)
	if err != nil {
		return 0, cost.Breakdown{}, err
	}
	if !costOnly {
		rng := rand.New(rand.NewSource(7))
		buf := make([]byte, size)
		for pe := 0; pe < n; pe++ {
			rng.Read(buf)
			comm.SetPEBuffer(pe, 0, buf)
		}
	}
	var bd cost.Breakdown
	switch prim {
	case core.AlltoAll:
		bd, err = comm.AlltoAll(dims, 0, 2*size, size, lvl)
	case core.ReduceScatter:
		bd, err = comm.ReduceScatter(dims, 0, 2*size, size, elem.I32, elem.Sum, lvl)
	case core.AllReduce:
		bd, err = comm.AllReduce(dims, 0, 2*size, size, elem.I32, elem.Sum, lvl)
	case core.AllGather:
		s := size / nGroupSize(comm, dims)
		bd, err = comm.AllGather(dims, 0, 2*s, s, lvl)
	default:
		return 0, cost.Breakdown{}, fmt.Errorf("bench: extension runner supports AA/RS/AR/AG, got %v", prim)
	}
	if err != nil {
		return 0, cost.Breakdown{}, err
	}
	return gbps(int64(size)*int64(n), float64(bd.Total())), bd, nil
}

func nGroupSize(c *core.Comm, dims string) int {
	groups, err := c.Hypercube().Groups(dims)
	if err != nil || len(groups) == 0 {
		return 1
	}
	return len(groups[0])
}

func init() {
	register("ext-dsa", "Extension (§ IX-B): DSA offload of host-side modulation (what-if)", func(o Options) error {
		size := sizeFor(o, 64<<10, 1<<20)
		t := newTable("Primitive", "PID-Comm GB/s", "+DSA GB/s", "Gain")
		dsa := cost.DefaultParams()
		dsa.DSAOffload = true
		for _, prim := range []core.Primitive{core.AlltoAll, core.ReduceScatter, core.AllReduce, core.AllGather} {
			base, _, err := runPrimWithParams([]int{32, 32}, "10", size, prim, core.CM, cost.DefaultParams(), o.CostOnly)
			if err != nil {
				return err
			}
			with, _, err := runPrimWithParams([]int{32, 32}, "10", size, prim, core.CM, dsa, o.CostOnly)
			if err != nil {
				return err
			}
			t.add(prim.LongName(), fmt.Sprintf("%.2f", base), fmt.Sprintf("%.2f", with), fmt.Sprintf("%.2fx", with/base))
		}
		t.write(o.W)
		return nil
	})

	register("ext-rank", "Ablation: rank-parallel vs serialized transfers", func(o Options) error {
		size := sizeFor(o, 64<<10, 1<<20)
		t := newTable("Primitive", "Rank-parallel GB/s", "Serialized GB/s", "Loss")
		serial := cost.DefaultParams()
		serial.RankParallel = false
		for _, prim := range []core.Primitive{core.AlltoAll, core.AllGather} {
			par, _, err := runPrimWithParams([]int{32, 32}, "10", size, prim, core.CM, cost.DefaultParams(), o.CostOnly)
			if err != nil {
				return err
			}
			ser, _, err := runPrimWithParams([]int{32, 32}, "10", size, prim, core.CM, serial, o.CostOnly)
			if err != nil {
				return err
			}
			t.add(prim.LongName(), fmt.Sprintf("%.2f", par), fmt.Sprintf("%.2f", ser), fmt.Sprintf("%.2fx", par/ser))
		}
		t.write(o.W)
		return nil
	})

	register("ext-launch", "Ablation: kernel-launch overhead sensitivity (small payloads)", func(o Options) error {
		t := newTable("Launch(us)", "AA 4KiB/PE GB/s", "AA 64KiB/PE GB/s")
		for _, launch := range []float64{5e-6, 20e-6, 80e-6} {
			p := cost.DefaultParams()
			p.KernelLaunch = cost.Seconds(launch)
			small, _, err := runPrimWithParams([]int{32, 32}, "10", 4<<10, core.AlltoAll, core.CM, p, o.CostOnly)
			if err != nil {
				return err
			}
			large, _, err := runPrimWithParams([]int{32, 32}, "10", 64<<10, core.AlltoAll, core.CM, p, o.CostOnly)
			if err != nil {
				return err
			}
			t.add(fmt.Sprintf("%.0f", launch*1e6), fmt.Sprintf("%.2f", small), fmt.Sprintf("%.2f", large))
		}
		t.write(o.W)
		return nil
	})
}
