package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// The reorder experiment's headline gate, pinned as a test so `go test`
// alone catches a regression: on the depth-1 adversarial submission
// order the lookahead policy must recover at least 1.4x overlap while
// FIFO stays at its ~1.14x baseline, and no policy may fall below 1x.
// Bit-identical replay is enforced inside MeasureReorder.
func TestReorderLookaheadRecoversOverlap(t *testing.T) {
	results, err := MeasureReorder(64<<10, []int{1},
		[]core.SchedPolicy{core.SchedFIFO, core.SchedLookahead})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%v depth %d: serial %.3fms, async %.3fms (%.2fx)",
			r.Policy, r.Batches, float64(r.SerialElapsed)*1e3, float64(r.AsyncElapsed)*1e3, r.Speedup)
		if r.AsyncElapsed > r.SerialElapsed {
			t.Errorf("%v: async elapsed %v exceeds serial %v", r.Policy, r.AsyncElapsed, r.SerialElapsed)
		}
		switch r.Policy {
		case core.SchedLookahead:
			if r.Speedup < 1.4 {
				t.Errorf("lookahead recovered %.2fx at depth 1, want >= 1.4x", r.Speedup)
			}
		case core.SchedFIFO:
			if r.Speedup > 1.3 {
				t.Errorf("FIFO got %.2fx on the adversarial order, want <= 1.3x (order no longer adversarial)", r.Speedup)
			}
		}
	}
}

// Every registered policy must survive the reorder experiment's
// bit-identical replay verification (MeasureReorder errors otherwise).
func TestReorderAllPoliciesBitIdentical(t *testing.T) {
	if _, err := MeasureReorder(16<<10, []int{2}, core.SchedPolicies()); err != nil {
		t.Fatal(err)
	}
}

func TestReorderExperimentRegistered(t *testing.T) {
	e, err := ByID("reorder")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(Options{W: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Overlap speedup", "lookahead", "fifo"} {
		if !strings.Contains(out, want) {
			t.Errorf("reorder table missing %q", want)
		}
	}
}
