// Package bench is the evaluation harness: one registered experiment per
// table and figure of the paper's evaluation (§ VIII), each regenerating
// the corresponding rows/series on the simulated system, plus the
// harness-native experiments (plan-cache replay throughput, async
// overlap). Use cmd/pidbench to run them from the command line.
//
// # Structure
//
//   - Experiment couples an ID (the -exp flag value, e.g. "fig14",
//     "table1", "async") with a Run function writing an aligned text
//     table; experiments self-register in init and are enumerated by
//     Experiments / looked up by ByID.
//   - Options selects scale and engine: Full switches to paper-scale
//     payloads (the timing model is linear in payload, so the default
//     small scale preserves every shape), CostOnly runs the primitive
//     experiments on the cost-only backend over phantom (no-MRAM)
//     systems — identical tables, orders of magnitude faster — and Async
//     routes primitive measurements through the Submit/Future API.
//   - PrimSpec / RunPrimitive (prims.go) is the single primitive-
//     measurement path all figure experiments share; apps.go wires the
//     five application benchmarks (Table III) through internal/apps.
//
// # Harness-native experiments
//
//   - "replay" (replay.go): cold compile-each-call vs cached
//     CompiledPlan replay throughput at the 1024-PE paper scale.
//   - "async" (async.go): serial replay vs asynchronous submission of a
//     DLRM-style pipeline of independent collectives, reporting the
//     overlap speedup of the elapsed-time timeline.
//
// # Paper map
//
//	table1..3       support matrices and app configurations
//	fig4, fig13     application time breakdowns
//	fig14..20       primitive throughput studies (§ VIII-B..F)
//	fig21, fig22    CPU comparison, element-width sensitivity
//	fig23a, fig23b  topology and multi-host studies (§ VIII-H, § IX-A)
package bench
