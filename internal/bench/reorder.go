package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/elem"
)

// This file holds the reorder experiment: the async pipeline of
// async.go submitted in *adversarial* order — per batch the bus-heavy
// AlltoAll before the host-compute-heavy ReduceScatter — which is the
// order that defeats overlap (the ReduceScatter's CPU pass can no
// longer hide under the AlltoAll's bus streaming; at depth 1 FIFO drops
// from 1.58x to ~1.14x). The submission queue runs in stepped mode so
// every policy sees the whole backlog deterministically, and each
// scheduling policy is measured against the same serial reference: FIFO
// inherits the adversarial order, while the makespan-aware lookahead
// policy re-discovers the good order from the plans' charge traces and
// recovers the overlap. Every run also verifies the funnel's
// bit-identical contract: each future must charge exactly what the
// serial replay of the same plan charged.

// ReorderResult is one row of the reorder experiment.
type ReorderResult struct {
	// Policy is the submission scheduling policy measured.
	Policy core.SchedPolicy
	// Batches is the pipeline depth (independent AlltoAll+ReduceScatter
	// pairs submitted adversarially).
	Batches int
	// SerialElapsed and AsyncElapsed are the simulated elapsed times of
	// serial replay vs scheduled asynchronous execution.
	SerialElapsed, AsyncElapsed cost.Seconds
	// Speedup is SerialElapsed / AsyncElapsed.
	Speedup float64
}

// reorderPlans compiles the async pipeline's plans in adversarial
// submission order: per batch the AlltoAll first, then the
// ReduceScatter (asyncPlans submits the reverse — the good order).
func reorderPlans(c *core.Comm, m, batches int) ([]*core.CompiledPlan, error) {
	var plans []*core.CompiledPlan
	for b := 0; b < batches; b++ {
		base := b * 4 * m
		aa, err := c.CompileAlltoAll("10", base, base+m, m, core.CM)
		if err != nil {
			return nil, err
		}
		rs, err := c.CompileReduceScatter("10", base+2*m, base+3*m, m, elem.I32, elem.Sum, core.IM)
		if err != nil {
			return nil, err
		}
		plans = append(plans, aa, rs)
	}
	return plans, nil
}

// MeasureReorder measures, at per-PE payload m, the overlap each
// scheduling policy recovers from an adversarial submission order, per
// pipeline depth. Stepped submission: all plans are enqueued first,
// then the queue is drained one Step at a time, so the policy's pick
// order — not the submission interleaving with a background worker —
// decides the placement order. Every drain is verified bit-identical
// against a serial twin replaying the same plans in the same pick order
// (per-future breakdowns and the machine meter must match bit for bit:
// a policy reorders who runs next, never what a plan charges).
func MeasureReorder(m int, depths []int, policies []core.SchedPolicy) ([]ReorderResult, error) {
	var out []ReorderResult
	for _, batches := range depths {
		serial, err := asyncComm(m, batches)
		if err != nil {
			return nil, err
		}
		sp, err := reorderPlans(serial, m, batches)
		if err != nil {
			return nil, err
		}
		for _, p := range sp {
			if _, err := p.Run(); err != nil {
				return nil, err
			}
		}
		for _, pol := range policies {
			async, err := asyncComm(m, batches)
			if err != nil {
				return nil, err
			}
			async.SetStepped(true)
			async.SetSched(pol)
			ap, err := reorderPlans(async, m, batches)
			if err != nil {
				return nil, err
			}
			planIdx := make(map[*core.Future]int, len(ap))
			for i, p := range ap {
				planIdx[p.Submit()] = i
			}
			var picked []*core.Future
			for f := async.Step(); f != nil; f = async.Step() {
				if err := f.Err(); err != nil {
					return nil, err
				}
				picked = append(picked, f)
			}
			async.Flush()
			if err := verifyReorderReplay(m, batches, pol, planIdx, picked, async); err != nil {
				return nil, err
			}
			r := ReorderResult{
				Policy:        pol,
				Batches:       batches,
				SerialElapsed: serial.Elapsed(),
				AsyncElapsed:  async.Elapsed(),
			}
			r.Speedup = float64(r.SerialElapsed) / float64(r.AsyncElapsed)
			out = append(out, r)
		}
	}
	return out, nil
}

// verifyReorderReplay replays the drained plans on a fresh serial twin
// in the exact pick order the policy chose and pins the funnel's
// bit-identical contract: each future's charged breakdown, and the
// machine meter as a whole, must equal the serial twin's bit for bit.
func verifyReorderReplay(m, batches int, pol core.SchedPolicy, planIdx map[*core.Future]int, picked []*core.Future, async *core.Comm) error {
	twin, err := asyncComm(m, batches)
	if err != nil {
		return err
	}
	tp, err := reorderPlans(twin, m, batches)
	if err != nil {
		return err
	}
	if len(picked) != len(tp) {
		return fmt.Errorf("bench: %v policy drained %d plans, submitted %d", pol, len(picked), len(tp))
	}
	for _, f := range picked {
		bd, err := tp[planIdx[f]].Run()
		if err != nil {
			return err
		}
		if f.Cost() != bd {
			return fmt.Errorf("bench: %v policy broke bit-identical replay: plan %d charged %v, serial charged %v",
				pol, planIdx[f], f.Cost(), bd)
		}
	}
	if got, want := async.Meter().Snapshot(), twin.Meter().Snapshot(); got != want {
		return fmt.Errorf("bench: %v policy broke bit-identical meters: async %v, serial %v", pol, got, want)
	}
	return nil
}

// RunReorder runs the reorder experiment and writes its table.
func RunReorder(o Options) error {
	size := sizeFor(o, 64<<10, 1<<20)
	results, err := MeasureReorder(size, []int{1, 2, 4, 8}, core.SchedPolicies())
	if err != nil {
		return err
	}
	t := newTable("Policy", "Batches in flight", "Serial elapsed (ms)", "Async elapsed (ms)", "Overlap speedup")
	for _, r := range results {
		t.add(r.Policy.String(), fmt.Sprint(r.Batches),
			fmt.Sprintf("%.3f", float64(r.SerialElapsed)*1e3),
			fmt.Sprintf("%.3f", float64(r.AsyncElapsed)*1e3),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	t.write(o.W)
	fmt.Fprintf(o.W, "(async.go pipeline submitted in adversarial order — AlltoAll before ReduceScatter\n"+
		" per batch — stepped drain, %d KiB/PE, cost-only; the lookahead policy reorders\n"+
		" independent plans by projected makespan and recovers the overlap FIFO loses)\n", size>>10)
	return nil
}

// collectReorder gathers the reorder regression metrics and enforces
// the experiment's hard acceptance gates: at depth 1 the lookahead
// policy must recover at least 1.4x overlap from the adversarial order
// while FIFO stays pinned at its ~1.14x baseline (if FIFO ever exceeds
// 1.3x the adversarial order stopped being adversarial and the gate is
// meaningless). Bit-identical replay is enforced inside MeasureReorder.
func collectReorder(add func(string, float64)) error {
	results, err := MeasureReorder(64<<10, []int{1, 8}, []core.SchedPolicy{core.SchedFIFO, core.SchedLookahead})
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Policy == core.SchedFIFO {
			add(fmt.Sprintf("serial_d%d", r.Batches), float64(r.SerialElapsed))
		}
		add(fmt.Sprintf("%v_d%d", r.Policy, r.Batches), float64(r.AsyncElapsed))
		if r.Batches == 1 {
			switch {
			case r.Policy == core.SchedLookahead && r.Speedup < 1.4:
				return fmt.Errorf("bench: lookahead recovered only %.2fx overlap at depth 1 (want >= 1.4x)", r.Speedup)
			case r.Policy == core.SchedFIFO && r.Speedup > 1.3:
				return fmt.Errorf("bench: FIFO got %.2fx on the adversarial order at depth 1 (want <= 1.3x — order no longer adversarial)", r.Speedup)
			}
		}
	}
	return nil
}

func init() {
	register("reorder", "Makespan-aware reordering: scheduling policies on an adversarial submission order", func(o Options) error {
		return RunReorder(o)
	})
}
