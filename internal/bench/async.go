package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// This file holds the async-overlap experiment: a DLRM-style serving
// pipeline where each "batch" issues one request AlltoAll and one
// response ReduceScatter on disjoint MRAM regions (Figure 11's steps 2
// and 4 under double buffering). Replayed serially every collective's
// CPU, bus and PE phases stack end to end; submitted asynchronously the
// independent plans overlap — one plan's PE-side reordering and host
// modulation hide under another's bus epochs — and the overlap-aware
// elapsed time (core.Comm.Elapsed) drops accordingly.

// AsyncResult is one row of the async-overlap experiment.
type AsyncResult struct {
	// Batches is the pipeline depth (independent AlltoAll+ReduceScatter
	// pairs in flight).
	Batches int
	// SerialElapsed and AsyncElapsed are the simulated elapsed times of
	// serial replay vs asynchronous submission of the same plans.
	SerialElapsed, AsyncElapsed cost.Seconds
	// Speedup is SerialElapsed / AsyncElapsed.
	Speedup float64
}

// asyncComm builds a cost-only comm on the paper's 1024-PE machine with
// enough phantom MRAM for `batches` disjoint region sets of payload m.
func asyncComm(m, batches int) (*core.Comm, error) {
	mram := 1
	for mram < 4*m*batches+64 {
		mram *= 2
	}
	return newCommOn(dram.PaperGeometry(mram), []int{32, 32}, cost.DefaultParams(), true)
}

// asyncPlans compiles the pipeline's plans on c: per batch a
// ReduceScatter (IM) and an AlltoAll (CM) over the batch's own region
// set, all mutually disjoint. The host-compute-heavy ReduceScatter is
// submitted first so its modulation/reduction pass runs on the CPU lane
// while the bus-heavy AlltoAll streams — the same ordering a DLRM server
// sees (batch k's response ReduceScatter alongside batch k+1's request
// AlltoAll).
func asyncPlans(c *core.Comm, m, batches int) ([]*core.CompiledPlan, error) {
	var plans []*core.CompiledPlan
	for b := 0; b < batches; b++ {
		base := b * 4 * m
		rs, err := c.CompileReduceScatter("10", base+2*m, base+3*m, m, elem.I32, elem.Sum, core.IM)
		if err != nil {
			return nil, err
		}
		aa, err := c.CompileAlltoAll("10", base, base+m, m, core.CM)
		if err != nil {
			return nil, err
		}
		plans = append(plans, rs, aa)
	}
	return plans, nil
}

// MeasureAsyncOverlap measures overlap speedup at per-PE payload m for
// the given pipeline depths: for each depth, the same compiled plans are
// replayed serially on one comm and submitted asynchronously on another,
// and the overlap-aware elapsed times are compared. Cost-only backend
// (the elapsed-time model is backend-independent; the functional
// equivalence is pinned by the core async tests). The queue runs under
// the default weighted-fair policy with a live background worker — the
// configuration the regression baseline pins.
func MeasureAsyncOverlap(m int, depths []int) ([]AsyncResult, error) {
	return measureAsync(m, depths, core.SchedWFQ, false)
}

// measureAsync is MeasureAsyncOverlap under an explicit scheduling
// policy. With stepped set, the whole pipeline is submitted before the
// queue drains, so a window-scanning policy (EDF, lookahead) sees the
// full backlog instead of racing the background worker.
func measureAsync(m int, depths []int, pol core.SchedPolicy, stepped bool) ([]AsyncResult, error) {
	var out []AsyncResult
	for _, batches := range depths {
		serial, err := asyncComm(m, batches)
		if err != nil {
			return nil, err
		}
		async, err := asyncComm(m, batches)
		if err != nil {
			return nil, err
		}
		async.SetSched(pol)
		if stepped {
			async.SetStepped(true)
		}
		sp, err := asyncPlans(serial, m, batches)
		if err != nil {
			return nil, err
		}
		ap, err := asyncPlans(async, m, batches)
		if err != nil {
			return nil, err
		}
		for _, p := range sp {
			if _, err := p.Run(); err != nil {
				return nil, err
			}
		}
		var fs []*core.Future
		for _, p := range ap {
			fs = append(fs, p.Submit())
		}
		async.Flush()
		for _, f := range fs {
			if err := f.Err(); err != nil {
				return nil, err
			}
		}
		r := AsyncResult{
			Batches:       batches,
			SerialElapsed: serial.Elapsed(),
			AsyncElapsed:  async.Elapsed(),
		}
		r.Speedup = float64(r.SerialElapsed) / float64(r.AsyncElapsed)
		out = append(out, r)
	}
	return out, nil
}

// RunAsync runs the async-overlap experiment and writes its table. A
// non-default Options.Sched reruns the pipeline under that policy in
// stepped mode (the policy sees the full backlog).
func RunAsync(o Options) error {
	size := sizeFor(o, 64<<10, 1<<20)
	results, err := measureAsync(size, []int{1, 2, 4, 8}, o.Sched, o.Sched != core.SchedWFQ)
	if err != nil {
		return err
	}
	t := newTable("Batches in flight", "Serial elapsed (ms)", "Async elapsed (ms)", "Overlap speedup")
	for _, r := range results {
		t.add(fmt.Sprint(r.Batches),
			fmt.Sprintf("%.3f", float64(r.SerialElapsed)*1e3),
			fmt.Sprintf("%.3f", float64(r.AsyncElapsed)*1e3),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	t.write(o.W)
	fmt.Fprintf(o.W, "(DLRM-style AlltoAll/CM + ReduceScatter/IM per batch on disjoint regions,\n"+
		" 1024 PEs (32x32), %d KiB/PE, cost-only backend, %s policy; serial replay vs async Submit)\n",
		size>>10, o.Sched)
	return nil
}

func init() {
	register("async", "Async overlap: futures/submission-queue elapsed time vs serial replay (DLRM-style pipeline)", func(o Options) error {
		return RunAsync(o)
	})
}
