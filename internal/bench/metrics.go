package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
)

// This file implements the benchmark-regression machinery behind
// `pidbench -json` and `pidbench -compare`: a fixed set of scalar
// metrics (simulated seconds — lower is better) per experiment,
// collected on the cost-only backend so a full sweep runs in
// milliseconds and is bit-deterministic on a given platform. The
// checked-in bench_baseline.json holds the last accepted values; CI
// recollects and fails on any metric that regressed beyond the
// threshold, which turns every perf pin into a *trajectory* guard.

// MetricsSchema versions the JSON layout.
const MetricsSchema = 1

// MetricsFile is the JSON document `pidbench -json` emits and
// `pidbench -compare` consumes.
type MetricsFile struct {
	// Schema is MetricsSchema.
	Schema int `json:"schema"`
	// Experiments lists the experiment IDs the metrics were collected
	// from, in collection order.
	Experiments []string `json:"experiments"`
	// Metrics maps "<experiment>/<name>" to simulated seconds (lower is
	// better). The funcspeed experiment's "ratio" is the one
	// dimensionless entry: parallel/serial wall-clock of the functional
	// executor (still lower-is-better, so the same gate applies).
	Metrics map[string]float64 `json:"metrics"`
}

// metricExperiments maps each gated experiment ID to its collector.
// Collectors run cost-only at fixed small-scale configurations, so the
// whole set completes in CI time and the values are deterministic. The
// one exception is funcspeed, whose subject is the parallel functional
// executor itself: its metric is the dimensionless parallel/serial
// wall-clock ratio (best-of-N, so it stays stable enough to gate).
var metricExperiments = map[string]func(add func(name string, seconds float64)) error{
	"fig14":       collectFig14,
	"async":       collectAsync,
	"multitenant": collectMultiTenant,
	"fusion":      collectFusion,
	"funcspeed":   collectFuncSpeed,
	"cluster":     collectCluster,
	"serving":     collectServing,
	"algo":        collectAlgo,
	"reorder":     collectReorder,
}

// MetricExperimentIDs returns the experiment IDs with metric collectors,
// sorted.
func MetricExperimentIDs() []string {
	ids := make([]string, 0, len(metricExperiments))
	for id := range metricExperiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CollectMetrics gathers the metrics of the given experiment IDs.
func CollectMetrics(ids []string) (MetricsFile, error) {
	mf := MetricsFile{Schema: MetricsSchema, Metrics: map[string]float64{}}
	for _, id := range ids {
		collect, ok := metricExperiments[id]
		if !ok {
			return mf, fmt.Errorf("bench: experiment %q has no regression metrics (have %v)", id, MetricExperimentIDs())
		}
		if err := collect(func(name string, v float64) {
			mf.Metrics[id+"/"+name] = v
		}); err != nil {
			return mf, fmt.Errorf("%s: %w", id, err)
		}
		mf.Experiments = append(mf.Experiments, id)
	}
	return mf, nil
}

func collectFig14(add func(string, float64)) error {
	const size = 64 << 10
	for _, prim := range core.Primitives() {
		for _, lvl := range []core.Level{core.Baseline, core.CM} {
			spec := PrimSpec{Shape: []int{32, 32}, Dims: "10", RecvPerPE: size,
				Prim: prim, Level: lvl, CostOnly: true}
			_, bd, err := RunPrimitive(spec)
			if err != nil {
				return err
			}
			add(prim.String()+"/"+lvl.String(), float64(bd.Total()))
		}
	}
	return nil
}

func collectAsync(add func(string, float64)) error {
	results, err := MeasureAsyncOverlap(64<<10, []int{1, 8})
	if err != nil {
		return err
	}
	for _, r := range results {
		add(fmt.Sprintf("serial_d%d", r.Batches), float64(r.SerialElapsed))
		add(fmt.Sprintf("async_d%d", r.Batches), float64(r.AsyncElapsed))
	}
	return nil
}

func collectMultiTenant(add func(string, float64)) error {
	specs := []tenantSpec{{"dlrm-a", 4}, {"dlrm-b", 2}, {"gnn", 1}, {"mlp", 1}}
	_, _, serial, fair, _, err := runMultiTenant(specs, 16<<10, 8)
	if err != nil {
		return err
	}
	add("serial", float64(serial))
	add("fair", float64(fair))
	return nil
}

func collectFusion(add func(string, float64)) error {
	r, err := fusionPinned()
	if err != nil {
		return err
	}
	add("unfused", float64(r.Unfused))
	add("fused", float64(r.Fused))
	return nil
}

// WriteMetricsJSON collects the metrics for ids and writes the document.
func WriteMetricsJSON(w io.Writer, ids []string) error {
	mf, err := CollectMetrics(ids)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mf)
}

// ReadMetricsJSON parses a metrics document.
func ReadMetricsJSON(r io.Reader) (MetricsFile, error) {
	var mf MetricsFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return mf, fmt.Errorf("bench: parsing baseline: %w", err)
	}
	if mf.Schema != MetricsSchema {
		return mf, fmt.Errorf("bench: baseline schema %d, want %d (regenerate with `make bench-json`)", mf.Schema, MetricsSchema)
	}
	return mf, nil
}

// CompareMetrics recollects the baseline's metrics (restricted to ids if
// non-empty), writes a per-metric delta table to w, and returns an error
// naming every metric whose simulated cost regressed more than threshold
// (e.g. 0.10 = 10%) over the baseline, or that the current build no
// longer produces. Improvements and new metrics are reported but never
// fail the comparison.
func CompareMetrics(w io.Writer, baseline MetricsFile, ids []string, threshold float64) error {
	if len(ids) == 0 {
		ids = baseline.Experiments
	}
	current, err := CollectMetrics(ids)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(baseline.Metrics))
	for name := range baseline.Metrics {
		for _, id := range ids {
			if len(name) > len(id) && name[:len(id)] == id && name[len(id)] == '/' {
				names = append(names, name)
				break
			}
		}
	}
	sort.Strings(names)

	t := newTable("Metric", "Baseline (ms)", "Current (ms)", "Delta")
	var regressions []string
	for _, name := range names {
		base := baseline.Metrics[name]
		cur, ok := current.Metrics[name]
		if !ok {
			t.add(name, fmt.Sprintf("%.4f", base*1e3), "MISSING", "")
			regressions = append(regressions, name+" (missing)")
			continue
		}
		delta := 0.0
		if base > 0 {
			delta = (cur - base) / base
		}
		mark := ""
		if delta > threshold {
			mark = "  << REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s (+%.1f%%)", name, delta*100))
		}
		t.add(name, fmt.Sprintf("%.4f", base*1e3), fmt.Sprintf("%.4f", cur*1e3),
			fmt.Sprintf("%+.2f%%%s", delta*100, mark))
	}
	var added []string
	for name := range current.Metrics {
		if _, ok := baseline.Metrics[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		t.add(name, "(new)", fmt.Sprintf("%.4f", current.Metrics[name]*1e3), "")
	}
	t.write(w)
	if len(regressions) > 0 {
		return fmt.Errorf("bench: %d metric(s) regressed beyond %.0f%%: %v",
			len(regressions), threshold*100, regressions)
	}
	fmt.Fprintf(w, "\nall %d metrics within %.0f%% of baseline\n", len(names), threshold*100)
	return nil
}
