package bench

import (
	"fmt"

	_ "repro/internal/algo" // register the alternative collective lowerings
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// This file holds the algorithm-registry experiment (`pidbench -exp
// algo`): the machine-level AllReduce lowerings (reference staged
// schedule vs the registered ring / tree / Rabenseifner alternatives)
// priced per payload size under both Auto objectives, the cluster-scale
// host-level ring-vs-tree wire algorithms with their latency/bandwidth
// crossover, and the pinned async point where the makespan objective
// picks a different candidate than the meter objective and measurably
// wins on overlapped elapsed time. Everything runs cost-only, so the
// sweep is deterministic and finishes in CI time.

// The pinned machine for the per-algorithm sweep: the § IX-A host (one
// four-rank channel, 256 PEs) shaped (4,64) so the communication groups
// along dims "10" have four members — small enough that ring, tree and
// Rabenseifner genuinely differ in round structure.
var algoPinShape = []int{4, 64}

const (
	algoPinDims  = "10"
	algoPinPerPE = 64 << 10
)

// MeasureAlgoAllReduce compiles one Baseline AllReduce of bytesPerPE
// bytes per PE on the pinned cost-only machine under the given
// algorithm and returns the plan's meter cost (serial seconds) and its
// pipelined dry-placed makespan (overlapped seconds at
// core.AutoPipelineDepth).
func MeasureAlgoAllReduce(bytesPerPE int, alg core.Algorithm) (meter, makespan cost.Seconds, err error) {
	n := 1
	for _, l := range algoPinShape {
		n *= l
	}
	comm, err := newPrimComm(algoPinShape, n, bytesPerPE, true)
	if err != nil {
		return 0, 0, err
	}
	cp, err := comm.Compile(core.Collective{Prim: core.AllReduce, Dims: algoPinDims,
		Src: core.Span(0, bytesPerPE), Dst: core.At(2 * bytesPerPE),
		Elem: elem.I32, Op: elem.Sum, Level: core.Baseline, Algorithm: alg})
	if err != nil {
		return 0, 0, err
	}
	return cp.Cost().Total(), cp.Makespan(), nil
}

// MeasureClusterAllReduceAlgo prices one hierarchical global AllReduce
// of perPE bytes per PE across hosts cost-only hosts with the given
// host-level wire algorithm (AlgoAuto lets the cluster pick
// analytically from cost.NetParams).
func MeasureClusterAllReduceAlgo(hosts, perPE int, params cost.Params, alg core.Algorithm) (cost.Breakdown, error) {
	geo := clusterHostGeo(perPE)
	P := geo.NumPEs()
	m := perPE / (8 * P) * (8 * P)
	if m == 0 {
		m = 8 * P
	}
	cl, err := clusterOf(hosts, geo, params)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cl.Run(core.ClusterCollective{Collective: core.Collective{
		Prim: core.AllReduce, Dims: "1", Src: core.Span(0, m), Dst: core.At(2 * m),
		Elem: elem.I32, Op: elem.Sum, Level: core.CM, Algorithm: alg,
	}})
}

// The pinned cluster crossover points: at 64 hosts the tree wire
// algorithm (2*log2(H) rounds of the full payload) beats the ring
// (2*(H-1) rounds of payload/H) on the latency-bound small payload,
// and loses on the bandwidth-bound large one. Both sides are gated.
const (
	algoClusterSmall = clusterPinPerPE // 16 KiB: latency-bound, tree wins
	algoClusterLarge = 4 << 20         // 4 MiB: bandwidth-bound, ring wins
)

// AutoGainResult is the outcome of the pinned objective comparison: the
// candidate each Auto objective resolves the same signature to, and the
// measured overlapped elapsed time of a depth-AutoGainDepth async burst
// executed with that candidate.
type AutoGainResult struct {
	MeterAlgo       core.Algorithm
	MeterLevel      core.Level
	MeterElapsed    cost.Seconds
	MakespanAlgo    core.Algorithm
	MakespanLevel   core.Level
	MakespanElapsed cost.Seconds
}

// AutoGainDepth is the number of independent collectives the objective
// comparison overlaps.
const AutoGainDepth = 8

// MeasureAutoObjectiveGain measures the pinned point where the makespan
// objective beats the meter objective: an Auto-level AllGather of
// 256-byte contributions in four-member groups on the § IX-A host. The
// meter objective picks the serially-cheapest candidate (Baseline,
// concentrated on the host lanes); the makespan objective pays a
// fraction of a percent more serial cost for a lane-balanced +CM
// schedule that pipelines across AutoGainDepth overlapped instances and
// finishes earlier on the async queue. Both picks are executed for real
// (cost-only) and the overlap-aware Comm.Elapsed is reported.
func MeasureAutoObjectiveGain() (AutoGainResult, error) {
	const s = 256   // per-PE contribution
	const m = 4 * s // gathered payload (group size 4)
	var r AutoGainResult
	for _, obj := range []core.AutoObjective{core.AutoMeter, core.AutoMakespan} {
		geo := dram.Geometry{Channels: 1, RanksPerChannel: 4, BanksPerChip: 8, MramPerBank: 1 << 20}
		c, err := newCommOn(geo, algoPinShape, cost.DefaultParams(), true)
		if err != nil {
			return r, err
		}
		c.SetAutoObjective(obj)
		alg, lvl, err := c.AutoResolveOf(core.Collective{Prim: core.AllGather, Dims: algoPinDims,
			Src: core.Span(0, s), Dst: core.At(2 * s), Level: core.Auto})
		if err != nil {
			return r, err
		}
		var futs []*core.Future
		for b := 0; b < AutoGainDepth; b++ {
			base := b * 4 * m
			cp, err := c.Compile(core.Collective{Prim: core.AllGather, Dims: algoPinDims,
				Src: core.Span(base, s), Dst: core.At(base + 2*s), Level: core.Auto})
			if err != nil {
				return r, err
			}
			futs = append(futs, cp.Submit())
		}
		c.Flush()
		for _, f := range futs {
			if err := f.Err(); err != nil {
				return r, err
			}
		}
		if obj == core.AutoMeter {
			r.MeterAlgo, r.MeterLevel, r.MeterElapsed = alg, lvl, c.Elapsed()
		} else {
			r.MakespanAlgo, r.MakespanLevel, r.MakespanElapsed = alg, lvl, c.Elapsed()
		}
	}
	return r, nil
}

func init() {
	register("algo", "Algorithm registry: machine-level AllReduce lowerings, cluster ring vs tree, makespan-aware Auto (cost-only)", func(o Options) error {
		// Per-algorithm machine-level sweep: every registered AllReduce
		// lowering is byte-identical to the reference, so the only thing
		// that varies is where the time goes — the meter total (serial)
		// and the pipelined makespan (overlapped) per payload size.
		sizes := []int{16 << 10, 64 << 10, 256 << 10}
		if o.Full {
			sizes = append(sizes, 1<<20)
		}
		t := newTable("Size/PE", "Algo", "Meter(ms)", "Makespan(ms)", "Meter vs ref")
		for _, size := range sizes {
			var ref cost.Seconds
			for _, alg := range core.RegisteredAlgorithms(core.AllReduce) {
				meter, ks, err := MeasureAlgoAllReduce(size, alg)
				if err != nil {
					return err
				}
				if alg == core.AlgoReference {
					ref = meter
				}
				t.add(fmt.Sprintf("%dK", size>>10), alg.String(),
					fmt.Sprintf("%.3f", float64(meter)*1e3),
					fmt.Sprintf("%.3f", float64(ks)*1e3),
					fmt.Sprintf("%.2fx", float64(meter)/float64(ref)))
			}
		}
		t.write(o.W)

		// Cluster host-level wire algorithms: ring vs tree across the
		// latency/bandwidth crossover, with the analytic Auto pick.
		params := cost.DefaultParams()
		perPEs := []int{16 << 10, 256 << 10, 1 << 20, 4 << 20}
		fmt.Fprintln(o.W)
		t = newTable("Bytes/PE", "Ring(ms)", "Tree(ms)", "Auto(ms)", "Auto pick")
		for _, perPE := range perPEs {
			ring, err := MeasureClusterAllReduceAlgo(clusterPinHosts, perPE, params, core.AlgoRing)
			if err != nil {
				return err
			}
			tree, err := MeasureClusterAllReduceAlgo(clusterPinHosts, perPE, params, core.AlgoTree)
			if err != nil {
				return err
			}
			auto, err := MeasureClusterAllReduceAlgo(clusterPinHosts, perPE, params, core.AlgoAuto)
			if err != nil {
				return err
			}
			pick := "ring"
			if tree.Total() < ring.Total() {
				pick = "tree"
			}
			t.add(fmt.Sprintf("%dK", perPE>>10),
				fmt.Sprintf("%.3f", float64(ring.Total())*1e3),
				fmt.Sprintf("%.3f", float64(tree.Total())*1e3),
				fmt.Sprintf("%.3f", float64(auto.Total())*1e3),
				pick)
		}
		t.write(o.W)

		// The pinned objective comparison: same Auto signature, two
		// objectives, measured overlapped elapsed time.
		g, err := MeasureAutoObjectiveGain()
		if err != nil {
			return err
		}
		fmt.Fprintln(o.W)
		t = newTable("Objective", "Pick", "Elapsed(ms)")
		t.add("meter", fmt.Sprintf("(%v, %v)", g.MeterAlgo, g.MeterLevel),
			fmt.Sprintf("%.4f", float64(g.MeterElapsed)*1e3))
		t.add("makespan", fmt.Sprintf("(%v, %v)", g.MakespanAlgo, g.MakespanLevel),
			fmt.Sprintf("%.4f", float64(g.MakespanElapsed)*1e3))
		t.write(o.W)
		fmt.Fprintf(o.W, "\nAllGather %v %s, depth %d async: makespan objective gains %.2fx elapsed\n",
			algoPinShape, algoPinDims, AutoGainDepth, float64(g.MeterElapsed)/float64(g.MakespanElapsed))
		return nil
	})
}

func collectAlgo(add func(string, float64)) error {
	for _, alg := range core.RegisteredAlgorithms(core.AllReduce) {
		meter, ks, err := MeasureAlgoAllReduce(algoPinPerPE, alg)
		if err != nil {
			return err
		}
		add("allreduce_"+alg.String()+"_meter", float64(meter))
		add("allreduce_"+alg.String()+"_makespan", float64(ks))
	}
	for _, pin := range []struct {
		name  string
		perPE int
	}{{"small", algoClusterSmall}, {"large", algoClusterLarge}} {
		for _, alg := range []core.Algorithm{core.AlgoRing, core.AlgoTree} {
			bd, err := MeasureClusterAllReduceAlgo(clusterPinHosts, pin.perPE, cost.DefaultParams(), alg)
			if err != nil {
				return err
			}
			add("cluster_"+alg.String()+"_"+pin.name, float64(bd.Total()))
		}
	}
	g, err := MeasureAutoObjectiveGain()
	if err != nil {
		return err
	}
	add("auto_meter_elapsed", float64(g.MeterElapsed))
	add("auto_makespan_elapsed", float64(g.MakespanElapsed))
	return nil
}
