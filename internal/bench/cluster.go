package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// This file holds the cluster-scale experiment (`pidbench -exp
// cluster`): global AllReduce lowered hierarchically (local reduce →
// inter-host ring → local broadcast, § IX-A) versus the naive flat
// emulation that ships every PE's raw data to a root host, measured on
// cost-only clusters so the sweep reaches thousands of hosts in
// milliseconds. The third table varies the parameterized network model
// (cost.NetParams): link bandwidth, NIC count and switch tiers move the
// network share exactly the way the analytical model says they should.

// clusterHostGeo is the per-host machine of § IX-A: one four-rank
// channel, 256 PEs, with enough (phantom) MRAM for the payload regions.
func clusterHostGeo(perPE int) dram.Geometry {
	return dram.Geometry{Channels: 1, RanksPerChannel: 4, BanksPerChip: 8,
		MramPerBank: mramFor(3 * perPE)}
}

// clusterOf builds a cost-only cluster of identical 1-D hosts.
func clusterOf(hosts int, geo dram.Geometry, params cost.Params) (*core.Cluster, error) {
	comms := make([]*core.Comm, hosts)
	for h := range comms {
		c, err := newCommOn(geo, []int{geo.NumPEs()}, params, true)
		if err != nil {
			return nil, err
		}
		comms[h] = c
	}
	return core.NewCluster(comms)
}

// MeasureClusterAllReduce prices one global AllReduce of perPE bytes per
// PE across hosts cost-only hosts, hierarchically or flat.
func MeasureClusterAllReduce(hosts, perPE int, params cost.Params, flat bool) (cost.Breakdown, error) {
	geo := clusterHostGeo(perPE)
	P := geo.NumPEs()
	m := perPE / (8 * P) * (8 * P)
	if m == 0 {
		m = 8 * P
	}
	cl, err := clusterOf(hosts, geo, params)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cl.Run(core.ClusterCollective{Collective: core.Collective{
		Prim: core.AllReduce, Dims: "1", Src: core.Span(0, m), Dst: core.At(2 * m),
		Elem: elem.I32, Op: elem.Sum, Level: core.CM,
	}, Flat: flat})
}

// The pinned configuration the regression metrics and the speedup gate
// measure: 64 hosts, 16 KiB per PE at the paper's network operating
// point.
const (
	clusterPinHosts = 64
	clusterPinPerPE = 16 << 10
)

// clusterPinned measures the pinned configuration hierarchically and
// flat; the hierarchical lowering must beat the flat baseline here (the
// bench test and CI gate pin that speedup).
func clusterPinned() (hier, flat cost.Breakdown, err error) {
	p := cost.DefaultParams()
	if hier, err = MeasureClusterAllReduce(clusterPinHosts, clusterPinPerPE, p, false); err != nil {
		return
	}
	flat, err = MeasureClusterAllReduce(clusterPinHosts, clusterPinPerPE, p, true)
	return
}

func init() {
	register("cluster", "Cluster-scale AllReduce: hierarchical vs flat lowering, network-model sweep (cost-only)", func(o Options) error {
		perPE := sizeFor(o, 16<<10, 128<<10)
		params := cost.DefaultParams()

		// Head-to-head: hierarchical vs flat at small host counts.
		t := newTable("Hosts", "Hier(ms)", "Flat(ms)", "Speedup", "Net share (hier)")
		for _, hosts := range []int{2, 4, 8, 16, 64} {
			hier, err := MeasureClusterAllReduce(hosts, perPE, params, false)
			if err != nil {
				return err
			}
			flat, err := MeasureClusterAllReduce(hosts, perPE, params, true)
			if err != nil {
				return err
			}
			t.add(fmt.Sprint(hosts),
				fmt.Sprintf("%.3f", float64(hier.Total())*1e3),
				fmt.Sprintf("%.3f", float64(flat.Total())*1e3),
				fmt.Sprintf("%.2fx", float64(flat.Total())/float64(hier.Total())),
				fmt.Sprintf("%.0f%%", 100*float64(hier.Get(cost.Network))/float64(hier.Total())))
		}
		t.write(o.W)

		// Scale sweep: the hierarchical ring's network time approaches the
		// 2*perPE/goodput asymptote while per-round latency accumulates.
		hostsSweep := []int{16, 64, 256, 1024}
		if o.Full {
			hostsSweep = append(hostsSweep, 4096)
		}
		fmt.Fprintln(o.W)
		t = newTable("Hosts", "Total(ms)", "Net(ms)", "Net share")
		for _, hosts := range hostsSweep {
			hier, err := MeasureClusterAllReduce(hosts, perPE, params, false)
			if err != nil {
				return err
			}
			t.add(fmt.Sprint(hosts),
				fmt.Sprintf("%.3f", float64(hier.Total())*1e3),
				fmt.Sprintf("%.3f", float64(hier.Get(cost.Network))*1e3),
				fmt.Sprintf("%.0f%%", 100*float64(hier.Get(cost.Network))/float64(hier.Total())))
		}
		t.write(o.W)

		// Network-model sweep at a fixed host count, on a payload large
		// enough to be bandwidth-bound (the ring ships ~2*perPE over the
		// wire): every knob of cost.NetParams moves the network leg
		// analytically — more NICs divide the wire time, switch tiers add
		// per-round latency.
		netPerPE := 4 << 20
		nets := []struct {
			name string
			net  cost.NetParams
		}{
			{"10G x1 (paper)", cost.DefaultNetParams()},
			{"100G x1", func() cost.NetParams {
				n := cost.DefaultNetParams()
				n.LinkBW = 100e9 / 8
				return n
			}()},
			{"100G x4, 2-tier", func() cost.NetParams {
				n := cost.DefaultNetParams()
				n.LinkBW = 100e9 / 8
				n.NICsPerHost = 4
				n.SwitchTiers = 2
				return n
			}()},
		}
		fmt.Fprintln(o.W)
		t = newTable("Network", "Total(ms)", "Net(ms)", "Net share")
		for _, nc := range nets {
			p := params
			p.Net = nc.net
			hier, err := MeasureClusterAllReduce(clusterPinHosts, netPerPE, p, false)
			if err != nil {
				return err
			}
			t.add(nc.name,
				fmt.Sprintf("%.3f", float64(hier.Total())*1e3),
				fmt.Sprintf("%.3f", float64(hier.Get(cost.Network))*1e3),
				fmt.Sprintf("%.0f%%", 100*float64(hier.Get(cost.Network))/float64(hier.Total())))
		}
		t.write(o.W)
		return nil
	})
}

func collectCluster(add func(string, float64)) error {
	hier, flat, err := clusterPinned()
	if err != nil {
		return err
	}
	add(fmt.Sprintf("hier_h%d", clusterPinHosts), float64(hier.Total()))
	add(fmt.Sprintf("flat_h%d", clusterPinHosts), float64(flat.Total()))
	big, err := MeasureClusterAllReduce(1024, clusterPinPerPE, cost.DefaultParams(), false)
	if err != nil {
		return err
	}
	add("hier_h1024", float64(big.Total()))
	return nil
}
