package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// This file holds the schedule-fusion experiment: the DLRM serving
// pipeline of ReduceScatter→AlltoAll pairs (Figure 11's steps 4-5 under
// software pipelining) compiled once as separate plans and once through
// the fusion optimizer as a single multi-collective sequence. Per batch
// k the ReduceScatter (IM) reduces the response buffer A_k into B_k and
// the AlltoAll (CM) relocates the staged requests C_k into the *next*
// batch's response buffer A_{k+1} — so across every batch boundary the
// AlltoAll's trailing unrotate of A_{k+1} and the next ReduceScatter's
// leading rotate of the same region are an inverse pair the fuser
// cancels, the interior per-collective synchronizations collapse into
// one, and the freed-up adjacent column-stream epochs coalesce. The
// fused plan performs byte-identical communication (pinned by the core
// fusion property tests) at measurably lower cost; the win is largest
// for the launch/sync-bound payloads DLRM serving actually ships.

// FusionResult is one row of the fusion experiment.
type FusionResult struct {
	// BytesPerPE is the per-PE ReduceScatter/AlltoAll payload.
	BytesPerPE int
	// Batches is the pipeline depth (ReduceScatter→AlltoAll pairs).
	Batches int
	// Unfused and Fused are the pipeline's per-replay simulated costs.
	Unfused, Fused cost.Seconds
	// Speedup is Unfused / Fused.
	Speedup float64
	// Report is the fused plan's pass report.
	Report core.FusionReport
}

// fusionComm builds a cost-only comm on the paper's 1024-PE machine with
// enough phantom MRAM for the pipeline's regions at the given fusion
// level.
func fusionComm(m, batches int, fuse core.FuseLevel) (*core.Comm, error) {
	need := (2*batches+1)*m + batches*m // A/C regions plus aligned B slack
	mram := 1
	for mram < need+64 {
		mram *= 2
	}
	c, err := newCommOn(dram.PaperGeometry(mram), []int{32, 32}, cost.DefaultParams(), true)
	if err != nil {
		return nil, err
	}
	c.SetFuse(fuse)
	return c, nil
}

// fusionPipeline returns the pipeline's descriptors: per batch a
// ReduceScatter A_k→B_k and an AlltoAll C_k→A_{k+1}, chained so the
// rotate/unrotate pairs on the shared A regions cancel under fusion.
func fusionPipeline(m, batches int) []core.Collective {
	n := 32 // group size of dims "10" on the 32x32 hypercube
	s := m / n
	offA := func(k int) int { return k * m }
	offC := func(k int) int { return (batches + 1 + k) * m }
	offB := func(k int) int { return (2*batches+1)*m + k*s }
	var ds []core.Collective
	for k := 0; k < batches; k++ {
		ds = append(ds,
			core.Collective{Prim: core.ReduceScatter, Dims: "10",
				Src: core.Span(offA(k), m), Dst: core.At(offB(k)),
				Elem: elem.I32, Op: elem.Sum, Level: core.IM},
			core.Collective{Prim: core.AlltoAll, Dims: "10",
				Src: core.Span(offC(k), m), Dst: core.At(offA(k + 1)), Level: core.CM})
	}
	return ds
}

// MeasureFusion compiles the pipeline unfused and fused at per-PE
// payload m and the given depth, returning both costs and the fused
// plan's report. Cost-only backend; the functional byte-equivalence of
// fused execution is pinned by the core fusion property tests.
func MeasureFusion(m, batches int) (FusionResult, error) {
	r := FusionResult{BytesPerPE: m, Batches: batches}
	ds := fusionPipeline(m, batches)

	off, err := fusionComm(m, batches, core.FuseOff)
	if err != nil {
		return r, err
	}
	cpOff, err := off.CompileSequence(ds...)
	if err != nil {
		return r, err
	}
	on, err := fusionComm(m, batches, core.FuseFull)
	if err != nil {
		return r, err
	}
	cpOn, err := on.CompileSequence(ds...)
	if err != nil {
		return r, err
	}
	r.Unfused = cpOff.Cost().Total()
	r.Fused = cpOn.Cost().Total()
	r.Report = cpOn.FusionReport()
	if r.Fused > 0 {
		r.Speedup = float64(r.Unfused) / float64(r.Fused)
	}
	return r, nil
}

// fusionPinPoint is the payload the speedup pin is measured at: the
// default (small) scale of the experiment, a DLRM-serving-sized slice.
const fusionPinPoint = 4 << 10

// fusionDepth is the pipeline depth of the experiment.
const fusionDepth = 8

// RunFusion runs the fusion experiment and writes its table.
func RunFusion(o Options) error {
	sizes := []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 64 << 10}
	if o.Full {
		sizes = append(sizes, 256<<10)
	}
	t := newTable("KiB/PE", "Unfused (ms)", "Fused (ms)", "Speedup", "Rotates elided", "Syncs elided", "Epochs coalesced")
	var pinned FusionResult
	for _, m := range sizes {
		r, err := MeasureFusion(m, fusionDepth)
		if err != nil {
			return err
		}
		if m == fusionPinPoint {
			pinned = r
		}
		t.add(fmt.Sprintf("%d", m>>10),
			fmt.Sprintf("%.3f", float64(r.Unfused)*1e3),
			fmt.Sprintf("%.3f", float64(r.Fused)*1e3),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprint(r.Report.RotatesMerged+r.Report.RotatesElided),
			fmt.Sprint(r.Report.SyncsElided),
			fmt.Sprint(r.Report.EpochsCoalesced))
	}
	t.write(o.W)
	fmt.Fprintf(o.W, "\n(DLRM serving pipeline: %d ReduceScatter/IM -> AlltoAll/CM pairs per replay on\n"+
		" 1024 PEs (32x32), cost-only backend; each AlltoAll feeds the next batch's\n"+
		" ReduceScatter, so the fuser cancels the rotate/unrotate pair at every batch\n"+
		" boundary, collapses the interior syncs and coalesces the freed epochs.)\n", fusionDepth)
	fmt.Fprintf(o.W, "fused schedule: %s\n", pinned.Report)
	fmt.Fprintf(o.W, "pinned: %.2fx cost improvement at %d KiB/PE (gate: >= 1.15x)\n",
		pinned.Speedup, fusionPinPoint>>10)
	return nil
}

// fusionPinned measures the experiment's pinned configuration — shared
// by the table, the speedup gate test and the CI metrics.
func fusionPinned() (FusionResult, error) { return MeasureFusion(fusionPinPoint, fusionDepth) }

func init() {
	register("fusion", "Schedule fusion: DLRM ReduceScatter->AlltoAll pipeline, unfused vs fused compiled plans", func(o Options) error {
		return RunFusion(o)
	})
}
