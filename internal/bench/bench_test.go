package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"

	"repro/internal/elem"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig4", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "fig22", "fig23a", "fig23b",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	if len(Experiments()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(Experiments()), len(want))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTablesRun(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		var buf bytes.Buffer
		e, _ := ByID(id)
		if err := e.Run(Options{W: &buf}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestRunPrimitiveAll(t *testing.T) {
	for _, prim := range core.Primitives() {
		thr, bd, err := RunPrimitive(PrimSpec{
			Shape: []int{8, 8}, Dims: "10", RecvPerPE: 512, Prim: prim, Level: core.CM,
		})
		if err != nil {
			t.Fatalf("%v: %v", prim, err)
		}
		if thr <= 0 || bd.Total() <= 0 {
			t.Errorf("%v: thr=%v total=%v", prim, thr, bd.Total())
		}
	}
}

func TestRunPrimitiveWithReduceArgs(t *testing.T) {
	thr, _, err := RunPrimitive(PrimSpec{
		Shape: []int{64}, Dims: "1", RecvPerPE: 1024,
		Prim: core.ReduceScatter, Level: core.IM, Elem: elem.I8, Op: elem.Or,
	})
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 {
		t.Error("no throughput")
	}
}

func TestRunPrimitiveUnknown(t *testing.T) {
	if _, _, err := RunPrimitive(PrimSpec{Shape: []int{64}, Dims: "1", RecvPerPE: 512, Prim: core.Primitive(99)}); err == nil {
		t.Error("unknown primitive accepted")
	}
}

func TestGeoForPEsFlexible(t *testing.T) {
	for _, n := range []int{8, 32, 64, 256, 512, 1024} {
		g, err := geoForPEsFlexible(n, 4096)
		if err != nil {
			t.Fatalf("%d PEs: %v", n, err)
		}
		if g.NumPEs() != n {
			t.Errorf("%d PEs: got %d", n, g.NumPEs())
		}
	}
	if _, err := geoForPEsFlexible(12, 4096); err == nil {
		t.Error("12 PEs accepted")
	}
}

func TestGeomeanAndGbps(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	if geomean(nil) != 0 {
		t.Error("geomean(nil) != 0")
	}
	if v := gbps(2e9, 1); v != 2 {
		t.Errorf("gbps = %v", v)
	}
	if gbps(1, 0) != 0 {
		t.Error("gbps with zero time should be 0")
	}
}

func TestTableWriter(t *testing.T) {
	tb := newTable("A", "B")
	tb.add("x", "yy")
	tb.add("longer", "z")
	var buf bytes.Buffer
	tb.write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A") {
		t.Error("missing header")
	}
}

func TestSizeFor(t *testing.T) {
	if sizeFor(Options{}, 1, 2) != 1 || sizeFor(Options{Full: true}, 1, 2) != 2 {
		t.Error("sizeFor wrong")
	}
}

func TestAppRunsMatrixComplete(t *testing.T) {
	runs := appRuns()
	names := map[string]bool{}
	for _, r := range runs {
		names[r.Name] = true
		if len(r.PEs) == 0 {
			t.Errorf("%s has no PE counts", r.Name)
		}
	}
	// Table III: DLRM x2 dims, GNN x2 strategies x2 datasets, BFS/CC x2
	// graphs, MLP x2 sizes = 12 configurations.
	if len(runs) != 12 {
		t.Errorf("got %d app runs, want 12", len(runs))
	}
	for _, want := range []string{"DLRM-16", "DLRM-32", "GNN RS&AR-PM", "GNN AR&AG-RD", "BFS-LJ", "CC-LG", "MLP-16k/4", "MLP-32k/4"} {
		if !names[want] {
			t.Errorf("missing app run %s", want)
		}
	}
}

// The headline calibration check (Figure 14 shape): PID-Comm beats the
// baseline for AA/RS/AR by the paper's rough factors at a 2D config, and
// Broadcast is unchanged.
func TestFig14ShapeCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	ratio := func(prim core.Primitive) float64 {
		spec := PrimSpec{Shape: []int{16, 16}, Dims: "10", RecvPerPE: 32 << 10, Prim: prim}
		spec.Level = core.Baseline
		base, _, err := RunPrimitive(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.Level = core.CM
		ours, _, err := RunPrimitive(spec)
		if err != nil {
			t.Fatal(err)
		}
		return ours / base
	}
	checks := []struct {
		prim   core.Primitive
		lo, hi float64
	}{
		{core.AlltoAll, 1.5, 8},      // paper: 5.19x at 32x32
		{core.ReduceScatter, 1.5, 8}, // paper: 4.46x
		{core.AllReduce, 1.5, 8},     // paper: 4.23x
		{core.Broadcast, 0.99, 1.01}, // paper: ~1x
	}
	for _, c := range checks {
		r := ratio(c.prim)
		if r < c.lo || r > c.hi {
			t.Errorf("%v speedup %.2fx outside [%v, %v]", c.prim, r, c.lo, c.hi)
		}
	}
}

func TestRunAllWritesHeaders(t *testing.T) {
	// RunAll over everything is minutes; just verify the wiring by
	// running the cheapest two experiments through the same plumbing.
	var buf bytes.Buffer
	for _, id := range []string{"table1", "table2"} {
		e, _ := ByID(id)
		if err := e.Run(Options{W: &buf}); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(buf.String(), "PID-Comm") {
		t.Error("missing content")
	}
}

// The async acceptance bar: on the paper-scale 1024-PE cost-only config,
// overlapping a DLRM-style pattern of independent collectives must beat
// serial replay by at least 1.3x, at every pipeline depth including the
// minimal two-collective pattern, and async elapsed may never exceed
// serial elapsed.
func TestAsyncOverlapAtLeast1_3x(t *testing.T) {
	results, err := MeasureAsyncOverlap(64<<10, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("depth %d: serial %.3fms, async %.3fms (%.2fx)",
			r.Batches, float64(r.SerialElapsed)*1e3, float64(r.AsyncElapsed)*1e3, r.Speedup)
		if r.AsyncElapsed > r.SerialElapsed {
			t.Errorf("depth %d: async elapsed %v exceeds serial %v", r.Batches, r.AsyncElapsed, r.SerialElapsed)
		}
		if r.Speedup < 1.3 {
			t.Errorf("depth %d: overlap speedup %.2fx below the 1.3x bar", r.Batches, r.Speedup)
		}
	}
}

func TestAsyncExperimentRegistered(t *testing.T) {
	e, err := ByID("async")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(Options{W: &buf}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Overlap speedup") {
		t.Error("async experiment produced no speedup column")
	}
}

// The -async mode must not change any measurement: one plan alone on the
// submission queue charges exactly what a serial run charges.
func TestAsyncPrimitiveTablesIdentical(t *testing.T) {
	for _, prim := range core.Primitives() {
		spec := PrimSpec{Shape: []int{8, 8}, Dims: "10", RecvPerPE: 512, Prim: prim, Level: core.CM, CostOnly: true}
		_, bd, err := RunPrimitive(spec)
		if err != nil {
			t.Fatalf("%v: %v", prim, err)
		}
		spec.Async = true
		_, abd, err := RunPrimitive(spec)
		if err != nil {
			t.Fatalf("%v async: %v", prim, err)
		}
		if bd != abd {
			t.Errorf("%v: async breakdown diverges from serial:\n serial %v\n async  %v", prim, bd, abd)
		}
	}
}

// The plan-cache acceptance bar: on the paper-scale 1024-PE cost-only
// config, cached CompiledPlan replay must beat compile-each-call by at
// least 5x (measured headroom is 1-2 orders of magnitude, so this bound
// is robust to CI noise).
func TestReplaySpeedupAtLeast5x(t *testing.T) {
	results, err := MeasureReplay(1<<20, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%v: cold %.0f/s, cached %.0f/s (%.1fx)", r.Prim, r.ColdPerSec, r.CachedPerSec, r.Speedup)
		if r.Speedup < 5 {
			t.Errorf("%v: cached replay only %.1fx faster than compile-each-call (want >= 5x)", r.Prim, r.Speedup)
		}
	}
}
