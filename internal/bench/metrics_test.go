package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestCompareMetricsGate exercises the benchmark-regression gate logic
// against real collected metrics (fusion only — the cheapest collector):
// an equal baseline passes, a baseline the current build beats by more
// than the threshold fails, and a baseline metric the build no longer
// produces fails.
func TestCompareMetricsGate(t *testing.T) {
	ids := []string{"fusion"}
	mf, err := CollectMetrics(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Metrics) == 0 || mf.Schema != MetricsSchema {
		t.Fatalf("collected %+v", mf)
	}

	var out bytes.Buffer
	if err := CompareMetrics(&out, mf, ids, 0.10); err != nil {
		t.Fatalf("identical baseline failed: %v", err)
	}

	// Halve the baseline: every current metric is now a 100% regression.
	worse := MetricsFile{Schema: MetricsSchema, Experiments: mf.Experiments, Metrics: map[string]float64{}}
	for k, v := range mf.Metrics {
		worse.Metrics[k] = v / 2
	}
	out.Reset()
	err = CompareMetrics(&out, worse, ids, 0.10)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("halved baseline did not fail: %v", err)
	}

	// A baseline metric the build no longer produces must fail too.
	ghost := MetricsFile{Schema: MetricsSchema, Experiments: mf.Experiments, Metrics: map[string]float64{}}
	for k, v := range mf.Metrics {
		ghost.Metrics[k] = v
	}
	ghost.Metrics["fusion/ghost"] = 1
	out.Reset()
	err = CompareMetrics(&out, ghost, ids, 0.10)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("ghost metric did not fail: %v", err)
	}

	// Determinism: recollecting yields bit-identical values (the gate's
	// premise — the cost model has no nondeterminism).
	again, err := CollectMetrics(ids)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range mf.Metrics {
		if again.Metrics[k] != v {
			t.Fatalf("metric %s not deterministic: %v vs %v", k, v, again.Metrics[k])
		}
	}

	if _, err := CollectMetrics([]string{"nope"}); err == nil {
		t.Fatal("unknown experiment id did not fail")
	}
}
