package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
)

// funcspeed measures the parallel functional backend itself: the same
// compiled plan replayed serially (ExecWorkers=1) and on the worker pool
// (ExecWorkers=min(8, NumCPU)), reporting wall-clock — the only
// experiment in the suite whose subject is host execution speed rather
// than simulated cost. The gated metric is the parallel/serial elapsed
// ratio (lower is better): it is ~1.0 on a single-core machine (both
// settings run the same serial path, so the gate never false-fails
// there) and well below 1 wherever the pool can spread out, which makes
// executor-overhead regressions visible on any hardware. The hard >= 5x
// pin at 8 workers lives in core's TestFuncSpeedup.

// funcSpeedResult is one funcspeed measurement.
type funcSpeedResult struct {
	Workers          int
	Serial, Parallel time.Duration
}

// measureFuncSpeed compiles a functional CM AlltoAll over shape and
// replays it at 1 worker and at `workers`, returning the best-of-trials
// elapsed time for each. Best-of (not mean) keeps the ratio stable under
// scheduler noise, which matters because the ratio is regression-gated.
func measureFuncSpeed(shape []int, recvPerPE, workers, trials int) (funcSpeedResult, error) {
	n := 1
	for _, l := range shape {
		n *= l
	}
	comm, err := newPrimComm(shape, n, recvPerPE, false)
	if err != nil {
		return funcSpeedResult{}, err
	}
	rng := rand.New(rand.NewSource(21))
	buf := make([]byte, recvPerPE)
	for pe := 0; pe < n; pe++ {
		rng.Read(buf)
		comm.SetPEBuffer(pe, 0, buf)
	}
	cp, err := comm.CompileAlltoAll("10", 0, 2*recvPerPE, recvPerPE, core.CM)
	if err != nil {
		return funcSpeedResult{}, err
	}
	measure := func(w int) (time.Duration, error) {
		comm.SetExecWorkers(w)
		if _, err := cp.Run(); err != nil { // warm at this worker count
			return 0, err
		}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < trials; i++ {
			t0 := time.Now()
			if _, err := cp.Run(); err != nil {
				return 0, err
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best, nil
	}
	res := funcSpeedResult{Workers: workers}
	if res.Serial, err = measure(1); err != nil {
		return res, err
	}
	res.Parallel, err = measure(workers)
	return res, err
}

// funcSpeedWorkers is the pool size funcspeed measures: the gate's 8
// workers, clamped to the machine.
func funcSpeedWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	return w
}

func collectFuncSpeed(add func(string, float64)) error {
	workers := funcSpeedWorkers()
	if workers == 1 {
		// Single-CPU machine: both settings run the identical serial
		// path, so the true ratio is 1 by definition — record that
		// rather than timing noise the regression gate would trip on.
		add("ratio", 1.0)
		return nil
	}
	r, err := measureFuncSpeed([]int{16, 16}, 32<<10, workers, 5)
	if err != nil {
		return err
	}
	add("ratio", r.Parallel.Seconds()/r.Serial.Seconds())
	return nil
}

func init() {
	register("funcspeed", "Parallel functional backend: serial vs worker-pool replay wall-clock", func(o Options) error {
		shape := []int{16, 16}
		size := sizeFor(o, 32<<10, 256<<10)
		r, err := measureFuncSpeed(shape, size, funcSpeedWorkers(), 5)
		if err != nil {
			return err
		}
		t := newTable("Shape", "Bytes/PE", "Workers", "Serial", "Parallel", "Speedup")
		t.add(fmt.Sprintf("%v", shape), fmt.Sprintf("%dK", size>>10), fmt.Sprint(r.Workers),
			r.Serial.Round(time.Microsecond).String(), r.Parallel.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(r.Serial)/float64(r.Parallel)))
		t.write(o.W)
		if runtime.NumCPU() == 1 {
			fmt.Fprintln(o.W, "\n(single-CPU machine: both settings run the serial path; speedup ~1x is expected)")
		}
		return nil
	})
}
