package bench

import (
	"fmt"

	"repro/internal/serve"
	"repro/pidcomm"
)

// servingPoints are the offered-load fractions the serving experiment
// sweeps: below, near and past the knee of the throughput-vs-latency
// curve (rho > 1 is deliberate overload).
var servingPoints = []float64{0.6, 0.75, 0.9, 1.05}

// servingRequests sizes a sweep point; Full triples it.
func servingRequests(full bool) int {
	if full {
		return 2400
	}
	return 800
}

// runServingPoint runs the canonical scenario at one (policy, rho)
// operating point.
func runServingPoint(pol pidcomm.SchedPolicy, rho float64, n int, mutate func(*serve.Config)) (serve.Result, error) {
	cfg, err := serve.Scenario(pol, rho, n)
	if err != nil {
		return serve.Result{}, err
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return serve.Run(cfg)
}

func init() {
	register("serving", "Online serving: open-loop chat/feed/batch mix, WFQ vs EDF throughput-vs-p99 sweep, churn and overload", func(o Options) error {
		n := servingRequests(o.Full)
		ms := func(s pidcomm.Seconds) string { return fmt.Sprintf("%.4f", float64(s)*1e3) }
		t := newTable("rho", "policy", "req/s", "SLO p50(ms)", "SLO p99(ms)", "SLO p99.9(ms)", "missed", "shed")
		for _, rho := range servingPoints {
			for _, pol := range []pidcomm.SchedPolicy{pidcomm.SchedWFQ, pidcomm.SchedEDF} {
				res, err := runServingPoint(pol, rho, n, nil)
				if err != nil {
					return err
				}
				t.add(fmt.Sprintf("%.2f", rho), pol.String(), fmt.Sprintf("%.0f", res.Throughput),
					ms(res.SLO.P50), ms(res.SLO.P99), ms(res.SLO.P999),
					fmt.Sprintf("%d", res.Missed), fmt.Sprintf("%d", res.Shed))
			}
		}
		t.write(o.W)

		// Variants at the rho=0.9 gate point: tenant churn mid-run, fused
		// (preemption-point-free) submission, and deliberate overload with
		// a tight pending budget.
		fmt.Fprintln(o.W)
		v := newTable("variant (rho=0.9, edf)", "req/s", "SLO p99(ms)", "chat p99(ms)", "missed", "shed", "churns")
		churn, err := runServingPoint(pidcomm.SchedEDF, 0.9, n, func(c *serve.Config) { c.ChurnEvery = 50 })
		if err != nil {
			return err
		}
		fused, err := runServingPoint(pidcomm.SchedEDF, 0.9, n, func(c *serve.Config) { c.Fused = true })
		if err != nil {
			return err
		}
		overload, err := runServingPoint(pidcomm.SchedEDF, 0.9, n, func(c *serve.Config) {
			for i := range c.Tenants {
				c.Tenants[i].Rate *= 4
				c.Tenants[i].MaxPending = 4
			}
			c.Tenants[len(c.Tenants)-1].Shed = pidcomm.ShedOldest
			c.MaxRequests = 16 * n
		})
		if err != nil {
			return err
		}
		for _, e := range []struct {
			name string
			r    serve.Result
		}{{"churn every 50", churn}, {"fused requests", fused}, {"4x overload, MaxPending 4", overload}} {
			churns := 0
			for _, ts := range e.r.Tenants {
				churns += ts.Churns
			}
			v.add(e.name, fmt.Sprintf("%.0f", e.r.Throughput), ms(e.r.SLO.P99), ms(e.r.Tenants[0].Stats.P99),
				fmt.Sprintf("%d", e.r.Missed), fmt.Sprintf("%d", e.r.Shed), fmt.Sprintf("%d", churns))
		}
		v.write(o.W)
		return nil
	})
}

// collectServing gates the serving tail at the canonical rho=0.9 point.
// Beyond the usual lower-is-better metric deltas, the collector itself
// enforces the hard acceptance properties: EDF misses zero deadlines
// below saturation and holds at least a 1.2x p99 advantage over WFQ.
func collectServing(add func(string, float64)) error {
	const n = 800
	wfq, err := runServingPoint(pidcomm.SchedWFQ, 0.9, n, nil)
	if err != nil {
		return err
	}
	edf, err := runServingPoint(pidcomm.SchedEDF, 0.9, n, nil)
	if err != nil {
		return err
	}
	churn, err := runServingPoint(pidcomm.SchedEDF, 0.9, n, func(c *serve.Config) { c.ChurnEvery = 50 })
	if err != nil {
		return err
	}
	if edf.Missed != 0 {
		return fmt.Errorf("serving: EDF missed %d deadlines below saturation", edf.Missed)
	}
	if edf.Shed != 0 || wfq.Shed != 0 {
		return fmt.Errorf("serving: unexpected shedding below saturation (wfq %d, edf %d)", wfq.Shed, edf.Shed)
	}
	if float64(wfq.SLO.P99) < 1.2*float64(edf.SLO.P99) {
		return fmt.Errorf("serving: EDF p99 advantage below the 1.2x gate: wfq=%v edf=%v (%.3fx)",
			wfq.SLO.P99, edf.SLO.P99, float64(wfq.SLO.P99)/float64(edf.SLO.P99))
	}
	add("wfq_p99", float64(wfq.SLO.P99))
	add("edf_p99", float64(edf.SLO.P99))
	add("edf_p999", float64(edf.SLO.P999))
	add("edf_churn_p99", float64(churn.SLO.P99))
	add("makespan", float64(edf.Makespan))
	return nil
}
