package bench

import (
	"strings"
	"testing"
)

// The multitenant experiment's headline claims, pinned at reduced
// scale: the per-tenant work is bit-identical between modes, and the
// weighted-fair makespan beats serial serving by a real margin.
func TestMultiTenantFairBeatsSerial(t *testing.T) {
	specs := []tenantSpec{{"a", 2}, {"b", 1}, {"c", 1}}
	serialBD, fairBD, serial, fair, infos, err := runMultiTenant(specs, 4<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serialBD != fairBD {
		t.Errorf("work differs between modes: serial %v, fair %v", serialBD, fairBD)
	}
	if len(infos) != len(specs) {
		t.Fatalf("tenant listing has %d rows, want %d", len(infos), len(specs))
	}
	if speedup := float64(serial) / float64(fair); speedup < 1.3 {
		t.Errorf("weighted-fair speedup %.2fx below 1.3x (serial %v, fair %v)", speedup, serial, fair)
	}
}

// The registered experiment renders its table without error.
func TestMultiTenantExperimentRuns(t *testing.T) {
	e, err := ByID("multitenant")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.Run(Options{W: &sb}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"work identical across modes: true", "overlap speedup", "dlrm-a"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q:\n%s", want, out)
		}
	}
}
