package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
	"repro/internal/host"
)

// PrimSpec describes one primitive measurement.
type PrimSpec struct {
	// Shape is the hypercube; PEs = product.
	Shape []int
	// Dims is the communication-dimension bitmap.
	Dims string
	// RecvPerPE is the per-PE payload on the larger side of the
	// communication (the paper's throughput denominator basis, § VIII-B).
	RecvPerPE int
	// Prim, Level select what to run.
	Prim  core.Primitive
	Level core.Level
	// Elem/Op apply to the reducing primitives.
	Elem elem.Type
	Op   elem.Op
	// Algo constrains the schedule algorithm (AllReduce and Broadcast
	// only; the zero value AlgoAuto keeps the default resolution).
	Algo core.Algorithm
	// CostOnly runs on the cost-only backend over a phantom system: the
	// throughput and breakdown are identical (the cost model is shared
	// bit-for-bit), but no MRAM is allocated and no data moves.
	CostOnly bool
	// Async executes the primitive through Submit + Future.Wait instead
	// of the blocking call; the measurement is identical (one plan alone
	// on the queue charges what a serial run charges).
	Async bool
}

// RunPrimitive executes one primitive on a fresh system and returns the
// throughput (GB/s, larger-side bytes over simulated seconds, § VIII-B)
// and the cost breakdown.
func RunPrimitive(spec PrimSpec) (float64, cost.Breakdown, error) {
	thr, bd, _, err := RunPrimitiveWithStats(spec)
	return thr, bd, err
}

// RunPrimitiveWithStats additionally returns the host's cumulative bus
// traffic statistics (cmd/pidtrace prints them).
func RunPrimitiveWithStats(spec PrimSpec) (float64, cost.Breakdown, host.XferStats, error) {
	n := 1
	for _, l := range spec.Shape {
		n *= l
	}
	if spec.Elem == 0 && spec.Op == 0 {
		spec.Elem, spec.Op = elem.I32, elem.Sum
	}
	comm, err := newPrimComm(spec.Shape, n, spec.RecvPerPE, spec.CostOnly)
	if err != nil {
		return 0, cost.Breakdown{}, host.XferStats{}, err
	}
	p := comm.Hypercube()
	groups, err := p.Groups(spec.Dims)
	if err != nil {
		return 0, cost.Breakdown{}, host.XferStats{}, err
	}
	gsize := len(groups[0])
	m := spec.RecvPerPE
	fill := func(bytesPerPE int) {
		if spec.CostOnly {
			return // phantom system: no MRAM to fill, data is irrelevant to cost
		}
		rng := rand.New(rand.NewSource(7))
		buf := make([]byte, bytesPerPE)
		for pe := 0; pe < n; pe++ {
			rng.Read(buf)
			comm.SetPEBuffer(pe, 0, buf)
		}
	}
	hostBufs := func(perGroup int) [][]byte {
		rng := rand.New(rand.NewSource(9))
		out := make([][]byte, len(groups))
		for g := range out {
			out[g] = make([]byte, perGroup)
			if !spec.CostOnly { // cost backend never reads host buffers
				rng.Read(out[g])
			}
		}
		return out
	}

	if spec.Algo != core.AlgoAuto && spec.Prim != core.AllReduce && spec.Prim != core.Broadcast {
		return 0, cost.Breakdown{}, host.XferStats{}, fmt.Errorf("bench: algorithm %v not supported for %v", spec.Algo, spec.Prim)
	}
	var bd cost.Breakdown
	var fut *core.Future
	var bytes int64
	switch spec.Prim {
	case core.AlltoAll:
		fill(m)
		if spec.Async {
			fut, err = comm.SubmitAlltoAll(spec.Dims, 0, 2*m, m, spec.Level)
		} else {
			bd, err = comm.AlltoAll(spec.Dims, 0, 2*m, m, spec.Level)
		}
		bytes = int64(m) * int64(n)
	case core.ReduceScatter:
		fill(m)
		if spec.Async {
			fut, err = comm.SubmitReduceScatter(spec.Dims, 0, 2*m, m, spec.Elem, spec.Op, spec.Level)
		} else {
			bd, err = comm.ReduceScatter(spec.Dims, 0, 2*m, m, spec.Elem, spec.Op, spec.Level)
		}
		bytes = int64(m) * int64(n) // before reduction
	case core.AllReduce:
		fill(m)
		d := core.Collective{Prim: core.AllReduce, Dims: spec.Dims,
			Src: core.Span(0, m), Dst: core.At(2 * m),
			Elem: spec.Elem, Op: spec.Op, Level: spec.Level, Algorithm: spec.Algo}
		if spec.Async {
			fut, err = comm.Submit(d)
		} else {
			bd, err = comm.Run(d)
		}
		bytes = int64(m) * int64(n)
	case core.AllGather:
		s := m / gsize
		fill(s)
		if spec.Async {
			fut, err = comm.SubmitAllGather(spec.Dims, 0, 2*s, s, spec.Level)
		} else {
			bd, err = comm.AllGather(spec.Dims, 0, 2*s, s, spec.Level)
		}
		bytes = int64(s) * int64(gsize) * int64(n) // output side
	case core.Scatter:
		var bufs [][]byte
		if !spec.CostOnly { // cost backend accepts nil: sizes are implied
			bufs = hostBufs(gsize * m)
		}
		if spec.Async {
			fut, err = comm.SubmitScatter(spec.Dims, bufs, 0, m, spec.Level)
		} else {
			bd, err = comm.Scatter(spec.Dims, bufs, 0, m, spec.Level)
		}
		bytes = int64(m) * int64(n)
	case core.Gather:
		fill(m)
		if spec.Async {
			fut, err = comm.SubmitGather(spec.Dims, 0, m, spec.Level)
		} else {
			_, bd, err = comm.Gather(spec.Dims, 0, m, spec.Level)
		}
		bytes = int64(m) * int64(n)
	case core.Reduce:
		fill(m)
		if spec.Async {
			fut, err = comm.SubmitReduce(spec.Dims, 0, m, spec.Elem, spec.Op, spec.Level)
		} else {
			_, bd, err = comm.Reduce(spec.Dims, 0, m, spec.Elem, spec.Op, spec.Level)
		}
		bytes = int64(m) * int64(n)
	case core.Broadcast:
		d := core.Collective{Prim: core.Broadcast, Dims: spec.Dims,
			Hosts: hostBufs(m), Dst: core.At(0), Level: spec.Level, Algorithm: spec.Algo}
		if spec.Async {
			fut, err = comm.Submit(d)
		} else {
			bd, err = comm.Run(d)
		}
		bytes = int64(m) * int64(n) // received side
	default:
		return 0, cost.Breakdown{}, host.XferStats{}, fmt.Errorf("bench: unknown primitive %v", spec.Prim)
	}
	if err == nil && fut != nil {
		bd, err = fut.Wait()
	}
	if err != nil {
		return 0, cost.Breakdown{}, host.XferStats{}, err
	}
	return gbps(bytes, float64(bd.Total())), bd, comm.Host().Stats(), nil
}

// ResolvePrimitive reports the (algorithm, level) pair the spec's
// collective resolves to — the autotuner's pick where spec.Level is
// core.Auto (or spec.Algo is AlgoAuto under Auto level), the explicit
// selection mapped to its effective value otherwise. The resolution is
// backend-independent, so it always runs on a cost-only comm.
func ResolvePrimitive(spec PrimSpec) (core.Algorithm, core.Level, error) {
	n := 1
	for _, l := range spec.Shape {
		n *= l
	}
	if spec.Elem == 0 && spec.Op == 0 {
		spec.Elem, spec.Op = elem.I32, elem.Sum
	}
	comm, err := newPrimComm(spec.Shape, n, spec.RecvPerPE, true)
	if err != nil {
		return 0, 0, err
	}
	groups, err := comm.Hypercube().Groups(spec.Dims)
	if err != nil {
		return 0, 0, err
	}
	m := spec.RecvPerPE
	d := core.Collective{Prim: spec.Prim, Dims: spec.Dims, Level: spec.Level, Algorithm: spec.Algo}
	switch spec.Prim {
	case core.AlltoAll:
		d.Src, d.Dst = core.Span(0, m), core.At(2*m)
	case core.ReduceScatter, core.AllReduce:
		d.Src, d.Dst, d.Elem, d.Op = core.Span(0, m), core.At(2*m), spec.Elem, spec.Op
	case core.AllGather:
		s := m / len(groups[0])
		d.Src, d.Dst = core.Span(0, s), core.At(2*s)
	case core.Scatter:
		d.Dst = core.Span(0, m)
	case core.Gather:
		d.Src = core.Span(0, m)
	case core.Reduce:
		d.Src, d.Elem, d.Op = core.Span(0, m), spec.Elem, spec.Op
	case core.Broadcast:
		d.Dst = core.Span(0, m)
	default:
		return 0, 0, fmt.Errorf("bench: unknown primitive %v", spec.Prim)
	}
	return comm.AutoResolveOf(d)
}

func newPrimComm(shape []int, n, recvPerPE int, costOnly bool) (*core.Comm, error) {
	mram := 1
	for mram < 4*recvPerPE+64 {
		mram *= 2
	}
	geo, err := geoForPEsFlexible(n, mram)
	if err != nil {
		return nil, err
	}
	return newCommOn(geo, shape, cost.DefaultParams(), costOnly)
}

// execWorkers is the ExecWorkers setting applied to every comm the
// harness builds (0 = the library's GOMAXPROCS default). Set once at
// startup by `pidbench -workers`; experiments that sweep the knob
// themselves (funcspeed) override it per measurement.
var execWorkers int

// SetExecWorkers sets the functional-backend worker-pool size every
// subsequently built comm runs at (0 restores the default).
func SetExecWorkers(n int) { execWorkers = n }

// newCommOn builds a comm for the geometry/shape on the requested
// backend: functional over a real system, or cost-only over a phantom
// (no-MRAM) system. The single construction path for all bench runners.
func newCommOn(geo dram.Geometry, shape []int, params cost.Params, costOnly bool) (*core.Comm, error) {
	var sys *dram.System
	var err error
	backend := core.FunctionalBackend()
	if costOnly {
		sys, err = dram.NewPhantomSystem(geo)
		backend = core.CostBackend()
	} else {
		sys, err = dram.NewSystem(geo)
	}
	if err != nil {
		return nil, err
	}
	hc, err := core.NewHypercube(sys, shape)
	if err != nil {
		return nil, err
	}
	c := core.NewCommWithBackend(hc, params, backend)
	if execWorkers > 0 {
		c.SetExecWorkers(execWorkers)
	}
	return c, nil
}

// geoForPEsFlexible mirrors appcore.GeoForPEs (kept local to avoid an
// import cycle when apps use bench helpers in the future).
func geoForPEsFlexible(n, mram int) (dram.Geometry, error) {
	if n <= 0 || n%8 != 0 {
		return dram.Geometry{}, fmt.Errorf("bench: PE count %d must be a multiple of 8", n)
	}
	g := dram.Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 1, MramPerBank: mram}
	rem := n / 8
	for g.BanksPerChip < 8 && rem%2 == 0 {
		g.BanksPerChip *= 2
		rem /= 2
	}
	for g.RanksPerChannel < 4 && rem%2 == 0 {
		g.RanksPerChannel *= 2
		rem /= 2
	}
	g.Channels = rem
	if g.NumPEs() != n {
		return dram.Geometry{}, fmt.Errorf("bench: cannot realize %d PEs", n)
	}
	return g, nil
}

// fig14 recvPerPE: small 64 KiB, full 1 MiB.
func sizeFor(o Options, small, full int) int {
	if o.Full {
		return full
	}
	return small
}

func init() {
	register("fig14", "Throughput of the eight supported primitives, 2D (32,32), Base vs PID-Comm", func(o Options) error {
		size := sizeFor(o, 64<<10, 1<<20)
		t := newTable("Primitive", "Base GB/s", "PID-Comm GB/s", "Speedup")
		var ratios []float64
		for _, prim := range core.Primitives() {
			spec := PrimSpec{Shape: []int{32, 32}, Dims: "10", RecvPerPE: size, Prim: prim, CostOnly: o.CostOnly, Async: o.Async}
			spec.Level = core.Baseline
			base, _, err := RunPrimitive(spec)
			if err != nil {
				return err
			}
			spec.Level = core.CM
			ours, _, err := RunPrimitive(spec)
			if err != nil {
				return err
			}
			t.add(prim.LongName(), fmt.Sprintf("%.2f", base), fmt.Sprintf("%.2f", ours), fmt.Sprintf("%.2fx", ours/base))
			ratios = append(ratios, ours/base)
		}
		t.add("Geomean", "", "", fmt.Sprintf("%.2fx", geomean(ratios)))
		t.write(o.W)
		return nil
	})

	register("fig16", "Ablation study: Base / +PR / +IM / +CM for AA, RS, AR, AG", func(o Options) error {
		size := sizeFor(o, 64<<10, 1<<20)
		t := newTable("Primitive", "Base", "+PR", "+IM", "+CM", "(GB/s)")
		for _, prim := range []core.Primitive{core.AlltoAll, core.ReduceScatter, core.AllReduce, core.AllGather} {
			row := []string{prim.LongName()}
			for _, lvl := range core.Levels() {
				if !core.TechniqueApplies(prim, lvl) && lvl != core.Baseline {
					if core.EffectiveLevel(prim, lvl) != lvl {
						row = append(row, "-")
						continue
					}
				}
				thr, _, err := RunPrimitive(PrimSpec{Shape: []int{32, 32}, Dims: "10", RecvPerPE: size, Prim: prim, Level: lvl, CostOnly: o.CostOnly, Async: o.Async})
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.2f", thr))
			}
			t.add(row...)
		}
		t.write(o.W)
		return nil
	})

	register("fig17", "Execution-time breakdown of AA, RS, AR, AG: Base vs PID-Comm", func(o Options) error {
		size := sizeFor(o, 64<<10, 8<<20) // paper: 8 MB per PE
		t := newTable("Primitive", "Design", "Total(ms)", "DT", "HostMod", "HostMem", "PEMem", "PEMod", "Other")
		for _, prim := range []core.Primitive{core.AlltoAll, core.ReduceScatter, core.AllReduce, core.AllGather} {
			for _, lvl := range []core.Level{core.Baseline, core.CM} {
				_, bd, err := RunPrimitive(PrimSpec{Shape: []int{32, 32}, Dims: "10", RecvPerPE: size, Prim: prim, Level: lvl, CostOnly: o.CostOnly, Async: o.Async})
				if err != nil {
					return err
				}
				name := "Base"
				if lvl != core.Baseline {
					name = "PID-Comm"
				}
				ms := func(c cost.Category) string { return fmt.Sprintf("%.3f", float64(bd.Get(c))*1e3) }
				t.add(prim.LongName(), name, fmt.Sprintf("%.3f", float64(bd.Total())*1e3),
					ms(cost.DomainTransfer), ms(cost.HostMod), ms(cost.HostMem), ms(cost.PEMem),
					ms(cost.PEMod), ms(cost.Other))
			}
		}
		t.write(o.W)
		return nil
	})

	register("fig18", "Primitive throughput vs data size (1D and 2D)", func(o Options) error {
		sizes := []int{16 << 10, 64 << 10, 256 << 10}
		if o.Full {
			sizes = []int{128 << 10, 512 << 10, 2 << 20, 8 << 20}
		}
		t := newTable("Config", "Primitive", "Size/PE", "Base GB/s", "PID-Comm GB/s")
		for _, cfg := range []struct {
			name  string
			shape []int
			dims  string
		}{
			{"1D", []int{1024}, "1"},
			{"2D", []int{32, 32}, "10"},
		} {
			for _, prim := range []core.Primitive{core.AlltoAll, core.ReduceScatter, core.AllReduce, core.AllGather} {
				for _, size := range sizes {
					base, _, err := RunPrimitive(PrimSpec{Shape: cfg.shape, Dims: cfg.dims, RecvPerPE: size, Prim: prim, Level: core.Baseline, CostOnly: o.CostOnly, Async: o.Async})
					if err != nil {
						return err
					}
					ours, _, err := RunPrimitive(PrimSpec{Shape: cfg.shape, Dims: cfg.dims, RecvPerPE: size, Prim: prim, Level: core.CM, CostOnly: o.CostOnly, Async: o.Async})
					if err != nil {
						return err
					}
					t.add(cfg.name, prim.String(), fmt.Sprintf("%dK", size>>10),
						fmt.Sprintf("%.2f", base), fmt.Sprintf("%.2f", ours))
				}
			}
		}
		t.write(o.W)
		return nil
	})

	register("fig19", "Primitive throughput vs number of PEs (64..1024)", func(o Options) error {
		size := sizeFor(o, 32<<10, 512<<10)
		pes := []int{64, 128, 256, 512, 1024}
		t := newTable("Config", "Primitive", "PEs", "Base GB/s", "PID-Comm GB/s")
		for _, prim := range []core.Primitive{core.AlltoAll, core.ReduceScatter, core.AllReduce, core.AllGather} {
			for _, n := range pes {
				// 1D and square-ish 2D.
				shapes := [][]int{{n}, {32, n / 32}}
				dims := []string{"1", "10"}
				if n < 64 || n/32 < 2 {
					shapes = shapes[:1]
					dims = dims[:1]
				}
				for i, shape := range shapes {
					base, _, err := RunPrimitive(PrimSpec{Shape: shape, Dims: dims[i], RecvPerPE: size, Prim: prim, Level: core.Baseline, CostOnly: o.CostOnly, Async: o.Async})
					if err != nil {
						return err
					}
					ours, _, err := RunPrimitive(PrimSpec{Shape: shape, Dims: dims[i], RecvPerPE: size, Prim: prim, Level: core.CM, CostOnly: o.CostOnly, Async: o.Async})
					if err != nil {
						return err
					}
					name := "1D"
					if i == 1 {
						name = "2D"
					}
					t.add(name, prim.String(), fmt.Sprint(n), fmt.Sprintf("%.2f", base), fmt.Sprintf("%.2f", ours))
				}
			}
		}
		t.write(o.W)
		return nil
	})

	register("fig20", "PID-Comm throughput on 3D hypercube shapes", func(o Options) error {
		size := sizeFor(o, 32<<10, 512<<10)
		shapes := [][]int{{8, 64, 2}, {16, 32, 2}, {32, 16, 2}, {64, 8, 2}, {128, 4, 2},
			{8, 32, 4}, {16, 16, 4}, {32, 8, 4}, {64, 4, 4}, {128, 2, 4}}
		t := newTable("Shape", "AA", "RS", "AR", "AG", "(PID-Comm GB/s, x-axis comm)")
		for _, shape := range shapes {
			row := []string{fmt.Sprintf("%v", shape)}
			for _, prim := range []core.Primitive{core.AlltoAll, core.ReduceScatter, core.AllReduce, core.AllGather} {
				thr, _, err := RunPrimitive(PrimSpec{Shape: shape, Dims: "100", RecvPerPE: size, Prim: prim, Level: core.CM, CostOnly: o.CostOnly, Async: o.Async})
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.2f", thr))
			}
			t.add(row...)
		}
		t.write(o.W)
		return nil
	})

	register("fig23a", "AllReduce on hierarchy-aware topologies: hypercube vs ring vs tree", func(o Options) error {
		size := sizeFor(o, 64<<10, 2<<20)
		commFor := func() (*core.Comm, error) { return newPrimComm([]int{32, 32}, 1024, size, o.CostOnly) }
		t := newTable("Topology", "Throughput GB/s", "Slowdown vs hypercube")
		var hyper float64
		for _, topo := range []core.Topology{core.TopoHypercube, core.TopoRing, core.TopoTree} {
			comm, err := commFor()
			if err != nil {
				return err
			}
			if !o.CostOnly {
				rng := rand.New(rand.NewSource(3))
				buf := make([]byte, size)
				for pe := 0; pe < 1024; pe++ {
					rng.Read(buf)
					comm.SetPEBuffer(pe, 0, buf)
				}
			}
			bd, err := comm.AllReduceTopo(topo, "10", 0, 2*size, size, elem.I32, elem.Sum)
			if err != nil {
				return err
			}
			thr := gbps(int64(size)*1024, float64(bd.Total()))
			if topo == core.TopoHypercube {
				hyper = thr
			}
			t.add(topo.String(), fmt.Sprintf("%.2f", thr), fmt.Sprintf("%.2fx", hyper/thr))
		}
		t.write(o.W)
		return nil
	})
}
