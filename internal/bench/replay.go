package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/elem"
)

// replaySpec is one row of the replay-throughput experiment.
type replaySpec struct {
	prim core.Primitive
	lvl  core.Level
}

// ReplayResult holds one primitive's cold-compile vs cached-replay
// measurement.
type ReplayResult struct {
	Prim         core.Primitive
	ColdPerSec   float64
	CachedPerSec float64
	Speedup      float64
}

// MeasureReplay measures the compiled-plan cache on the cost-only
// backend at the given per-PE payload on the paper's 1024-PE machine:
// cold-compile-each-call (the plan cache cleared before every call, so
// every iteration pays validation, lowering and charge tracing) versus
// cached replay of one CompiledPlan. Returns collectives/sec for both
// modes per primitive.
//
// The cost-only backend is where amortization matters most — it is the
// engine for paper-scale sweeps and serving-style what-if studies — and
// it keeps the measurement data-independent: a cached replay applies the
// precomputed charge trace instead of re-walking the per-PE kernel
// accounting and per-group bus tallies.
func MeasureReplay(recvPerPE, iters int) ([]ReplayResult, error) {
	if iters <= 0 {
		iters = 300
	}
	comm, err := newPrimComm([]int{32, 32}, 1024, recvPerPE, true)
	if err != nil {
		return nil, err
	}
	m := recvPerPE
	specs := []replaySpec{
		{core.AlltoAll, core.CM},
		{core.ReduceScatter, core.IM},
		{core.AllReduce, core.IM},
	}
	var out []ReplayResult
	for _, sp := range specs {
		oneShot := func() error {
			var err error
			switch sp.prim {
			case core.AlltoAll:
				_, err = comm.AlltoAll("10", 0, 2*m, m, sp.lvl)
			case core.ReduceScatter:
				_, err = comm.ReduceScatter("10", 0, 2*m, m, elem.I32, elem.Sum, sp.lvl)
			case core.AllReduce:
				_, err = comm.AllReduce("10", 0, 2*m, m, elem.I32, elem.Sum, sp.lvl)
			}
			return err
		}
		// Cold: compile each call.
		start := time.Now()
		for i := 0; i < iters; i++ {
			comm.ClearPlanCache()
			if err := oneShot(); err != nil {
				return nil, err
			}
		}
		cold := time.Since(start)
		// Cached: one-shot calls replay the cached plan.
		comm.ClearPlanCache()
		if err := oneShot(); err != nil { // warm the cache
			return nil, err
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			if err := oneShot(); err != nil {
				return nil, err
			}
		}
		cached := time.Since(start)
		r := ReplayResult{
			Prim:         sp.prim,
			ColdPerSec:   float64(iters) / cold.Seconds(),
			CachedPerSec: float64(iters) / cached.Seconds(),
		}
		r.Speedup = r.CachedPerSec / r.ColdPerSec
		out = append(out, r)
	}
	return out, nil
}

// RunReplay runs the replay-throughput experiment and writes its table.
func RunReplay(o Options, iters int) error {
	if iters <= 0 {
		iters = 300
	}
	size := sizeFor(o, 64<<10, 1<<20)
	results, err := MeasureReplay(size, iters)
	if err != nil {
		return err
	}
	t := newTable("Primitive", "Cold compile/s", "Cached replay/s", "Replay speedup")
	for _, r := range results {
		t.add(r.Prim.LongName(),
			fmt.Sprintf("%.0f", r.ColdPerSec),
			fmt.Sprintf("%.0f", r.CachedPerSec),
			fmt.Sprintf("%.1fx", r.Speedup))
	}
	t.write(o.W)
	fmt.Fprintf(o.W, "(cost-only backend, 1024 PEs (32x32), %d KiB/PE, %d iterations per mode)\n", size>>10, iters)
	return nil
}

func init() {
	register("replay", "Plan-cache replay throughput: cold compile-each-call vs cached CompiledPlan replay", func(o Options) error {
		return RunReplay(o, 300)
	})
}
