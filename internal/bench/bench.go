package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
)

// Options configures an experiment run.
type Options struct {
	// W receives the experiment's table output.
	W io.Writer
	// Full selects paper-scale payloads; the default small scale keeps
	// the whole suite within laptop memory/minutes (the timing model is
	// linear in payload, so shapes are preserved; see EXPERIMENTS.md).
	Full bool
	// CostOnly runs experiments on the cost-only backend: identical
	// tables (the cost model is shared bit-for-bit with the functional
	// backend) at a fraction of the wall-clock and memory, since no MRAM
	// is allocated and no bytes move. Use for Full-scale sweeps.
	CostOnly bool
	// Async routes every primitive measurement through the asynchronous
	// Submit/Future API instead of the blocking calls: the tables are
	// identical (a lone submitted plan charges exactly what a serial run
	// does), validating the async path across the whole suite. The
	// dedicated "async" experiment measures the overlap itself.
	Async bool
	// Sched selects the submission scheduling policy of the async
	// experiment's scheduled comm (`pidbench -sched`). The zero value is
	// core.SchedWFQ, the machine default. A non-default policy runs the
	// pipeline in stepped mode — the whole backlog is submitted before
	// the drain — so window-scanning policies see every candidate. The
	// reorder experiment ignores this and sweeps all registered policies.
	Sched core.SchedPolicy
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the flag value, e.g. "fig14" or "table1".
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment and writes its table.
	Run func(Options) error
}

var registry []Experiment

func register(id, title string, run func(Options) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments returns all registered experiments in registration order
// (tables first, then figures in paper order).
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// RunAll executes every experiment.
func RunAll(o Options) error {
	for _, e := range Experiments() {
		fmt.Fprintf(o.W, "\n=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(o); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// gbps converts bytes and seconds to GB/s.
func gbps(bytes int64, sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	return float64(bytes) / sec / 1e9
}

// table is a minimal aligned-column text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...interface{}) {
	t.add(fmt.Sprintf(format, args...))
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
