package bench

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register("table1", "Comparison against conventional approaches", func(o Options) error {
		fmt.Fprint(o.W, core.TableI())
		return nil
	})
	register("table2", "Applicability of the proposed techniques", func(o Options) error {
		fmt.Fprint(o.W, core.TableII())
		return nil
	})
	register("table3", "Benchmark applications", func(o Options) error {
		t := newTable("App", "Hyper.Dim", "Primitives", "Datasets", "Environment")
		t.add("DLRM", "3", "Sc Ga Br AA RS", "Criteo-like clicks", "Emb dim = 16, 32")
		t.add("GNN RS&AR", "2", "Sc Ga Br RS AR", "PM-like, RD-like", "Layers = 3")
		t.add("GNN AR&AG", "2", "Sc Ga Br AG AR", "PM-like, RD-like", "Layers = 3")
		t.add("BFS", "1", "Sc Ga Br AR", "LJ-like, LG-like", "OR reduction")
		t.add("CC", "1", "Sc Ga Br AR", "LJ-like, LG-like", "MIN reduction, undirected")
		t.add("MLP", "1", "Sc Ga RS", "dense weights", "Features = 16k/4, 32k/4; Layers = 5")
		t.write(o.W)
		return nil
	})
}
