package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
	"repro/internal/multihost"
)

func init() {
	register("fig23b", "AllReduce and AlltoAll on a multi-host environment (1/2/4 hosts)", func(o Options) error {
		perPE := sizeFor(o, 16<<10, 128<<10) // paper: 2 MB per PE
		t := newTable("Primitive", "Hosts", "Base(ms)", "PID-Comm(ms)", "Net share (ours)")
		for _, aa := range []bool{false, true} {
			name := "AllReduce"
			if aa {
				name = "AlltoAll"
			}
			for _, hosts := range []int{1, 2, 4} {
				var times [2]cost.Breakdown
				for i, lvl := range []core.Level{core.Baseline, core.CM} {
					// 256 PEs per host (one four-rank channel), § IX-A.
					geo := dram.Geometry{Channels: 1, RanksPerChannel: 4, BanksPerChip: 8,
						MramPerBank: mramFor(3 * perPE * max(1, hosts))}
					var cl *multihost.Cluster
					var err error
					if o.CostOnly {
						cl, err = multihost.NewCostOnly(hosts, geo, cost.DefaultParams())
					} else {
						cl, err = multihost.New(hosts, geo, cost.DefaultParams())
					}
					if err != nil {
						return err
					}
					P := cl.PEsPerHost()
					var m int
					if aa {
						m = hosts * P * (perPE / (hosts * P) / 8 * 8)
						if m == 0 {
							m = hosts * P * 8
						}
					} else {
						m = perPE / (8 * P) * (8 * P)
						if m == 0 {
							m = 8 * P
						}
					}
					if !o.CostOnly {
						rng := rand.New(rand.NewSource(5))
						buf := make([]byte, m)
						for h := 0; h < hosts; h++ {
							for p := 0; p < P; p++ {
								rng.Read(buf)
								cl.Host(h).SetPEBuffer(p, 0, buf)
							}
						}
					}
					var bd cost.Breakdown
					if aa {
						bd, err = cl.AlltoAll(0, 2*m, m/(hosts*P), lvl)
					} else {
						bd, err = cl.AllReduce(0, 2*m, m, elem.I32, elem.Sum, lvl)
					}
					if err != nil {
						return err
					}
					times[i] = bd
				}
				netShare := float64(times[1].Get(cost.Network)) / float64(times[1].Total())
				t.add(name, fmt.Sprint(hosts),
					fmt.Sprintf("%.3f", float64(times[0].Total())*1e3),
					fmt.Sprintf("%.3f", float64(times[1].Total())*1e3),
					fmt.Sprintf("%.0f%%", 100*netShare))
			}
		}
		t.write(o.W)
		return nil
	})
}

func mramFor(n int) int {
	p := 1 << 12
	for p < n {
		p *= 2
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
