package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
)

func TestAlgoExperimentRegistered(t *testing.T) {
	e, err := ByID("algo")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(Options{W: &buf}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "makespan objective gains") {
		t.Error("algo experiment produced no objective-gain line")
	}
}

// The pinned cluster crossover: at 64 hosts the tree wire algorithm must
// win the latency-bound small payload and lose the bandwidth-bound large
// one, and the analytic Auto pick must match the measured winner at both
// points.
func TestClusterAlgoCrossoverPinned(t *testing.T) {
	params := cost.DefaultParams()
	for _, c := range []struct {
		name     string
		perPE    int
		treeWins bool
	}{
		{"small", algoClusterSmall, true},
		{"large", algoClusterLarge, false},
	} {
		ring, err := MeasureClusterAllReduceAlgo(clusterPinHosts, c.perPE, params, core.AlgoRing)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := MeasureClusterAllReduceAlgo(clusterPinHosts, c.perPE, params, core.AlgoTree)
		if err != nil {
			t.Fatal(err)
		}
		auto, err := MeasureClusterAllReduceAlgo(clusterPinHosts, c.perPE, params, core.AlgoAuto)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s (%dK/PE): ring %.3fms tree %.3fms auto %.3fms", c.name, c.perPE>>10,
			float64(ring.Total())*1e3, float64(tree.Total())*1e3, float64(auto.Total())*1e3)
		if c.treeWins && tree.Total() >= ring.Total() {
			t.Errorf("%s: tree %v should beat ring %v", c.name, tree.Total(), ring.Total())
		}
		if !c.treeWins && ring.Total() >= tree.Total() {
			t.Errorf("%s: ring %v should beat tree %v", c.name, ring.Total(), tree.Total())
		}
		best := ring.Total()
		if tree.Total() < best {
			best = tree.Total()
		}
		if auto.Total() != best {
			t.Errorf("%s: Auto total %v, want the winner's %v", c.name, auto.Total(), best)
		}
	}
}

// The pinned objective gate: on the AllGather point the two objectives
// must resolve to different candidates, and the makespan pick must win
// the overlapped elapsed measurement outright.
func TestMakespanObjectiveBeatsMeterPinned(t *testing.T) {
	g, err := MeasureAutoObjectiveGain()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("meter pick (%v,%v) %.4fms; makespan pick (%v,%v) %.4fms",
		g.MeterAlgo, g.MeterLevel, float64(g.MeterElapsed)*1e3,
		g.MakespanAlgo, g.MakespanLevel, float64(g.MakespanElapsed)*1e3)
	if g.MeterAlgo == g.MakespanAlgo && g.MeterLevel == g.MakespanLevel {
		t.Fatal("objectives resolved to the same candidate; the pinned point no longer exercises the makespan objective")
	}
	if g.MakespanElapsed >= g.MeterElapsed {
		t.Errorf("makespan pick elapsed %v does not beat meter pick %v", g.MakespanElapsed, g.MeterElapsed)
	}
}

// PrimSpec.Algo must route to the descriptor path for AllReduce and
// Broadcast and be rejected everywhere else.
func TestPrimSpecAlgorithm(t *testing.T) {
	spec := PrimSpec{Shape: []int{8, 8}, Dims: "10", RecvPerPE: 512,
		Prim: core.AllReduce, Level: core.Baseline, CostOnly: true, Algo: core.AlgoRing}
	if _, _, err := RunPrimitive(spec); err != nil {
		t.Fatalf("AllReduce/ring: %v", err)
	}
	spec.Prim = core.Broadcast
	spec.Algo = core.AlgoTree
	if _, _, err := RunPrimitive(spec); err != nil {
		t.Fatalf("Broadcast/tree: %v", err)
	}
	spec.Prim = core.AlltoAll
	spec.Algo = core.AlgoRing
	if _, _, err := RunPrimitive(spec); err == nil {
		t.Error("AlltoAll with an explicit algorithm accepted")
	}
}
