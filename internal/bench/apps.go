package bench

import (
	"fmt"

	"repro/internal/apps/appcore"
	"repro/internal/apps/bfs"
	"repro/internal/apps/cc"
	"repro/internal/apps/dlrm"
	"repro/internal/apps/gnn"
	"repro/internal/apps/mlp"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/elem"
)

// appRun describes one benchmark-application configuration (Table III
// row x dataset) runnable at several PE counts.
type appRun struct {
	// Name is the figure label, e.g. "DLRM-16" or "GNN RS&AR-PM".
	Name string
	// PEs are the PE counts used in the Figure 21 sweep; the last entry
	// is the default configuration used by Figures 4/13/15/22.
	PEs []int
	// Run executes the PIM implementation.
	Run func(pes int, lvl core.Level) (*appcore.Profile, error)
	// CPU returns the CPU-only roofline time.
	CPU func() (cost.Seconds, error)
}

func dlrmShape(pes int) (x, y, z int) {
	switch pes {
	case 64:
		return 2, 2, 16
	case 256:
		return 4, 4, 16
	case 512:
		return 4, 8, 16
	case 1024:
		return 8, 8, 16
	default:
		return 0, 0, 0
	}
}

func dlrmCfg(embDim, pes int) dlrm.Config {
	x, y, z := dlrmShape(pes)
	return dlrm.Config{Tables: 16, RowsPerTable: 4096, EmbDim: embDim,
		Batch: 2048, X: x, Y: y, Z: z, TopOut: 64, TopLayers: 3, Batches: 8, Seed: 1}
}

func gnnGrid(pes int) (r, c int) {
	switch pes {
	case 64:
		return 8, 8
	case 256:
		return 16, 16
	case 1024:
		return 32, 32
	default:
		return 0, 0
	}
}

func gnnCfg(name string, pes int, et elem.Type) gnn.Config {
	r, c := gnnGrid(pes)
	return gnn.Config{InputName: name, Rows: r, Cols: c, Layers: 3, Elem: et, Seed: 1}
}

// appRuns returns the Table III application matrix. MLP feature sizes are
// the paper's 16k/32k scaled by 4x (EXPERIMENTS.md records the mapping).
func appRuns() []appRun {
	var runs []appRun
	for _, d := range []int{16, 32} {
		d := d
		runs = append(runs, appRun{
			Name: fmt.Sprintf("DLRM-%d", d),
			PEs:  []int{256, 512, 1024},
			Run: func(pes int, lvl core.Level) (*appcore.Profile, error) {
				_, prof, err := dlrm.RunPIM(dlrmCfg(d, pes), lvl)
				return prof, err
			},
			CPU: func() (cost.Seconds, error) {
				_, t, err := dlrm.RunCPU(dlrmCfg(d, 256))
				return t, err
			},
		})
	}
	for _, spec := range []struct {
		variant gnn.Variant
		input   string
	}{{gnn.RSAR, "PM"}, {gnn.RSAR, "RD"}, {gnn.ARAG, "PM"}, {gnn.ARAG, "RD"}} {
		spec := spec
		runs = append(runs, appRun{
			Name: fmt.Sprintf("GNN %v-%s", spec.variant, spec.input),
			PEs:  []int{64, 256, 1024},
			Run: func(pes int, lvl core.Level) (*appcore.Profile, error) {
				_, prof, err := gnn.RunPIM(gnnCfg(spec.input, pes, elem.I32), spec.variant, lvl)
				return prof, err
			},
			CPU: func() (cost.Seconds, error) {
				_, t, err := gnn.RunCPU(gnnCfg(spec.input, 256, elem.I32), spec.variant)
				return t, err
			},
		})
	}
	for _, g := range []string{"LJ", "LG"} {
		g := g
		runs = append(runs, appRun{
			Name: "BFS-" + g,
			PEs:  []int{64, 128, 256, 512, 1024},
			Run: func(pes int, lvl core.Level) (*appcore.Profile, error) {
				_, prof, err := bfs.RunPIM(bfs.Config{GraphName: g, PEs: pes}, lvl)
				return prof, err
			},
			CPU: func() (cost.Seconds, error) {
				_, t, err := bfs.RunCPU(bfs.Config{GraphName: g, PEs: 64})
				return t, err
			},
		})
		runs = append(runs, appRun{
			Name: "CC-" + g,
			PEs:  []int{32, 64, 128, 256, 512, 1024},
			Run: func(pes int, lvl core.Level) (*appcore.Profile, error) {
				_, prof, err := cc.RunPIM(cc.Config{GraphName: g, PEs: pes}, lvl)
				return prof, err
			},
			CPU: func() (cost.Seconds, error) {
				_, t, err := cc.RunCPU(cc.Config{GraphName: g, PEs: 64})
				return t, err
			},
		})
	}
	for _, f := range []int{4096, 8192} { // 16k and 32k scaled by 4x
		f := f
		mcfg := func(pes int) mlp.Config {
			return mlp.Config{Features: f, Layers: 5, PEs: pes, Batches: 16, Seed: 1}
		}
		runs = append(runs, appRun{
			Name: fmt.Sprintf("MLP-%dk/4", f*4/1024),
			PEs:  []int{64, 128, 256, 512, 1024},
			Run: func(pes int, lvl core.Level) (*appcore.Profile, error) {
				_, prof, err := mlp.RunPIM(mcfg(pes), lvl)
				return prof, err
			},
			CPU: func() (cost.Seconds, error) {
				_, t, err := mlp.RunCPU(mcfg(64))
				return t, err
			},
		})
	}
	return runs
}

func defaultPEs(r appRun) int { return r.PEs[len(r.PEs)-1] }

// fig13Subset is the representative set used for the heavier app figures
// at default scale (one dataset per app); Full adds the second datasets.
func fig13Subset(o Options) []appRun {
	runs := appRuns()
	if o.Full {
		return runs
	}
	keep := map[string]bool{"DLRM-16": true, "GNN RS&AR-PM": true, "GNN AR&AG-PM": true,
		"BFS-LG": true, "CC-LG": true, "MLP-16k/4": true}
	var out []appRun
	for _, r := range runs {
		if keep[r.Name] {
			out = append(out, r)
		}
	}
	return out
}

func init() {
	register("fig4", "Execution-time breakdown of applications with conventional communication", func(o Options) error {
		t := newTable("App", "Total(ms)", "Comm%", "DT%", "Mod%", "PEMem%", "HostMem%", "Other%")
		for _, r := range fig13Subset(o) {
			prof, err := r.Run(defaultPEs(r), core.Baseline)
			if err != nil {
				return err
			}
			bd := prof.CommBreakdown
			commT := float64(prof.CommTotal())
			pct := func(c cost.Category) string {
				if commT == 0 {
					return "0"
				}
				return fmt.Sprintf("%.0f", 100*float64(bd.Get(c))/commT)
			}
			t.add(r.Name,
				fmt.Sprintf("%.2f", float64(prof.Total())*1e3),
				fmt.Sprintf("%.0f", 100*commT/float64(prof.Total())),
				pct(cost.DomainTransfer), pct(cost.HostMod), pct(cost.PEMem), pct(cost.HostMem),
				pct(cost.Other))
		}
		t.write(o.W)
		return nil
	})

	register("fig13", "Per-application execution-time breakdown, Base vs PID-Comm", func(o Options) error {
		t := newTable("App", "Design", "Total(ms)", "Kernel", "Sc", "Ga", "Re", "Br", "AA", "RS", "AG", "AR")
		for _, r := range fig13Subset(o) {
			for _, lvl := range []core.Level{core.Baseline, core.CM} {
				prof, err := r.Run(defaultPEs(r), lvl)
				if err != nil {
					return err
				}
				name := "Base"
				if lvl != core.Baseline {
					name = "Ours"
				}
				ms := func(p core.Primitive) string {
					return fmt.Sprintf("%.2f", float64(prof.ByPrimitive[p])*1e3)
				}
				t.add(r.Name, name, fmt.Sprintf("%.2f", float64(prof.Total())*1e3),
					fmt.Sprintf("%.2f", float64(prof.KernelTime)*1e3),
					ms(core.Scatter), ms(core.Gather), ms(core.Reduce), ms(core.Broadcast),
					ms(core.AlltoAll), ms(core.ReduceScatter), ms(core.AllGather), ms(core.AllReduce))
			}
		}
		t.write(o.W)
		return nil
	})

	register("fig15", "Speedup of benchmark applications over the conventional baseline", func(o Options) error {
		t := newTable("App", "Base(ms)", "PID-Comm(ms)", "Speedup")
		var ratios []float64
		for _, r := range fig13Subset(o) {
			base, err := r.Run(defaultPEs(r), core.Baseline)
			if err != nil {
				return err
			}
			ours, err := r.Run(defaultPEs(r), core.CM)
			if err != nil {
				return err
			}
			sp := float64(base.Total()) / float64(ours.Total())
			ratios = append(ratios, sp)
			t.add(r.Name, fmt.Sprintf("%.2f", float64(base.Total())*1e3),
				fmt.Sprintf("%.2f", float64(ours.Total())*1e3), fmt.Sprintf("%.2fx", sp))
		}
		t.add("Geomean", "", "", fmt.Sprintf("%.2fx", geomean(ratios)))
		t.write(o.W)
		return nil
	})

	register("fig21", "Speedup over CPU-only system with varying number of PEs", func(o Options) error {
		t := newTable("App", "PEs", "CPU(ms)", "PIM-Base", "PID-Comm")
		var baseR, oursR []float64
		for _, r := range fig13Subset(o) {
			cpuT, err := r.CPU()
			if err != nil {
				return err
			}
			for _, pes := range r.PEs {
				base, err := r.Run(pes, core.Baseline)
				if err != nil {
					return err
				}
				ours, err := r.Run(pes, core.CM)
				if err != nil {
					return err
				}
				sb := float64(cpuT) / float64(base.Total())
				so := float64(cpuT) / float64(ours.Total())
				t.add(r.Name, fmt.Sprint(pes), fmt.Sprintf("%.2f", float64(cpuT)*1e3),
					fmt.Sprintf("%.2fx", sb), fmt.Sprintf("%.2fx", so))
				baseR = append(baseR, sb)
				oursR = append(oursR, so)
			}
		}
		t.add("Geomean", "", "", fmt.Sprintf("%.2fx", geomean(baseR)), fmt.Sprintf("%.2fx", geomean(oursR)))
		t.write(o.W)
		return nil
	})

	register("fig22", "Word-width sensitivity of GNN (INT8/INT16/INT32)", func(o Options) error {
		t := newTable("Variant", "Width", "Base(ms)", "Ours(ms)", "Speedup", "Ours-DT(ms)")
		inputs := []string{"PM"}
		if o.Full {
			inputs = []string{"PM", "RD"}
		}
		for _, input := range inputs {
			for _, variant := range []gnn.Variant{gnn.RSAR, gnn.ARAG} {
				for _, et := range []elem.Type{elem.I8, elem.I16, elem.I32} {
					cfg := gnnCfg(input, 256, et)
					_, base, err := gnn.RunPIM(cfg, variant, core.Baseline)
					if err != nil {
						return err
					}
					_, ours, err := gnn.RunPIM(cfg, variant, core.CM)
					if err != nil {
						return err
					}
					t.add(fmt.Sprintf("GNN %v-%s", variant, input), et.String(),
						fmt.Sprintf("%.2f", float64(base.Total())*1e3),
						fmt.Sprintf("%.2f", float64(ours.Total())*1e3),
						fmt.Sprintf("%.2fx", float64(base.Total())/float64(ours.Total())),
						fmt.Sprintf("%.3f", float64(ours.CommBreakdown.Get(cost.DomainTransfer))*1e3))
				}
			}
		}
		t.write(o.W)
		return nil
	})
}
