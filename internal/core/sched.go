package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cost"
)

// This file is the scheduler seam of the submission queue: a process-wide
// registry maps SchedPolicy values to Scheduler implementations, exactly
// as the algorithm registry (algorithm.go) maps Algorithm values to
// schedule-IR producers. pickLocked (async.go) is the single funnel: it
// enumerates the hazard-free candidates near every bucket's head, hands
// them to the active policy's Pick, and performs the shared bookkeeping
// (queue removal, weighted-fair virtual-time advance). A policy therefore
// only decides *who runs next among independent plans* — hazard ordering,
// fairness accounting and byte-level results are funnel invariants no
// policy can break.
//
// Four policies are built in: FIFO (global submission order), WFQ
// (weighted fair across buckets, the default), EDF (earliest deadline
// among windowed candidates) and Lookahead (makespan-aware list
// scheduling: dry-place each candidate's charge trace on a projection
// timeline and serve the one minimizing the projected makespan, under a
// WFQ virtual-time starvation bound).

// DefaultLookahead is the default candidate window: how deep into each
// bucket the window-scanning policies (EDF, Lookahead) consider plans.
// Deep scanning is pointless — a plan can only jump ahead of queue-mates
// it does not conflict with, and consecutive plans of one tenant usually
// reuse the same arena regions — so a small window keeps the pick
// O(buckets x window) under deep backlogs. Configurable per Comm with
// SetLookahead.
const DefaultLookahead = 32

// Candidate is one hazard-free queued plan offered to a Scheduler's Pick:
// no earlier-submitted plan still queued anywhere conflicts with it, so
// serving it next cannot reorder a data dependence.
type Candidate struct {
	// F is the queued future.
	F *Future
	// Head reports whether the plan sits at its bucket's head (bucket
	// order is FIFO; a non-head candidate jumps queue-mates it does not
	// conflict with).
	Head bool
	// VTime and Weight are the owning bucket's weighted-fair virtual
	// time and service weight at pick time.
	VTime  float64
	Weight float64

	q   *subQueue // owning bucket, for the funnel's removal bookkeeping
	idx int       // position within q.q
}

// Scheduler picks the next plan to serve among independent candidates.
// Implementations are registered with RegisterScheduler and instantiated
// per Comm (a Scheduler may keep state across picks — the lookahead
// policy keeps a projection timeline). Calls are serialized under the
// Comm's submission lock; implementations need no locking of their own.
type Scheduler interface {
	// Name is the parseable policy name as printed by SchedPolicy.String.
	Name() string
	// Window bounds how deep into each bucket the funnel enumerates
	// candidates, given the Comm's configured lookahead (Comm.Lookahead).
	// Head-only policies return 1.
	Window(lookahead int) int
	// Pick returns the index into cands of the plan to serve next.
	// cands is never empty, is ordered by bucket then queue position,
	// and contains only hazard-free plans. Pick must not retain cands —
	// the backing array is reused across picks.
	Pick(cands []Candidate) int
}

// SchedSpec registers one submission scheduling policy.
type SchedSpec struct {
	// Policy is the enum value the policy resolves from.
	Policy SchedPolicy
	// Name is the parseable policy name ("wfq", "edf", ...).
	Name string
	// Desc is a one-line description for registry tables (pidinfo -sched).
	Desc string
	// New creates a fresh instance; called lazily per Comm on first pick
	// under the policy (and again after a policy switch).
	New func() Scheduler
}

// The process-wide scheduling-policy registry. The built-ins register in
// an init function below; external packages may add policies the same
// way the algorithm registry accepts lowerings.
var (
	schedMu    sync.RWMutex
	schedReg   = map[SchedPolicy]SchedSpec{}
	schedNames = map[string]SchedPolicy{}
)

// RegisterScheduler adds a scheduling policy to the registry. It panics
// on an invalid spec or a duplicate value or name — registration is an
// init-time programming act, not a runtime input.
func RegisterScheduler(sp SchedSpec) {
	if sp.New == nil {
		panic("core: RegisterScheduler with nil New")
	}
	if sp.Name == "" {
		panic("core: RegisterScheduler with empty Name")
	}
	schedMu.Lock()
	defer schedMu.Unlock()
	if _, dup := schedReg[sp.Policy]; dup {
		panic(fmt.Sprintf("core: duplicate scheduling policy %d", int(sp.Policy)))
	}
	if _, dup := schedNames[sp.Name]; dup {
		panic(fmt.Sprintf("core: duplicate scheduling policy name %q", sp.Name))
	}
	schedReg[sp.Policy] = sp
	schedNames[sp.Name] = sp.Policy
}

// SchedPolicies returns the registered policy values in ascending value
// order (deterministic regardless of registration order).
func SchedPolicies() []SchedPolicy {
	schedMu.RLock()
	defer schedMu.RUnlock()
	out := make([]SchedPolicy, 0, len(schedReg))
	for p := range schedReg {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SchedSpecs returns the registered policy specs in ascending value
// order — the registry table pidinfo -sched prints.
func SchedSpecs() []SchedSpec {
	schedMu.RLock()
	defer schedMu.RUnlock()
	out := make([]SchedSpec, 0, len(schedReg))
	for _, sp := range schedReg {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Policy < out[j].Policy })
	return out
}

// ParseSchedPolicy parses a scheduling policy name as printed by
// SchedPolicy.String ("wfq", "edf", "fifo", "lookahead", plus any
// externally registered names).
func ParseSchedPolicy(s string) (SchedPolicy, error) {
	schedMu.RLock()
	p, ok := schedNames[s]
	schedMu.RUnlock()
	if !ok {
		names := make([]string, 0, len(schedReg))
		for _, sp := range SchedSpecs() {
			names = append(names, sp.Name)
		}
		return 0, fmt.Errorf("core: unknown scheduling policy %q (want one of %v)", s, names)
	}
	return p, nil
}

// String names the policy for tables and diagnostics, consulting the
// registry so externally registered policies print their own names.
func (p SchedPolicy) String() string {
	schedMu.RLock()
	sp, ok := schedReg[p]
	schedMu.RUnlock()
	if ok {
		return sp.Name
	}
	return fmt.Sprintf("SchedPolicy(%d)", int(p))
}

// schedSpecOf looks up a registered policy.
func schedSpecOf(p SchedPolicy) (SchedSpec, bool) {
	schedMu.RLock()
	defer schedMu.RUnlock()
	sp, ok := schedReg[p]
	return sp, ok
}

func init() {
	RegisterScheduler(SchedSpec{
		Policy: SchedWFQ, Name: "wfq",
		Desc: "weighted fair across buckets (smallest virtual time; default)",
		New:  func() Scheduler { return wfqSched{} },
	})
	RegisterScheduler(SchedSpec{
		Policy: SchedEDF, Name: "edf",
		Desc: "earliest deadline first among windowed hazard-free candidates",
		New:  func() Scheduler { return edfSched{} },
	})
	RegisterScheduler(SchedSpec{
		Policy: SchedFIFO, Name: "fifo",
		Desc: "global submission order (the pre-tenancy queue)",
		New:  func() Scheduler { return fifoSched{} },
	})
	RegisterScheduler(SchedSpec{
		Policy: SchedLookahead, Name: "lookahead",
		Desc: "makespan-aware reordering by dry-placed projection (WFQ-bounded)",
		New:  func() Scheduler { return &lookaheadSched{} },
	})
}

// fifoSched serves the globally oldest queued plan: plain submission
// order across all buckets, the pre-tenancy behavior. Head-only — a
// FIFO pick never jumps a queue-mate.
type fifoSched struct{}

func (fifoSched) Name() string   { return "fifo" }
func (fifoSched) Window(int) int { return 1 }
func (fifoSched) Pick(cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].F.seq < cands[best].F.seq {
			best = i
		}
	}
	return best
}

// wfqSched is start-time weighted fair queuing: serve the backlogged
// bucket with the smallest virtual time. Head-only (FIFO within a
// bucket); the strict < with candidates in bucket order breaks ties
// toward the earliest-created bucket, so a fresh Comm degenerates to
// plain FIFO.
type wfqSched struct{}

func (wfqSched) Name() string   { return "wfq" }
func (wfqSched) Window(int) int { return 1 }
func (wfqSched) Pick(cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].VTime < cands[best].VTime {
			best = i
		}
	}
	return best
}

// edfSched is earliest-deadline-first over the full candidate window:
// among every bucket's hazard-free candidates, serve the earliest
// deadline (a deadline beats none; ties fall back to submission order —
// see edfLess). Bucket virtual times still advance in the funnel, so a
// later switch back to SchedWFQ resumes fair.
type edfSched struct{}

func (edfSched) Name() string     { return "edf" }
func (edfSched) Window(k int) int { return k }
func (edfSched) Pick(cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if edfLess(cands[i].F, cands[best].F) {
			best = i
		}
	}
	return best
}

// lookaheadSlack bounds starvation under the lookahead policy, in units
// of the largest candidate's weighted share: a candidate whose bucket
// virtual time has fallen more than lookaheadSlack shares behind the
// least-served candidate bucket excludes all fresher buckets from the
// pick, so a bucket the makespan greedy never favors is still served
// within a bounded number of picks (see TestLookaheadStarvationBound).
const lookaheadSlack = 8

// lookaheadCheckpoint bounds the projection timeline: every this many
// bookings the projection's pruning floor advances to its makespan,
// dropping interval history the first-fit search would otherwise scan
// forever. Projection placements after a checkpoint no longer backfill
// gaps before it — acceptable for a scoring heuristic.
const lookaheadCheckpoint = 128

// lookaheadSched is the makespan-aware list scheduler. It keeps a
// private projection cost.Timeline of the plans it has served so far
// and, at each pick, scores every eligible candidate by dry-placing its
// cached charge trace first — followed by all other candidates — on a
// clone of the projection; the candidate minimizing the projected
// makespan wins (ties fall to edfLess, so deadlines still order equal-
// makespan picks — the EDF x lookahead composition internal/serve runs).
// Scoring is joint, not greedy-single: placing the remaining candidates
// too is what makes the scheduler prefer the plan whose lanes the others
// hide under, rather than simply the cheapest plan.
//
// The projection deliberately approximates the Comm's real timeline (it
// starts plans at their arrival time, not at the hazard frontier): it
// exists to *rank* candidate orders, and drift affects all candidates of
// a pick equally. Results stay bit-identical to serial execution because
// the funnel only ever offers hazard-free candidates.
type lookaheadSched struct {
	proj   cost.Timeline
	booked int
	elig   []int // scratch: indices of starvation-eligible candidates
}

func (s *lookaheadSched) Name() string     { return "lookahead" }
func (s *lookaheadSched) Window(k int) int { return k }

func (s *lookaheadSched) Pick(cands []Candidate) int {
	best := 0
	if len(cands) > 1 {
		best = s.pickBest(cands)
	}
	s.book(cands[best].F)
	return best
}

func (s *lookaheadSched) pickBest(cands []Candidate) int {
	// Starvation bound: restrict the pick to candidates whose bucket
	// virtual time is within lookaheadSlack weighted shares of the
	// least-served candidate bucket. The filter is never empty — the
	// vmin candidate always passes it.
	vmin := math.Inf(1)
	maxShare := 0.0
	for _, cd := range cands {
		if cd.VTime < vmin {
			vmin = cd.VTime
		}
		if sh := float64(cd.F.cp.tr.total.Total()) / cd.Weight; sh > maxShare {
			maxShare = sh
		}
	}
	s.elig = s.elig[:0]
	for i, cd := range cands {
		if cd.VTime <= vmin+lookaheadSlack*maxShare {
			s.elig = append(s.elig, i)
		}
	}
	best := -1
	var bestFinish cost.Seconds
	for _, i := range s.elig {
		fin := s.score(cands, i)
		if best < 0 || fin < bestFinish ||
			(fin == bestFinish && edfLess(cands[i].F, cands[best].F)) {
			best, bestFinish = i, fin
		}
	}
	return best
}

// score dry-places candidate i first, then every other candidate in
// offer order, on a clone of the projection and returns the resulting
// makespan. The hypothetical order is hazard-valid: candidates are
// pairwise independent (each conflicts with no earlier queued plan, and
// they are all queued).
func (s *lookaheadSched) score(cands []Candidate, i int) cost.Seconds {
	tl := s.proj.Clone()
	tl.Place(cands[i].F.notBefore, cands[i].F.cp.tr.segs)
	for j, cd := range cands {
		if j != i {
			tl.Place(cd.F.notBefore, cd.F.cp.tr.segs)
		}
	}
	return tl.Elapsed()
}

// book commits the served plan to the projection.
func (s *lookaheadSched) book(f *Future) {
	s.proj.Place(f.notBefore, f.cp.tr.segs)
	if s.booked++; s.booked%lookaheadCheckpoint == 0 {
		s.proj.SetFloor(s.proj.Elapsed())
	}
}
