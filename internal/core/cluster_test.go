package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// geoHost is one cluster host's PIM subsystem: 16 PEs, small MRAM.
var geoHost = dram.Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 14}

// flatGeo is a single-host geometry with the same per-PE MRAM but H
// hosts' worth of PEs, for differential runs against a flat communicator.
func flatGeo(hosts int) dram.Geometry {
	return dram.Geometry{Channels: hosts, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 14}
}

// testCluster builds a cluster of identical hosts over the given shape.
func testCluster(t *testing.T, hosts int, geo dram.Geometry, shape []int, costOnly bool) *Cluster {
	t.Helper()
	comms := make([]*Comm, hosts)
	for h := range comms {
		var sys *dram.System
		var err error
		if costOnly {
			sys, err = dram.NewPhantomSystem(geo)
		} else {
			sys, err = dram.NewSystem(geo)
		}
		if err != nil {
			t.Fatal(err)
		}
		hc, err := NewHypercube(sys, shape)
		if err != nil {
			t.Fatal(err)
		}
		if costOnly {
			comms[h] = NewCostComm(hc, cost.DefaultParams())
		} else {
			comms[h] = NewComm(hc, cost.DefaultParams())
		}
	}
	cl, err := NewCluster(comms)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// clusterRanks returns, per host, the host's PEs in rank order for the
// whole-host communicator, so global rank g = h*P + j maps to PE
// ranks[h][j].
func clusterRanks(t *testing.T, cl *Cluster, dims string) [][]int {
	t.Helper()
	ranks := make([][]int, cl.NumHosts())
	for h := range ranks {
		p, err := cl.Host(h).plan(dims)
		if err != nil {
			t.Fatal(err)
		}
		ranks[h] = p.groups[0]
	}
	return ranks
}

// seedGlobal writes in[g] to global rank g's src region on the cluster
// and on the equivalent flat communicator.
func seedGlobal(cl *Cluster, ranks [][]int, flat *Comm, flatRank []int, off int, in [][]byte) {
	P := cl.PEsPerHost()
	for g, data := range in {
		cl.Host(g/P).SetPEBuffer(ranks[g/P][g%P], off, data)
		flat.SetPEBuffer(flatRank[g], off, data)
	}
}

// randGlobal builds deterministic per-global-rank input buffers.
func randGlobal(n, bytesPerPE int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]byte, n)
	for g := range in {
		in[g] = make([]byte, bytesPerPE)
		rng.Read(in[g])
	}
	return in
}

// TestClusterMatchesFlatComm is the differential acceptance test: a
// hierarchical cluster of H hosts × P PEs must produce byte-identical
// MRAM contents and rooted results to ONE flat communicator of H*P PEs
// running the same global collective, for every primitive, including a
// non-power-of-two host count.
func TestClusterMatchesFlatComm(t *testing.T) {
	const P = 16
	const s = 8 // block bytes
	for _, H := range []int{1, 2, 3, 4} {
		newPair := func(t *testing.T) (*Cluster, [][]int, *Comm, []int) {
			cl := testCluster(t, H, geoHost, []int{P}, false)
			flat := testSystem(t, flatGeo(H), []int{H * P})
			fp, err := flat.plan("1")
			if err != nil {
				t.Fatal(err)
			}
			return cl, clusterRanks(t, cl, "1"), flat, fp.groups[0]
		}
		// comparePEs checks n bytes at off on every global rank.
		comparePEs := func(t *testing.T, cl *Cluster, ranks [][]int, flat *Comm, flatRank []int, off, n int) {
			t.Helper()
			for g := 0; g < H*P; g++ {
				got := cl.Host(g/P).GetPEBuffer(ranks[g/P][g%P], off, n)
				want := flat.GetPEBuffer(flatRank[g], off, n)
				if !bytes.Equal(got, want) {
					t.Fatalf("global rank %d: cluster MRAM differs from flat communicator", g)
				}
			}
		}

		t.Run(fmt.Sprintf("H=%d/AllReduce", H), func(t *testing.T) {
			cl, ranks, flat, flatRank := newPair(t)
			m := 8 * H * P // both communicators block by rank: 8-byte-aligned blocks
			in := randGlobal(H*P, m, 101)
			seedGlobal(cl, ranks, flat, flatRank, 0, in)
			if _, err := cl.Run(ClusterCollective{Collective: Collective{
				Prim: AllReduce, Dims: "1", Src: Span(0, m), Dst: At(2 * m),
				Elem: elem.I32, Op: elem.Sum, Level: IM,
			}}); err != nil {
				t.Fatal(err)
			}
			if _, err := flat.AllReduce("1", 0, 2*m, m, elem.I32, elem.Sum, IM); err != nil {
				t.Fatal(err)
			}
			comparePEs(t, cl, ranks, flat, flatRank, 2*m, m)
		})

		t.Run(fmt.Sprintf("H=%d/ReduceScatter", H), func(t *testing.T) {
			cl, ranks, flat, flatRank := newPair(t)
			m := H * P * s
			in := randGlobal(H*P, m, 102)
			seedGlobal(cl, ranks, flat, flatRank, 0, in)
			if _, err := cl.Run(ClusterCollective{Collective: Collective{
				Prim: ReduceScatter, Dims: "1", Src: Span(0, m), Dst: At(2 * m),
				Elem: elem.I32, Op: elem.Sum, Level: IM,
			}}); err != nil {
				t.Fatal(err)
			}
			if _, err := flat.ReduceScatter("1", 0, 2*m, m, elem.I32, elem.Sum, IM); err != nil {
				t.Fatal(err)
			}
			comparePEs(t, cl, ranks, flat, flatRank, 2*m, s)
		})

		t.Run(fmt.Sprintf("H=%d/AllGather", H), func(t *testing.T) {
			cl, ranks, flat, flatRank := newPair(t)
			in := randGlobal(H*P, s, 103)
			seedGlobal(cl, ranks, flat, flatRank, 0, in)
			if _, err := cl.Run(ClusterCollective{Collective: Collective{
				Prim: AllGather, Dims: "1", Src: Span(0, s), Dst: At(1024), Level: IM,
			}}); err != nil {
				t.Fatal(err)
			}
			if _, err := flat.AllGather("1", 0, 1024, s, IM); err != nil {
				t.Fatal(err)
			}
			comparePEs(t, cl, ranks, flat, flatRank, 1024, H*P*s)
		})

		t.Run(fmt.Sprintf("H=%d/AlltoAll", H), func(t *testing.T) {
			cl, ranks, flat, flatRank := newPair(t)
			m := H * P * s
			in := randGlobal(H*P, m, 104)
			seedGlobal(cl, ranks, flat, flatRank, 0, in)
			if _, err := cl.Run(ClusterCollective{Collective: Collective{
				Prim: AlltoAll, Dims: "1", Src: Span(0, m), Dst: At(2 * m), Level: IM,
			}}); err != nil {
				t.Fatal(err)
			}
			if _, err := flat.AlltoAll("1", 0, 2*m, m, IM); err != nil {
				t.Fatal(err)
			}
			comparePEs(t, cl, ranks, flat, flatRank, 2*m, m)
		})

		t.Run(fmt.Sprintf("H=%d/Broadcast", H), func(t *testing.T) {
			cl, ranks, flat, flatRank := newPair(t)
			payload := randGlobal(1, 48, 105)[0]
			if _, err := cl.Run(ClusterCollective{Collective: Collective{
				Prim: Broadcast, Dims: "1", Dst: Span(64, len(payload)), Level: IM,
				Hosts: [][]byte{payload},
			}, Root: H - 1}); err != nil {
				t.Fatal(err)
			}
			if _, err := flat.Broadcast("1", [][]byte{payload}, 64, IM); err != nil {
				t.Fatal(err)
			}
			comparePEs(t, cl, ranks, flat, flatRank, 64, len(payload))
		})

		t.Run(fmt.Sprintf("H=%d/Scatter", H), func(t *testing.T) {
			cl, ranks, flat, flatRank := newPair(t)
			buf := randGlobal(1, H*P*s, 106)[0]
			if _, err := cl.Run(ClusterCollective{Collective: Collective{
				Prim: Scatter, Dims: "1", Dst: Span(256, s), Level: IM,
				Hosts: [][]byte{buf},
			}}); err != nil {
				t.Fatal(err)
			}
			if _, err := flat.Scatter("1", [][]byte{buf}, 256, s, IM); err != nil {
				t.Fatal(err)
			}
			comparePEs(t, cl, ranks, flat, flatRank, 256, s)
		})

		t.Run(fmt.Sprintf("H=%d/Gather", H), func(t *testing.T) {
			cl, ranks, flat, flatRank := newPair(t)
			in := randGlobal(H*P, s, 107)
			seedGlobal(cl, ranks, flat, flatRank, 0, in)
			cp, err := cl.Compile(ClusterCollective{Collective: Collective{
				Prim: Gather, Dims: "1", Src: Span(0, s), Level: IM,
			}, Root: H / 2})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cp.Run(); err != nil {
				t.Fatal(err)
			}
			want, _, err := flat.Gather("1", 0, s, IM)
			if err != nil {
				t.Fatal(err)
			}
			if got := cp.Results(); !bytes.Equal(got, want[0]) {
				t.Fatal("cluster Gather result differs from flat communicator")
			}
		})

		t.Run(fmt.Sprintf("H=%d/Reduce", H), func(t *testing.T) {
			cl, ranks, flat, flatRank := newPair(t)
			m := 8 * H * P
			in := randGlobal(H*P, m, 108)
			seedGlobal(cl, ranks, flat, flatRank, 0, in)
			cp, err := cl.Compile(ClusterCollective{Collective: Collective{
				Prim: Reduce, Dims: "1", Src: Span(0, m),
				Elem: elem.I16, Op: elem.Sum, Level: IM,
			}})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cp.Run(); err != nil {
				t.Fatal(err)
			}
			want, _, err := flat.Reduce("1", 0, m, elem.I16, elem.Sum, IM)
			if err != nil {
				t.Fatal(err)
			}
			if got := cp.Results(); !bytes.Equal(got, want[0]) {
				t.Fatal("cluster Reduce result differs from flat communicator")
			}
		})
	}
}

// A multi-dimensional per-host hypercube works as long as Dims selects
// the whole host.
func TestCluster2DHosts(t *testing.T) {
	const H, P = 3, 16
	cl := testCluster(t, H, geoHost, []int{4, 4}, false)
	ranks := clusterRanks(t, cl, "11")
	m := 8 * P
	in := randGlobal(H*P, m, 9)
	for g, data := range in {
		cl.Host(g/P).SetPEBuffer(ranks[g/P][g%P], 0, data)
	}
	if _, err := cl.Run(ClusterCollective{Collective: Collective{
		Prim: AllReduce, Dims: "11", Src: Span(0, m), Dst: At(2 * m),
		Elem: elem.I32, Op: elem.Sum, Level: IM,
	}}); err != nil {
		t.Fatal(err)
	}
	want := RefAllReduce(elem.I32, elem.Sum, in)
	for g := 0; g < H*P; g++ {
		if !bytes.Equal(cl.Host(g/P).GetPEBuffer(ranks[g/P][g%P], 2*m, m), want[g]) {
			t.Fatalf("global rank %d mismatch", g)
		}
	}
}

// The Flat baseline must still be correct — it exists so benchmarks can
// price the naive lowering — while paying strictly more network time
// than the hierarchical schedule.
func TestClusterFlatBaselineAllReduce(t *testing.T) {
	const H, P = 4, 16
	// Large enough that wire bytes, not per-round latency, dominate: the
	// flat baseline ships P*m per non-root host where the ring ships
	// 2(H-1)/H * m.
	m := 4096
	run := func(flat bool) (cost.Breakdown, []byte) {
		cl := testCluster(t, H, geoHost, []int{P}, false)
		ranks := clusterRanks(t, cl, "1")
		in := randGlobal(H*P, m, 17)
		for g, data := range in {
			cl.Host(g/P).SetPEBuffer(ranks[g/P][g%P], 0, data)
		}
		bd, err := cl.Run(ClusterCollective{Collective: Collective{
			Prim: AllReduce, Dims: "1", Src: Span(0, m), Dst: At(2 * m),
			Elem: elem.I32, Op: elem.Sum, Level: IM,
		}, Flat: flat})
		if err != nil {
			t.Fatal(err)
		}
		var all []byte
		for g := 0; g < H*P; g++ {
			all = append(all, cl.Host(g/P).GetPEBuffer(ranks[g/P][g%P], 2*m, m)...)
		}
		return bd, all
	}
	hierBD, hierBytes := run(false)
	flatBD, flatBytes := run(true)
	if !bytes.Equal(hierBytes, flatBytes) {
		t.Fatal("flat and hierarchical AllReduce disagree on result bytes")
	}
	if flatBD.Get(cost.Network) <= hierBD.Get(cost.Network) {
		t.Errorf("flat network time %v not above hierarchical %v",
			flatBD.Get(cost.Network), hierBD.Get(cost.Network))
	}
}

// Recompiling an equal descriptor is a cluster-level plan-cache hit
// (same *ClusterPlan), and the fused per-host schedules must report at
// least one cross-leg rewrite: the interior syncs between the lowered
// legs of one cluster collective are elided.
func TestClusterPlanCacheAndFusion(t *testing.T) {
	const H, P = 2, 16
	cl := testCluster(t, H, geoHost, []int{P}, false)
	m := 8 * P
	d := ClusterCollective{Collective: Collective{
		Prim: AllReduce, Dims: "1", Src: Span(0, m), Dst: At(2 * m),
		Elem: elem.I32, Op: elem.Sum, Level: IM,
	}}
	cp1, err := cl.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := cl.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	if cp1 != cp2 {
		t.Error("recompiling an equal descriptor missed the cluster plan cache")
	}
	elided := 0
	for _, r := range cp1.FusionReports() {
		elided += r.SyncsElided
	}
	if elided < 1 {
		t.Errorf("fused cluster plan elided %d interior syncs, want >= 1", elided)
	}
	// The compiled plan replays: two runs accumulate on the meters and
	// a third compile still hits.
	for i := 0; i < 2; i++ {
		if _, err := cp1.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if before := cl.Host(0).PlanCacheStats(); before.PlanMisses == 0 {
		t.Error("per-host plan caches never engaged for cluster members")
	}

	// Functional plans that capture a caller payload are not cached.
	payload := make([]byte, 64)
	bd := ClusterCollective{Collective: Collective{
		Prim: Broadcast, Dims: "1", Dst: Span(0, 64), Level: IM,
		Hosts: [][]byte{payload},
	}}
	bp1, err := cl.Compile(bd)
	if err != nil {
		t.Fatal(err)
	}
	bp2, err := cl.Compile(bd)
	if err != nil {
		t.Fatal(err)
	}
	if bp1 == bp2 {
		t.Error("payload-capturing cluster plan was cached")
	}
}

// Satellite regression: the legacy cost-only cluster satisfied payload
// validation with a shared zero-scratch buffer that aliased across call
// sites. The descriptor form drops the buffer entirely — Hosts stays
// nil, the size rides on Dst.Bytes — and interleaved calls of different
// sizes must each price exactly like their functional twins.
func TestClusterCostOnlyNilHostPayloads(t *testing.T) {
	const H, P = 3, 16
	costCl := testCluster(t, H, geoHost, []int{P}, true)
	funcCl := testCluster(t, H, geoHost, []int{P}, false)

	type call struct {
		name string
		d    ClusterCollective
		n    int // payload bytes the functional twin needs
	}
	calls := []call{
		{"bcast128", ClusterCollective{Collective: Collective{
			Prim: Broadcast, Dims: "1", Dst: Span(0, 128), Level: IM}, Root: 1}, 128},
		{"scatter32", ClusterCollective{Collective: Collective{
			Prim: Scatter, Dims: "1", Dst: Span(512, 32), Level: IM}}, H * P * 32},
		{"bcast256", ClusterCollective{Collective: Collective{
			Prim: Broadcast, Dims: "1", Dst: Span(1024, 256), Level: IM}, Root: 2}, 256},
	}
	for _, c := range calls {
		got, err := costCl.Run(c.d)
		if err != nil {
			t.Fatalf("%s cost-only: %v", c.name, err)
		}
		fd := c.d
		fd.Hosts = [][]byte{make([]byte, c.n)}
		want, err := funcCl.Run(fd)
		if err != nil {
			t.Fatalf("%s functional: %v", c.name, err)
		}
		if want != got {
			t.Errorf("%s: cost-only breakdown %+v != functional %+v", c.name, got, want)
		}
	}
	if costCl.Functional() {
		t.Error("cost-only cluster claims to be functional")
	}
}

func TestClusterSubmit(t *testing.T) {
	const H, P = 2, 16
	cl := testCluster(t, H, geoHost, []int{P}, false)
	ranks := clusterRanks(t, cl, "1")
	s := 8
	in := randGlobal(H*P, s, 21)
	for g, data := range in {
		cl.Host(g/P).SetPEBuffer(ranks[g/P][g%P], 0, data)
	}
	cp, err := cl.Compile(ClusterCollective{Collective: Collective{
		Prim: Gather, Dims: "1", Src: Span(0, s), Level: IM,
	}})
	if err != nil {
		t.Fatal(err)
	}
	fut, err := cl.Submit(ClusterCollective{Collective: Collective{
		Prim: Gather, Dims: "1", Src: Span(0, s), Level: IM,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if bd, err := fut.Wait(); err != nil {
		t.Fatal(err)
	} else if bd.Get(cost.Network) <= 0 {
		t.Error("submitted cluster gather charged no network time")
	}
	var want []byte
	for g := 0; g < H*P; g++ {
		want = append(want, in[g]...)
	}
	if got := fut.Results(); !bytes.Equal(got, want) {
		t.Fatal("submitted cluster gather returned wrong bytes")
	}
	// A second submission through the cached plan, drained by Flush.
	fut2 := cp.Submit()
	cl.Flush()
	if !fut2.Done() {
		t.Error("Flush returned before the submitted cluster plan completed")
	}
	if err := fut2.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil); err == nil {
		t.Error("empty cluster accepted")
	}
	c := testSystem(t, geoHost, []int{16})
	if _, err := NewCluster([]*Comm{c, c}); err == nil {
		t.Error("duplicate host comm accepted")
	}
	c2 := testSystem(t, geo64, []int{64})
	if _, err := NewCluster([]*Comm{c, c2}); err == nil {
		t.Error("mismatched host PE counts accepted")
	}
	phantom, err := dram.NewPhantomSystem(geoHost)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHypercube(phantom, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster([]*Comm{c, NewCostComm(hc, cost.DefaultParams())}); err == nil {
		t.Error("mixed functional/cost-only backends accepted")
	}

	cl := testCluster(t, 2, geoHost, []int{4, 4}, false)
	ar := ClusterCollective{Collective: Collective{
		Prim: AllReduce, Dims: "10", Src: Span(0, 16), Dst: At(64),
		Elem: elem.I32, Op: elem.Sum, Level: IM,
	}}
	if _, err := cl.Run(ar); err == nil {
		t.Error("partial-host Dims accepted for a cluster collective")
	}
	bad := ClusterCollective{Collective: Collective{
		Prim: Gather, Dims: "11", Src: Span(0, 16), Level: IM,
	}, Root: 2}
	if _, err := cl.Run(bad); err == nil {
		t.Error("out-of-range root accepted")
	}
	bad.Root = -1
	if _, err := cl.Run(bad); err == nil {
		t.Error("negative root accepted")
	}
	flatAA := ClusterCollective{Collective: Collective{
		Prim: AlltoAll, Dims: "11", Src: Span(0, 2*16*8), Dst: At(1024), Level: IM,
	}, Flat: true}
	if _, err := cl.Run(flatAA); err == nil {
		t.Error("Flat lowering accepted for a non-AllReduce primitive")
	}
	noPayload := ClusterCollective{Collective: Collective{
		Prim: Broadcast, Dims: "11", Dst: Span(0, 64), Level: IM,
	}}
	if _, err := cl.Run(noPayload); err == nil {
		t.Error("functional cluster Broadcast without a payload accepted")
	}
	shortScatter := ClusterCollective{Collective: Collective{
		Prim: Scatter, Dims: "11", Dst: Span(0, 8), Level: IM,
		Hosts: [][]byte{make([]byte, 3)},
	}}
	if _, err := cl.Run(shortScatter); err == nil {
		t.Error("undersized Scatter payload accepted")
	}
}
