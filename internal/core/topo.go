package core

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/elem"
)

// Topology selects the algorithmic structure used by AllReduceTopo,
// reproducing the hierarchy-aware comparison of § VIII-H / Figure 23(a).
type Topology int

const (
	// Hypercube is PID-Comm's direct single-pass AllReduce.
	TopoHypercube Topology = iota
	// Ring reduces with physically close neighbors within the entangled
	// group first, then across groups, NCCL-style: 2(n-1) steps that each
	// reroute the in-flight blocks through the host.
	TopoRing
	// Tree builds reduction trees following the order entangled group ->
	// rank -> channel, then broadcasts down (two-tree style).
	TopoTree
)

// String returns the display label.
func (tp Topology) String() string {
	switch tp {
	case TopoHypercube:
		return "Hypercube (PID-Comm)"
	case TopoRing:
		return "Ring"
	case TopoTree:
		return "Tree"
	default:
		return fmt.Sprintf("Topology(%d)", int(tp))
	}
}

// AllReduceTopo runs AllReduce with the chosen algorithmic topology, all
// with PID-Comm's PR/IM/CM register optimizations applied (as in the
// paper's comparison). The ring and tree comparators compute the same
// functional result; their costs follow the structural analysis below,
// because on PIM-enabled DIMMs every "link" is the host bus:
//
//   - Ring: each of the 2(n-1) steps reroutes m/n bytes per PE through
//     the host (read + write), so total bus traffic is ~4m per PE versus
//     the hypercube's 2m — the "multiplied external bus usage" of § V-B3.
//     Each step is a separate synchronized pass.
//   - Tree: level l of the reduce tree has n/2^l active senders, so burst
//     lanes are progressively wasted (factor min(2^l, 8) within entangled
//     groups, 8 beyond); the broadcast-down phase mirrors it. Latency is
//     2*ceil(log2 n) synchronized passes.
func (c *Comm) AllReduceTopo(topo Topology, dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op) (cost.Breakdown, error) {
	if topo == TopoHypercube {
		return c.AllReduce(dims, srcOff, dstOff, bytesPerPE, t, op, CM)
	}
	p, s, err := c.prepBlocks(dims, srcOff, dstOff, bytesPerPE, false)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllReduceTopo(%v): %w", topo, err)
	}
	if err := checkElem(t, op); err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllReduceTopo(%v): %w", topo, err)
	}
	c.Flush() // serial execution is a barrier w.r.t. submitted plans
	c.execMu.Lock()
	defer c.execMu.Unlock()
	before := c.h.Meter().Snapshot()

	// Functional result: same as any AllReduce. (Cost-only backends skip
	// the data movement; the structural cost model below is backend-
	// independent.)
	m := p.n * s
	if c.backend.Functional() {
		for _, grp := range p.groups {
			in := make([][]byte, len(grp))
			for i, pe := range grp {
				in[i] = c.GetPEBuffer(pe, srcOff, m)
			}
			out := RefAllReduce(t, op, in)
			for i, pe := range grp {
				c.SetPEBuffer(pe, dstOff, out[i])
			}
		}
	}

	// Structural cost model.
	n := p.n
	numPE := len(p.rankOf)
	total := int64(m) * int64(numPE) // one full copy of the data
	// Bus traffic spreads uniformly over channels, as in the streaming
	// engine's epoch accounting.
	busCharge := func(busBytes int64) {
		c.h.Meter().AddBytes(cost.PEMem, busBytes, c.h.Params().ChannelBW*float64(c.hc.sys.Geometry().Channels))
	}
	switch topo {
	case TopoRing:
		steps := 2 * (n - 1)
		if steps == 0 {
			break
		}
		stepBytes := total / int64(n)           // m/n per PE per step
		busCharge(int64(steps) * stepBytes * 2) // read + write each step
		// Host work per step: byte-rotate shifts (CM) on all moving data,
		// reduction for the first n-1 steps (with DT around arithmetic).
		c.h.ChargeSIMD(int64(steps) * stepBytes)
		c.h.ChargeReduce(int64(n-1) * stepBytes)
		if t != elem.I8 {
			c.h.ChargeDT(2 * int64(n-1) * stepBytes)
		}
		for i := 0; i < steps; i++ {
			c.h.ChargeSync()
		}
	case TopoTree:
		levels := int(math.Ceil(math.Log2(float64(n))))
		if levels == 0 {
			break
		}
		var busBytes, reduceBytes int64
		for l := 1; l <= levels; l++ {
			active := n >> uint(l)
			if active == 0 {
				active = 1
			}
			useful := int64(m) * int64(active) * int64(len(p.groups))
			waste := int64(1) << uint(l)
			if waste > 8 {
				waste = 8
			}
			// Reduce up: each pair reroutes through the host — read both
			// operands, write the result (3 passes). Broadcast down: read
			// the parent, write the children (2 passes). All at the
			// level's lane-waste factor.
			busBytes += useful * waste * 3 // reduce phase
			busBytes += useful * waste * 2 // broadcast phase
			reduceBytes += useful * 2      // both operands pass the reducer
		}
		busCharge(busBytes)
		c.h.ChargeSIMD(busBytes / 4) // per-level repacking
		c.h.ChargeReduce(reduceBytes)
		if t != elem.I8 {
			c.h.ChargeDT(2 * reduceBytes)
		}
		for i := 0; i < 2*levels; i++ {
			c.h.ChargeSync()
		}
	default:
		return cost.Breakdown{}, fmt.Errorf("AllReduceTopo: unknown topology %v", topo)
	}
	bd := c.h.Meter().Snapshot().Sub(before)
	// Topology comparators execute outside the plan machinery; keep the
	// elapsed-time timeline coherent by appending their cost serially.
	c.placeSerialLocked(bd.Segments())
	return bd, nil
}
