package core

import (
	"repro/internal/cost"
	"repro/internal/dpu"
	"repro/internal/dram"
	"repro/internal/elem"
	"repro/internal/host"
	"repro/internal/vec"
)

// column holds one 64-byte burst per entangled group, all at the same
// per-bank MRAM offset — the unit the optimized engine streams. Registers
// are in PIM byte order unless stated otherwise.
type column []vec.Reg

// readColumn reads the burst at offset off from every entangled group.
// Must run inside a transfer epoch.
func (c *Comm) readColumn(off int) column {
	nEG := c.hc.sys.Geometry().NumGroups()
	col := make(column, nEG)
	for g := 0; g < nEG; g++ {
		col[g] = c.h.ReadBurst(g, off)
	}
	return col
}

// writeColumn writes one burst per entangled group at offset off.
func (c *Comm) writeColumn(off int, col column) {
	for g, r := range col {
		c.h.WriteBurst(g, off, r)
	}
}

// moveElem copies the PIM-domain element of lane src in sr into lane dst
// of dr: bank c's element occupies byte c of every aligned 8-byte word.
func moveElem(dr *vec.Reg, dst int, sr *vec.Reg, src int) {
	for w := 0; w < vec.Lanes; w++ {
		dr[8*w+dst] = sr[8*w+src]
	}
}

// shiftColumn moves every lane's element to the PE holding rank
// (rank+shift) mod n of the same communication group — the multi-instance
// lane rotation at the heart of the optimized engine. Because every PE
// belongs to exactly one group, the result is a full permutation of the
// column, whether groups subdivide an entangled group, span several, or
// stride across them (Figure 9 general cases).
func (c *Comm) shiftColumn(p *plan, col column, shift int) column {
	out := make(column, len(col))
	for g := range col {
		for chip := 0; chip < dram.ChipsPerRank; chip++ {
			pe := g*dram.ChipsPerRank + chip
			grp := p.groupOf[pe]
			dstRank := (int(p.rankOf[pe]) + shift) % p.n
			if dstRank < 0 {
				dstRank += p.n
			}
			dstPE := p.groups[grp][dstRank]
			moveElem(&out[dstPE/dram.ChipsPerRank], dstPE%dram.ChipsPerRank, &col[g], chip)
		}
	}
	return out
}

// transposeColumn converts every register between PIM and host byte order
// (functional only; the caller charges DT or nothing per level).
func transposeColumn(col column) column {
	out := make(column, len(col))
	var u vec.Unit // scratch unit; cost charged explicitly by callers
	for g, r := range col {
		out[g] = u.Transpose8x8(r)
	}
	return out
}

// reduceColumnInto accumulates src into acc elementwise (host byte order:
// each lane is a whole element, so vertical SIMD ops apply; § V-B2).
func reduceColumnInto(t elem.Type, op elem.Op, acc, src column) {
	var u vec.Unit
	for g := range acc {
		acc[g] = u.Reduce(t, op, acc[g], src[g])
	}
}

// identityColumn returns a column of reduction identities.
func identityColumn(t elem.Type, op elem.Op, nEG int) column {
	var u vec.Unit
	id := u.FillIdentity(t, op)
	col := make(column, nEG)
	for g := range col {
		col[g] = id
	}
	return col
}

// columnBytes is the data volume of one column, for charge computations.
func (c *Comm) columnBytes() int64 {
	return int64(c.hc.sys.Geometry().NumGroups()) * dram.BurstBytes
}

// rotateBlocksWork returns the per-PE accounted work of a non-trivial
// rotate-blocks pass over an m-byte region: one full streaming pass in
// and out of MRAM (2*m bytes of DMA) and ~1 instruction per 4 bytes of
// address arithmetic, rounded UP to whole instructions. The helper is
// shared by the functional kernel and the cost backend's analytic
// accounting so the two cannot drift — in particular on regions whose
// byte count is not a multiple of 4, where truncating division would
// undercount on one side only.
func rotateBlocksWork(m int) (instr, mramBytes int64) {
	return int64((m + 3) / 4), int64(2 * m)
}

// launchRotateBlocks runs the PE-assisted reordering kernel (§ V-A1) on
// every PE: each PE's region [off, off+n*s) is treated as n blocks of s
// bytes and left-rotated by rot(rank) blocks: new block l = old block
// (l + rot) mod n. The kernel streams MRAM through WRAM-sized chunks;
// the paper's incremental shifting touches each byte once in and once out,
// which is what the accounting reflects. h receives the launch charges.
func (c *Comm) launchRotateBlocks(h *host.Host, p *plan, off, n, s int, rot func(rank int) int) {
	pes, ranks := p.launchLists()
	c.eng.Launch(dpu.LaunchSpec{
		PEs:        pes,
		GroupRanks: ranks,
		Category:   cost.PEMod,
	}, h.Meter(), func(ctx *dpu.Ctx) {
		r := rot(ctx.GroupRank) % n
		if r < 0 {
			r += n
		}
		if r == 0 {
			return // nothing to move; kernel exits immediately
		}
		m := n * s
		// Read the full region through WRAM-sized chunks into a rotation
		// pipeline, then write each block to its rotated position. The
		// temp models the double-buffered WRAM streaming of the real
		// kernel; MRAM traffic (the dominant cost) is fully accounted.
		tmp := make([]byte, m)
		chunk := len(ctx.Wram()) / 2
		for o := 0; o < m; o += chunk {
			end := o + chunk
			if end > m {
				end = m
			}
			ctx.ReadMram(off+o, tmp[o:end])
		}
		for l := 0; l < n; l++ {
			srcBlock := (l + r) % n
			for o := 0; o < s; o += chunk {
				end := o + chunk
				if end > s {
					end = s
				}
				ctx.WriteMram(off+l*s+o, tmp[srcBlock*s+o:srcBlock*s+end])
			}
		}
		instr, _ := rotateBlocksWork(m) // address arithmetic; DMA accounted above
		ctx.Exec(instr)
	})
}

// allEGs returns [0..numGroups) for bulk transfers covering the machine.
func (c *Comm) allEGs() []int {
	out := make([]int, c.hc.sys.Geometry().NumGroups())
	for i := range out {
		out[i] = i
	}
	return out
}
