package core

import (
	"repro/internal/dpu"
	"repro/internal/dram"
	"repro/internal/elem"
	"repro/internal/host"
	"repro/internal/vec"
)

// column holds one 64-byte burst per entangled group, all at the same
// per-bank MRAM offset — the unit the optimized engine streams. Registers
// are in PIM byte order unless stated otherwise.
type column []vec.Reg

// streamCtx is one worker's private streaming context during a parallel
// ColumnStream epoch: a host shard (private bus tallies and vector unit)
// plus preallocated column buffers, so the steady-state streaming loops
// allocate nothing. Contexts are created once per shard slot on the Comm
// (ensureStreams) and reused across runs; each is owned by exactly one
// worker for the duration of a par.Do call.
type streamCtx struct {
	sh *host.Shard
	vu vec.Unit // scratch transposes; cost is charged declaratively
	a  column   // read target
	b  column   // shift target
	ac column   // reduction accumulator
}

// readColumn reads the burst at offset off from every entangled group
// into dst. Must run inside a transfer epoch.
func (sc *streamCtx) readColumn(off int, dst column) {
	for g := range dst {
		dst[g] = sc.sh.ReadBurst(g, off)
	}
}

// writeColumn writes one burst per entangled group at offset off.
func (sc *streamCtx) writeColumn(off int, col column) {
	for g, r := range col {
		sc.sh.WriteBurst(g, off, r)
	}
}

// moveElem copies the PIM-domain element of lane src in sr into lane dst
// of dr: bank c's element occupies byte c of every aligned 8-byte word.
func moveElem(dr *vec.Reg, dst int, sr *vec.Reg, src int) {
	for w := 0; w < vec.Lanes; w++ {
		dr[8*w+dst] = sr[8*w+src]
	}
}

// shiftColumn moves every lane's element of src to the PE holding rank
// (rank+shift) mod n of the same communication group, storing into dst —
// the multi-instance lane rotation at the heart of the optimized engine.
// Because every PE belongs to exactly one group, the result is a full
// permutation of the column, whether groups subdivide an entangled group,
// span several, or stride across them (Figure 9 general cases). dst must
// not alias src.
func (sc *streamCtx) shiftColumn(p *plan, dst, src column, shift int) {
	for g := range src {
		for chip := 0; chip < dram.ChipsPerRank; chip++ {
			pe := g*dram.ChipsPerRank + chip
			grp := p.groupOf[pe]
			dstRank := (int(p.rankOf[pe]) + shift) % p.n
			if dstRank < 0 {
				dstRank += p.n
			}
			dstPE := p.groups[grp][dstRank]
			moveElem(&dst[dstPE/dram.ChipsPerRank], dstPE%dram.ChipsPerRank, &src[g], chip)
		}
	}
}

// transposeColumn converts every register between PIM and host byte order,
// in place (functional only; the caller charges DT or nothing per level).
func (sc *streamCtx) transposeColumn(col column) {
	for g, r := range col {
		col[g] = sc.vu.Transpose8x8(r)
	}
}

// reduceColumnInto accumulates src into acc elementwise (host byte order:
// each lane is a whole element, so vertical SIMD ops apply; § V-B2).
func (sc *streamCtx) reduceColumnInto(t elem.Type, op elem.Op, acc, src column) {
	for g := range acc {
		acc[g] = sc.vu.Reduce(t, op, acc[g], src[g])
	}
}

// fillIdentity fills col with reduction identities.
func (sc *streamCtx) fillIdentity(t elem.Type, op elem.Op, col column) {
	id := sc.vu.FillIdentity(t, op)
	for g := range col {
		col[g] = id
	}
}

// lane returns the 8-byte lane of PE pe within the column (host byte
// order: lane = the PE's whole element word).
func (c column) lane(pe int) []byte {
	return c[pe/dram.ChipsPerRank][(pe%dram.ChipsPerRank)*vec.LaneBytes : (pe%dram.ChipsPerRank+1)*vec.LaneBytes]
}

// ensureStreams grows the Comm's streaming-context set to k entries.
// Callers hold execMu; the underlying host Shard slots are shared with
// the bulk-transfer paths (same shard index -> same worker slot).
func (c *Comm) ensureStreams(k int) {
	shards := c.h.Shards(k)
	nEG := c.hc.sys.Geometry().NumGroups()
	for len(c.streams) < k {
		i := len(c.streams)
		c.streams = append(c.streams, &streamCtx{
			sh: shards[i],
			a:  make(column, nEG),
			b:  make(column, nEG),
			ac: make(column, nEG),
		})
	}
}

// columnBytes is the data volume of one column, for charge computations.
func (c *Comm) columnBytes() int64 {
	return int64(c.hc.sys.Geometry().NumGroups()) * dram.BurstBytes
}

// rotateBlocksWork returns the per-PE accounted work of a non-trivial
// rotate-blocks pass over an m-byte region: one full streaming pass in
// and out of MRAM (2*m bytes of DMA) and ~1 instruction per 4 bytes of
// address arithmetic, rounded UP to whole instructions. The helper is
// shared by the functional kernel and the cost backend's analytic
// accounting so the two cannot drift — in particular on regions whose
// byte count is not a multiple of 4, where truncating division would
// undercount on one side only.
func rotateBlocksWork(m int) (instr, mramBytes int64) {
	return int64((m + 3) / 4), int64(2 * m)
}

// rotateBlocksKernel builds the PE-assisted reordering kernel (§ V-A1)
// for a rotation step: each PE's region [Off, Off+N*S) is treated as N
// blocks of S bytes and left-rotated by Rot(rank) blocks: new block l =
// old block (l + rot) mod n. The kernel streams MRAM through WRAM-sized
// chunks; the paper's incremental shifting touches each byte once in and
// once out, which is what the accounting reflects. The built kernel is
// cached on the step (functional replays launch it with no per-run
// closure allocation).
func rotateBlocksKernel(st *StepRotateBlocks) dpu.Kernel {
	return func(ctx *dpu.Ctx) {
		r := st.Rot(ctx.GroupRank) % st.N
		if r < 0 {
			r += st.N
		}
		if r == 0 {
			return // nothing to move; kernel exits immediately
		}
		m := st.N * st.S
		// Read the full region through WRAM-sized chunks into a rotation
		// pipeline, then write each block to its rotated position. The
		// scratch slab models the double-buffered WRAM streaming of the
		// real kernel; MRAM traffic (the dominant cost) is fully accounted.
		tmp := ctx.Scratch(m)
		chunk := len(ctx.Wram()) / 2
		for o := 0; o < m; o += chunk {
			end := o + chunk
			if end > m {
				end = m
			}
			ctx.ReadMram(st.Off+o, tmp[o:end])
		}
		for l := 0; l < st.N; l++ {
			srcBlock := (l + r) % st.N
			for o := 0; o < st.S; o += chunk {
				end := o + chunk
				if end > st.S {
					end = st.S
				}
				ctx.WriteMram(st.Off+l*st.S+o, tmp[srcBlock*st.S+o:srcBlock*st.S+end])
			}
		}
		instr, _ := rotateBlocksWork(m) // address arithmetic; DMA accounted above
		ctx.Exec(instr)
	}
}
