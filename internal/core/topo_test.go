package core

import (
	"bytes"
	"testing"

	"repro/internal/dram"
	"repro/internal/elem"
)

func TestTopoAllProduceCorrectResults(t *testing.T) {
	for _, topo := range []Topology{TopoHypercube, TopoRing, TopoTree} {
		c := testSystem(t, geo64, []int{8, 8})
		p, _ := c.plan("10")
		m := p.n * 16
		in := fillSrc(c, 0, m, 31)
		if _, err := c.AllReduceTopo(topo, "10", 0, 2*m, m, elem.I32, elem.Sum); err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		for _, grp := range p.groups {
			want := RefAllReduce(elem.I32, elem.Sum, groupInputs(in, grp))
			for j, pe := range grp {
				if !bytes.Equal(c.GetPEBuffer(pe, 2*m, m), want[j]) {
					t.Fatalf("%v: PE %d mismatch", topo, pe)
				}
			}
		}
	}
}

// Figure 23(a): hypercube beats ring beats tree, with tree substantially
// slower (paper: up to 2.05x and 7.89x at 32x32).
func TestTopoOrderingMatchesFigure23a(t *testing.T) {
	geo := dram.Geometry{Channels: 2, RanksPerChannel: 2, BanksPerChip: 8, MramPerBank: 1 << 18}
	run := func(topo Topology) float64 {
		c := testSystem(t, geo, []int{16, 16})
		m := 16 * 4096 // large enough that data terms dominate sync terms
		fillSrc(c, 0, m, 9)
		bd, err := c.AllReduceTopo(topo, "10", 0, 2*m, m, elem.I32, elem.Sum)
		if err != nil {
			t.Fatal(err)
		}
		return float64(bd.Total())
	}
	hyper, ring, tree := run(TopoHypercube), run(TopoRing), run(TopoTree)
	if !(hyper < ring && ring < tree) {
		t.Fatalf("ordering wrong: hypercube=%v ring=%v tree=%v", hyper, ring, tree)
	}
	if ring/hyper < 1.2 || ring/hyper > 5 {
		t.Errorf("ring slowdown %.2fx out of plausible band (paper ~2x)", ring/hyper)
	}
	if tree/hyper < 3 || tree/hyper > 20 {
		t.Errorf("tree slowdown %.2fx out of plausible band (paper ~7.9x)", tree/hyper)
	}
}

func TestTopoStrings(t *testing.T) {
	for _, topo := range []Topology{TopoHypercube, TopoRing, TopoTree, Topology(9)} {
		if topo.String() == "" {
			t.Error("empty topology label")
		}
	}
}

func TestTopoUnknownErrors(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	fillSrc(c, 0, 128, 1)
	if _, err := c.AllReduceTopo(Topology(9), "10", 0, 256, 128, elem.I32, elem.Sum); err == nil {
		t.Error("unknown topology accepted")
	}
}
