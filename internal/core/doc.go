// Package core implements PID-Comm: the virtual-hypercube communication
// model (§ IV) and the optimized multi-instance collective communication
// library (§ V) for the simulated PIM-enabled DIMM system.
//
// # Role
//
// core is the engine of the reproduction. It provides the eight
// collective primitives of Figure 2 (AlltoAll, ReduceScatter, AllReduce,
// AllGather, Scatter, Gather, Reduce, Broadcast) at four cumulative
// optimization levels — Baseline, +PE-assisted reordering (PR, § V-A1),
// +in-register modulation (IM, § V-A2), +cross-domain modulation (CM,
// § V-A3) — over user-selected hypercube dimensions. Every functional
// execution moves real bytes through the simulated banks and registers
// and must produce bit-identical results; tests verify all levels against
// an independent reference model (reference.go).
//
// # The Collective descriptor
//
// Every collective call is described by one Collective value
// (collective.go): primitive, dims bitmap, arena-relative Region
// handles, element type/operator, level (zero value = Auto) and host
// payloads. Exactly three entry points consume it — Compile, Run,
// Submit — and the positional-argument methods (AlltoAll,
// CompileAlltoAll, SubmitAlltoAll, ...) are thin shims over the same
// funnel, so every path shares one normalization and validation.
//
// # Pipeline
//
// A collective call flows through four stages: validate, lower to the
// schedule IR, compile to a plan, execute.
//
//   - Hypercube (hypercube.go) holds the virtual shape of § IV-B and
//     produces communication groups (the cube slices of Figure 5) from a
//     dims bitmap.
//   - Schedule (schedule.go) is the typed IR every collective lowers to:
//     StepRotateBlocks (the PE-assisted reorder kernel), StepBulk (a
//     conventional staged host pass), StepColumnStream (one streaming
//     epoch of the optimized engine), StepHostCompute and StepSync. Each
//     step carries both the functional closures that move bytes and the
//     declarative charge counts the cost-only backend needs.
//   - Backend (exec.go) executes steps: the functional backend moves real
//     bytes; the cost-only backend charges the identical cost (pinned
//     bit-for-bit by exec_test.go) while moving nothing — the engine for
//     paper-scale sweeps and AutoLevel dry runs.
//   - CompiledPlan (plan.go) is the plan/execute split: a call signature
//     compiled once (validation, Auto resolution, lowering, charge
//     precomputation) and replayed many times, with a per-Comm cache
//     (PlanCacheStats instruments it).
//   - Fusion (fuse.go): before tracing, peephole passes rewrite the
//     lowered schedule — adjacent same-region rotations compose (inverse
//     pairs cancel), back-to-back streaming epochs coalesce, no-ops and
//     interior syncs drop. On by default (FuseLevel knob, part of the
//     plan-cache key); CompileSequence compiles whole multi-collective
//     pipelines through the fuser, where the cross-collective rewrites
//     pay off. Fused execution is byte-identical to unfused (pinned by
//     fuse_test.go and the fuzz harness) — only the charge trace, which
//     is regenerated from the fused schedule, shrinks.
//   - Level autotuning (auto.go): passing Auto dry-runs every applicable
//     level on a cached cost-only shadow comm and picks the cheapest for
//     the call signature.
//
// # Parallel functional execution
//
// The functional backend shards every schedule step across a worker
// pool (internal/par): RotateBlocks launches split the PE list,
// column-stream epochs split their column range onto per-shard
// streaming contexts (engine.go), and staged bulk passes split their
// entangled-group list. SetExecWorkers sizes the pool (default
// GOMAXPROCS; purely a simulator-throughput knob, deliberately NOT part
// of the plan-cache key). The determinism contract is structural:
// shards only write disjoint regions, shard-local tallies merge in
// shard order with order-insensitive folds (integer sums, exact float
// max), and every meter addition happens on the executing goroutine
// after the merge — so results, breakdowns, and bus statistics are
// bit-for-bit identical at any worker count (parallel_test.go pins
// this, and the fuzz harness randomizes the knob). Replay of a warmed
// CompiledPlan is also allocation-free on the streaming paths: scratch
// lives in per-shard arenas, rooted results in plan-owned buffers, and
// kernels are cached on their steps (TestReplayAllocs*).
//
// # Asynchronous execution
//
// Submit (async.go) enqueues a plan on the Comm's submission queue and
// returns a Future. Plans execute in submission order — results are
// bit-identical to serial replay — but elapsed-time accounting is
// overlap-aware: each plan is placed on a three-lane cost.Timeline (host
// CPU, external bus, PE array), plans with disjoint MRAM footprints
// overlap, and plans with data hazards (RAW/WAR/WAW on a per-PE region)
// are ordered. Comm.Elapsed reports the makespan; Comm.Flush is the
// barrier. The bench "async" experiment measures the overlap speedup on
// a DLRM-style pipeline.
//
// # Tenants and weighted-fair scheduling
//
// Tenant sessions (tenant.go) let many workloads share one Comm: each
// tenant owns a disjoint per-PE MRAM arena its descriptors are resolved
// against, a meter that mirrors every charge of its plans (bit-identical
// to running alone), a weight, and an optional simulated-time quota
// enforced at admission. The submission queue becomes per-tenant
// buckets served by start-time weighted fair queuing (async.go); within
// a bucket FIFO order — and with it hazard order — is preserved, while
// across tenants the disjoint arenas guarantee hazard-freedom and the
// shared timeline overlaps the streams. The bench "multitenant"
// experiment measures the serving win.
//
// # Submission scheduling
//
// Which queued plan runs next is a pluggable policy behind one funnel
// (sched.go, pickLocked in async.go), mirroring the algorithm registry:
// the funnel enumerates the hazard-free candidates near every bucket's
// head and the registered Scheduler's Pick chooses among them. Hazard
// ordering, weighted-fair virtual-time bookkeeping and queue removal
// are funnel invariants — a policy only reorders independent plans, so
// results stay bit-identical to a serial replay in the chosen order.
// Four policies are built in: WFQ (default), EDF, FIFO and Lookahead, a
// makespan-aware list scheduler that dry-places candidate charge traces
// on a projection cost.Timeline and serves the one minimizing the
// projected joint makespan, under a WFQ virtual-time starvation bound.
// RegisterScheduler accepts external policies; ParseSchedPolicy and
// SchedPolicy.String round-trip every registered name. SetLookahead
// bounds the candidate window of the window-scanning policies. The
// bench "reorder" experiment measures the lookahead payoff on an
// adversarial submission order.
//
// # Paper map
//
//	Figure 2      Primitive (level.go)
//	Figures 5, 6  Hypercube, Groups (hypercube.go)
//	Figure 7      lowerAlltoAll (schedule.go)
//	Figure 8      lowerReduceScatter / lowerAllReduce / lowerAllGather
//	Figure 9      shiftColumn (engine.go)
//	Table I, II   support.go (TableI, TableII, TechniqueApplies)
//	§ V-A1        rotateBlocksKernel (engine.go)
//	§ VIII-H      AllReduceTopo (topo.go)
package core
