package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/elem"
)

// fuseComm builds a functional comm at the given fusion level.
func fuseComm(t *testing.T, sc caseSpec, fuse FuseLevel) *Comm {
	t.Helper()
	c := testSystem(t, sc.geo, sc.shape)
	c.SetFuse(fuse)
	return c
}

// fillBoth writes identical deterministic random bytes into every PE's
// whole MRAM on both comms (they share a geometry).
func fillBoth(t *testing.T, a, b *Comm, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	geo := a.Hypercube().System().Geometry()
	buf := make([]byte, geo.MramPerBank)
	for pe := 0; pe < geo.NumPEs(); pe++ {
		rng.Read(buf)
		a.SetPEBuffer(pe, 0, buf)
		b.SetPEBuffer(pe, 0, buf)
	}
}

// compareMram fails the test unless every PE's full MRAM is byte-equal
// between the two comms.
func compareMram(t *testing.T, ctx string, a, b *Comm) {
	t.Helper()
	geo := a.Hypercube().System().Geometry()
	for pe := 0; pe < geo.NumPEs(); pe++ {
		ma := a.GetPEBuffer(pe, 0, geo.MramPerBank)
		mb := b.GetPEBuffer(pe, 0, geo.MramPerBank)
		if !bytes.Equal(ma, mb) {
			i := 0
			for i < len(ma) && ma[i] == mb[i] {
				i++
			}
			t.Fatalf("%s: PE %d MRAM diverges at byte %d (unfused=%#x fused=%#x)", ctx, pe, i, ma[i], mb[i])
		}
	}
}

// fusionSequences returns, per primitive, a sequence of descriptors that
// exercises the primitive inside a fused multi-collective plan. Each
// sequence chains a producer into an AlltoAll (or vice versa) on the
// shared region B, which is where the cross-collective rewrites fire:
// interior syncs collapse and, at the rotating levels, the trailing
// unrotate of the producer cancels the consumer's leading rotate of B.
// Regions: A=[0,m) B=[2m,3m) C=[4m,...) in per-PE MRAM; n is the group
// size, s=m/n the block size.
func fusionSequences(prim Primitive, dims string, n, s int) ([]Collective, bool) {
	m := n * s
	A, B, C := 0, 2*m, 4*m
	aaFromB := Collective{Prim: AlltoAll, Dims: dims, Src: Span(B, m), Dst: At(C)}
	switch prim {
	case AlltoAll:
		return []Collective{
			{Prim: AlltoAll, Dims: dims, Src: Span(A, m), Dst: At(B)},
			aaFromB,
		}, true
	case ReduceScatter:
		return []Collective{
			{Prim: AlltoAll, Dims: dims, Src: Span(A, m), Dst: At(B)},
			{Prim: ReduceScatter, Dims: dims, Src: Span(B, m), Dst: At(C), Elem: elem.I32, Op: elem.Sum},
		}, true
	case AllReduce:
		return []Collective{
			{Prim: AllReduce, Dims: dims, Src: Span(A, m), Dst: At(B), Elem: elem.I32, Op: elem.Sum},
			aaFromB,
		}, true
	case AllGather:
		return []Collective{
			{Prim: AllGather, Dims: dims, Src: Span(A, s), Dst: At(B)},
			aaFromB,
		}, true
	default:
		return nil, false
	}
}

// TestFusionEquivalence is the fusion property test: for every primitive
// x optimization level (including Auto) x hypercube case (1D/2D/3D,
// sub-EG, strided and non-power-of-two group shapes), a fused execution
// must be byte-identical to the unfused one and never cost more.
//
// Sequenceable primitives run inside a two-member fused sequence that
// triggers the cross-collective rewrites; host-input primitives
// (Scatter, Broadcast) run as the producer of a sequence; rooted
// primitives (Gather, Reduce), which cannot join sequences, run as
// single fused plans and compare their host-side Results too.
func TestFusionEquivalence(t *testing.T) {
	const s = 16
	levels := append([]Level{Auto}, Levels()...)
	for _, sc := range cases {
		for _, lvl := range levels {
			for _, prim := range Primitives() {
				off := fuseComm(t, sc, FuseOff)
				on := fuseComm(t, sc, FuseFull)
				fillBoth(t, off, on, 7*int64(lvl)+int64(prim))
				p, err := on.plan(sc.dims)
				if err != nil {
					t.Fatal(err)
				}
				n := p.n
				m := n * s

				ctx := sc.name + "/" + prim.LongName() + "/" + lvl.String()
				if ds, ok := fusionSequences(prim, sc.dims, n, s); ok {
					for i := range ds {
						ds[i].Level = lvl
					}
					runSeqPair(t, ctx, off, on, ds)
				} else if prim == Scatter || prim == Broadcast {
					mkBufs := func() [][]byte {
						rng := rand.New(rand.NewSource(13))
						bufs := make([][]byte, len(p.groups))
						for g := range bufs {
							sz := m
							if prim == Scatter {
								sz = n * m
							}
							bufs[g] = make([]byte, sz)
							rng.Read(bufs[g])
						}
						return bufs
					}
					ds := []Collective{
						{Prim: prim, Dims: sc.dims, Dst: hostDst(prim, m), Level: lvl},
						{Prim: AlltoAll, Dims: sc.dims, Src: Span(0, m), Dst: At(2 * m), Level: lvl},
					}
					// Each comm binds its own buffer copies (identical bytes).
					dsOff := append([]Collective{}, ds...)
					dsOff[0].Hosts = mkBufs()
					dsOn := append([]Collective{}, ds...)
					dsOn[0].Hosts = mkBufs()
					cpOff, err := off.CompileSequence(dsOff...)
					if err != nil {
						t.Fatalf("%s: unfused: %v", ctx, err)
					}
					cpOn, err := on.CompileSequence(dsOn...)
					if err != nil {
						t.Fatalf("%s: fused: %v", ctx, err)
					}
					checkSeqPair(t, ctx, off, on, cpOff, cpOn)
				} else { // Gather, Reduce: single fused plans
					d := Collective{Prim: prim, Dims: sc.dims, Src: Span(0, m), Elem: elem.I32, Op: elem.Sum, Level: lvl}
					cpOff, err := off.Compile(d)
					if err != nil {
						t.Fatalf("%s: unfused: %v", ctx, err)
					}
					cpOn, err := on.Compile(d)
					if err != nil {
						t.Fatalf("%s: fused: %v", ctx, err)
					}
					if _, err := cpOff.Run(); err != nil {
						t.Fatalf("%s: unfused run: %v", ctx, err)
					}
					if _, err := cpOn.Run(); err != nil {
						t.Fatalf("%s: fused run: %v", ctx, err)
					}
					ra, rb := cpOff.Results(), cpOn.Results()
					if len(ra) != len(rb) {
						t.Fatalf("%s: result group counts differ", ctx)
					}
					for g := range ra {
						if !bytes.Equal(ra[g], rb[g]) {
							t.Fatalf("%s: group %d results diverge", ctx, g)
						}
					}
					compareMram(t, ctx, off, on)
				}
			}
		}
	}
}

// hostDst returns the destination region of a host-input producer whose
// payload is m bytes per PE.
func hostDst(prim Primitive, m int) Region {
	if prim == Scatter {
		return Span(0, m)
	}
	return At(0) // Broadcast: size implied by the payload
}

// runSeqPair compiles ds on both comms and checks equivalence.
func runSeqPair(t *testing.T, ctx string, off, on *Comm, ds []Collective) {
	t.Helper()
	cpOff, err := off.CompileSequence(ds...)
	if err != nil {
		t.Fatalf("%s: unfused: %v", ctx, err)
	}
	cpOn, err := on.CompileSequence(ds...)
	if err != nil {
		t.Fatalf("%s: fused: %v", ctx, err)
	}
	checkSeqPair(t, ctx, off, on, cpOff, cpOn)
}

// checkSeqPair runs both plans and asserts byte-identical MRAM and a
// fused cost no higher than the unfused one.
func checkSeqPair(t *testing.T, ctx string, off, on *Comm, cpOff, cpOn *CompiledPlan) {
	t.Helper()
	if _, err := cpOff.Run(); err != nil {
		t.Fatalf("%s: unfused run: %v", ctx, err)
	}
	if _, err := cpOn.Run(); err != nil {
		t.Fatalf("%s: fused run: %v", ctx, err)
	}
	compareMram(t, ctx, off, on)
	uc, fc := cpOff.Cost().Total(), cpOn.Cost().Total()
	if fc > uc {
		t.Fatalf("%s: fused cost %v exceeds unfused %v", ctx, fc, uc)
	}
	if rep := cpOn.FusionReport(); rep.Changed() && rep.Saved() <= 0 {
		t.Fatalf("%s: fusion changed the schedule but saved %v", ctx, rep.Saved())
	}
}

// TestCrossReplayRotateElision pins the headline rewrite on a two-plan
// sequence: plan A (AlltoAll at IM) ends by unrotating its destination,
// plan B (ReduceScatter at IM) begins by rotating the same region — in
// the fused sequence the pair composes to the identity and both steps
// disappear, along with the interior synchronization. The test asserts
// the exact work saved, the cost drop, and byte-identical MRAM.
func TestCrossReplayRotateElision(t *testing.T) {
	sc := caseSpec{"2D-x", geo64, []int{8, 8}, "10"}
	const s = 64
	off := fuseComm(t, sc, FuseOff)
	on := fuseComm(t, sc, FuseFull)
	fillBoth(t, off, on, 99)
	p, err := on.plan(sc.dims)
	if err != nil {
		t.Fatal(err)
	}
	m := p.n * s
	ds := []Collective{
		{Prim: AlltoAll, Dims: sc.dims, Src: Span(0, m), Dst: At(2 * m), Level: IM},
		{Prim: ReduceScatter, Dims: sc.dims, Src: Span(2*m, m), Dst: At(4 * m), Elem: elem.I32, Op: elem.Sum, Level: IM},
	}
	cpOff, err := off.CompileSequence(ds...)
	if err != nil {
		t.Fatal(err)
	}
	cpOn, err := on.CompileSequence(ds...)
	if err != nil {
		t.Fatal(err)
	}

	rep := cpOn.FusionReport()
	if rep.RotatesMerged != 1 || rep.RotatesElided != 1 {
		t.Fatalf("want the inverse pair merged (1) and elided (1), got %+v", rep)
	}
	if rep.SyncsElided != 1 {
		t.Fatalf("want the interior sync elided, got %d", rep.SyncsElided)
	}
	if rep.EpochsCoalesced != 1 {
		t.Fatalf("want the adjacent column-stream epochs coalesced, got %d", rep.EpochsCoalesced)
	}
	// The cancelled pair saves exactly two full rotation passes of the
	// shared m-byte region on every rotating PE: 2*(2m) DMA bytes.
	if want := int64(4 * m); rep.PEBytesSaved != want {
		t.Fatalf("PEBytesSaved = %d, want %d", rep.PEBytesSaved, want)
	}
	if rep.Saved() <= 0 {
		t.Fatalf("fusion saved nothing: %v", rep)
	}
	if got, want := cpOn.Cost().Total(), cpOff.Cost().Total(); got >= want {
		t.Fatalf("fused cost %v not below unfused %v", got, want)
	}

	// Byte-identical MRAM after running both.
	if _, err := cpOff.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := cpOn.Run(); err != nil {
		t.Fatal(err)
	}
	compareMram(t, "AA+RS", off, on)
}

// TestFuseOffSequenceMatchesSerial pins the FuseOff reference semantics:
// an unfused sequence executes the member schedules verbatim, so its
// precomputed cost is bit-identical to running the members serially on a
// fresh comm.
func TestFuseOffSequenceMatchesSerial(t *testing.T) {
	sc := caseSpec{"2D-x", geo64, []int{8, 8}, "10"}
	const s = 32
	seqComm := fuseComm(t, sc, FuseOff)
	serComm := fuseComm(t, sc, FuseOff)
	fillBoth(t, seqComm, serComm, 5)
	p, err := seqComm.plan(sc.dims)
	if err != nil {
		t.Fatal(err)
	}
	m := p.n * s
	ds := []Collective{
		{Prim: AlltoAll, Dims: sc.dims, Src: Span(0, m), Dst: At(2 * m), Level: CM},
		{Prim: ReduceScatter, Dims: sc.dims, Src: Span(2*m, m), Dst: At(4 * m), Elem: elem.I32, Op: elem.Sum, Level: IM},
	}
	cp, err := seqComm.CompileSequence(ds...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Run(); err != nil {
		t.Fatal(err)
	}
	before := serComm.Meter().Snapshot()
	for _, d := range ds {
		if _, err := serComm.Run(d); err != nil {
			t.Fatal(err)
		}
	}
	serial := serComm.Meter().Snapshot().Sub(before)
	if d := diffBreakdowns(cp.Cost(), serial); d != "" {
		t.Fatalf("unfused sequence cost differs from serial runs: %s", d)
	}
	compareMram(t, "FuseOff sequence", seqComm, serComm)
	if rep := cp.FusionReport(); rep.Changed() {
		t.Fatalf("FuseOff sequence reports fusion activity: %v", rep)
	}
}

// TestSequenceRejectsRooted pins the CompileSequence contract for
// host-rooted primitives.
func TestSequenceRejectsRooted(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	m := 8 * 16
	for _, prim := range []Primitive{Gather, Reduce} {
		_, err := c.CompileSequence(
			Collective{Prim: AlltoAll, Dims: "10", Src: Span(0, m), Dst: At(2 * m)},
			Collective{Prim: prim, Dims: "10", Src: Span(2*m, m), Elem: elem.I32, Op: elem.Sum},
		)
		if err == nil || !strings.Contains(err.Error(), "rooted") {
			t.Fatalf("%v in sequence: want rooted-primitive error, got %v", prim, err)
		}
	}
	if _, err := c.CompileSequence(); err == nil {
		t.Fatal("empty sequence: want error")
	}
}

// TestSequenceCacheAndStats pins sequence caching and the aggregate
// fusion statistics: recompiling an identical sequence is a cache hit,
// the cached-sequence count is surfaced, and FusionStats accumulates the
// per-plan reports.
func TestSequenceCacheAndStats(t *testing.T) {
	c := costSystem(t, geo64, []int{8, 8})
	const s = 32
	m := 8 * s
	ds := []Collective{
		{Prim: AlltoAll, Dims: "10", Src: Span(0, m), Dst: At(2 * m), Level: IM},
		{Prim: ReduceScatter, Dims: "10", Src: Span(2*m, m), Dst: At(4 * m), Elem: elem.I32, Op: elem.Sum, Level: IM},
	}
	cp1, err := c.CompileSequence(ds...)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := c.CompileSequence(ds...)
	if err != nil {
		t.Fatal(err)
	}
	if cp1 != cp2 {
		t.Fatal("identical sequence did not hit the cache")
	}
	st := c.PlanCacheStats()
	if st.CachedSeqs != 1 {
		t.Fatalf("CachedSeqs = %d, want 1", st.CachedSeqs)
	}
	fs := c.FusionStats()
	if fs.PlansFused == 0 || fs.RotatesElided == 0 || fs.CostSaved <= 0 {
		t.Fatalf("fusion stats did not accumulate: %+v", fs)
	}
	if got := cp1.Members(); len(got) != 2 || got[0] != AlltoAll || got[1] != ReduceScatter {
		t.Fatalf("Members() = %v", got)
	}
	mc := cp1.MemberCosts()
	if len(mc) != 2 || mc[0].Total() <= 0 || mc[1].Total() <= 0 {
		t.Fatalf("MemberCosts() = %v", mc)
	}
	// The members' unfused costs sum to the report's CostBefore (same
	// adds, grouped differently — equal within float tolerance).
	sum := mc[0].Add(mc[1]).Total()
	before := cp1.FusionReport().CostBefore.Total()
	if diff := float64(sum - before); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("member costs sum %v != CostBefore %v", sum, before)
	}
	// Toggling fusion must not serve the fused plan.
	c.SetFuse(FuseOff)
	cp3, err := c.CompileSequence(ds...)
	if err != nil {
		t.Fatal(err)
	}
	if cp3 == cp1 {
		t.Fatal("FuseOff served a FuseFull-cached sequence")
	}
	if cp3.Cost().Total() <= cp1.Cost().Total() {
		t.Fatalf("unfused sequence cost %v not above fused %v", cp3.Cost().Total(), cp1.Cost().Total())
	}
}

// TestSequenceSubmitMatchesRun pins that a fused sequence behaves like
// any other plan on the async path: a lone submitted sequence charges
// exactly what a serial replay does.
func TestSequenceSubmitMatchesRun(t *testing.T) {
	sc := caseSpec{"2D-x", geo64, []int{8, 8}, "10"}
	const s = 32
	a := fuseComm(t, sc, FuseFull)
	b := fuseComm(t, sc, FuseFull)
	fillBoth(t, a, b, 21)
	m := 8 * s
	ds := []Collective{
		{Prim: AlltoAll, Dims: sc.dims, Src: Span(0, m), Dst: At(2 * m), Level: IM},
		{Prim: ReduceScatter, Dims: sc.dims, Src: Span(2*m, m), Dst: At(4 * m), Elem: elem.I32, Op: elem.Sum, Level: IM},
	}
	cpa, err := a.CompileSequence(ds...)
	if err != nil {
		t.Fatal(err)
	}
	cpb, err := b.CompileSequence(ds...)
	if err != nil {
		t.Fatal(err)
	}
	bdRun, err := cpa.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := cpb.Submit()
	bdSub, err := f.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if d := diffBreakdowns(bdRun, bdSub); d != "" {
		t.Fatalf("submitted sequence charge differs from serial: %s", d)
	}
	b.Flush()
	compareMram(t, "submit vs run", a, b)
}
