package core

import (
	"repro/internal/dpu"
	"repro/internal/dram"
	"repro/internal/elem"
	"repro/internal/host"
	"repro/internal/vec"
)

// This file defines the schedule IR every collective lowers to, plus the
// per-primitive lowering rules. A Schedule is an ordered list of typed
// steps; internal/core/exec.go holds the single executor that runs a
// schedule against a pluggable Backend (functional or cost-only).
//
// Design contract: a step carries BOTH the declarative description the
// cost-only backend needs (byte counts, column-transfer counts, charge
// lists) AND the functional work that moves real bytes. The executor
// applies the declarative charges for every backend, so the two backends
// charge identical amounts by construction; only bus-burst tallies and
// DPU-kernel accounting are computed twice (real vs. analytic), and the
// cross-backend equivalence test in exec_test.go pins them equal.
//
// Functional work comes in two parallel-safe shapes. Staged steps
// (StepBulk) carry a Modulate closure that transforms a whole staging
// buffer; the lowerings internally fan modulation out per communication
// group (Comm.groupsDo) — groups partition the PEs, so per-group writes
// are disjoint. Streaming steps (StepColumnStream) carry a list of
// streamSegs: each seg is a column-indexed loop whose iterations are
// mutually write-disjoint, which is what lets the executor shard a seg
// across the worker pool (internal/par) with byte-identical results at
// any worker count. Segs within one step execute in order with a barrier
// between them, preserving read-after-write dependencies across fused
// collective boundaries.

// ChargeKind classifies one host-side compute/memory charge of a step.
// Each kind maps to exactly one host.Host charge method.
type ChargeKind int

const (
	// ChargeDT is domain-transfer compute (8x8 byte transposes).
	ChargeDT ChargeKind = iota
	// ChargeScalarMod is the baseline's cache-hostile global modulation.
	ChargeScalarMod
	// ChargeLocalMod is cache-friendly local modulation (post-PR).
	ChargeLocalMod
	// ChargeSIMD is in-register modulation (shuffles/rotates/memcpy class).
	ChargeSIMD
	// ChargeReduce is vertical SIMD reduction.
	ChargeReduce
	// ChargeScalarReduce is the baseline's scalar reduction loops.
	ChargeScalarReduce
	// ChargeLocalReduce is reduction over PE-pre-reordered data.
	ChargeLocalReduce
	// ChargeHostMem is host main-memory traffic.
	ChargeHostMem
)

// Charge is one (kind, byte count) host charge.
type Charge struct {
	Kind  ChargeKind
	Bytes int64
}

// applyCharge dispatches one charge to the given host's cost model.
func applyCharge(h *host.Host, ch Charge) {
	switch ch.Kind {
	case ChargeDT:
		h.ChargeDT(ch.Bytes)
	case ChargeScalarMod:
		h.ChargeScalarMod(ch.Bytes)
	case ChargeLocalMod:
		h.ChargeLocalMod(ch.Bytes)
	case ChargeSIMD:
		h.ChargeSIMD(ch.Bytes)
	case ChargeReduce:
		h.ChargeReduce(ch.Bytes)
	case ChargeScalarReduce:
		h.ChargeScalarReduce(ch.Bytes)
	case ChargeLocalReduce:
		h.ChargeLocalReduce(ch.Bytes)
	case ChargeHostMem:
		h.ChargeHostMem(ch.Bytes)
	}
}

func applyCharges(h *host.Host, charges []Charge) {
	for _, ch := range charges {
		applyCharge(h, ch)
	}
}

// Step is one typed operation of a lowered collective.
type Step interface{ stepName() string }

// StepRotateBlocks runs the PE-assisted reordering kernel (§ V-A1):
// every PE's region [Off, Off+N*S) is treated as N blocks of S bytes and
// left-rotated by Rot(rank) blocks. The cost-only backend reproduces the
// kernel's MRAM/instruction accounting analytically. kern caches the
// built functional kernel (engine.go) so replays — including steps
// produced by rotation merging in the fusion pipeline — launch without
// rebuilding the closure.
type StepRotateBlocks struct {
	p    *plan
	Off  int
	N, S int
	Rot  func(rank int) int

	kern dpu.Kernel
}

func (*StepRotateBlocks) stepName() string { return "RotateBlocks" }

// StepBulk is one conventional host-memory phase: an optional staged
// BulkRead, host-side modulation over the staging buffer, an optional
// BulkWrite. Rooted primitives that keep results on the host set
// Write=false and let Modulate capture its output.
type StepBulk struct {
	Read      bool
	ReadOff   int
	ReadPerPE int

	Write      bool
	WriteOff   int
	WritePerPE int

	// Charges are the modulation/reduction/staging charges applied
	// between the read and the write (order within the step does not
	// affect the per-category breakdown).
	Charges []Charge

	// Modulate consumes the staging buffer (nil when Read is false) and
	// returns the PE-major buffer to write (ignored when Write is
	// false). Only the functional backend calls it; nil means identity.
	// The staging buffer is the host's reusable slab and the returned
	// buffer is typically the comm's modulation arena (Comm.bulkOut) —
	// both are fully overwritten by each run, so replays allocate no
	// fresh buffers.
	Modulate func(stag []byte) []byte
}

func (*StepBulk) stepName() string { return "Bulk" }

// streamSeg is one shardable loop of a streaming epoch: cols independent
// column iterations, each touching every entangled group once per
// read/write. The functional executor runs body over contiguous
// sub-ranges on per-shard streaming contexts (par.Do); iterations MUST be
// mutually write-disjoint — the lowerings guarantee it by construction
// (distinct iterations address distinct MRAM bursts or distinct host
// result lanes). setup, if set, runs serially on the executor goroutine
// before the fan-out (e.g. binding the run's rooted result buffers).
type streamSeg struct {
	c     *Comm
	cols  int
	setup func()
	body  func(sc *streamCtx, lo, hi int)
}

// RunShard implements par.Runner on the comm's per-shard stream contexts.
func (sg *streamSeg) RunShard(shard, lo, hi int) {
	sg.body(sg.c.streams[shard], lo, hi)
}

// StepColumnStream is one streaming transfer epoch of the optimized
// engine: burst columns move between host registers and every entangled
// group, with in-register shifts/transposes/reductions. Reads and Writes
// count column transfers (each touches every entangled group once — one
// burst per group), which is all the cost-only backend needs to reproduce
// the bus accounting. segs perform the real data movement and are
// executed by the functional backend only, inside the epoch, in order,
// each sharded across the worker pool.
type StepColumnStream struct {
	Reads, Writes int64
	Charges       []Charge
	segs          []*streamSeg
}

func (*StepColumnStream) stepName() string { return "ColumnStream" }

// StepHostCompute is host-only work with no PE traffic: assembling or
// storing rooted buffers, driver-side domain transfers of broadcast
// payloads. Run (optional) is functional-only.
type StepHostCompute struct {
	Charges []Charge
	Run     func()
}

func (*StepHostCompute) stepName() string { return "HostCompute" }

// StepNetTransfer is one inter-host network leg of a hierarchical
// cluster collective (§ IX-A): Rounds overlapped exchange rounds of
// Bytes payload each, priced by the parameterized network model
// (cost.NetParams via host.ChargeNetRounds) and placed on the network
// lane of the per-host timeline. Run (functional-only, optional) moves
// the real bytes through the cluster's shared staging — typically a
// rendezvous barrier with the peer hosts' executors around the exchange.
// The whole leg is one step, so a hierarchical collective's schedule
// stays a single plan that compiles, caches, fuses and replays like any
// other.
type StepNetTransfer struct {
	// Rounds is the number of overlapped exchange rounds; Bytes is the
	// per-round payload every host moves. Rounds 0 with a nil Run is a
	// no-op (elided by fusion).
	Rounds int
	Bytes  int64
	// Run is executed by the functional backend only.
	Run func()
}

func (*StepNetTransfer) stepName() string { return "NetTransfer" }

// StepSync charges the fixed host synchronization/launch overhead that
// ends every collective.
type StepSync struct{}

func (*StepSync) stepName() string { return "Sync" }

// Schedule is the IR of one collective call.
type Schedule struct {
	Name  string
	Steps []Step
}

func (s *Schedule) add(st Step) { s.Steps = append(s.Steps, st) }

// rotFwd/rotBwd are the standard pre/post rotation amounts of the
// PE-assisted reordering passes.
func rotFwd(rank int) int { return rank }
func rotBwd(rank int) int { return -rank }

// numPEBytes is the total byte count of a perPE-sized region over every
// PE — the size of a full staging buffer.
func (c *Comm) numPEBytes(perPE int) int64 {
	return int64(c.hc.sys.Geometry().NumPEs()) * int64(perPE)
}

// ---------------------------------------------------------------------
// AlltoAll (Figure 7)
// ---------------------------------------------------------------------

// lowerAlltoAll lowers one AlltoAll call. lvl must be a concrete
// effective level.
func (c *Comm) lowerAlltoAll(p *plan, srcOff, dstOff, s int, lvl Level) *Schedule {
	n := p.n
	m := n * s
	sched := &Schedule{Name: "AlltoAll/" + lvl.String()}
	switch lvl {
	case Baseline, PR:
		pr := lvl == PR
		if pr {
			sched.add(&StepRotateBlocks{p: p, Off: srcOff, N: n, S: s, Rot: rotFwd})
		}
		modKind := ChargeScalarMod
		if pr {
			modKind = ChargeLocalMod
		}
		sched.add(&StepBulk{
			Read: true, ReadOff: srcOff, ReadPerPE: m,
			Write: true, WriteOff: dstOff, WritePerPE: m,
			Charges: []Charge{{modKind, c.numPEBytes(m)}},
			Modulate: func(stag []byte) []byte {
				out := c.bulkOut(len(stag))
				c.groupsDo(len(p.groups), func(gi int) {
					grp := p.groups[gi]
					if pr {
						// Data is pre-rotated: slot k of rank i holds block
						// (i+k)%n. The host applies the local phase-B
						// movement: slot k of rank i goes to slot (n-k)%n of
						// rank (i+k)%n.
						for i, srcPE := range grp {
							for k := 0; k < n; k++ {
								j := (i + k) % n
								w := (n - k) % n
								copy(out[grp[j]*m+w*s:grp[j]*m+w*s+s], stag[srcPE*m+k*s:srcPE*m+k*s+s])
							}
						}
					} else {
						// Direct semantics: dst[j] block i = src[i] block j.
						for i, srcPE := range grp {
							for j, dstPE := range grp {
								copy(out[dstPE*m+i*s:dstPE*m+i*s+s], stag[srcPE*m+j*s:srcPE*m+j*s+s])
							}
						}
					}
				})
				return out
			},
		})
		if pr {
			sched.add(&StepRotateBlocks{p: p, Off: dstOff, N: n, S: s, Rot: rotBwd})
		}
	default: // IM or CM
		cm := lvl == CM
		ecols := s / 8
		cols := int64(n) * int64(ecols)
		colB := c.columnBytes()
		charges := []Charge{{ChargeSIMD, cols * colB}}
		if !cm {
			// Without cross-domain modulation every shift is transpose +
			// word shift + transpose; the transposes are the in-register
			// form of DT.
			charges = append(charges, Charge{ChargeDT, 2 * cols * colB})
		}
		sched.add(&StepRotateBlocks{p: p, Off: srcOff, N: n, S: s, Rot: rotFwd})
		sched.add(&StepColumnStream{
			Reads: cols, Writes: cols,
			Charges: charges,
			// Flattened (k, e) loop: every iteration reads burst column
			// k*s+e and writes column ((n-k)%n)*s+e — distinct columns for
			// distinct iterations, so the whole loop shards freely.
			segs: []*streamSeg{{c: c, cols: n * ecols, body: func(sc *streamCtx, lo, hi int) {
				for i := lo; i < hi; i++ {
					k := i / ecols
					e := (i % ecols) * 8
					w := (n - k) % n
					sc.readColumn(srcOff+k*s+e, sc.a)
					sc.shiftColumn(p, sc.b, sc.a, k)
					sc.writeColumn(dstOff+w*s+e, sc.b)
				}
			}}},
		})
		sched.add(&StepRotateBlocks{p: p, Off: dstOff, N: n, S: s, Rot: rotBwd})
	}
	sched.add(&StepSync{})
	return sched
}

// ---------------------------------------------------------------------
// ReduceScatter and Reduce (Figure 8(b), § V-B2/B4)
// ---------------------------------------------------------------------

func (c *Comm) lowerReduceScatter(p *plan, srcOff, dstOff, s int, t elem.Type, op elem.Op, lvl Level) *Schedule {
	n := p.n
	m := n * s
	sched := &Schedule{Name: "ReduceScatter/" + lvl.String()}
	switch lvl {
	case Baseline, PR:
		pr := lvl == PR
		if pr {
			sched.add(&StepRotateBlocks{p: p, Off: srcOff, N: n, S: s, Rot: rotFwd})
		}
		redKind := ChargeScalarReduce
		if pr {
			redKind = ChargeLocalReduce
		}
		sched.add(&StepBulk{
			Read: true, ReadOff: srcOff, ReadPerPE: m,
			Write: true, WriteOff: dstOff, WritePerPE: s,
			Charges: []Charge{{redKind, c.numPEBytes(m)}},
			Modulate: func(stag []byte) []byte {
				out := c.bulkOut(len(p.rankOf) * s)
				c.groupsDo(len(p.groups), func(gi int) {
					grp := p.groups[gi]
					for pIdx, dstPE := range grp {
						blk := out[dstPE*s : (dstPE+1)*s]
						elem.Fill(t, blk, op.Identity(t))
						for i, srcPE := range grp {
							// Without PR, block p sits at slot p; with PR,
							// rank i pre-rotated left by i so block p is at
							// slot (p-i)%n.
							slot := pIdx
							if pr {
								slot = ((pIdx-i)%n + n) % n
							}
							elem.ReduceInto(t, op, blk, stag[srcPE*m+slot*s:srcPE*m+slot*s+s])
						}
					}
				})
				return out
			},
		})
	default: // IM
		noDT := t == elem.I8 // host can interpret 8-bit data in PIM domain
		iters := int64(s / 8)
		colB := c.columnBytes()
		charges := []Charge{
			{ChargeSIMD, int64(n) * iters * colB},
			{ChargeReduce, int64(n) * iters * colB},
		}
		if !noDT {
			charges = append(charges, Charge{ChargeDT, int64(n+1) * iters * colB})
		}
		sched.add(&StepRotateBlocks{p: p, Off: srcOff, N: n, S: s, Rot: rotFwd})
		sched.add(&StepColumnStream{
			Reads: int64(n) * iters, Writes: iters,
			Charges: charges,
			// Per element column e: reduce the n slot bursts into the
			// shard accumulator, write one burst. Iterations touch
			// distinct columns — shardable.
			segs: []*streamSeg{{c: c, cols: s / 8, body: func(sc *streamCtx, lo, hi int) {
				for i := lo; i < hi; i++ {
					e := i * 8
					sc.fillIdentity(t, op, sc.ac) // host byte order
					for k := 0; k < n; k++ {
						sc.readColumn(srcOff+k*s+e, sc.a)
						sc.shiftColumn(p, sc.b, sc.a, k) // lane = destination rank
						sc.transposeColumn(sc.b)
						sc.reduceColumnInto(t, op, sc.ac, sc.b)
					}
					sc.transposeColumn(sc.ac)
					sc.writeColumn(dstOff+e, sc.ac)
				}
			}}},
		})
	}
	sched.add(&StepSync{})
	return sched
}

// lowerReduce lowers the rooted Reduce. The per-group host results land
// in cp's rooted result buffers (cp.rootedBufs; published via Results);
// the functional backend fills them, the cost-only backend leaves the
// results nil.
func (c *Comm) lowerReduce(p *plan, srcOff, s int, t elem.Type, op elem.Op, lvl Level, cp *CompiledPlan) *Schedule {
	n := p.n
	m := n * s
	sched := &Schedule{Name: "Reduce/" + lvl.String()}
	switch lvl {
	case Baseline, PR:
		pr := lvl == PR
		if pr {
			sched.add(&StepRotateBlocks{p: p, Off: srcOff, N: n, S: s, Rot: rotFwd})
		}
		redKind := ChargeScalarReduce
		if pr {
			redKind = ChargeLocalReduce
		}
		sched.add(&StepBulk{
			Read: true, ReadOff: srcOff, ReadPerPE: m,
			Charges: []Charge{
				{redKind, c.numPEBytes(m)},
				{ChargeHostMem, int64(len(p.groups)) * int64(m)}, // result store
			},
			Modulate: func(stag []byte) []byte {
				res := cp.rootedBufs(len(p.groups), m)
				c.groupsDo(len(p.groups), func(g int) {
					grp := p.groups[g]
					elem.Fill(t, res[g], op.Identity(t))
					for i, srcPE := range grp {
						src := stag[srcPE*m : (srcPE+1)*m]
						if pr {
							// Undo the rotation block-wise while reducing.
							for k := 0; k < n; k++ {
								blk := (k + i) % n
								elem.ReduceInto(t, op, res[g][blk*s:blk*s+s], src[k*s:k*s+s])
							}
						} else {
							elem.ReduceInto(t, op, res[g], src)
						}
					}
				})
				return nil
			},
		})
	default: // IM
		noDT := t == elem.I8
		iters := int64(s / 8)
		colB := c.columnBytes()
		charges := []Charge{
			{ChargeSIMD, int64(n) * iters * colB},
			{ChargeReduce, int64(n) * iters * colB},
		}
		if !noDT {
			charges = append(charges, Charge{ChargeDT, int64(n) * iters * colB})
		}
		charges = append(charges, Charge{ChargeHostMem, int64(len(p.groups)) * int64(m)}) // result store
		var res [][]byte
		sched.add(&StepRotateBlocks{p: p, Off: srcOff, N: n, S: s, Rot: rotFwd})
		sched.add(&StepColumnStream{
			Reads:   int64(n) * iters,
			Charges: charges,
			segs: []*streamSeg{{
				c: c, cols: s / 8,
				setup: func() { res = cp.rootedBufs(len(p.groups), m) },
				body: func(sc *streamCtx, lo, hi int) {
					for i := lo; i < hi; i++ {
						e := i * 8
						sc.fillIdentity(t, op, sc.ac)
						for k := 0; k < n; k++ {
							sc.readColumn(srcOff+k*s+e, sc.a)
							sc.shiftColumn(p, sc.b, sc.a, k)
							sc.transposeColumn(sc.b)
							sc.reduceColumnInto(t, op, sc.ac, sc.b)
						}
						// ac lane (rank j) = reduced block j, element column
						// e: store to the per-group host result buffers —
						// distinct e bytes per iteration, so shards don't
						// overlap.
						for g, grp := range p.groups {
							for j, pe := range grp {
								copy(res[g][j*s+e:j*s+e+8], sc.ac.lane(pe))
							}
						}
					}
				},
			}},
		})
	}
	sched.add(&StepSync{})
	return sched
}

// ---------------------------------------------------------------------
// AllReduce (Figure 8(c), § V-B3)
// ---------------------------------------------------------------------

func (c *Comm) lowerAllReduce(p *plan, srcOff, dstOff, s int, t elem.Type, op elem.Op, lvl Level) *Schedule {
	n := p.n
	m := n * s
	sched := &Schedule{Name: "AllReduce/" + lvl.String()}
	switch lvl {
	case Baseline, PR:
		pr := lvl == PR
		if pr {
			sched.add(&StepRotateBlocks{p: p, Off: srcOff, N: n, S: s, Rot: rotFwd})
		}
		redKind := ChargeScalarReduce
		if pr {
			redKind = ChargeLocalReduce
		}
		sched.add(&StepBulk{
			Read: true, ReadOff: srcOff, ReadPerPE: m,
			Write: true, WriteOff: dstOff, WritePerPE: m,
			// Reduction pass over all input plus a memcpy-class
			// replication pass over all output.
			Charges: []Charge{
				{redKind, c.numPEBytes(m)},
				{ChargeSIMD, c.numPEBytes(m)},
			},
			Modulate: func(stag []byte) []byte {
				out := c.bulkOut(len(stag))
				c.groupsDoScratch(len(p.groups), m, func(g int, red []byte) {
					grp := p.groups[g]
					elem.Fill(t, red, op.Identity(t))
					for i, srcPE := range grp {
						src := stag[srcPE*m : (srcPE+1)*m]
						if pr {
							for k := 0; k < n; k++ {
								blk := (k + i) % n
								elem.ReduceInto(t, op, red[blk*s:blk*s+s], src[k*s:k*s+s])
							}
						} else {
							elem.ReduceInto(t, op, red, src)
						}
					}
					for _, dstPE := range grp {
						copy(out[dstPE*m:(dstPE+1)*m], red)
					}
				})
				return out
			},
		})
	default: // IM
		// Fused streaming ReduceScatter + AllGather: per element column,
		// reduce the n slot bursts into an accumulator, domain-transfer
		// back once, write it n times with incremental shifts; the PEs
		// then fix block order locally. Host memory is never touched.
		noDT := t == elem.I8
		iters := int64(s / 8)
		colB := c.columnBytes()
		charges := []Charge{
			{ChargeSIMD, 2 * int64(n) * iters * colB},
			{ChargeReduce, int64(n) * iters * colB},
		}
		if !noDT {
			charges = append(charges, Charge{ChargeDT, int64(n+1) * iters * colB})
		}
		sched.add(&StepRotateBlocks{p: p, Off: srcOff, N: n, S: s, Rot: rotFwd})
		sched.add(&StepColumnStream{
			Reads: int64(n) * iters, Writes: int64(n) * iters,
			Charges: charges,
			segs: []*streamSeg{{c: c, cols: s / 8, body: func(sc *streamCtx, lo, hi int) {
				for i := lo; i < hi; i++ {
					e := i * 8
					sc.fillIdentity(t, op, sc.ac) // host byte order
					for k := 0; k < n; k++ {
						sc.readColumn(srcOff+k*s+e, sc.a)
						sc.shiftColumn(p, sc.b, sc.a, k)
						sc.transposeColumn(sc.b)
						sc.reduceColumnInto(t, op, sc.ac, sc.b)
					}
					// One DT back to PIM domain serves all n outbound
					// writes, whose shifts are pure redistribution.
					sc.transposeColumn(sc.ac)
					for k := 0; k < n; k++ {
						sc.shiftColumn(p, sc.b, sc.ac, k)
						w := (n - k) % n
						sc.writeColumn(dstOff+w*s+e, sc.b)
					}
				}
			}}},
		})
		sched.add(&StepRotateBlocks{p: p, Off: dstOff, N: n, S: s, Rot: rotBwd})
	}
	sched.add(&StepSync{})
	return sched
}

// ---------------------------------------------------------------------
// AllGather and Gather (Figure 8(a), § V-B1/B4)
// ---------------------------------------------------------------------

func (c *Comm) lowerAllGather(p *plan, srcOff, dstOff, s int, lvl Level) *Schedule {
	n := p.n
	sched := &Schedule{Name: "AllGather/" + lvl.String()}
	colB := c.columnBytes()
	switch lvl {
	case Baseline, PR:
		// Conventional path; PE-assisted reordering only removes
		// per-rank layout bookkeeping here, which is negligible, so
		// Baseline and PR share the lowering.
		gatherPEMajorInto := func(out, stag []byte) {
			c.groupsDo(len(p.groups), func(gi int) {
				grp := p.groups[gi]
				for _, dstPE := range grp {
					for i, srcPE := range grp {
						copy(out[dstPE*n*s+i*s:dstPE*n*s+i*s+s], stag[srcPE*s:(srcPE+1)*s])
					}
				}
			})
		}
		if len(p.groups) == 1 {
			// Single group: the gathered buffer is identical for every
			// PE, so the driver's fast broadcast applies — one domain
			// transfer total (§ VIII-E). The gathered image lives in a
			// plan-owned buffer (allocated on first run) shared by the
			// assembly and broadcast steps of this lowering.
			var out []byte
			perPE := n * s
			sched.add(&StepBulk{
				Read: true, ReadOff: srcOff, ReadPerPE: s,
				Charges: []Charge{{ChargeLocalMod, int64(n * s)}},
				Modulate: func(stag []byte) []byte {
					if out == nil {
						out = make([]byte, len(p.rankOf)*perPE)
					}
					gatherPEMajorInto(out, stag)
					return nil
				},
			})
			sched.add(&StepHostCompute{
				Charges: []Charge{
					{ChargeDT, int64(perPE)}, // DT once, reused for all PEs
					{ChargeHostMem, int64(perPE)},
				},
			})
			sched.add(&StepColumnStream{
				Writes:  int64(perPE / 8),
				Charges: []Charge{{ChargeSIMD, int64(perPE/8) * colB}},
				segs: []*streamSeg{c.streamBroadcast(dstOff, perPE, func(pe, e int) []byte {
					return out[pe*perPE+e:]
				})},
			})
		} else {
			sched.add(&StepBulk{
				Read: true, ReadOff: srcOff, ReadPerPE: s,
				Write: true, WriteOff: dstOff, WritePerPE: n * s,
				// Replication is sequential copying (memcpy class).
				Charges: []Charge{{ChargeSIMD, c.numPEBytes(n * s)}},
				Modulate: func(stag []byte) []byte {
					out := c.bulkOut(len(p.rankOf) * n * s)
					gatherPEMajorInto(out, stag)
					return out
				},
			})
		}
	default: // IM or CM
		cm := lvl == CM
		iters := int64(s / 8)
		charges := []Charge{{ChargeSIMD, int64(n) * iters * colB}}
		if !cm {
			// One inbound transpose per read, one outbound per write.
			charges = append(charges, Charge{ChargeDT, int64(n+1) * iters * colB})
		}
		sched.add(&StepColumnStream{
			Reads: iters, Writes: int64(n) * iters,
			Charges: charges,
			segs: []*streamSeg{{c: c, cols: s / 8, body: func(sc *streamCtx, lo, hi int) {
				for i := lo; i < hi; i++ {
					e := i * 8
					sc.readColumn(srcOff+e, sc.a)
					for k := 0; k < n; k++ {
						sc.shiftColumn(p, sc.b, sc.a, k)
						w := (n - k) % n
						sc.writeColumn(dstOff+w*s+e, sc.b)
					}
				}
			}}},
		})
		sched.add(&StepRotateBlocks{p: p, Off: dstOff, N: n, S: s, Rot: rotBwd})
	}
	sched.add(&StepSync{})
	return sched
}

func (c *Comm) lowerGather(p *plan, srcOff, s int, lvl Level, cp *CompiledPlan) *Schedule {
	n := p.n
	sched := &Schedule{Name: "Gather/" + lvl.String()}
	if lvl == Baseline {
		sched.add(&StepBulk{
			Read: true, ReadOff: srcOff, ReadPerPE: s,
			Charges: []Charge{{ChargeHostMem, c.numPEBytes(s)}}, // copy out of staging
			Modulate: func(stag []byte) []byte {
				res := cp.rootedBufs(len(p.groups), n*s)
				c.groupsDo(len(p.groups), func(g int) {
					grp := p.groups[g]
					for i, pe := range grp {
						copy(res[g][i*s:], stag[pe*s:(pe+1)*s])
					}
				})
				return nil
			},
		})
	} else { // IM: stream straight into the user buffers
		iters := int64(s / 8)
		colB := c.columnBytes()
		var res [][]byte
		sched.add(&StepColumnStream{
			Reads: iters,
			Charges: []Charge{
				{ChargeDT, iters * colB},
				{ChargeHostMem, int64(len(p.groups)) * int64(n*s)},
			},
			segs: []*streamSeg{{
				c: c, cols: s / 8,
				setup: func() { res = cp.rootedBufs(len(p.groups), n*s) },
				body: func(sc *streamCtx, lo, hi int) {
					for i := lo; i < hi; i++ {
						e := i * 8
						sc.readColumn(srcOff+e, sc.a)
						sc.transposeColumn(sc.a)
						for g, grp := range p.groups {
							for j, pe := range grp {
								copy(res[g][j*s+e:j*s+e+8], sc.a.lane(pe))
							}
						}
					}
				},
			}},
		})
	}
	sched.add(&StepSync{})
	return sched
}

// ---------------------------------------------------------------------
// Scatter and Broadcast (§ V-B4, § VIII-B)
// ---------------------------------------------------------------------

func (c *Comm) lowerScatter(p *plan, bufs [][]byte, dstOff, s int, lvl Level) *Schedule {
	n := p.n
	sched := &Schedule{Name: "Scatter/" + lvl.String()}
	if lvl == Baseline {
		// Conventional: assemble a PE-major staging buffer, then bulk
		// write with DT.
		sched.add(&StepBulk{
			Write: true, WriteOff: dstOff, WritePerPE: s,
			Charges: []Charge{{ChargeHostMem, c.numPEBytes(s)}}, // staging assembly
			Modulate: func([]byte) []byte {
				stag := c.bulkOut(len(p.rankOf) * s)
				c.groupsDo(len(p.groups), func(g int) {
					grp := p.groups[g]
					for i, pe := range grp {
						copy(stag[pe*s:(pe+1)*s], bufs[g][i*s:(i+1)*s])
					}
				})
				return stag
			},
		})
	} else { // IM: stream user buffers straight into bursts
		iters := int64(s / 8)
		colB := c.columnBytes()
		sched.add(&StepColumnStream{
			Writes: iters,
			Charges: []Charge{
				{ChargeSIMD, iters * colB},
				{ChargeDT, iters * colB},
				{ChargeHostMem, int64(len(p.groups)) * int64(n*s)}, // user-buffer reads
			},
			segs: []*streamSeg{c.streamBroadcast(dstOff, s, func(pe, e int) []byte {
				return bufs[p.groupOf[pe]][int(p.rankOf[pe])*s+e:]
			})},
		})
	}
	sched.add(&StepSync{})
	return sched
}

func (c *Comm) lowerBroadcast(p *plan, bufs [][]byte, dstOff, s int) *Schedule {
	// The native driver path is already near-optimal (§ VIII-B): one
	// domain transfer per payload serves all PEs, so all optimization
	// levels share this lowering.
	sched := &Schedule{Name: "Broadcast"}
	iters := int64(s / 8)
	sched.add(&StepHostCompute{
		Charges: []Charge{
			{ChargeHostMem, int64(len(p.groups)) * int64(s)},
			{ChargeDT, int64(len(p.groups)) * int64(s)}, // DT once per payload
		},
	})
	sched.add(&StepColumnStream{
		Writes:  iters,
		Charges: []Charge{{ChargeSIMD, iters * c.columnBytes()}},
		segs: []*streamSeg{c.streamBroadcast(dstOff, s, func(pe, e int) []byte {
			return bufs[p.groupOf[pe]][e:]
		})},
	})
	sched.add(&StepSync{})
	return sched
}

// streamBroadcast builds the seg that streams host-side bytes into every
// PE's region [dstOff, dstOff+perPE): for each element column it
// assembles one register per entangled group from lane(pe, e) and writes
// it in PIM byte order. Iterations touch distinct columns, so the seg
// shards freely. Shared by the Scatter/Broadcast/single-group-AllGather
// write paths.
func (c *Comm) streamBroadcast(dstOff, perPE int, lane func(pe, e int) []byte) *streamSeg {
	nEG := c.hc.sys.Geometry().NumGroups()
	return &streamSeg{c: c, cols: perPE / 8, body: func(sc *streamCtx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := i * 8
			for g := 0; g < nEG; g++ {
				var r vec.Reg
				for chip := 0; chip < dram.ChipsPerRank; chip++ {
					r.SetLane(chip, lane(g*dram.ChipsPerRank+chip, e))
				}
				sc.sh.WriteBurst(g, dstOff+e, sc.vu.Transpose8x8(r))
			}
		}
	}}
}
