package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// This file implements the descriptor-based collective API: one
// Collective struct describes any of the eight primitives, and exactly
// three entry points consume it — Compile (plan once), Run (one-shot)
// and Submit (asynchronous). The 24 positional-argument methods
// (AlltoAll/CompileAlltoAll/SubmitAlltoAll, ...) are thin shims that
// build a Collective and call these entry points, so every execution
// path — one-shot, compiled replay, async, tenant-scoped — funnels
// through the same normalization and validation.
//
// All offsets in a Collective are relative to the arena the call is
// resolved against: the whole per-PE MRAM for a plain Comm, or the
// tenant's carved window for a Tenant session (tenant.go). Resolution
// validates every region against the arena bounds and only then
// translates to absolute MRAM offsets, which is what guarantees tenants
// cannot name — let alone alias — MRAM outside their arena.

// Region is a per-PE MRAM byte range handle [Off, Off+Bytes). Offsets
// are arena-relative (see Collective). For region roles whose size the
// primitive implies (e.g. an AllGather destination is always n× the
// source), Bytes may be left zero; a non-zero Bytes must match the
// implied size exactly, which turns silent footprint mistakes into
// compile errors.
type Region struct {
	Off   int
	Bytes int
}

// At returns a Region at off whose size is implied by the primitive.
func At(off int) Region { return Region{Off: off} }

// Span returns the fully specified Region [off, off+bytes).
func Span(off, bytes int) Region { return Region{Off: off, Bytes: bytes} }

// Collective describes one collective call. The zero value of every
// optional field means "default": Level zero is Auto (the autotuner
// picks the cheapest applicable level), and a Dst/Src region with zero
// Bytes takes the size the primitive implies.
//
// Field use by primitive:
//
//	AlltoAll       Src (bytes/PE), Dst (same size)
//	ReduceScatter  Src (bytes/PE), Dst (Src/n), Elem, Op
//	AllReduce      Src (bytes/PE), Dst (same size), Elem, Op
//	AllGather      Src (contribution), Dst (n×Src)
//	Scatter        Hosts (one buffer per group), Dst (bytes/PE)
//	Gather         Src (bytes/PE); results via CompiledPlan/Future Results
//	Reduce         Src (bytes/PE), Elem, Op; results via Results
//	Broadcast      Hosts (one payload per group), Dst
//
// Hosts buffers are bound by reference: a compiled Scatter/Broadcast
// plan reads their current contents on every Run.
type Collective struct {
	// Prim selects the primitive.
	Prim Primitive
	// Dims is the communication-dimension bitmap (e.g. "10" for the
	// x axis of a 2-D hypercube; see DimsString).
	Dims string
	// Src is the per-PE source region (unused for Scatter/Broadcast,
	// whose input is host-side).
	Src Region
	// Dst is the per-PE destination region (unused for Gather/Reduce,
	// whose output is host-side).
	Dst Region
	// Elem and Op configure the reducing primitives (ReduceScatter,
	// AllReduce, Reduce); other primitives ignore them.
	Elem elem.Type
	Op   elem.Op
	// Level selects the optimization level; the zero value is Auto.
	Level Level
	// Algorithm selects the lowering algorithm (algorithm.go); the zero
	// value is AlgoAuto. With an explicit Level, AlgoAuto resolves to
	// AlgoReference (the built-in lowering); with Level Auto the
	// autotuner searches (algorithm x level). An explicit algorithm with
	// Level Auto searches only that algorithm's applicable levels.
	Algorithm Algorithm
	// Hosts carries the host-side payloads of Scatter and Broadcast:
	// one buffer per communication group, in group order. On a
	// cost-only backend Scatter accepts nil (sizes are implied).
	Hosts [][]byte
}

// arena is the per-PE MRAM window a Collective's regions are resolved
// against. base is BankBurstBytes-aligned, so arena-relative alignment
// equals absolute alignment.
type arena struct{ base, size int }

// fullArena is the whole per-PE MRAM: the window of a plain Comm.
func (c *Comm) fullArena() arena { return arena{0, c.hc.sys.MramSize()} }

// checkArenaRegion validates an arena-relative region common to all PEs.
func checkArenaRegion(ar arena, off, n int) error {
	if off < 0 || n < 0 || off+n > ar.size {
		return fmt.Errorf("core: region [%d,%d) exceeds arena size %d", off, off+n, ar.size)
	}
	if off%dram.BankBurstBytes != 0 {
		return fmt.Errorf("core: offset %d not %d-byte aligned", off, dram.BankBurstBytes)
	}
	if n%dram.BankBurstBytes != 0 {
		return fmt.Errorf("core: size %d not a multiple of %d", n, dram.BankBurstBytes)
	}
	return nil
}

// impliedBytes validates an optional explicit region size against the
// size the primitive implies for that role.
func impliedBytes(role string, got, implied int) error {
	if got != 0 && got != implied {
		return fmt.Errorf("core: %s region has %d bytes, want %d (or 0 for the implied size)", role, got, implied)
	}
	return nil
}

// Compile compiles the collective described by d — validation, Auto
// resolution, lowering to schedule IR, charge precomputation — into a
// CompiledPlan ready for repeated Run/Submit. Repeated Compile calls
// with an equal descriptor return the cached plan.
func (c *Comm) Compile(d Collective) (*CompiledPlan, error) {
	return c.compileIn(c.fullArena(), nil, d)
}

// Run compiles (or fetches the cached plan for) d and executes one
// replay, returning the run's cost breakdown. Rooted primitives
// (Gather, Reduce) leave their results on the plan: use Compile and
// CompiledPlan.Results to read them.
func (c *Comm) Run(d Collective) (cost.Breakdown, error) {
	cp, err := c.Compile(d)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cp.Run()
}

// Submit compiles (or fetches the cached plan for) d and enqueues one
// asynchronous execution, returning its Future. See CompiledPlan.Submit
// for queue and hazard-ordering semantics.
func (c *Comm) Submit(d Collective) (*Future, error) {
	cp, err := c.Compile(d)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// AutoLevelOf returns the concrete level the Auto pseudo-level resolves
// to for descriptor d (whatever d.Level says), under d's algorithm
// constraint.
func (c *Comm) AutoLevelOf(d Collective) (Level, error) {
	bytesPerPE := d.Src.Bytes
	if d.Prim == Scatter || d.Prim == Broadcast {
		bytesPerPE = d.Dst.Bytes
	}
	inPlace := d.Prim == AlltoAll && d.Src.Off == d.Dst.Off
	dec, err := c.autoResolve(d.Prim, d.Dims, bytesPerPE, d.Elem, d.Op, d.Algorithm, inPlace)
	if err != nil {
		return 0, err
	}
	return dec.lvl, nil
}

// AutoResolveOf returns the (algorithm, level) pair descriptor d
// resolves to: the autotuner's pick where either axis is Auto, the
// explicit value (with AlgoAuto mapped to AlgoReference, and the level
// mapped to its effective value) where it is not. This is exactly what
// Compile would resolve d to, without compiling anything.
func (c *Comm) AutoResolveOf(d Collective) (Algorithm, Level, error) {
	if d.Level != Auto {
		alg := d.Algorithm
		if alg == AlgoAuto {
			alg = AlgoReference
		}
		return alg, EffectiveLevel(d.Prim, d.Level), nil
	}
	bytesPerPE := d.Src.Bytes
	if d.Prim == Scatter || d.Prim == Broadcast {
		bytesPerPE = d.Dst.Bytes
	}
	inPlace := d.Prim == AlltoAll && d.Src.Off == d.Dst.Off
	dec, err := c.autoResolve(d.Prim, d.Dims, bytesPerPE, d.Elem, d.Op, d.Algorithm, inPlace)
	if err != nil {
		return 0, 0, err
	}
	return dec.algo, dec.lvl, nil
}

// compileIn resolves d against the arena and compiles it; owner is the
// tenant the resulting plan is charged to (nil for a plain Comm). The
// single funnel behind Compile/Run/Submit and their positional shims.
func (c *Comm) compileIn(ar arena, owner *Tenant, d Collective) (*CompiledPlan, error) {
	spec, err := c.specIn(ar, d)
	if err != nil {
		return nil, err
	}
	cp := c.compiledPlan(spec)
	if err := cp.adopt(owner); err != nil {
		return nil, err
	}
	return cp, nil
}

// CompileSequence compiles ds as one fused multi-collective plan: the
// members are validated and lowered in order, their schedules
// concatenate, and the fusion pipeline (fuse.go) rewrites across the
// member boundaries — interior synchronizations collapse, an inverse
// rotate/unrotate pair spanning two members cancels, back-to-back
// transfer epochs coalesce. The resulting plan Runs/Submits as a single
// unit whose functional result is byte-identical to running the members
// serially; with fusion off the sequence executes the members' schedules
// verbatim. Rooted primitives (Gather, Reduce) cannot join a sequence —
// their results live on the host; compile them separately.
func (c *Comm) CompileSequence(ds ...Collective) (*CompiledPlan, error) {
	return c.compileSequenceIn(c.fullArena(), nil, ds)
}

// compileSequenceIn is CompileSequence resolved against an arena and an
// owning tenant — the sequence analogue of compileIn.
func (c *Comm) compileSequenceIn(ar arena, owner *Tenant, ds []Collective) (*CompiledPlan, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("core: empty collective sequence")
	}
	if len(ds) == 1 {
		return c.compileIn(ar, owner, ds[0])
	}
	specs := make([]planSpec, len(ds))
	for i, d := range ds {
		if d.Prim == Gather || d.Prim == Reduce {
			return nil, fmt.Errorf("sequence[%d]: %s: rooted primitives cannot join a fused sequence (their results live on the host); compile them separately",
				i, d.Prim.LongName())
		}
		sp, err := c.specIn(ar, d)
		if err != nil {
			return nil, fmt.Errorf("sequence[%d]: %w", i, err)
		}
		specs[i] = sp
	}
	cp := c.compiledSequence(specs)
	if err := cp.adopt(owner); err != nil {
		return nil, err
	}
	return cp, nil
}

// specIn validates d against the arena, resolves Auto, and returns the
// plan spec (cache key, MRAM footprint, lowering closure) without
// compiling anything — the shared front half of compileIn and
// compileSequenceIn.
func (c *Comm) specIn(ar arena, d Collective) (spec planSpec, err error) {
	defer func() {
		if err != nil {
			err = fmt.Errorf("%s: %w", d.Prim.LongName(), err)
		}
	}()
	if d.Hosts != nil && !hostInput(d.Prim) {
		return planSpec{}, fmt.Errorf("core: takes no host payload (Hosts must be nil)")
	}
	if hostInput(d.Prim) && d.Src != (Region{}) {
		return planSpec{}, fmt.Errorf("core: input is host-side (Hosts), not a Src region")
	}
	if (d.Prim == Gather || d.Prim == Reduce) && d.Dst != (Region{}) {
		return planSpec{}, fmt.Errorf("core: output is host-side (Results), not a Dst region")
	}
	switch d.Prim {
	case AlltoAll:
		return c.specAlltoAll(ar, d)
	case ReduceScatter:
		return c.specReduceScatter(ar, d)
	case AllReduce:
		return c.specAllReduce(ar, d)
	case AllGather:
		return c.specAllGather(ar, d)
	case Scatter:
		return c.specScatter(ar, d)
	case Gather:
		return c.specGather(ar, d)
	case Reduce:
		return c.specReduce(ar, d)
	case Broadcast:
		return c.specBroadcast(ar, d)
	default:
		return planSpec{}, fmt.Errorf("core: unknown primitive %v", d.Prim)
	}
}

// resolveAlgoLevel resolves the descriptor's (Algorithm, Level) pair to
// concrete values: an explicit level keeps the pre-algorithm fast path
// (AlgoAuto maps to AlgoReference — no search, identical plans and
// costs); Level Auto hands the pair to the autotuner, constrained to
// d.Algorithm when that is explicit. The returned algorithm still needs
// a checkAlgo applicability pass once the caller has built the AlgoEnv.
func (c *Comm) resolveAlgoLevel(d Collective, bytesPerPE int, inPlace bool) (Algorithm, Level, error) {
	if d.Level != Auto {
		alg := d.Algorithm
		if alg == AlgoAuto {
			alg = AlgoReference
		}
		return alg, EffectiveLevel(d.Prim, d.Level), nil
	}
	dec, err := c.autoResolve(d.Prim, d.Dims, bytesPerPE, d.Elem, d.Op, d.Algorithm, inPlace)
	if err != nil {
		return 0, 0, err
	}
	return dec.algo, dec.lvl, nil
}

func (c *Comm) specAlltoAll(ar arena, d Collective) (planSpec, error) {
	m := d.Src.Bytes
	if err := impliedBytes("Dst", d.Dst.Bytes, m); err != nil {
		return planSpec{}, err
	}
	p, err := c.plan(d.Dims)
	if err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Src.Off, m); err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Dst.Off, m); err != nil {
		return planSpec{}, err
	}
	inPlace := d.Src.Off == d.Dst.Off
	if overlap(d.Src.Off, m, d.Dst.Off, m) && !inPlace {
		return planSpec{}, fmt.Errorf("core: src [%d,%d) and dst [%d,%d) overlap",
			d.Src.Off, d.Src.Off+m, d.Dst.Off, d.Dst.Off+m)
	}
	s, err := blockSize(m, p.n)
	if err != nil {
		return planSpec{}, err
	}
	alg, eff, err := c.resolveAlgoLevel(d, m, inPlace)
	if err != nil {
		return planSpec{}, err
	}
	if err := checkInPlace(AlltoAll, eff, inPlace); err != nil {
		return planSpec{}, err
	}
	srcOff, dstOff := ar.base+d.Src.Off, ar.base+d.Dst.Off
	env := &AlgoEnv{c: c, p: p, prim: AlltoAll, eff: eff, srcOff: srcOff, dstOff: dstOff, m: m, s: s}
	if err := checkAlgo(alg, env); err != nil {
		return planSpec{}, err
	}
	key := planKey{prim: AlltoAll, dims: d.Dims, srcOff: srcOff, dstOff: dstOff, bytes: m, lvl: eff, algo: alg}
	var regs planRegions
	regs.srcRegion(srcOff, m, eff >= PR)
	regs.write(dstOff, m)
	return planSpec{key: key, regs: regs, lower: func(*CompiledPlan) *Schedule {
		return algoLower(alg, env, func() *Schedule {
			return c.lowerAlltoAll(p, srcOff, dstOff, s, eff)
		})
	}}, nil
}

func (c *Comm) specReduceScatter(ar arena, d Collective) (planSpec, error) {
	m := d.Src.Bytes
	p, err := c.plan(d.Dims)
	if err != nil {
		return planSpec{}, err
	}
	if err := checkElem(d.Elem, d.Op); err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Src.Off, m); err != nil {
		return planSpec{}, err
	}
	s, err := blockSize(m, p.n)
	if err != nil {
		return planSpec{}, err
	}
	if err := impliedBytes("Dst", d.Dst.Bytes, s); err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Dst.Off, s); err != nil {
		return planSpec{}, err
	}
	if overlap(d.Src.Off, m, d.Dst.Off, s) {
		return planSpec{}, fmt.Errorf("core: src and dst regions overlap")
	}
	alg, eff, err := c.resolveAlgoLevel(d, m, false)
	if err != nil {
		return planSpec{}, err
	}
	srcOff, dstOff := ar.base+d.Src.Off, ar.base+d.Dst.Off
	env := &AlgoEnv{c: c, p: p, prim: ReduceScatter, eff: eff, srcOff: srcOff, dstOff: dstOff, m: m, s: s, t: d.Elem, op: d.Op}
	if err := checkAlgo(alg, env); err != nil {
		return planSpec{}, err
	}
	key := planKey{prim: ReduceScatter, dims: d.Dims, srcOff: srcOff, dstOff: dstOff, bytes: m, elemType: d.Elem, op: d.Op, lvl: eff, algo: alg}
	var regs planRegions
	regs.srcRegion(srcOff, m, eff >= PR)
	regs.write(dstOff, s)
	return planSpec{key: key, regs: regs, lower: func(*CompiledPlan) *Schedule {
		return algoLower(alg, env, func() *Schedule {
			return c.lowerReduceScatter(p, srcOff, dstOff, s, d.Elem, d.Op, eff)
		})
	}}, nil
}

func (c *Comm) specAllReduce(ar arena, d Collective) (planSpec, error) {
	m := d.Src.Bytes
	if err := impliedBytes("Dst", d.Dst.Bytes, m); err != nil {
		return planSpec{}, err
	}
	p, err := c.plan(d.Dims)
	if err != nil {
		return planSpec{}, err
	}
	if err := checkElem(d.Elem, d.Op); err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Src.Off, m); err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Dst.Off, m); err != nil {
		return planSpec{}, err
	}
	if overlap(d.Src.Off, m, d.Dst.Off, m) {
		return planSpec{}, fmt.Errorf("core: src [%d,%d) and dst [%d,%d) overlap",
			d.Src.Off, d.Src.Off+m, d.Dst.Off, d.Dst.Off+m)
	}
	s, err := blockSize(m, p.n)
	if err != nil {
		return planSpec{}, err
	}
	alg, eff, err := c.resolveAlgoLevel(d, m, false)
	if err != nil {
		return planSpec{}, err
	}
	srcOff, dstOff := ar.base+d.Src.Off, ar.base+d.Dst.Off
	env := &AlgoEnv{c: c, p: p, prim: AllReduce, eff: eff, srcOff: srcOff, dstOff: dstOff, m: m, s: s, t: d.Elem, op: d.Op}
	if err := checkAlgo(alg, env); err != nil {
		return planSpec{}, err
	}
	key := planKey{prim: AllReduce, dims: d.Dims, srcOff: srcOff, dstOff: dstOff, bytes: m, elemType: d.Elem, op: d.Op, lvl: eff, algo: alg}
	var regs planRegions
	regs.srcRegion(srcOff, m, eff >= PR)
	regs.write(dstOff, m)
	return planSpec{key: key, regs: regs, lower: func(*CompiledPlan) *Schedule {
		return algoLower(alg, env, func() *Schedule {
			return c.lowerAllReduce(p, srcOff, dstOff, s, d.Elem, d.Op, eff)
		})
	}}, nil
}

func (c *Comm) specAllGather(ar arena, d Collective) (planSpec, error) {
	s := d.Src.Bytes
	p, err := c.plan(d.Dims)
	if err != nil {
		return planSpec{}, err
	}
	if err := impliedBytes("Dst", d.Dst.Bytes, p.n*s); err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Src.Off, s); err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Dst.Off, p.n*s); err != nil {
		return planSpec{}, err
	}
	if overlap(d.Src.Off, s, d.Dst.Off, p.n*s) {
		return planSpec{}, fmt.Errorf("core: src and dst regions overlap")
	}
	alg, eff, err := c.resolveAlgoLevel(d, s, false)
	if err != nil {
		return planSpec{}, err
	}
	srcOff, dstOff := ar.base+d.Src.Off, ar.base+d.Dst.Off
	env := &AlgoEnv{c: c, p: p, prim: AllGather, eff: eff, srcOff: srcOff, dstOff: dstOff, m: s, s: s}
	if err := checkAlgo(alg, env); err != nil {
		return planSpec{}, err
	}
	key := planKey{prim: AllGather, dims: d.Dims, srcOff: srcOff, dstOff: dstOff, bytes: s, lvl: eff, algo: alg}
	var regs planRegions
	regs.read(srcOff, s)
	regs.write(dstOff, p.n*s)
	return planSpec{key: key, regs: regs, lower: func(*CompiledPlan) *Schedule {
		return algoLower(alg, env, func() *Schedule {
			return c.lowerAllGather(p, srcOff, dstOff, s, eff)
		})
	}}, nil
}

func (c *Comm) specGather(ar arena, d Collective) (planSpec, error) {
	s := d.Src.Bytes
	p, err := c.plan(d.Dims)
	if err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Src.Off, s); err != nil {
		return planSpec{}, err
	}
	alg, eff, err := c.resolveAlgoLevel(d, s, false)
	if err != nil {
		return planSpec{}, err
	}
	srcOff := ar.base + d.Src.Off
	env := &AlgoEnv{c: c, p: p, prim: Gather, eff: eff, srcOff: srcOff, m: s, s: s}
	if err := checkAlgo(alg, env); err != nil {
		return planSpec{}, err
	}
	key := planKey{prim: Gather, dims: d.Dims, srcOff: srcOff, bytes: s, lvl: eff, algo: alg}
	var regs planRegions
	regs.read(srcOff, s)
	return planSpec{key: key, regs: regs, lower: func(cp *CompiledPlan) *Schedule {
		return algoLower(alg, env, func() *Schedule {
			return c.lowerGather(p, srcOff, s, eff, cp)
		})
	}}, nil
}

func (c *Comm) specReduce(ar arena, d Collective) (planSpec, error) {
	m := d.Src.Bytes
	p, err := c.plan(d.Dims)
	if err != nil {
		return planSpec{}, err
	}
	if err := checkElem(d.Elem, d.Op); err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Src.Off, m); err != nil {
		return planSpec{}, err
	}
	s, err := blockSize(m, p.n)
	if err != nil {
		return planSpec{}, err
	}
	alg, eff, err := c.resolveAlgoLevel(d, m, false)
	if err != nil {
		return planSpec{}, err
	}
	srcOff := ar.base + d.Src.Off
	env := &AlgoEnv{c: c, p: p, prim: Reduce, eff: eff, srcOff: srcOff, m: m, s: s, t: d.Elem, op: d.Op}
	if err := checkAlgo(alg, env); err != nil {
		return planSpec{}, err
	}
	key := planKey{prim: Reduce, dims: d.Dims, srcOff: srcOff, bytes: m, elemType: d.Elem, op: d.Op, lvl: eff, algo: alg}
	var regs planRegions
	regs.srcRegion(srcOff, m, eff >= PR)
	return planSpec{key: key, regs: regs, lower: func(cp *CompiledPlan) *Schedule {
		return algoLower(alg, env, func() *Schedule {
			return c.lowerReduce(p, srcOff, s, d.Elem, d.Op, eff, cp)
		})
	}}, nil
}

func (c *Comm) specScatter(ar arena, d Collective) (planSpec, error) {
	s := d.Dst.Bytes
	p, err := c.plan(d.Dims)
	if err != nil {
		return planSpec{}, err
	}
	if s%dram.BankBurstBytes != 0 {
		return planSpec{}, fmt.Errorf("core: Dst bytes %d not a multiple of %d", s, dram.BankBurstBytes)
	}
	if err := checkArenaRegion(ar, d.Dst.Off, s); err != nil {
		return planSpec{}, err
	}
	bufs := d.Hosts
	if bufs == nil && !c.backend.Functional() {
		// Cost-only dry run: sizes are fully determined by the plan.
	} else {
		if len(bufs) != len(p.groups) {
			return planSpec{}, fmt.Errorf("core: %d host buffers for %d groups", len(bufs), len(p.groups))
		}
		for g, b := range bufs {
			if len(b) != p.n*s {
				return planSpec{}, fmt.Errorf("core: host buffer %d has %d bytes, want %d", g, len(b), p.n*s)
			}
		}
	}
	alg, eff, err := c.resolveAlgoLevel(d, s, false)
	if err != nil {
		return planSpec{}, err
	}
	dstOff := ar.base + d.Dst.Off
	env := &AlgoEnv{c: c, p: p, prim: Scatter, eff: eff, dstOff: dstOff, m: s, s: s, hosts: bufs}
	if err := checkAlgo(alg, env); err != nil {
		return planSpec{}, err
	}
	key := planKey{prim: Scatter, dims: d.Dims, dstOff: dstOff, bytes: s, lvl: eff, algo: alg}
	var regs planRegions
	regs.write(dstOff, s)
	return planSpec{key: key, regs: regs, hostBufs: true, lower: func(*CompiledPlan) *Schedule {
		return algoLower(alg, env, func() *Schedule {
			return c.lowerScatter(p, bufs, dstOff, s, eff)
		})
	}}, nil
}

func (c *Comm) specBroadcast(ar arena, d Collective) (planSpec, error) {
	p, err := c.plan(d.Dims)
	if err != nil {
		return planSpec{}, err
	}
	bufs := d.Hosts
	if len(bufs) != len(p.groups) {
		return planSpec{}, fmt.Errorf("core: %d host buffers for %d groups", len(bufs), len(p.groups))
	}
	s := -1
	for g, b := range bufs {
		if s == -1 {
			s = len(b)
		} else if len(b) != s {
			return planSpec{}, fmt.Errorf("core: host buffer %d has %d bytes, want %d", g, len(b), s)
		}
	}
	if err := impliedBytes("Dst", d.Dst.Bytes, s); err != nil {
		return planSpec{}, err
	}
	if err := checkArenaRegion(ar, d.Dst.Off, s); err != nil {
		return planSpec{}, err
	}
	// Broadcast has a single implementation level (§ VIII-B); the
	// algorithm axis still applies (AlgoAuto resolves to the reference
	// driver broadcast, alternatives are explicit opt-ins).
	alg := d.Algorithm
	if alg == AlgoAuto {
		alg = AlgoReference
	}
	dstOff := ar.base + d.Dst.Off
	env := &AlgoEnv{c: c, p: p, prim: Broadcast, eff: Baseline, dstOff: dstOff, m: s, s: s, hosts: bufs}
	if err := checkAlgo(alg, env); err != nil {
		return planSpec{}, err
	}
	key := planKey{prim: Broadcast, dims: d.Dims, dstOff: dstOff, bytes: s, lvl: Baseline, algo: alg}
	var regs planRegions
	regs.write(dstOff, s)
	return planSpec{key: key, regs: regs, hostBufs: true, lower: func(*CompiledPlan) *Schedule {
		return algoLower(alg, env, func() *Schedule {
			return c.lowerBroadcast(p, bufs, dstOff, s)
		})
	}}, nil
}
