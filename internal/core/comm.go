package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/dpu"
	"repro/internal/dram"
	"repro/internal/elem"
	"repro/internal/host"
)

// Comm executes PID-Comm collectives on a hypercube. It owns a host model
// (whose meter accumulates all communication costs) and a DPU engine for
// the PE-side reorder kernels. Every collective lowers to a Schedule
// (schedule.go) run by the single executor (exec.go) against the comm's
// Backend.
type Comm struct {
	hc      *Hypercube
	h       *host.Host
	eng     *dpu.Engine
	backend Backend

	// plans caches group plans per dims string; applications alternate
	// between a few dims selections every layer (Algorithm 1).
	plans map[string]*plan

	// autoCache holds AutoLevel decisions per call signature; shadow is
	// the lazily-created cost-only twin the dry runs execute on.
	autoCache map[autoKey]Level
	shadow    *Comm
}

// NewComm creates a communication context for the hypercube with the
// given cost parameters and the byte-accurate functional backend.
func NewComm(hc *Hypercube, params cost.Params) *Comm {
	return NewCommWithBackend(hc, params, FunctionalBackend())
}

// NewCostComm creates a cost-only communication context: collectives
// charge the meter exactly as NewComm's would, but move no bytes — the
// hypercube's system may be a dram phantom with no MRAM at all. Rooted
// primitives return nil result buffers, and Scatter accepts nil host
// buffers (sizes are implied by the call).
func NewCostComm(hc *Hypercube, params cost.Params) *Comm {
	return NewCommWithBackend(hc, params, CostBackend())
}

// NewCommWithBackend creates a communication context on an explicit
// backend.
func NewCommWithBackend(hc *Hypercube, params cost.Params, b Backend) *Comm {
	return &Comm{
		hc:        hc,
		h:         host.New(hc.sys, params),
		eng:       dpu.NewEngine(hc.sys, params),
		backend:   b,
		plans:     make(map[string]*plan),
		autoCache: make(map[autoKey]Level),
	}
}

// Backend returns the comm's execution backend.
func (c *Comm) Backend() Backend { return c.backend }

// Hypercube returns the comm's hypercube manager.
func (c *Comm) Hypercube() *Hypercube { return c.hc }

// Meter returns the meter accumulating all communication costs.
func (c *Comm) Meter() *cost.Meter { return c.h.Meter() }

// Host returns the underlying host model (shared with applications that
// also issue their own transfers).
func (c *Comm) Host() *host.Host { return c.h }

// Engine returns the DPU engine (shared with application kernels).
func (c *Comm) Engine() *dpu.Engine { return c.eng }

func (c *Comm) plan(dims string) (*plan, error) {
	if p, ok := c.plans[dims]; ok {
		return p, nil
	}
	p, err := c.hc.buildPlan(dims)
	if err != nil {
		return nil, err
	}
	c.plans[dims] = p
	return p, nil
}

// SetPEBuffer writes raw bytes directly into a PE's MRAM (no cost):
// test/application setup helper representing data the PE itself produced.
func (c *Comm) SetPEBuffer(pe, off int, data []byte) {
	m := c.hc.sys.BankBytes(pe)
	if off < 0 || off+len(data) > len(m) {
		panic(fmt.Sprintf("core: PE %d buffer [%d,%d) out of MRAM range %d", pe, off, off+len(data), len(m)))
	}
	copy(m[off:], data)
}

// GetPEBuffer reads raw bytes directly from a PE's MRAM (no cost).
func (c *Comm) GetPEBuffer(pe, off, n int) []byte {
	m := c.hc.sys.BankBytes(pe)
	if off < 0 || off+n > len(m) {
		panic(fmt.Sprintf("core: PE %d buffer [%d,%d) out of MRAM range %d", pe, off, off+n, len(m)))
	}
	out := make([]byte, n)
	copy(out, m[off:])
	return out
}

// checkRegion validates an MRAM region common to all PEs.
func (c *Comm) checkRegion(off, n int) error {
	if off < 0 || n < 0 || off+n > c.hc.sys.MramSize() {
		return fmt.Errorf("core: region [%d,%d) exceeds MRAM size %d", off, off+n, c.hc.sys.MramSize())
	}
	if off%dram.BankBurstBytes != 0 {
		return fmt.Errorf("core: offset %d not %d-byte aligned", off, dram.BankBurstBytes)
	}
	if n%dram.BankBurstBytes != 0 {
		return fmt.Errorf("core: size %d not a multiple of %d", n, dram.BankBurstBytes)
	}
	return nil
}

// blockSize computes and validates the per-block size s = bytesPerPE / n
// for block-structured primitives.
func blockSize(bytesPerPE, n int) (int, error) {
	if bytesPerPE%n != 0 {
		return 0, fmt.Errorf("core: %d bytes/PE not divisible by group size %d", bytesPerPE, n)
	}
	s := bytesPerPE / n
	if s%dram.BankBurstBytes != 0 {
		return 0, fmt.Errorf("core: block size %d not a multiple of %d", s, dram.BankBurstBytes)
	}
	return s, nil
}

func checkElem(t elem.Type, op elem.Op) error {
	if t.Size() <= 0 || t.Size() > 8 {
		return fmt.Errorf("core: unsupported element type %v", t)
	}
	_ = op.Identity(t) // panics on unknown op
	return nil
}

// overlap reports whether [aOff,aOff+aLen) and [bOff,bOff+bLen) intersect.
func overlap(aOff, aLen, bOff, bLen int) bool {
	return aOff < bOff+bLen && bOff < aOff+aLen
}
