package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cost"
	"repro/internal/dpu"
	"repro/internal/dram"
	"repro/internal/elem"
	"repro/internal/host"
	"repro/internal/par"
)

// Comm executes PID-Comm collectives on a hypercube. It owns a host model
// (whose meter accumulates all communication costs) and a DPU engine for
// the PE-side reorder kernels. Every collective lowers to a Schedule
// (schedule.go) compiled into a CompiledPlan (plan.go) and run by the
// single executor (exec.go) against the comm's Backend.
//
// Comm is safe for concurrent use: independent collectives may be issued
// from multiple goroutines. Executions serialize on one mutex — the
// simulated substrate models a single machine whose bus and driver the
// host drives, so collectives interleave at call granularity, exactly as
// a driver-level lock would enforce on real hardware. Callers remain
// responsible for data disjointness: two concurrent collectives (or app
// kernels) touching overlapping MRAM regions race semantically even
// though each executes atomically.
//
// Asynchronous execution (async.go): Submit* methods enqueue compiled
// plans on a per-Comm submission queue and return Futures; independent
// plans overlap on the elapsed-time timeline (Elapsed), hazardous plans
// are ordered by their MRAM footprints, and Flush is the barrier. Serial
// runs and direct MRAM access (SetPEBuffer/GetPEBuffer) should only
// happen with no submissions in flight — serial Run flushes implicitly.
type Comm struct {
	hc      *Hypercube
	h       *host.Host
	eng     *dpu.Engine
	backend Backend

	// execMu serializes schedule execution and all direct access to the
	// host model (its meter epoch state and transfer statistics).
	execMu sync.Mutex

	// planMu guards plans, the cached group plans per dims string;
	// applications alternate between a few dims selections every layer
	// (Algorithm 1).
	planMu sync.Mutex
	plans  map[string]*plan

	// autoMu guards the Auto decision cache, the objective knob and the
	// lazily-created cost-only shadow comm the dry runs compile on
	// (auto.go).
	autoMu    sync.Mutex
	autoCache map[autoKey]autoDecision
	autoObj   AutoObjective
	shadow    *Comm

	// compMu guards the compiled-plan, sequence and charge-trace caches
	// (plan.go), their hit/miss counters, the fusion level and the
	// aggregate fusion statistics.
	compMu   sync.Mutex
	compiled map[planKey]*CompiledPlan
	traces   map[planKey]*chargeTrace
	seqPlans map[string]*CompiledPlan
	cacheSt  PlanCacheStats
	fuse     FuseLevel
	fuseSt   FusionStats

	// tl is the overlap-aware elapsed-time timeline; asyncBase is the
	// barrier behind which new submissions may not start, and frontier
	// holds the placements still visible for hazard checks. All three are
	// guarded by execMu (async.go).
	tl        cost.Timeline
	asyncBase cost.Seconds
	frontier  []placedPlan

	// asyncMu guards the submission queues, the weighted-fair virtual
	// clock and the worker state; asyncCond signals queue drain to
	// Flush. asyncSlots is the queue-slot semaphore bounding in-flight
	// submissions at MaxPendingPlans. queues[0] is the default queue of
	// plans submitted outside any tenant; every tenant appends its own
	// (async.go, tenant.go).
	// sched, lookahead and stepped are the serving knobs: the pick
	// policy (resolved through the Scheduler registry into schedImpl,
	// lazily and again after every policy change — schedImplOf records
	// which policy the instance serves), the candidate window depth of
	// the window-scanning policies (0 = DefaultLookahead), and stepped
	// mode, where the caller drives execution via Step instead of a
	// background worker. cands is pickLocked's reusable candidate
	// scratch (async.go, sched.go).
	asyncMu      sync.Mutex
	asyncCond    *sync.Cond
	queues       []*subQueue
	vclock       float64
	seqCounter   uint64
	asyncRunning bool
	asyncPending int
	asyncSlots   chan struct{}
	sched        SchedPolicy
	schedImpl    Scheduler
	schedImplOf  SchedPolicy
	lookahead    int
	cands        []Candidate
	stepped      bool

	// tenantMu guards the tenant registry, used to keep arenas disjoint,
	// and the retired list of closed tenants, kept so machine-total
	// accounting still sees their meters (tenant.go).
	tenantMu sync.Mutex
	tenants  []*Tenant
	retired  []*Tenant

	// Parallel-execution state, all guarded by execMu (the knob and the
	// per-shard contexts are only touched while an execution holds the
	// lock). egs is precomputed at construction and immutable, so the
	// tracing path (under compMu) may read it too.
	execWorkers int          // 0 = default (GOMAXPROCS at call time)
	egs         []int        // [0..numGroups): every entangled group
	streams     []*streamCtx // per-shard streaming contexts (engine.go)
	modBuf      []byte       // reusable Modulate output arena (bulkOut)
	slabs       [][]byte     // per-shard scratch slabs (groupsDoScratch)
	grun        groupRunner
	gsrun       groupScratchRunner
}

// NewComm creates a communication context for the hypercube with the
// given cost parameters and the byte-accurate functional backend.
func NewComm(hc *Hypercube, params cost.Params) *Comm {
	return NewCommWithBackend(hc, params, FunctionalBackend())
}

// NewCostComm creates a cost-only communication context: collectives
// charge the meter exactly as NewComm's would, but move no bytes — the
// hypercube's system may be a dram phantom with no MRAM at all. Rooted
// primitives return nil result buffers, and Scatter accepts nil host
// buffers (sizes are implied by the call).
func NewCostComm(hc *Hypercube, params cost.Params) *Comm {
	return NewCommWithBackend(hc, params, CostBackend())
}

// NewCommWithBackend creates a communication context on an explicit
// backend.
func NewCommWithBackend(hc *Hypercube, params cost.Params, b Backend) *Comm {
	c := &Comm{
		hc:         hc,
		h:          host.New(hc.sys, params),
		eng:        dpu.NewEngine(hc.sys, params),
		backend:    b,
		plans:      make(map[string]*plan),
		autoCache:  make(map[autoKey]autoDecision),
		compiled:   make(map[planKey]*CompiledPlan),
		traces:     make(map[planKey]*chargeTrace),
		seqPlans:   make(map[string]*CompiledPlan),
		asyncSlots: make(chan struct{}, MaxPendingPlans),
		queues:     []*subQueue{{weight: 1}},
		egs:        make([]int, hc.sys.Geometry().NumGroups()),
	}
	for i := range c.egs {
		c.egs[i] = i
	}
	c.asyncCond = sync.NewCond(&c.asyncMu)
	return c
}

// allEGs returns [0..numGroups) for bulk transfers covering the machine.
// The slice is precomputed and immutable — callers must not modify it.
func (c *Comm) allEGs() []int { return c.egs }

// SetExecWorkers sets the number of worker shards the functional backend
// splits schedule-step work across (bulk transfers, streaming epochs,
// kernel launches). n <= 0 restores the default, GOMAXPROCS. The knob is
// purely a simulator-throughput control: results, meter charges, bus
// statistics and MRAM contents are byte-identical at any worker count, so
// it is NOT part of the plan-cache key — changing it never invalidates
// compiled plans.
func (c *Comm) SetExecWorkers(n int) {
	if n < 0 {
		n = 0
	}
	c.execMu.Lock()
	c.execWorkers = n
	c.h.SetWorkers(c.workers())
	c.execMu.Unlock()
}

// ExecWorkers returns the effective worker-shard count.
func (c *Comm) ExecWorkers() int {
	c.execMu.Lock()
	defer c.execMu.Unlock()
	return c.workers()
}

// workers resolves the effective worker count. Callers hold execMu.
func (c *Comm) workers() int {
	if c.execWorkers > 0 {
		return c.execWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// groupRunner adapts a per-group closure to par.Runner; the Comm keeps
// one so staged-path modulation can fan out without allocating a runner
// per call. Guarded by execMu like all execution state.
type groupRunner struct{ fn func(g int) }

func (gr *groupRunner) RunShard(_, lo, hi int) {
	for g := lo; g < hi; g++ {
		gr.fn(g)
	}
}

// groupsDo runs fn(g) for every g in [0, n) sharded across the comm's
// workers. fn must only write state owned by group g. Callers hold execMu.
func (c *Comm) groupsDo(n int, fn func(g int)) {
	c.grun.fn = fn
	par.Do(c.workers(), n, &c.grun)
	c.grun.fn = nil
}

// groupScratchRunner is groupRunner plus a per-shard scratch slab.
type groupScratchRunner struct {
	c     *Comm
	bytes int
	fn    func(g int, scratch []byte)
}

func (gr *groupScratchRunner) RunShard(shard, lo, hi int) {
	s := gr.c.slabs[shard][:gr.bytes]
	for g := lo; g < hi; g++ {
		gr.fn(g, s)
	}
}

// groupsDoScratch is groupsDo with a bytes-sized scratch slab per shard
// (reused across runs — the parallel replacement for a per-group make).
func (c *Comm) groupsDoScratch(n, bytes int, fn func(g int, scratch []byte)) {
	k := c.workers()
	if k > n {
		k = n
	}
	for len(c.slabs) < k {
		c.slabs = append(c.slabs, nil)
	}
	for i := 0; i < k; i++ {
		if cap(c.slabs[i]) < bytes {
			c.slabs[i] = make([]byte, bytes)
		}
	}
	c.gsrun.c, c.gsrun.bytes, c.gsrun.fn = c, bytes, fn
	par.Do(c.workers(), n, &c.gsrun)
	c.gsrun.fn = nil
}

// bulkOut returns the comm's reusable n-byte modulation-output arena.
// Every staged (StepBulk) Modulate that fully overwrites its output uses
// it, so cached replays allocate no fresh buffer per step. At most one
// Bulk step is in flight at a time (steps execute sequentially), so a
// single arena suffices. Callers hold execMu.
func (c *Comm) bulkOut(n int) []byte {
	if cap(c.modBuf) < n {
		c.modBuf = make([]byte, n)
	}
	return c.modBuf[:n]
}

// Backend returns the comm's execution backend.
func (c *Comm) Backend() Backend { return c.backend }

// SetFuse configures the schedule-fusion level for subsequently compiled
// plans (fuse.go). The default is FuseFull. The level is part of the
// plan-cache key, so toggling it never serves a plan fused at another
// level; plans already handed out keep the level they were compiled at.
// Cached AutoLevel decisions are dropped on a change — they were made
// against schedules fused at the old level and the cheapest level may
// differ at the new one.
func (c *Comm) SetFuse(f FuseLevel) {
	c.compMu.Lock()
	changed := c.fuse.resolved() != f.resolved()
	c.fuse = f.resolved()
	c.compMu.Unlock()
	if changed {
		c.autoMu.Lock()
		c.autoCache = make(map[autoKey]autoDecision)
		c.autoMu.Unlock()
	}
}

// Fuse returns the comm's current schedule-fusion level.
func (c *Comm) Fuse() FuseLevel {
	c.compMu.Lock()
	defer c.compMu.Unlock()
	return c.fuse.resolved()
}

// FusionStats returns the aggregate fusion activity of every plan
// compiled on this comm (cumulative; survives ClearPlanCache).
func (c *Comm) FusionStats() FusionStats {
	c.compMu.Lock()
	defer c.compMu.Unlock()
	return c.fuseSt
}

// Hypercube returns the comm's hypercube manager.
func (c *Comm) Hypercube() *Hypercube { return c.hc }

// Meter returns the meter accumulating all communication costs.
func (c *Comm) Meter() *cost.Meter { return c.h.Meter() }

// Host returns the underlying host model (shared with applications that
// also issue their own transfers).
func (c *Comm) Host() *host.Host { return c.h }

// Engine returns the DPU engine (shared with application kernels).
func (c *Comm) Engine() *dpu.Engine { return c.eng }

func (c *Comm) plan(dims string) (*plan, error) {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if p, ok := c.plans[dims]; ok {
		return p, nil
	}
	p, err := c.hc.buildPlan(dims)
	if err != nil {
		return nil, err
	}
	c.plans[dims] = p
	return p, nil
}

// SetPEBuffer writes raw bytes directly into a PE's MRAM (no cost):
// test/application setup helper representing data the PE itself produced.
func (c *Comm) SetPEBuffer(pe, off int, data []byte) {
	m := c.hc.sys.BankBytes(pe)
	if off < 0 || off+len(data) > len(m) {
		panic(fmt.Sprintf("core: PE %d buffer [%d,%d) out of MRAM range %d", pe, off, off+len(data), len(m)))
	}
	copy(m[off:], data)
}

// GetPEBuffer reads raw bytes directly from a PE's MRAM (no cost).
func (c *Comm) GetPEBuffer(pe, off, n int) []byte {
	m := c.hc.sys.BankBytes(pe)
	if off < 0 || off+n > len(m) {
		panic(fmt.Sprintf("core: PE %d buffer [%d,%d) out of MRAM range %d", pe, off, off+n, len(m)))
	}
	out := make([]byte, n)
	copy(out, m[off:])
	return out
}

// checkRegion validates an MRAM region common to all PEs against the
// whole MRAM (the arena of a plain Comm).
func (c *Comm) checkRegion(off, n int) error {
	return checkArenaRegion(c.fullArena(), off, n)
}

// blockSize computes and validates the per-block size s = bytesPerPE / n
// for block-structured primitives.
func blockSize(bytesPerPE, n int) (int, error) {
	if bytesPerPE%n != 0 {
		return 0, fmt.Errorf("core: %d bytes/PE not divisible by group size %d", bytesPerPE, n)
	}
	s := bytesPerPE / n
	if s%dram.BankBurstBytes != 0 {
		return 0, fmt.Errorf("core: block size %d not a multiple of %d", s, dram.BankBurstBytes)
	}
	return s, nil
}

func checkElem(t elem.Type, op elem.Op) error {
	if t.Size() <= 0 || t.Size() > 8 {
		return fmt.Errorf("core: unsupported element type %v", t)
	}
	_ = op.Identity(t) // panics on unknown op
	return nil
}

// overlap reports whether [aOff,aOff+aLen) and [bOff,bOff+bLen) intersect.
func overlap(aOff, aLen, bOff, bLen int) bool {
	return aOff < bOff+bLen && bOff < aOff+aLen
}
