package core

import (
	"fmt"

	"repro/internal/cost"
)

// This file implements the schedule fusion optimizer: typed peephole
// passes over the schedule IR that rewrite a lowered plan into fewer,
// denser steps before its charges are traced. PID-Comm's speedup comes
// from restructuring communication into fewer, denser DIMM transfer
// epochs; the passes extend that restructuring across step — and, for
// CompileSequence plans, collective — boundaries:
//
//  1. mergeRotates: adjacent RotateBlocks steps on the same region (same
//     group plan, offset and block structure) compose into one rotation
//     of the summed amount — one kernel launch and one MRAM streaming
//     pass instead of two.
//  2. coalesceEpochs: back-to-back ColumnStream epochs merge into a
//     single transfer epoch (burst tallies and charges concatenate, the
//     functional bodies chain), so a multi-collective sequence streams
//     as one dense epoch.
//  3. Inverse rotate/unrotate pairs are a special case of (1): the
//     composed rotation is the identity, which dropNoops then removes
//     entirely — e.g. an AlltoAll's trailing unrotate of its destination
//     cancels a following ReduceScatter's leading rotate of the same
//     region.
//  4. dropNoops: steps that provably do nothing (a rotation by zero
//     blocks for every rank, an empty bulk or host-compute step, an
//     empty transfer epoch) are removed, saving their fixed launch
//     overheads.
//  5. dropInteriorSyncs: a fused plan is one submission, so only its
//     final host synchronization remains; the per-collective Sync steps
//     of a sequence's interior members are elided.
//
// Every pass preserves functional byte-for-byte equivalence (pinned by
// the fusion property tests and the fuzz harness): rotations compose
// additively, epochs execute their bodies in the original order, and
// removed steps are exact no-ops. Only the *cost* changes — fused plans
// regenerate their charge traces from the rewritten schedule, so the
// meter, timeline and hazard machinery are untouched.

// FuseLevel selects how Compile post-processes lowered schedules.
type FuseLevel int

const (
	// FuseDefault resolves to FuseFull: fusion is on by default.
	FuseDefault FuseLevel = iota
	// FuseOff executes schedules exactly as lowered — bit-identical to
	// the pre-fusion engine, the reference for equivalence tests.
	FuseOff
	// FuseFull applies all peephole passes to a fixpoint.
	FuseFull
)

// resolved maps FuseDefault to the concrete default level.
func (f FuseLevel) resolved() FuseLevel {
	if f == FuseDefault {
		return FuseFull
	}
	return f
}

// enabled reports whether any pass runs at this level.
func (f FuseLevel) enabled() bool { return f.resolved() == FuseFull }

// String returns the knob label used by the CLIs.
func (f FuseLevel) String() string {
	switch f.resolved() {
	case FuseOff:
		return "off"
	case FuseFull:
		return "full"
	default:
		return fmt.Sprintf("FuseLevel(%d)", int(f))
	}
}

// FusionReport describes what the fusion pipeline did to one compiled
// plan. A report is attached to every plan compiled with fusion enabled
// (CompiledPlan.FusionReport); when no pass applied, StepsAfter equals
// StepsBefore and CostAfter equals CostBefore.
type FusionReport struct {
	// StepsBefore and StepsAfter count schedule steps around the passes.
	StepsBefore, StepsAfter int
	// RotatesMerged counts adjacent same-region rotation pairs composed
	// into a single RotateBlocks step.
	RotatesMerged int
	// RotatesElided counts rotation steps removed entirely: original
	// no-ops and inverse pairs whose composition is the identity.
	RotatesElided int
	// SyncsElided counts interior per-collective synchronization steps
	// removed from a fused sequence.
	SyncsElided int
	// EpochsCoalesced counts ColumnStream epochs merged into their
	// predecessor.
	EpochsCoalesced int
	// OtherElided counts no-op bulk/host-compute/empty-epoch steps
	// removed.
	OtherElided int
	// PEBytesSaved is the per-PE MRAM DMA traffic (bytes) the removed
	// rotation passes no longer stream; PEInstrSaved is their DPU
	// address-arithmetic instruction count. Both are per busiest PE, the
	// quantity the launch cost model charges.
	PEBytesSaved, PEInstrSaved int64
	// CostBefore and CostAfter are the plan's per-run cost with the
	// schedule as lowered and as fused. Equal when no pass applied.
	CostBefore, CostAfter cost.Breakdown
}

// Changed reports whether any pass rewrote the schedule.
func (r FusionReport) Changed() bool {
	return r.RotatesMerged+r.RotatesElided+r.SyncsElided+r.EpochsCoalesced+r.OtherElided > 0
}

// Saved returns the simulated time one Run saves over the unfused plan.
func (r FusionReport) Saved() cost.Seconds {
	return r.CostBefore.Total() - r.CostAfter.Total()
}

// Speedup returns CostBefore/CostAfter (1 when nothing fused).
func (r FusionReport) Speedup() float64 {
	if r.CostAfter.Total() <= 0 {
		return 1
	}
	return float64(r.CostBefore.Total()) / float64(r.CostAfter.Total())
}

// String renders the report as a single diagnostic line.
func (r FusionReport) String() string {
	return fmt.Sprintf("steps %d->%d (rotates: %d merged, %d elided; syncs elided %d; epochs coalesced %d; other %d), %.3g PE-KB and %d PE-instr saved, %.2fx cost",
		r.StepsBefore, r.StepsAfter, r.RotatesMerged, r.RotatesElided, r.SyncsElided,
		r.EpochsCoalesced, r.OtherElided, float64(r.PEBytesSaved)/1024, r.PEInstrSaved, r.Speedup())
}

// FusionStats aggregates fusion activity over a Comm's lifetime
// (Comm.FusionStats; surfaced by `pidinfo -plancache`). Counters are
// cumulative and survive ClearPlanCache, like the plan-cache counters.
type FusionStats struct {
	// PlansCompiled counts plans that went through the fusion pipeline;
	// PlansFused counts those whose schedule actually changed.
	PlansCompiled, PlansFused int
	// Pass counters summed over all fused plans.
	RotatesMerged, RotatesElided, SyncsElided, EpochsCoalesced, OtherElided int
	// PEBytesSaved/PEInstrSaved sum the per-PE rotation work removed.
	PEBytesSaved, PEInstrSaved int64
	// CostSaved is the summed per-run simulated time the fused plans
	// save over their unfused forms (each plan counted once, at compile).
	CostSaved cost.Seconds
}

// add folds one plan's report into the aggregate.
func (s *FusionStats) add(r FusionReport) {
	s.PlansCompiled++
	if r.Changed() {
		s.PlansFused++
	}
	s.RotatesMerged += r.RotatesMerged
	s.RotatesElided += r.RotatesElided
	s.SyncsElided += r.SyncsElided
	s.EpochsCoalesced += r.EpochsCoalesced
	s.OtherElided += r.OtherElided
	s.PEBytesSaved += r.PEBytesSaved
	s.PEInstrSaved += r.PEInstrSaved
	s.CostSaved += r.Saved()
}

// rotateIsNoop reports whether the step rotates every rank by a multiple
// of its block count — an exact no-op (the kernel exits immediately on
// every PE, but the launch itself would still be charged).
func rotateIsNoop(st *StepRotateBlocks) bool {
	for rank := 0; rank < st.p.n; rank++ {
		if st.Rot(rank)%st.N != 0 {
			return false
		}
	}
	return true
}

// rotatePassWork returns the per-PE MRAM bytes and instructions of one
// full rotation pass of the step's region (zero for a no-op rotation):
// what eliding the step saves on the busiest PE.
func rotatePassWork(st *StepRotateBlocks) (instr, bytes int64) {
	if rotateIsNoop(st) {
		return 0, 0
	}
	i, b := rotateBlocksWork(st.N * st.S)
	return i, b
}

// sameRotateRegion reports whether two rotation steps address the same
// region with the same block structure under the same group plan — the
// precondition for composing them.
func sameRotateRegion(a, b *StepRotateBlocks) bool {
	return a.p == b.p && a.Off == b.Off && a.N == b.N && a.S == b.S
}

// mergeRotates composes two adjacent same-region rotations into one step
// rotating by the summed amount. Left-rotations compose additively, so
// the result is byte-identical to applying both.
func mergeRotates(a, b *StepRotateBlocks) *StepRotateBlocks {
	ra, rb := a.Rot, b.Rot
	return &StepRotateBlocks{p: a.p, Off: a.Off, N: a.N, S: a.S,
		Rot: func(rank int) int { return ra(rank) + rb(rank) }}
}

// stepIsNoop classifies steps that provably perform no work and no
// accounting. StepSync is never a no-op (it charges the launch/sync
// overhead); interior syncs are handled by the dedicated pass.
func stepIsNoop(st Step) bool {
	switch s := st.(type) {
	case *StepRotateBlocks:
		return rotateIsNoop(s)
	case *StepBulk:
		return !s.Read && !s.Write && len(s.Charges) == 0 && s.Modulate == nil
	case *StepHostCompute:
		return len(s.Charges) == 0 && s.Run == nil
	case *StepColumnStream:
		return s.Reads == 0 && s.Writes == 0 && len(s.Charges) == 0 && len(s.segs) == 0
	case *StepNetTransfer:
		// A zero-round leg with no functional rendezvous charges nothing
		// and moves nothing (e.g. the network leg of a 1-host cluster).
		return s.Rounds <= 0 && s.Run == nil
	default:
		return false
	}
}

// coalesceEpochs merges two adjacent transfer epochs: tallies and
// charges concatenate, and the seg lists chain in original order — the
// executor runs segs sequentially (with a barrier between them), so the
// merged epoch moves exactly the bytes the two moved, in one bus epoch,
// with cross-member read-after-write dependencies intact.
func coalesceEpochs(a, b *StepColumnStream) *StepColumnStream {
	return &StepColumnStream{
		Reads:   a.Reads + b.Reads,
		Writes:  a.Writes + b.Writes,
		Charges: append(append([]Charge{}, a.Charges...), b.Charges...),
		segs:    append(append([]*streamSeg{}, a.segs...), b.segs...),
	}
}

// fuseSteps runs the peephole passes over steps to a fixpoint and
// returns the rewritten list plus the report. The input slice is not
// mutated; step values are shared where unchanged.
func fuseSteps(steps []Step) ([]Step, FusionReport) {
	rep := FusionReport{StepsBefore: len(steps)}
	out := append([]Step{}, steps...)
	for changed := true; changed; {
		changed = false

		// dropInteriorSyncs: every Sync except the final step goes; a
		// fused plan synchronizes once, when it completes.
		for i := 0; i < len(out)-1; i++ {
			if _, ok := out[i].(*StepSync); ok {
				out = append(out[:i], out[i+1:]...)
				rep.SyncsElided++
				changed = true
				i--
			}
		}

		// dropNoops: remove steps that provably do nothing. An elided
		// rotation still saves its launch overhead; a non-trivial one
		// (possible only as a merge result gone identity) also saves its
		// streaming pass, accounted when the merge happened.
		for i := 0; i < len(out); i++ {
			if !stepIsNoop(out[i]) {
				continue
			}
			if _, ok := out[i].(*StepRotateBlocks); ok {
				rep.RotatesElided++
			} else {
				rep.OtherElided++
			}
			out = append(out[:i], out[i+1:]...)
			changed = true
			i--
		}

		// mergeRotates: compose adjacent same-region rotations. The
		// saved work is the difference between the two original passes
		// and the composed one (zero if the composition is a no-op —
		// dropNoops removes it on the next sweep).
		for i := 0; i+1 < len(out); i++ {
			a, ok1 := out[i].(*StepRotateBlocks)
			b, ok2 := out[i+1].(*StepRotateBlocks)
			if !ok1 || !ok2 || !sameRotateRegion(a, b) {
				continue
			}
			m := mergeRotates(a, b)
			ia, ba := rotatePassWork(a)
			ib, bb := rotatePassWork(b)
			im, bm := rotatePassWork(m)
			rep.PEInstrSaved += ia + ib - im
			rep.PEBytesSaved += ba + bb - bm
			rep.RotatesMerged++
			out[i] = m
			out = append(out[:i+1], out[i+2:]...)
			changed = true
			i--
		}

		// coalesceEpochs: merge adjacent transfer epochs.
		for i := 0; i+1 < len(out); i++ {
			a, ok1 := out[i].(*StepColumnStream)
			b, ok2 := out[i+1].(*StepColumnStream)
			if !ok1 || !ok2 {
				continue
			}
			out[i] = coalesceEpochs(a, b)
			out = append(out[:i+1], out[i+2:]...)
			rep.EpochsCoalesced++
			changed = true
			i--
		}
	}
	rep.StepsAfter = len(out)
	return out, rep
}
