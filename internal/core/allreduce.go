package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/elem"
)

// AllReduce leaves the full elementwise reduction of every group's
// buffers on every member (Figure 8(c)). The optimized levels consume
// the source region (PE-assisted pre-reordering happens in place). PID-Comm implements it as a
// seamless fusion of ReduceScatter and AllGather that never reroutes
// through host memory (§ V-B3), unlike the naive RS+AG composition of
// CPU/GPU libraries. Each PE contributes and receives bytesPerPE bytes,
// which must be divisible by the group size in 8-byte blocks.
func (c *Comm) AllReduce(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (cost.Breakdown, error) {
	p, s, err := c.prepBlocks(dims, srcOff, dstOff, bytesPerPE)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllReduce: %w", err)
	}
	if err := checkElem(t, op); err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllReduce: %w", err)
	}
	before := c.h.Meter().Snapshot()
	switch EffectiveLevel(AllReduce, lvl) {
	case Baseline:
		c.allReduceBulk(p, srcOff, dstOff, s, t, op, false)
	case PR:
		c.allReduceBulk(p, srcOff, dstOff, s, t, op, true)
	default: // IM
		c.allReduceStream(p, srcOff, dstOff, s, t, op)
	}
	return c.h.Meter().Snapshot().Sub(before), nil
}

// allReduceBulk is the conventional path: reduce in host memory, then
// replicate the reduced vector to every member.
func (c *Comm) allReduceBulk(p *plan, srcOff, dstOff, s int, t elem.Type, op elem.Op, pr bool) {
	n := p.n
	m := n * s
	if pr {
		c.launchRotateBlocks(p, srcOff, n, s, func(rank int) int { return rank })
	}
	stag := c.h.BulkRead(c.allEGs(), srcOff, m)
	out := make([]byte, len(stag))
	for _, grp := range p.groups {
		red := make([]byte, m)
		elem.Fill(t, red, op.Identity(t))
		for i, srcPE := range grp {
			src := stag[srcPE*m : (srcPE+1)*m]
			if pr {
				for k := 0; k < n; k++ {
					blk := (k + i) % n
					elem.ReduceInto(t, op, red[blk*s:blk*s+s], src[k*s:k*s+s])
				}
			} else {
				elem.ReduceInto(t, op, red, src)
			}
		}
		for _, dstPE := range grp {
			copy(out[dstPE*m:(dstPE+1)*m], red)
		}
	}
	// Reduction pass over all input plus a memcpy-class replication pass
	// over all output.
	if pr {
		c.h.ChargeLocalReduce(int64(len(stag)))
	} else {
		c.h.ChargeScalarReduce(int64(len(stag)))
	}
	c.h.ChargeSIMD(int64(len(stag)))
	c.h.BulkWrite(c.allEGs(), dstOff, out)
	c.h.ChargeSync()
}

// allReduceStream fuses the streaming ReduceScatter with the AllGather
// writes: per element column, reduce the n slot bursts into an
// accumulator register, domain-transfer it back once, then write it n
// times with incremental shifts (Figure 8(c) steps 7-9). The PEs then fix
// block order locally. Host memory is never touched. 8-bit elements skip
// the domain transfers (§ V-C).
func (c *Comm) allReduceStream(p *plan, srcOff, dstOff, s int, t elem.Type, op elem.Op) {
	n := p.n
	noDT := t == elem.I8
	c.launchRotateBlocks(p, srcOff, n, s, func(rank int) int { return rank })
	c.h.BeginXfer()
	nEG := c.hc.sys.Geometry().NumGroups()
	for e := 0; e < s; e += 8 {
		acc := identityColumn(t, op, nEG) // host byte order
		for k := 0; k < n; k++ {
			col := c.readColumn(srcOff + k*s + e)
			col = c.shiftColumn(p, col, k)
			c.h.ChargeSIMD(c.columnBytes())
			if !noDT {
				c.h.ChargeDT(c.columnBytes())
			}
			reduceColumnInto(t, op, acc, transposeColumn(col))
			c.h.ChargeReduce(c.columnBytes())
		}
		// One DT back to PIM domain serves all n outbound writes, whose
		// shifts are pure redistribution (byte-level rotates).
		accPim := transposeColumn(acc)
		if !noDT {
			c.h.ChargeDT(c.columnBytes())
		}
		for k := 0; k < n; k++ {
			shifted := c.shiftColumn(p, accPim, k)
			c.h.ChargeSIMD(c.columnBytes())
			w := (n - k) % n
			c.writeColumn(dstOff+w*s+e, shifted)
		}
	}
	c.h.EndXfer()
	c.launchRotateBlocks(p, dstOff, n, s, func(rank int) int { return -rank })
	c.h.ChargeSync()
}
