package core

import (
	"repro/internal/cost"
	"repro/internal/elem"
)

// AllReduce leaves the full elementwise reduction of every group's
// buffers on every member (Figure 8(c)). The optimized levels consume
// the source region (PE-assisted pre-reordering happens in place).
// PID-Comm implements it as a seamless fusion of ReduceScatter and
// AllGather that never reroutes through host memory (§ V-B3), unlike the
// naive RS+AG composition of CPU/GPU libraries. Each PE contributes and
// receives bytesPerPE bytes, which must be divisible by the group size
// in 8-byte blocks.
//
// This is a thin wrapper over CompileAllReduce + Run; repeated calls
// with the same signature replay the cached CompiledPlan.
func (c *Comm) AllReduce(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (cost.Breakdown, error) {
	cp, err := c.CompileAllReduce(dims, srcOff, dstOff, bytesPerPE, t, op, lvl)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cp.Run()
}
