package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/elem"
)

// AllReduce leaves the full elementwise reduction of every group's
// buffers on every member (Figure 8(c)). The optimized levels consume
// the source region (PE-assisted pre-reordering happens in place).
// PID-Comm implements it as a seamless fusion of ReduceScatter and
// AllGather that never reroutes through host memory (§ V-B3), unlike the
// naive RS+AG composition of CPU/GPU libraries. Each PE contributes and
// receives bytesPerPE bytes, which must be divisible by the group size
// in 8-byte blocks.
func (c *Comm) AllReduce(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (cost.Breakdown, error) {
	p, s, err := c.prepBlocks(dims, srcOff, dstOff, bytesPerPE)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllReduce: %w", err)
	}
	if err := checkElem(t, op); err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllReduce: %w", err)
	}
	if lvl == Auto {
		if lvl, err = c.AutoLevel(AllReduce, dims, bytesPerPE, t, op); err != nil {
			return cost.Breakdown{}, fmt.Errorf("AllReduce: %w", err)
		}
	}
	before := c.h.Meter().Snapshot()
	c.execute(c.lowerAllReduce(p, srcOff, dstOff, s, t, op, EffectiveLevel(AllReduce, lvl)))
	return c.h.Meter().Snapshot().Sub(before), nil
}
