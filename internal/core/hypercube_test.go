package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

func newHC(t *testing.T, geo dram.Geometry, shape []int) *Hypercube {
	t.Helper()
	sys, err := dram.NewSystem(geo)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHypercube(sys, shape)
	if err != nil {
		t.Fatal(err)
	}
	return hc
}

func TestNewHypercubeValidation(t *testing.T) {
	sys, _ := dram.NewSystem(geo64)
	bad := [][]int{
		{},        // empty
		{32},      // wrong product
		{3, 8, 8}, // non-pow2 in non-last dim (and wrong product)
		{6, 8},    // non-pow2 non-last (48 != 64 anyway)
		{0, 64},   // zero length
		{-4, 16},  // negative
		{8, 8, 8}, // too many PEs
	}
	for _, shape := range bad {
		if _, err := NewHypercube(sys, shape); err == nil {
			t.Errorf("shape %v accepted", shape)
		}
	}
	good := [][]int{{64}, {8, 8}, {4, 2, 8}, {2, 2, 2, 8}, {16, 4}, {4, 16}, {32, 2}}
	for _, shape := range good {
		if _, err := NewHypercube(sys, shape); err != nil {
			t.Errorf("shape %v rejected: %v", shape, err)
		}
	}
	// Non-power-of-two allowed only in the last dimension.
	sys24, _ := dram.NewSystem(geo24)
	if _, err := NewHypercube(sys24, []int{8, 3}); err != nil {
		t.Errorf("[8,3] rejected: %v", err)
	}
	if _, err := NewHypercube(sys24, []int{3, 8}); err == nil {
		t.Error("[3,8] accepted (non-pow2 not in last dim)")
	}
}

func TestNodePECoordRoundTrip(t *testing.T) {
	hc := newHC(t, geo64, []int{4, 2, 8})
	for pe := 0; pe < 64; pe++ {
		coord := hc.PECoord(pe)
		if got := hc.NodePE(coord); got != pe {
			t.Fatalf("round trip %d -> %v -> %d", pe, coord, got)
		}
	}
}

func TestNodePEOrderXFastest(t *testing.T) {
	hc := newHC(t, geo64, []int{4, 2, 8})
	if hc.NodePE([]int{1, 0, 0}) != 1 {
		t.Error("x stride should be 1")
	}
	if hc.NodePE([]int{0, 1, 0}) != 4 {
		t.Error("y stride should be |x|")
	}
	if hc.NodePE([]int{0, 0, 1}) != 8 {
		t.Error("z stride should be |x||y|")
	}
}

// The paper's mapping property (§ IV-C): an entangled group occupies 8
// consecutive hypercube nodes, so the low dimensions of any shape align
// with chips first.
func TestMappingFillsEntangledGroupsFirst(t *testing.T) {
	hc := newHC(t, geo64, []int{8, 8})
	sys := hc.System()
	for node := 0; node < 8; node++ {
		id := sys.PEFromLinear(hc.NodePE([]int{node, 0}))
		if id.Chip != node || id.Bank != 0 || id.Rank != 0 || id.Channel != 0 {
			t.Errorf("x=%d maps to %+v, want chip %d of EG 0", node, id, node)
		}
	}
	// Figure 6's example: x of length 8 occupies two entangled groups of 4
	// chips in the 4-chip toy; in our 8-chip system, x=8 is exactly one EG
	// and y advances banks.
	idY := sys.PEFromLinear(hc.NodePE([]int{0, 1}))
	if idY.Bank != 1 || idY.Chip != 0 {
		t.Errorf("y=1 maps to %+v, want bank 1 chip 0", idY)
	}
}

func TestParseDims(t *testing.T) {
	hc := newHC(t, geo64, []int{4, 2, 8})
	sel, err := hc.ParseDims("101")
	if err != nil {
		t.Fatal(err)
	}
	if !sel[0] || sel[1] || !sel[2] {
		t.Errorf("ParseDims(101) = %v", sel)
	}
	for _, bad := range []string{"", "1", "1010", "abc", "000"} {
		if _, err := hc.ParseDims(bad); err == nil {
			t.Errorf("ParseDims(%q) accepted", bad)
		}
	}
}

func TestGroupsPartitionAllPEs(t *testing.T) {
	hc := newHC(t, geo64, []int{4, 2, 8})
	for _, dims := range []string{"100", "010", "001", "110", "101", "011", "111"} {
		groups, err := hc.Groups(dims)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for _, g := range groups {
			for _, pe := range g {
				if seen[pe] {
					t.Fatalf("dims %s: PE %d in two groups", dims, pe)
				}
				seen[pe] = true
			}
		}
		if len(seen) != 64 {
			t.Fatalf("dims %s: %d PEs covered, want 64", dims, len(seen))
		}
		// All groups same size = product of selected dims.
		n := len(groups[0])
		for _, g := range groups {
			if len(g) != n {
				t.Fatalf("dims %s: unequal group sizes", dims)
			}
		}
	}
}

func TestGroupSizesMatchFigure5(t *testing.T) {
	// Figure 5: 4x2x4 cube; "100" gives 8 groups of 4; "101" gives 2
	// groups of 16. Build the same shape on a 32-PE system.
	geo := dram.Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 4, MramPerBank: 1024}
	hc := newHC(t, geo, []int{4, 2, 4})
	g100, _ := hc.Groups("100")
	if len(g100) != 8 || len(g100[0]) != 4 {
		t.Errorf("100: %d groups of %d, want 8 of 4", len(g100), len(g100[0]))
	}
	g101, _ := hc.Groups("101")
	if len(g101) != 2 || len(g101[0]) != 16 {
		t.Errorf("101: %d groups of %d, want 2 of 16", len(g101), len(g101[0]))
	}
}

// Property: group membership is consistent with rank enumeration order
// (lowest selected dim varies fastest).
func TestGroupRankOrderProperty(t *testing.T) {
	hc := newHC(t, geo64, []int{4, 2, 8})
	f := func(dimPick uint8) bool {
		dims := []string{"100", "010", "001", "110", "101", "011", "111"}[int(dimPick)%7]
		p, err := hc.buildPlan(dims)
		if err != nil {
			return false
		}
		for _, grp := range p.groups {
			prev := -1
			for r, pe := range grp {
				if int(p.rankOf[pe]) != r {
					return false
				}
				// Rank order must be ascending in PE linear order restricted
				// to the group's coordinate pattern: lower selected dims vary
				// fastest, which for our identity mapping means PE index is
				// monotonically increasing only when the selected dims are a
				// prefix; in general just check bijectivity.
				if pe == prev {
					return false
				}
				prev = pe
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDimsString(t *testing.T) {
	if got := DimsString(3, 0, 2); got != "101" {
		t.Errorf("DimsString = %q, want 101", got)
	}
	if got := DimsString(2, 1); got != "01" {
		t.Errorf("DimsString = %q, want 01", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range dim")
		}
	}()
	DimsString(2, 5)
}

func TestEffectiveLevelMatrix(t *testing.T) {
	tests := []struct {
		p    Primitive
		req  Level
		want Level
	}{
		{AlltoAll, CM, CM},
		{AlltoAll, IM, IM},
		{ReduceScatter, CM, IM},
		{AllReduce, CM, IM},
		{AllGather, CM, CM},
		{Scatter, PR, Baseline},
		{Scatter, CM, IM},
		{Gather, CM, IM},
		{Reduce, CM, IM},
		{Reduce, PR, PR},
		{Broadcast, CM, Baseline},
		{AlltoAll, Baseline, Baseline},
	}
	for _, tc := range tests {
		if got := EffectiveLevel(tc.p, tc.req); got != tc.want {
			t.Errorf("EffectiveLevel(%v, %v) = %v, want %v", tc.p, tc.req, got, tc.want)
		}
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	// UPMEM SDK: Sc, Ga, Br only (3 checks). SimplePIM: 5 checks.
	// PID-Comm: all 8.
	count := func(f Framework) int {
		n := 0
		for _, p := range Primitives() {
			if f.Supports(p) {
				n++
			}
		}
		return n
	}
	if count(UPMEMSDK) != 3 || count(SimplePIM) != 5 || count(PIDComm) != 8 {
		t.Errorf("support counts = %d/%d/%d, want 3/5/8",
			count(UPMEMSDK), count(SimplePIM), count(PIDComm))
	}
	if UPMEMSDK.Supports(AlltoAll) || SimplePIM.Supports(AlltoAll) {
		t.Error("only PID-Comm supports AlltoAll")
	}
	if !SimplePIM.Supports(AllReduce) || !SimplePIM.Supports(AllGather) {
		t.Error("SimplePIM supports AR and AG per Table I")
	}
	if UPMEMSDK.MultiInstance() || SimplePIM.MultiInstance() || !PIDComm.MultiInstance() {
		t.Error("multi-instance column wrong")
	}
}

func TestTableIIMatchesPaper(t *testing.T) {
	// Row check counts: PR=5, IM=7, CM=2.
	count := func(l Level) int {
		n := 0
		for _, p := range Primitives() {
			if TechniqueApplies(p, l) {
				n++
			}
		}
		return n
	}
	if count(PR) != 5 || count(IM) != 7 || count(CM) != 2 {
		t.Errorf("technique counts = PR:%d IM:%d CM:%d, want 5/7/2", count(PR), count(IM), count(CM))
	}
	if TechniqueApplies(Broadcast, PR) || TechniqueApplies(Broadcast, IM) || TechniqueApplies(Broadcast, CM) {
		t.Error("Broadcast gains no technique")
	}
}

func TestTableRenderings(t *testing.T) {
	for _, s := range []string{TableI(), TableII()} {
		if len(s) == 0 {
			t.Error("empty table rendering")
		}
	}
	for _, p := range Primitives() {
		if p.String() == "" || p.LongName() == "" {
			t.Error("missing primitive name")
		}
	}
	for _, l := range Levels() {
		if l.String() == "" {
			t.Error("missing level name")
		}
	}
	if fmt.Sprint(Framework(9)) == "" {
		t.Error("unknown framework should still render")
	}
}
