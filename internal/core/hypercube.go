package core

import (
	"fmt"
	"strings"

	"repro/internal/dram"
)

// Hypercube is the user-defined virtual hypercube of § IV-B: an
// N-dimensional box whose nodes are transparently mapped to physical PEs.
// Dimension 0 is "x" (the fastest-varying), dimension 1 is "y", and so on.
//
// Shape constraints (§ IV-B1): every dimension length must be a positive
// power of two, except the last, and the product must equal the number of
// PEs in the system. The mapping (§ IV-C, Figure 6) assigns hypercube
// nodes to PEs in linear order, where PE linear order follows the DRAM
// hierarchy chip -> bank -> rank -> channel; entangled groups therefore
// occupy 8 consecutive hypercube nodes along the lowest dimensions, which
// is what keeps every burst fully utilized no matter which dimensions a
// communication selects.
type Hypercube struct {
	shape []int
	sys   *dram.System
}

// NewHypercube validates shape against the system and returns the manager.
func NewHypercube(sys *dram.System, shape []int) (*Hypercube, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("core: empty hypercube shape")
	}
	prod := 1
	for d, l := range shape {
		if l <= 0 {
			return nil, fmt.Errorf("core: dimension %d has non-positive length %d", d, l)
		}
		if d != len(shape)-1 && l&(l-1) != 0 {
			return nil, fmt.Errorf("core: dimension %d length %d must be a power of two (only the last dimension may not be)", d, l)
		}
		prod *= l
	}
	if n := sys.Geometry().NumPEs(); prod != n {
		return nil, fmt.Errorf("core: shape product %d != %d PEs", prod, n)
	}
	cp := append([]int(nil), shape...)
	return &Hypercube{shape: cp, sys: sys}, nil
}

// Shape returns a copy of the hypercube shape.
func (hc *Hypercube) Shape() []int { return append([]int(nil), hc.shape...) }

// NumDims returns the number of dimensions.
func (hc *Hypercube) NumDims() int { return len(hc.shape) }

// System returns the underlying memory system.
func (hc *Hypercube) System() *dram.System { return hc.sys }

// NodePE maps hypercube coordinates to the linear PE index. Coordinate 0
// is the x dimension.
func (hc *Hypercube) NodePE(coord []int) int {
	if len(coord) != len(hc.shape) {
		panic(fmt.Sprintf("core: coordinate rank %d != %d dims", len(coord), len(hc.shape)))
	}
	idx := 0
	stride := 1
	for d, c := range coord {
		if c < 0 || c >= hc.shape[d] {
			panic(fmt.Sprintf("core: coordinate %d out of range for dim %d (len %d)", c, d, hc.shape[d]))
		}
		idx += c * stride
		stride *= hc.shape[d]
	}
	return idx
}

// PECoord is the inverse of NodePE.
func (hc *Hypercube) PECoord(pe int) []int {
	if pe < 0 || pe >= hc.sys.Geometry().NumPEs() {
		panic(fmt.Sprintf("core: PE %d out of range", pe))
	}
	coord := make([]int, len(hc.shape))
	for d, l := range hc.shape {
		coord[d] = pe % l
		pe /= l
	}
	return coord
}

// ParseDims parses a comm_dimensions bitmap string (Figure 10): character
// i selects dimension i ("100" selects x in a 3-D cube, "101" selects x
// and z). The string length must equal the number of dimensions and at
// least one dimension must be selected.
func (hc *Hypercube) ParseDims(dims string) ([]bool, error) {
	if len(dims) != len(hc.shape) {
		return nil, fmt.Errorf("core: dims %q has %d characters, hypercube has %d dimensions", dims, len(dims), len(hc.shape))
	}
	sel := make([]bool, len(dims))
	any := false
	for i, ch := range dims {
		switch ch {
		case '1':
			sel[i] = true
			any = true
		case '0':
		default:
			return nil, fmt.Errorf("core: dims %q contains %q; want only '0'/'1'", dims, string(ch))
		}
	}
	if !any {
		return nil, fmt.Errorf("core: dims %q selects no dimension", dims)
	}
	return sel, nil
}

// plan precomputes the communication groups for one dims selection: the
// cube slices of § IV-B2. Every PE belongs to exactly one group
// (multi-instance invocation, § IV-B3); member ranks follow the selected
// dimensions with the lowest selected dimension varying fastest, matching
// the node order within slices.
type plan struct {
	dims    []bool
	n       int     // group size
	groups  [][]int // group index -> rank -> linear PE
	groupOf []int32 // PE -> group index
	rankOf  []int32 // PE -> rank within group

	// pes/ranks are the precomputed full-machine kernel-launch lists
	// (launchLists), immutable after buildPlan.
	pes, ranks []int
}

// buildPlan enumerates groups for the dims selection.
func (hc *Hypercube) buildPlan(dims string) (*plan, error) {
	sel, err := hc.ParseDims(dims)
	if err != nil {
		return nil, err
	}
	n := 1
	numGroups := 1
	for d, l := range hc.shape {
		if sel[d] {
			n *= l
		} else {
			numGroups *= l
		}
	}
	p := &plan{
		dims:    sel,
		n:       n,
		groups:  make([][]int, numGroups),
		groupOf: make([]int32, hc.sys.Geometry().NumPEs()),
		rankOf:  make([]int32, hc.sys.Geometry().NumPEs()),
	}
	for g := range p.groups {
		p.groups[g] = make([]int, n)
	}
	for pe := 0; pe < hc.sys.Geometry().NumPEs(); pe++ {
		coord := hc.PECoord(pe)
		rank, rankStride := 0, 1
		group, groupStride := 0, 1
		for d, l := range hc.shape {
			if sel[d] {
				rank += coord[d] * rankStride
				rankStride *= l
			} else {
				group += coord[d] * groupStride
				groupStride *= l
			}
		}
		p.groups[group][rank] = pe
		p.groupOf[pe] = int32(group)
		p.rankOf[pe] = int32(rank)
	}
	p.pes = make([]int, len(p.rankOf))
	p.ranks = make([]int, len(p.rankOf))
	for pe := range p.pes {
		p.pes[pe] = pe
		p.ranks[pe] = int(p.rankOf[pe])
	}
	return p, nil
}

// launchLists returns the full-machine PE list and per-PE group ranks
// for a kernel launch over every PE — shared by the functional launcher
// and the cost backend's analytic accounting so the two can't drift.
// The lists are precomputed by buildPlan and immutable; callers must not
// modify them.
func (p *plan) launchLists() (pes, ranks []int) { return p.pes, p.ranks }

// Groups returns, for the dims selection, the communication groups as
// ordered PE lists (rank order within each group). The group order is the
// flattened order of the unselected dimensions (lowest fastest); this is
// also the order of per-group host buffers in rooted primitives.
func (hc *Hypercube) Groups(dims string) ([][]int, error) {
	p, err := hc.buildPlan(dims)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(p.groups))
	for i, g := range p.groups {
		out[i] = append([]int(nil), g...)
	}
	return out, nil
}

// DimsString builds a dims bitmap selecting the given dimension indices,
// e.g. DimsString(3, 0, 2) == "101".
func DimsString(numDims int, selected ...int) string {
	b := []byte(strings.Repeat("0", numDims))
	for _, d := range selected {
		if d < 0 || d >= numDims {
			panic(fmt.Sprintf("core: dimension %d out of range", d))
		}
		b[d] = '1'
	}
	return string(b)
}
