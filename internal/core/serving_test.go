package core

import (
	"errors"
	"testing"

	"repro/internal/cost"
)

// Edge tests for the serving-side scheduler features: EDF picking,
// stepped execution, overload shedding and tenant churn.

// servingTenantCfg builds a TenantConfig over the tenantTestComm
// geometry.
func servingTenantCfg(name string, base int, maxPending int, shed ShedPolicy) TenantConfig {
	return TenantConfig{Name: name, Base: base, Bytes: 1 << 12, Weight: 1,
		MaxPending: maxPending, Shed: shed}
}

// servingCollective is the unit request of these tests: an AlltoAll
// over the 16-PE test hypercube, arena-relative.
var servingCollective = Collective{Prim: AlltoAll, Dims: "1",
	Src: Span(0, 16*8), Dst: At(2 * 16 * 8), Level: CM}

// The EDF pick order over hazard-free candidates: earliest absolute
// deadline first, any deadline before none, ties and the deadline-free
// tail by submission order — across buckets and past bucket heads.
func TestEDFPickOrder(t *testing.T) {
	a := &subQueue{weight: 1}
	b := &subQueue{weight: 1}
	c := &Comm{queues: []*subQueue{a, b}, sched: SchedEDF}
	mk := func(seq uint64, deadline float64) *Future {
		f := fakeFuture(1)
		f.seq = seq
		f.deadline = cost.Seconds(deadline)
		return f
	}
	f1, f3 := mk(1, 0), mk(3, 5)
	f2, f4 := mk(2, 9), mk(4, 1)
	a.q = []*Future{f1, f3}
	b.q = []*Future{f2, f4}
	want := []*Future{f4, f3, f2, f1}
	for i, w := range want {
		c.asyncMu.Lock()
		got := c.pickLocked()
		c.asyncMu.Unlock()
		if got != w {
			t.Fatalf("pick %d: got seq %d, want seq %d", i, got.seq, w.seq)
		}
	}
}

// An urgent plan that conflicts with an earlier queued plan must wait
// for it: EDF never reorders across a data hazard, even when the
// earlier plan has no deadline at all.
func TestEDFHoldsConflictingPlanToSeqOrder(t *testing.T) {
	a := &subQueue{weight: 1}
	c := &Comm{queues: []*subQueue{a}, sched: SchedEDF}
	mk := func(seq uint64, deadline float64, off int) *Future {
		f := fakeFuture(1)
		f.seq = seq
		f.deadline = cost.Seconds(deadline)
		f.cp.regs.write(off, 64)
		return f
	}
	slow := mk(1, 0, 0)   // no deadline, owns [0,64)
	urgent := mk(2, 1, 0) // tight deadline, WAW on [0,64)
	free := mk(3, 5, 512) // later deadline, independent region
	a.q = []*Future{slow, urgent, free}
	want := []*Future{free, slow, urgent}
	for i, w := range want {
		c.asyncMu.Lock()
		got := c.pickLocked()
		c.asyncMu.Unlock()
		if got != w {
			t.Fatalf("pick %d: got seq %d, want seq %d", i, got.seq, w.seq)
		}
	}
}

// Stepped mode: submissions queue without a worker, Pending reports the
// backlog, Step retires exactly one plan per call in scheduling order,
// and Flush drains the remainder. Step on an idle comm is a no-op.
func TestSteppedStepAndFlush(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	c.SetStepped(true)
	if f := c.Step(); f != nil {
		t.Fatalf("Step on an idle comm returned %v", f)
	}
	ta, err := c.NewTenantCfg(servingTenantCfg("a", 0, 0, ShedReject))
	if err != nil {
		t.Fatal(err)
	}
	var fs []*Future
	for i := 0; i < 3; i++ {
		f, err := ta.Submit(servingCollective)
		if err != nil {
			t.Fatal(err)
		}
		fs = append(fs, f)
	}
	if got := c.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	first := c.Step()
	if first != fs[0] {
		t.Fatalf("Step retired the wrong plan")
	}
	if !first.Done() || first.Err() != nil {
		t.Fatalf("stepped future not complete: %v", first.Err())
	}
	if s, e := first.Window(); e <= s {
		t.Fatalf("stepped future has empty window [%v,%v]", s, e)
	}
	if got := c.Pending(); got != 2 {
		t.Fatalf("Pending after one step = %d, want 2", got)
	}
	c.Flush()
	for i, f := range fs {
		if !f.Done() || f.Err() != nil {
			t.Fatalf("future %d not drained by Flush: %v", i, f.Err())
		}
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending after Flush = %d, want 0", got)
	}
}

// A submission rejected by overload admission returns an already
// completed Future carrying ErrOverloaded and a zero Window — callers
// never block on a shed request.
func TestOverloadRejectReturnsCompletedZeroWindow(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	c.SetStepped(true)
	ta, err := c.NewTenantCfg(servingTenantCfg("a", 0, 1, ShedReject))
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := ta.Submit(servingCollective)
	if err != nil {
		t.Fatal(err)
	}
	rejected, err := ta.Submit(servingCollective)
	if err != nil {
		t.Fatal(err)
	}
	if !rejected.Done() {
		t.Fatal("rejected future not immediately complete")
	}
	if !errors.Is(rejected.Err(), ErrOverloaded) {
		t.Fatalf("rejected future error = %v, want ErrOverloaded", rejected.Err())
	}
	if s, e := rejected.Window(); s != 0 || e != 0 {
		t.Fatalf("rejected future has a window [%v,%v], want zero", s, e)
	}
	c.Flush()
	if accepted.Err() != nil {
		t.Fatalf("accepted plan failed: %v", accepted.Err())
	}
	if got := ta.Admitted(); got != accepted.Cost().Total() {
		t.Fatalf("quota ledger %v, want the accepted plan's %v (shed charge not refunded)",
			got, accepted.Cost().Total())
	}
}

// ShedOldest sacrifices the oldest queued plan for the incoming one.
func TestShedOldestDropsQueuedVictim(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	c.SetStepped(true)
	ta, err := c.NewTenantCfg(servingTenantCfg("a", 0, 1, ShedOldest))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := ta.Submit(servingCollective)
	if err != nil {
		t.Fatal(err)
	}
	winner, err := ta.Submit(servingCollective)
	if err != nil {
		t.Fatal(err)
	}
	if !victim.Done() || !errors.Is(victim.Err(), ErrOverloaded) {
		t.Fatalf("oldest queued plan not shed: done=%v err=%v", victim.Done(), victim.Err())
	}
	c.Flush()
	if winner.Err() != nil {
		t.Fatalf("incoming plan failed: %v", winner.Err())
	}
}

// Tenant.Close retires the session: queued work drains first, later
// submissions and runs fail with ErrTenantClosed, a second Close fails
// the same way, and the tenant moves to the retired list with its meter
// intact.
func TestTenantCloseRetires(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	ta, err := c.NewTenantCfg(servingTenantCfg("a", 0, 0, ShedReject))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ta.Submit(servingCollective)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if f.Err() != nil {
		t.Fatalf("pending plan not drained before close: %v", f.Err())
	}
	if !ta.Closed() {
		t.Fatal("tenant not marked closed")
	}
	if err := ta.Close(); !errors.Is(err, ErrTenantClosed) {
		t.Fatalf("double close error = %v, want ErrTenantClosed", err)
	}
	if _, err := ta.Run(servingCollective); !errors.Is(err, ErrTenantClosed) {
		t.Fatalf("Run after close error = %v, want ErrTenantClosed", err)
	}
	fc, err := ta.Submit(servingCollective)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(fc.Err(), ErrTenantClosed) {
		t.Fatalf("Submit after close future error = %v, want ErrTenantClosed", fc.Err())
	}
	for _, live := range c.Tenants() {
		if live == ta {
			t.Fatal("closed tenant still listed live")
		}
	}
	retired := c.RetiredTenants()
	if len(retired) != 1 || retired[0] != ta {
		t.Fatalf("retired list %v, want [a]", retired)
	}
	if retired[0].Meter().Snapshot().Total() == 0 {
		t.Fatal("retired tenant lost its meter")
	}
}

// A successor tenant re-carving a churned tenant's arena compiles fresh
// plans: Close must evict the retired owner's cached plans (their keys
// carry absolute offsets, so the successor's signatures collide), and
// the cache must miss — not adopt the dead tenant's plan.
func TestTenantCloseEvictsOwnedPlans(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	ta, err := c.NewTenantCfg(servingTenantCfg("a", 0, 0, ShedReject))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ta.Compile(servingCollective); err != nil {
		t.Fatal(err)
	}
	if _, err := ta.Compile(servingCollective); err != nil {
		t.Fatal(err)
	}
	st := c.PlanCacheStats()
	if st.PlanHits != 1 || st.PlanMisses != 1 {
		t.Fatalf("before close: %d hits / %d misses, want 1/1", st.PlanHits, st.PlanMisses)
	}
	if err := ta.Close(); err != nil {
		t.Fatal(err)
	}
	tb, err := c.NewTenantCfg(servingTenantCfg("b", 0, 0, ShedReject))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := tb.Compile(servingCollective)
	if err != nil {
		t.Fatal(err)
	}
	st = c.PlanCacheStats()
	if st.PlanMisses != 2 {
		t.Fatalf("successor adopted the retired tenant's plan (%d misses, want 2)", st.PlanMisses)
	}
	if f := cp.Submit(); f.Err() != nil {
		t.Fatalf("successor plan failed: %v", f.Err())
	}
}

// After churn empties and removes a bucket, a successor tenant's fresh
// bucket must rejoin the weighted-fair scheduler at the current virtual
// clock — no burst credit accumulated while it did not exist.
func TestEmptyBucketRejoinsAtVclockAfterChurn(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	ta, err := c.NewTenantCfg(servingTenantCfg("a", 0, 0, ShedReject))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c.NewTenantCfg(servingTenantCfg("b", 1<<12, 0, ShedReject))
	if err != nil {
		t.Fatal(err)
	}
	// Drive b's virtual time forward, then churn a (idle the whole
	// time): the successor at a's base must join at the clock, not at 0.
	for i := 0; i < 8; i++ {
		f, err := tb.Submit(servingCollective)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Err(); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if err := ta.Close(); err != nil {
		t.Fatal(err)
	}
	tc, err := c.NewTenantCfg(servingTenantCfg("c", 0, 0, ShedReject))
	if err != nil {
		t.Fatal(err)
	}
	fc, err := tc.Submit(servingCollective)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.Err(); err != nil {
		t.Fatal(err)
	}
	c.asyncMu.Lock()
	vb, vc := tb.sq.vtime, tc.sq.vtime
	c.asyncMu.Unlock()
	if vc == 0 {
		t.Errorf("successor bucket kept zero vtime (burst credit); want join at vclock ~%v", vb)
	}
}
