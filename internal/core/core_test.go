package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// testSystem builds a small system and hypercube.
func testSystem(t *testing.T, geo dram.Geometry, shape []int) *Comm {
	t.Helper()
	sys, err := dram.NewSystem(geo)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHypercube(sys, shape)
	if err != nil {
		t.Fatal(err)
	}
	return NewComm(hc, cost.DefaultParams())
}

var geo64 = dram.Geometry{Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14} // 64 PEs
var geo24 = dram.Geometry{Channels: 3, RanksPerChannel: 1, BanksPerChip: 1, MramPerBank: 1 << 14} // 24 PEs

// fillSrc writes deterministic random data to every PE's src region and
// returns the per-PE copies.
func fillSrc(c *Comm, off, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	numPE := c.Hypercube().System().Geometry().NumPEs()
	in := make([][]byte, numPE)
	for pe := 0; pe < numPE; pe++ {
		in[pe] = make([]byte, n)
		rng.Read(in[pe])
		c.SetPEBuffer(pe, off, in[pe])
	}
	return in
}

// groupInputs selects the group's members' buffers in rank order.
func groupInputs(in [][]byte, grp []int) [][]byte {
	out := make([][]byte, len(grp))
	for i, pe := range grp {
		out[i] = in[pe]
	}
	return out
}

type caseSpec struct {
	name  string
	geo   dram.Geometry
	shape []int
	dims  string
}

// cases covers 1D, 2D and 3D hypercubes; groups that are full entangled
// groups, sub-groups of one, strided across many, and mixtures (Figure 9);
// plus a non-power-of-two last dimension.
var cases = []caseSpec{
	{"1D-full", geo64, []int{64}, "1"},
	{"2D-x", geo64, []int{8, 8}, "10"},
	{"2D-y", geo64, []int{8, 8}, "01"},
	{"2D-xy", geo64, []int{8, 8}, "11"},
	{"2D-subEG-x", geo64, []int{4, 16}, "10"},
	{"2D-subEG-y", geo64, []int{4, 16}, "01"},
	{"3D-x", geo64, []int{4, 2, 8}, "100"},
	{"3D-y", geo64, []int{4, 2, 8}, "010"},
	{"3D-xz", geo64, []int{4, 2, 8}, "101"},
	{"3D-z", geo64, []int{4, 2, 8}, "001"},
	{"nonpow2-x", geo24, []int{8, 3}, "10"},
	{"nonpow2-y", geo24, []int{8, 3}, "01"},
	{"nonpow2-strided", geo24, []int{4, 6}, "01"},
}

func TestAlltoAllAllLevels(t *testing.T) {
	for _, tc := range cases {
		for _, lvl := range Levels() {
			t.Run(fmt.Sprintf("%s/%v", tc.name, lvl), func(t *testing.T) {
				c := testSystem(t, tc.geo, tc.shape)
				p, err := c.plan(tc.dims)
				if err != nil {
					t.Fatal(err)
				}
				s := 16 // bytes per block
				m := p.n * s
				in := fillSrc(c, 0, m, 42)
				if _, err := c.AlltoAll(tc.dims, 0, 2*m, m, lvl); err != nil {
					t.Fatal(err)
				}
				for _, grp := range p.groups {
					want := RefAlltoAll(groupInputs(in, grp), s)
					for j, pe := range grp {
						got := c.GetPEBuffer(pe, 2*m, m)
						if !bytes.Equal(got, want[j]) {
							t.Fatalf("group PE %d (rank %d): mismatch", pe, j)
						}
					}
				}
			})
		}
	}
}

func TestReduceScatterAllLevels(t *testing.T) {
	for _, tc := range cases {
		for _, lvl := range []Level{Baseline, PR, IM} {
			t.Run(fmt.Sprintf("%s/%v", tc.name, lvl), func(t *testing.T) {
				c := testSystem(t, tc.geo, tc.shape)
				p, _ := c.plan(tc.dims)
				s := 16
				m := p.n * s
				in := fillSrc(c, 0, m, 7)
				if _, err := c.ReduceScatter(tc.dims, 0, 2*m, m, elem.I32, elem.Sum, lvl); err != nil {
					t.Fatal(err)
				}
				for _, grp := range p.groups {
					want := RefReduceScatter(elem.I32, elem.Sum, groupInputs(in, grp), s)
					for j, pe := range grp {
						got := c.GetPEBuffer(pe, 2*m, s)
						if !bytes.Equal(got, want[j]) {
							t.Fatalf("PE %d rank %d mismatch", pe, j)
						}
					}
				}
			})
		}
	}
}

func TestAllReduceAllLevelsTypesOps(t *testing.T) {
	combos := []struct {
		t  elem.Type
		op elem.Op
	}{
		{elem.I32, elem.Sum}, {elem.I8, elem.Sum}, {elem.I16, elem.Min},
		{elem.I64, elem.Max}, {elem.I32, elem.Or}, {elem.I8, elem.And}, {elem.I16, elem.Xor},
	}
	for _, tc := range cases[:6] { // representative subset for the type sweep
		for _, combo := range combos {
			for _, lvl := range []Level{Baseline, PR, IM} {
				t.Run(fmt.Sprintf("%s/%v/%v/%v", tc.name, combo.t, combo.op, lvl), func(t *testing.T) {
					c := testSystem(t, tc.geo, tc.shape)
					p, _ := c.plan(tc.dims)
					s := 8
					m := p.n * s
					in := fillSrc(c, 0, m, int64(lvl)*100+int64(combo.op))
					if _, err := c.AllReduce(tc.dims, 0, 2*m, m, combo.t, combo.op, lvl); err != nil {
						t.Fatal(err)
					}
					for _, grp := range p.groups {
						want := RefAllReduce(combo.t, combo.op, groupInputs(in, grp))
						for j, pe := range grp {
							got := c.GetPEBuffer(pe, 2*m, m)
							if !bytes.Equal(got, want[j]) {
								t.Fatalf("PE %d rank %d mismatch", pe, j)
							}
						}
					}
				})
			}
		}
	}
}

func TestAllGatherAllLevels(t *testing.T) {
	for _, tc := range cases {
		for _, lvl := range Levels() {
			t.Run(fmt.Sprintf("%s/%v", tc.name, lvl), func(t *testing.T) {
				c := testSystem(t, tc.geo, tc.shape)
				p, _ := c.plan(tc.dims)
				s := 16
				in := fillSrc(c, 0, s, 99)
				if _, err := c.AllGather(tc.dims, 0, 1024, s, lvl); err != nil {
					t.Fatal(err)
				}
				for _, grp := range p.groups {
					want := RefAllGather(groupInputs(in, grp))
					for j, pe := range grp {
						got := c.GetPEBuffer(pe, 1024, p.n*s)
						if !bytes.Equal(got, want[j]) {
							t.Fatalf("PE %d rank %d mismatch", pe, j)
						}
					}
				}
			})
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, tc := range cases {
		for _, lvl := range []Level{Baseline, IM} {
			t.Run(fmt.Sprintf("%s/%v", tc.name, lvl), func(t *testing.T) {
				c := testSystem(t, tc.geo, tc.shape)
				p, _ := c.plan(tc.dims)
				s := 24
				rng := rand.New(rand.NewSource(5))
				bufs := make([][]byte, len(p.groups))
				for g := range bufs {
					bufs[g] = make([]byte, p.n*s)
					rng.Read(bufs[g])
				}
				if _, err := c.Scatter(tc.dims, bufs, 0, s, lvl); err != nil {
					t.Fatal(err)
				}
				// Each PE must hold its block.
				for g, grp := range p.groups {
					want := RefScatter(bufs[g], p.n)
					for i, pe := range grp {
						if !bytes.Equal(c.GetPEBuffer(pe, 0, s), want[i]) {
							t.Fatalf("scatter: PE %d rank %d mismatch", pe, i)
						}
					}
				}
				got, _, err := c.Gather(tc.dims, 0, s, lvl)
				if err != nil {
					t.Fatal(err)
				}
				for g := range bufs {
					if !bytes.Equal(got[g], bufs[g]) {
						t.Fatalf("gather: group %d mismatch", g)
					}
				}
			})
		}
	}
}

func TestReduceAllLevels(t *testing.T) {
	for _, tc := range cases {
		for _, lvl := range []Level{Baseline, PR, IM} {
			t.Run(fmt.Sprintf("%s/%v", tc.name, lvl), func(t *testing.T) {
				c := testSystem(t, tc.geo, tc.shape)
				p, _ := c.plan(tc.dims)
				s := 8
				m := p.n * s
				in := fillSrc(c, 0, m, 123)
				got, _, err := c.Reduce(tc.dims, 0, m, elem.I16, elem.Sum, lvl)
				if err != nil {
					t.Fatal(err)
				}
				for g, grp := range p.groups {
					want := RefReduce(elem.I16, elem.Sum, groupInputs(in, grp))
					if !bytes.Equal(got[g], want) {
						t.Fatalf("group %d mismatch", g)
					}
				}
			})
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testSystem(t, tc.geo, tc.shape)
			p, _ := c.plan(tc.dims)
			s := 32
			rng := rand.New(rand.NewSource(8))
			bufs := make([][]byte, len(p.groups))
			for g := range bufs {
				bufs[g] = make([]byte, s)
				rng.Read(bufs[g])
			}
			if _, err := c.Broadcast(tc.dims, bufs, 64, IM); err != nil {
				t.Fatal(err)
			}
			for g, grp := range p.groups {
				for _, pe := range grp {
					if !bytes.Equal(c.GetPEBuffer(pe, 64, s), bufs[g]) {
						t.Fatalf("group %d PE %d mismatch", g, pe)
					}
				}
			}
		})
	}
}

// All optimization levels must produce bit-identical results (the paper's
// techniques are pure performance optimizations).
func TestLevelsProduceIdenticalResults(t *testing.T) {
	tc := cases[8] // 3D-xz: multi-EG groups
	results := make(map[Level][]byte)
	for _, lvl := range Levels() {
		c := testSystem(t, tc.geo, tc.shape)
		p, _ := c.plan(tc.dims)
		m := p.n * 8
		fillSrc(c, 0, m, 77)
		if _, err := c.AlltoAll(tc.dims, 0, 2*m, m, lvl); err != nil {
			t.Fatal(err)
		}
		var all []byte
		for pe := 0; pe < tc.geo.NumPEs(); pe++ {
			all = append(all, c.GetPEBuffer(pe, 2*m, m)...)
		}
		results[lvl] = all
	}
	for _, lvl := range Levels()[1:] {
		if !bytes.Equal(results[lvl], results[Baseline]) {
			t.Errorf("level %v differs from Baseline", lvl)
		}
	}
}

// Cost-structure assertions: the breakdown categories must reflect which
// techniques are active (the basis of Figures 16 and 17). Run at a
// realistic scale (256 PEs, 16 KiB/PE) where the asymptotic ordering
// holds; at tiny payloads kernel-launch overheads legitimately favor the
// baseline (the small-size regime of Figure 18).
func TestCostStructureByLevel(t *testing.T) {
	geo := dram.Geometry{Channels: 1, RanksPerChannel: 4, BanksPerChip: 8, MramPerBank: 1 << 16}
	run := func(lvl Level) cost.Breakdown {
		c := testSystem(t, geo, []int{16, 16})
		m := 16 * 1024
		fillSrc(c, 0, m, 3)
		bd, err := c.AlltoAll("10", 0, 2*m, m, lvl)
		if err != nil {
			t.Fatal(err)
		}
		return bd
	}
	base, pr, im, cm := run(Baseline), run(PR), run(IM), run(CM)

	if base.Get(cost.PEMod) != 0 {
		t.Error("baseline should have no PE-side modulation")
	}
	if pr.Get(cost.PEMod) <= 0 {
		t.Error("PR should have PE-side modulation")
	}
	if base.Get(cost.HostMem) <= 0 || pr.Get(cost.HostMem) <= 0 {
		t.Error("bulk paths should touch host memory")
	}
	if im.Get(cost.HostMem) != 0 {
		t.Error("in-register modulation must not touch host memory")
	}
	if im.Get(cost.DomainTransfer) <= 0 {
		t.Error("IM AlltoAll still pays domain transfer")
	}
	if cm.Get(cost.DomainTransfer) != 0 {
		t.Error("cross-domain modulation must eliminate domain transfer")
	}
	// Monotonic improvement.
	if !(cm.Total() < im.Total() && im.Total() < pr.Total() && pr.Total() < base.Total()) {
		t.Errorf("totals not monotonically improving: base=%v pr=%v im=%v cm=%v",
			base.Total(), pr.Total(), im.Total(), cm.Total())
	}
	// Host modulation must shrink at each step.
	if !(base.Get(cost.HostMod) > pr.Get(cost.HostMod) && pr.Get(cost.HostMod) > im.Get(cost.HostMod)) {
		t.Error("host modulation should shrink with PR then IM")
	}
}

// 8-bit elements let reducing primitives skip domain transfer (§ V-C).
func TestInt8SkipsDomainTransfer(t *testing.T) {
	run := func(et elem.Type) cost.Breakdown {
		c := testSystem(t, geo64, []int{8, 8})
		m := 8 * 64
		fillSrc(c, 0, m, 4)
		bd, err := c.AllReduce("10", 0, 2*m, m, et, elem.Sum, IM)
		if err != nil {
			t.Fatal(err)
		}
		return bd
	}
	if dt := run(elem.I8).Get(cost.DomainTransfer); dt != 0 {
		t.Errorf("I8 AllReduce has DT time %v, want 0", dt)
	}
	if dt := run(elem.I32).Get(cost.DomainTransfer); dt <= 0 {
		t.Error("I32 AllReduce should pay DT")
	}
}

func TestValidationErrors(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	if _, err := c.AlltoAll("1", 0, 512, 512, CM); err == nil {
		t.Error("wrong dims length accepted")
	}
	if _, err := c.AlltoAll("00", 0, 512, 512, CM); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := c.AlltoAll("10", 0, 256, 512, CM); err == nil {
		t.Error("overlapping src/dst accepted")
	}
	if _, err := c.AlltoAll("10", 0, 1024, 100, CM); err == nil {
		t.Error("unaligned size accepted")
	}
	if _, err := c.AlltoAll("10", 0, 1024, 24, CM); err == nil {
		t.Error("block size not divisible accepted (24/8 = 3 bytes)")
	}
	if _, err := c.ReduceScatter("10", 0, 1024, 1<<20, elem.I32, elem.Sum, IM); err == nil {
		t.Error("oversized region accepted")
	}
	if _, err := c.Scatter("10", make([][]byte, 3), 0, 64, IM); err == nil {
		t.Error("wrong buffer count accepted")
	}
	if _, err := c.Broadcast("10", [][]byte{make([]byte, 64)}, 0, IM); err == nil {
		t.Error("wrong broadcast buffer count accepted")
	}
}

func TestMeterAccumulatesAcrossCalls(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	m := 8 * 16
	fillSrc(c, 0, m, 1)
	if _, err := c.AlltoAll("10", 0, 2*m, m, CM); err != nil {
		t.Fatal(err)
	}
	t1 := c.Meter().Total()
	if _, err := c.AlltoAll("10", 0, 2*m, m, CM); err != nil {
		t.Fatal(err)
	}
	if t2 := c.Meter().Total(); t2 <= t1 {
		t.Errorf("meter did not accumulate: %v then %v", t1, t2)
	}
}
