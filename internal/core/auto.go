package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/elem"
)

// The autotuner: a collective called with the Auto pseudo-level (and/or
// AlgoAuto) is dry-compiled on the cost-only backend at every applicable
// (algorithm, level) candidate, the best candidate wins, and the
// decision is cached per call signature (primitive, dims, payload bytes,
// element type, operator, algorithm constraint). Because the cost-only
// backend reproduces the functional breakdowns exactly, the picked
// candidate is the one the functional run would have measured as best —
// at microseconds of dry-run cost instead of a full byte-accurate
// execution per candidate.
//
// Two objectives are available (SetAutoObjective):
//
//   - AutoMeter (default) minimizes the meter total: the sum of all
//     charges, i.e. the serial execution time of one call.
//   - AutoMakespan minimizes the pipelined dry-placed makespan: each
//     candidate's charge trace is placed AutoPipelineDepth times on a
//     scratch cost.Timeline (all four lanes, every copy free to start at
//     zero — cost.PipelinedMakespan), modeling the async regime where
//     independent instances overlap. Under overlap the meter-cheapest
//     plan is not always the elapsed-time winner: a trace that
//     concentrates its time on one lane serializes there, while a
//     lane-balanced trace with a larger sum can finish earlier.
//
// Ties go to the earlier candidate in scan order (reference algorithm
// first, then ascending levels), so Auto's pre-algorithm behavior is
// preserved exactly: an alternative algorithm is picked only when it is
// strictly better under the selected objective.

// AutoObjective selects what Comm-level Auto resolution minimizes.
type AutoObjective int

const (
	// AutoMeter picks the candidate with the smallest meter total
	// (serial cost). The default.
	AutoMeter AutoObjective = iota
	// AutoMakespan picks the candidate with the smallest pipelined
	// dry-placed makespan (overlapped elapsed time).
	AutoMakespan
)

func (o AutoObjective) String() string {
	if o == AutoMakespan {
		return "makespan"
	}
	return "meter"
}

// AutoPipelineDepth is the number of independent trace copies the
// makespan objective dry-places: deep enough that lane steady-state
// dominates the pipeline fill, small enough that scoring stays
// microseconds per candidate.
const AutoPipelineDepth = 4

// autoKey identifies one Auto decision. Offsets are excluded (the cost
// model depends only on shapes and sizes) except for the in-place bit,
// which changes which levels apply. algo is the caller's algorithm
// constraint: AlgoAuto for the full search, a concrete algorithm when
// only the level is searched.
type autoKey struct {
	prim     Primitive
	dims     string
	bytes    int
	elemType elem.Type
	op       elem.Op
	inPlace  bool
	algo     Algorithm
}

// autoDecision is one cached Auto resolution: the winning candidate and
// the scores that justified it (both objectives are recorded regardless
// of which one picked).
type autoDecision struct {
	algo     Algorithm
	lvl      Level
	meter    cost.Seconds
	makespan cost.Seconds
}

// shadowComm returns the comm's cost-only twin (sharing the hypercube
// and cost parameters but with its own meter), creating it on first use.
// Callers must hold autoMu.
func (c *Comm) shadowComm() *Comm {
	if c.shadow == nil {
		c.shadow = NewCostComm(c.hc, c.h.Params())
	}
	// Dry-run with the parent's fusion level so Auto compares candidates
	// on the schedules the real compile will produce.
	c.shadow.SetFuse(c.Fuse())
	return c.shadow
}

// SetAutoObjective configures what Auto resolution minimizes. Cached
// decisions are dropped on a change — they were scored under the old
// objective. Plans already compiled keep the candidate they resolved to.
func (c *Comm) SetAutoObjective(o AutoObjective) {
	c.autoMu.Lock()
	defer c.autoMu.Unlock()
	if c.autoObj != o {
		c.autoObj = o
		c.autoCache = make(map[autoKey]autoDecision)
	}
}

// AutoObjective returns the comm's current Auto objective.
func (c *Comm) AutoObjective() AutoObjective {
	c.autoMu.Lock()
	defer c.autoMu.Unlock()
	return c.autoObj
}

// autoPick evaluates every candidate (algorithm, level) pair for the key
// on the cost-only shadow and returns the best under the comm's
// objective. The algorithm axis is the key's constraint (AlgoAuto means
// reference plus every registered algorithm); the level axis is every
// distinct effective level. A candidate whose dry compile fails is
// inapplicable to this signature (e.g. the streaming levels cannot run
// an in-place AlltoAll; a registered predicate rejects the level) and is
// skipped; autoPick errors only when no candidate applies at all.
func (c *Comm) autoPick(key autoKey, run func(sh *Comm, alg Algorithm, lvl Level) (*CompiledPlan, error)) (autoDecision, error) {
	c.autoMu.Lock()
	defer c.autoMu.Unlock()
	if dec, ok := c.autoCache[key]; ok {
		return dec, nil
	}
	sh := c.shadowComm()
	algs := []Algorithm{key.algo}
	if key.algo == AlgoAuto {
		algs = RegisteredAlgorithms(key.prim)
	}
	var best autoDecision
	found := false
	var fails []error
	for _, alg := range algs {
		seen := make(map[Level]bool)
		for _, l := range Levels() {
			eff := EffectiveLevel(key.prim, l)
			if seen[eff] {
				continue
			}
			seen[eff] = true
			cp, err := run(sh, alg, eff)
			if err != nil {
				fails = append(fails, err)
				continue
			}
			cand := autoDecision{
				algo:     alg,
				lvl:      eff,
				meter:    cp.tr.total.Total(),
				makespan: cost.PipelinedMakespan(cp.tr.segs, AutoPipelineDepth),
			}
			// Strict less on the scan keeps the earliest candidate
			// (reference algorithm, lowest level) on ties.
			if !found || c.autoLess(cand, best) {
				best, found = cand, true
			}
		}
	}
	if !found {
		return autoDecision{}, fmt.Errorf("core: no (algorithm, level) candidate applies: %w", errors.Join(fails...))
	}
	c.autoCache[key] = best
	return best, nil
}

// autoLess orders two candidates under the comm's objective, with the
// other objective as tie-break. Callers hold autoMu.
func (c *Comm) autoLess(a, b autoDecision) bool {
	x, y, tx, ty := a.meter, b.meter, a.makespan, b.makespan
	if c.autoObj == AutoMakespan {
		x, y, tx, ty = a.makespan, b.makespan, a.meter, b.meter
	}
	if x != y {
		return x < y
	}
	return tx < ty
}

// AutoLevel returns the optimization level Auto would choose for the
// given call signature under the full (algorithm x level) search.
// bytesPerPE has the same meaning as in the corresponding collective
// (for AllGather it is the per-PE contribution; for Scatter the per-PE
// destination size). t and op are ignored for non-reducing primitives.
// The decision is cached on the Comm, so repeated Auto calls with the
// same signature resolve in a map lookup.
func (c *Comm) AutoLevel(prim Primitive, dims string, bytesPerPE int, t elem.Type, op elem.Op) (Level, error) {
	dec, err := c.autoResolve(prim, dims, bytesPerPE, t, op, AlgoAuto, false)
	if err != nil {
		return 0, err
	}
	return dec.lvl, nil
}

// autoResolve resolves an Auto signature to its winning (algorithm,
// level) decision: the full search for algo == AlgoAuto, the level-only
// search for a concrete algorithm constraint. inPlace is the in-place
// bit of the originating call (an in-place AlltoAll restricts the
// applicable levels).
func (c *Comm) autoResolve(prim Primitive, dims string, bytesPerPE int, t elem.Type, op elem.Op, algo Algorithm, inPlace bool) (autoDecision, error) {
	if prim == Broadcast {
		// Single level at every optimization setting (§ VIII-B); the
		// algorithm constraint passes through (AlgoAuto resolves to the
		// reference driver broadcast — alternatives are opt-in).
		alg := algo
		if alg == AlgoAuto {
			alg = AlgoReference
		}
		return autoDecision{algo: alg, lvl: Baseline}, nil
	}
	key := autoKey{prim: prim, dims: dims, bytes: bytesPerPE, inPlace: inPlace, algo: algo}
	switch prim {
	case ReduceScatter, AllReduce, Reduce:
		key.elemType, key.op = t, op
	}
	dec, err := c.autoPick(key, func(sh *Comm, alg Algorithm, lvl Level) (*CompiledPlan, error) {
		return autoDryCompile(sh, prim, dims, bytesPerPE, t, op, alg, lvl, inPlace)
	})
	if err != nil {
		return autoDecision{}, fmt.Errorf("Auto(%v): %w", prim, err)
	}
	return dec, nil
}

// autoDryCompile compiles one candidate on the cost-only shadow with
// canonical offsets (source at 0, destination immediately after the
// source region — or coinciding with it for an in-place signature). The
// shadow shares the caller's system geometry, so a signature that fits
// the caller's MRAM fits here too. Compilation alone yields the
// candidate's precomputed per-run cost and lane segments; nothing
// executes.
func autoDryCompile(sh *Comm, prim Primitive, dims string, bytesPerPE int, t elem.Type, op elem.Op, alg Algorithm, lvl Level, inPlace bool) (*CompiledPlan, error) {
	m := bytesPerPE
	dst := m
	if inPlace {
		dst = 0
	}
	d := Collective{Prim: prim, Dims: dims, Level: lvl, Algorithm: alg}
	switch prim {
	case AlltoAll:
		d.Src, d.Dst = Span(0, m), At(dst)
	case ReduceScatter, AllReduce, AllGather:
		d.Src, d.Dst, d.Elem, d.Op = Span(0, m), At(m), t, op
	case Scatter:
		d.Dst = Span(0, m) // nil Hosts: cost-only sizes are implied
	case Gather:
		d.Src = Span(0, m)
	case Reduce:
		d.Src, d.Elem, d.Op = Span(0, m), t, op
	default:
		return nil, fmt.Errorf("core: no dry run for primitive %v", prim)
	}
	return sh.Compile(d)
}

// AutoDecision is one row of the Auto decision cache as surfaced by
// AutoDecisions (cmd/pidinfo -auto renders the table).
type AutoDecision struct {
	// The call signature: primitive, dims selection, per-PE payload
	// bytes, element/op (zero-valued for non-reducing primitives), the
	// in-place bit, and the caller's algorithm constraint (AlgoAuto for
	// the full search).
	Prim       Primitive
	Dims       string
	Bytes      int
	Elem       elem.Type
	Op         elem.Op
	InPlace    bool
	Constraint Algorithm
	// The winning candidate and its scores under both objectives.
	Algo     Algorithm
	Level    Level
	Meter    cost.Seconds
	Makespan cost.Seconds
}

// AutoDecisions returns a snapshot of the comm's cached Auto decisions,
// sorted by (primitive, dims, bytes, constraint) for stable display.
func (c *Comm) AutoDecisions() []AutoDecision {
	c.autoMu.Lock()
	defer c.autoMu.Unlock()
	out := make([]AutoDecision, 0, len(c.autoCache))
	for k, dec := range c.autoCache {
		out = append(out, AutoDecision{
			Prim: k.prim, Dims: k.dims, Bytes: k.bytes,
			Elem: k.elemType, Op: k.op, InPlace: k.inPlace, Constraint: k.algo,
			Algo: dec.algo, Level: dec.lvl, Meter: dec.meter, Makespan: dec.makespan,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Prim != b.Prim {
			return a.Prim < b.Prim
		}
		if a.Dims != b.Dims {
			return a.Dims < b.Dims
		}
		if a.Bytes != b.Bytes {
			return a.Bytes < b.Bytes
		}
		return a.Constraint < b.Constraint
	})
	return out
}
