package core

import (
	"errors"
	"fmt"

	"repro/internal/cost"
	"repro/internal/elem"
)

// The level autotuner: a collective called with the Auto pseudo-level is
// dry-run on the cost-only backend at every distinct effective level,
// the cheapest level wins, and the decision is cached per call signature
// (primitive, dims, payload bytes, element type, operator). Because the
// cost-only backend reproduces the functional breakdowns exactly, the
// picked level is the one the functional run would have measured as
// cheapest — at microseconds of dry-run cost instead of a full byte-
// accurate execution per candidate.

// autoKey identifies one AutoLevel decision. Offsets are excluded (the
// cost model depends only on shapes and sizes) except for the in-place
// bit, which changes which levels apply.
type autoKey struct {
	prim     Primitive
	dims     string
	bytes    int
	elemType elem.Type
	op       elem.Op
	inPlace  bool
}

// shadowComm returns the comm's cost-only twin (sharing the hypercube
// and cost parameters but with its own meter), creating it on first use.
// Callers must hold autoMu.
func (c *Comm) shadowComm() *Comm {
	if c.shadow == nil {
		c.shadow = NewCostComm(c.hc, c.h.Params())
	}
	// Dry-run with the parent's fusion level so Auto compares levels on
	// the schedules the real compile will produce.
	c.shadow.SetFuse(c.Fuse())
	return c.shadow
}

// autoPick evaluates run at every distinct effective level for the
// key's primitive on the cost-only shadow and returns the cheapest. Ties
// go to the lower level. A candidate level whose dry run fails is
// inapplicable to this signature (e.g. the streaming levels cannot run
// an in-place AlltoAll) and is skipped; autoPick errors only when no
// level applies at all.
func (c *Comm) autoPick(key autoKey, run func(sh *Comm, lvl Level) (cost.Breakdown, error)) (Level, error) {
	c.autoMu.Lock()
	defer c.autoMu.Unlock()
	if lvl, ok := c.autoCache[key]; ok {
		return lvl, nil
	}
	sh := c.shadowComm()
	best, bestT := Baseline, cost.Seconds(-1)
	seen := make(map[Level]bool)
	var fails []error
	for _, l := range Levels() {
		eff := EffectiveLevel(key.prim, l)
		if seen[eff] {
			continue
		}
		seen[eff] = true
		bd, err := run(sh, eff)
		if err != nil {
			fails = append(fails, err)
			continue
		}
		// Strict less on an ascending scan keeps the lowest level on ties.
		if d := bd.Total(); bestT < 0 || d < bestT {
			best, bestT = eff, d
		}
	}
	if bestT < 0 {
		return 0, fmt.Errorf("core: no optimization level applies: %w", errors.Join(fails...))
	}
	c.autoCache[key] = best
	return best, nil
}

// AutoLevel returns the optimization level Auto would choose for the
// given call signature: the level whose cost-only dry run is cheapest.
// bytesPerPE has the same meaning as in the corresponding collective
// (for AllGather it is the per-PE contribution; for Scatter the per-PE
// destination size). t and op are ignored for non-reducing primitives.
// The decision is cached on the Comm, so repeated Auto calls with the
// same signature resolve in a map lookup.
func (c *Comm) AutoLevel(prim Primitive, dims string, bytesPerPE int, t elem.Type, op elem.Op) (Level, error) {
	return c.autoLevel(prim, dims, bytesPerPE, t, op, false)
}

// autoLevel is AutoLevel plus the in-place bit of the originating call
// (an in-place AlltoAll restricts the applicable levels).
func (c *Comm) autoLevel(prim Primitive, dims string, bytesPerPE int, t elem.Type, op elem.Op, inPlace bool) (Level, error) {
	if prim == Broadcast {
		// Single implementation at every level (§ VIII-B).
		return Baseline, nil
	}
	key := autoKey{prim: prim, dims: dims, bytes: bytesPerPE, inPlace: inPlace}
	switch prim {
	case ReduceScatter, AllReduce, Reduce:
		key.elemType, key.op = t, op
	}
	lvl, err := c.autoPick(key, func(sh *Comm, l Level) (cost.Breakdown, error) {
		return autoDryRun(sh, prim, dims, bytesPerPE, t, op, l, inPlace)
	})
	if err != nil {
		return 0, fmt.Errorf("AutoLevel(%v): %w", prim, err)
	}
	return lvl, nil
}

// autoDryRun invokes one primitive on the cost-only shadow with
// canonical offsets (source at 0, destination immediately after the
// source region — or coinciding with it for an in-place signature). The
// shadow shares the caller's system geometry, so a signature that fits
// the caller's MRAM fits here too.
func autoDryRun(sh *Comm, prim Primitive, dims string, bytesPerPE int, t elem.Type, op elem.Op, lvl Level, inPlace bool) (cost.Breakdown, error) {
	m := bytesPerPE
	dst := m
	if inPlace {
		dst = 0
	}
	var bd cost.Breakdown
	var err error
	switch prim {
	case AlltoAll:
		bd, err = sh.AlltoAll(dims, 0, dst, m, lvl)
	case ReduceScatter:
		bd, err = sh.ReduceScatter(dims, 0, m, m, t, op, lvl)
	case AllReduce:
		bd, err = sh.AllReduce(dims, 0, m, m, t, op, lvl)
	case AllGather:
		bd, err = sh.AllGather(dims, 0, m, m, lvl)
	case Scatter:
		bd, err = sh.Scatter(dims, nil, 0, m, lvl) // nil bufs: cost-only sizes are implied
	case Gather:
		_, bd, err = sh.Gather(dims, 0, m, lvl)
	case Reduce:
		_, bd, err = sh.Reduce(dims, 0, m, t, op, lvl)
	default:
		err = fmt.Errorf("core: no dry run for primitive %v", prim)
	}
	return bd, err
}
