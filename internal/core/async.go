package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/elem"
)

// This file implements asynchronous plan execution: Submit enqueues a
// compiled plan on its Comm's submission queue and returns a Future; a
// per-Comm worker drains the queue in submission order. Execution of the
// schedule itself still serializes on the Comm (one simulated machine),
// but the *accounted elapsed time* no longer does: each plan is placed on
// the Comm's three-lane cost.Timeline, where plans with disjoint MRAM
// footprints overlap — one plan's PE-side reorder kernels and another's
// bus epochs occupy different lanes and run concurrently in simulated
// time, which is the overlap PID-Comm's speedup comes from. Plans whose
// footprints carry a data hazard (RAW, WAR or WAW on any per-PE region)
// are ordered: the dependent plan starts no earlier than its latest
// conflicting predecessor finishes.
//
// The work accounting is unchanged: the meter accrues exactly the charges
// a serial replay would, in the same order (the queue is FIFO), so async
// and serial execution produce bit-identical meters and — on the
// functional backend — bit-identical MRAM contents. Only Comm.Elapsed,
// the makespan of the timeline, shows the overlap.

// MaxPendingPlans bounds the per-Comm submission queue: Submit blocks
// once this many plans are in flight, providing backpressure to
// serving-style producers. Per-tenant bounds (TenantConfig.MaxPending)
// reject instead of blocking — see ShedPolicy.
const MaxPendingPlans = 1024

// SchedPolicy selects how the submission worker picks the next queued
// plan across buckets. Every value resolves to a Scheduler through the
// process-wide registry (sched.go); the constants below name the four
// built-in policies.
type SchedPolicy int

const (
	// SchedWFQ is start-time weighted fair queuing (the default): serve
	// the backlogged bucket with the smallest virtual time, FIFO within
	// a bucket. Throughput-fair, deadline-blind.
	SchedWFQ SchedPolicy = iota
	// SchedEDF is earliest-deadline-first layered on the WFQ buckets:
	// among the hazard-free candidates near every bucket's head, pick
	// the one with the earliest deadline (no deadline sorts last; ties
	// fall back to submission order). Bucket virtual times still advance
	// so a later switch back to SchedWFQ resumes fair.
	SchedEDF
	// SchedFIFO serves the globally oldest queued plan regardless of
	// bucket — plain submission order, the pre-tenancy behavior.
	// Fairness- and deadline-blind; useful as the reordering baseline.
	SchedFIFO
	// SchedLookahead is the makespan-aware list scheduler: among the
	// hazard-free candidates within the lookahead window of every
	// bucket's head, serve the one minimizing the projected makespan of
	// a dry placement on a private projection timeline — reordering
	// independent plans so one plan's PE or CPU passes hide under
	// another's bus epochs. A WFQ virtual-time bound keeps any bucket
	// from starving; results stay bit-identical to serial execution
	// (hazard order is a funnel invariant — only who-runs-next changes).
	SchedLookahead
)

// SetSched selects the submission scheduling policy. Safe to call at any
// time; plans already popped by the worker are unaffected, and bucket
// virtual times advance identically under every policy, so switching
// back to SchedWFQ resumes fair. A value with no registered Scheduler
// falls back to SchedWFQ at pick time.
func (c *Comm) SetSched(p SchedPolicy) {
	c.asyncMu.Lock()
	c.sched = p
	c.asyncMu.Unlock()
}

// Sched returns the current submission scheduling policy.
func (c *Comm) Sched() SchedPolicy {
	c.asyncMu.Lock()
	defer c.asyncMu.Unlock()
	return c.sched
}

// SetLookahead configures the candidate window: how deep into each
// bucket the window-scanning policies (SchedEDF, SchedLookahead)
// consider hazard-free plans at each pick. The default is
// DefaultLookahead. k must be in [1, MaxPendingPlans].
func (c *Comm) SetLookahead(k int) error {
	if k < 1 || k > MaxPendingPlans {
		return fmt.Errorf("core: lookahead window %d out of range [1, %d]", k, MaxPendingPlans)
	}
	c.asyncMu.Lock()
	c.lookahead = k
	c.asyncMu.Unlock()
	return nil
}

// Lookahead returns the effective candidate window depth.
func (c *Comm) Lookahead() int {
	c.asyncMu.Lock()
	defer c.asyncMu.Unlock()
	return c.lookaheadLocked()
}

// lookaheadLocked resolves the effective candidate window depth.
// Callers hold asyncMu.
func (c *Comm) lookaheadLocked() int {
	if c.lookahead > 0 {
		return c.lookahead
	}
	return DefaultLookahead
}

// SetStepped switches the Comm into stepped serving mode: submissions
// only enqueue, and the caller drives execution one plan at a time with
// Step. Stepped mode makes open-loop serving simulations deterministic —
// a single-threaded driver fully controls the interleaving of arrivals
// and picks, with no background worker racing it. Flip it only while no
// submissions are in flight (a worker already running keeps draining);
// Flush drains a stepped queue synchronously.
func (c *Comm) SetStepped(on bool) {
	c.asyncMu.Lock()
	c.stepped = on
	c.asyncMu.Unlock()
}

// Stepped reports whether the Comm is in stepped serving mode.
func (c *Comm) Stepped() bool {
	c.asyncMu.Lock()
	defer c.asyncMu.Unlock()
	return c.stepped
}

// Pending returns the number of submitted plans not yet completed
// (queued or executing).
func (c *Comm) Pending() int {
	c.asyncMu.Lock()
	defer c.asyncMu.Unlock()
	return c.asyncPending
}

// Step pops the next plan under the current scheduling policy and
// executes it synchronously, returning its (completed) future. Returns
// nil when the queue is empty — or when a background worker owns the
// queue (non-stepped mode with submissions in flight), since stepping
// would race it.
func (c *Comm) Step() *Future {
	c.asyncMu.Lock()
	if c.asyncRunning {
		c.asyncMu.Unlock()
		return nil
	}
	f := c.pickLocked()
	c.asyncMu.Unlock()
	if f == nil {
		return nil
	}
	c.runSubmitted(f)
	return f
}

// span is one per-PE MRAM byte range [off, off+n) a plan touches. All PEs
// of a Comm use the same offsets, so one span describes the whole
// machine's footprint for that range.
type span struct{ off, n int }

func anyOverlap(as, bs []span) bool {
	for _, a := range as {
		for _, b := range bs {
			if overlap(a.off, a.n, b.off, b.n) {
				return true
			}
		}
	}
	return false
}

// planRegions is a compiled plan's per-PE MRAM footprint, used for hazard
// detection between submitted plans. A source region the optimized levels
// consume (PE-assisted reordering rotates it in place) counts as written:
// a write subsumes a read for hazard purposes.
type planRegions struct{ reads, writes []span }

func (r *planRegions) read(off, n int)  { r.reads = append(r.reads, span{off, n}) }
func (r *planRegions) write(off, n int) { r.writes = append(r.writes, span{off, n}) }

// srcRegion records the source region: written when the effective level
// rotates it in place (consuming it), read otherwise.
func (r *planRegions) srcRegion(off, n int, consumed bool) {
	if consumed {
		r.write(off, n)
	} else {
		r.read(off, n)
	}
}

// conflicts reports whether two footprints carry a data hazard: a RAW,
// WAR or WAW dependence on any region.
func (r planRegions) conflicts(o planRegions) bool {
	return anyOverlap(r.writes, o.writes) ||
		anyOverlap(r.writes, o.reads) ||
		anyOverlap(r.reads, o.writes)
}

// placedPlan is one timeline placement still visible for hazard checks:
// later submissions conflicting with its footprint start after end.
type placedPlan struct {
	regs planRegions
	end  cost.Seconds
}

// Future is the handle of one submitted plan execution. All accessors
// except Done block until the execution completes. A Future is safe for
// concurrent use; its results never change once set.
type Future struct {
	cp *CompiledPlan
	// seq is the global submission sequence number, used by the
	// weighted-fair scheduler to keep hazard-conflicting plans from
	// different buckets in submission order. Guarded by asyncMu.
	seq  uint64
	done chan struct{}

	// notBefore and deadline are the serving attributes carried from
	// SubmitOptions: the plan's simulated arrival time (its placement
	// starts no earlier) and its absolute deadline (0 = none; consulted
	// by the EDF pick). Immutable after submission.
	notBefore cost.Seconds
	deadline  cost.Seconds

	// Set exactly once before done is closed.
	bd         cost.Breakdown
	out        [][]byte
	err        error
	start, end cost.Seconds
}

// Done reports without blocking whether the execution has completed.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the execution completes and returns its cost
// breakdown (what this run charged the meter) and error. Wait may be
// called any number of times and from multiple goroutines.
func (f *Future) Wait() (cost.Breakdown, error) {
	<-f.done
	return f.bd, f.err
}

// Err blocks until the execution completes and returns its error, if any.
// A plan that fails mid-schedule surfaces its error here (and via Wait)
// exactly once per Future; later submissions on the same Comm are
// unaffected.
func (f *Future) Err() error {
	<-f.done
	return f.err
}

// Cost blocks until the execution completes and returns the breakdown it
// charged. Unlike CompiledPlan.Cost (the predicted per-run cost), this is
// the measured charge of this particular run.
func (f *Future) Cost() cost.Breakdown {
	<-f.done
	return f.bd
}

// Results blocks until the execution completes and returns the rooted
// result buffers (Gather/Reduce plans on a functional backend; nil
// otherwise). Unlike CompiledPlan.Results, the returned buffers belong to
// this run and stay valid even after the plan runs again.
func (f *Future) Results() [][]byte {
	<-f.done
	return f.out
}

// Window blocks until the execution completes and returns the plan's
// interval [start, end) on the Comm's elapsed-time timeline. Dependent
// plans have non-overlapping windows in hazard order; independent plans'
// windows may overlap.
func (f *Future) Window() (start, end cost.Seconds) {
	<-f.done
	return f.start, f.end
}

// Plan returns the compiled plan this future executes.
func (f *Future) Plan() *CompiledPlan { return f.cp }

// Deadline returns the absolute simulated-time deadline the plan was
// submitted with (0 = none).
func (f *Future) Deadline() cost.Seconds { return f.deadline }

// NotBefore returns the simulated arrival time the plan was submitted
// with: its timeline placement starts no earlier.
func (f *Future) NotBefore() cost.Seconds { return f.notBefore }

// subQueue is one weighted-fair submission bucket: the default queue of
// a Comm (weight 1) or one tenant's queue. Within a bucket plans execute
// in FIFO submission order — which is what preserves the hazard ordering
// guarantees, since data hazards can only exist within a bucket (tenant
// arenas are disjoint). Across buckets the active scheduling policy
// picks (sched.go); every service advances the bucket's vtime by the
// plan's predicted cost over the bucket's weight, so under the default
// WFQ policy each backlogged bucket b receives a weight_b / Σ weights
// share of the simulated machine (start-time weighted fair queuing),
// and the other policies stay fairness-accounted for a later switch
// back. All fields are guarded by the Comm's asyncMu.
type subQueue struct {
	q      []*Future
	weight float64
	vtime  float64
}

// Submit enqueues one replay of the plan on its Comm's submission queue
// and returns immediately with a Future (blocking only if MaxPendingPlans
// are already in flight). Plans of one bucket (a tenant, or the plain
// Comm) execute in submission order; across tenants the weighted-fair
// scheduler interleaves. The elapsed-time timeline overlaps plans with
// disjoint MRAM footprints and orders plans with data hazards (see
// Comm.Elapsed).
//
// A plan owned by a tenant is admitted against the tenant's quota at
// submission: a rejected plan returns an already-completed Future whose
// Err carries the quota error, and nothing is enqueued.
//
// Host-input plans (Scatter, Broadcast) read their bound buffers when the
// plan *executes*, not when it is submitted: do not refill the buffers
// until the future completes.
func (cp *CompiledPlan) Submit() *Future { return cp.c.submit(cp, true, SubmitOptions{}) }

// SubmitOptions carries the serving attributes of one submission.
type SubmitOptions struct {
	// NotBefore is the plan's simulated arrival time: its timeline
	// placement starts no earlier, so sojourn time (completion minus
	// arrival) is measured against the open-loop arrival process rather
	// than the submission call.
	NotBefore cost.Seconds
	// Deadline is the absolute simulated-time deadline (0 = none). The
	// EDF scheduling policy (SchedEDF) serves earlier deadlines first;
	// a missed deadline is observable as Window end > Deadline.
	Deadline cost.Seconds
}

// SubmitOpts is Submit with explicit serving attributes (arrival time,
// deadline). See CompiledPlan.Submit for queue semantics.
func (cp *CompiledPlan) SubmitOpts(o SubmitOptions) *Future { return cp.c.submit(cp, true, o) }

// submit enqueues a plan execution, starting the worker if idle. admit
// selects quota admission here; the cluster layer admits every host's
// plan up front instead (cluster.go) and passes false, so a quota
// rejection can never strand the other hosts at a rendezvous barrier.
func (c *Comm) submit(cp *CompiledPlan, admit bool, o SubmitOptions) *Future {
	f := &Future{cp: cp, done: make(chan struct{}), notBefore: o.NotBefore, deadline: o.Deadline}
	if admit {
		if err := cp.owner.admit(cp.tr.total.Total()); err != nil {
			f.err = err
			close(f.done)
			return f
		}
	}
	c.asyncSlots <- struct{}{} // acquire a queue slot (backpressure)
	c.asyncMu.Lock()
	if t := cp.owner; t != nil {
		// Re-check closure under asyncMu: a Close racing this submission
		// has either already swept the bucket (we must not re-populate
		// it) or will sweep the entry we are about to append.
		if t.isClosed() {
			c.asyncMu.Unlock()
			<-c.asyncSlots
			t.refund(cp.tr.total.Total())
			f.err = fmt.Errorf("%w: tenant %q", ErrTenantClosed, t.name)
			close(f.done)
			return f
		}
		// Per-tenant overload admission: beyond MaxPending in-flight
		// plans, either reject this submission or shed the oldest queued
		// one, per the tenant's ShedPolicy.
		if t.maxPending > 0 && t.inflight >= t.maxPending {
			shed := false
			if t.shed == ShedOldest && len(t.sq.q) > 0 {
				victim := t.sq.q[0]
				t.sq.q[0] = nil
				t.sq.q = t.sq.q[1:]
				c.completeDroppedLocked(victim, fmt.Errorf("%w: tenant %q plan shed by newer submission (max %d pending)",
					ErrOverloaded, t.name, t.maxPending))
				shed = true
			}
			if !shed {
				inflight := t.inflight
				c.asyncMu.Unlock()
				<-c.asyncSlots
				t.refund(cp.tr.total.Total())
				f.err = fmt.Errorf("%w: tenant %q has %d plans in flight (max %d)",
					ErrOverloaded, t.name, inflight, t.maxPending)
				close(f.done)
				return f
			}
		}
		t.inflight++
	}
	c.seqCounter++
	f.seq = c.seqCounter
	q := c.queues[0]
	if cp.owner != nil {
		q = cp.owner.sq
	}
	if len(q.q) == 0 && q.vtime < c.vclock {
		// A bucket waking from idle joins at the current virtual clock:
		// it competes fairly from now on instead of burning accumulated
		// "credit" in a burst that would starve the busy buckets.
		q.vtime = c.vclock
	}
	q.q = append(q.q, f)
	c.asyncPending++
	if !c.asyncRunning && !c.stepped {
		c.asyncRunning = true
		go c.asyncLoop()
	}
	c.asyncMu.Unlock()
	return f
}

// completeDroppedLocked finishes a queued future without executing it
// (overload shedding, tenant close): it refunds the quota admission,
// publishes err, and releases the queue bookkeeping. The future's
// Window stays zero — it never reached the timeline. Callers hold
// asyncMu and have already removed the future from its bucket.
func (c *Comm) completeDroppedLocked(f *Future, err error) {
	if t := f.cp.owner; t != nil {
		t.refund(f.cp.tr.total.Total())
		t.inflight--
	}
	f.err = err
	close(f.done)
	c.asyncPending--
	c.asyncCond.Broadcast()
	<-c.asyncSlots // release the victim's queue slot
}

// schedulerLocked resolves the Comm's active Scheduler, (re)instantiating
// it lazily on the first pick and after every policy change — which also
// keeps bare Comm literals in tests working with just the policy value
// set. A policy value with no registered Scheduler falls back to
// weighted-fair queuing, mirroring the pre-registry behavior of an
// unknown enum value. Callers hold asyncMu.
func (c *Comm) schedulerLocked() Scheduler {
	if c.schedImpl == nil || c.schedImplOf != c.sched {
		sp, ok := schedSpecOf(c.sched)
		if !ok {
			sp, _ = schedSpecOf(SchedWFQ)
		}
		c.schedImpl = sp.New()
		c.schedImplOf = c.sched
	}
	return c.schedImpl
}

// pickLocked pops the next future through the policy funnel: it
// enumerates the hazard-free plans within the active policy's window of
// every bucket's head, hands them to the policy's Pick, and performs the
// bookkeeping every policy shares — removing the pick from its bucket
// and advancing the weighted-fair virtual clock by the plan's predicted
// cost over the bucket's weight (service is priced identically under
// every policy, so a later SetSched switch resumes fair). Returns nil
// when every bucket is empty. Callers hold asyncMu.
//
// Hazard safety is a funnel invariant no policy can break: a plan is a
// candidate only if no earlier-submitted plan still queued anywhere
// conflicts with it (conflictsQueuedEarlierLocked), so conflicting plans
// always execute in submission order and byte-level results are
// independent of the policy — it only chooses among independent plans.
// The globally oldest queued plan is always a candidate (nothing earlier
// is left to conflict with, and buckets are FIFO so it sits at index 0),
// hence the pick cannot return nil while work is queued.
func (c *Comm) pickLocked() *Future {
	s := c.schedulerLocked()
	win := s.Window(c.lookaheadLocked())
	if win < 1 {
		win = 1
	}
	cands := c.cands[:0]
	for _, q := range c.queues {
		depth := len(q.q)
		if depth > win {
			depth = win
		}
		for i := 0; i < depth; i++ {
			f := q.q[i]
			if c.conflictsQueuedEarlierLocked(f) {
				continue
			}
			cands = append(cands, Candidate{
				F: f, Head: i == 0,
				VTime: q.vtime, Weight: q.weight,
				q: q, idx: i,
			})
		}
	}
	c.cands = cands // keep the grown backing array for the next pick
	if len(cands) == 0 {
		return nil
	}
	k := s.Pick(cands)
	if k < 0 || k >= len(cands) {
		panic(fmt.Sprintf("core: scheduler %q picked candidate %d of %d", s.Name(), k, len(cands)))
	}
	pick := cands[k]
	q := pick.q
	copy(q.q[pick.idx:], q.q[pick.idx+1:])
	q.q[len(q.q)-1] = nil
	q.q = q.q[:len(q.q)-1]
	c.vclock = q.vtime
	q.vtime += float64(pick.F.cp.tr.total.Total()) / q.weight
	for i := range cands {
		cands[i] = Candidate{} // drop Future references from the scratch array
	}
	return pick.F
}

// edfLess orders two candidate futures for the deadline-aware picks:
// earlier deadline first, a deadline beats no deadline, ties fall back
// to submission order (which keeps the pick deterministic and degrades
// to global FIFO when nothing carries a deadline). SchedEDF minimizes
// it outright; SchedLookahead uses it to break equal-makespan ties.
func edfLess(a, b *Future) bool {
	switch {
	case a.deadline > 0 && b.deadline > 0 && a.deadline != b.deadline:
		return a.deadline < b.deadline
	case a.deadline > 0 && b.deadline <= 0:
		return true
	case b.deadline > 0 && a.deadline <= 0:
		return false
	}
	return a.seq < b.seq
}

// conflictsQueuedEarlierLocked reports whether any earlier-submitted
// plan still queued in any bucket (including f's own) carries a data
// hazard against f — if so, f may not jump ahead. Callers hold asyncMu.
func (c *Comm) conflictsQueuedEarlierLocked(f *Future) bool {
	for _, q := range c.queues {
		for _, o := range q.q {
			if o.seq >= f.seq {
				break // buckets are FIFO in seq order: the rest is later
			}
			if f.cp.regs.conflicts(o.cp.regs) {
				return true
			}
		}
	}
	return false
}

// asyncLoop is the per-Comm queue worker: it drains the buckets in
// weighted-fair order and exits when all are empty (a later Submit
// starts a fresh one).
func (c *Comm) asyncLoop() {
	for {
		c.asyncMu.Lock()
		f := c.pickLocked()
		if f == nil {
			c.asyncRunning = false
			c.asyncMu.Unlock()
			return
		}
		c.asyncMu.Unlock()
		c.runSubmitted(f)
	}
}

// runSubmitted executes one queued future and completes it. Completion —
// publishing the results, closing done, decrementing the pending count
// and releasing the queue slot — happens exactly once per future on every
// path, success or failure: a mid-schedule backend error is captured into
// f.err by execSubmitted's recover and takes the same single completion
// path, so a failing plan can neither complete twice (close of a closed
// channel panics) nor leak or double-release its queue slot.
func (c *Comm) runSubmitted(f *Future) {
	f.bd, f.out, f.start, f.end, f.err = c.execSubmitted(f.cp, f.notBefore)
	close(f.done)
	c.asyncMu.Lock()
	if t := f.cp.owner; t != nil {
		t.inflight--
	}
	c.asyncPending--
	c.asyncCond.Broadcast()
	c.asyncMu.Unlock()
	<-c.asyncSlots // release the queue slot
}

// execSubmitted places one plan on the timeline (hazard-ordered, overlap-
// aware) and executes it under the execution lock. A panic from the
// backend mid-schedule is converted into the returned error; the plan's
// timeline window remains booked (its partial charges remain on the
// meter) and dependents stay ordered after it.
func (c *Comm) execSubmitted(cp *CompiledPlan, notBefore cost.Seconds) (bd cost.Breakdown, out [][]byte, start, end cost.Seconds, err error) {
	c.execMu.Lock()
	defer c.execMu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: %s failed mid-schedule: %v", cp.sched.Name, r)
		}
	}()

	// Scan the frontier for hazards, pruning entries that finished at or
	// before the barrier — they can never delay a new plan (earliest
	// starts at asyncBase), so dropping them keeps the frontier bounded
	// by the work in flight even in flows that never call Flush.
	earliest := c.asyncBase
	if notBefore > earliest {
		// Serving submissions start no earlier than their simulated
		// arrival time (SubmitOptions.NotBefore).
		earliest = notBefore
	}
	live := c.frontier[:0]
	for _, pl := range c.frontier {
		if pl.end <= c.asyncBase {
			continue
		}
		live = append(live, pl)
		if pl.end > earliest && cp.regs.conflicts(pl.regs) {
			earliest = pl.end
		}
	}
	// Flows that never flush would still accumulate entries (asyncBase
	// never advances): past maxFrontier, retire the oldest entries by
	// conservatively raising the barrier to their latest finish. That
	// only restricts where later plans may start — ordering is preserved
	// and placement stays within the serial bound.
	const maxFrontier = 256
	if len(live) > maxFrontier {
		drop := len(live) - maxFrontier
		for _, pl := range live[:drop] {
			if pl.end > c.asyncBase {
				c.asyncBase = pl.end
			}
		}
		c.tl.SetFloor(c.asyncBase)
		live = append(live[:0], live[drop:]...)
		if earliest < c.asyncBase {
			earliest = c.asyncBase
		}
	}
	c.frontier = live
	start, end = c.tl.Place(earliest, cp.tr.segs)
	c.frontier = append(c.frontier, placedPlan{regs: cp.regs, end: end})

	out, bd = c.runScheduleLocked(cp)
	if out != nil {
		// Detach the rooted results: the schedule writes into the plan's
		// reused buffers (rootedBufs), but a Future's Results belong to
		// the future and must survive later runs of the same plan.
		own := make([][]byte, len(out))
		for i, b := range out {
			own[i] = append([]byte(nil), b...)
		}
		out = own
	}
	return bd, out, start, end, nil
}

// placeSerialLocked appends segs to the timeline as a barrier placement
// and advances the submission barrier and the timeline's pruning floor —
// the one way every serial path (Run, AllReduceTopo, ExtendElapsed,
// Flush) closes the overlap window. Callers hold execMu.
func (c *Comm) placeSerialLocked(segs []cost.Segment) {
	c.tl.PlaceSerial(segs)
	c.asyncBase = c.tl.Elapsed()
	c.tl.SetFloor(c.asyncBase)
}

// Flush blocks until every plan submitted so far has completed, then
// closes the overlap window: plans submitted afterwards start no earlier
// than the current elapsed time. Use it as a barrier before touching MRAM
// directly (SetPEBuffer/GetPEBuffer, application kernels) while
// submissions may be in flight.
func (c *Comm) Flush() {
	// In stepped mode no worker drains the queue, so Flush steps it dry
	// itself before waiting out anything still executing elsewhere.
	for {
		c.asyncMu.Lock()
		drain := c.stepped && !c.asyncRunning && c.asyncPending > 0
		c.asyncMu.Unlock()
		if !drain || c.Step() == nil {
			break
		}
	}
	c.asyncMu.Lock()
	for c.asyncPending > 0 {
		c.asyncCond.Wait()
	}
	c.asyncMu.Unlock()
	c.execMu.Lock()
	c.placeSerialLocked(nil)
	c.frontier = c.frontier[:0]
	c.execMu.Unlock()
}

// Elapsed returns the overlap-aware simulated elapsed time of everything
// executed on this Comm so far: serial runs append to the timeline,
// submitted plans overlap where their MRAM footprints allow. For fully
// serial workloads Elapsed equals the meter total; with async submission
// it is lower by exactly the overlap won.
func (c *Comm) Elapsed() cost.Seconds {
	c.execMu.Lock()
	defer c.execMu.Unlock()
	return c.tl.Elapsed()
}

// LaneBusy returns the cumulative busy time placed on one lane of the
// comm's elapsed-time timeline — e.g. cost.LaneNet for the network legs
// of cluster collectives. Unlike Elapsed (the makespan across lanes) it
// sums that lane's work alone, so pidinfo -cluster can report how much
// of a host's wall clock the wire accounts for.
func (c *Comm) LaneBusy(l cost.Lane) cost.Seconds {
	c.execMu.Lock()
	defer c.execMu.Unlock()
	return c.tl.LaneBusy(l)
}

// ExtendElapsed places b's per-lane time after everything currently on
// the timeline — a barrier. It accounts work charged outside the
// collective engine (application kernel launches, host pre/post-
// processing) on the elapsed-time clock; the meter is not touched.
func (c *Comm) ExtendElapsed(b cost.Breakdown) {
	segs := b.Segments()
	c.execMu.Lock()
	defer c.execMu.Unlock()
	c.placeSerialLocked(segs)
}

// ---------------------------------------------------------------------
// Submit entry points (one per primitive): Compile* + Submit. All are
// deprecated positional shims — new code should build a Collective
// descriptor and call Comm.Submit.
// ---------------------------------------------------------------------

// SubmitAlltoAll compiles (or fetches the cached plan for) an AlltoAll
// call and submits one asynchronous execution. See Comm.AlltoAll for call
// semantics and CompiledPlan.Submit for queue semantics.//
// Deprecated: build a Collective descriptor and call Comm.Submit.
func (c *Comm) SubmitAlltoAll(dims string, srcOff, dstOff, bytesPerPE int, lvl Level) (*Future, error) {
	cp, err := c.CompileAlltoAll(dims, srcOff, dstOff, bytesPerPE, lvl)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// SubmitReduceScatter compiles a ReduceScatter call and submits one
// asynchronous execution.//
// Deprecated: build a Collective descriptor and call Comm.Submit.
func (c *Comm) SubmitReduceScatter(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (*Future, error) {
	cp, err := c.CompileReduceScatter(dims, srcOff, dstOff, bytesPerPE, t, op, lvl)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// SubmitAllReduce compiles an AllReduce call and submits one asynchronous
// execution.//
// Deprecated: build a Collective descriptor and call Comm.Submit.
func (c *Comm) SubmitAllReduce(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (*Future, error) {
	cp, err := c.CompileAllReduce(dims, srcOff, dstOff, bytesPerPE, t, op, lvl)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// SubmitAllGather compiles an AllGather call and submits one asynchronous
// execution.//
// Deprecated: build a Collective descriptor and call Comm.Submit.
func (c *Comm) SubmitAllGather(dims string, srcOff, dstOff, bytesPerPE int, lvl Level) (*Future, error) {
	cp, err := c.CompileAllGather(dims, srcOff, dstOff, bytesPerPE, lvl)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// SubmitScatter compiles a Scatter call bound to bufs and submits one
// asynchronous execution. The buffers are read when the plan executes:
// do not refill them until the future completes.//
// Deprecated: build a Collective descriptor and call Comm.Submit.
func (c *Comm) SubmitScatter(dims string, bufs [][]byte, dstOff, bytesPerPE int, lvl Level) (*Future, error) {
	cp, err := c.CompileScatter(dims, bufs, dstOff, bytesPerPE, lvl)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// SubmitGather compiles a rooted Gather and submits one asynchronous
// execution; the future's Results hold the per-group buffers.//
// Deprecated: build a Collective descriptor and call Comm.Submit.
func (c *Comm) SubmitGather(dims string, srcOff, bytesPerPE int, lvl Level) (*Future, error) {
	cp, err := c.CompileGather(dims, srcOff, bytesPerPE, lvl)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// SubmitReduce compiles a rooted Reduce and submits one asynchronous
// execution; the future's Results hold the per-group buffers.//
// Deprecated: build a Collective descriptor and call Comm.Submit.
func (c *Comm) SubmitReduce(dims string, srcOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (*Future, error) {
	cp, err := c.CompileReduce(dims, srcOff, bytesPerPE, t, op, lvl)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// SubmitBroadcast compiles a Broadcast bound to bufs and submits one
// asynchronous execution. The buffers are read when the plan executes.//
// Deprecated: build a Collective descriptor and call Comm.Submit.
func (c *Comm) SubmitBroadcast(dims string, bufs [][]byte, dstOff int, lvl Level) (*Future, error) {
	cp, err := c.CompileBroadcast(dims, bufs, dstOff, lvl)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}
