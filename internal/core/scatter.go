package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/dram"
)

// Scatter sends block p of each group's host buffer to the group's rank p
// (§ V-B4: the second half of ReduceScatter). bufs has one buffer per
// group (group order), each n*bytesPerPE bytes; every PE receives
// bytesPerPE bytes at dstOff. On a cost-only backend bufs may be nil:
// buffer sizes are implied by the call signature and no data is read.
func (c *Comm) Scatter(dims string, bufs [][]byte, dstOff, bytesPerPE int, lvl Level) (cost.Breakdown, error) {
	p, err := c.plan(dims)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("Scatter: %w", err)
	}
	s := bytesPerPE
	if s%dram.BankBurstBytes != 0 {
		return cost.Breakdown{}, fmt.Errorf("Scatter: bytesPerPE %d not a multiple of %d", s, dram.BankBurstBytes)
	}
	if err := c.checkRegion(dstOff, s); err != nil {
		return cost.Breakdown{}, fmt.Errorf("Scatter: %w", err)
	}
	if bufs == nil && !c.backend.Functional() {
		// Cost-only dry run: sizes are fully determined by the plan.
	} else {
		if len(bufs) != len(p.groups) {
			return cost.Breakdown{}, fmt.Errorf("Scatter: %d buffers for %d groups", len(bufs), len(p.groups))
		}
		for g, b := range bufs {
			if len(b) != p.n*s {
				return cost.Breakdown{}, fmt.Errorf("Scatter: buffer %d has %d bytes, want %d", g, len(b), p.n*s)
			}
		}
	}
	if lvl == Auto {
		if lvl, err = c.AutoLevel(Scatter, dims, bytesPerPE, 0, 0); err != nil {
			return cost.Breakdown{}, fmt.Errorf("Scatter: %w", err)
		}
	}
	before := c.h.Meter().Snapshot()
	c.execute(c.lowerScatter(p, bufs, dstOff, s, EffectiveLevel(Scatter, lvl)))
	return c.h.Meter().Snapshot().Sub(before), nil
}
