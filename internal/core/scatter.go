package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/vec"
)

// Scatter sends block p of each group's host buffer to the group's rank p
// (§ V-B4: the second half of ReduceScatter). bufs has one buffer per
// group (group order), each n*bytesPerPE bytes; every PE receives
// bytesPerPE bytes at dstOff.
func (c *Comm) Scatter(dims string, bufs [][]byte, dstOff, bytesPerPE int, lvl Level) (cost.Breakdown, error) {
	p, err := c.plan(dims)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("Scatter: %w", err)
	}
	s := bytesPerPE
	if s%dram.BankBurstBytes != 0 {
		return cost.Breakdown{}, fmt.Errorf("Scatter: bytesPerPE %d not a multiple of %d", s, dram.BankBurstBytes)
	}
	if err := c.checkRegion(dstOff, s); err != nil {
		return cost.Breakdown{}, fmt.Errorf("Scatter: %w", err)
	}
	if len(bufs) != len(p.groups) {
		return cost.Breakdown{}, fmt.Errorf("Scatter: %d buffers for %d groups", len(bufs), len(p.groups))
	}
	for g, b := range bufs {
		if len(b) != p.n*s {
			return cost.Breakdown{}, fmt.Errorf("Scatter: buffer %d has %d bytes, want %d", g, len(b), p.n*s)
		}
	}
	before := c.h.Meter().Snapshot()
	if EffectiveLevel(Scatter, lvl) == Baseline {
		// Conventional: assemble a PE-major staging buffer, then bulk
		// write with DT.
		stag := make([]byte, len(p.rankOf)*s)
		for g, grp := range p.groups {
			for i, pe := range grp {
				copy(stag[pe*s:(pe+1)*s], bufs[g][i*s:(i+1)*s])
			}
		}
		c.h.ChargeHostMem(int64(len(stag))) // staging assembly
		c.h.BulkWrite(c.allEGs(), dstOff, stag)
	} else { // IM: stream user buffers straight into bursts
		c.h.BeginXfer()
		nEG := c.hc.sys.Geometry().NumGroups()
		var u vec.Unit
		for e := 0; e < s; e += 8 {
			for g := 0; g < nEG; g++ {
				var r vec.Reg
				for chip := 0; chip < dram.ChipsPerRank; chip++ {
					pe := g*dram.ChipsPerRank + chip
					r.SetLane(chip, bufs[p.groupOf[pe]][int(p.rankOf[pe])*s+e:])
				}
				c.h.WriteBurst(g, dstOff+e, u.Transpose8x8(r))
			}
			c.h.ChargeSIMD(c.columnBytes())
			c.h.ChargeDT(c.columnBytes())
		}
		c.h.EndXfer()
		c.h.ChargeHostMem(int64(len(p.groups) * p.n * s)) // user-buffer reads
	}
	c.h.ChargeSync()
	return c.h.Meter().Snapshot().Sub(before), nil
}
