package core

import (
	"repro/internal/cost"
)

// Scatter sends block p of each group's host buffer to the group's rank p
// (§ V-B4: the second half of ReduceScatter). bufs has one buffer per
// group (group order), each n*bytesPerPE bytes; every PE receives
// bytesPerPE bytes at dstOff. On a cost-only backend bufs may be nil:
// buffer sizes are implied by the call signature and no data is read.
//
// This is a thin wrapper over CompileScatter + Run; the plan's schedule
// binds the given buffers, but repeated one-shot calls share the cached
// charge trace, so only the (cheap) lowering is per-call.
func (c *Comm) Scatter(dims string, bufs [][]byte, dstOff, bytesPerPE int, lvl Level) (cost.Breakdown, error) {
	cp, err := c.CompileScatter(dims, bufs, dstOff, bytesPerPE, lvl)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cp.Run()
}
