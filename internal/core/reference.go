package core

import (
	"fmt"

	"repro/internal/elem"
)

// Reference implementations of the eight collective semantics (Figure 2),
// operating on plain per-rank byte slices. They are the oracle the
// simulator-backed implementations are verified against, and are also
// used by the CPU-only application baselines.

// RefAlltoAll: out[j] block i = in[i] block j. Every in[i] must have n*s
// bytes where n = len(in).
func RefAlltoAll(in [][]byte, s int) [][]byte {
	n := len(in)
	out := make([][]byte, n)
	for j := range out {
		out[j] = make([]byte, n*s)
		for i := 0; i < n; i++ {
			copy(out[j][i*s:(i+1)*s], in[i][j*s:(j+1)*s])
		}
	}
	return out
}

// RefReduceScatter: out[p] = reduce over i of in[i] block p (s bytes).
func RefReduceScatter(t elem.Type, op elem.Op, in [][]byte, s int) [][]byte {
	n := len(in)
	out := make([][]byte, n)
	for p := range out {
		out[p] = refReduceBlock(t, op, in, p*s, s)
	}
	return out
}

// RefAllGather: out[j] = concat of all in[i] (each s bytes).
func RefAllGather(in [][]byte) [][]byte {
	n := len(in)
	s := len(in[0])
	out := make([][]byte, n)
	for j := range out {
		out[j] = make([]byte, n*s)
		for i := 0; i < n; i++ {
			copy(out[j][i*s:], in[i])
		}
	}
	return out
}

// RefAllReduce: out[j] = elementwise reduce over i of in[i].
func RefAllReduce(t elem.Type, op elem.Op, in [][]byte) [][]byte {
	n := len(in)
	red := RefReduce(t, op, in)
	out := make([][]byte, n)
	for j := range out {
		out[j] = append([]byte(nil), red...)
	}
	return out
}

// RefScatter: out[p] = block p of buf (s bytes each).
func RefScatter(buf []byte, n int) [][]byte {
	if len(buf)%n != 0 {
		panic(fmt.Sprintf("core: scatter buffer %d not divisible by %d", len(buf), n))
	}
	s := len(buf) / n
	out := make([][]byte, n)
	for p := range out {
		out[p] = append([]byte(nil), buf[p*s:(p+1)*s]...)
	}
	return out
}

// RefGather: concatenation of all in[i].
func RefGather(in [][]byte) []byte {
	var out []byte
	for _, b := range in {
		out = append(out, b...)
	}
	return out
}

// RefReduce: elementwise reduce over i of in[i].
func RefReduce(t elem.Type, op elem.Op, in [][]byte) []byte {
	return refReduceBlock(t, op, in, 0, len(in[0]))
}

// RefBroadcast: every rank receives a copy of buf.
func RefBroadcast(buf []byte, n int) [][]byte {
	out := make([][]byte, n)
	for j := range out {
		out[j] = append([]byte(nil), buf...)
	}
	return out
}

func refReduceBlock(t elem.Type, op elem.Op, in [][]byte, off, s int) []byte {
	out := make([]byte, s)
	elem.Fill(t, out, op.Identity(t))
	for _, b := range in {
		elem.ReduceInto(t, op, out, b[off:off+s])
	}
	return out
}
