package core

import (
	"strings"
	"testing"

	"repro/internal/cost"
)

// Tests for the scheduler registry and the policies behind the
// pickLocked funnel: name round-trips, the lookahead policy's
// makespan-aware reordering and starvation bound, the configurable
// candidate window, and the funnel's bit-identical-to-serial contract
// under every registered policy.

// Every registered policy name must round-trip through ParseSchedPolicy
// and String, and the four built-ins must be present under their
// documented names.
func TestParseSchedPolicyRoundTrip(t *testing.T) {
	pols := SchedPolicies()
	if len(pols) < 4 {
		t.Fatalf("registry has %d policies, want at least the 4 built-ins", len(pols))
	}
	for _, p := range pols {
		got, err := ParseSchedPolicy(p.String())
		if err != nil {
			t.Fatalf("ParseSchedPolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("round trip %v -> %q -> %v", p, p.String(), got)
		}
	}
	for name, want := range map[string]SchedPolicy{
		"wfq": SchedWFQ, "edf": SchedEDF, "fifo": SchedFIFO, "lookahead": SchedLookahead,
	} {
		if got, err := ParseSchedPolicy(name); err != nil || got != want {
			t.Errorf("ParseSchedPolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseSchedPolicy("nope"); err == nil {
		t.Error("unknown policy name parsed")
	} else if !strings.Contains(err.Error(), "wfq") {
		t.Errorf("parse error %q does not list the valid names", err)
	}
	if s := SchedPolicy(97).String(); s != "SchedPolicy(97)" {
		t.Errorf("unregistered policy prints %q", s)
	}
}

// SetLookahead validates its bounds and Lookahead reports the effective
// window (the default until explicitly configured).
func TestSetLookaheadBounds(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	if got := c.Lookahead(); got != DefaultLookahead {
		t.Errorf("default lookahead %d, want %d", got, DefaultLookahead)
	}
	for _, bad := range []int{0, -1, MaxPendingPlans + 1} {
		if err := c.SetLookahead(bad); err == nil {
			t.Errorf("SetLookahead(%d) accepted", bad)
		}
	}
	if err := c.SetLookahead(4); err != nil {
		t.Fatal(err)
	}
	if got := c.Lookahead(); got != 4 {
		t.Errorf("lookahead %d after SetLookahead(4)", got)
	}
}

// fakeSegFuture is fakeFuture with an explicit charge-trace lane
// profile, so the lookahead policy's projection has real segments to
// dry-place.
func fakeSegFuture(seq uint64, segs []cost.Segment) *Future {
	var tot cost.Seconds
	for _, s := range segs {
		tot += s.Dur
	}
	m := cost.NewMeter()
	m.Add(cost.PEMem, tot)
	return &Future{seq: seq, cp: &CompiledPlan{tr: &chargeTrace{total: m.Snapshot(), segs: segs}}}
}

// The lookahead policy reorders independent queue-mates by projected
// makespan: a bus-only plan submitted second runs first when doing so
// lets the CPU+bus plan hide its CPU pass under the bus streaming
// (joint makespan 3 vs 4 time units), even though every other policy
// would serve the earlier submission.
func TestLookaheadPicksMakespanMinimizer(t *testing.T) {
	cpuThenBus := fakeSegFuture(1, []cost.Segment{
		{Lane: cost.LaneCPU, Dur: 1}, {Lane: cost.LaneBus, Dur: 1}})
	busOnly := fakeSegFuture(2, []cost.Segment{{Lane: cost.LaneBus, Dur: 2}})
	q := &subQueue{weight: 1, q: []*Future{cpuThenBus, busOnly}}
	c := &Comm{queues: []*subQueue{q}, sched: SchedLookahead}

	c.asyncMu.Lock()
	first := c.pickLocked()
	second := c.pickLocked()
	c.asyncMu.Unlock()
	if first != busOnly || second != cpuThenBus {
		t.Errorf("pick order %d, %d; want 2 (bus-only first), 1", first.seq, second.seq)
	}
}

// The lookahead starvation bound: a bucket the policy's tie-break never
// favors (no deadline, against a deep bucket of deadlined plans) is
// still served once the favored bucket's virtual time falls
// lookaheadSlack weighted shares ahead — within a bounded number of
// picks, not after the whole backlog.
func TestLookaheadStarvationBound(t *testing.T) {
	a := &subQueue{weight: 1}
	b := &subQueue{weight: 1}
	c := &Comm{queues: []*subQueue{a, b}, sched: SchedLookahead}
	for i := 0; i < 32; i++ {
		f := fakeFuture(1)
		f.seq = uint64(i + 1)
		f.deadline = cost.Seconds(i + 1) // ties go to A on every pick
		a.q = append(a.q, f)
	}
	starved := fakeFuture(1)
	starved.seq = 33
	b.q = append(b.q, starved)

	servedAt := 0
	for i := 1; i <= 34; i++ {
		c.asyncMu.Lock()
		f := c.pickLocked()
		c.asyncMu.Unlock()
		if f == nil {
			t.Fatalf("queue dry after %d picks", i-1)
		}
		if f == starved {
			servedAt = i
			break
		}
	}
	if servedAt == 0 {
		t.Fatal("deadline-free bucket starved behind the whole backlog")
	}
	if servedAt <= 2 {
		t.Errorf("starved plan served at pick %d — bound test exerts no pressure", servedAt)
	}
	if servedAt > lookaheadSlack+4 {
		t.Errorf("starved plan served at pick %d, want within %d (slack %d shares)",
			servedAt, lookaheadSlack+4, lookaheadSlack)
	}
}

// schedPropertyPlans compiles the property-test workload on c: two
// tenants with 2:1 weights, each submitting three rounds over two
// independent region sets. Repeats of a region set chain on a data
// hazard; the two sets (and the two tenants) are independent, so a
// reordering policy has real freedom while hazard chains pin the rest.
func schedPropertyPlans(t *testing.T, c *Comm) []*CompiledPlan {
	t.Helper()
	const m = 16 * 8
	ta, err := c.NewTenant("a", 0, 1<<12, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c.NewTenant("b", 1<<12, 1<<12, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ten *Tenant, base int) *CompiledPlan {
		cp, err := ten.Compile(Collective{Prim: AlltoAll, Dims: "1",
			Src: Span(base, m), Dst: At(base + 2*m), Level: CM})
		if err != nil {
			t.Fatal(err)
		}
		return cp
	}
	sets := []*CompiledPlan{mk(ta, 0), mk(ta, 1024), mk(tb, 0), mk(tb, 1024)}
	var plans []*CompiledPlan
	for round := 0; round < 3; round++ {
		plans = append(plans, sets...)
	}
	return plans
}

// Every registered policy preserves hazard order and stays bit-identical
// to a serial replay in the order it chose: per-future breakdowns and
// the machine meter must match the twin's bit for bit. Runs the full
// registry, so an externally registered policy is held to the same
// contract.
func TestSchedulersBitIdenticalToSerialReplay(t *testing.T) {
	for _, pol := range SchedPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			c := tenantTestComm(t, 1<<13)
			c.SetStepped(true)
			c.SetSched(pol)
			if err := c.SetLookahead(4); err != nil {
				t.Fatal(err)
			}
			plans := schedPropertyPlans(t, c)
			idx := map[*Future]int{}
			for i, cp := range plans {
				f := cp.SubmitOpts(SubmitOptions{Deadline: cost.Seconds(i + 1)})
				idx[f] = i
			}
			var picked []*Future
			for f := c.Step(); f != nil; f = c.Step() {
				if err := f.Err(); err != nil {
					t.Fatal(err)
				}
				picked = append(picked, f)
			}
			if len(picked) != len(plans) {
				t.Fatalf("drained %d futures, submitted %d", len(picked), len(plans))
			}
			// Hazard order: repeats of one compiled plan conflict, so their
			// submission indices must drain in increasing order.
			last := map[*CompiledPlan]int{}
			for _, f := range picked {
				i := idx[f]
				cp := plans[i]
				if prev, ok := last[cp]; ok && i < prev {
					t.Fatalf("%v reordered a hazard chain: submission %d after %d", pol, i, prev)
				}
				last[cp] = i
			}
			// Bit-identity: replay on a serial twin in the picked order.
			twin := tenantTestComm(t, 1<<13)
			tp := schedPropertyPlans(t, twin)
			for _, f := range picked {
				bd, err := tp[idx[f]].Run()
				if err != nil {
					t.Fatal(err)
				}
				if f.Cost() != bd {
					t.Fatalf("%v broke bit-identical replay at submission %d: %v vs serial %v",
						pol, idx[f], f.Cost(), bd)
				}
			}
			if got, want := c.Meter().Snapshot(), twin.Meter().Snapshot(); got != want {
				t.Errorf("%v machine meter %v, serial twin %v", pol, got, want)
			}
		})
	}
}

// Every registered policy drains a live (non-stepped) queue cleanly:
// the background worker picks while submissions race in, which puts the
// funnel's locking under the race detector for each policy.
func TestSchedulersConcurrentDrain(t *testing.T) {
	for _, pol := range SchedPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			c := tenantTestComm(t, 1<<13)
			c.SetSched(pol)
			plans := schedPropertyPlans(t, c)
			var fs []*Future
			for _, cp := range plans {
				fs = append(fs, cp.Submit())
			}
			c.Flush()
			for i, f := range fs {
				if err := f.Err(); err != nil {
					t.Fatalf("submission %d: %v", i, err)
				}
			}
		})
	}
}
