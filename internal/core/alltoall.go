package core

import (
	"fmt"

	"repro/internal/cost"
)

// AlltoAll performs multi-instance AlltoAll along the selected dimensions
// (Figure 7): within each communication group of n PEs, block j of rank
// i's buffer ends as block i of rank j's buffer. Each PE's source region
// is [srcOff, srcOff+bytesPerPE) and destination [dstOff, dstOff+
// bytesPerPE); bytesPerPE must be divisible by n with 8-byte-aligned
// blocks. The regions must either coincide exactly (srcOff == dstOff: an
// in-place AlltoAll, supported by the staged Baseline/PR paths only) or
// not overlap at all.
//
// Like the real library, the optimized levels consume the source region:
// PE-assisted reordering rotates the source blocks in MRAM before the
// host streams them (§ V-A1), and nothing restores the original order.
//
// This is a thin wrapper over CompileAlltoAll + Run; repeated calls with
// the same signature replay the cached CompiledPlan.
func (c *Comm) AlltoAll(dims string, srcOff, dstOff, bytesPerPE int, lvl Level) (cost.Breakdown, error) {
	cp, err := c.CompileAlltoAll(dims, srcOff, dstOff, bytesPerPE, lvl)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cp.Run()
}

// prepBlocks validates a block-structured collective's arguments.
// allowInPlace permits srcOff == dstOff (partial overlap is always an
// error); level applicability of in-place calls is checked separately by
// checkInPlace.
func (c *Comm) prepBlocks(dims string, srcOff, dstOff, bytesPerPE int, allowInPlace bool) (*plan, int, error) {
	p, err := c.plan(dims)
	if err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(srcOff, bytesPerPE); err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(dstOff, bytesPerPE); err != nil {
		return nil, 0, err
	}
	if overlap(srcOff, bytesPerPE, dstOff, bytesPerPE) && !(allowInPlace && srcOff == dstOff) {
		return nil, 0, fmt.Errorf("core: src [%d,%d) and dst [%d,%d) overlap",
			srcOff, srcOff+bytesPerPE, dstOff, dstOff+bytesPerPE)
	}
	s, err := blockSize(bytesPerPE, p.n)
	if err != nil {
		return nil, 0, err
	}
	return p, s, nil
}
