package core

import (
	"fmt"

	"repro/internal/cost"
)

// AlltoAll performs multi-instance AlltoAll along the selected dimensions
// (Figure 7): within each communication group of n PEs, block j of rank
// i's buffer ends as block i of rank j's buffer. Each PE's source region
// is [srcOff, srcOff+bytesPerPE) and destination [dstOff, dstOff+
// bytesPerPE); the regions must not overlap and bytesPerPE must be
// divisible by n with 8-byte-aligned blocks.
//
// Like the real library, the optimized levels consume the source region:
// PE-assisted reordering rotates the source blocks in MRAM before the
// host streams them (§ V-A1), and nothing restores the original order.
func (c *Comm) AlltoAll(dims string, srcOff, dstOff, bytesPerPE int, lvl Level) (cost.Breakdown, error) {
	p, s, err := c.prepBlocks(dims, srcOff, dstOff, bytesPerPE)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("AlltoAll: %w", err)
	}
	before := c.h.Meter().Snapshot()
	switch EffectiveLevel(AlltoAll, lvl) {
	case Baseline:
		c.alltoallBulk(p, srcOff, dstOff, s, false)
	case PR:
		c.alltoallBulk(p, srcOff, dstOff, s, true)
	default: // IM or CM
		c.alltoallStream(p, srcOff, dstOff, s, EffectiveLevel(AlltoAll, lvl) == CM)
	}
	return c.h.Meter().Snapshot().Sub(before), nil
}

// prepBlocks validates a block-structured collective's arguments.
func (c *Comm) prepBlocks(dims string, srcOff, dstOff, bytesPerPE int) (*plan, int, error) {
	p, err := c.plan(dims)
	if err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(srcOff, bytesPerPE); err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(dstOff, bytesPerPE); err != nil {
		return nil, 0, err
	}
	if overlap(srcOff, bytesPerPE, dstOff, bytesPerPE) {
		return nil, 0, fmt.Errorf("core: src [%d,%d) and dst [%d,%d) overlap",
			srcOff, srcOff+bytesPerPE, dstOff, dstOff+bytesPerPE)
	}
	s, err := blockSize(bytesPerPE, p.n)
	if err != nil {
		return nil, 0, err
	}
	return p, s, nil
}

// alltoallBulk is the conventional host-memory path: bulk read with DT,
// global (Baseline) or local (PR) data modulation in host memory, bulk
// write with DT. With PR, the PEs pre- and post-rotate their blocks so
// the host's movements become register-local and cache-friendly.
func (c *Comm) alltoallBulk(p *plan, srcOff, dstOff, s int, pr bool) {
	n := p.n
	m := n * s
	if pr {
		c.launchRotateBlocks(p, srcOff, n, s, func(rank int) int { return rank })
	}
	stag := c.h.BulkRead(c.allEGs(), srcOff, m)
	out := make([]byte, len(stag))
	if pr {
		// Data is pre-rotated: slot k of rank i holds block (i+k)%n. The
		// host applies the local phase-B movement: slot k of rank i goes
		// to slot (n-k)%n of rank (i+k)%n.
		for _, grp := range p.groups {
			for i, srcPE := range grp {
				for k := 0; k < n; k++ {
					j := (i + k) % n
					w := (n - k) % n
					copy(out[grp[j]*m+w*s:grp[j]*m+w*s+s], stag[srcPE*m+k*s:srcPE*m+k*s+s])
				}
			}
		}
		c.h.ChargeLocalMod(int64(len(stag)))
	} else {
		// Direct semantics: dst[j] block i = src[i] block j.
		for _, grp := range p.groups {
			for i, srcPE := range grp {
				for j, dstPE := range grp {
					copy(out[dstPE*m+i*s:dstPE*m+i*s+s], stag[srcPE*m+j*s:srcPE*m+j*s+s])
				}
			}
		}
		c.h.ChargeScalarMod(int64(len(stag)))
	}
	c.h.BulkWrite(c.allEGs(), dstOff, out)
	if pr {
		c.launchRotateBlocks(p, dstOff, n, s, func(rank int) int { return -rank })
	}
	c.h.ChargeSync()
}

// alltoallStream is the optimized path (Figure 7(c)/(d)): PE-assisted
// pre-rotation, host streaming one burst column at a time with in-register
// lane shifts (fused into byte-level shifts under cross-domain
// modulation), PE-assisted post-rotation. Host memory is never touched.
func (c *Comm) alltoallStream(p *plan, srcOff, dstOff, s int, cm bool) {
	n := p.n
	c.launchRotateBlocks(p, srcOff, n, s, func(rank int) int { return rank })
	c.h.BeginXfer()
	for k := 0; k < n; k++ {
		w := (n - k) % n
		for e := 0; e < s; e += 8 {
			col := c.readColumn(srcOff + k*s + e)
			col = c.shiftColumn(p, col, k)
			c.chargeShift(cm)
			c.writeColumn(dstOff+w*s+e, col)
		}
	}
	c.h.EndXfer()
	c.launchRotateBlocks(p, dstOff, n, s, func(rank int) int { return -rank })
	c.h.ChargeSync()
}
