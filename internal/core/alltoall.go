package core

import (
	"fmt"

	"repro/internal/cost"
)

// AlltoAll performs multi-instance AlltoAll along the selected dimensions
// (Figure 7): within each communication group of n PEs, block j of rank
// i's buffer ends as block i of rank j's buffer. Each PE's source region
// is [srcOff, srcOff+bytesPerPE) and destination [dstOff, dstOff+
// bytesPerPE); the regions must not overlap and bytesPerPE must be
// divisible by n with 8-byte-aligned blocks.
//
// Like the real library, the optimized levels consume the source region:
// PE-assisted reordering rotates the source blocks in MRAM before the
// host streams them (§ V-A1), and nothing restores the original order.
func (c *Comm) AlltoAll(dims string, srcOff, dstOff, bytesPerPE int, lvl Level) (cost.Breakdown, error) {
	p, s, err := c.prepBlocks(dims, srcOff, dstOff, bytesPerPE)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("AlltoAll: %w", err)
	}
	if lvl == Auto {
		if lvl, err = c.AutoLevel(AlltoAll, dims, bytesPerPE, 0, 0); err != nil {
			return cost.Breakdown{}, fmt.Errorf("AlltoAll: %w", err)
		}
	}
	before := c.h.Meter().Snapshot()
	c.execute(c.lowerAlltoAll(p, srcOff, dstOff, s, EffectiveLevel(AlltoAll, lvl)))
	return c.h.Meter().Snapshot().Sub(before), nil
}

// prepBlocks validates a block-structured collective's arguments.
func (c *Comm) prepBlocks(dims string, srcOff, dstOff, bytesPerPE int) (*plan, int, error) {
	p, err := c.plan(dims)
	if err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(srcOff, bytesPerPE); err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(dstOff, bytesPerPE); err != nil {
		return nil, 0, err
	}
	if overlap(srcOff, bytesPerPE, dstOff, bytesPerPE) {
		return nil, 0, fmt.Errorf("core: src [%d,%d) and dst [%d,%d) overlap",
			srcOff, srcOff+bytesPerPE, dstOff, dstOff+bytesPerPE)
	}
	s, err := blockSize(bytesPerPE, p.n)
	if err != nil {
		return nil, 0, err
	}
	return p, s, nil
}
