package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// asyncTestComm builds a small functional comm: 32 PEs (1 ch x 1 rank x
// 4 banks), 1-D hypercube, plenty of MRAM.
func asyncTestComm(t *testing.T, costOnly bool) *Comm {
	t.Helper()
	geo := dram.Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 4, MramPerBank: 1 << 16}
	var sys *dram.System
	var err error
	if costOnly {
		sys, err = dram.NewPhantomSystem(geo)
	} else {
		sys, err = dram.NewSystem(geo)
	}
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHypercube(sys, []int{32})
	if err != nil {
		t.Fatal(err)
	}
	if costOnly {
		return NewCostComm(hc, cost.DefaultParams())
	}
	return NewComm(hc, cost.DefaultParams())
}

func fillPEs(c *Comm, off, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	for pe := 0; pe < len(c.hc.rankedPEs("1")); pe++ {
		rng.Read(buf)
		c.SetPEBuffer(pe, off, buf)
	}
}

// rankedPEs is a tiny test helper: the PE count of the comm.
func (hc *Hypercube) rankedPEs(string) []int {
	n := hc.sys.Geometry().NumPEs()
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestAsyncMatchesSerialBitIdentical submits the same mixed sequence of
// dependent and independent plans that a serial comm replays, and checks
// meter, bus statistics and MRAM contents are bit-identical, while the
// async elapsed time never exceeds the serial elapsed time.
func TestAsyncMatchesSerialBitIdentical(t *testing.T) {
	const m = 32 * 8 // bytesPerPE (n=32 groups of 32)
	serial := asyncTestComm(t, false)
	async := asyncTestComm(t, false)
	for _, c := range []*Comm{serial, async} {
		fillPEs(c, 0, 8*m, 42)
	}

	type call struct {
		prim            Primitive
		src, dst, bytes int
		lvl             Level
	}
	// A DLRM-ish pipeline: independent pairs plus a dependent chain
	// (AlltoAll writes 3m, ReduceScatter then consumes 3m).
	seq := []call{
		{AlltoAll, 0, 1 * m, m, CM},
		{AllReduce, 4 * m, 5 * m, m, IM},           // independent of the first
		{AlltoAll, 2 * m, 3 * m, m, PR},            // independent
		{ReduceScatter, 3 * m, 6 * m, m, IM},       // RAW on 3m
		{AllGather, 6*m + m/32, 7 * m, m / 32, IM}, // WAR-free read near 6m... independent region
	}

	run := func(c *Comm, asyncMode bool) []*Future {
		var fs []*Future
		for _, cl := range seq {
			var f *Future
			var err error
			switch cl.prim {
			case AlltoAll:
				if asyncMode {
					f, err = c.SubmitAlltoAll("1", cl.src, cl.dst, cl.bytes, cl.lvl)
				} else {
					_, err = c.AlltoAll("1", cl.src, cl.dst, cl.bytes, cl.lvl)
				}
			case AllReduce:
				if asyncMode {
					f, err = c.SubmitAllReduce("1", cl.src, cl.dst, cl.bytes, elem.I32, elem.Sum, cl.lvl)
				} else {
					_, err = c.AllReduce("1", cl.src, cl.dst, cl.bytes, elem.I32, elem.Sum, cl.lvl)
				}
			case ReduceScatter:
				if asyncMode {
					f, err = c.SubmitReduceScatter("1", cl.src, cl.dst, cl.bytes, elem.I32, elem.Sum, cl.lvl)
				} else {
					_, err = c.ReduceScatter("1", cl.src, cl.dst, cl.bytes, elem.I32, elem.Sum, cl.lvl)
				}
			case AllGather:
				if asyncMode {
					f, err = c.SubmitAllGather("1", cl.src, cl.dst, cl.bytes, cl.lvl)
				} else {
					_, err = c.AllGather("1", cl.src, cl.dst, cl.bytes, cl.lvl)
				}
			}
			if err != nil {
				t.Fatalf("%v: %v", cl.prim, err)
			}
			if f != nil {
				fs = append(fs, f)
			}
		}
		return fs
	}

	run(serial, false)
	fs := run(async, true)
	async.Flush()
	for i, f := range fs {
		if err := f.Err(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}

	if s, a := serial.Meter().Snapshot(), async.Meter().Snapshot(); s != a {
		t.Fatalf("meters diverge:\n serial %v\n async  %v", s, a)
	}
	if s, a := serial.Host().Stats(), async.Host().Stats(); s.Bursts != a.Bursts {
		t.Fatalf("bus statistics diverge: %d vs %d bursts", s.Bursts, a.Bursts)
	}
	for pe := 0; pe < 32; pe++ {
		if !bytes.Equal(serial.GetPEBuffer(pe, 0, 8*m), async.GetPEBuffer(pe, 0, 8*m)) {
			t.Fatalf("PE %d MRAM diverges between serial and async execution", pe)
		}
	}
	sEl, aEl := serial.Elapsed(), async.Elapsed()
	if aEl > sEl+1e-15 {
		t.Fatalf("async elapsed %v exceeds serial %v", aEl, sEl)
	}
	if aEl >= sEl {
		t.Fatalf("async elapsed %v shows no overlap vs serial %v (independent plans in sequence)", aEl, sEl)
	}
}

// TestAsyncHazardOrdering checks that dependent plans' timeline windows
// do not overlap (RAW chain) while independent plans' windows do.
func TestAsyncHazardOrdering(t *testing.T) {
	const m = 32 * 8
	c := asyncTestComm(t, true)

	// Writer -> reader chain on the same region: must serialize.
	w, err := c.SubmitAlltoAll("1", 0, m, m, Baseline) // writes [m,2m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.SubmitAllGather("1", m, 4*m, m/32, IM) // reads [m, m+m/32)
	if err != nil {
		t.Fatal(err)
	}
	// Independent plan: may overlap the writer.
	ind, err := c.SubmitAllReduce("1", 8*m, 9*m, m, elem.I32, elem.Sum, IM)
	if err != nil {
		t.Fatal(err)
	}
	c.Flush()

	_, wEnd := w.Window()
	rStart, _ := r.Window()
	if rStart < wEnd {
		t.Fatalf("dependent reader starts at %v before writer ends at %v", rStart, wEnd)
	}
	iStart, _ := ind.Window()
	if iStart >= wEnd {
		t.Fatalf("independent plan start %v does not overlap writer window ending %v", iStart, wEnd)
	}
}

// TestAsyncConcurrentSubmitStress hammers Submit from many goroutines
// (run under -race): each goroutine owns a disjoint MRAM region and
// alternates two plans on it. Total meter time must equal the sum of all
// futures' breakdowns, and elapsed must not exceed the serial sum.
func TestAsyncConcurrentSubmitStress(t *testing.T) {
	const m = 32 * 8
	c := asyncTestComm(t, true)
	const workers = 8
	const itersPerWorker = 20

	var mu sync.Mutex
	var want cost.Breakdown
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * 4 * m
			var fs []*Future
			for i := 0; i < itersPerWorker; i++ {
				f, err := c.SubmitAlltoAll("1", base, base+m, m, CM)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				fs = append(fs, f)
				f2, err := c.SubmitAllReduce("1", base+2*m, base+3*m, m, elem.I32, elem.Sum, IM)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				fs = append(fs, f2)
			}
			var sum cost.Breakdown
			for _, f := range fs {
				bd, err := f.Wait()
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				sum = sum.Add(bd)
			}
			mu.Lock()
			want = want.Add(sum)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	c.Flush()

	got := c.Meter().Snapshot()
	if diff := got.Total() - want.Total(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("meter total %v != sum of future breakdowns %v", got.Total(), want.Total())
	}
	if el := c.Elapsed(); el > got.Total()+1e-12 {
		t.Fatalf("elapsed %v exceeds total work %v", el, got.Total())
	}
}

// TestAsyncCostNeverAboveSerial is the async cost property test over
// random independent/dependent plan mixes on the cost backend: the async
// elapsed time never exceeds the serial replay's, and the meters stay
// bit-identical.
func TestAsyncCostNeverAboveSerial(t *testing.T) {
	const m = 32 * 8
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		serial := asyncTestComm(t, true)
		async := asyncTestComm(t, true)
		nCalls := 2 + rng.Intn(6)
		type planned struct{ s, a *CompiledPlan }
		var plans []planned
		for i := 0; i < nCalls; i++ {
			// Random regions over 8 slots of size 2m; random levels.
			src := rng.Intn(8) * 2 * m
			dst := rng.Intn(8) * 2 * m
			if src == dst {
				dst = (src + 2*m) % (16 * m)
			}
			lvl := Levels()[rng.Intn(4)]
			sp, err := serial.CompileAlltoAll("1", src, dst, m, lvl)
			if err != nil {
				t.Fatal(err)
			}
			ap, err := async.CompileAlltoAll("1", src, dst, m, lvl)
			if err != nil {
				t.Fatal(err)
			}
			plans = append(plans, planned{sp, ap})
		}
		for _, p := range plans {
			if _, err := p.s.Run(); err != nil {
				t.Fatal(err)
			}
		}
		var fs []*Future
		for _, p := range plans {
			fs = append(fs, p.a.Submit())
		}
		async.Flush()
		for _, f := range fs {
			if err := f.Err(); err != nil {
				t.Fatal(err)
			}
		}
		if s, a := serial.Meter().Snapshot(), async.Meter().Snapshot(); s != a {
			t.Fatalf("trial %d: meters diverge", trial)
		}
		if sEl, aEl := serial.Elapsed(), async.Elapsed(); aEl > sEl+1e-15 {
			t.Fatalf("trial %d: async elapsed %v > serial %v", trial, aEl, sEl)
		}
	}
}

// failingPlan hand-builds a plan whose functional execution panics
// mid-schedule (after the charge trace was captured cleanly), modeling a
// backend error inside a schedule step.
func failingPlan(c *Comm) *CompiledPlan {
	sched := &Schedule{Name: "test/failing"}
	sched.add(&StepHostCompute{
		Charges: []Charge{{ChargeHostMem, 64}},
		Run:     func() { panic("injected backend failure") },
	})
	sched.add(&StepSync{})
	cp := &CompiledPlan{c: c, key: planKey{prim: Broadcast, dims: "1"}, sched: sched}
	cp.tr = c.traceSchedule(sched)
	return cp
}

// TestFutureErrSurfacesBackendErrorExactlyOnce is the regression test for
// the queue-slot double-release bug: a plan failing mid-schedule must
// surface its error on exactly its own Future (idempotently), leave other
// futures untouched, keep the queue draining, and neither leak nor
// double-release queue slots.
func TestFutureErrSurfacesBackendErrorExactlyOnce(t *testing.T) {
	const m = 32 * 8
	c := asyncTestComm(t, false)
	fillPEs(c, 0, 4*m, 7)

	ok1, err := c.SubmitAlltoAll("1", 0, m, m, CM)
	if err != nil {
		t.Fatal(err)
	}
	bad := failingPlan(c).Submit()
	bad2 := failingPlan(c).Submit()
	ok2, err := c.SubmitAlltoAll("1", 2*m, 3*m, m, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	c.Flush()

	if err := ok1.Err(); err != nil {
		t.Fatalf("healthy future 1 got error: %v", err)
	}
	if err := ok2.Err(); err != nil {
		t.Fatalf("healthy future after failures got error: %v", err)
	}
	for i, f := range []*Future{bad, bad2} {
		e1 := f.Err()
		if e1 == nil {
			t.Fatalf("failing future %d: no error surfaced", i)
		}
		if _, e2 := f.Wait(); e2 != e1 {
			t.Fatalf("failing future %d: error not stable across calls: %v vs %v", i, e1, e2)
		}
	}

	// Slot accounting: after the queue drained, every slot must have been
	// released exactly once — the semaphore is empty again, and the comm
	// still accepts a full MaxPendingPlans burst without blocking.
	if n := len(c.asyncSlots); n != 0 {
		t.Fatalf("%d queue slots leaked after failures", n)
	}
	var fs []*Future
	for i := 0; i < 32; i++ {
		f, err := c.SubmitAlltoAll("1", 0, m, m, CM)
		if err != nil {
			t.Fatal(err)
		}
		fs = append(fs, f)
	}
	c.Flush()
	for _, f := range fs {
		if err := f.Err(); err != nil {
			t.Fatalf("post-failure submission failed: %v", err)
		}
	}
	if n := len(c.asyncSlots); n != 0 {
		t.Fatalf("%d queue slots outstanding after drain", n)
	}
}

// TestSerialRunIsBarrier checks that a serial Run after submissions
// appends to the timeline (no overlap with in-flight plans) and that
// submissions after a Flush do not backfill earlier gaps.
func TestSerialRunIsBarrier(t *testing.T) {
	const m = 32 * 8
	c := asyncTestComm(t, true)
	f, err := c.SubmitAlltoAll("1", 0, m, m, CM)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllReduce("1", 2*m, 3*m, m, elem.I32, elem.Sum, IM); err != nil {
		t.Fatal(err)
	}
	_, fEnd := f.Window()
	el := c.Elapsed()
	if el <= fEnd {
		t.Fatalf("serial run did not extend the timeline: elapsed %v, future end %v", el, fEnd)
	}
	// Post-flush submissions start at or after the barrier.
	f2, err := c.SubmitAlltoAll("1", 4*m, 5*m, m, CM)
	if err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if s, _ := f2.Window(); s < el {
		t.Fatalf("post-barrier submission backfilled: start %v < barrier %v", s, el)
	}
}

// TestPlanCacheStats pins the instrumentation: hits/misses and memory
// accounting across compiles, one-shot replays and ClearPlanCache.
func TestPlanCacheStats(t *testing.T) {
	const m = 32 * 8
	c := asyncTestComm(t, true)
	if st := c.PlanCacheStats(); st != (PlanCacheStats{}) {
		t.Fatalf("fresh comm has non-zero cache stats: %+v", st)
	}
	if _, err := c.AlltoAll("1", 0, m, m, CM); err != nil {
		t.Fatal(err)
	}
	st := c.PlanCacheStats()
	if st.PlanMisses != 1 || st.PlanHits != 0 || st.TraceMisses != 1 {
		t.Fatalf("after first call: %+v", st)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.AlltoAll("1", 0, m, m, CM); err != nil {
			t.Fatal(err)
		}
	}
	st = c.PlanCacheStats()
	if st.PlanHits != 3 || st.PlanMisses != 1 {
		t.Fatalf("after replays: %+v", st)
	}
	if st.CachedPlans != 1 || st.CachedTraces != 1 {
		t.Fatalf("cache sizes: %+v", st)
	}
	if st.TraceEntries == 0 || st.TraceBytes == 0 {
		t.Fatalf("no trace memory accounted: %+v", st)
	}
	// Host-input plans miss the plan cache but hit the trace cache.
	bufs := [][]byte{nil}
	_ = bufs
	if _, err := c.Scatter("1", nil, 4*m, m/32, IM); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Scatter("1", nil, 4*m, m/32, IM); err != nil {
		t.Fatal(err)
	}
	st = c.PlanCacheStats()
	if st.TraceHits != 3+1 || st.TraceMisses != 2 {
		t.Fatalf("host-input trace sharing: %+v", st)
	}
	c.ClearPlanCache()
	st = c.PlanCacheStats()
	if st.CachedPlans != 0 || st.CachedTraces != 0 || st.TraceBytes != 0 {
		t.Fatalf("clear did not drop entries: %+v", st)
	}
	if st.PlanHits != 3 {
		t.Fatalf("clear dropped cumulative counters: %+v", st)
	}
}

// TestSubmitRootedResults checks a submitted Gather's results are owned
// by the future and survive later runs of the same plan.
func TestSubmitRootedResults(t *testing.T) {
	const s = 64
	c := asyncTestComm(t, false)
	fillPEs(c, 0, s, 5)
	f, err := c.SubmitGather("1", 0, s, IM)
	if err != nil {
		t.Fatal(err)
	}
	bufs := f.Results()
	if len(bufs) != 1 || len(bufs[0]) != 32*s {
		t.Fatalf("gather results shape: %d groups", len(bufs))
	}
	snapshot := append([]byte(nil), bufs[0]...)
	// Overwrite MRAM and rerun: the future's buffers must not change.
	fillPEs(c, 0, s, 6)
	if _, _, err := c.Gather("1", 0, s, IM); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshot, bufs[0]) {
		t.Fatal("future results were clobbered by a later run")
	}
}

func ExampleFuture_Window() {
	// Windows order by hazards; see TestAsyncHazardOrdering for the
	// assertions. This example exists to anchor the godoc.
	fmt.Println("dependent plans execute in submission order")
	// Output: dependent plans execute in submission order
}
