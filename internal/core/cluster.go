package core

// This file implements the first-class cluster layer (§ IX-A, Figure
// 23(b)): H hosts, each driving its own PIM subsystem through a *Comm,
// cooperate over an MPI-like network. A hierarchical cluster collective
// lowers — per host — into ONE schedule-IR plan: the intra-host leg(s)
// (ordinary PID-Comm lowerings), the inter-host network leg (a
// StepNetTransfer priced by cost.NetParams and, on the functional
// backend, a rendezvous with the peer hosts' executors around the
// shared staging), and the redistribution leg. Because the whole
// hierarchy is one compiled sequence, it caches (repeat descriptors are
// plan-cache hits), fuses (the interior per-leg syncs collapse — a
// cross-leg rewrite on every hierarchical plan) and replays through the
// same engine as a single-host collective.
//
// Global shape: a cluster collective treats the H×P PEs (P per host) as
// one flat communicator. Global rank g = h*P + j, where j is the PE's
// rank within its host's group for the descriptor's Dims — which must
// select every dimension of the per-host hypercube, so each host is a
// single group. Functional results are byte-identical to running the
// same descriptor on one flat comm of H*P PEs (cluster_test.go pins
// this per primitive, including non-power-of-two H).
//
// Concurrency: the functional backend executes a cluster plan with one
// goroutine per host; the hosts meet at generation-counting barriers
// inside the network legs. Serial Runs are serialized on the cluster;
// Submit enqueues on every host atomically, so the per-host queues see
// cluster plans in one global order and the rendezvous always pair up.
// Cluster plans should be submitted from one goroutine at a time per
// tenant set; the cost-only backend has no barriers and no such
// constraint.

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/cost"
)

// ClusterCollective describes one collective over every PE of a
// cluster. The embedded Collective is interpreted on the global
// communicator: Dims must select every dimension of the per-host
// hypercube, per-PE region sizes are the global call's (e.g. an
// AlltoAll buffer holds H*P blocks), and Hosts carries at most one
// global payload (Scatter/Broadcast). Root selects the root host of the
// rooted primitives (Broadcast, Scatter, Gather, Reduce). Flat requests
// the naive flat emulation instead of the hierarchical lowering — every
// PE's raw data crosses the wire to the root — and is implemented for
// AllReduce as the benchmark baseline.
//
// On a cost-only cluster Hosts may be nil even for Broadcast; the
// payload size is then taken from Dst.Bytes. (The legacy multihost
// layer instead satisfied payload validation with a shared zero-scratch
// buffer, which aliased across call sites; the descriptor form removes
// the buffer entirely.)
type ClusterCollective struct {
	Collective
	Root int
	Flat bool
}

// keyString identifies the descriptor for the cluster's plan and state
// caches. Hosts buffers are identified by presence only — plans that
// capture caller payloads are not cached (mirroring the single-host
// host-input rule).
func (d ClusterCollective) keyString() string {
	return fmt.Sprintf("%v|%s|src=%+v|dst=%+v|%v|%v|%v|algo=%v|root=%d|flat=%v|hosts=%t",
		d.Prim, d.Dims, d.Src, d.Dst, d.Elem, d.Op, d.Level, d.Algorithm, d.Root, d.Flat, d.Hosts != nil)
}

// barrier is a reusable generation-counting rendezvous for the H host
// executor goroutines of a functional cluster. The LAST arriver runs
// the exchange action (merging partials, assembling the global buffer)
// before releasing the others, so the action observes every host's
// published data and every host observes the action's result.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n parties have arrived; the last arriver runs
// action (if non-nil) before releasing the generation.
func (b *barrier) await(action func()) {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		if action != nil {
			action()
		}
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// clusterState is the per-descriptor shared staging of one cluster
// plan: what the network legs move between the hosts. It is allocated
// once per descriptor and bound into the per-host schedules at compile
// time, so cached replays reuse it; the trailing fence barrier of every
// plan keeps run N+1 from overwriting it while run N still streams.
// Buffers and barrier exist only on the functional backend — cost-only
// sweeps to thousands of hosts allocate no O(data) staging.
type clusterState struct {
	id int
	// parts[h] is host h's published rooted-leg result for this run.
	parts [][]byte
	// global is the assembled / merged cluster-wide buffer the
	// redistribution legs read (and rooted Results return).
	global []byte
	// gbufs aliases global as the one-group Hosts slice the broadcast
	// and scatter legs bind ([][]byte{global}).
	gbufs [][]byte
	// xfer[src][dst] is the AlltoAll exchange slab: P*P blocks of s
	// bytes, block (j,k) at (j*P+k)*s — source rank j to dest rank k.
	xfer [][][]byte
	bar  *barrier
}

// Cluster is a set of H identically-shaped hosts executing hierarchical
// collectives. Build one with NewCluster over comms that share geometry,
// hypercube shape and backend; the pidcomm package wraps it in the
// user-facing session API.
type Cluster struct {
	comms      []*Comm
	p          int // PEs per host
	functional bool

	// mu guards the plan/state caches and the id counter; execMu
	// serializes serial cluster runs and makes Submit's multi-host
	// enqueue atomic (a single global order of cluster plans).
	mu     sync.Mutex
	states map[string]*clusterState
	plans  map[string]*ClusterPlan
	nextID int
	execMu sync.Mutex
}

// NewCluster builds a cluster over the given per-host comms. The hosts
// must be distinct, non-empty, and homogeneous: same PE count, same
// hypercube shape, same backend kind. (Use pidcomm.NewCluster to
// provision hosts and cluster in one call.)
func NewCluster(comms []*Comm) (*Cluster, error) {
	if len(comms) == 0 {
		return nil, fmt.Errorf("core: cluster needs at least one host")
	}
	p := comms[0].hc.sys.Geometry().NumPEs()
	shape := comms[0].hc.Shape()
	functional := comms[0].backend.Functional()
	for h, c := range comms {
		for h2 := 0; h2 < h; h2++ {
			if comms[h2] == c {
				return nil, fmt.Errorf("core: host %d and %d are the same comm", h2, h)
			}
		}
		if got := c.hc.sys.Geometry().NumPEs(); got != p {
			return nil, fmt.Errorf("core: host %d has %d PEs, host 0 has %d (cluster hosts must be homogeneous)", h, got, p)
		}
		if gs := c.hc.Shape(); len(gs) != len(shape) {
			return nil, fmt.Errorf("core: host %d hypercube rank %d != host 0 rank %d", h, len(gs), len(shape))
		} else {
			for i := range gs {
				if gs[i] != shape[i] {
					return nil, fmt.Errorf("core: host %d hypercube shape %v != host 0 shape %v", h, gs, shape)
				}
			}
		}
		if c.backend.Functional() != functional {
			return nil, fmt.Errorf("core: host %d backend %q differs from host 0 (mixed functional/cost clusters are not supported)", h, c.backend.Name())
		}
	}
	return &Cluster{
		comms:      comms,
		p:          p,
		functional: functional,
		states:     make(map[string]*clusterState),
		plans:      make(map[string]*ClusterPlan),
	}, nil
}

// NumHosts returns the number of hosts.
func (cl *Cluster) NumHosts() int { return len(cl.comms) }

// PEsPerHost returns the PE count of each host.
func (cl *Cluster) PEsPerHost() int { return cl.p }

// NumPEs returns the cluster-wide PE count (hosts × PEs/host).
func (cl *Cluster) NumPEs() int { return len(cl.comms) * cl.p }

// Host returns host h's communication context.
func (cl *Cluster) Host(h int) *Comm { return cl.comms[h] }

// Functional reports whether the cluster moves real bytes.
func (cl *Cluster) Functional() bool { return cl.functional }

// Breakdown returns the cluster's cumulative cost snapshot: the
// per-category maximum across the host meters (hosts run concurrently;
// each host's meter includes its own network-leg time).
func (cl *Cluster) Breakdown() cost.Breakdown {
	var bd cost.Breakdown
	for _, c := range cl.comms {
		bd = bd.Max(c.Meter().Snapshot())
	}
	return bd
}

// Elapsed returns the cluster's overlap-aware simulated makespan: the
// slowest host's elapsed-time timeline.
func (cl *Cluster) Elapsed() cost.Seconds {
	var e cost.Seconds
	for _, c := range cl.comms {
		if he := c.Elapsed(); he > e {
			e = he
		}
	}
	return e
}

// Flush blocks until every submitted cluster plan has completed on
// every host.
func (cl *Cluster) Flush() {
	for _, c := range cl.comms {
		c.Flush()
	}
}

// Compile lowers d into one compiled plan per host (see ClusterPlan)
// and caches the result: recompiling an equal descriptor is a per-host
// plan-cache hit. Plans that capture a caller payload (functional
// Broadcast/Scatter) recompile fresh, like their single-host
// counterparts.
func (cl *Cluster) Compile(d ClusterCollective) (*ClusterPlan, error) {
	return cl.compile(nil, d)
}

// CompileOn is Compile resolved against one tenant per host: regions
// are arena-relative, runs are admitted against every host's tenant
// quota up front, and charges are attributed per host tenant. The
// pidcomm layer uses it to shard a serving tenant across a cluster.
func (cl *Cluster) CompileOn(owners []*Tenant, d ClusterCollective) (*ClusterPlan, error) {
	if len(owners) != len(cl.comms) {
		return nil, fmt.Errorf("core: %d tenants for %d hosts", len(owners), len(cl.comms))
	}
	for h, t := range owners {
		if t == nil || t.c != cl.comms[h] {
			return nil, fmt.Errorf("core: tenant %d does not belong to host %d's comm", h, h)
		}
	}
	return cl.compile(owners, d)
}

// Run compiles (or fetches the cached plan for) d and executes it once
// on every host, returning the per-category maximum of the hosts' cost
// breakdowns — the cluster-critical-path charge of this call.
func (cl *Cluster) Run(d ClusterCollective) (cost.Breakdown, error) {
	cp, err := cl.Compile(d)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cp.Run()
}

// Submit compiles d and enqueues one asynchronous execution on every
// host, returning a ClusterFuture.
func (cl *Cluster) Submit(d ClusterCollective) (*ClusterFuture, error) {
	cp, err := cl.Compile(d)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

func (cl *Cluster) compile(owners []*Tenant, d ClusterCollective) (*ClusterPlan, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	key := d.keyString()
	for _, t := range owners {
		key += "|tenant=" + t.name
	}
	cacheable := !(cl.functional && d.Hosts != nil)
	if cp, ok := cl.plans[key]; ok && cacheable {
		return cp, nil
	}
	st, ok := cl.states[key]
	if !ok {
		st = &clusterState{id: cl.nextID}
		cl.nextID++
		if cl.functional {
			st.bar = newBarrier(len(cl.comms))
		}
		cl.states[key] = st
	}
	cp := &ClusterPlan{cl: cl, d: d, st: st, plans: make([]*CompiledPlan, len(cl.comms))}
	for h := range cl.comms {
		ar := cl.comms[h].fullArena()
		var owner *Tenant
		if owners != nil {
			owner = owners[h]
			ar = owner.ar
		}
		specs, err := cl.hostSpecs(h, ar, st, d)
		if err != nil {
			return nil, fmt.Errorf("cluster host %d: %w", h, err)
		}
		hp := cl.comms[h].compiledSequence(specs)
		if err := hp.adopt(owner); err != nil {
			return nil, fmt.Errorf("cluster host %d: %w", h, err)
		}
		cp.plans[h] = hp
	}
	if cacheable {
		cl.plans[key] = cp
	}
	return cp, nil
}

// ---------------------------------------------------------------------
// Per-host lowering: one []planSpec per host, fed to compiledSequence.
// ---------------------------------------------------------------------

// ceilLog2 returns ceil(log2(h)) — the rounds of a binomial fan-out.
func ceilLog2(h int) int {
	if h <= 1 {
		return 0
	}
	return bits.Len(uint(h - 1))
}

// clusterBuild accumulates one host's member specs.
type clusterBuild struct {
	cl    *Cluster
	c     *Comm
	h     int // host index
	p     *plan
	ar    arena
	st    *clusterState
	d     ClusterCollective
	specs []planSpec
}

func (cl *Cluster) hostSpecs(h int, ar arena, st *clusterState, d ClusterCollective) ([]planSpec, error) {
	c := cl.comms[h]
	p, err := c.plan(d.Dims)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", d.Prim.LongName(), err)
	}
	if p.n != cl.p {
		return nil, fmt.Errorf("%s: cluster collectives span the whole host: dims %q groups %d of %d PEs", d.Prim.LongName(), d.Dims, len(p.groups), p.n)
	}
	if d.Root < 0 || d.Root >= len(cl.comms) {
		return nil, fmt.Errorf("%s: root host %d out of range [0,%d)", d.Prim.LongName(), d.Root, len(cl.comms))
	}
	if d.Flat && d.Prim != AllReduce {
		return nil, fmt.Errorf("%s: the flat (non-hierarchical) lowering is only implemented for AllReduce", d.Prim.LongName())
	}
	b := &clusterBuild{cl: cl, c: c, h: h, p: p, ar: ar, st: st, d: d}
	if d.Algorithm != AlgoAuto && !(d.Prim == AllReduce && !d.Flat) {
		// The algorithm axis at cluster level selects the host-level wire
		// algorithm, which only the hierarchical AllReduce diversifies so
		// far. Local legs always resolve their own machine-level
		// algorithm; an explicit constraint elsewhere would be silently
		// dropped, so reject it instead.
		return nil, fmt.Errorf("%s: cluster algorithm %v not supported (only hierarchical AllReduce selects a host algorithm)",
			d.Prim.LongName(), d.Algorithm)
	}
	switch {
	case d.Flat:
		err = b.flatAllReduce()
	case d.Prim == AllReduce:
		err = b.allReduce()
	case d.Prim == ReduceScatter:
		err = b.reduceScatter()
	case d.Prim == AllGather:
		err = b.allGather()
	case d.Prim == AlltoAll:
		err = b.alltoAll()
	case d.Prim == Broadcast:
		err = b.broadcast()
	case d.Prim == Scatter:
		err = b.scatter()
	case d.Prim == Gather:
		err = b.gather()
	case d.Prim == Reduce:
		err = b.reduce()
	default:
		err = fmt.Errorf("core: unknown primitive %v", d.Prim)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", d.Prim.LongName(), err)
	}
	b.fence()
	return b.specs, nil
}

// local appends an ordinary single-host collective as a member.
func (b *clusterBuild) local(d Collective) error {
	sp, err := b.c.specIn(b.ar, d)
	if err != nil {
		return err
	}
	b.specs = append(b.specs, sp)
	return nil
}

// tag returns a member cache tag unique to this cluster state and host.
func (b *clusterBuild) tag(name string) string {
	return fmt.Sprintf("clu%d:h%d:%s", b.st.id, b.h, name)
}

// net appends the inter-host network leg: rounds exchange rounds of
// bytesPerRound each, charged through cost.NetParams onto the host's
// network lane, plus (functional) the rendezvous closure run. hostBufs
// marks a run closure that captures a caller payload.
func (b *clusterBuild) net(name string, rounds int, bytesPerRound int64, run func(cp *CompiledPlan) func(), hostBufs bool) {
	key := planKey{prim: b.d.Prim, dims: b.d.Dims, bytes: int(bytesPerRound),
		tag: b.tag(fmt.Sprintf("%s:r%d", name, rounds))}
	b.specs = append(b.specs, planSpec{key: key, hostBufs: hostBufs,
		lower: func(cp *CompiledPlan) *Schedule {
			st := &StepNetTransfer{Rounds: rounds, Bytes: bytesPerRound}
			// The cost-only twin gets an empty closure where the
			// functional cluster has a rendezvous: the step must survive
			// (or be elided by) fusion identically on both backends, or
			// epoch coalescing around a dropped step would regroup the
			// bus-time float additions and break the bit-exact
			// functional/cost breakdown equality.
			if run != nil {
				if b.cl.functional {
					st.Run = run(cp)
				} else {
					st.Run = func() {}
				}
			}
			sched := &Schedule{Name: "NetTransfer/" + name}
			sched.add(st)
			sched.add(&StepSync{})
			return sched
		}})
}

// fence appends the trailing rendezvous member: a zero-round network
// step whose only job (functional) is to keep any host from starting
// the plan's next run — overwriting the shared staging — while another
// host still streams this run's data. It charges nothing on either
// backend.
func (b *clusterBuild) fence() {
	bar := b.st.bar
	key := planKey{prim: b.d.Prim, dims: b.d.Dims, tag: b.tag("fence")}
	b.specs = append(b.specs, planSpec{key: key,
		lower: func(*CompiledPlan) *Schedule {
			st := &StepNetTransfer{}
			if b.cl.functional {
				st.Run = func() { bar.await(nil) }
			} else {
				st.Run = func() {} // keep fusion symmetric with functional
			}
			sched := &Schedule{Name: "NetTransfer/fence"}
			sched.add(st)
			sched.add(&StepSync{})
			return sched
		}})
}

// member appends a hand-built redistribution member.
func (b *clusterBuild) member(name string, regs planRegions, hostBufs bool, lower func(cp *CompiledPlan) *Schedule) {
	key := planKey{prim: b.d.Prim, dims: b.d.Dims, tag: b.tag(name)}
	b.specs = append(b.specs, planSpec{key: key, regs: regs, hostBufs: hostBufs, lower: lower})
}

// ensure sizes the shared staging (functional only; cost-only clusters
// keep everything nil so sweeps allocate no O(data) state).
func (st *clusterState) ensure(functional bool, globalBytes int, parts bool, hosts int) {
	if !functional {
		return
	}
	if globalBytes > 0 && len(st.global) != globalBytes {
		st.global = make([]byte, globalBytes)
		st.gbufs = [][]byte{st.global}
	}
	if parts && len(st.parts) != hosts {
		st.parts = make([][]byte, hosts)
	}
}

// publishMerge returns a net-leg run closure: publish this host's
// rooted-leg result, rendezvous, and have the last arriver merge every
// host's part into st.global.
func (b *clusterBuild) publishMerge(merge func()) func(cp *CompiledPlan) func() {
	st, h := b.st, b.h
	return func(cp *CompiledPlan) func() {
		return func() {
			st.parts[h] = cp.rooted[0]
			st.bar.await(merge)
		}
	}
}

// --- AllReduce: Reduce → ring AllReduce on the wire → Broadcast -------

func (b *clusterBuild) allReduce() error {
	d, H := b.d, len(b.cl.comms)
	m := d.Src.Bytes
	if err := impliedBytes("Dst", d.Dst.Bytes, m); err != nil {
		return err
	}
	if err := checkArenaRegion(b.ar, d.Dst.Off, m); err != nil {
		return err
	}
	if overlap(d.Src.Off, m, d.Dst.Off, m) {
		return fmt.Errorf("core: src and dst regions overlap")
	}
	if err := b.local(Collective{Prim: Reduce, Dims: d.Dims,
		Src: Span(d.Src.Off, m), Elem: d.Elem, Op: d.Op, Level: d.Level}); err != nil {
		return err
	}
	st := b.st
	st.ensure(b.cl.functional, m, true, H)
	merge := func() { copy(st.global, RefReduce(d.Elem, d.Op, st.parts)) }
	// Host-level wire algorithm. Ring: 2(H-1) overlapped rounds of one
	// reduced 1/H portion each (§ IX-A: data are sent after reduction).
	// Tree: the reduced payload climbs and re-descends a binary host tree
	// in 2*ceil(log2 H) rounds of the full m bytes — fewer, fatter rounds,
	// so it wins when the per-round latency dominates (small payloads,
	// many hosts). AlgoAuto prices both legs on the wire model and keeps
	// the cheaper; an explicit choice pins the leg.
	alg := d.Algorithm
	if alg == AlgoAuto {
		net := b.c.h.Params().Net
		ringT := cost.Seconds(2*(H-1)) * net.RoundTime(int64(m/H))
		treeT := cost.Seconds(2*ceilLog2(H)) * net.RoundTime(int64(m))
		if treeT < ringT {
			alg = AlgoTree
		} else {
			alg = AlgoRing
		}
	}
	switch alg {
	case AlgoReference, AlgoRing:
		b.net("ring", 2*(H-1), int64(m/H), b.publishMerge(merge), false)
	case AlgoTree:
		b.net("tree", 2*ceilLog2(H), int64(m), b.publishMerge(merge), false)
	default:
		return fmt.Errorf("core: cluster AllReduce: unsupported host algorithm %v (want Auto, ref, ring, or tree)", alg)
	}
	b.bcastGlobal(d.Dst.Off, m)
	return nil
}

// bcastGlobal appends the local redistribution leg that broadcasts
// st.global to every PE at dstOff.
func (b *clusterBuild) bcastGlobal(dstOff, n int) {
	absDst := b.ar.base + dstOff
	var regs planRegions
	regs.write(absDst, n)
	c, p, st := b.c, b.p, b.st
	b.member("bcast", regs, false, func(*CompiledPlan) *Schedule {
		bufs := st.gbufs
		if bufs == nil {
			bufs = [][]byte{nil} // cost-only: never dereferenced
		}
		return c.lowerBroadcast(p, bufs, absDst, n)
	})
}

// --- ReduceScatter: Reduce → ring on the wire → Scatter ---------------

func (b *clusterBuild) reduceScatter() error {
	d, H, P := b.d, len(b.cl.comms), b.cl.p
	m := d.Src.Bytes
	s, err := blockSize(m, H*P)
	if err != nil {
		return err
	}
	if err := impliedBytes("Dst", d.Dst.Bytes, s); err != nil {
		return err
	}
	if err := checkArenaRegion(b.ar, d.Dst.Off, s); err != nil {
		return err
	}
	if overlap(d.Src.Off, m, d.Dst.Off, s) {
		return fmt.Errorf("core: src and dst regions overlap")
	}
	if err := b.local(Collective{Prim: Reduce, Dims: d.Dims,
		Src: Span(d.Src.Off, m), Elem: d.Elem, Op: d.Op, Level: d.Level}); err != nil {
		return err
	}
	st := b.st
	st.ensure(b.cl.functional, m, true, H)
	merge := func() { copy(st.global, RefReduce(d.Elem, d.Op, st.parts)) }
	b.net("ring", H-1, int64(P*s), b.publishMerge(merge), false)
	return b.scatterGlobal(d.Dst.Off, s, b.h*P*s)
}

// scatterGlobal appends the local leg that scatters this host's portion
// of st.global (P blocks of s starting at part) to its PEs.
func (b *clusterBuild) scatterGlobal(dstOff, s, part int) error {
	_, eff, err := b.c.resolveAlgoLevel(Collective{Prim: Scatter, Dims: b.d.Dims, Level: b.d.Level}, s, false)
	if err != nil {
		return err
	}
	absDst := b.ar.base + dstOff
	var regs planRegions
	regs.write(absDst, s)
	c, p, st := b.c, b.p, b.st
	P := b.cl.p
	b.member("scatter", regs, false, func(*CompiledPlan) *Schedule {
		bufs := [][]byte{nil} // cost-only: never dereferenced
		if st.global != nil {
			bufs = [][]byte{st.global[part : part+P*s]}
		}
		return c.lowerScatter(p, bufs, absDst, s, eff)
	})
	return nil
}

// --- AllGather: Gather → all-gather on the wire → Broadcast -----------

func (b *clusterBuild) allGather() error {
	d, H, P := b.d, len(b.cl.comms), b.cl.p
	s := d.Src.Bytes
	if err := impliedBytes("Dst", d.Dst.Bytes, H*P*s); err != nil {
		return err
	}
	if err := checkArenaRegion(b.ar, d.Dst.Off, H*P*s); err != nil {
		return err
	}
	if overlap(d.Src.Off, s, d.Dst.Off, H*P*s) {
		return fmt.Errorf("core: src and dst regions overlap")
	}
	if err := b.local(Collective{Prim: Gather, Dims: d.Dims,
		Src: Span(d.Src.Off, s), Level: d.Level}); err != nil {
		return err
	}
	st := b.st
	st.ensure(b.cl.functional, H*P*s, true, H)
	merge := func() {
		for hh, part := range st.parts {
			copy(st.global[hh*P*s:(hh+1)*P*s], part)
		}
	}
	// § IX-A: data are sent before duplication — one P*s portion per
	// host per round crosses the wire; the H-fold fan-out to the PEs
	// happens after it.
	b.net("allgather", H-1, int64(P*s), b.publishMerge(merge), false)
	b.bcastGlobal(d.Dst.Off, H*P*s)
	return nil
}

// --- AlltoAll: local own-part AlltoAll ∥ pack → exchange → unpack -----

func (b *clusterBuild) alltoAll() error {
	d, H, P, h := b.d, len(b.cl.comms), b.cl.p, b.h
	m := d.Src.Bytes
	s, err := blockSize(m, H*P)
	if err != nil {
		return err
	}
	if err := impliedBytes("Dst", d.Dst.Bytes, m); err != nil {
		return err
	}
	if err := checkArenaRegion(b.ar, d.Src.Off, m); err != nil {
		return err
	}
	if err := checkArenaRegion(b.ar, d.Dst.Off, m); err != nil {
		return err
	}
	inPlace := d.Src.Off == d.Dst.Off
	if overlap(d.Src.Off, m, d.Dst.Off, m) && !inPlace {
		return fmt.Errorf("core: src [%d,%d) and dst [%d,%d) overlap",
			d.Src.Off, d.Src.Off+m, d.Dst.Off, d.Dst.Off+m)
	}
	PS := P * s // one host's portion per PE
	// Intra-host leg: an ordinary local AlltoAll on the region of blocks
	// destined to this host (global block h*P+k ≡ local block k there).
	if err := b.local(Collective{Prim: AlltoAll, Dims: d.Dims,
		Src: Span(d.Src.Off+h*PS, PS), Dst: At(d.Dst.Off + h*PS), Level: d.Level}); err != nil {
		return err
	}
	st := b.st
	if b.cl.functional && st.xfer == nil {
		st.xfer = make([][][]byte, H)
		for i := range st.xfer {
			st.xfer[i] = make([][]byte, H)
			for j := range st.xfer[i] {
				if i != j {
					st.xfer[i][j] = make([]byte, P*PS)
				}
			}
		}
	}
	absSrc, absDst := b.ar.base+d.Src.Off, b.ar.base+d.Dst.Off
	// Pack the remote portions (a prefix of hosts below h and a suffix
	// above) into the per-pair exchange slabs, then rendezvous — the
	// (H-1)/H traffic of § IX-A, one P*PS portion per host per round —
	// and unpack the incoming slabs transposed into destination order.
	b.pack("pack:lo", absSrc, 0, h, PS, s)
	b.pack("pack:hi", absSrc+(h+1)*PS, h+1, H, PS, s)
	b.net("exchange", H-1, int64(P*PS), func(*CompiledPlan) func() {
		return func() { st.bar.await(nil) }
	}, false)
	b.unpack("unpack:lo", absDst, 0, h, PS, s)
	b.unpack("unpack:hi", absDst+(h+1)*PS, h+1, H, PS, s)
	return nil
}

// pack reads the per-PE region [readOff, readOff+(dstHi-dstLo)*PS) —
// the blocks destined to hosts [dstLo, dstHi) — and stores them into
// this host's outgoing exchange slabs in (source rank, dest rank) order.
func (b *clusterBuild) pack(name string, readOff, dstLo, dstHi, PS, s int) {
	if dstHi <= dstLo {
		return
	}
	per := (dstHi - dstLo) * PS
	var regs planRegions
	regs.read(readOff, per)
	c, p, st, h, P := b.c, b.p, b.st, b.h, b.cl.p
	b.member(name, regs, false, func(*CompiledPlan) *Schedule {
		sched := &Schedule{Name: "ClusterPack"}
		sched.add(&StepBulk{
			Read: true, ReadOff: readOff, ReadPerPE: per,
			Charges: []Charge{{ChargeHostMem, c.numPEBytes(per)}}, // slab store
			Modulate: func(stag []byte) []byte {
				grp := p.groups[0]
				for j, pe := range grp {
					src := stag[pe*per : (pe+1)*per]
					for dh := dstLo; dh < dstHi; dh++ {
						slab := st.xfer[h][dh]
						for k := 0; k < P; k++ {
							copy(slab[(j*P+k)*s:(j*P+k+1)*s], src[(dh-dstLo)*PS+k*s:(dh-dstLo)*PS+(k+1)*s])
						}
					}
				}
				return nil
			},
		})
		sched.add(&StepSync{})
		return sched
	})
}

// unpack assembles the incoming slabs of hosts [srcLo, srcHi) —
// transposing (source rank, dest rank) into destination block order —
// and bulk-writes them to the per-PE region at writeOff.
func (b *clusterBuild) unpack(name string, writeOff, srcLo, srcHi, PS, s int) {
	if srcHi <= srcLo {
		return
	}
	per := (srcHi - srcLo) * PS
	var regs planRegions
	regs.write(writeOff, per)
	c, p, st, h, P := b.c, b.p, b.st, b.h, b.cl.p
	b.member(name, regs, false, func(*CompiledPlan) *Schedule {
		sched := &Schedule{Name: "ClusterUnpack"}
		sched.add(&StepBulk{
			Write: true, WriteOff: writeOff, WritePerPE: per,
			Charges: []Charge{
				{ChargeLocalMod, c.numPEBytes(per)}, // receive-side transpose
				{ChargeHostMem, c.numPEBytes(per)},  // staging assembly
			},
			Modulate: func([]byte) []byte {
				out := c.bulkOut(len(p.rankOf) * per)
				grp := p.groups[0]
				for k, pe := range grp {
					dst := out[pe*per : (pe+1)*per]
					for sh := srcLo; sh < srcHi; sh++ {
						slab := st.xfer[sh][h]
						for j := 0; j < P; j++ {
							copy(dst[(sh-srcLo)*PS+j*s:(sh-srcLo)*PS+(j+1)*s], slab[(j*P+k)*s:(j*P+k+1)*s])
						}
					}
				}
				return out
			},
		})
		sched.add(&StepSync{})
		return sched
	})
}

// --- Rooted primitives ------------------------------------------------

func (b *clusterBuild) broadcast() error {
	d, H := b.d, len(b.cl.comms)
	var payload []byte
	n := d.Dst.Bytes
	if d.Hosts != nil {
		if len(d.Hosts) != 1 {
			return fmt.Errorf("core: cluster Broadcast takes one global payload, got %d buffers", len(d.Hosts))
		}
		payload = d.Hosts[0]
		if err := impliedBytes("Dst", n, len(payload)); err != nil {
			return err
		}
		n = len(payload)
	} else if b.cl.functional {
		return fmt.Errorf("core: functional cluster Broadcast needs the payload in Hosts")
	}
	if n <= 0 {
		return fmt.Errorf("core: cost-only cluster Broadcast without Hosts needs Dst.Bytes for the payload size")
	}
	if err := checkArenaRegion(b.ar, d.Dst.Off, n); err != nil {
		return err
	}
	st, root := b.st, b.h == d.Root
	st.ensure(b.cl.functional, n, false, H)
	run := func(*CompiledPlan) func() {
		if root {
			return func() {
				copy(st.global, payload)
				st.bar.await(nil)
			}
		}
		return func() { st.bar.await(nil) }
	}
	// Binomial fan-out from the root: ceil(log2 H) overlapped rounds of
	// the full payload.
	b.net("fanout", ceilLog2(H), int64(n), run, root && payload != nil)
	b.bcastGlobal(d.Dst.Off, n)
	return nil
}

func (b *clusterBuild) scatter() error {
	d, H, P := b.d, len(b.cl.comms), b.cl.p
	s := d.Dst.Bytes
	if err := checkArenaRegion(b.ar, d.Dst.Off, s); err != nil {
		return err
	}
	if s <= 0 {
		return fmt.Errorf("core: cluster Scatter needs Dst.Bytes (the per-PE block size)")
	}
	var payload []byte
	if d.Hosts != nil {
		if len(d.Hosts) != 1 {
			return fmt.Errorf("core: cluster Scatter takes one global payload, got %d buffers", len(d.Hosts))
		}
		payload = d.Hosts[0]
		if len(payload) != H*P*s {
			return fmt.Errorf("core: cluster Scatter payload has %d bytes, want %d", len(payload), H*P*s)
		}
	} else if b.cl.functional {
		return fmt.Errorf("core: functional cluster Scatter needs the payload in Hosts")
	}
	st, root := b.st, b.h == d.Root
	st.ensure(b.cl.functional, H*P*s, false, H)
	rounds := 1 // non-root hosts receive their one portion
	if root {
		rounds = H - 1 // the root ships every other host its portion
	}
	run := func(*CompiledPlan) func() {
		if root {
			return func() {
				copy(st.global, payload)
				st.bar.await(nil)
			}
		}
		return func() { st.bar.await(nil) }
	}
	b.net("scatter", rounds, int64(P*s), run, root && payload != nil)
	return b.scatterGlobal(d.Dst.Off, s, b.h*P*s)
}

func (b *clusterBuild) gather() error {
	d, H, P := b.d, len(b.cl.comms), b.cl.p
	s := d.Src.Bytes
	if err := b.local(Collective{Prim: Gather, Dims: d.Dims,
		Src: Span(d.Src.Off, s), Level: d.Level}); err != nil {
		return err
	}
	st, root := b.st, b.h == d.Root
	st.ensure(b.cl.functional, H*P*s, true, H)
	merge := func() {
		for hh, part := range st.parts {
			copy(st.global[hh*P*s:(hh+1)*P*s], part)
		}
	}
	rounds := 1 // non-root hosts send their one portion
	if root {
		rounds = H - 1 // the root receives every other host's portion
	}
	b.net("gather", rounds, int64(P*s), b.publishMerge(merge), false)
	return nil
}

func (b *clusterBuild) reduce() error {
	d, H := b.d, len(b.cl.comms)
	m := d.Src.Bytes
	if err := b.local(Collective{Prim: Reduce, Dims: d.Dims,
		Src: Span(d.Src.Off, m), Elem: d.Elem, Op: d.Op, Level: d.Level}); err != nil {
		return err
	}
	st, root := b.st, b.h == d.Root
	st.ensure(b.cl.functional, m, true, H)
	merge := func() { copy(st.global, RefReduce(d.Elem, d.Op, st.parts)) }
	rounds := 1
	if root {
		rounds = H - 1
	}
	// § IX-A: data are sent after being reduced — one reduced m-byte
	// copy per non-root host crosses the wire.
	b.net("reduce", rounds, int64(m), b.publishMerge(merge), false)
	return nil
}

// --- Flat AllReduce: the naive non-hierarchical baseline --------------

// flatAllReduce emulates a cluster that does NOT reduce locally before
// the wire: every PE's raw buffer is gathered to the root host (P×m per
// host crosses the network instead of m/H), the root CPU reduces all
// H*P buffers, and the result fans back out. It exists as the
// benchmark baseline the hierarchical lowering is gated against
// (pidbench -exp cluster).
func (b *clusterBuild) flatAllReduce() error {
	d, H, P := b.d, len(b.cl.comms), b.cl.p
	m := d.Src.Bytes
	if err := impliedBytes("Dst", d.Dst.Bytes, m); err != nil {
		return err
	}
	if err := checkArenaRegion(b.ar, d.Dst.Off, m); err != nil {
		return err
	}
	if overlap(d.Src.Off, m, d.Dst.Off, m) {
		return fmt.Errorf("core: src and dst regions overlap")
	}
	if err := b.local(Collective{Prim: Gather, Dims: d.Dims,
		Src: Span(d.Src.Off, m), Level: d.Level}); err != nil {
		return err
	}
	st, root := b.st, b.h == d.Root
	st.ensure(b.cl.functional, m, true, H)
	merge := func() {
		bufs := make([][]byte, 0, H*P)
		for _, part := range st.parts {
			for j := 0; j < P; j++ {
				bufs = append(bufs, part[j*m:(j+1)*m])
			}
		}
		copy(st.global, RefReduce(d.Elem, d.Op, bufs))
	}
	rounds := 1
	if root {
		rounds = H - 1
	}
	b.net("flat:gather", rounds, int64(P*m), b.publishMerge(merge), false)
	if root {
		// The root CPU reduces H*P raw buffers serially.
		b.member("flat:reduce", planRegions{}, false, func(*CompiledPlan) *Schedule {
			sched := &Schedule{Name: "FlatReduce"}
			sched.add(&StepHostCompute{Charges: []Charge{
				{ChargeScalarReduce, int64(H) * int64(P) * int64(m)},
			}})
			sched.add(&StepSync{})
			return sched
		})
	}
	b.net("flat:bcast", ceilLog2(H), int64(m), nil, false)
	b.bcastGlobal(d.Dst.Off, m)
	return nil
}

// ---------------------------------------------------------------------
// ClusterPlan / ClusterFuture
// ---------------------------------------------------------------------

// ClusterPlan is one cluster collective compiled into one schedule-IR
// plan per host, ready for repeated Run/Submit. Like a CompiledPlan it
// stays valid for the cluster's lifetime; equal descriptors share the
// cached plan (per-host plan-cache hits).
type ClusterPlan struct {
	cl    *Cluster
	d     ClusterCollective
	st    *clusterState
	plans []*CompiledPlan
}

// HostPlan returns host h's compiled plan (schedule, cost, fusion
// report) — the per-host view of the cluster collective.
func (cp *ClusterPlan) HostPlan(h int) *CompiledPlan { return cp.plans[h] }

// Cost returns the plan's predicted per-run cluster charge: the
// per-category maximum across the hosts' precomputed costs.
func (cp *ClusterPlan) Cost() cost.Breakdown {
	var bd cost.Breakdown
	for _, hp := range cp.plans {
		bd = bd.Max(hp.Cost())
	}
	return bd
}

// FusionReports returns every host's fusion report. A hierarchical
// plan's legs always fuse across member boundaries (at minimum, the
// interior syncs between the local and network legs collapse).
func (cp *ClusterPlan) FusionReports() []FusionReport {
	out := make([]FusionReport, len(cp.plans))
	for h, hp := range cp.plans {
		out[h] = hp.FusionReport()
	}
	return out
}

// admitAll reserves quota on every owning tenant up front, so a
// rejection can never strand part of the cluster at a rendezvous
// barrier. Hosts admitted before a mid-scan rejection keep their
// reservation (the simulator does not refund); the call itself runs
// nothing.
func (cp *ClusterPlan) admitAll() error {
	for h, hp := range cp.plans {
		if err := hp.owner.admit(hp.tr.total.Total()); err != nil {
			return fmt.Errorf("cluster host %d: %w", h, err)
		}
	}
	return nil
}

// Run executes one replay on every host — concurrently on the
// functional backend (the hosts rendezvous inside the network legs),
// serially on the cost-only backend — and returns the per-category
// maximum of the hosts' charges: the cluster critical path of this
// call. Serial cluster runs are serialized with each other and with
// Submit.
func (cp *ClusterPlan) Run() (cost.Breakdown, error) {
	if err := cp.admitAll(); err != nil {
		return cost.Breakdown{}, err
	}
	cp.cl.execMu.Lock()
	defer cp.cl.execMu.Unlock()
	var bd cost.Breakdown
	if !cp.cl.functional {
		for _, hp := range cp.plans {
			_, b := hp.run()
			bd = bd.Max(b)
		}
		return bd, nil
	}
	bds := make([]cost.Breakdown, len(cp.plans))
	var wg sync.WaitGroup
	for h, hp := range cp.plans {
		wg.Add(1)
		go func(h int, hp *CompiledPlan) {
			defer wg.Done()
			_, bds[h] = hp.run()
		}(h, hp)
	}
	wg.Wait()
	for _, b := range bds {
		bd = bd.Max(b)
	}
	return bd, nil
}

// Results returns a copy of the rooted result of the plan's most recent
// completed Run — the gathered global buffer (Gather) or the reduced
// buffer (Reduce) — in global-rank order. Nil on a cost-only cluster
// and for non-rooted primitives. Call only after Run returns or the
// submitted future completes.
func (cp *ClusterPlan) Results() []byte {
	if cp.st.global == nil {
		return nil
	}
	if cp.d.Prim != Gather && cp.d.Prim != Reduce {
		return nil
	}
	return append([]byte(nil), cp.st.global...)
}

// Submit enqueues one asynchronous execution on every host and returns
// a ClusterFuture. The multi-host enqueue is atomic (serialized against
// other cluster Submits and Runs), so every host's queue sees cluster
// plans in the same global order and the rendezvous barriers pair up.
func (cp *ClusterPlan) Submit() *ClusterFuture {
	cf := &ClusterFuture{cp: cp}
	if err := cp.admitAll(); err != nil {
		cf.err = err
		return cf
	}
	cp.cl.execMu.Lock()
	defer cp.cl.execMu.Unlock()
	cf.fs = make([]*Future, len(cp.plans))
	for h, hp := range cp.plans {
		cf.fs[h] = hp.c.submit(hp, false, SubmitOptions{})
	}
	return cf
}

// ClusterFuture is the handle of one submitted cluster execution: one
// Future per host, completing when all hosts have run.
type ClusterFuture struct {
	cp  *ClusterPlan
	fs  []*Future
	err error
}

// Done reports without blocking whether every host has completed.
func (cf *ClusterFuture) Done() bool {
	for _, f := range cf.fs {
		if !f.Done() {
			return false
		}
	}
	return true
}

// Wait blocks until every host completes and returns the per-category
// maximum of the hosts' charges and the first error (an admission
// rejection completes immediately with no host ever enqueued).
func (cf *ClusterFuture) Wait() (cost.Breakdown, error) {
	if cf.err != nil {
		return cost.Breakdown{}, cf.err
	}
	var bd cost.Breakdown
	var err error
	for _, f := range cf.fs {
		b, e := f.Wait()
		bd = bd.Max(b)
		if err == nil {
			err = e
		}
	}
	return bd, err
}

// Err blocks until every host completes and returns the first error.
func (cf *ClusterFuture) Err() error {
	_, err := cf.Wait()
	return err
}

// Results blocks until every host completes and returns the plan's
// rooted result (see ClusterPlan.Results).
func (cf *ClusterFuture) Results() []byte {
	if cf.err != nil {
		return nil
	}
	for _, f := range cf.fs {
		f.Wait()
	}
	return cf.cp.Results()
}
