package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/elem"
)

// This file implements the algorithm axis of a collective: a Collective
// carries an Algorithm alongside its Level, and a process-wide registry
// maps (primitive, algorithm) to alternative schedule-IR producers.
// Every primitive has a built-in reference lowering (schedule.go);
// packages register alternatives — classic MPI shapes like ring, tree
// and Rabenseifner RS+AG live in internal/algo — and the autotuner
// (auto.go) searches over (algorithm x level). Registered lowerings MUST
// be byte-identical to the reference on the functional backend: an
// algorithm only changes where time is charged (which lanes, in what
// order), never what the collective computes.

// Algorithm names one lowering strategy for a collective. The zero value
// is AlgoAuto: the autotuner picks among the reference lowering and the
// registered alternatives. Like Level, the concrete values form a small
// closed set so Algorithm can sit in plan-cache keys by value.
type Algorithm int

const (
	// AlgoAuto lets the autotuner choose. When the Level is explicit
	// (non-Auto), AlgoAuto resolves to AlgoReference so pre-algorithm
	// call sites keep their exact lowering and cost; the (algorithm x
	// level) search runs when the Level is Auto too.
	AlgoAuto Algorithm = iota
	// AlgoReference is the built-in lowering of schedule.go (and the
	// hierarchical ring of cluster.go at the host level).
	AlgoReference
	// AlgoRing is a ring algorithm: n-1 reduce-scatter hops plus n-1
	// allgather hops of one block each (bandwidth-optimal wire volume).
	AlgoRing
	// AlgoTree is a binomial tree: ceil(log2 n) reduce-up rounds plus
	// ceil(log2 n) broadcast-down rounds of the full payload (fewest
	// rounds; pays full-payload hops).
	AlgoTree
	// AlgoRabenseifner is the Rabenseifner composition: ReduceScatter
	// followed by AllGather through a machine-wide staged exchange.
	AlgoRabenseifner
)

// Algorithms returns the concrete algorithm identifiers (excluding
// AlgoAuto), in declaration order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoReference, AlgoRing, AlgoTree, AlgoRabenseifner}
}

func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "Auto"
	case AlgoReference:
		return "ref"
	case AlgoRing:
		return "ring"
	case AlgoTree:
		return "tree"
	case AlgoRabenseifner:
		return "rsag"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm parses an Algorithm name as printed by String
// ("Auto", "ref", "ring", "tree", "rsag").
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range append([]Algorithm{AlgoAuto}, Algorithms()...) {
		if s == a.String() {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want Auto, ref, ring, tree or rsag)", s)
}

// AlgoEnv is the lowering context handed to a registered algorithm: the
// resolved call (primitive, effective level, absolute offsets, sizes,
// element/op) plus accessors into the comm's sharded execution helpers.
// Lowerings build their Schedule from the exported step types
// (schedule.go); closures captured in steps run under the comm's
// execution lock, so the EachGroup* helpers are safe to call from a
// Modulate or HostCompute body.
type AlgoEnv struct {
	c      *Comm
	p      *plan
	prim   Primitive
	eff    Level
	srcOff int
	dstOff int
	m      int // bytes per PE (the host payload size for Broadcast/Scatter)
	s      int // block size m/n (== m where the primitive has no blocks)
	t      elem.Type
	op     elem.Op
	hosts  [][]byte
}

// Primitive returns the collective primitive being lowered.
func (e *AlgoEnv) Primitive() Primitive { return e.prim }

// Level returns the resolved effective optimization level.
func (e *AlgoEnv) Level() Level { return e.eff }

// SrcOff and DstOff are the absolute per-PE MRAM offsets of the call's
// source and destination regions (already arena-translated).
func (e *AlgoEnv) SrcOff() int { return e.srcOff }

// DstOff is documented with SrcOff.
func (e *AlgoEnv) DstOff() int { return e.dstOff }

// BytesPerPE returns the per-PE payload size m (the host payload size
// for Broadcast/Scatter).
func (e *AlgoEnv) BytesPerPE() int { return e.m }

// BlockSize returns the block size s = m / GroupSize for
// block-structured primitives (== BytesPerPE where blocks don't apply).
func (e *AlgoEnv) BlockSize() int { return e.s }

// Elem and Op return the element type and operator of a reducing call.
func (e *AlgoEnv) Elem() elem.Type { return e.t }

// Op is documented with Elem.
func (e *AlgoEnv) Op() elem.Op { return e.op }

// GroupSize returns n, the number of PEs per communication group.
func (e *AlgoEnv) GroupSize() int { return e.p.n }

// NumGroups returns the number of communication groups.
func (e *AlgoEnv) NumGroups() int { return len(e.p.groups) }

// Group returns the PE ids of group g in rank order. The slice is shared
// and must not be modified.
func (e *AlgoEnv) Group(g int) []int { return e.p.groups[g] }

// TotalPEs returns the machine's PE count.
func (e *AlgoEnv) TotalPEs() int { return len(e.p.groupOf) }

// HostPayload returns group g's host-side payload buffer (Broadcast/
// Scatter; nil entries occur on cost-only dry runs).
func (e *AlgoEnv) HostPayload(g int) []byte {
	if g >= len(e.hosts) {
		return nil
	}
	return e.hosts[g]
}

// MachineBytes returns the machine-wide byte count of a perPE-sized
// region (the size of a full staging buffer; the usual Charge volume).
func (e *AlgoEnv) MachineBytes(perPE int) int64 { return e.c.numPEBytes(perPE) }

// BulkOut returns the comm's reusable n-byte modulation output arena for
// StepBulk Modulate closures that fully overwrite their output.
func (e *AlgoEnv) BulkOut(n int) []byte { return e.c.bulkOut(n) }

// EachGroup runs fn(g, pes) for every communication group, sharded
// across the comm's worker pool. fn must only write state owned by its
// group. Call only from schedule closures (the executor holds the lock).
func (e *AlgoEnv) EachGroup(fn func(g int, pes []int)) {
	p := e.p
	e.c.groupsDo(len(p.groups), func(g int) { fn(g, p.groups[g]) })
}

// EachGroupScratch is EachGroup with a bytes-sized scratch slab per
// worker shard (reused across runs).
func (e *AlgoEnv) EachGroupScratch(bytes int, fn func(g int, pes []int, scratch []byte)) {
	p := e.p
	e.c.groupsDoScratch(len(p.groups), bytes, func(g int, scratch []byte) { fn(g, p.groups[g], scratch) })
}

// AlgoSpec registers one algorithm for one primitive.
type AlgoSpec struct {
	// Algo identifies the algorithm (must not be AlgoAuto or
	// AlgoReference — the reference lowering is built in).
	Algo Algorithm
	// Prim is the primitive the lowering implements.
	Prim Primitive
	// Applies reports whether the lowering can implement the resolved
	// call (nil means always applicable). Inapplicable candidates are
	// skipped by the autotuner and rejected with an error when requested
	// explicitly.
	Applies func(e *AlgoEnv) bool
	// Lower produces the schedule. It must be byte-identical to the
	// reference lowering on the functional backend.
	Lower func(e *AlgoEnv) *Schedule
}

// The process-wide algorithm registry. Registration happens in package
// init functions (internal/algo), so the guard is for safety, not
// contention.
var (
	algoMu    sync.RWMutex
	algoReg   = map[Primitive]map[Algorithm]AlgoSpec{}
	algoOrder = map[Primitive][]Algorithm{}
)

// RegisterAlgorithm adds an algorithm lowering to the registry. It
// panics on an invalid spec or a duplicate (primitive, algorithm)
// registration — registration is an init-time programming act, not a
// runtime input.
func RegisterAlgorithm(sp AlgoSpec) {
	if sp.Algo == AlgoAuto || sp.Algo == AlgoReference {
		panic(fmt.Sprintf("core: cannot register %v (reserved)", sp.Algo))
	}
	if sp.Lower == nil {
		panic("core: RegisterAlgorithm with nil Lower")
	}
	algoMu.Lock()
	defer algoMu.Unlock()
	if algoReg[sp.Prim] == nil {
		algoReg[sp.Prim] = map[Algorithm]AlgoSpec{}
	}
	if _, dup := algoReg[sp.Prim][sp.Algo]; dup {
		panic(fmt.Sprintf("core: duplicate algorithm %v for %v", sp.Algo, sp.Prim))
	}
	algoReg[sp.Prim][sp.Algo] = sp
	algoOrder[sp.Prim] = append(algoOrder[sp.Prim], sp.Algo)
	sort.Slice(algoOrder[sp.Prim], func(i, j int) bool {
		return algoOrder[sp.Prim][i] < algoOrder[sp.Prim][j]
	})
}

// RegisteredAlgorithms returns the algorithms available for a primitive:
// AlgoReference first, then the registered alternatives in Algorithm
// order (deterministic regardless of registration order).
func RegisteredAlgorithms(prim Primitive) []Algorithm {
	algoMu.RLock()
	defer algoMu.RUnlock()
	out := []Algorithm{AlgoReference}
	out = append(out, algoOrder[prim]...)
	return out
}

// algoSpecOf looks up a registered algorithm for a primitive.
func algoSpecOf(prim Primitive, alg Algorithm) (AlgoSpec, error) {
	algoMu.RLock()
	defer algoMu.RUnlock()
	sp, ok := algoReg[prim][alg]
	if !ok {
		return AlgoSpec{}, fmt.Errorf("core: no %v algorithm registered for %v (have %v)",
			alg, prim.LongName(), registeredLocked(prim))
	}
	return sp, nil
}

// registeredLocked is RegisteredAlgorithms for callers already holding
// algoMu (error formatting inside algoSpecOf).
func registeredLocked(prim Primitive) []Algorithm {
	out := []Algorithm{AlgoReference}
	return append(out, algoOrder[prim]...)
}

// checkAlgo validates an explicitly requested algorithm against the
// registry and its applicability predicate for the resolved call.
// AlgoReference always passes.
func checkAlgo(alg Algorithm, env *AlgoEnv) error {
	if alg == AlgoReference {
		return nil
	}
	sp, err := algoSpecOf(env.prim, alg)
	if err != nil {
		return err
	}
	if sp.Applies != nil && !sp.Applies(env) {
		return fmt.Errorf("core: algorithm %v does not apply to %v at level %v (use AlgoAuto or another level)",
			alg, env.prim.LongName(), env.eff)
	}
	return nil
}

// algoLower returns the schedule producer for the resolved call: the
// reference closure for AlgoReference, the registered lowering
// otherwise. The spec was validated by checkAlgo at spec time, so the
// lookup here cannot fail.
func algoLower(alg Algorithm, env *AlgoEnv, ref func() *Schedule) *Schedule {
	if alg == AlgoReference {
		return ref()
	}
	sp, err := algoSpecOf(env.prim, alg)
	if err != nil {
		panic(err) // unreachable: validated at spec time
	}
	return sp.Lower(env)
}
