package core

import (
	"fmt"
	"strings"
)

// Framework identifies a communication framework compared in Table I.
type Framework int

const (
	// UPMEMSDK is the vendor SDK (§ III-A): rooted host transfers only.
	UPMEMSDK Framework = iota
	// SimplePIM is the framework of Chen et al. (Table I row 2).
	SimplePIM
	// PIDComm is this library.
	PIDComm
)

// String returns the row label used in Table I.
func (f Framework) String() string {
	switch f {
	case UPMEMSDK:
		return "UPMEM SDK"
	case SimplePIM:
		return "SimplePIM"
	case PIDComm:
		return "PID-Comm"
	default:
		return fmt.Sprintf("Framework(%d)", int(f))
	}
}

// Supports reports whether the framework provides the primitive
// (Table I's "Supported Primitives" columns).
func (f Framework) Supports(p Primitive) bool {
	switch f {
	case UPMEMSDK:
		// Rooted host<->PE copies only: Scatter, Gather, Broadcast.
		return p == Scatter || p == Gather || p == Broadcast
	case SimplePIM:
		// AllReduce, AllGather plus the rooted copies (Table I).
		switch p {
		case AllReduce, AllGather, Scatter, Gather, Broadcast:
			return true
		}
		return false
	case PIDComm:
		return true
	default:
		return false
	}
}

// MultiInstance reports whether the framework supports multi-instance
// communication over hypercube dimensions (Table I column 1).
func (f Framework) MultiInstance() bool { return f == PIDComm }

// Optimized reports whether the framework's implementations are optimized
// for the DIMM hierarchy (Table I column 2).
func (f Framework) Optimized() bool { return f == PIDComm }

// TableI renders the comparison matrix of Table I.
func TableI() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-15s %-13s", "Framework", "Multi-Instance", "Performance")
	for _, p := range Primitives() {
		fmt.Fprintf(&sb, " %-3s", p)
	}
	sb.WriteByte('\n')
	for _, f := range []Framework{UPMEMSDK, SimplePIM, PIDComm} {
		mi, opt := "Not Supported", "Not Optimized"
		if f.MultiInstance() {
			mi = "Supported"
		}
		if f.Optimized() {
			opt = "Optimized"
		}
		fmt.Fprintf(&sb, "%-12s %-15s %-13s", f, mi, opt)
		for _, p := range Primitives() {
			mark := " "
			if f.Supports(p) {
				mark = "v"
			}
			fmt.Fprintf(&sb, " %-3s", mark)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TableII renders the technique-applicability matrix of Table II.
func TableII() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-26s", "Technique")
	for _, p := range Primitives() {
		fmt.Fprintf(&sb, " %-3s", p)
	}
	sb.WriteByte('\n')
	rows := []struct {
		name string
		lvl  Level
	}{
		{"PE-assisted reordering", PR},
		{"In-register modulation", IM},
		{"Cross-domain modulation", CM},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-26s", r.name)
		for _, p := range Primitives() {
			mark := " "
			if TechniqueApplies(p, r.lvl) {
				mark = "v"
			}
			fmt.Fprintf(&sb, " %-3s", mark)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
