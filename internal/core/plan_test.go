package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/elem"
)

// TestCompiledReplayMatchesOneShot pins the plan/execute split's core
// guarantee on both backends: a cached CompiledPlan replay produces cost
// breakdowns byte-identical to the one-shot collective path, call by
// call, and (functionally) moves the same bytes.
func TestCompiledReplayMatchesOneShot(t *testing.T) {
	for _, costOnly := range []bool{false, true} {
		name := "functional"
		if costOnly {
			name = "cost"
		}
		t.Run(name, func(t *testing.T) {
			mk := func() *Comm {
				if costOnly {
					return costSystem(t, geo64, []int{8, 8})
				}
				return testSystem(t, geo64, []int{8, 8})
			}
			c1, c2 := mk(), mk()
			s := 16
			p, err := c1.plan("10")
			if err != nil {
				t.Fatal(err)
			}
			m := p.n * s

			// Compile once on c2; c1 uses the one-shot entry points.
			aa, err := c2.CompileAlltoAll("10", 0, 2*m, m, CM)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := c2.CompileReduceScatter("10", 4*m, 6*m, m, elem.I32, elem.Sum, IM)
			if err != nil {
				t.Fatal(err)
			}
			ga, err := c2.CompileGather("10", 0, s, IM)
			if err != nil {
				t.Fatal(err)
			}
			for iter := 0; iter < 3; iter++ {
				seed := int64(100 + iter)
				if !costOnly {
					fillSrcComm(c1, 0, m, seed)
					fillSrcComm(c2, 0, m, seed)
					fillSrcComm(c1, 4*m, m, seed+1)
					fillSrcComm(c2, 4*m, m, seed+1)
				}
				bd1, err := c1.AlltoAll("10", 0, 2*m, m, CM)
				if err != nil {
					t.Fatal(err)
				}
				bd2, err := aa.Run()
				if err != nil {
					t.Fatal(err)
				}
				if d := diffBreakdowns(bd1, bd2); d != "" {
					t.Fatalf("iter %d AlltoAll: one-shot vs replay: %s", iter, d)
				}
				bd1, err = c1.ReduceScatter("10", 4*m, 6*m, m, elem.I32, elem.Sum, IM)
				if err != nil {
					t.Fatal(err)
				}
				if bd2, err = rs.Run(); err != nil {
					t.Fatal(err)
				}
				if d := diffBreakdowns(bd1, bd2); d != "" {
					t.Fatalf("iter %d ReduceScatter: one-shot vs replay: %s", iter, d)
				}
				out1, bd1, err := c1.Gather("10", 0, s, IM)
				if err != nil {
					t.Fatal(err)
				}
				if bd2, err = ga.Run(); err != nil {
					t.Fatal(err)
				}
				if d := diffBreakdowns(bd1, bd2); d != "" {
					t.Fatalf("iter %d Gather: one-shot vs replay: %s", iter, d)
				}
				out2 := ga.Results()
				if len(out1) != len(out2) {
					t.Fatalf("iter %d Gather: %d vs %d result groups", iter, len(out1), len(out2))
				}
				for g := range out1 {
					if !bytes.Equal(out1[g], out2[g]) {
						t.Fatalf("iter %d Gather: group %d results differ", iter, g)
					}
				}
			}
			// The cumulative meters and bus statistics must also agree
			// bit-for-bit: replay applies the same additions in the same
			// order as the one-shot path.
			if d := diffBreakdowns(c1.Meter().Snapshot(), c2.Meter().Snapshot()); d != "" {
				t.Fatalf("cumulative meters diverge: %s", d)
			}
			s1, s2 := c1.Host().Stats(), c2.Host().Stats()
			if s1.Bursts != s2.Bursts || s1.TotalBytes() != s2.TotalBytes() {
				t.Fatalf("bus stats diverge: %d bursts/%d B vs %d bursts/%d B",
					s1.Bursts, s1.TotalBytes(), s2.Bursts, s2.TotalBytes())
			}
			if !costOnly {
				for pe := 0; pe < 64; pe++ {
					if !bytes.Equal(c1.GetPEBuffer(pe, 2*m, m), c2.GetPEBuffer(pe, 2*m, m)) {
						t.Fatalf("PE %d AlltoAll bytes diverge", pe)
					}
					if !bytes.Equal(c1.GetPEBuffer(pe, 6*m, s), c2.GetPEBuffer(pe, 6*m, s)) {
						t.Fatalf("PE %d ReduceScatter bytes diverge", pe)
					}
				}
			}
		})
	}
}

// Host-input plans bind their buffers at compile time; replays read the
// buffers' current contents.
func TestCompiledScatterRereadsBuffers(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	ref := testSystem(t, geo64, []int{8, 8})
	p, _ := c.plan("10")
	s := 16
	bufs := make([][]byte, len(p.groups))
	for g := range bufs {
		bufs[g] = make([]byte, p.n*s)
	}
	cp, err := c.CompileScatter("10", bufs, 0, s, IM)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 2; iter++ {
		for g := range bufs {
			rng.Read(bufs[g]) // refill in place between runs
		}
		if _, err := cp.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Scatter("10", bufs, 0, s, IM); err != nil {
			t.Fatal(err)
		}
		for pe := 0; pe < 64; pe++ {
			if !bytes.Equal(c.GetPEBuffer(pe, 0, s), ref.GetPEBuffer(pe, 0, s)) {
				t.Fatalf("iter %d: replayed Scatter diverges at PE %d", iter, pe)
			}
		}
	}
}

// Repeated compiles of one signature must hit the cache; ClearPlanCache
// must drop it. Cost() previews exactly what one Run charges.
func TestPlanCacheAndCostPreview(t *testing.T) {
	c := costSystem(t, geo64, []int{8, 8})
	m := 8 * 16
	cp1, err := c.CompileAlltoAll("10", 0, 2*m, m, CM)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := c.CompileAlltoAll("10", 0, 2*m, m, CM)
	if err != nil {
		t.Fatal(err)
	}
	if cp1 != cp2 {
		t.Error("repeated compile did not hit the plan cache")
	}
	// Requesting a level that degrades to the same effective level shares
	// the plan too.
	if cp3, _ := c.CompileAlltoAll("10", 0, 2*m, m, CM); cp3 != cp1 {
		t.Error("effective-level alias missed the cache")
	}
	c.ClearPlanCache()
	cp4, err := c.CompileAlltoAll("10", 0, 2*m, m, CM)
	if err != nil {
		t.Fatal(err)
	}
	if cp4 == cp1 {
		t.Error("ClearPlanCache did not drop the plan")
	}
	bd, err := cp4.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := diffBreakdowns(cp4.Cost(), bd); d != "" {
		t.Errorf("Cost() preview differs from Run(): %s", d)
	}
	if cp4.Primitive() != AlltoAll || cp4.Level() != CM {
		t.Errorf("plan metadata: got %v/%v", cp4.Primitive(), cp4.Level())
	}
}

// In-place AlltoAll (src == dst) works on the staged bulk paths and
// matches the reference model; the streaming levels reject it; partial
// overlap stays an error everywhere.
func TestInPlaceAlltoAll(t *testing.T) {
	s := 24
	for _, lvl := range []Level{Baseline, PR} {
		c := testSystem(t, geo64, []int{8, 8})
		p, _ := c.plan("10")
		m := p.n * s
		in := fillSrc(c, 0, m, 91)
		if _, err := c.AlltoAll("10", 0, 0, m, lvl); err != nil {
			t.Fatalf("%v in-place: %v", lvl, err)
		}
		for _, grp := range p.groups {
			want := RefAlltoAll(groupInputs(in, grp), s)
			for j, pe := range grp {
				if !bytes.Equal(c.GetPEBuffer(pe, 0, m), want[j]) {
					t.Fatalf("%v in-place diverges at PE %d", lvl, pe)
				}
			}
		}
	}
	c := testSystem(t, geo64, []int{8, 8})
	m := 8 * s
	for _, lvl := range []Level{IM, CM} {
		if _, err := c.AlltoAll("10", 0, 0, m, lvl); err == nil {
			t.Errorf("%v accepted an in-place AlltoAll", lvl)
		}
	}
	if _, err := c.AlltoAll("10", 0, m/2, m, Baseline); err == nil {
		t.Error("partially overlapping regions accepted")
	}
}

// Regression for the AutoLevel abort-on-inapplicable-level bug: on an
// in-place AlltoAll signature the streaming candidates (IM/CM) are
// inapplicable and their dry runs fail. Auto must skip them and pick the
// cheapest applicable level instead of aborting the whole decision.
func TestAutoLevelSkipsInapplicableLevels(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	p, _ := c.plan("10")
	m := p.n * 16
	in := fillSrc(c, 0, m, 47)
	if _, err := c.AlltoAll("10", 0, 0, m, Auto); err != nil {
		t.Fatalf("Auto in-place AlltoAll aborted: %v", err)
	}
	picked, ok := c.autoCache[autoKey{prim: AlltoAll, dims: "10", bytes: m, inPlace: true}]
	if !ok {
		t.Fatal("no cached in-place Auto decision")
	}
	if picked.lvl >= IM {
		t.Fatalf("Auto picked inapplicable level %v for an in-place call", picked.lvl)
	}
	for _, grp := range p.groups {
		want := RefAlltoAll(groupInputs(in, grp), 16)
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, 0, m), want[j]) {
				t.Fatalf("Auto in-place result diverges at PE %d", pe)
			}
		}
	}
	// The same signature out of place must still be free to pick a
	// streaming level (separate cache entries).
	lvl, err := c.AutoLevel(AlltoAll, "10", m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != EffectiveLevel(AlltoAll, lvl) {
		t.Fatalf("AutoLevel returned non-effective level %v", lvl)
	}
}

// autoPick mechanism: individual failures are skipped, ties go to the
// lowest level, and only all-fail aborts.
func TestAutoPickSkipAndTieRules(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	flat := cost.NewMeter()
	flat.Add(cost.PEMem, 1)
	equal := flat.Snapshot()

	fake := func(bd cost.Breakdown) *CompiledPlan {
		return &CompiledPlan{tr: &chargeTrace{total: bd}}
	}
	// All candidates equally cheap: the lowest level wins the tie.
	dec, err := c.autoPick(autoKey{prim: AlltoAll, dims: "t1", bytes: 1}, func(_ *Comm, _ Algorithm, l Level) (*CompiledPlan, error) {
		return fake(equal), nil
	})
	if err != nil || dec.lvl != Baseline {
		t.Fatalf("tie: got %v, %v; want Baseline", dec.lvl, err)
	}
	// A failing candidate is skipped, even if it would have been first.
	dec, err = c.autoPick(autoKey{prim: AlltoAll, dims: "t2", bytes: 1}, func(_ *Comm, _ Algorithm, l Level) (*CompiledPlan, error) {
		if l == Baseline || l == PR {
			return nil, fmt.Errorf("inapplicable at %v", l)
		}
		return fake(equal), nil
	})
	if err != nil || dec.lvl != IM {
		t.Fatalf("skip: got %v, %v; want IM", dec.lvl, err)
	}
	// Every candidate failing aborts with a joined error.
	if _, err = c.autoPick(autoKey{prim: AlltoAll, dims: "t3", bytes: 1}, func(_ *Comm, _ Algorithm, l Level) (*CompiledPlan, error) {
		return nil, fmt.Errorf("inapplicable at %v", l)
	}); err == nil {
		t.Fatal("all-fail did not abort")
	}
}

// TestConcurrentCollectives is the -race stress test of the tentpole:
// independent collectives issued from multiple goroutines against one
// functional Comm, on disjoint MRAM slabs, must be safe and correct.
// One extra goroutine replays a shared compiled Gather plan throughout.
func TestConcurrentCollectives(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	p, _ := c.plan("10")
	n := p.n // 8
	const slab = 2048
	const iters = 3

	// Slab 0 is reserved for the shared Gather plan's source data.
	sharedIn := fillSrc(c, 0, 32, 5)
	gatherPlan, err := c.CompileGather("10", 0, 32, IM)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 1; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := g * slab
			s := 32
			m := n * s // 256
			for iter := 0; iter < iters; iter++ {
				in := fillSrc(c, base, m, int64(g*100+iter))
				if _, err := c.AlltoAll("10", base, base+m, m, Auto); err != nil {
					errs <- err
					return
				}
				for _, grp := range p.groups {
					want := RefAlltoAll(groupInputs(in, grp), s)
					for j, pe := range grp {
						if !bytes.Equal(c.GetPEBuffer(pe, base+m, m), want[j]) {
							errs <- fmt.Errorf("goroutine %d iter %d: AlltoAll diverges at PE %d", g, iter, pe)
							return
						}
					}
				}
				in = fillSrc(c, base+2*m, m, int64(g*200+iter))
				if _, err := c.ReduceScatter("10", base+2*m, base+3*m, m, elem.I32, elem.Sum, IM); err != nil {
					errs <- err
					return
				}
				for _, grp := range p.groups {
					want := RefReduceScatter(elem.I32, elem.Sum, groupInputs(in, grp), s)
					for j, pe := range grp {
						if !bytes.Equal(c.GetPEBuffer(pe, base+3*m, s), want[j]) {
							errs <- fmt.Errorf("goroutine %d iter %d: ReduceScatter diverges at PE %d", g, iter, pe)
							return
						}
					}
				}
				// Exercise the shared Auto cache from every goroutine.
				if _, err := c.AutoLevel(AllReduce, "10", m, elem.I32, elem.Sum); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4*iters; i++ {
			// Stats and the meter are documented as pollable while
			// collectives run on other goroutines.
			if st := c.Host().Stats(); st.TotalBytes() < 0 {
				errs <- fmt.Errorf("negative cumulative traffic")
				return
			}
			_ = c.Meter().Total()
			if _, err := gatherPlan.Run(); err != nil {
				errs <- err
				return
			}
			out := gatherPlan.Results()
			for _, grp := range p.groups {
				heads := make([][]byte, len(grp))
				for i, pe := range grp {
					heads[i] = sharedIn[pe]
				}
				if !bytes.Equal(out[int(p.groupOf[grp[0]])], RefGather(heads)) {
					errs <- fmt.Errorf("shared Gather replay diverges")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// The rotate-blocks instruction accounting rounds up and is shared by
// both backends (regression for the m/4 truncation mismatch).
func TestRotateBlocksWorkRounding(t *testing.T) {
	for _, tc := range []struct {
		m     int
		instr int64
	}{{0, 0}, {1, 1}, {4, 1}, {6, 2}, {7, 2}, {8, 2}, {24, 6}, {25, 7}} {
		instr, mram := rotateBlocksWork(tc.m)
		if instr != tc.instr || mram != int64(2*tc.m) {
			t.Errorf("rotateBlocksWork(%d) = (%d, %d), want (%d, %d)", tc.m, instr, mram, tc.instr, 2*tc.m)
		}
	}
}
