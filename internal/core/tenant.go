package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cost"
	"repro/internal/dram"
)

// This file implements tenant sessions: arena-scoped views of one Comm
// that let many independent workloads ("models being served") share one
// simulated machine. A Tenant owns a disjoint window of every PE's MRAM
// — all of its Collective regions are validated against that window and
// translated to absolute offsets, so tenants cannot name, let alone
// alias, each other's footprints — plus its own cost.Meter, a weight in
// the machine's weighted-fair submission scheduler (async.go), and an
// optional simulated-time quota.
//
// Accounting invariant: every charge a tenant's plan makes on the
// machine meter is mirrored — same operands, same order — into the
// tenant's meter (see runScheduleLocked). A tenant's meter is therefore
// bit-identical to the meter of running that tenant's workload alone on
// its own machine, and summing all tenant meters reproduces exactly the
// attributed machine total.

// ErrQuotaExceeded is wrapped by admission errors of a Tenant whose
// simulated-time quota cannot cover the next plan.
var ErrQuotaExceeded = errors.New("core: tenant quota exceeded")

// Tenant is one arena-scoped session on a shared Comm. Create tenants
// with Comm.NewTenant; a Tenant is safe for concurrent use.
type Tenant struct {
	c      *Comm
	name   string
	ar     arena
	meter  *cost.Meter
	weight float64
	quota  cost.Seconds
	sq     *subQueue

	// mu guards the admission ledger.
	mu       sync.Mutex
	admitted cost.Seconds
}

// NewTenant registers a tenant session over the per-PE MRAM window
// [base, base+bytes), which must be BankBurstBytes-aligned and disjoint
// from every existing tenant's arena. weight is the tenant's share in
// the weighted-fair submission scheduler (0 means 1); quota, if
// positive, bounds the total simulated time the tenant may admit
// (enforced against each plan's predicted cost at Run/Submit).
func (c *Comm) NewTenant(name string, base, bytes int, weight float64, quota cost.Seconds) (*Tenant, error) {
	if bytes <= 0 || base < 0 || base+bytes > c.hc.sys.MramSize() {
		return nil, fmt.Errorf("core: tenant %q arena [%d,%d) exceeds MRAM size %d",
			name, base, base+bytes, c.hc.sys.MramSize())
	}
	if base%dram.BankBurstBytes != 0 || bytes%dram.BankBurstBytes != 0 {
		return nil, fmt.Errorf("core: tenant %q arena [%d,%d) not %d-byte aligned",
			name, base, base+bytes, dram.BankBurstBytes)
	}
	if weight == 0 {
		weight = 1
	}
	if weight < 0 {
		return nil, fmt.Errorf("core: tenant %q weight %v must be positive", name, weight)
	}
	if quota < 0 {
		return nil, fmt.Errorf("core: tenant %q quota %v must be non-negative", name, quota)
	}
	t := &Tenant{
		c:      c,
		name:   name,
		ar:     arena{base, bytes},
		meter:  cost.NewMeter(),
		weight: weight,
		quota:  quota,
		sq:     &subQueue{weight: weight},
	}
	c.tenantMu.Lock()
	for _, o := range c.tenants {
		if overlap(base, bytes, o.ar.base, o.ar.size) {
			c.tenantMu.Unlock()
			return nil, fmt.Errorf("core: tenant %q arena [%d,%d) overlaps tenant %q arena [%d,%d)",
				name, base, base+bytes, o.name, o.ar.base, o.ar.base+o.ar.size)
		}
	}
	c.tenants = append(c.tenants, t)
	c.tenantMu.Unlock()
	c.asyncMu.Lock()
	c.queues = append(c.queues, t.sq)
	c.asyncMu.Unlock()
	return t, nil
}

// Tenants returns the registered tenants in creation order.
func (c *Comm) Tenants() []*Tenant {
	c.tenantMu.Lock()
	defer c.tenantMu.Unlock()
	out := make([]*Tenant, len(c.tenants))
	copy(out, c.tenants)
	return out
}

// Compile compiles d against the tenant's arena: every region must lie
// within [0, ArenaBytes). The returned plan is owned by the tenant —
// each Run/Submit is admitted against the quota and attributed to the
// tenant's meter.
func (t *Tenant) Compile(d Collective) (*CompiledPlan, error) {
	return t.c.compileIn(t.ar, t, d)
}

// CompileSequence compiles ds as one fused multi-collective plan
// against the tenant's arena (see Comm.CompileSequence). The plan is
// owned by the tenant: runs are admitted against its quota as a unit
// and attributed to its meter.
func (t *Tenant) CompileSequence(ds ...Collective) (*CompiledPlan, error) {
	return t.c.compileSequenceIn(t.ar, t, ds)
}

// Run compiles (or fetches) the plan for d and executes one replay.
func (t *Tenant) Run(d Collective) (cost.Breakdown, error) {
	cp, err := t.Compile(d)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cp.Run()
}

// Submit compiles (or fetches) the plan for d and enqueues one
// asynchronous execution on the tenant's weighted-fair bucket.
func (t *Tenant) Submit(d Collective) (*Future, error) {
	cp, err := t.Compile(d)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// AutoLevelOf returns the concrete level Auto resolves to for d.
func (t *Tenant) AutoLevelOf(d Collective) (Level, error) { return t.c.AutoLevelOf(d) }

// SetPEBuffer writes raw bytes into the tenant's arena of a PE's MRAM
// (no cost), off arena-relative. Like Comm.SetPEBuffer it is a setup
// helper; call Flush first if submissions may be in flight.
func (t *Tenant) SetPEBuffer(pe, off int, data []byte) {
	if off < 0 || off+len(data) > t.ar.size {
		panic(fmt.Sprintf("core: tenant %q buffer [%d,%d) outside arena size %d",
			t.name, off, off+len(data), t.ar.size))
	}
	t.c.SetPEBuffer(pe, t.ar.base+off, data)
}

// GetPEBuffer reads raw bytes from the tenant's arena of a PE's MRAM
// (no cost), off arena-relative.
func (t *Tenant) GetPEBuffer(pe, off, n int) []byte {
	if off < 0 || n < 0 || off+n > t.ar.size {
		panic(fmt.Sprintf("core: tenant %q buffer [%d,%d) outside arena size %d",
			t.name, off, off+n, t.ar.size))
	}
	return t.c.GetPEBuffer(pe, t.ar.base+off, n)
}

// Meter returns the tenant's cost meter: exactly the charges of this
// tenant's plans, bit-identical to running the same workload alone.
func (t *Tenant) Meter() *cost.Meter { return t.meter }

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Weight returns the tenant's weighted-fair scheduler share.
func (t *Tenant) Weight() float64 { return t.weight }

// Quota returns the tenant's simulated-time budget (0 = unlimited).
func (t *Tenant) Quota() cost.Seconds { return t.quota }

// Admitted returns the predicted simulated time admitted so far — the
// quantity the quota is enforced against.
func (t *Tenant) Admitted() cost.Seconds {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.admitted
}

// Arena returns the tenant's per-PE MRAM window as (base, bytes).
func (t *Tenant) Arena() (base, bytes int) { return t.ar.base, t.ar.size }

// Flush blocks until every plan submitted on the shared machine has
// completed (the machine-wide barrier; see Comm.Flush).
func (t *Tenant) Flush() { t.c.Flush() }

// Elapsed returns the shared machine's overlap-aware elapsed time.
func (t *Tenant) Elapsed() cost.Seconds { return t.c.Elapsed() }

// admit charges the tenant's admission ledger with a plan's predicted
// cost, rejecting with ErrQuotaExceeded if the quota cannot cover it.
// A nil tenant (plain Comm plans) admits everything.
func (t *Tenant) admit(c cost.Seconds) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quota > 0 && t.admitted+c > t.quota {
		return fmt.Errorf("%w: tenant %q admitted %.6gs + requested %.6gs exceeds quota %.6gs",
			ErrQuotaExceeded, t.name, float64(t.admitted), float64(c), float64(t.quota))
	}
	t.admitted += c
	return nil
}

// ownerName labels a plan owner in diagnostics.
func ownerName(t *Tenant) string {
	if t == nil {
		return "the machine"
	}
	return fmt.Sprintf("tenant %q", t.name)
}

// adopt binds the plan to its owner on first compile and verifies the
// binding on cache hits. Tenants can never collide on a plan key (their
// arenas are disjoint, and keys carry absolute offsets), so a conflict
// means a plain-Comm caller and a tenant named the same MRAM — which
// the tenancy contract forbids.
func (cp *CompiledPlan) adopt(t *Tenant) error {
	c := cp.c
	c.compMu.Lock()
	defer c.compMu.Unlock()
	if !cp.owned {
		cp.owned, cp.owner = true, t
		return nil
	}
	if cp.owner != t {
		return fmt.Errorf("core: plan %s is owned by %s, not %s",
			cp.sched.Name, ownerName(cp.owner), ownerName(t))
	}
	return nil
}
