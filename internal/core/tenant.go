package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cost"
	"repro/internal/dram"
)

// This file implements tenant sessions: arena-scoped views of one Comm
// that let many independent workloads ("models being served") share one
// simulated machine. A Tenant owns a disjoint window of every PE's MRAM
// — all of its Collective regions are validated against that window and
// translated to absolute offsets, so tenants cannot name, let alone
// alias, each other's footprints — plus its own cost.Meter, a weight in
// the machine's weighted-fair submission scheduler (async.go), and an
// optional simulated-time quota.
//
// Accounting invariant: every charge a tenant's plan makes on the
// machine meter is mirrored — same operands, same order — into the
// tenant's meter (see runScheduleLocked). A tenant's meter is therefore
// bit-identical to the meter of running that tenant's workload alone on
// its own machine, and summing all tenant meters reproduces exactly the
// attributed machine total.

// ErrQuotaExceeded is wrapped by admission errors of a Tenant whose
// simulated-time quota cannot cover the next plan.
var ErrQuotaExceeded = errors.New("core: tenant quota exceeded")

// ErrOverloaded is wrapped by admission errors of a Tenant that already
// has MaxPending plans in flight — the overload signal of the serving
// path. Under ShedReject the incoming future carries it; under
// ShedOldest the dropped (oldest queued) future does.
var ErrOverloaded = errors.New("core: tenant overloaded")

// ErrTenantClosed is wrapped by admission errors of a closed Tenant and
// returned by a double Close.
var ErrTenantClosed = errors.New("core: tenant closed")

// ShedPolicy selects which plan an overloaded tenant sheds when a
// submission arrives beyond MaxPending in flight.
type ShedPolicy int

const (
	// ShedReject rejects the incoming submission (the default): its
	// future completes immediately with ErrOverloaded and a zero Window.
	ShedReject ShedPolicy = iota
	// ShedOldest drops the tenant's oldest still-queued plan in favor of
	// the incoming one: the victim's future completes with ErrOverloaded
	// (zero Window), the newcomer is enqueued. If nothing is queued —
	// everything in flight is already executing — the incoming
	// submission is rejected as under ShedReject.
	ShedOldest
)

// String names the policy for tables and diagnostics.
func (p ShedPolicy) String() string {
	switch p {
	case ShedReject:
		return "reject-newest"
	case ShedOldest:
		return "drop-oldest"
	}
	return fmt.Sprintf("ShedPolicy(%d)", int(p))
}

// Tenant is one arena-scoped session on a shared Comm. Create tenants
// with Comm.NewTenant; a Tenant is safe for concurrent use.
type Tenant struct {
	c      *Comm
	name   string
	ar     arena
	meter  *cost.Meter
	weight float64
	quota  cost.Seconds
	sq     *subQueue

	// maxPending and shed are the overload-admission knobs (immutable
	// after creation): beyond maxPending in-flight plans, submissions
	// shed per the policy. 0 = unlimited.
	maxPending int
	shed       ShedPolicy

	// inflight counts the tenant's submitted-but-uncompleted plans
	// (queued or executing). Guarded by the Comm's asyncMu.
	inflight int

	// mu guards the admission ledger and the closed flag.
	mu       sync.Mutex
	admitted cost.Seconds
	closed   bool
}

// TenantConfig parameterizes NewTenantCfg, the full-featured tenant
// registration; the positional NewTenant covers the common subset.
type TenantConfig struct {
	// Name labels the tenant in diagnostics and ownership errors.
	Name string
	// Base and Bytes give the tenant's per-PE MRAM arena [Base,
	// Base+Bytes); both must be dram.BankBurstBytes-aligned and the
	// window disjoint from every live tenant's arena.
	Base, Bytes int
	// Weight is the tenant's weighted-fair scheduler share (0 = 1).
	Weight float64
	// Quota, if positive, bounds the total simulated time the tenant
	// may admit.
	Quota cost.Seconds
	// MaxPending, if positive, bounds the tenant's in-flight
	// submissions; beyond it, submissions shed per Shed.
	MaxPending int
	// Shed is the overload policy applied beyond MaxPending.
	Shed ShedPolicy
}

// NewTenant registers a tenant session over the per-PE MRAM window
// [base, base+bytes), which must be BankBurstBytes-aligned and disjoint
// from every existing tenant's arena. weight is the tenant's share in
// the weighted-fair submission scheduler (0 means 1); quota, if
// positive, bounds the total simulated time the tenant may admit
// (enforced against each plan's predicted cost at Run/Submit).
func (c *Comm) NewTenant(name string, base, bytes int, weight float64, quota cost.Seconds) (*Tenant, error) {
	return c.NewTenantCfg(TenantConfig{Name: name, Base: base, Bytes: bytes, Weight: weight, Quota: quota})
}

// NewTenantCfg registers a tenant session with the full serving
// configuration (overload bounds, shed policy) — see TenantConfig and
// NewTenant.
func (c *Comm) NewTenantCfg(cfg TenantConfig) (*Tenant, error) {
	name, base, bytes, weight, quota := cfg.Name, cfg.Base, cfg.Bytes, cfg.Weight, cfg.Quota
	if bytes <= 0 || base < 0 || base+bytes > c.hc.sys.MramSize() {
		return nil, fmt.Errorf("core: tenant %q arena [%d,%d) exceeds MRAM size %d",
			name, base, base+bytes, c.hc.sys.MramSize())
	}
	if base%dram.BankBurstBytes != 0 || bytes%dram.BankBurstBytes != 0 {
		return nil, fmt.Errorf("core: tenant %q arena [%d,%d) not %d-byte aligned",
			name, base, base+bytes, dram.BankBurstBytes)
	}
	if weight == 0 {
		weight = 1
	}
	if weight < 0 {
		return nil, fmt.Errorf("core: tenant %q weight %v must be positive", name, weight)
	}
	if quota < 0 {
		return nil, fmt.Errorf("core: tenant %q quota %v must be non-negative", name, quota)
	}
	if cfg.MaxPending < 0 {
		return nil, fmt.Errorf("core: tenant %q MaxPending %d must be non-negative", name, cfg.MaxPending)
	}
	t := &Tenant{
		c:          c,
		name:       name,
		ar:         arena{base, bytes},
		meter:      cost.NewMeter(),
		weight:     weight,
		quota:      quota,
		maxPending: cfg.MaxPending,
		shed:       cfg.Shed,
		sq:         &subQueue{weight: weight},
	}
	c.tenantMu.Lock()
	for _, o := range c.tenants {
		if overlap(base, bytes, o.ar.base, o.ar.size) {
			c.tenantMu.Unlock()
			return nil, fmt.Errorf("core: tenant %q arena [%d,%d) overlaps tenant %q arena [%d,%d)",
				name, base, base+bytes, o.name, o.ar.base, o.ar.base+o.ar.size)
		}
	}
	c.tenants = append(c.tenants, t)
	c.tenantMu.Unlock()
	c.asyncMu.Lock()
	c.queues = append(c.queues, t.sq)
	c.asyncMu.Unlock()
	return t, nil
}

// Tenants returns the live (unclosed) tenants in creation order.
func (c *Comm) Tenants() []*Tenant {
	c.tenantMu.Lock()
	defer c.tenantMu.Unlock()
	out := make([]*Tenant, len(c.tenants))
	copy(out, c.tenants)
	return out
}

// RetiredTenants returns the closed tenants in closing order. Their
// meters are retained so machine-total accounting (summing live +
// retired tenant meters) stays bit-identical across churn.
func (c *Comm) RetiredTenants() []*Tenant {
	c.tenantMu.Lock()
	defer c.tenantMu.Unlock()
	out := make([]*Tenant, len(c.retired))
	copy(out, c.retired)
	return out
}

// Close retires the tenant: it drains the machine, rejects every later
// admission with ErrTenantClosed, removes the tenant's scheduler bucket
// and evicts its owned plans from the plan caches — plan keys carry
// absolute offsets, so a successor tenant reusing the arena would
// otherwise collide with the retiree's cached plans. The tenant's meter
// survives on the Comm's retired list (RetiredTenants); the arena
// window itself is the caller's to reclaim (pidcomm.Machine.CloseTenant
// returns it to the dram free-list allocator). Returns ErrTenantClosed
// on a double close.
func (t *Tenant) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("%w: tenant %q closed twice", ErrTenantClosed, t.name)
	}
	t.closed = true
	t.mu.Unlock()
	c := t.c
	c.Flush()
	c.asyncMu.Lock()
	for i, q := range c.queues {
		if q == t.sq {
			c.queues = append(c.queues[:i], c.queues[i+1:]...)
			break
		}
	}
	// Sweep stragglers: a Submit that passed admission before the closed
	// flag was set may have enqueued after the Flush drained. Nothing
	// will ever pick them from the detached bucket, so complete them
	// here with ErrTenantClosed.
	for _, f := range t.sq.q {
		c.completeDroppedLocked(f, fmt.Errorf("%w: tenant %q", ErrTenantClosed, t.name))
	}
	t.sq.q = nil
	c.asyncMu.Unlock()
	c.tenantMu.Lock()
	for i, o := range c.tenants {
		if o == t {
			c.tenants = append(c.tenants[:i], c.tenants[i+1:]...)
			break
		}
	}
	c.retired = append(c.retired, t)
	c.tenantMu.Unlock()
	c.evictOwnedPlans(t)
	return nil
}

// Closed reports whether the tenant has been closed.
func (t *Tenant) Closed() bool { return t.isClosed() }

func (t *Tenant) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// evictOwnedPlans drops every cached plan owned by t. Charge traces are
// keyed by call shape only and stay — a successor tenant at the same
// base offsets re-compiles the plan but reuses the trace.
func (c *Comm) evictOwnedPlans(t *Tenant) {
	c.compMu.Lock()
	defer c.compMu.Unlock()
	for k, cp := range c.compiled {
		if cp.owned && cp.owner == t {
			delete(c.compiled, k)
		}
	}
	for k, cp := range c.seqPlans {
		if cp.owned && cp.owner == t {
			delete(c.seqPlans, k)
		}
	}
}

// Compile compiles d against the tenant's arena: every region must lie
// within [0, ArenaBytes). The returned plan is owned by the tenant —
// each Run/Submit is admitted against the quota and attributed to the
// tenant's meter.
func (t *Tenant) Compile(d Collective) (*CompiledPlan, error) {
	return t.c.compileIn(t.ar, t, d)
}

// CompileSequence compiles ds as one fused multi-collective plan
// against the tenant's arena (see Comm.CompileSequence). The plan is
// owned by the tenant: runs are admitted against its quota as a unit
// and attributed to its meter.
func (t *Tenant) CompileSequence(ds ...Collective) (*CompiledPlan, error) {
	return t.c.compileSequenceIn(t.ar, t, ds)
}

// Run compiles (or fetches) the plan for d and executes one replay.
func (t *Tenant) Run(d Collective) (cost.Breakdown, error) {
	cp, err := t.Compile(d)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cp.Run()
}

// Submit compiles (or fetches) the plan for d and enqueues one
// asynchronous execution on the tenant's weighted-fair bucket.
func (t *Tenant) Submit(d Collective) (*Future, error) {
	cp, err := t.Compile(d)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// AutoLevelOf returns the concrete level Auto resolves to for d.
func (t *Tenant) AutoLevelOf(d Collective) (Level, error) { return t.c.AutoLevelOf(d) }

// AutoResolveOf returns the (algorithm, level) pair d resolves to —
// the autotuner's pick where either axis is Auto.
func (t *Tenant) AutoResolveOf(d Collective) (Algorithm, Level, error) { return t.c.AutoResolveOf(d) }

// SetPEBuffer writes raw bytes into the tenant's arena of a PE's MRAM
// (no cost), off arena-relative. Like Comm.SetPEBuffer it is a setup
// helper; call Flush first if submissions may be in flight.
func (t *Tenant) SetPEBuffer(pe, off int, data []byte) {
	if off < 0 || off+len(data) > t.ar.size {
		panic(fmt.Sprintf("core: tenant %q buffer [%d,%d) outside arena size %d",
			t.name, off, off+len(data), t.ar.size))
	}
	t.c.SetPEBuffer(pe, t.ar.base+off, data)
}

// GetPEBuffer reads raw bytes from the tenant's arena of a PE's MRAM
// (no cost), off arena-relative.
func (t *Tenant) GetPEBuffer(pe, off, n int) []byte {
	if off < 0 || n < 0 || off+n > t.ar.size {
		panic(fmt.Sprintf("core: tenant %q buffer [%d,%d) outside arena size %d",
			t.name, off, off+n, t.ar.size))
	}
	return t.c.GetPEBuffer(pe, t.ar.base+off, n)
}

// Meter returns the tenant's cost meter: exactly the charges of this
// tenant's plans, bit-identical to running the same workload alone.
func (t *Tenant) Meter() *cost.Meter { return t.meter }

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Weight returns the tenant's weighted-fair scheduler share.
func (t *Tenant) Weight() float64 { return t.weight }

// Quota returns the tenant's simulated-time budget (0 = unlimited).
func (t *Tenant) Quota() cost.Seconds { return t.quota }

// MaxPending returns the tenant's in-flight submission bound
// (0 = unlimited).
func (t *Tenant) MaxPending() int { return t.maxPending }

// Shed returns the tenant's overload shed policy.
func (t *Tenant) Shed() ShedPolicy { return t.shed }

// Pending returns the tenant's submitted-but-uncompleted plan count.
func (t *Tenant) Pending() int {
	t.c.asyncMu.Lock()
	defer t.c.asyncMu.Unlock()
	return t.inflight
}

// Admitted returns the predicted simulated time admitted so far — the
// quantity the quota is enforced against.
func (t *Tenant) Admitted() cost.Seconds {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.admitted
}

// Arena returns the tenant's per-PE MRAM window as (base, bytes).
func (t *Tenant) Arena() (base, bytes int) { return t.ar.base, t.ar.size }

// Flush blocks until every plan submitted on the shared machine has
// completed (the machine-wide barrier; see Comm.Flush).
func (t *Tenant) Flush() { t.c.Flush() }

// Elapsed returns the shared machine's overlap-aware elapsed time.
func (t *Tenant) Elapsed() cost.Seconds { return t.c.Elapsed() }

// admit charges the tenant's admission ledger with a plan's predicted
// cost, rejecting with ErrQuotaExceeded if the quota cannot cover it.
// A nil tenant (plain Comm plans) admits everything.
func (t *Tenant) admit(c cost.Seconds) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("%w: tenant %q", ErrTenantClosed, t.name)
	}
	if t.quota > 0 && t.admitted+c > t.quota {
		return fmt.Errorf("%w: tenant %q admitted %.6gs + requested %.6gs exceeds quota %.6gs",
			ErrQuotaExceeded, t.name, float64(t.admitted), float64(c), float64(t.quota))
	}
	t.admitted += c
	return nil
}

// refund reverses an admit for a plan that was admitted but never ran
// (shed under overload, swept by a racing Close).
func (t *Tenant) refund(c cost.Seconds) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.admitted -= c
	t.mu.Unlock()
}

// ownerName labels a plan owner in diagnostics.
func ownerName(t *Tenant) string {
	if t == nil {
		return "the machine"
	}
	return fmt.Sprintf("tenant %q", t.name)
}

// adopt binds the plan to its owner on first compile and verifies the
// binding on cache hits. Tenants can never collide on a plan key (their
// arenas are disjoint, and keys carry absolute offsets), so a conflict
// means a plain-Comm caller and a tenant named the same MRAM — which
// the tenancy contract forbids.
func (cp *CompiledPlan) adopt(t *Tenant) error {
	c := cp.c
	c.compMu.Lock()
	defer c.compMu.Unlock()
	if !cp.owned {
		cp.owned, cp.owner = true, t
		return nil
	}
	if cp.owner != t {
		return fmt.Errorf("core: plan %s is owned by %s, not %s",
			cp.sched.Name, ownerName(cp.owner), ownerName(t))
	}
	return nil
}
