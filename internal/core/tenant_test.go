package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/dram"
)

func tenantTestComm(t *testing.T, mram int) *Comm {
	t.Helper()
	sys, err := dram.NewPhantomSystem(dram.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: mram,
	})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHypercube(sys, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	return NewCostComm(hc, cost.DefaultParams())
}

// fakeFuture builds a queue entry whose plan predicts the given cost —
// all pickLocked consults.
func fakeFuture(totalSeconds float64) *Future {
	m := cost.NewMeter()
	m.Add(cost.PEMem, cost.Seconds(totalSeconds))
	return &Future{cp: &CompiledPlan{tr: &chargeTrace{total: m.Snapshot()}}}
}

// The weighted-fair pick order: two backlogged buckets with weights 2:1
// and unit-cost plans must be served in a 2:1 interleave, ties to the
// earlier bucket.
func TestWeightedFairPickOrder(t *testing.T) {
	a := &subQueue{weight: 2}
	b := &subQueue{weight: 1}
	c := &Comm{queues: []*subQueue{a, b}}
	tag := map[*Future]string{}
	for i := 0; i < 6; i++ {
		f := fakeFuture(1)
		tag[f] = "A"
		a.q = append(a.q, f)
	}
	for i := 0; i < 3; i++ {
		f := fakeFuture(1)
		tag[f] = "B"
		b.q = append(b.q, f)
	}
	var got []string
	for {
		c.asyncMu.Lock()
		f := c.pickLocked()
		c.asyncMu.Unlock()
		if f == nil {
			break
		}
		got = append(got, tag[f])
	}
	want := "A B A A B A A B A"
	if s := strings.Join(got, " "); s != want {
		t.Errorf("pick order %q, want %q", s, want)
	}
}

// Cross-bucket hazards execute in submission order: the default bucket
// (plain-Comm plans, not arena-bounded) wins vtime ties by creation
// order, but its head must not run before an earlier-submitted
// conflicting plan queued in a tenant bucket.
func TestWeightedFairKeepsCrossBucketHazardOrder(t *testing.T) {
	def := &subQueue{weight: 1}
	ten := &subQueue{weight: 1}
	c := &Comm{queues: []*subQueue{def, ten}}

	mkFut := func(seq uint64, write bool, off, n int) *Future {
		f := fakeFuture(1)
		f.seq = seq
		if write {
			f.cp.regs.write(off, n)
		} else {
			f.cp.regs.read(off, n)
		}
		return f
	}
	reader := mkFut(1, false, 128, 64) // tenant submits first
	writer := mkFut(2, true, 128, 64)  // plain Comm submits second: WAR
	indep := mkFut(3, true, 512, 64)   // plain Comm, no conflict
	ten.q = append(ten.q, reader)
	def.q = append(def.q, writer, indep)

	c.asyncMu.Lock()
	first := c.pickLocked()
	second := c.pickLocked()
	third := c.pickLocked()
	c.asyncMu.Unlock()
	if first != reader {
		t.Fatalf("conflicting later-submitted plan ran first (got seq %d, want seq 1)", first.seq)
	}
	if second != writer || third != indep {
		t.Errorf("remaining picks out of order: %d then %d, want 2 then 3", second.seq, third.seq)
	}
}

// A bucket waking from idle joins at the virtual clock instead of
// burning accumulated credit in a burst.
func TestIdleBucketJoinsAtVirtualClock(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	ta, err := c.NewTenant("a", 0, 1<<12, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c.NewTenant("b", 1<<12, 1<<12, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const m = 16 * 8
	d := Collective{Prim: AlltoAll, Dims: "1", Src: Span(0, m), Dst: At(2 * m), Level: CM}
	// Drive only tenant a for a while; its vtime advances far past b's.
	for i := 0; i < 8; i++ {
		if _, err := ta.Run(d); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	// When b wakes up, it must not be allowed to monopolize: the
	// admission point resets its vtime to the virtual clock. Observe via
	// the scheduler state after one submit each.
	fa, err := ta.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := tb.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Err(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Err(); err != nil {
		t.Fatal(err)
	}
	c.asyncMu.Lock()
	va, vb := ta.sq.vtime, tb.sq.vtime
	c.asyncMu.Unlock()
	if vb == 0 {
		t.Errorf("idle bucket kept zero vtime (burst credit); want join at vclock ~%v", va)
	}
}

// Tenants with overlapping arenas must be rejected at registration.
func TestTenantArenasDisjoint(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	if _, err := c.NewTenant("a", 0, 1<<12, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewTenant("b", 1<<11, 1<<12, 1, 0); err == nil {
		t.Fatal("overlapping arena accepted")
	}
	if _, err := c.NewTenant("c", 1<<12, 1<<13, 1, 0); err == nil {
		t.Fatal("arena beyond MRAM accepted")
	}
	if _, err := c.NewTenant("d", 1<<12, 1<<12, 1, 0); err != nil {
		t.Fatalf("disjoint arena rejected: %v", err)
	}
}

// A plan key is owned by whoever compiled it first: a tenant cannot
// adopt a plain-Comm plan (and vice versa), which closes the aliasing
// hole of mixing session kinds over the same offsets.
func TestPlanOwnershipConflict(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	ten, err := c.NewTenant("a", 0, 1<<13, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const m = 16 * 8
	d := Collective{Prim: AlltoAll, Dims: "1", Src: Span(0, m), Dst: At(2 * m), Level: CM}
	if _, err := ten.Compile(d); err != nil {
		t.Fatal(err)
	}
	// The same absolute signature through the plain Comm conflicts.
	if _, err := c.Compile(d); err == nil {
		t.Fatal("plain Comm adopted a tenant-owned plan")
	} else if !strings.Contains(err.Error(), "owned by") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// ClearPlanCache is a barrier: it drains the submission queue before
// evicting, so every future submitted beforehand is complete when it
// returns.
func TestClearPlanCacheFlushesSubmissions(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	const m = 16 * 8
	var fs []*Future
	for i := 0; i < 32; i++ {
		f, err := c.Submit(Collective{Prim: AlltoAll, Dims: "1",
			Src: Span(0, m), Dst: At(2 * m), Level: CM})
		if err != nil {
			t.Fatal(err)
		}
		fs = append(fs, f)
	}
	c.ClearPlanCache()
	for i, f := range fs {
		if !f.Done() {
			t.Fatalf("future %d still in flight after ClearPlanCache", i)
		}
		if err := f.Err(); err != nil {
			t.Fatal(err)
		}
	}
	st := c.PlanCacheStats()
	if st.CachedPlans != 0 || st.CachedTraces != 0 {
		t.Errorf("cache not empty after clear: %+v", st)
	}
}

// Quota admission: a tenant whose budget covers exactly two plans gets
// two runs, then ErrQuotaExceeded — on Run and on Submit (via the
// future's error).
func TestTenantQuota(t *testing.T) {
	c := tenantTestComm(t, 1<<13)
	const m = 16 * 8
	d := Collective{Prim: AlltoAll, Dims: "1", Src: Span(0, m), Dst: At(2 * m), Level: CM}
	probe, err := c.NewTenant("probe", 0, 1<<12, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := probe.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	per := cp.Cost().Total()

	ten, err := c.NewTenant("capped", 1<<12, 1<<12, 1, per*2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := ten.Run(d); err != nil {
			t.Fatalf("run %d within quota failed: %v", i, err)
		}
	}
	if _, err := ten.Run(d); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota Run: got %v, want ErrQuotaExceeded", err)
	}
	f, err := ten.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(f.Err(), ErrQuotaExceeded) {
		t.Fatalf("over-quota Submit future: got %v, want ErrQuotaExceeded", f.Err())
	}
	if got := ten.Admitted(); got != per*2 {
		t.Errorf("admitted ledger %v, want %v", got, per*2)
	}
}
