package core

import "fmt"

// Level selects how much of PID-Comm's optimization stack a collective
// uses. Levels are cumulative (§ V-A takes "three progressive steps from
// the baseline"): each level includes all techniques of the previous one.
// Not every technique applies to every primitive (Table II); requesting a
// level beyond what a primitive supports uses the highest applicable one
// (see EffectiveLevel).
type Level int

const (
	// Auto is a pseudo-level and the Level zero value, so a Collective
	// descriptor that leaves Level unset is autotuned: the collective
	// dry-runs every applicable level on the cost-only backend, picks
	// the cheapest for the (primitive, dims, payload, element type)
	// signature, caches the decision on the Comm, and executes with it.
	// See Comm.AutoLevel.
	//
	// Auto is resolved to a concrete level at every collective entry
	// point; it must never reach EffectiveLevel or a schedule builder.
	Auto Level = iota
	// Baseline is the conventional design (Figure 3a / Figure 7a):
	// UPMEM-SDK-style bulk transfers with automatic domain transfer,
	// global data modulation in host memory by the host alone.
	Baseline
	// PR adds PE-assisted reordering (§ V-A1): PEs locally pre/post-
	// reorder their data so the host's modulation becomes local and
	// cache-friendly.
	PR
	// IM adds in-register modulation (§ V-A2): the host-side modulation
	// working set fits vector registers, so staging in host memory is
	// eliminated entirely.
	IM
	// CM adds cross-domain modulation (§ V-A3): for primitives without
	// host arithmetic the domain transfers fuse with the word shifts into
	// single byte-level shifts, eliminating DT.
	CM
)

// Levels lists all concrete levels in ascending order (Auto excluded).
func Levels() []Level { return []Level{Baseline, PR, IM, CM} }

// String returns the label used in the ablation study (Figure 16).
func (l Level) String() string {
	switch l {
	case Auto:
		return "Auto"
	case Baseline:
		return "Base"
	case PR:
		return "+PR"
	case IM:
		return "+IM"
	case CM:
		return "+CM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Primitive identifies one of the eight collective communication
// primitives (Figure 2).
type Primitive int

const (
	// AlltoAll: block j of rank i ends as block i of rank j.
	AlltoAll Primitive = iota
	// ReduceScatter: block p, reduced elementwise over all ranks, ends on
	// rank p.
	ReduceScatter
	// AllReduce: every rank ends with the full elementwise reduction.
	AllReduce
	// AllGather: every rank ends with the concatenation of all ranks'
	// buffers.
	AllGather
	// Scatter: the host (root) sends block p to rank p.
	Scatter
	// Gather: the host (root) receives all ranks' buffers concatenated.
	Gather
	// Reduce: the host (root) receives the full elementwise reduction.
	Reduce
	// Broadcast: every rank receives a copy of the host's buffer.
	Broadcast
)

// Primitives lists all primitives in the paper's column order (Table I).
func Primitives() []Primitive {
	return []Primitive{AlltoAll, ReduceScatter, AllReduce, AllGather, Scatter, Gather, Reduce, Broadcast}
}

// String returns the paper's abbreviation.
func (p Primitive) String() string {
	switch p {
	case AlltoAll:
		return "AA"
	case ReduceScatter:
		return "RS"
	case AllReduce:
		return "AR"
	case AllGather:
		return "AG"
	case Scatter:
		return "Sc"
	case Gather:
		return "Ga"
	case Reduce:
		return "Re"
	case Broadcast:
		return "Br"
	default:
		return fmt.Sprintf("Primitive(%d)", int(p))
	}
}

// LongName returns the full primitive name.
func (p Primitive) LongName() string {
	switch p {
	case AlltoAll:
		return "AlltoAll"
	case ReduceScatter:
		return "ReduceScatter"
	case AllReduce:
		return "AllReduce"
	case AllGather:
		return "AllGather"
	case Scatter:
		return "Scatter"
	case Gather:
		return "Gather"
	case Reduce:
		return "Reduce"
	case Broadcast:
		return "Broadcast"
	default:
		return p.String()
	}
}

// TechniqueApplies reports whether optimization level l introduces a new
// technique for primitive p — the applicability matrix of Table II.
//
//	PE-assisted reordering:  AA RS AR AG Re
//	In-register modulation:  AA RS AR AG Sc Ga Re
//	Cross-domain modulation: AA AG
//
// Broadcast is already optimal in the native driver (§ VIII-B) and gains
// nothing from any technique.
func TechniqueApplies(p Primitive, l Level) bool {
	switch l {
	case Baseline:
		return true
	case PR:
		switch p {
		case AlltoAll, ReduceScatter, AllReduce, AllGather, Reduce:
			return true
		}
		return false
	case IM:
		switch p {
		case AlltoAll, ReduceScatter, AllReduce, AllGather, Scatter, Gather, Reduce:
			return true
		}
		return false
	case CM:
		switch p {
		case AlltoAll, AllGather:
			return true
		}
		return false
	default:
		return false
	}
}

// EffectiveLevel returns the level actually used when level l is requested
// for primitive p: the highest applicable level not exceeding l. A
// primitive skips levels whose technique it has no use for (e.g. Scatter
// has no PE-side data to pre-reorder, so its stack is Baseline then IM).
func EffectiveLevel(p Primitive, l Level) Level {
	eff := Baseline
	for _, cand := range Levels() {
		if cand == Baseline || cand > l {
			continue
		}
		if TechniqueApplies(p, cand) {
			eff = cand
		}
	}
	return eff
}
