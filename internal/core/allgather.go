package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/vec"
)

// AllGather concatenates all ranks' buffers onto every rank (Figure
// 8(a)). Each PE contributes bytesPerPE bytes at srcOff and receives
// n*bytesPerPE bytes at dstOff.
func (c *Comm) AllGather(dims string, srcOff, dstOff, bytesPerPE int, lvl Level) (cost.Breakdown, error) {
	p, err := c.plan(dims)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllGather: %w", err)
	}
	s := bytesPerPE
	if err := c.checkRegion(srcOff, s); err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllGather: %w", err)
	}
	if err := c.checkRegion(dstOff, p.n*s); err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllGather: %w", err)
	}
	if overlap(srcOff, s, dstOff, p.n*s) {
		return cost.Breakdown{}, fmt.Errorf("AllGather: src and dst regions overlap")
	}
	before := c.h.Meter().Snapshot()
	switch EffectiveLevel(AllGather, lvl) {
	case Baseline:
		c.allGatherBulk(p, srcOff, dstOff, s, false)
	case PR:
		c.allGatherBulk(p, srcOff, dstOff, s, true)
	default: // IM or CM
		c.allGatherStream(p, srcOff, dstOff, s, EffectiveLevel(AllGather, lvl) == CM)
	}
	return c.h.Meter().Snapshot().Sub(before), nil
}

// allGatherBulk is the conventional path. When the hypercube selection
// forms a single group, the baseline exploits the driver's fast broadcast
// (§ VIII-E: "the baseline relies on the fast broadcast function, which
// cannot be utilized for 2D settings"): the gathered buffer is identical
// for every PE, so it needs one domain transfer total. Otherwise every
// group replicates in host memory.
func (c *Comm) allGatherBulk(p *plan, srcOff, dstOff, s int, pr bool) {
	n := p.n
	stag := c.h.BulkRead(c.allEGs(), srcOff, s)
	out := make([]byte, len(p.rankOf)*n*s)
	for _, grp := range p.groups {
		for _, dstPE := range grp {
			for i, srcPE := range grp {
				copy(out[dstPE*n*s+i*s:dstPE*n*s+i*s+s], stag[srcPE*s:(srcPE+1)*s])
			}
		}
	}
	if len(p.groups) == 1 {
		// Broadcast path: assemble once (n*s bytes), DT once, then the
		// writes are pure bus traffic. Model by refunding nothing but
		// charging only the single-copy modulation.
		c.h.ChargeLocalMod(int64(n * s))
		c.broadcastWrite(p, dstOff, out)
	} else {
		// Replication is sequential copying (memcpy class) regardless of
		// PR; PE-assisted reordering only removes the per-rank layout
		// bookkeeping, which is negligible here.
		_ = pr
		c.h.ChargeSIMD(int64(len(out)))
		c.h.BulkWrite(c.allEGs(), dstOff, out)
	}
	c.h.ChargeSync()
}

// broadcastWrite writes a prebuilt PE-major buffer whose content is
// identical for every PE using the driver's broadcast: one DT for the
// payload, bus traffic for every copy, no per-PE host-memory staging.
func (c *Comm) broadcastWrite(p *plan, dstOff int, out []byte) {
	perPE := len(out) / len(p.rankOf)
	c.h.ChargeDT(int64(perPE)) // DT once, reused for all PEs
	c.h.ChargeHostMem(int64(perPE))
	c.h.BeginXfer()
	nEG := c.hc.sys.Geometry().NumGroups()
	var u vec.Unit
	for e := 0; e < perPE; e += 8 {
		for g := 0; g < nEG; g++ {
			var r vec.Reg
			for chip := 0; chip < dram.ChipsPerRank; chip++ {
				pe := g*dram.ChipsPerRank + chip
				r.SetLane(chip, out[pe*perPE+e:])
			}
			c.h.WriteBurst(g, dstOff+e, u.Transpose8x8(r))
		}
		c.h.ChargeSIMD(c.columnBytes())
	}
	c.h.EndXfer()
}

// allGatherStream is the optimized path (Figure 8(a)): read each element
// column once, write it n times with incremental lane shifts (byte-level
// fused shifts under CM), then PEs fix the block order locally.
func (c *Comm) allGatherStream(p *plan, srcOff, dstOff, s int, cm bool) {
	n := p.n
	c.h.BeginXfer()
	for e := 0; e < s; e += 8 {
		col := c.readColumn(srcOff + e)
		if !cm {
			c.h.ChargeDT(c.columnBytes()) // one inbound transpose per read
		}
		for k := 0; k < n; k++ {
			shifted := c.shiftColumn(p, col, k)
			c.h.ChargeSIMD(c.columnBytes())
			if !cm {
				c.h.ChargeDT(c.columnBytes()) // outbound transpose per write
			}
			w := (n - k) % n
			c.writeColumn(dstOff+w*s+e, shifted)
		}
	}
	c.h.EndXfer()
	c.launchRotateBlocks(p, dstOff, n, s, func(rank int) int { return -rank })
	c.h.ChargeSync()
}

// Gather returns each group's concatenated buffers to the host (§ V-B4:
// AllGather's read step followed by domain transfer). The result has one
// n*bytesPerPE buffer per group, blocks in rank order.
func (c *Comm) Gather(dims string, srcOff, bytesPerPE int, lvl Level) ([][]byte, cost.Breakdown, error) {
	p, err := c.plan(dims)
	if err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Gather: %w", err)
	}
	s := bytesPerPE
	if err := c.checkRegion(srcOff, s); err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Gather: %w", err)
	}
	before := c.h.Meter().Snapshot()
	var out [][]byte
	if EffectiveLevel(Gather, lvl) == Baseline {
		stag := c.h.BulkRead(c.allEGs(), srcOff, s)
		out = make([][]byte, len(p.groups))
		for g, grp := range p.groups {
			out[g] = make([]byte, p.n*s)
			for i, pe := range grp {
				copy(out[g][i*s:], stag[pe*s:(pe+1)*s])
			}
		}
		c.h.ChargeHostMem(int64(len(stag))) // copy out of staging
	} else { // IM: stream straight into the user buffers
		out = make([][]byte, len(p.groups))
		for g := range out {
			out[g] = make([]byte, p.n*s)
		}
		c.h.BeginXfer()
		for e := 0; e < s; e += 8 {
			col := transposeColumn(c.readColumn(srcOff + e))
			c.h.ChargeDT(c.columnBytes())
			for g, grp := range p.groups {
				for i, pe := range grp {
					copy(out[g][i*s+e:i*s+e+8], col[pe/dram.ChipsPerRank].Lane(pe%dram.ChipsPerRank))
				}
			}
		}
		c.h.EndXfer()
		c.h.ChargeHostMem(int64(len(p.groups) * p.n * s))
	}
	c.h.ChargeSync()
	return out, c.h.Meter().Snapshot().Sub(before), nil
}

// Broadcast sends bufs[g] (one per communication group, in group order)
// to every PE of group g at dstOff. The native driver path is already
// near-optimal (§ VIII-B): one domain transfer per payload serves all
// PEs, so all optimization levels share this implementation.
func (c *Comm) Broadcast(dims string, bufs [][]byte, dstOff int, lvl Level) (cost.Breakdown, error) {
	p, err := c.plan(dims)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("Broadcast: %w", err)
	}
	if len(bufs) != len(p.groups) {
		return cost.Breakdown{}, fmt.Errorf("Broadcast: %d buffers for %d groups", len(bufs), len(p.groups))
	}
	s := -1
	for g, b := range bufs {
		if s == -1 {
			s = len(b)
		} else if len(b) != s {
			return cost.Breakdown{}, fmt.Errorf("Broadcast: buffer %d has %d bytes, want %d", g, len(b), s)
		}
	}
	if err := c.checkRegion(dstOff, s); err != nil {
		return cost.Breakdown{}, fmt.Errorf("Broadcast: %w", err)
	}
	before := c.h.Meter().Snapshot()
	_ = lvl // single implementation; see doc comment
	c.h.ChargeHostMem(int64(len(p.groups) * s))
	c.h.ChargeDT(int64(len(p.groups) * s)) // DT once per payload
	c.h.BeginXfer()
	nEG := c.hc.sys.Geometry().NumGroups()
	var u vec.Unit
	for e := 0; e < s; e += 8 {
		for g := 0; g < nEG; g++ {
			var r vec.Reg
			for chip := 0; chip < dram.ChipsPerRank; chip++ {
				pe := g*dram.ChipsPerRank + chip
				r.SetLane(chip, bufs[p.groupOf[pe]][e:])
			}
			c.h.WriteBurst(g, dstOff+e, u.Transpose8x8(r))
		}
		c.h.ChargeSIMD(c.columnBytes())
	}
	c.h.EndXfer()
	c.h.ChargeSync()
	return c.h.Meter().Snapshot().Sub(before), nil
}
