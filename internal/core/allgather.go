package core

import (
	"repro/internal/cost"
)

// AllGather concatenates all ranks' buffers onto every rank (Figure
// 8(a)). Each PE contributes bytesPerPE bytes at srcOff and receives
// n*bytesPerPE bytes at dstOff.
//
// This is a thin wrapper over CompileAllGather + Run; repeated calls
// with the same signature replay the cached CompiledPlan.
func (c *Comm) AllGather(dims string, srcOff, dstOff, bytesPerPE int, lvl Level) (cost.Breakdown, error) {
	cp, err := c.CompileAllGather(dims, srcOff, dstOff, bytesPerPE, lvl)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cp.Run()
}

// Gather returns each group's concatenated buffers to the host (§ V-B4:
// AllGather's read step followed by domain transfer). The result has one
// n*bytesPerPE buffer per group, blocks in rank order (nil on a
// cost-only backend).
//
// This is a thin wrapper over CompileGather + Run.
func (c *Comm) Gather(dims string, srcOff, bytesPerPE int, lvl Level) ([][]byte, cost.Breakdown, error) {
	cp, err := c.CompileGather(dims, srcOff, bytesPerPE, lvl)
	if err != nil {
		return nil, cost.Breakdown{}, err
	}
	out, bd := cp.run()
	return out, bd, nil
}

// Broadcast sends bufs[g] (one per communication group, in group order)
// to every PE of group g at dstOff. The native driver path is already
// near-optimal (§ VIII-B): one domain transfer per payload serves all
// PEs, so all optimization levels share this implementation.
//
// This is a thin wrapper over CompileBroadcast + Run.
func (c *Comm) Broadcast(dims string, bufs [][]byte, dstOff int, lvl Level) (cost.Breakdown, error) {
	cp, err := c.CompileBroadcast(dims, bufs, dstOff, lvl)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cp.Run()
}
