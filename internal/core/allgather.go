package core

import (
	"fmt"

	"repro/internal/cost"
)

// AllGather concatenates all ranks' buffers onto every rank (Figure
// 8(a)). Each PE contributes bytesPerPE bytes at srcOff and receives
// n*bytesPerPE bytes at dstOff.
func (c *Comm) AllGather(dims string, srcOff, dstOff, bytesPerPE int, lvl Level) (cost.Breakdown, error) {
	p, err := c.plan(dims)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllGather: %w", err)
	}
	s := bytesPerPE
	if err := c.checkRegion(srcOff, s); err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllGather: %w", err)
	}
	if err := c.checkRegion(dstOff, p.n*s); err != nil {
		return cost.Breakdown{}, fmt.Errorf("AllGather: %w", err)
	}
	if overlap(srcOff, s, dstOff, p.n*s) {
		return cost.Breakdown{}, fmt.Errorf("AllGather: src and dst regions overlap")
	}
	if lvl == Auto {
		if lvl, err = c.AutoLevel(AllGather, dims, bytesPerPE, 0, 0); err != nil {
			return cost.Breakdown{}, fmt.Errorf("AllGather: %w", err)
		}
	}
	before := c.h.Meter().Snapshot()
	c.execute(c.lowerAllGather(p, srcOff, dstOff, s, EffectiveLevel(AllGather, lvl)))
	return c.h.Meter().Snapshot().Sub(before), nil
}

// Gather returns each group's concatenated buffers to the host (§ V-B4:
// AllGather's read step followed by domain transfer). The result has one
// n*bytesPerPE buffer per group, blocks in rank order (nil on a
// cost-only backend).
func (c *Comm) Gather(dims string, srcOff, bytesPerPE int, lvl Level) ([][]byte, cost.Breakdown, error) {
	p, err := c.plan(dims)
	if err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Gather: %w", err)
	}
	s := bytesPerPE
	if err := c.checkRegion(srcOff, s); err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Gather: %w", err)
	}
	if lvl == Auto {
		if lvl, err = c.AutoLevel(Gather, dims, bytesPerPE, 0, 0); err != nil {
			return nil, cost.Breakdown{}, fmt.Errorf("Gather: %w", err)
		}
	}
	before := c.h.Meter().Snapshot()
	var out [][]byte
	c.execute(c.lowerGather(p, srcOff, s, EffectiveLevel(Gather, lvl), &out))
	return out, c.h.Meter().Snapshot().Sub(before), nil
}

// Broadcast sends bufs[g] (one per communication group, in group order)
// to every PE of group g at dstOff. The native driver path is already
// near-optimal (§ VIII-B): one domain transfer per payload serves all
// PEs, so all optimization levels share this implementation.
func (c *Comm) Broadcast(dims string, bufs [][]byte, dstOff int, lvl Level) (cost.Breakdown, error) {
	p, err := c.plan(dims)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("Broadcast: %w", err)
	}
	if len(bufs) != len(p.groups) {
		return cost.Breakdown{}, fmt.Errorf("Broadcast: %d buffers for %d groups", len(bufs), len(p.groups))
	}
	s := -1
	for g, b := range bufs {
		if s == -1 {
			s = len(b)
		} else if len(b) != s {
			return cost.Breakdown{}, fmt.Errorf("Broadcast: buffer %d has %d bytes, want %d", g, len(b), s)
		}
	}
	if err := c.checkRegion(dstOff, s); err != nil {
		return cost.Breakdown{}, fmt.Errorf("Broadcast: %w", err)
	}
	_ = lvl // single implementation; see doc comment
	before := c.h.Meter().Snapshot()
	c.execute(c.lowerBroadcast(p, bufs, dstOff, s))
	return c.h.Meter().Snapshot().Sub(before), nil
}
