package core

import (
	"testing"

	"repro/internal/elem"
)

// TestFrontierStaysBounded submits thousands of plans without ever
// calling Flush: the hazard frontier must stay bounded (oldest entries
// retire by advancing the barrier) and elapsed must stay within the
// serial bound.
func TestFrontierStaysBounded(t *testing.T) {
	const m = 32 * 8
	c := asyncTestComm(t, true)
	var last *Future
	for i := 0; i < 3000; i++ {
		base := (i % 8) * 2 * m
		f, err := c.SubmitAllReduce("1", base, base+m, m, elem.I32, elem.Sum, IM)
		if err != nil {
			t.Fatal(err)
		}
		last = f
	}
	if err := last.Err(); err != nil {
		t.Fatal(err)
	}
	c.execMu.Lock()
	n := len(c.frontier)
	c.execMu.Unlock()
	if n > 300 {
		t.Fatalf("frontier grew to %d entries without Flush (want bounded)", n)
	}
	if el, work := c.Elapsed(), c.Meter().Snapshot().Total(); el > work+1e-9 {
		t.Fatalf("elapsed %v exceeds serial bound %v", el, work)
	}
}
