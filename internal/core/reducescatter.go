package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// ReduceScatter reduces block p elementwise across each communication
// group and leaves the result on rank p (Figure 8(b)). Each PE
// contributes bytesPerPE bytes at srcOff (n blocks) and receives
// bytesPerPE/n bytes at dstOff. The optimized levels consume the source
// region (PE-assisted pre-reordering happens in place, § V-A1).
func (c *Comm) ReduceScatter(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (cost.Breakdown, error) {
	p, s, err := c.prepReduceArgs(dims, srcOff, dstOff, bytesPerPE, t, op)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("ReduceScatter: %w", err)
	}
	before := c.h.Meter().Snapshot()
	switch EffectiveLevel(ReduceScatter, lvl) {
	case Baseline:
		c.reduceScatterBulk(p, srcOff, dstOff, s, t, op, false)
	case PR:
		c.reduceScatterBulk(p, srcOff, dstOff, s, t, op, true)
	default: // IM
		c.reduceScatterStream(p, srcOff, dstOff, s, t, op)
	}
	return c.h.Meter().Snapshot().Sub(before), nil
}

func (c *Comm) prepReduceArgs(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op) (*plan, int, error) {
	p, err := c.plan(dims)
	if err != nil {
		return nil, 0, err
	}
	if err := checkElem(t, op); err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(srcOff, bytesPerPE); err != nil {
		return nil, 0, err
	}
	s, err := blockSize(bytesPerPE, p.n)
	if err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(dstOff, s); err != nil {
		return nil, 0, err
	}
	if overlap(srcOff, bytesPerPE, dstOff, s) {
		return nil, 0, fmt.Errorf("core: src and dst regions overlap")
	}
	return p, s, nil
}

// reduceScatterBulk is the conventional path: everything to host memory,
// reduce there (globally for Baseline, locally over pre-rotated blocks
// for PR), write the s-byte results back.
func (c *Comm) reduceScatterBulk(p *plan, srcOff, dstOff, s int, t elem.Type, op elem.Op, pr bool) {
	n := p.n
	m := n * s
	if pr {
		c.launchRotateBlocks(p, srcOff, n, s, func(rank int) int { return rank })
	}
	stag := c.h.BulkRead(c.allEGs(), srcOff, m)
	out := make([]byte, len(p.rankOf)*s)
	for _, grp := range p.groups {
		for pIdx, dstPE := range grp {
			blk := out[dstPE*s : (dstPE+1)*s]
			elem.Fill(t, blk, op.Identity(t))
			for i, srcPE := range grp {
				// Without PR, block p sits at slot p; with PR, rank i
				// pre-rotated left by i so block p is at slot (p-i)%n.
				slot := pIdx
				if pr {
					slot = ((pIdx-i)%n + n) % n
				}
				elem.ReduceInto(t, op, blk, stag[srcPE*m+slot*s:srcPE*m+slot*s+s])
			}
		}
	}
	if pr {
		c.h.ChargeLocalReduce(int64(len(stag)))
	} else {
		c.h.ChargeScalarReduce(int64(len(stag)))
	}
	c.h.BulkWrite(c.allEGs(), dstOff, out)
	c.h.ChargeSync()
}

// reduceScatterStream is the optimized path (§ V-B2): PE pre-rotation
// aligns destinations, then for every element column the host streams the
// n slot bursts, lane-shifts so lane = destination, domain-transfers, and
// vertically reduces in registers — never touching host memory. 8-bit
// elements skip the domain transfers entirely (§ V-C).
func (c *Comm) reduceScatterStream(p *plan, srcOff, dstOff, s int, t elem.Type, op elem.Op) {
	n := p.n
	noDT := t == elem.I8 // host can interpret 8-bit data in PIM domain
	c.launchRotateBlocks(p, srcOff, n, s, func(rank int) int { return rank })
	c.h.BeginXfer()
	nEG := c.hc.sys.Geometry().NumGroups()
	for e := 0; e < s; e += 8 {
		acc := identityColumn(t, op, nEG) // host byte order
		for k := 0; k < n; k++ {
			col := c.readColumn(srcOff + k*s + e)
			col = c.shiftColumn(p, col, k) // lane = destination rank
			c.h.ChargeSIMD(c.columnBytes())
			if !noDT {
				c.h.ChargeDT(c.columnBytes())
			}
			reduceColumnInto(t, op, acc, transposeColumn(col))
			c.h.ChargeReduce(c.columnBytes())
		}
		if !noDT {
			c.h.ChargeDT(c.columnBytes())
		}
		c.writeColumn(dstOff+e, transposeColumn(acc))
	}
	c.h.EndXfer()
	c.h.ChargeSync()
}

// Reduce is the first half of ReduceScatter (§ V-B4): the host (root)
// receives each group's full elementwise reduction. It returns one
// bytesPerPE-sized buffer per communication group, in group order.
func (c *Comm) Reduce(dims string, srcOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) ([][]byte, cost.Breakdown, error) {
	p, err := c.plan(dims)
	if err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Reduce: %w", err)
	}
	if err := checkElem(t, op); err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Reduce: %w", err)
	}
	if err := c.checkRegion(srcOff, bytesPerPE); err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Reduce: %w", err)
	}
	s, err := blockSize(bytesPerPE, p.n)
	if err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Reduce: %w", err)
	}
	before := c.h.Meter().Snapshot()
	var out [][]byte
	switch EffectiveLevel(Reduce, lvl) {
	case Baseline:
		out = c.reduceBulk(p, srcOff, s, t, op, false)
	case PR:
		out = c.reduceBulk(p, srcOff, s, t, op, true)
	default: // IM
		out = c.reduceStream(p, srcOff, s, t, op)
	}
	return out, c.h.Meter().Snapshot().Sub(before), nil
}

func (c *Comm) reduceBulk(p *plan, srcOff, s int, t elem.Type, op elem.Op, pr bool) [][]byte {
	n := p.n
	m := n * s
	if pr {
		c.launchRotateBlocks(p, srcOff, n, s, func(rank int) int { return rank })
	}
	stag := c.h.BulkRead(c.allEGs(), srcOff, m)
	out := make([][]byte, len(p.groups))
	for g, grp := range p.groups {
		out[g] = make([]byte, m)
		elem.Fill(t, out[g], op.Identity(t))
		for i, srcPE := range grp {
			src := stag[srcPE*m : (srcPE+1)*m]
			if pr {
				// Undo the rotation block-wise while reducing.
				for k := 0; k < n; k++ {
					blk := (k + i) % n
					elem.ReduceInto(t, op, out[g][blk*s:blk*s+s], src[k*s:k*s+s])
				}
			} else {
				elem.ReduceInto(t, op, out[g], src)
			}
		}
	}
	if pr {
		c.h.ChargeLocalReduce(int64(len(stag)))
	} else {
		c.h.ChargeScalarReduce(int64(len(stag)))
	}
	c.h.ChargeHostMem(int64(len(p.groups) * m)) // result store
	c.h.ChargeSync()
	return out
}

func (c *Comm) reduceStream(p *plan, srcOff, s int, t elem.Type, op elem.Op) [][]byte {
	n := p.n
	noDT := t == elem.I8
	c.launchRotateBlocks(p, srcOff, n, s, func(rank int) int { return rank })
	out := make([][]byte, len(p.groups))
	for g := range out {
		out[g] = make([]byte, n*s)
	}
	c.h.BeginXfer()
	nEG := c.hc.sys.Geometry().NumGroups()
	for e := 0; e < s; e += 8 {
		acc := identityColumn(t, op, nEG)
		for k := 0; k < n; k++ {
			col := c.readColumn(srcOff + k*s + e)
			col = c.shiftColumn(p, col, k)
			c.h.ChargeSIMD(c.columnBytes())
			if !noDT {
				c.h.ChargeDT(c.columnBytes())
			}
			reduceColumnInto(t, op, acc, transposeColumn(col))
			c.h.ChargeReduce(c.columnBytes())
		}
		// acc lane (rank j) = reduced block j, element column e: store to
		// the per-group host result buffers.
		for g, grp := range p.groups {
			for j, pe := range grp {
				copy(out[g][j*s+e:j*s+e+8], acc[pe/dram.ChipsPerRank].Lane(pe%dram.ChipsPerRank))
			}
		}
	}
	c.h.EndXfer()
	c.h.ChargeHostMem(int64(len(p.groups) * n * s)) // result store
	c.h.ChargeSync()
	return out
}
