package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/elem"
)

// ReduceScatter reduces block p elementwise across each communication
// group and leaves the result on rank p (Figure 8(b)). Each PE
// contributes bytesPerPE bytes at srcOff (n blocks) and receives
// bytesPerPE/n bytes at dstOff. The optimized levels consume the source
// region (PE-assisted pre-reordering happens in place, § V-A1).
//
// This is a thin wrapper over CompileReduceScatter + Run; repeated calls
// with the same signature replay the cached CompiledPlan.
func (c *Comm) ReduceScatter(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (cost.Breakdown, error) {
	cp, err := c.CompileReduceScatter(dims, srcOff, dstOff, bytesPerPE, t, op, lvl)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return cp.Run()
}

func (c *Comm) prepReduceArgs(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op) (*plan, int, error) {
	p, err := c.plan(dims)
	if err != nil {
		return nil, 0, err
	}
	if err := checkElem(t, op); err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(srcOff, bytesPerPE); err != nil {
		return nil, 0, err
	}
	s, err := blockSize(bytesPerPE, p.n)
	if err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(dstOff, s); err != nil {
		return nil, 0, err
	}
	if overlap(srcOff, bytesPerPE, dstOff, s) {
		return nil, 0, fmt.Errorf("core: src and dst regions overlap")
	}
	return p, s, nil
}

// Reduce is the first half of ReduceScatter (§ V-B4): the host (root)
// receives each group's full elementwise reduction. It returns one
// bytesPerPE-sized buffer per communication group, in group order (nil
// on a cost-only backend).
//
// This is a thin wrapper over CompileReduce + Run.
func (c *Comm) Reduce(dims string, srcOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) ([][]byte, cost.Breakdown, error) {
	cp, err := c.CompileReduce(dims, srcOff, bytesPerPE, t, op, lvl)
	if err != nil {
		return nil, cost.Breakdown{}, err
	}
	out, bd := cp.run()
	return out, bd, nil
}
