package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/elem"
)

// ReduceScatter reduces block p elementwise across each communication
// group and leaves the result on rank p (Figure 8(b)). Each PE
// contributes bytesPerPE bytes at srcOff (n blocks) and receives
// bytesPerPE/n bytes at dstOff. The optimized levels consume the source
// region (PE-assisted pre-reordering happens in place, § V-A1).
func (c *Comm) ReduceScatter(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (cost.Breakdown, error) {
	p, s, err := c.prepReduceArgs(dims, srcOff, dstOff, bytesPerPE, t, op)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("ReduceScatter: %w", err)
	}
	if lvl == Auto {
		if lvl, err = c.AutoLevel(ReduceScatter, dims, bytesPerPE, t, op); err != nil {
			return cost.Breakdown{}, fmt.Errorf("ReduceScatter: %w", err)
		}
	}
	before := c.h.Meter().Snapshot()
	c.execute(c.lowerReduceScatter(p, srcOff, dstOff, s, t, op, EffectiveLevel(ReduceScatter, lvl)))
	return c.h.Meter().Snapshot().Sub(before), nil
}

func (c *Comm) prepReduceArgs(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op) (*plan, int, error) {
	p, err := c.plan(dims)
	if err != nil {
		return nil, 0, err
	}
	if err := checkElem(t, op); err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(srcOff, bytesPerPE); err != nil {
		return nil, 0, err
	}
	s, err := blockSize(bytesPerPE, p.n)
	if err != nil {
		return nil, 0, err
	}
	if err := c.checkRegion(dstOff, s); err != nil {
		return nil, 0, err
	}
	if overlap(srcOff, bytesPerPE, dstOff, s) {
		return nil, 0, fmt.Errorf("core: src and dst regions overlap")
	}
	return p, s, nil
}

// Reduce is the first half of ReduceScatter (§ V-B4): the host (root)
// receives each group's full elementwise reduction. It returns one
// bytesPerPE-sized buffer per communication group, in group order (nil
// on a cost-only backend).
func (c *Comm) Reduce(dims string, srcOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) ([][]byte, cost.Breakdown, error) {
	p, err := c.plan(dims)
	if err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Reduce: %w", err)
	}
	if err := checkElem(t, op); err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Reduce: %w", err)
	}
	if err := c.checkRegion(srcOff, bytesPerPE); err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Reduce: %w", err)
	}
	s, err := blockSize(bytesPerPE, p.n)
	if err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("Reduce: %w", err)
	}
	if lvl == Auto {
		if lvl, err = c.AutoLevel(Reduce, dims, bytesPerPE, t, op); err != nil {
			return nil, cost.Breakdown{}, fmt.Errorf("Reduce: %w", err)
		}
	}
	before := c.h.Meter().Snapshot()
	var out [][]byte
	c.execute(c.lowerReduce(p, srcOff, s, t, op, EffectiveLevel(Reduce, lvl), &out))
	return out, c.h.Meter().Snapshot().Sub(before), nil
}
