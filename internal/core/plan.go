package core

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/elem"
	"repro/internal/host"
)

// This file implements the plan/execute split: a collective is compiled
// once — validated, Auto-resolved, lowered to its IR Schedule, and its
// charges precomputed — into a CompiledPlan that can be replayed many
// times. The one-shot collectives (AlltoAll, ReduceScatter, ...) are thin
// wrappers over Compile*+Run, so iterative workloads that repeat a call
// signature every layer/iteration (DLRM, GNN, MLP, BFS/CC — and the
// paper-scale sweeps of the bench harness) amortize all per-call setup.
//
// The precomputed charges are a *trace*: the exact sequence of meter
// additions a cost-only execution of the schedule performs, captured once
// on a scratch host. Each addition's value depends only on the call shape
// — never on prior meter state — so replaying the trace applies the same
// floating-point operands in the same order as a live execution and the
// meter evolves bit-identically, while skipping the per-PE kernel
// accounting and per-burst bus tallying loops entirely. On the functional
// backend a Run still executes the schedule (bytes must move); on the
// cost-only backend a Run is just the trace replay, which is what makes
// cached replay orders of magnitude faster than compile-each-call (see
// the bench "replay" experiment).

// planKey identifies one compiled collective on a Comm: the full call
// signature with Auto already resolved to the effective level, plus the
// fusion level the plan was compiled at (a plan fused at one level is
// never served to a comm configured at another).
type planKey struct {
	prim           Primitive
	dims           string
	srcOff, dstOff int
	bytes          int
	elemType       elem.Type
	op             elem.Op
	lvl            Level
	// algo is the resolved lowering algorithm (never AlgoAuto): two
	// compilations of one signature through different algorithms are
	// distinct plans with distinct charge traces.
	algo  Algorithm
	fused bool
	// tag disambiguates synthetic plans that share a positional signature
	// with an ordinary collective but lower differently — the cluster
	// layer (cluster.go) tags its network-leg and staging members so they
	// can never be served from (or pollute) the single-host cache.
	tag string
}

// planSpec is a validated, Auto-resolved collective ready to lower: the
// cache key, the MRAM footprint for hazard detection, and the lowering
// closure. Produced by specIn (collective.go); consumed one-at-a-time by
// compiledPlan or concatenated by compiledSequence.
type planSpec struct {
	key   planKey
	regs  planRegions
	lower func(cp *CompiledPlan) *Schedule
	// hostBufs marks a lowering that captures caller-owned host buffers
	// by reference, which makes the compiled schedule single-use: the
	// plan cache must not serve it for a later call that binds different
	// buffers. Set by specScatter/specBroadcast; cluster-internal
	// broadcast legs reading plan-owned staging leave it false and stay
	// cacheable.
	hostBufs bool
}

// chargeTrace is the precomputed accounting of one schedule: the ordered
// meter additions of a cost-only execution plus the cumulative
// bus-statistics delta. It depends only on the call shape, never on data
// or meter state, so it is shared by every plan with the same key.
type chargeTrace struct {
	adds  []cost.TraceEntry
	stats host.XferStats
	total cost.Breakdown
	// segs is the trace coalesced into timeline lane segments, the unit
	// of overlap-aware elapsed-time placement (async.go).
	segs []cost.Segment
}

// memBytes approximates the trace's cached memory footprint.
func (tr *chargeTrace) memBytes() int64 {
	const traceEntryBytes = 16 // Category + Seconds
	const segmentBytes = 16    // Lane + Seconds
	return int64(len(tr.adds))*traceEntryBytes + int64(len(tr.segs))*segmentBytes
}

// CompiledPlan is a collective lowered once to its IR Schedule plus
// precomputed charges, ready to be replayed. Obtain one from the Comm's
// Compile* methods; Run executes a replay. Plans stay valid for the
// lifetime of their Comm and may be Run from multiple goroutines
// (executions serialize on the Comm).
//
// Host-input plans (Scatter, Broadcast) bind the buffer slices passed at
// compile time: a replay reads their *current* contents, so callers
// refill the same slices between runs. Rooted plans (Gather, Reduce)
// leave their latest results in Results.
type CompiledPlan struct {
	c     *Comm
	key   planKey
	sched *Schedule
	tr    *chargeTrace
	// regs is the plan's per-PE MRAM footprint, used for hazard
	// detection between asynchronously submitted plans (async.go).
	regs planRegions
	// owner is the tenant every run of this plan is attributed to and
	// admitted against (nil for a plain Comm); owned marks that the
	// first compile has bound it. Guarded by c.compMu (tenant.go).
	owner *Tenant
	owned bool

	// fusion reports what the fusion pipeline did to the schedule
	// (zero-valued when the plan was compiled with FuseOff).
	fusion FusionReport
	// members and memberCosts describe a CompileSequence plan: the
	// member primitives in order and each member's unfused per-run cost
	// (for proportional attribution by profilers). Nil for single plans.
	members     []Primitive
	memberCosts []cost.Breakdown

	// out is the rooted-result slot the schedule's closures write into
	// during a functional execution; lastOut is what Results returns.
	// rooted is the plan-owned backing store for those results, reused
	// across runs (rootedBufs). All guarded by c.execMu.
	out     [][]byte
	lastOut [][]byte
	rooted  [][]byte
}

// rootedBufs returns the plan's cached rooted-result buffers (groups
// buffers of n bytes each), allocating them on first use, and publishes
// them as the current run's output. Every run fully overwrites the
// buffers, so reuse is safe under the Results contract (buffers are
// valid until the next Run of the same plan). Called from schedule
// closures during execution — the caller holds c.execMu.
func (cp *CompiledPlan) rootedBufs(groups, n int) [][]byte {
	if len(cp.rooted) != groups || (groups > 0 && len(cp.rooted[0]) != n) {
		cp.rooted = make([][]byte, groups)
		for g := range cp.rooted {
			cp.rooted[g] = make([]byte, n)
		}
	}
	cp.out = cp.rooted
	return cp.rooted
}

// Primitive returns the plan's collective primitive.
func (cp *CompiledPlan) Primitive() Primitive { return cp.key.prim }

// Level returns the effective optimization level the plan was compiled
// at (Auto already resolved).
func (cp *CompiledPlan) Level() Level { return cp.key.lvl }

// Algorithm returns the lowering algorithm the plan was compiled
// through (Auto already resolved; AlgoReference for the built-in
// lowering).
func (cp *CompiledPlan) Algorithm() Algorithm { return cp.key.algo }

// Cost returns the plan's precomputed per-run cost breakdown — what one
// Run will charge, available without executing anything.
func (cp *CompiledPlan) Cost() cost.Breakdown { return cp.tr.total }

// LaneSegments returns a copy of the plan's per-run charge trace as
// timeline segments in charge order — the input to dry placement
// (cost.PipelinedMakespan, the async scheduler's hazard windows).
func (cp *CompiledPlan) LaneSegments() []cost.Segment {
	return append([]cost.Segment(nil), cp.tr.segs...)
}

// Makespan returns the plan's pipelined dry-placed makespan at the
// autotuner's pipeline depth — the score the AutoMakespan objective
// minimizes.
func (cp *CompiledPlan) Makespan() cost.Seconds {
	return cost.PipelinedMakespan(cp.tr.segs, AutoPipelineDepth)
}

// FusionReport returns what the fusion pipeline did to this plan's
// schedule. For plans compiled with FuseOff the report is zero-valued.
func (cp *CompiledPlan) FusionReport() FusionReport { return cp.fusion }

// Members returns the plan's member primitives in execution order: the
// single primitive for an ordinary plan, the sequence members for a
// CompileSequence plan.
func (cp *CompiledPlan) Members() []Primitive {
	if cp.members == nil {
		return []Primitive{cp.key.prim}
	}
	out := make([]Primitive, len(cp.members))
	copy(out, cp.members)
	return out
}

// MemberCosts returns, for a CompileSequence plan, each member's unfused
// per-run cost breakdown (their sum is the sequence's FusionReport
// CostBefore); for a single plan it returns the plan's own cost.
// Profilers use the shares to attribute a fused run across primitives.
func (cp *CompiledPlan) MemberCosts() []cost.Breakdown {
	if cp.memberCosts == nil {
		return []cost.Breakdown{cp.tr.total}
	}
	out := make([]cost.Breakdown, len(cp.memberCosts))
	copy(out, cp.memberCosts)
	return out
}

// Run executes one replay of the compiled plan and returns its cost
// breakdown. On the functional backend the schedule executes in full
// (real bytes move); on the cost-only backend the precomputed charge
// trace is applied, which is bit-identical to a live execution. A plan
// owned by a tenant is admitted against the tenant's quota first and
// its charges accrue on the tenant's meter.
func (cp *CompiledPlan) Run() (cost.Breakdown, error) {
	if err := cp.owner.admit(cp.tr.total.Total()); err != nil {
		return cost.Breakdown{}, err
	}
	_, bd := cp.run()
	return bd, nil
}

// Results returns the rooted result buffers (one per communication
// group) of the plan's most recent Run: non-nil only for Gather/Reduce
// plans on a functional backend. The buffers are valid until the next
// Run of the same plan.
func (cp *CompiledPlan) Results() [][]byte {
	cp.c.execMu.Lock()
	defer cp.c.execMu.Unlock()
	return cp.lastOut
}

// run executes one replay under the comm's execution lock and returns
// the rooted results (if any) and the call's breakdown. Serial runs are
// barriers with respect to submitted plans: run waits for the submission
// queue to drain, then appends its lane segments to the elapsed-time
// timeline (no overlap).
func (cp *CompiledPlan) run() ([][]byte, cost.Breakdown) {
	c := cp.c
	c.Flush()
	c.execMu.Lock()
	defer c.execMu.Unlock()
	c.placeSerialLocked(cp.tr.segs)
	return c.runScheduleLocked(cp)
}

// runScheduleLocked executes one replay of cp on the comm's backend —
// the full schedule on the functional backend, the precomputed charge
// trace on the cost-only backend — publishes the rooted results, and
// returns them with the run's breakdown. The single execution block
// shared by the serial (run) and asynchronous (execSubmitted) paths, so
// the two cannot drift apart in accounting. Callers hold execMu.
func (c *Comm) runScheduleLocked(cp *CompiledPlan) ([][]byte, cost.Breakdown) {
	if t := cp.owner; t != nil {
		// Attribute every charge of this run to the owning tenant: the
		// recorder mirrors each meter addition — same operands, same
		// order — into the tenant's meter, so a tenant's meter evolves
		// bit-identically to running its workload alone (tenant.go).
		m := c.h.Meter()
		m.SetRecorder(func(cat cost.Category, t2 cost.Seconds) { t.meter.Add(cat, t2) })
		defer m.SetRecorder(nil)
	}
	before := c.h.Meter().Snapshot()
	if c.backend.Functional() {
		cp.out = nil
		c.execute(cp.sched)
	} else {
		m := c.h.Meter()
		for _, e := range cp.tr.adds {
			m.Add(e.Cat, e.T)
		}
		c.h.ApplyStats(cp.tr.stats)
	}
	bd := c.h.Meter().Snapshot().Sub(before)
	cp.lastOut = cp.out
	return cp.out, bd
}

// traceSchedule captures sched's charge trace: a cost-only execution on
// a scratch host with a recording meter. The scratch host shares the
// comm's system geometry and cost parameters but none of its state, so
// tracing never perturbs the comm's meter or statistics.
func (c *Comm) traceSchedule(sched *Schedule) *chargeTrace {
	scratch := host.New(c.hc.sys, c.h.Params())
	tr := &chargeTrace{}
	scratch.Meter().SetRecorder(func(cat cost.Category, t cost.Seconds) {
		tr.adds = append(tr.adds, cost.TraceEntry{Cat: cat, T: t})
	})
	c.executeOn(CostBackend(), scratch, sched)
	scratch.Meter().SetRecorder(nil)
	tr.stats = scratch.Stats()
	tr.total = scratch.Meter().Snapshot()
	// Replay fidelity invariant: the recorder only observes Add/AddBytes,
	// so if any execution path ever drives the meter through Merge/Scale
	// the trace would silently undercount. Re-summing the trace must
	// reproduce the meter bit-for-bit (same operands, same order).
	check := cost.NewMeter()
	for _, e := range tr.adds {
		check.Add(e.Cat, e.T)
	}
	if check.Snapshot() != tr.total {
		panic(fmt.Sprintf("core: charge trace of %s does not reproduce its meter (an execution path bypassed Add?)", sched.Name))
	}
	tr.segs = cost.SegmentsOf(tr.adds)
	return tr
}

// hostInput reports whether the primitive consumes host-side buffers,
// which a compiled schedule captures by reference.
func hostInput(p Primitive) bool { return p == Scatter || p == Broadcast }

// compiledPlan returns the plan for spec, lowering and tracing on a
// cache miss. Host-input primitives are compiled fresh every call —
// their schedules capture the caller's buffer slices — but share the
// cached charge trace, which depends only on the call shape; everything
// else is cached whole, so a repeated signature is a map lookup. With
// fusion enabled the lowered schedule goes through the peephole passes
// (fuse.go) before tracing, so the cached charge trace is the fused one.
func (c *Comm) compiledPlan(spec planSpec) *CompiledPlan {
	c.compMu.Lock()
	defer c.compMu.Unlock()
	key := spec.key
	key.fused = c.fuse.enabled()
	if !spec.hostBufs {
		if cp, ok := c.compiled[key]; ok {
			c.cacheSt.PlanHits++
			c.cacheSt.TraceHits++
			return cp
		}
	}
	c.cacheSt.PlanMisses++
	cp := &CompiledPlan{c: c, key: key, regs: spec.regs}
	cp.sched = spec.lower(cp)
	cp.fusion = c.fuseLocked(cp.sched)
	if tr, ok := c.traces[key]; ok {
		c.cacheSt.TraceHits++
		cp.tr = tr
	} else {
		c.cacheSt.TraceMisses++
		cp.tr = c.traceSchedule(cp.sched)
		c.traces[key] = cp.tr
	}
	c.finishFusionLocked(cp)
	if !spec.hostBufs {
		c.compiled[key] = cp
	}
	return cp
}

// fuseLocked applies the fusion pipeline to sched in place (no-op at
// FuseOff) and returns the pass report with its CostBefore filled in:
// when a pass changed the schedule, the unfused form is traced first so
// the report can quote the per-run saving. Callers hold compMu.
func (c *Comm) fuseLocked(sched *Schedule) FusionReport {
	if !c.fuse.enabled() {
		return FusionReport{StepsBefore: len(sched.Steps), StepsAfter: len(sched.Steps)}
	}
	fused, rep := fuseSteps(sched.Steps)
	if rep.Changed() {
		rep.CostBefore = c.traceSchedule(sched).total
		sched.Steps = fused
	}
	return rep
}

// finishFusionLocked completes a plan's fusion report once its (fused)
// charge trace exists and folds it into the comm's aggregate statistics.
// Callers hold compMu.
func (c *Comm) finishFusionLocked(cp *CompiledPlan) {
	cp.fusion.CostAfter = cp.tr.total
	if !cp.fusion.Changed() {
		cp.fusion.CostBefore = cp.tr.total
	}
	if c.fuse.enabled() {
		c.fuseSt.add(cp.fusion)
	}
}

// compiledSequence compiles a multi-collective sequence: the members'
// schedules are lowered fresh, concatenated into one schedule, run
// through the fusion pipeline — which is where cross-collective rewrites
// (interior sync elision, inverse rotate/unrotate cancellation across
// plan boundaries, epoch coalescing) happen — and traced as a single
// plan. Sequences with no host-input member are cached by their member
// signatures; each member's unfused cost is traced for attribution.
func (c *Comm) compiledSequence(specs []planSpec) *CompiledPlan {
	c.compMu.Lock()
	defer c.compMu.Unlock()
	cacheable := true
	var sb strings.Builder
	for _, sp := range specs {
		if sp.hostBufs {
			cacheable = false
		}
		fmt.Fprintf(&sb, "%+v;", sp.key)
	}
	fmt.Fprintf(&sb, "fuse=%v", c.fuse.enabled())
	seqKey := sb.String()
	if cacheable {
		if cp, ok := c.seqPlans[seqKey]; ok {
			c.cacheSt.PlanHits++
			c.cacheSt.TraceHits++
			return cp
		}
	}
	c.cacheSt.PlanMisses++
	c.cacheSt.TraceMisses++

	cp := &CompiledPlan{c: c, key: specs[0].key}
	cp.key.fused = c.fuse.enabled()
	cp.members = make([]Primitive, len(specs))
	cp.memberCosts = make([]cost.Breakdown, len(specs))
	sched := &Schedule{}
	names := make([]string, len(specs))
	for i, sp := range specs {
		ms := sp.lower(cp)
		names[i] = ms.Name
		cp.memberCosts[i] = c.traceSchedule(ms).total
		cp.members[i] = sp.key.prim
		sched.Steps = append(sched.Steps, ms.Steps...)
		cp.regs.reads = append(cp.regs.reads, sp.regs.reads...)
		cp.regs.writes = append(cp.regs.writes, sp.regs.writes...)
	}
	sched.Name = "Seq(" + strings.Join(names, "+") + ")"
	cp.sched = sched
	cp.fusion = c.fuseLocked(sched)
	cp.tr = c.traceSchedule(sched)
	c.finishFusionLocked(cp)
	if cacheable {
		c.seqPlans[seqKey] = cp
	}
	return cp
}

// PlanCacheStats reports the compiled-plan cache's behavior and memory
// footprint (cmd/pidinfo surfaces it). Hit/miss counters are cumulative
// over the Comm's lifetime — ClearPlanCache drops the cached entries but
// keeps the counters.
type PlanCacheStats struct {
	// PlanHits and PlanMisses count whole-plan cache lookups. A miss
	// pays validation, lowering, and (unless the trace is shared) charge
	// tracing. Host-input primitives (Scatter, Broadcast) always miss —
	// their schedules bind caller buffers — but still share traces.
	PlanHits, PlanMisses uint64
	// TraceHits and TraceMisses count charge-trace lookups; a trace
	// depends only on the call shape, so host-input plans hit here even
	// though they miss the plan cache.
	TraceHits, TraceMisses uint64
	// CachedPlans and CachedTraces are the live entry counts;
	// CachedSeqs counts cached CompileSequence plans.
	CachedPlans, CachedTraces, CachedSeqs int
	// TraceEntries is the total recorded meter additions across cached
	// traces; TraceBytes approximates their memory footprint.
	TraceEntries int64
	TraceBytes   int64
}

// PlanCacheStats returns a snapshot of the compiled-plan cache counters
// and memory accounting.
func (c *Comm) PlanCacheStats() PlanCacheStats {
	c.compMu.Lock()
	defer c.compMu.Unlock()
	st := c.cacheSt
	st.CachedPlans = len(c.compiled)
	st.CachedTraces = len(c.traces)
	st.CachedSeqs = len(c.seqPlans)
	for _, tr := range c.traces {
		st.TraceEntries += int64(len(tr.adds))
		st.TraceBytes += tr.memBytes()
	}
	for _, cp := range c.seqPlans {
		st.TraceEntries += int64(len(cp.tr.adds))
		st.TraceBytes += cp.tr.memBytes()
	}
	return st
}

// ClearPlanCache drops every compiled plan and charge trace. Plans
// already handed out remain valid; the next Compile of each signature
// pays the full lowering+tracing cost again (the bench replay experiment
// uses this to measure the cold path). Cumulative hit/miss counters are
// preserved.
//
// ClearPlanCache is a barrier: it flushes the submission queue before
// evicting, so an in-flight asynchronous submission can never observe
// the cache being swapped out from under the plan it is about to replay
// (nor race a concurrent Compile repopulating the maps mid-eviction).
func (c *Comm) ClearPlanCache() {
	c.Flush()
	c.compMu.Lock()
	defer c.compMu.Unlock()
	c.compiled = make(map[planKey]*CompiledPlan)
	c.traces = make(map[planKey]*chargeTrace)
	c.seqPlans = make(map[string]*CompiledPlan)
}

// checkInPlace rejects in-place (srcOff == dstOff) calls at levels whose
// streaming engine cannot run them. Only AlltoAll supports in-place
// operation, and only on the staged bulk paths (Baseline/PR): the full
// host staging buffer decouples every read from every write. The
// optimized levels (IM/CM) stream block columns and overwrite destination
// blocks before later source blocks are read, so they are inapplicable —
// Auto skips them and picks the cheapest applicable level.
func checkInPlace(prim Primitive, eff Level, inPlace bool) error {
	if !inPlace {
		return nil
	}
	if eff >= IM {
		return fmt.Errorf("core: %v/%v cannot run in place: the streaming engine overwrites source blocks before reading them; use Baseline, PR or Auto", prim.LongName(), eff)
	}
	return nil
}

// ---------------------------------------------------------------------
// Positional compile shims (one per primitive): each builds a Collective
// descriptor and funnels into Comm.Compile. All of them are deprecated —
// new code should build the Collective descriptor directly; they remain
// only so the paper-figure harness reads like the original library. The
// last internal layer that used them (internal/multihost) now goes
// through descriptors via the cluster layer.
// ---------------------------------------------------------------------

// CompileAlltoAll compiles an AlltoAll call (see Comm.AlltoAll for the
// call semantics). srcOff == dstOff compiles an in-place AlltoAll, which
// only the staged levels (Baseline/PR) support.
//
// Deprecated: build a Collective descriptor and call Comm.Compile.
func (c *Comm) CompileAlltoAll(dims string, srcOff, dstOff, bytesPerPE int, lvl Level) (*CompiledPlan, error) {
	return c.Compile(Collective{Prim: AlltoAll, Dims: dims,
		Src: Span(srcOff, bytesPerPE), Dst: At(dstOff), Level: lvl})
}

// CompileReduceScatter compiles a ReduceScatter call.
//
// Deprecated: build a Collective descriptor and call Comm.Compile.
func (c *Comm) CompileReduceScatter(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (*CompiledPlan, error) {
	return c.Compile(Collective{Prim: ReduceScatter, Dims: dims,
		Src: Span(srcOff, bytesPerPE), Dst: At(dstOff), Elem: t, Op: op, Level: lvl})
}

// CompileAllReduce compiles an AllReduce call.
//
// Deprecated: build a Collective descriptor and call Comm.Compile.
func (c *Comm) CompileAllReduce(dims string, srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (*CompiledPlan, error) {
	return c.Compile(Collective{Prim: AllReduce, Dims: dims,
		Src: Span(srcOff, bytesPerPE), Dst: At(dstOff), Elem: t, Op: op, Level: lvl})
}

// CompileAllGather compiles an AllGather call.
//
// Deprecated: build a Collective descriptor and call Comm.Compile.
func (c *Comm) CompileAllGather(dims string, srcOff, dstOff, bytesPerPE int, lvl Level) (*CompiledPlan, error) {
	return c.Compile(Collective{Prim: AllGather, Dims: dims,
		Src: Span(srcOff, bytesPerPE), Dst: At(dstOff), Level: lvl})
}

// CompileGather compiles a rooted Gather; each Run leaves the per-group
// results in Results.
//
// Deprecated: build a Collective descriptor and call Comm.Compile.
func (c *Comm) CompileGather(dims string, srcOff, bytesPerPE int, lvl Level) (*CompiledPlan, error) {
	return c.Compile(Collective{Prim: Gather, Dims: dims,
		Src: Span(srcOff, bytesPerPE), Level: lvl})
}

// CompileReduce compiles a rooted Reduce; each Run leaves the per-group
// results in Results.
//
// Deprecated: build a Collective descriptor and call Comm.Compile.
func (c *Comm) CompileReduce(dims string, srcOff, bytesPerPE int, t elem.Type, op elem.Op, lvl Level) (*CompiledPlan, error) {
	return c.Compile(Collective{Prim: Reduce, Dims: dims,
		Src: Span(srcOff, bytesPerPE), Elem: t, Op: op, Level: lvl})
}

// CompileScatter compiles a Scatter call bound to bufs: each Run reads
// the buffers' current contents, so iterative callers refill the same
// slices between runs. On a cost-only backend bufs may be nil.
//
// Deprecated: build a Collective descriptor and call Comm.Compile.
func (c *Comm) CompileScatter(dims string, bufs [][]byte, dstOff, bytesPerPE int, lvl Level) (*CompiledPlan, error) {
	return c.Compile(Collective{Prim: Scatter, Dims: dims,
		Hosts: bufs, Dst: Span(dstOff, bytesPerPE), Level: lvl})
}

// CompileBroadcast compiles a Broadcast call bound to bufs (one payload
// per communication group): each Run reads the buffers' current
// contents.
//
// Deprecated: build a Collective descriptor and call Comm.Compile.
func (c *Comm) CompileBroadcast(dims string, bufs [][]byte, dstOff int, lvl Level) (*CompiledPlan, error) {
	return c.Compile(Collective{Prim: Broadcast, Dims: dims,
		Hosts: bufs, Dst: At(dstOff), Level: lvl})
}
