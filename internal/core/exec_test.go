package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// costSystem builds a cost-only comm on a phantom system (no MRAM is
// allocated, and any byte access panics — proving the cost backend never
// touches data).
func costSystem(t *testing.T, geo dram.Geometry, shape []int) *Comm {
	t.Helper()
	sys, err := dram.NewPhantomSystem(geo)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHypercube(sys, shape)
	if err != nil {
		t.Fatal(err)
	}
	return NewCostComm(hc, cost.DefaultParams())
}

// diffBreakdowns returns a description of the first differing category,
// or "" if the breakdowns are bit-identical.
func diffBreakdowns(a, b cost.Breakdown) string {
	for _, cat := range cost.Categories() {
		if a.Get(cat) != b.Get(cat) {
			return fmt.Sprintf("%v: functional=%v cost=%v", cat, a.Get(cat), b.Get(cat))
		}
	}
	return ""
}

// runOnBackend executes one primitive call on the given comm and returns
// its breakdown. For the functional comm, PE source regions are filled
// with deterministic data first; the cost comm runs the identical call
// signature with no data.
func runOnBackend(t *testing.T, c *Comm, prim Primitive, dims string, lvl Level, s int) cost.Breakdown {
	t.Helper()
	p, err := c.plan(dims)
	if err != nil {
		t.Fatal(err)
	}
	functional := c.Backend().Functional()
	m := p.n * s
	fill := func(n int) {
		if functional {
			fillSrcComm(c, 0, n, 11)
		}
	}
	hostBufs := func(perGroup int) [][]byte {
		bufs := make([][]byte, len(p.groups))
		rng := rand.New(rand.NewSource(6))
		for g := range bufs {
			bufs[g] = make([]byte, perGroup)
			if functional {
				rng.Read(bufs[g])
			}
		}
		return bufs
	}
	var bd cost.Breakdown
	switch prim {
	case AlltoAll:
		fill(m)
		bd, err = c.AlltoAll(dims, 0, 2*m, m, lvl)
	case ReduceScatter:
		fill(m)
		bd, err = c.ReduceScatter(dims, 0, 2*m, m, elem.I32, elem.Sum, lvl)
	case AllReduce:
		fill(m)
		bd, err = c.AllReduce(dims, 0, 2*m, m, elem.I32, elem.Sum, lvl)
	case AllGather:
		fill(s)
		bd, err = c.AllGather(dims, 0, 2*s, s, lvl)
	case Scatter:
		bd, err = c.Scatter(dims, hostBufs(p.n*s), 0, s, lvl)
	case Gather:
		fill(s)
		_, bd, err = c.Gather(dims, 0, s, lvl)
	case Reduce:
		fill(m)
		_, bd, err = c.Reduce(dims, 0, m, elem.I32, elem.Sum, lvl)
	case Broadcast:
		bd, err = c.Broadcast(dims, hostBufs(s), 0, lvl)
	default:
		t.Fatalf("unknown primitive %v", prim)
	}
	if err != nil {
		t.Fatalf("%v/%v on %s backend: %v", prim, lvl, c.Backend().Name(), err)
	}
	return bd
}

// TestCostBackendMatchesFunctional pins the refactor's core guarantee:
// for every primitive x level x a set of irregular hypercube shapes x
// block sizes (including odd multiples of the burst grain, which pin the
// shared rotate-blocks instruction rounding), the cost-only backend's
// breakdown — computed on a phantom system with no MRAM — is
// bit-identical to the functional backend's, and so are the cumulative
// bus-transfer statistics.
func TestCostBackendMatchesFunctional(t *testing.T) {
	shapes := []caseSpec{
		{"2D-x", geo64, []int{8, 8}, "10"},
		{"2D-subEG-y", geo64, []int{4, 16}, "01"},
		{"3D-xz", geo64, []int{4, 2, 8}, "101"},
		{"nonpow2-strided", geo24, []int{4, 6}, "01"},
	}
	for _, tc := range shapes {
		for _, prim := range Primitives() {
			for _, lvl := range Levels() {
				for _, s := range []int{16, 24, 40} {
					t.Run(fmt.Sprintf("%s/%v/%v/s%d", tc.name, prim, lvl, s), func(t *testing.T) {
						fc := testSystem(t, tc.geo, tc.shape)
						cc := costSystem(t, tc.geo, tc.shape)
						fbd := runOnBackend(t, fc, prim, tc.dims, lvl, s)
						cbd := runOnBackend(t, cc, prim, tc.dims, lvl, s)
						if d := diffBreakdowns(fbd, cbd); d != "" {
							t.Errorf("breakdown mismatch: %s", d)
						}
						fs, cs := fc.Host().Stats(), cc.Host().Stats()
						if fs.Bursts != cs.Bursts || fs.TotalBytes() != cs.TotalBytes() {
							t.Errorf("bus stats mismatch: functional %d bursts/%d B, cost %d bursts/%d B",
								fs.Bursts, fs.TotalBytes(), cs.Bursts, cs.TotalBytes())
						}
					})
				}
			}
		}
	}
}

// The cost backend must accept nil Scatter buffers (sizes are implied),
// which is what AutoLevel dry runs rely on.
func TestCostBackendScatterNilBufs(t *testing.T) {
	cc := costSystem(t, geo64, []int{8, 8})
	fc := testSystem(t, geo64, []int{8, 8})
	p, _ := fc.plan("10")
	s := 16
	bufs := make([][]byte, len(p.groups))
	for g := range bufs {
		bufs[g] = make([]byte, p.n*s)
	}
	for _, lvl := range []Level{Baseline, IM} {
		want, err := fc.Scatter("10", bufs, 0, s, lvl)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cc.Scatter("10", nil, 0, s, lvl)
		if err != nil {
			t.Fatal(err)
		}
		if d := diffBreakdowns(want, got); d != "" {
			t.Errorf("%v: %s", lvl, d)
		}
	}
	// The functional backend must still reject nil buffers.
	if _, err := fc.Scatter("10", nil, 0, s, IM); err == nil {
		t.Error("functional Scatter accepted nil buffers")
	}
}

// AllReduceTopo's structural comparators must also run cost-only.
func TestCostBackendTopoComparators(t *testing.T) {
	for _, topo := range []Topology{TopoHypercube, TopoRing, TopoTree} {
		fc := testSystem(t, geo64, []int{8, 8})
		cc := costSystem(t, geo64, []int{8, 8})
		m := 8 * 16
		fillSrcComm(fc, 0, m, 21)
		want, err := fc.AllReduceTopo(topo, "10", 0, 2*m, m, elem.I32, elem.Sum)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cc.AllReduceTopo(topo, "10", 0, 2*m, m, elem.I32, elem.Sum)
		if err != nil {
			t.Fatal(err)
		}
		if d := diffBreakdowns(want, got); d != "" {
			t.Errorf("%v: %s", topo, d)
		}
	}
}
