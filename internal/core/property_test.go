package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// AlltoAll is an involution: applying it twice restores the original
// placement (dst[j][i] = src[i][j] twice over). This exercises the
// full pipeline — including the destructive in-place pre-rotation —
// because the second call consumes the first call's output.
func TestAlltoAllInvolution(t *testing.T) {
	for _, lvl := range Levels() {
		c := testSystem(t, geo64, []int{8, 8})
		p, _ := c.plan("10")
		m := p.n * 24
		in := fillSrc(c, 0, m, 55)
		if _, err := c.AlltoAll("10", 0, 2*m, m, lvl); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AlltoAll("10", 2*m, 4*m, m, lvl); err != nil {
			t.Fatal(err)
		}
		for pe := 0; pe < 64; pe++ {
			if !bytes.Equal(c.GetPEBuffer(pe, 4*m, m), in[pe]) {
				t.Fatalf("%v: double AlltoAll != identity at PE %d", lvl, pe)
			}
		}
	}
}

// Broadcast then Gather returns n copies of each group's payload.
func TestBroadcastGatherRoundTrip(t *testing.T) {
	c := testSystem(t, geo64, []int{4, 16})
	p, _ := c.plan("01")
	s := 48
	rng := rand.New(rand.NewSource(2))
	bufs := make([][]byte, len(p.groups))
	for g := range bufs {
		bufs[g] = make([]byte, s)
		rng.Read(bufs[g])
	}
	if _, err := c.Broadcast("01", bufs, 0, CM); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Gather("01", 0, s, IM)
	if err != nil {
		t.Fatal(err)
	}
	for g := range bufs {
		for r := 0; r < p.n; r++ {
			if !bytes.Equal(got[g][r*s:(r+1)*s], bufs[g]) {
				t.Fatalf("group %d rank %d does not hold the broadcast payload", g, r)
			}
		}
	}
}

// Reduce must equal the elementwise fold of Gather's result.
func TestReduceEqualsFoldedGather(t *testing.T) {
	c := testSystem(t, geo64, []int{4, 2, 8})
	p, _ := c.plan("101")
	s := 8
	m := p.n * s
	fillSrc(c, 0, m, 71)
	gathered, _, err := c.Gather("101", 0, m, IM)
	if err != nil {
		t.Fatal(err)
	}
	reduced, _, err := c.Reduce("101", 0, m, elem.I32, elem.Sum, IM)
	if err != nil {
		t.Fatal(err)
	}
	for g := range reduced {
		want := make([]byte, m)
		elem.Fill(elem.I32, want, 0)
		for r := 0; r < p.n; r++ {
			elem.ReduceInto(elem.I32, elem.Sum, want, gathered[g][r*m:(r+1)*m])
		}
		if !bytes.Equal(reduced[g], want) {
			t.Fatalf("group %d: Reduce != fold(Gather)", g)
		}
	}
}

// AllReduce equals ReduceScatter followed by AllGather (the composition
// PID-Comm fuses, § V-B3).
func TestAllReduceEqualsRSThenAG(t *testing.T) {
	mk := func() (*Comm, int) {
		c := testSystem(t, geo64, []int{8, 8})
		p, _ := c.plan("01")
		return c, p.n
	}
	c1, n := mk()
	s := 16
	m := n * s
	in := fillSrc(c1, 0, m, 88)
	if _, err := c1.AllReduce("01", 0, 2*m, m, elem.I32, elem.Sum, IM); err != nil {
		t.Fatal(err)
	}
	c2, _ := mk()
	for pe := range in {
		c2.SetPEBuffer(pe, 0, in[pe])
	}
	if _, err := c2.ReduceScatter("01", 0, 2*m, m, elem.I32, elem.Sum, IM); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.AllGather("01", 2*m, 4*m, s, IM); err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 64; pe++ {
		if !bytes.Equal(c1.GetPEBuffer(pe, 2*m, m), c2.GetPEBuffer(pe, 4*m, m)) {
			t.Fatalf("AR != RS+AG at PE %d", pe)
		}
	}
}

// Randomized property check over shapes, dims, block sizes and levels:
// AlltoAll always matches the reference model.
func TestAlltoAllQuickProperty(t *testing.T) {
	shapes := []struct {
		shape []int
		dims  []string
	}{
		{[]int{64}, []string{"1"}},
		{[]int{8, 8}, []string{"10", "01", "11"}},
		{[]int{4, 16}, []string{"10", "01"}},
		{[]int{2, 4, 8}, []string{"100", "010", "001", "110", "011", "101"}},
	}
	f := func(pick, dimPick, sizePick uint8, seed int64) bool {
		sc := shapes[int(pick)%len(shapes)]
		dims := sc.dims[int(dimPick)%len(sc.dims)]
		lvl := Levels()[int(seed&3)]
		c := testSystem(t, geo64, sc.shape)
		p, err := c.plan(dims)
		if err != nil {
			return false
		}
		s := 8 * (1 + int(sizePick)%3)
		m := p.n * s
		in := fillSrc(c, 0, m, seed)
		if _, err := c.AlltoAll(dims, 0, 2*m, m, lvl); err != nil {
			return false
		}
		for _, grp := range p.groups {
			want := RefAlltoAll(groupInputs(in, grp), s)
			for j, pe := range grp {
				if !bytes.Equal(c.GetPEBuffer(pe, 2*m, m), want[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Randomized property: ReduceScatter matches the reference for every
// type/op pairing.
func TestReduceScatterQuickProperty(t *testing.T) {
	f := func(typPick, opPick, lvlPick uint8, seed int64) bool {
		typ := elem.Types()[int(typPick)%4]
		op := elem.Ops()[int(opPick)%6]
		lvl := []Level{Baseline, PR, IM}[int(lvlPick)%3]
		c := testSystem(t, geo64, []int{8, 8})
		p, _ := c.plan("10")
		s := 16
		m := p.n * s
		in := fillSrc(c, 0, m, seed)
		if _, err := c.ReduceScatter("10", 0, 2*m, m, typ, op, lvl); err != nil {
			return false
		}
		for _, grp := range p.groups {
			want := RefReduceScatter(typ, op, groupInputs(in, grp), s)
			for j, pe := range grp {
				if !bytes.Equal(c.GetPEBuffer(pe, 2*m, s), want[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Multi-instance invocations on different dims must compose: running an
// x-axis collective then a y-axis collective is the 2-D decomposition
// apps use (Algorithm 1).
func TestAlternatingDimsComposition(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	px, _ := c.plan("10")
	py, _ := c.plan("01")
	s := 8
	m := 8 * s
	in := fillSrc(c, 0, m, 13)

	// RS along x, then AG along y on the results.
	if _, err := c.ReduceScatter("10", 0, 2*m, m, elem.I32, elem.Sum, IM); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllGather("01", 2*m, 4*m, s, IM); err != nil {
		t.Fatal(err)
	}
	// Expected: per x-group RS result, then per y-group concatenation.
	rsOut := make([][]byte, 64)
	for _, grp := range px.groups {
		want := RefReduceScatter(elem.I32, elem.Sum, groupInputs(in, grp), s)
		for j, pe := range grp {
			rsOut[pe] = want[j]
		}
	}
	for _, grp := range py.groups {
		want := RefAllGather(groupInputs(rsOut, grp))
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, 4*m, 8*s), want[j]) {
				t.Fatalf("composition mismatch at PE %d", pe)
			}
		}
	}
}

// The DSA-offload what-if (§ IX-B) must speed up the optimized paths and
// leave results untouched.
func TestDSAOffloadSpeedsUpWithoutChangingResults(t *testing.T) {
	run := func(dsa bool) ([]byte, float64) {
		sys, err := dram.NewSystem(dram.Geometry{Channels: 1, RanksPerChannel: 4, BanksPerChip: 8, MramPerBank: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		hc, err := NewHypercube(sys, []int{16, 16})
		if err != nil {
			t.Fatal(err)
		}
		params := cost.DefaultParams()
		params.DSAOffload = dsa
		c := NewComm(hc, params)
		m := 16 * 1024
		fillSrcComm(c, 0, m, 3)
		bd, err := c.ReduceScatter("10", 0, 2*m, m, elem.I32, elem.Sum, IM)
		if err != nil {
			t.Fatal(err)
		}
		var all []byte
		for pe := 0; pe < 256; pe++ {
			all = append(all, c.GetPEBuffer(pe, 2*m, 1024)...)
		}
		return all, float64(bd.Total())
	}
	plain, tPlain := run(false)
	dsa, tDSA := run(true)
	if !bytes.Equal(plain, dsa) {
		t.Fatal("DSA offload changed functional results")
	}
	if tDSA >= tPlain {
		t.Errorf("DSA offload did not speed up: %v vs %v", tDSA, tPlain)
	}
}

// AutoLevel property: the auto-picked level is never costlier than any
// fixed level for the same call, across primitives, shapes and element
// types — on the cost model that both backends share bit-for-bit.
func TestAutoLevelNeverCostlier(t *testing.T) {
	type combo struct {
		prim  Primitive
		shape []int
		dims  string
		et    elem.Type
		op    elem.Op
	}
	combos := []combo{
		{AlltoAll, []int{8, 8}, "10", elem.I32, elem.Sum},
		{AlltoAll, []int{4, 2, 8}, "101", elem.I32, elem.Sum},
		{ReduceScatter, []int{8, 8}, "01", elem.I8, elem.Max},
		{AllReduce, []int{4, 16}, "01", elem.I32, elem.Sum},
		{AllGather, []int{8, 8}, "10", elem.I32, elem.Sum},
		{Scatter, []int{8, 8}, "10", elem.I32, elem.Sum},
		{Gather, []int{64}, "1", elem.I32, elem.Sum},
		{Reduce, []int{8, 8}, "11", elem.I16, elem.Min},
	}
	for _, cb := range combos {
		for _, blocks := range []int{1, 8} {
			c := testSystem(t, geo64, cb.shape)
			p, err := c.plan(cb.dims)
			if err != nil {
				t.Fatal(err)
			}
			bytesPerPE := p.n * 8 * blocks // always block-divisible
			t.Run(fmt.Sprintf("%v/%s/%d", cb.prim, cb.dims, bytesPerPE), func(t *testing.T) {
				auto, err := c.AutoLevel(cb.prim, cb.dims, bytesPerPE, cb.et, cb.op)
				if err != nil {
					t.Fatal(err)
				}
				// Measure every fixed level on a fresh cost-only comm and
				// check the auto pick against the minimum.
				fixed := func(lvl Level) cost.Seconds {
					cc := NewCostComm(c.Hypercube(), cost.DefaultParams())
					cp, err := autoDryCompile(cc, cb.prim, cb.dims, bytesPerPE, cb.et, cb.op, AlgoReference, lvl, false)
					if err != nil {
						t.Fatal(err)
					}
					return cp.Cost().Total()
				}
				autoT := fixed(auto)
				for _, lvl := range Levels() {
					if got := fixed(lvl); autoT > got {
						t.Errorf("auto level %v costs %v, but %v costs %v", auto, autoT, lvl, got)
					}
				}
			})
		}
	}
}

// Collectives must accept the Auto sentinel directly and produce results
// identical to the concrete level AutoLevel reports.
func TestAutoSentinelMatchesFixedLevel(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	m := 8 * 32
	in := fillSrc(c, 0, m, 31)
	if _, err := c.AlltoAll("10", 0, 2*m, m, Auto); err != nil {
		t.Fatal(err)
	}
	picked, err := c.AutoLevel(AlltoAll, "10", m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := testSystem(t, geo64, []int{8, 8})
	for pe, b := range in {
		ref.SetPEBuffer(pe, 0, b)
	}
	if _, err := ref.AlltoAll("10", 0, 2*m, m, picked); err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 64; pe++ {
		if !bytes.Equal(c.GetPEBuffer(pe, 2*m, m), ref.GetPEBuffer(pe, 2*m, m)) {
			t.Fatalf("Auto result differs from fixed level %v at PE %d", picked, pe)
		}
	}
	// The decision must be cached: a second resolution hits the map.
	if again, _ := c.AutoLevel(AlltoAll, "10", m, 0, 0); again != picked {
		t.Errorf("cached AutoLevel changed: %v then %v", picked, again)
	}
}

func fillSrcComm(c *Comm, off, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	for pe := 0; pe < c.Hypercube().System().Geometry().NumPEs(); pe++ {
		rng.Read(buf)
		c.SetPEBuffer(pe, off, buf)
	}
}
