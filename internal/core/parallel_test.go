package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// This file pins the parallel functional backend's two contracts:
//
//   1. Determinism — the worker count is a pure throughput knob. MRAM
//      contents, rooted results, the cost meter, and the bus statistics
//      must be bit-for-bit identical at any ExecWorkers setting
//      (TestParallelDeterminism, also run under -race in CI to catch
//      shard overlap as a data race).
//   2. Zero-alloc replay — a warmed CompiledPlan.Run on the functional
//      backend allocates nothing in steady state on the streaming paths
//      (TestReplayAllocs*), so replay-heavy workloads never touch the
//      garbage collector.
//
// TestFuncSpeedup is the perf gate for the worker pool itself: >= 5x
// elapsed speedup at 8 workers on a full-scale functional fig14-shape
// collective. It needs real cores and skips on small machines; CI runs
// it where hardware allows, and `pidbench -exp funcspeed` tracks the
// ratio as a regression metric everywhere.

// execSig is everything observable about an execution that must not
// depend on the worker count.
type execSig struct {
	mram   []byte
	meter  cost.Breakdown
	bursts int64
	chans  []int64
	rooted []byte
}

func captureSig(c *Comm, mramBytes int, rooted []byte) execSig {
	numPE := c.Hypercube().System().Geometry().NumPEs()
	sig := execSig{meter: c.Meter().Snapshot(), rooted: rooted}
	for pe := 0; pe < numPE; pe++ {
		sig.mram = append(sig.mram, c.GetPEBuffer(pe, 0, mramBytes)...)
	}
	st := c.Host().Stats()
	sig.bursts = st.Bursts
	sig.chans = st.BytesPerChannel
	return sig
}

func diffSigs(t *testing.T, want, got execSig, label string) {
	t.Helper()
	if !bytes.Equal(got.mram, want.mram) {
		t.Errorf("%s: MRAM contents differ from workers=1", label)
	}
	if !bytes.Equal(got.rooted, want.rooted) {
		t.Errorf("%s: rooted results differ from workers=1", label)
	}
	if got.meter != want.meter {
		t.Errorf("%s: meter breakdown differs from workers=1:\n  want %v\n  got  %v", label, want.meter, got.meter)
	}
	if got.bursts != want.bursts {
		t.Errorf("%s: burst count %d, workers=1 counted %d", label, got.bursts, want.bursts)
	}
	if len(got.chans) != len(want.chans) {
		t.Fatalf("%s: channel count changed", label)
	}
	for ch := range want.chans {
		if got.chans[ch] != want.chans[ch] {
			t.Errorf("%s: channel %d traffic %d, workers=1 counted %d", label, ch, got.chans[ch], want.chans[ch])
		}
	}
}

// runParallelWorkload drives every primitive at every functional level
// the core tests exercise, with deterministic data, and returns the
// concatenated rooted results. Block sizes are deliberately not multiples
// of the worker counts under test so shard boundaries fall mid-group.
func runParallelWorkload(t *testing.T, c *Comm, dims string) []byte {
	t.Helper()
	p, err := c.plan(dims)
	if err != nil {
		t.Fatal(err)
	}
	var rooted []byte
	collect := func(bufs [][]byte) {
		for _, b := range bufs {
			rooted = append(rooted, b...)
		}
	}
	s := 16
	m := p.n * s
	for i, lvl := range Levels() {
		fillSrc(c, 0, m, int64(100+i))
		if _, err := c.AlltoAll(dims, 0, 2*m, m, lvl); err != nil {
			t.Fatal(err)
		}
	}
	for i, lvl := range []Level{Baseline, PR, IM} {
		fillSrc(c, 0, m, int64(200+i))
		if _, err := c.ReduceScatter(dims, 0, 2*m, m, elem.I32, elem.Sum, lvl); err != nil {
			t.Fatal(err)
		}
		fillSrc(c, 0, m, int64(300+i))
		if _, err := c.AllReduce(dims, 0, 2*m, m, elem.I16, elem.Max, lvl); err != nil {
			t.Fatal(err)
		}
		fillSrc(c, 0, m, int64(400+i))
		got, _, err := c.Reduce(dims, 0, m, elem.I32, elem.Sum, lvl)
		if err != nil {
			t.Fatal(err)
		}
		collect(got)
	}
	for i, lvl := range Levels() {
		fillSrc(c, 0, s, int64(500+i))
		if _, err := c.AllGather(dims, 0, 2*m, s, lvl); err != nil {
			t.Fatal(err)
		}
	}
	for i, lvl := range []Level{Baseline, IM} {
		rng := rand.New(rand.NewSource(int64(600 + i)))
		bufs := make([][]byte, len(p.groups))
		for g := range bufs {
			bufs[g] = make([]byte, p.n*s)
			rng.Read(bufs[g])
		}
		if _, err := c.Scatter(dims, bufs, 0, s, lvl); err != nil {
			t.Fatal(err)
		}
		got, _, err := c.Gather(dims, 0, s, lvl)
		if err != nil {
			t.Fatal(err)
		}
		collect(got)
	}
	rng := rand.New(rand.NewSource(700))
	bufs := make([][]byte, len(p.groups))
	for g := range bufs {
		bufs[g] = make([]byte, 2*s)
		rng.Read(bufs[g])
	}
	if _, err := c.Broadcast(dims, bufs, 64, IM); err != nil {
		t.Fatal(err)
	}
	return rooted
}

// TestParallelDeterminism runs the full primitive x level matrix on
// regular, sub-entangled-group, and irregular (non-power-of-two) shapes
// at several worker counts and requires byte-identical MRAM, rooted
// results, meter, and bus statistics. Shard-merge ordering bugs and
// write overlap both surface here (the latter also as a -race failure).
func TestParallelDeterminism(t *testing.T) {
	shapes := []caseSpec{
		{"2D-x", geo64, []int{8, 8}, "10"},
		{"2D-subEG-y", geo64, []int{4, 16}, "01"},
		{"3D-xz", geo64, []int{4, 2, 8}, "101"},
		{"nonpow2-x", geo24, []int{8, 3}, "10"},
		{"nonpow2-strided", geo24, []int{4, 6}, "01"},
	}
	workerCounts := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
	for _, tc := range shapes {
		t.Run(tc.name, func(t *testing.T) {
			var ref execSig
			for i, w := range workerCounts {
				c := testSystem(t, tc.geo, tc.shape)
				c.SetExecWorkers(w)
				if got := c.ExecWorkers(); got != w {
					t.Fatalf("ExecWorkers() = %d after SetExecWorkers(%d)", got, w)
				}
				rooted := runParallelWorkload(t, c, tc.dims)
				sig := captureSig(c, 4096, rooted)
				if i == 0 {
					ref = sig
					continue
				}
				diffSigs(t, ref, sig, fmt.Sprintf("workers=%d", w))
			}
		})
	}
}

func TestSetExecWorkersDefault(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	def := runtime.GOMAXPROCS(0)
	if got := c.ExecWorkers(); got != def {
		t.Errorf("default ExecWorkers() = %d, want GOMAXPROCS = %d", got, def)
	}
	c.SetExecWorkers(3)
	if got := c.ExecWorkers(); got != 3 {
		t.Errorf("ExecWorkers() = %d after SetExecWorkers(3)", got)
	}
	if got := c.Host().Workers(); got != 3 {
		t.Errorf("host Workers() = %d, want 3 (SetExecWorkers must mirror)", got)
	}
	c.SetExecWorkers(0)
	if got := c.ExecWorkers(); got != def {
		t.Errorf("ExecWorkers() = %d after reset, want %d", got, def)
	}
}

// replayAllocs compiles the plan, warms it (arenas, kernels, streaming
// contexts, timeline capacity), and measures steady-state heap
// allocations per Run.
func replayAllocs(t *testing.T, c *Comm, compile func() (*CompiledPlan, error)) float64 {
	t.Helper()
	cp, err := compile()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cp.Run(); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(20, func() {
		if _, err := cp.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestReplayAllocsStreaming pins the zero-alloc replay contract: a
// warmed streaming-path plan (IM/CM lower to rotate + column-stream
// steps only) allocates nothing per functional Run.
func TestReplayAllocsStreaming(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	c.SetExecWorkers(1)
	s := 16
	m := 8 * s
	fillSrc(c, 0, m, 9)
	if n := replayAllocs(t, c, func() (*CompiledPlan, error) {
		return c.CompileAlltoAll("10", 0, 2*m, m, IM)
	}); n != 0 {
		t.Errorf("streaming AlltoAll replay allocates %.1f objects/run, want 0", n)
	}
	if n := replayAllocs(t, c, func() (*CompiledPlan, error) {
		return c.CompileAlltoAll("10", 0, 2*m, m, CM)
	}); n != 0 {
		t.Errorf("streaming CM AlltoAll replay allocates %.1f objects/run, want 0", n)
	}
}

// TestReplayAllocsRooted: rooted streaming plans reuse their plan-owned
// result buffers (rootedBufs), so they hit zero too.
func TestReplayAllocsRooted(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	c.SetExecWorkers(1)
	s := 16
	m := 8 * s
	fillSrc(c, 0, m, 11)
	if n := replayAllocs(t, c, func() (*CompiledPlan, error) {
		return c.CompileReduce("10", 0, m, elem.I32, elem.Sum, IM)
	}); n != 0 {
		t.Errorf("rooted Reduce replay allocates %.1f objects/run, want 0", n)
	}
}

// TestReplayAllocsStaged: the staged bulk paths (Baseline/PR) spend a
// few closure allocations per Modulate on the group-parallel helpers;
// they must stay bounded and small, not creep back toward per-byte
// allocation.
func TestReplayAllocsStaged(t *testing.T) {
	c := testSystem(t, geo64, []int{8, 8})
	c.SetExecWorkers(1)
	s := 16
	m := 8 * s
	fillSrc(c, 0, m, 13)
	if n := replayAllocs(t, c, func() (*CompiledPlan, error) {
		return c.CompileAlltoAll("10", 0, 2*m, m, Baseline)
	}); n > 16 {
		t.Errorf("staged Baseline AlltoAll replay allocates %.1f objects/run, want <= 16", n)
	}
}

// TestFuncSpeedup is the gated perf pin for the worker pool: on a
// machine with >= 8 cores, a full-scale functional fig14-shape AlltoAll
// (1024 PEs, 64 KiB/PE, CM) must replay >= 5x faster at 8 workers than
// at 1. Skipped on smaller machines, where the pool cannot express the
// parallelism; `pidbench -exp funcspeed` tracks the ratio there.
func TestFuncSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale speedup measurement skipped in -short")
	}
	if n := runtime.NumCPU(); n < 8 {
		t.Skipf("speedup gate needs >= 8 CPUs to run 8 workers in parallel, have %d", n)
	}
	geo := dram.Geometry{Channels: 4, RanksPerChannel: 4, BanksPerChip: 8, MramPerBank: 1 << 18} // 1024 PEs
	c := testSystem(t, geo, []int{32, 32})
	m := 64 << 10
	fillSrc(c, 0, m, 1)
	cp, err := c.CompileAlltoAll("10", 0, 2*m, m, CM)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(workers int) time.Duration {
		c.SetExecWorkers(workers)
		if _, err := cp.Run(); err != nil { // warm at this worker count
			t.Fatal(err)
		}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if _, err := cp.Run(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(1)
	parallel := measure(8)
	speedup := float64(serial) / float64(parallel)
	t.Logf("functional fig14-scale AlltoAll/CM: serial %v, 8 workers %v, speedup %.2fx", serial, parallel, speedup)
	if speedup < 5 {
		t.Errorf("parallel functional backend speedup %.2fx at 8 workers, want >= 5x", speedup)
	}
}
