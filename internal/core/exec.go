package core

import (
	"repro/internal/cost"
	"repro/internal/dpu"
	"repro/internal/host"
	"repro/internal/par"
)

// Backend executes schedule steps against the simulated substrate. Two
// implementations exist:
//
//   - the functional backend moves real bytes through the simulated bank
//     MRAMs and host registers (semantics verified against the reference
//     model by the core tests), and
//   - the cost-only backend skips all data movement and only drives the
//     cost.Meter, reproducing the functional backend's breakdown
//     bit-for-bit at a tiny fraction of the work — the engine for
//     paper-scale sweeps and AutoLevel dry runs.
//
// Step charges declared in the schedule are applied by the shared
// executor for both backends, so the backends can only diverge on bus
// tallies and DPU-kernel accounting; exec_test.go pins those equal too.
type Backend interface {
	// Name identifies the backend ("functional" or "cost").
	Name() string
	// Functional reports whether the backend moves real bytes. When
	// false, rooted primitives return nil result buffers and host input
	// buffers are never dereferenced (only their sizes are validated).
	Functional() bool

	// Step handlers receive the host the execution accounts against: the
	// comm's own host normally, or a scratch host while a compilation
	// traces a schedule's charges (plan.go). Functional execution always
	// runs on the comm's own host — the step closures move bytes through
	// it directly.
	rotateBlocks(c *Comm, h *host.Host, st *StepRotateBlocks)
	bulk(c *Comm, h *host.Host, st *StepBulk)
	columnStream(c *Comm, h *host.Host, st *StepColumnStream)
}

// FunctionalBackend returns the byte-accurate backend (the default).
func FunctionalBackend() Backend { return functionalBackend{} }

// CostBackend returns the cost-only backend.
func CostBackend() Backend { return costBackend{} }

// execute runs a lowered schedule on the comm's backend against the
// comm's own host. Callers must hold execMu.
func (c *Comm) execute(sched *Schedule) { c.executeOn(c.backend, c.h, sched) }

// executeOn is the single execution loop every collective goes through:
// it runs sched's steps on backend b, accounting against host h.
func (c *Comm) executeOn(b Backend, h *host.Host, sched *Schedule) {
	for _, st := range sched.Steps {
		switch s := st.(type) {
		case *StepRotateBlocks:
			b.rotateBlocks(c, h, s)
		case *StepBulk:
			b.bulk(c, h, s)
		case *StepColumnStream:
			b.columnStream(c, h, s)
		case *StepHostCompute:
			if s.Run != nil && b.Functional() {
				s.Run()
			}
			applyCharges(h, s.Charges)
		case *StepNetTransfer:
			if s.Run != nil && b.Functional() {
				s.Run()
			}
			h.ChargeNetRounds(s.Rounds, s.Bytes)
		case *StepSync:
			h.ChargeSync()
		}
	}
}

// ---------------------------------------------------------------------
// Functional backend
// ---------------------------------------------------------------------

type functionalBackend struct{}

func (functionalBackend) Name() string     { return "functional" }
func (functionalBackend) Functional() bool { return true }

func (functionalBackend) rotateBlocks(c *Comm, h *host.Host, st *StepRotateBlocks) {
	if st.kern == nil {
		// Built lazily (under execMu) so steps synthesized by the fusion
		// pipeline (merged rotations) get a kernel too; cached on the
		// step so replays launch without rebuilding the closure.
		st.kern = rotateBlocksKernel(st)
	}
	pes, ranks := st.p.launchLists()
	c.eng.Launch(dpu.LaunchSpec{
		PEs:        pes,
		GroupRanks: ranks,
		Category:   cost.PEMod,
		Workers:    c.workers(),
	}, h.Meter(), st.kern)
}

func (functionalBackend) bulk(c *Comm, h *host.Host, st *StepBulk) {
	var stag []byte
	if st.Read {
		stag = h.BulkRead(c.allEGs(), st.ReadOff, st.ReadPerPE)
	}
	out := stag
	if st.Modulate != nil {
		out = st.Modulate(stag)
	}
	applyCharges(h, st.Charges)
	if st.Write {
		h.BulkWrite(c.allEGs(), st.WriteOff, out)
	}
}

// columnStream runs the epoch's segs in order: each seg's setup runs
// serially, then its column loop is sharded across the worker pool on
// per-shard streaming contexts, and the shard-local bus tallies merge
// deterministically before the next seg starts. The inter-seg barrier
// (par.Do returns only when every shard finished) preserves
// read-after-write dependencies between segs of fusion-coalesced epochs;
// everything still happens inside ONE bus epoch, so the charged bus time
// is identical to the serial engine's.
func (functionalBackend) columnStream(c *Comm, h *host.Host, st *StepColumnStream) {
	workers := c.workers()
	h.BeginXfer()
	for _, sg := range st.segs {
		if sg.setup != nil {
			sg.setup()
		}
		if sg.body == nil || sg.cols <= 0 {
			continue
		}
		shards := workers
		if shards > sg.cols {
			shards = sg.cols
		}
		c.ensureStreams(shards)
		par.Do(workers, sg.cols, sg)
		h.MergeShards()
	}
	h.EndXfer()
	applyCharges(h, st.Charges)
}

// ---------------------------------------------------------------------
// Cost-only backend
// ---------------------------------------------------------------------

type costBackend struct{}

func (costBackend) Name() string     { return "cost" }
func (costBackend) Functional() bool { return false }

func (costBackend) rotateBlocks(c *Comm, h *host.Host, st *StepRotateBlocks) {
	// Analytic accounting of the rotate-blocks kernel: a PE whose
	// rotation is zero exits immediately; every other PE does the work
	// rotateBlocksWork describes — exactly what the functional kernel
	// reports per PE (the helper is shared so the backends cannot drift,
	// including the instruction rounding for odd region sizes).
	pes, ranks := st.p.launchLists()
	m := st.N * st.S
	c.eng.LaunchCharges(dpu.LaunchSpec{
		PEs:        pes,
		GroupRanks: ranks,
		Category:   cost.PEMod,
	}, h.Meter(), func(_, rank int) (instr, mramBytes int64) {
		r := st.Rot(rank) % st.N
		if r < 0 {
			r += st.N
		}
		if r == 0 {
			return 0, 0
		}
		return rotateBlocksWork(m)
	})
}

func (costBackend) bulk(c *Comm, h *host.Host, st *StepBulk) {
	if st.Read {
		h.ChargeBulkRead(c.allEGs(), st.ReadPerPE)
	}
	applyCharges(h, st.Charges)
	if st.Write {
		h.ChargeBulkWrite(c.allEGs(), st.WritePerPE)
	}
}

func (costBackend) columnStream(c *Comm, h *host.Host, st *StepColumnStream) {
	h.BeginXfer()
	if ops := st.Reads + st.Writes; ops > 0 {
		nEG := c.hc.sys.Geometry().NumGroups()
		for g := 0; g < nEG; g++ {
			h.TallyBursts(g, ops)
		}
	}
	h.EndXfer()
	applyCharges(h, st.Charges)
}
