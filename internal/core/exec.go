package core

import (
	"repro/internal/cost"
	"repro/internal/dpu"
)

// Backend executes schedule steps against the simulated substrate. Two
// implementations exist:
//
//   - the functional backend moves real bytes through the simulated bank
//     MRAMs and host registers (semantics verified against the reference
//     model by the core tests), and
//   - the cost-only backend skips all data movement and only drives the
//     cost.Meter, reproducing the functional backend's breakdown
//     bit-for-bit at a tiny fraction of the work — the engine for
//     paper-scale sweeps and AutoLevel dry runs.
//
// Step charges declared in the schedule are applied by the shared
// executor for both backends, so the backends can only diverge on bus
// tallies and DPU-kernel accounting; exec_test.go pins those equal too.
type Backend interface {
	// Name identifies the backend ("functional" or "cost").
	Name() string
	// Functional reports whether the backend moves real bytes. When
	// false, rooted primitives return nil result buffers and host input
	// buffers are never dereferenced (only their sizes are validated).
	Functional() bool

	rotateBlocks(c *Comm, st *StepRotateBlocks)
	bulk(c *Comm, st *StepBulk)
	columnStream(c *Comm, st *StepColumnStream)
}

// FunctionalBackend returns the byte-accurate backend (the default).
func FunctionalBackend() Backend { return functionalBackend{} }

// CostBackend returns the cost-only backend.
func CostBackend() Backend { return costBackend{} }

// execute runs a lowered schedule on the comm's backend. This is the
// single execution loop every collective goes through.
func (c *Comm) execute(sched *Schedule) {
	for _, st := range sched.Steps {
		switch s := st.(type) {
		case *StepRotateBlocks:
			c.backend.rotateBlocks(c, s)
		case *StepBulk:
			c.backend.bulk(c, s)
		case *StepColumnStream:
			c.backend.columnStream(c, s)
		case *StepHostCompute:
			if s.Run != nil && c.backend.Functional() {
				s.Run()
			}
			c.applyCharges(s.Charges)
		case *StepSync:
			c.h.ChargeSync()
		}
	}
}

// ---------------------------------------------------------------------
// Functional backend
// ---------------------------------------------------------------------

type functionalBackend struct{}

func (functionalBackend) Name() string     { return "functional" }
func (functionalBackend) Functional() bool { return true }

func (functionalBackend) rotateBlocks(c *Comm, st *StepRotateBlocks) {
	c.launchRotateBlocks(st.p, st.Off, st.N, st.S, st.Rot)
}

func (functionalBackend) bulk(c *Comm, st *StepBulk) {
	var stag []byte
	if st.Read {
		stag = c.h.BulkRead(c.allEGs(), st.ReadOff, st.ReadPerPE)
	}
	out := stag
	if st.Modulate != nil {
		out = st.Modulate(stag)
	}
	c.applyCharges(st.Charges)
	if st.Write {
		c.h.BulkWrite(c.allEGs(), st.WriteOff, out)
	}
}

func (functionalBackend) columnStream(c *Comm, st *StepColumnStream) {
	c.h.BeginXfer()
	if st.Body != nil {
		st.Body()
	}
	c.h.EndXfer()
	c.applyCharges(st.Charges)
}

// ---------------------------------------------------------------------
// Cost-only backend
// ---------------------------------------------------------------------

type costBackend struct{}

func (costBackend) Name() string     { return "cost" }
func (costBackend) Functional() bool { return false }

func (costBackend) rotateBlocks(c *Comm, st *StepRotateBlocks) {
	// Analytic accounting of the rotate-blocks kernel: a PE whose
	// rotation is zero exits immediately; every other PE streams the
	// whole region in and out (2*N*S bytes of MRAM DMA) and spends ~1
	// instruction per 4 bytes on address arithmetic — exactly what the
	// functional kernel reports per PE.
	pes, ranks := st.p.launchLists()
	m := st.N * st.S
	c.eng.LaunchCharges(dpu.LaunchSpec{
		PEs:        pes,
		GroupRanks: ranks,
		Category:   cost.PEMod,
	}, c.h.Meter(), func(_, rank int) (instr, mramBytes int64) {
		r := st.Rot(rank) % st.N
		if r < 0 {
			r += st.N
		}
		if r == 0 {
			return 0, 0
		}
		return int64(m / 4), int64(2 * m)
	})
}

func (costBackend) bulk(c *Comm, st *StepBulk) {
	if st.Read {
		c.h.ChargeBulkRead(c.allEGs(), st.ReadPerPE)
	}
	c.applyCharges(st.Charges)
	if st.Write {
		c.h.ChargeBulkWrite(c.allEGs(), st.WritePerPE)
	}
}

func (costBackend) columnStream(c *Comm, st *StepColumnStream) {
	c.h.BeginXfer()
	if ops := st.Reads + st.Writes; ops > 0 {
		nEG := c.hc.sys.Geometry().NumGroups()
		for g := 0; g < nEG; g++ {
			c.h.TallyBursts(g, ops)
		}
	}
	c.h.EndXfer()
	c.applyCharges(st.Charges)
}
