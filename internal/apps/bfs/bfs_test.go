package bfs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
)

// testCfg uses 64 PEs on one channel: the smallest configuration in the
// paper's operating regime (>= 64 PEs per channel, where PE-assisted
// reordering's MRAM traffic is cheaper than the per-PE bus share).
func testCfg() Config {
	return Config{Graph: data.RMAT(4096, 16384, 6), PEs: 64, Source: 0}
}

func TestPIMMatchesCPU(t *testing.T) {
	cfg := testCfg()
	want, _, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []core.Level{core.Baseline, core.CM} {
		got, prof, err := RunPIM(cfg, lvl)
		if err != nil {
			t.Fatalf("%v: %v", lvl, err)
		}
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("%v: dist[%d] = %d, want %d", lvl, v, got[v], want[v])
			}
		}
		if prof.ByPrimitive[core.AllReduce] <= 0 {
			t.Errorf("%v: BFS must use AllReduce", lvl)
		}
	}
}

func TestUnreachableVerticesAreMinusOne(t *testing.T) {
	// A graph with an isolated region: build from an RMAT and add no fix;
	// RMAT graphs typically leave isolated vertices, verify some are -1
	// and the source is 0.
	cfg := testCfg()
	dist, _, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 0 {
		t.Errorf("source distance %d, want 0", dist[0])
	}
	anyUnreachable := false
	for _, d := range dist {
		if d == -1 {
			anyUnreachable = true
			break
		}
	}
	if !anyUnreachable {
		t.Skip("graph fully reachable; skip unreachable check")
	}
}

func TestDifferentSource(t *testing.T) {
	cfg := testCfg()
	cfg.Source = 17
	want, _, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestValidation(t *testing.T) {
	cfg := testCfg()
	cfg.PEs = 48 // does not divide 1024
	if _, _, err := RunPIM(cfg, core.CM); err == nil {
		t.Error("bad PE count accepted")
	}
	cfg = testCfg()
	cfg.Source = -1
	if _, _, err := RunPIM(cfg, core.CM); err == nil {
		t.Error("bad source accepted")
	}
	if _, _, err := RunCPU(cfg); err == nil {
		t.Error("bad source accepted by CPU")
	}
}

func TestCommDominatedProfile(t *testing.T) {
	// BFS is a communication-heavy benchmark (Figure 4): at optimization
	// Baseline the comm share should be substantial.
	_, prof, err := RunPIM(testCfg(), core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(prof.CommTotal()) / float64(prof.Total())
	if frac < 0.3 {
		t.Errorf("BFS baseline comm fraction %.2f, want >= 0.3", frac)
	}
}

func TestOptimizedBeatsBaselineComm(t *testing.T) {
	// A frontier bitmap large enough that AllReduce bandwidth terms
	// dominate the per-iteration launch overheads (LJ-scale).
	cfg := Config{Graph: data.RMAT(1<<16, 1<<18, 6), PEs: 64, Source: 0}
	_, base, err := RunPIM(cfg, core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	if opt.ByPrimitive[core.AllReduce] >= base.ByPrimitive[core.AllReduce] {
		t.Errorf("optimized AR (%v) should beat baseline (%v)",
			opt.ByPrimitive[core.AllReduce], base.ByPrimitive[core.AllReduce])
	}
}

func TestDefaultConfigRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("default config is large for -short")
	}
	cfg := DefaultConfig()
	want, _, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] mismatch", v)
		}
	}
}
