// Package bfs implements the breadth-first search benchmark (§ VII-C):
// vertices are range-partitioned across the PEs; every iteration each PE
// expands the global frontier over its owned vertices' edges into a
// next-frontier bitmap, and the bitmaps are combined with an OR AllReduce
// (1-D hypercube, Table III). Distances live with the owning PEs and are
// gathered at the end.
package bfs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/apps/appcore"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/dpu"
	"repro/internal/elem"
)

// Config sizes the BFS benchmark.
type Config struct {
	// GraphName selects the dataset: "LJ" or "LG" (Table III).
	GraphName string
	// Graph optionally overrides the named dataset.
	Graph *data.Graph
	// PEs is the PE count; must divide the vertex count.
	PEs int
	// Source is the BFS root vertex.
	Source int
}

// DefaultConfig returns the reproduction-scale configuration.
func DefaultConfig() Config { return Config{GraphName: "LG", PEs: 128, Source: 0} }

func (c Config) graph() *data.Graph {
	if c.Graph != nil {
		return c.Graph
	}
	return data.GraphByName(c.GraphName)
}

// RunPIM executes BFS on the simulated PIM system. It returns per-vertex
// distances (-1 for unreachable) and the execution profile.
func RunPIM(cfg Config, lvl core.Level) ([]int32, *appcore.Profile, error) {
	g := cfg.graph()
	N := cfg.PEs
	if g.V%N != 0 {
		return nil, nil, fmt.Errorf("bfs: %d vertices not divisible by %d PEs", g.V, N)
	}
	if cfg.Source < 0 || cfg.Source >= g.V {
		return nil, nil, fmt.Errorf("bfs: source %d out of range", cfg.Source)
	}
	owned := g.V / N

	// Bitmap region: padded up to a multiple of 8*N bytes so the OR
	// AllReduce's blocks stay 8-byte aligned for any PE count (zero
	// padding is neutral for OR).
	fB := g.V / 8
	if fB < 8*N {
		fB = 8 * N
	}
	fB = (fB + 8*N - 1) / (8 * N) * (8 * N)
	distB := (owned*4 + 7) &^ 7

	adjBufs, adjSz, err := appcore.PartitionCSR(g, N)
	if err != nil {
		return nil, nil, err
	}
	// MRAM layout per PE.
	adjOff := 0
	frontOff := adjOff + adjSz   // current frontier (global bitmap)
	nextPartOff := frontOff + fB // this PE's next-frontier contribution
	nextOff := nextPartOff + fB  // OR-AllReduced next frontier
	visitedOff := nextOff + fB   // global visited bitmap (locally maintained)
	distOff := visitedOff + fB   // distances of owned vertices
	flagOff := distOff + distB   // "frontier non-empty" flag
	mram := nextPow2(flagOff + 8)

	comm, err := appcore.NewComm([]int{N}, N, mram, cost.DefaultParams())
	if err != nil {
		return nil, nil, err
	}
	tr := appcore.NewTracker(comm)

	// Distribute the graph; broadcast the initial frontier/visited state.
	scat := make([][]byte, 1)
	scat[0] = concat(adjBufs)
	bd, err := comm.Run(core.Collective{Prim: core.Scatter, Dims: "1",
		Hosts: scat, Dst: core.Span(adjOff, adjSz), Level: lvl})
	if err := tr.Comm(core.Scatter, bd, err); err != nil {
		return nil, nil, err
	}
	init := make([]byte, fB)
	init[cfg.Source/8] |= 1 << (cfg.Source % 8)
	bd, err = comm.Run(core.Collective{Prim: core.Broadcast, Dims: "1",
		Hosts: [][]byte{init}, Dst: core.At(frontOff), Level: lvl})
	if err := tr.Comm(core.Broadcast, bd, err); err != nil {
		return nil, nil, err
	}
	bd, err = comm.Run(core.Collective{Prim: core.Broadcast, Dims: "1",
		Hosts: [][]byte{init}, Dst: core.At(visitedOff), Level: lvl})
	if err := tr.Comm(core.Broadcast, bd, err); err != nil {
		return nil, nil, err
	}

	pes := make([]int, N)
	for i := range pes {
		pes[i] = i
	}
	// Initialize distances: 0 for the source's owner, -1 elsewhere.
	tr.Kernel(func() {
		comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
			dist := make([]byte, distB)
			unreached := int32(-1)
			for i := 0; i < owned; i++ {
				binary.LittleEndian.PutUint32(dist[4*i:], uint32(unreached))
			}
			if cfg.Source/owned == ctx.PE {
				binary.LittleEndian.PutUint32(dist[4*(cfg.Source%owned):], 0)
			}
			ctx.WriteMram(distOff, dist)
			ctx.Exec(int64(owned))
		})
	})

	// Every traversal level replays the same frontier AllReduce and
	// termination-flag Gather; compile them once and replay.
	frontierAR, err := comm.Compile(core.Collective{Prim: core.AllReduce, Dims: "1",
		Src: core.Span(nextPartOff, fB), Dst: core.At(nextOff),
		Elem: elem.I8, Op: elem.Or, Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	flagGather, err := comm.Compile(core.Collective{Prim: core.Gather, Dims: "1",
		Src: core.Span(flagOff, 8), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	for level := int32(1); level <= int32(g.V); level++ {
		// Expansion kernel: scan owned vertices in the frontier, mark
		// unvisited neighbors in the partial next bitmap.
		tr.Kernel(func() {
			comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
				front := make([]byte, fB)
				ctx.ReadMram(frontOff, front)
				visited := make([]byte, fB)
				ctx.ReadMram(visitedOff, visited)
				adj := make([]byte, adjSz)
				ctx.ReadMram(adjOff, adj)
				sg := appcore.NewSubgraphReader(adj, owned)
				next := make([]byte, fB)
				var instr int64
				base := ctx.PE * owned
				for i := 0; i < owned; i++ {
					v := base + i
					if front[v/8]&(1<<(v%8)) == 0 {
						continue
					}
					deg := sg.Degree(i)
					for j := 0; j < deg; j++ {
						w := sg.Neighbor(i, j)
						if visited[w/8]&(1<<(w%8)) == 0 {
							next[w/8] |= 1 << (w % 8)
						}
					}
					instr += int64(deg) * 3
				}
				ctx.WriteMram(nextPartOff, next)
				ctx.Exec(instr + int64(owned)/8 + 1)
			})
		})
		// Combine the partial frontiers: OR AllReduce (§ VII-C).
		bd, err := frontierAR.Run()
		if err := tr.Comm(core.AllReduce, bd, err); err != nil {
			return nil, nil, err
		}
		// Update kernel: fold the new frontier into visited and distances,
		// promote it to the current frontier, report emptiness.
		lv := level
		tr.Kernel(func() {
			comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
				next := make([]byte, fB)
				ctx.ReadMram(nextOff, next)
				visited := make([]byte, fB)
				ctx.ReadMram(visitedOff, visited)
				dist := make([]byte, distB)
				ctx.ReadMram(distOff, dist)
				var any byte
				base := ctx.PE * owned
				for b := 0; b < fB; b++ {
					if next[b] != 0 {
						any = 1
					}
					visited[b] |= next[b]
				}
				for i := 0; i < owned; i++ {
					v := base + i
					if next[v/8]&(1<<(v%8)) != 0 {
						binary.LittleEndian.PutUint32(dist[4*i:], uint32(lv))
					}
				}
				ctx.WriteMram(visitedOff, visited)
				ctx.WriteMram(distOff, dist)
				ctx.WriteMram(frontOff, next)
				flag := make([]byte, 8)
				flag[0] = any
				ctx.WriteMram(flagOff, flag)
				ctx.Exec(int64(fB/8 + owned))
			})
		})
		// Host checks termination via a small Gather of the flags.
		fbd, err := flagGather.Run()
		if err := tr.Comm(core.Gather, fbd, err); err != nil {
			return nil, nil, err
		}
		if flagGather.Results()[0][0] == 0 { // all PEs computed the same global flag
			break
		}
	}
	// Collect distances from the owning PEs.
	distGather, err := comm.Compile(core.Collective{Prim: core.Gather, Dims: "1",
		Src: core.Span(distOff, distB), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	gbd, err := distGather.Run()
	if err := tr.Comm(core.Gather, gbd, err); err != nil {
		return nil, nil, err
	}
	bufs := distGather.Results()
	dist := make([]int32, g.V)
	for p := 0; p < N; p++ {
		for i := 0; i < owned; i++ {
			dist[p*owned+i] = int32(binary.LittleEndian.Uint32(bufs[0][p*distB+4*i:]))
		}
	}
	return dist, &tr.Prof, nil
}

// RunCPU computes reference distances and the roofline time for the
// CPU-only baseline.
func RunCPU(cfg Config) ([]int32, cost.Seconds, error) {
	g := cfg.graph()
	if cfg.Source < 0 || cfg.Source >= g.V {
		return nil, 0, fmt.Errorf("bfs: source %d out of range", cfg.Source)
	}
	dist := make([]int32, g.V)
	for i := range dist {
		dist[i] = -1
	}
	dist[cfg.Source] = 0
	queue := []int32{int32(cfg.Source)}
	var touchedEdges int64
	for len(queue) > 0 {
		var nextQ []int32
		for _, v := range queue {
			for _, w := range g.Neighbors(int(v)) {
				touchedEdges++
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					nextQ = append(nextQ, w)
				}
			}
		}
		queue = nextQ
	}
	cpu := appcore.DefaultCPU()
	// BFS on CPUs is memory-latency bound: every traversed edge is a
	// random access (calibrated at LiveJournal scale).
	t := cpu.GraphTime(touchedEdges) + cpu.Time(int64(g.V)*8, int64(g.V))
	return dist, t, nil
}

func concat(bufs [][]byte) []byte {
	var out []byte
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
