package cc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
)

// testCfg uses 64 PEs on one channel: the smallest configuration in the
// paper's operating regime (>= 64 PEs per channel, where PE-assisted
// reordering's MRAM traffic is cheaper than the per-PE bus share).
func testCfg() Config {
	return Config{Graph: data.Undirected(data.RMAT(2048, 8192, 12)), PEs: 64}
}

func TestPIMMatchesCPU(t *testing.T) {
	cfg := testCfg()
	want, _, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []core.Level{core.Baseline, core.CM} {
		got, prof, err := RunPIM(cfg, lvl)
		if err != nil {
			t.Fatalf("%v: %v", lvl, err)
		}
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("%v: label[%d] = %d, want %d", lvl, v, got[v], want[v])
			}
		}
		if prof.ByPrimitive[core.AllReduce] <= 0 {
			t.Errorf("%v: CC must use AllReduce", lvl)
		}
	}
}

func TestLabelsAreComponentMinima(t *testing.T) {
	cfg := testCfg()
	labels, _, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.graph()
	// Every edge connects vertices with equal labels; every label is <=
	// its vertex id; every label names a vertex labeled with itself.
	for v := 0; v < g.V; v++ {
		if labels[v] > int32(v) {
			t.Fatalf("label[%d] = %d exceeds id", v, labels[v])
		}
		if labels[labels[v]] != labels[v] {
			t.Fatalf("label root %d not self-labeled", labels[v])
		}
		for _, w := range g.Neighbors(v) {
			if labels[v] != labels[w] {
				t.Fatalf("edge (%d,%d) crosses labels %d/%d", v, w, labels[v], labels[w])
			}
		}
	}
}

func TestIsolatedVerticesKeepOwnLabel(t *testing.T) {
	cfg := testCfg()
	labels, _, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.graph()
	for v := 0; v < g.V; v++ {
		if g.OutDegree(v) == 0 && labels[v] != int32(v) {
			t.Fatalf("isolated vertex %d has label %d", v, labels[v])
		}
	}
}

func TestValidation(t *testing.T) {
	cfg := testCfg()
	cfg.PEs = 24 // does not divide 512
	if _, _, err := RunPIM(cfg, core.CM); err == nil {
		t.Error("bad PE count accepted")
	}
}

func TestCommDominatesCC(t *testing.T) {
	// CC is the most communication-dominated benchmark (Figure 13).
	_, prof, err := RunPIM(testCfg(), core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(prof.CommTotal()) / float64(prof.Total())
	if frac < 0.5 {
		t.Errorf("CC baseline comm fraction %.2f, want >= 0.5", frac)
	}
}

func TestOptimizedBeatsBaselineComm(t *testing.T) {
	cfg := testCfg()
	_, base, err := RunPIM(cfg, core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CommTotal() >= base.CommTotal() {
		t.Errorf("optimized comm (%v) should beat baseline (%v)", opt.CommTotal(), base.CommTotal())
	}
}
