// Package cc implements the connected-components benchmark (§ VII-D):
// label propagation over an undirected graph. Every iteration each PE
// pushes its owned vertices' labels to their neighbors, producing a
// candidate-label array that is combined with a MIN AllReduce; iteration
// stops when no label changes. At convergence every vertex's label is the
// minimum vertex ID in its component.
package cc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/apps/appcore"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/dpu"
	"repro/internal/elem"
)

// Config sizes the CC benchmark.
type Config struct {
	// GraphName selects the dataset ("LJ" or "LG"); edges are mirrored to
	// form an undirected graph (§ VII-D). CC uses smaller vertex counts
	// than BFS because labels are 4 bytes per vertex rather than 1 bit.
	GraphName string
	// Graph optionally overrides the named dataset (must be symmetric).
	Graph *data.Graph
	// PEs is the PE count; must divide the vertex count.
	PEs int
}

// DefaultConfig returns the reproduction-scale configuration.
func DefaultConfig() Config { return Config{GraphName: "LG", PEs: 64} }

func (c Config) graph() *data.Graph {
	if c.Graph != nil {
		return c.Graph
	}
	switch c.GraphName {
	case "LJ":
		return data.Undirected(data.RMAT(1<<14, 1<<17, 1001))
	case "LG":
		return data.Undirected(data.RMAT(1<<13, 1<<15, 1002))
	default:
		panic(fmt.Sprintf("cc: unknown graph %q", c.GraphName))
	}
}

// RunPIM executes CC on the simulated PIM system and returns per-vertex
// component labels plus the execution profile.
func RunPIM(cfg Config, lvl core.Level) ([]int32, *appcore.Profile, error) {
	g := cfg.graph()
	N := cfg.PEs
	if g.V%N != 0 {
		return nil, nil, fmt.Errorf("cc: %d vertices not divisible by %d PEs", g.V, N)
	}
	owned := g.V / N

	// Label arrays: full V int32 per PE, padded to AllReduce block
	// granularity (padding holds MaxInt32, neutral for MIN).
	lB := g.V * 4
	if lB < 8*N {
		lB = 8 * N
	}
	lB = (lB + 8*N - 1) / (8 * N) * (8 * N)

	adjBufs, adjSz, err := appcore.PartitionCSR(g, N)
	if err != nil {
		return nil, nil, err
	}
	adjOff := 0
	labelOff := adjOff + adjSz // current global labels
	candOff := labelOff + lB   // this PE's pushed candidates
	newOff := candOff + lB     // MIN-AllReduced labels
	flagOff := newOff + lB     // "any label changed" flag
	mram := nextPow2(flagOff + 8)

	comm, err := appcore.NewComm([]int{N}, N, mram, cost.DefaultParams())
	if err != nil {
		return nil, nil, err
	}
	tr := appcore.NewTracker(comm)

	bd, err := comm.Run(core.Collective{Prim: core.Scatter, Dims: "1",
		Hosts: [][]byte{concat(adjBufs)}, Dst: core.Span(adjOff, adjSz), Level: lvl})
	if err := tr.Comm(core.Scatter, bd, err); err != nil {
		return nil, nil, err
	}
	// Initial labels: label[v] = v; padding = MaxInt32.
	init := make([]byte, lB)
	for v := 0; v < lB/4; v++ {
		x := int32(v)
		if v >= g.V {
			x = 1<<31 - 1
		}
		binary.LittleEndian.PutUint32(init[4*v:], uint32(x))
	}
	bd, err = comm.Run(core.Collective{Prim: core.Broadcast, Dims: "1",
		Hosts: [][]byte{init}, Dst: core.At(labelOff), Level: lvl})
	if err := tr.Comm(core.Broadcast, bd, err); err != nil {
		return nil, nil, err
	}

	pes := make([]int, N)
	for i := range pes {
		pes[i] = i
	}
	// Every label-propagation round replays the same candidate AllReduce
	// and termination-flag Gather; compile them once and replay.
	candAR, err := comm.Compile(core.Collective{Prim: core.AllReduce, Dims: "1",
		Src: core.Span(candOff, lB), Dst: core.At(newOff),
		Elem: elem.I32, Op: elem.Min, Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	flagGather, err := comm.Compile(core.Collective{Prim: core.Gather, Dims: "1",
		Src: core.Span(flagOff, 8), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	for iter := 0; iter < g.V; iter++ {
		// Push kernel: candidates start as the current labels; each owned
		// vertex pushes its label to its neighbors (min).
		tr.Kernel(func() {
			comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
				labels := make([]byte, lB)
				ctx.ReadMram(labelOff, labels)
				adj := make([]byte, adjSz)
				ctx.ReadMram(adjOff, adj)
				sg := appcore.NewSubgraphReader(adj, owned)
				// Candidates: identity except where our pushes win. Start
				// from MaxInt32 so the AllReduce MIN of all PEs'
				// candidates composes with the current labels cheaply:
				// cand = min(pushes); result label = min(label, allmin).
				cand := make([]byte, lB)
				for i := range cand {
					cand[i] = 0xFF
				}
				for i := 0; i < lB/4; i++ {
					cand[4*i+3] = 0x7F // MaxInt32 little-endian
				}
				var instr int64
				base := ctx.PE * owned
				for i := 0; i < owned; i++ {
					lv := int32(binary.LittleEndian.Uint32(labels[4*(base+i):]))
					deg := sg.Degree(i)
					for j := 0; j < deg; j++ {
						w := sg.Neighbor(i, j)
						cur := int32(binary.LittleEndian.Uint32(cand[4*w:]))
						if lv < cur {
							binary.LittleEndian.PutUint32(cand[4*w:], uint32(lv))
						}
					}
					instr += int64(deg) * 4
				}
				ctx.WriteMram(candOff, cand)
				ctx.Exec(instr + int64(owned))
			})
		})
		// Combine candidate labels across PEs: MIN AllReduce (§ VII-D).
		bd, err := candAR.Run()
		if err := tr.Comm(core.AllReduce, bd, err); err != nil {
			return nil, nil, err
		}
		// Update kernel: labels = min(labels, candidates); flag changes.
		tr.Kernel(func() {
			comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
				labels := make([]byte, lB)
				ctx.ReadMram(labelOff, labels)
				cand := make([]byte, lB)
				ctx.ReadMram(newOff, cand)
				var changed byte
				for v := 0; v < g.V; v++ {
					old := int32(binary.LittleEndian.Uint32(labels[4*v:]))
					nw := int32(binary.LittleEndian.Uint32(cand[4*v:]))
					if nw < old {
						binary.LittleEndian.PutUint32(labels[4*v:], uint32(nw))
						changed = 1
					}
				}
				ctx.WriteMram(labelOff, labels)
				flag := make([]byte, 8)
				flag[0] = changed
				ctx.WriteMram(flagOff, flag)
				ctx.Exec(int64(g.V))
			})
		})
		fbd, err := flagGather.Run()
		if err := tr.Comm(core.Gather, fbd, err); err != nil {
			return nil, nil, err
		}
		if flagGather.Results()[0][0] == 0 {
			break
		}
	}
	// Labels are replicated on every PE; each PE stages its owned slice at
	// a common offset (reusing the candidate region) so the closing Gather
	// moves only V labels total.
	sliceB := (owned*4 + 7) &^ 7
	tr.Kernel(func() {
		comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
			slice := make([]byte, sliceB)
			ctx.ReadMram(labelOff+ctx.PE*owned*4, slice[:owned*4])
			ctx.WriteMram(candOff, slice)
			ctx.Exec(int64(owned))
		})
	})
	labelGather, err := comm.Compile(core.Collective{Prim: core.Gather, Dims: "1",
		Src: core.Span(candOff, sliceB), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	gbd, err := labelGather.Run()
	if err := tr.Comm(core.Gather, gbd, err); err != nil {
		return nil, nil, err
	}
	bufs := labelGather.Results()
	out := make([]int32, g.V)
	for p := 0; p < N; p++ {
		for i := 0; i < owned; i++ {
			out[p*owned+i] = int32(binary.LittleEndian.Uint32(bufs[0][p*sliceB+4*i:]))
		}
	}
	return out, &tr.Prof, nil
}

// RunCPU computes reference labels (min vertex ID per component) and the
// roofline time of a CPU label-propagation run.
func RunCPU(cfg Config) ([]int32, cost.Seconds, error) {
	g := cfg.graph()
	labels := make([]int32, g.V)
	for v := range labels {
		labels[v] = int32(v)
	}
	var touched int64
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.V; v++ {
			for _, w := range g.Neighbors(v) {
				touched++
				if labels[v] < labels[w] {
					labels[w] = labels[v]
					changed = true
				} else if labels[w] < labels[v] {
					labels[v] = labels[w]
					changed = true
				}
			}
		}
	}
	cpu := appcore.DefaultCPU()
	t := cpu.GraphTime(touched)
	return labels, t, nil
}

func concat(bufs [][]byte) []byte {
	var out []byte
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
