// Package mlp implements the multi-layer perceptron benchmark (§ VII-E):
// a quantized integer feedforward network whose weight matrices are
// column-partitioned across the PEs. Each layer computes per-PE partial
// output vectors from the PE's weight columns and input slice, then
// ReduceScatters the partials so every PE holds its slice of the layer
// output — the next layer's input (1-D hypercube, Table III).
package mlp

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/apps/appcore"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dpu"
	"repro/internal/elem"
)

// Config sizes the MLP benchmark.
type Config struct {
	// Features is the layer width F (paper: 16k and 32k; reproduction
	// default 2048).
	Features int
	// Layers is the layer count (paper: 5).
	Layers int
	// PEs is the number of processing elements.
	PEs int
	// Batches is how many inputs are pushed through the network per
	// weight distribution (inference serving amortizes the one-time
	// weight Scatter; 0 means 1).
	Batches int
	// Seed makes weights and inputs deterministic.
	Seed int64
}

// DefaultConfig returns the reproduction-scale configuration.
func DefaultConfig() Config {
	return Config{Features: 2048, Layers: 5, PEs: 256, Seed: 1}
}

// Validate checks divisibility constraints.
func (c Config) Validate() error {
	if c.Features <= 0 || c.Layers <= 0 || c.PEs <= 0 {
		return fmt.Errorf("mlp: non-positive config")
	}
	if c.Features%c.PEs != 0 {
		return fmt.Errorf("mlp: features %d must divide by PEs %d", c.Features, c.PEs)
	}
	if (c.Features/c.PEs*4)%8 != 0 {
		return fmt.Errorf("mlp: per-PE slice %dB must be 8-byte aligned", c.Features/c.PEs*4)
	}
	return nil
}

// activation is the quantized nonlinearity applied after every layer:
// arithmetic shift then clamp to int8 range, keeping values bounded across
// layers (and bit-exact between CPU and PIM).
func activation(v int64) int32 {
	v >>= 6
	if v > 127 {
		v = 127
	}
	if v < -128 {
		v = -128
	}
	return int32(v)
}

// genWeights produces layer l's FxF weight matrix entries in [-3,3].
func genWeights(cfg Config, l int) []int32 {
	rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(l)))
	w := make([]int32, cfg.Features*cfg.Features)
	for i := range w {
		w[i] = int32(rng.Intn(7)) - 3
	}
	return w
}

func genInput(cfg Config, batch int) []int32 {
	rng := rand.New(rand.NewSource(cfg.Seed*7777 + int64(batch)))
	x := make([]int32, cfg.Features)
	for i := range x {
		x[i] = int32(rng.Intn(7)) - 3
	}
	return x
}

func (c Config) batches() int {
	if c.Batches <= 0 {
		return 1
	}
	return c.Batches
}

func i32bytes(v []int32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

func bytesI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// RunPIM executes the MLP on the simulated PIM system at the given
// optimization level and returns the output vector and profile.
func RunPIM(cfg Config, lvl core.Level) ([]int32, *appcore.Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	F, N, L := cfg.Features, cfg.PEs, cfg.Layers
	cols := F / N      // weight columns per PE
	sliceB := cols * 4 // input/output slice bytes per PE
	wPerLayerB := F * cols * 4

	// MRAM layout per PE: [weights L layers][x slice][partial vector].
	wOff := 0
	xOff := wOff + L*wPerLayerB
	partOff := xOff + sliceB
	outOff := partOff + F*4
	mram := nextPow2(outOff + sliceB)

	comm, err := appcore.NewComm([]int{N}, N, mram, cost.DefaultParams())
	if err != nil {
		return nil, nil, err
	}
	tr := appcore.NewTracker(comm)

	// Distribute weights: one Scatter per layer, compiled through the
	// fuser as a single sequence — the L distributions execute as one
	// plan with one synchronization instead of L.
	wdist := make([]core.Collective, L)
	for l := 0; l < L; l++ {
		w := genWeights(cfg, l)
		buf := make([]byte, N*wPerLayerB)
		for p := 0; p < N; p++ {
			// PE p holds columns [p*cols, (p+1)*cols), row-major F x cols.
			for r := 0; r < F; r++ {
				for j := 0; j < cols; j++ {
					binary.LittleEndian.PutUint32(buf[p*wPerLayerB+(r*cols+j)*4:], uint32(w[r*F+p*cols+j]))
				}
			}
		}
		wdist[l] = core.Collective{Prim: core.Scatter, Dims: "1",
			Hosts: [][]byte{buf}, Dst: core.Span(wOff+l*wPerLayerB, wPerLayerB), Level: lvl}
	}
	wPlan, err := comm.CompileSequence(wdist...)
	if err != nil {
		return nil, nil, err
	}
	if err := tr.CommSequence(wPlan.Submit(), nil); err != nil {
		return nil, nil, err
	}
	pes := make([]int, N)
	for i := range pes {
		pes[i] = i
	}
	// Inference serving replays the same collective signatures every
	// batch and layer, so compile them once and replay: the input
	// Scatter (bound to xBuf, refilled in place per batch), the
	// per-layer ReduceScatter, and the final Gather.
	xBuf := make([]byte, N*sliceB)
	xPlan, err := comm.Compile(core.Collective{Prim: core.Scatter, Dims: "1",
		Hosts: [][]byte{xBuf}, Dst: core.Span(xOff, sliceB), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	rsPlan, err := comm.Compile(core.Collective{Prim: core.ReduceScatter, Dims: "1",
		Src: core.Span(partOff, F*4), Dst: core.At(outOff),
		Elem: elem.I32, Op: elem.Sum, Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	gaPlan, err := comm.Compile(core.Collective{Prim: core.Gather, Dims: "1",
		Src: core.Span(xOff, sliceB), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	var gaF *core.Future // previous batch's output Gather, possibly in flight
	for batch := 0; batch < cfg.batches(); batch++ {
		// Refilling xBuf is safe: the previous input Scatter executed
		// before the previous batch's first layer kernel, and the
		// in-flight Gather reads MRAM, not this host buffer.
		copy(xBuf, i32bytes(genInput(cfg, batch)))
		// The input Scatter writes xOff, which the in-flight Gather reads:
		// a WAR hazard the submission queue orders — the Scatter executes
		// only after the Gather completes, without an explicit wait.
		xF := xPlan.Submit()
		if gaF != nil {
			if err := tr.CommFuture(core.Gather, gaF, nil); err != nil {
				return nil, nil, err
			}
		}
		if err := tr.CommFuture(core.Scatter, xF, nil); err != nil {
			return nil, nil, err
		}
		var err error
		gaF, err = mlpForward(cfg, comm, tr, pes, rsPlan, gaPlan, wOff, xOff, partOff, outOff, sliceB)
		if err != nil {
			return nil, nil, err
		}
	}
	if err := tr.CommFuture(core.Gather, gaF, nil); err != nil {
		return nil, nil, err
	}
	final := bytesI32(gaF.Results()[0])
	tr.Finish()
	return final, &tr.Prof, nil
}

// mlpForward runs one input through all layers, submitting the per-layer
// collectives asynchronously, and returns the future of the final output
// Gather (not yet waited, so the next batch's input Scatter can overlap
// it on the submission queue).
func mlpForward(cfg Config, comm *core.Comm, tr *appcore.Tracker, pes []int,
	rsPlan, gaPlan *core.CompiledPlan, wOff, xOff, partOff, outOff, sliceB int) (*core.Future, error) {
	F, N, L := cfg.Features, cfg.PEs, cfg.Layers
	cols := F / N
	wPerLayerB := F * cols * 4
	for l := 0; l < L; l++ {
		layerW := wOff + l*wPerLayerB
		tr.Kernel(func() {
			comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
				// Partial GeMV: part[r] = sum_j W[r][j] * x[j] over this
				// PE's columns, computed fully in the simulator.
				xb := make([]byte, sliceB)
				ctx.ReadMram(xOff, xb)
				xs := bytesI32(xb)
				part := make([]byte, F*4)
				row := make([]byte, cols*4)
				for r := 0; r < F; r++ {
					ctx.ReadMram(layerW+r*cols*4, row)
					var acc int32
					for j := 0; j < cols; j++ {
						acc += int32(binary.LittleEndian.Uint32(row[4*j:])) * xs[j]
					}
					binary.LittleEndian.PutUint32(part[4*r:], uint32(acc))
				}
				ctx.WriteMram(partOff, part)
				ctx.Exec(int64(F * cols * 3)) // ~3 instructions per MAC
			})
		})
		// ReduceScatter the partials; each PE receives its slice of the
		// layer output (§ VII-E). Submitted asynchronously; the activation
		// kernel below is a barrier (Tracker.Kernel flushes).
		if err := tr.CommFuture(core.ReduceScatter, rsPlan.Submit(), nil); err != nil {
			return nil, err
		}
		// Activation kernel: quantize the slice in place into xOff.
		tr.Kernel(func() {
			comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
				b := make([]byte, sliceB)
				ctx.ReadMram(outOff, b)
				vs := bytesI32(b)
				for i, v := range vs {
					binary.LittleEndian.PutUint32(b[4*i:], uint32(activation(int64(v))))
				}
				ctx.WriteMram(xOff, b)
				ctx.Exec(int64(cols * 4))
			})
		})
	}
	// Submit the final-slice Gather; the caller waits on (or pipelines
	// past) the returned future.
	return gaPlan.Submit(), nil
}

// RunCPU computes the identical MLP on the CPU-only model, returning the
// output and the roofline time.
func RunCPU(cfg Config) ([]int32, cost.Seconds, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	F, L := cfg.Features, cfg.Layers
	cpu := appcore.DefaultCPU()
	var total cost.Seconds
	var x []int32
	weights := make([][]int32, L)
	for l := range weights {
		weights[l] = genWeights(cfg, l)
	}
	for batch := 0; batch < cfg.batches(); batch++ {
		x = genInput(cfg, batch)
		for l := 0; l < L; l++ {
			w := weights[l]
			y := make([]int32, F)
			for r := 0; r < F; r++ {
				var acc int64
				for j := 0; j < F; j++ {
					acc += int64(w[r*F+j]) * int64(x[j])
				}
				y[r] = activation(acc)
			}
			x = y
			total += cpu.Time(int64(F*F*4), int64(F*F*2))
		}
	}
	return x, total, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
