package mlp

import (
	"testing"

	"repro/internal/core"
)

func testCfg() Config {
	return Config{Features: 1024, Layers: 3, PEs: 64, Seed: 4}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCfg()
	bad.Features = 500 // not divisible by 64
	if err := bad.Validate(); err == nil {
		t.Error("bad feature count accepted")
	}
	bad = testCfg()
	bad.PEs = 256 // slice = 4 elements = 16 bytes: aligned
	if err := bad.Validate(); err != nil {
		t.Errorf("256 PEs should be valid: %v", err)
	}
	bad.PEs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero PEs accepted")
	}
}

func TestPIMMatchesCPUAllLevels(t *testing.T) {
	cfg := testCfg()
	want, _, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []core.Level{core.Baseline, core.IM} {
		got, prof, err := RunPIM(cfg, lvl)
		if err != nil {
			t.Fatalf("%v: %v", lvl, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: length %d != %d", lvl, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: output[%d] = %d, want %d", lvl, i, got[i], want[i])
			}
		}
		if prof.KernelTime <= 0 || prof.CommTotal() <= 0 {
			t.Errorf("%v: empty profile %v", lvl, prof)
		}
	}
}

func TestProfileHasExpectedPrimitives(t *testing.T) {
	_, prof, err := RunPIM(testCfg(), core.IM)
	if err != nil {
		t.Fatal(err)
	}
	// Table III: MLP uses Scatter, Gather(/retrieval) and ReduceScatter.
	for _, p := range []core.Primitive{core.Scatter, core.Gather, core.ReduceScatter} {
		if prof.ByPrimitive[p] <= 0 {
			t.Errorf("missing %v time in profile", p)
		}
	}
	if prof.ByPrimitive[core.AlltoAll] != 0 {
		t.Error("MLP should not use AlltoAll")
	}
}

func TestOptimizedCommBeatsBaseline(t *testing.T) {
	cfg := testCfg()
	_, base, err := RunPIM(cfg, core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := RunPIM(cfg, core.IM)
	if err != nil {
		t.Fatal(err)
	}
	if opt.ByPrimitive[core.ReduceScatter] >= base.ByPrimitive[core.ReduceScatter] {
		t.Errorf("optimized RS (%v) should beat baseline (%v)",
			opt.ByPrimitive[core.ReduceScatter], base.ByPrimitive[core.ReduceScatter])
	}
	// Kernel time is level-independent.
	diff := float64(opt.KernelTime-base.KernelTime) / float64(base.KernelTime)
	if diff > 0.01 || diff < -0.01 {
		t.Errorf("kernel time should not depend on level: %v vs %v", opt.KernelTime, base.KernelTime)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, _, _ := RunPIM(testCfg(), core.IM)
	b, _, _ := RunPIM(testCfg(), core.IM)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic output")
		}
	}
}

func TestBatchesAmortizeWeightScatter(t *testing.T) {
	cfg := testCfg()
	want, _, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-batch runs must still match the CPU reference (last batch).
	cfg.Batches = 3
	wantB, _, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, prof1, err := RunPIM(cfg, core.IM)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != wantB[i] {
			t.Fatalf("batched output[%d] mismatch", i)
		}
	}
	// Different batches see different inputs.
	same := true
	for i := range got {
		if got[i] != want[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("batch 2 produced batch 0's output")
	}
	// Per-batch cost must be cheaper than 3 single-batch runs (weights
	// scattered once).
	cfg.Batches = 1
	_, prof3, err := RunPIM(cfg, core.IM)
	if err != nil {
		t.Fatal(err)
	}
	if float64(prof1.Total()) >= 3*float64(prof3.Total()) {
		t.Errorf("3 amortized batches (%v) should cost less than 3 full runs (%v)",
			prof1.Total(), 3*prof3.Total())
	}
}
