// Package dlrm implements the deep-learning recommendation model
// benchmark (§ VII-A, Figure 11). The embedding tables are split three
// ways and mapped onto a 3-D hypercube: embedding columns across x,
// table rows across y, and tables across z. Each batch flows through:
//
//  1. Scatter: lookup indices to their home PEs.
//  2. AlltoAll over xyz: requests travel to every PE holding a shard
//     that may serve them (all x column slices, all y row shards of the
//     table's z owner).
//  3. Lookup kernel: owning row shards emit embedding slices, others
//     zeros.
//  4. ReduceScatter along y: row-wise parallelism — summing the aligned
//     response slots completes every embedding slice and scatters the
//     batch across y.
//  5. AlltoAll over xz: relocates all column slices and table shards of
//     each sample to its final PE for the top MLP.
//  6. Top-MLP kernel, then Gather of the per-sample outputs.
//
// Slot positions are arranged so a sample's global index equals its
// response-slot index, which makes steps 4-5 zero-copy on the PEs.
// Integer arithmetic is bit-exact against the CPU reference.
package dlrm

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/apps/appcore"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/dpu"
	"repro/internal/elem"
)

// Config sizes the DLRM benchmark.
type Config struct {
	// Tables, RowsPerTable, EmbDim shape the embedding tables (paper:
	// Criteo with embedding dimensions 16 and 32).
	Tables, RowsPerTable, EmbDim int
	// Batch is the number of samples per run.
	Batch int
	// X, Y, Z are the hypercube dimensions: embedding columns split
	// across X, table rows across Y, tables across Z (Figure 11).
	X, Y, Z int
	// TopOut is the top-MLP hidden/output width per sample.
	TopOut int
	// TopLayers is the top-MLP depth: one input layer (T*D -> TopOut)
	// plus TopLayers-1 hidden layers (TopOut -> TopOut). The paper's DLRM
	// carries multi-layer top/bottom MLPs, which keeps its communication
	// share the smallest of the benchmarks (Figure 13).
	TopLayers int
	// Batches is how many click batches are served per embedding-table
	// distribution (recommendation serving amortizes the one-time table
	// Scatter; 0 means 1).
	Batches int
	// Seed makes tables, clicks and weights deterministic.
	Seed int64
}

// DefaultConfig returns the reproduction-scale configuration.
func DefaultConfig() Config {
	return Config{Tables: 16, RowsPerTable: 8192, EmbDim: 32, Batch: 4096,
		X: 4, Y: 4, Z: 16, TopOut: 64, TopLayers: 3, Seed: 1}
}

// Validate checks the divisibility constraints of the 3-D split.
func (c Config) Validate() error {
	n := c.X * c.Y * c.Z
	switch {
	case c.Tables <= 0 || c.RowsPerTable <= 0 || c.EmbDim <= 0 || c.Batch <= 0 || c.TopOut <= 0:
		return fmt.Errorf("dlrm: non-positive config")
	case c.Tables%c.Z != 0:
		return fmt.Errorf("dlrm: %d tables not divisible by Z=%d", c.Tables, c.Z)
	case c.RowsPerTable%c.Y != 0:
		return fmt.Errorf("dlrm: %d rows not divisible by Y=%d", c.RowsPerTable, c.Y)
	case c.EmbDim%c.X != 0 || (c.EmbDim/c.X*4)%8 != 0:
		return fmt.Errorf("dlrm: emb dim %d not cleanly split by X=%d", c.EmbDim, c.X)
	case c.Batch%n != 0:
		return fmt.Errorf("dlrm: batch %d not divisible by %d PEs", c.Batch, n)
	case c.TopLayers <= 0:
		return fmt.Errorf("dlrm: TopLayers must be positive")
	}
	return nil
}

func (c Config) clicks(batch int) *data.ClickLog {
	return data.Clicks(c.Tables, c.RowsPerTable, c.Batch, c.Seed*31+int64(batch))
}

func (c Config) batches() int {
	if c.Batches <= 0 {
		return 1
	}
	return c.Batches
}

func (c Config) embeddings() []int32 {
	rng := rand.New(rand.NewSource(c.Seed * 77))
	e := make([]int32, c.Tables*c.RowsPerTable*c.EmbDim)
	for i := range e {
		e[i] = int32(rng.Intn(15)) - 7
	}
	return e
}

// topWeights returns the concatenated top-MLP weights: the input layer
// (TopOut x T*D, in assembled-vector order) followed by TopLayers-1
// hidden layers (TopOut x TopOut each).
func (c Config) topWeights() []int32 {
	rng := rand.New(rand.NewSource(c.Seed * 131))
	w := make([]int32, c.TopOut*c.Tables*c.EmbDim+(c.TopLayers-1)*c.TopOut*c.TopOut)
	for i := range w {
		w[i] = int32(rng.Intn(7)) - 3
	}
	return w
}

// topMLP runs the shared top-MLP pipeline on one assembled sample vector;
// identical code serves the DPU kernel and the CPU reference, keeping the
// integer results bit-exact.
func (c Config) topMLP(w []int32, vec []int64) []int32 {
	vecLen := c.Tables * c.EmbDim
	cur := make([]int64, c.TopOut)
	for o := 0; o < c.TopOut; o++ {
		var acc int64
		for j := 0; j < vecLen; j++ {
			acc += int64(w[o*vecLen+j]) * vec[j]
		}
		cur[o] = int64(activation(acc))
	}
	base := c.TopOut * vecLen
	for l := 1; l < c.TopLayers; l++ {
		next := make([]int64, c.TopOut)
		for o := 0; o < c.TopOut; o++ {
			var acc int64
			for j := 0; j < c.TopOut; j++ {
				acc += int64(w[base+(l-1)*c.TopOut*c.TopOut+o*c.TopOut+j]) * cur[j]
			}
			next[o] = int64(activation(acc))
		}
		cur = next
	}
	out := make([]int32, c.TopOut)
	for o, v := range cur {
		out[o] = int32(v)
	}
	return out
}

func activation(v int64) int32 {
	v >>= 4
	if v > 1<<30 {
		v = 1 << 30
	}
	if v < -(1 << 30) {
		v = -(1 << 30)
	}
	return int32(v)
}

// assembledIndex maps (x, z, tIdx, col) to the position of that value in
// a sample's assembled top-MLP input vector (the AlltoAll arrival order).
func (c Config) assembledIndex(x, z, tIdx, col int) int {
	dx := c.EmbDim / c.X
	tz := c.Tables / c.Z
	rank := x + c.X*z
	return rank*(tz*dx) + tIdx*dx + col
}

// RunPIM executes DLRM on the simulated PIM system and returns the
// per-sample top-MLP outputs (Batch x TopOut) plus the profile.
func RunPIM(cfg Config, lvl core.Level) ([]int32, *appcore.Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	X, Y, Z := cfg.X, cfg.Y, cfg.Z
	N := X * Y * Z
	B := cfg.Batch
	T, Rr, D := cfg.Tables, cfg.RowsPerTable, cfg.EmbDim
	Tz := T / Z     // tables per z shard
	Ry := Rr / Y    // rows per y shard
	Dx := D / X     // embedding columns per x slice
	perPE := B / N  // samples homed per PE
	Q := perPE * Tz // requests per (source, destination) pair
	Bd := B / N     // samples per final PE

	reqEntry := 8 // [u32 row][u32 tLocal]
	idxB := alignUp(perPE * T * 4)
	reqB := N * Q * reqEntry // AlltoAll(xyz) buffers
	respB := N * Q * Dx * 4  // lookup responses
	rsB := respB / Y         // ReduceScatter slice
	aaB := rsB               // AlltoAll(xz) result (same volume)
	embB := alignUp(Tz * Ry * Dx * 4)
	wB := alignUp((cfg.TopOut*T*D + (cfg.TopLayers-1)*cfg.TopOut*cfg.TopOut) * 4)
	outB := alignUp(Bd * cfg.TopOut * 4)

	idxOff := 0
	reqOff := idxOff + idxB
	req2Off := reqOff + reqB // AA dst
	respOff := req2Off + reqB
	rsOff := respOff + respB
	aaOff := rsOff + alignUp(rsB)
	embOff := aaOff + alignUp(aaB)
	wOff := embOff + embB
	outOff := wOff + wB
	mram := nextPow2(outOff + outB)

	comm, err := appcore.NewComm([]int{X, Y, Z}, N, mram, cost.DefaultParams())
	if err != nil {
		return nil, nil, err
	}
	tr := appcore.NewTracker(comm)
	emb := cfg.embeddings()

	// Scatter embedding shards: PE (x,y,z) owns tables of shard z, rows
	// of shard y, columns of slice x.
	embBuf := make([]byte, N*embB)
	for pe := 0; pe < N; pe++ {
		x, y, z := pe%X, pe/X%Y, pe/(X*Y)
		for tl := 0; tl < Tz; tl++ {
			for r := 0; r < Ry; r++ {
				for cidx := 0; cidx < Dx; cidx++ {
					v := emb[((z*Tz+tl)*Rr+(y*Ry+r))*D+x*Dx+cidx]
					binary.LittleEndian.PutUint32(embBuf[pe*embB+((tl*Ry+r)*Dx+cidx)*4:], uint32(v))
				}
			}
		}
	}
	// The embedding Scatter and the top-MLP weight Broadcast (already in
	// assembled-vector order) distribute together as one fused sequence:
	// a single submission whose interior synchronization the fuser
	// elides.
	setup, err := comm.CompileSequence(
		core.Collective{Prim: core.Scatter, Dims: "111",
			Hosts: [][]byte{embBuf}, Dst: core.Span(embOff, embB), Level: lvl},
		core.Collective{Prim: core.Broadcast, Dims: "111",
			Hosts: [][]byte{i32bytes(cfg.topWeights())}, Dst: core.At(wOff), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	if err := tr.CommSequence(setup.Submit(), nil); err != nil {
		return nil, nil, err
	}

	pes := make([]int, N)
	for i := range pes {
		pes[i] = i
	}
	// Serving replays the same five collective signatures every batch
	// (Figure 11's pipeline), so compile them once and replay. The index
	// Scatter binds idxBuf, which is refilled in place per batch.
	idxBuf := make([]byte, N*idxB)
	idxPlan, err := comm.Compile(core.Collective{Prim: core.Scatter, Dims: "111",
		Hosts: [][]byte{idxBuf}, Dst: core.Span(idxOff, idxB), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	reqAA, err := comm.Compile(core.Collective{Prim: core.AlltoAll, Dims: "111",
		Src: core.Span(reqOff, reqB), Dst: core.At(req2Off), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	// Steps 4-5 are a producer-consumer pair with no kernel between: the
	// y-axis ReduceScatter completes the embedding slices and the
	// xz-plane AlltoAll relocates them. Compile them through the fuser as
	// one per-batch sequence — the interior synchronization collapses and
	// the two stream as one plan (the RAW hazard that used to order the
	// two submissions is now internal to the schedule).
	rsAA, err := comm.CompileSequence(
		core.Collective{Prim: core.ReduceScatter, Dims: "010",
			Src: core.Span(respOff, respB), Dst: core.At(rsOff),
			Elem: elem.I32, Op: elem.Sum, Level: lvl},
		core.Collective{Prim: core.AlltoAll, Dims: "101",
			Src: core.Span(rsOff, aaB), Dst: core.At(aaOff), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	outGather, err := comm.Compile(core.Collective{Prim: core.Gather, Dims: "111",
		Src: core.Span(outOff, outB), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	var gatherF *core.Future // previous batch's output Gather, possibly in flight
	for batch := 0; batch < cfg.batches(); batch++ {
		clicks := cfg.clicks(batch)
		// Scatter lookup indices to home PEs (sample s lives on PE s/perPE).
		// Refilling idxBuf is safe: the previous index Scatter completed
		// before the previous batch's request kernel ran (Tracker.Kernel
		// flushes the queue), and the in-flight Gather never reads it.
		for s := 0; s < B; s++ {
			p := s / perPE
			ls := s % perPE
			for t := 0; t < T; t++ {
				binary.LittleEndian.PutUint32(idxBuf[p*idxB+(ls*T+t)*4:], uint32(clicks.Index(s, t)))
			}
		}
		// Submit the index Scatter asynchronously: its MRAM footprint is
		// disjoint from the previous batch's output Gather, so the two
		// overlap on the elapsed-time timeline (serving pipelining).
		idxF := idxPlan.Submit()
		if gatherF != nil {
			if err := tr.CommFuture(core.Gather, gatherF, nil); err != nil {
				return nil, nil, err
			}
		}
		if err := tr.CommFuture(core.Scatter, idxF, nil); err != nil {
			return nil, nil, err
		}
		// Request-build kernel: for every destination PE q = (qx,qy,qz), the
		// block holds this PE's requests whose table belongs to shard qz —
		// identical for all (qx,qy), which is what aligns the response slots
		// across the y axis.
		tr.Kernel(func() {
			comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
				idx := make([]byte, idxB)
				ctx.ReadMram(idxOff, idx)
				req := make([]byte, reqB)
				for q := 0; q < N; q++ {
					qz := q / (X * Y)
					for ls := 0; ls < perPE; ls++ {
						for tl := 0; tl < Tz; tl++ {
							t := qz*Tz + tl
							row := binary.LittleEndian.Uint32(idx[(ls*T+t)*4:])
							off := q*Q*reqEntry + (ls*Tz+tl)*reqEntry
							binary.LittleEndian.PutUint32(req[off:], row)
							binary.LittleEndian.PutUint32(req[off+4:], uint32(tl))
						}
					}
				}
				ctx.WriteMram(reqOff, req)
				ctx.Exec(int64(N * Q * 4))
			})
		})
		// AlltoAll over all three dimensions distributes the requests.
		if err := tr.CommFuture(core.AlltoAll, reqAA.Submit(), nil); err != nil {
			return nil, nil, err
		}
		// Lookup kernel: owning y shards emit embedding column slices.
		tr.Kernel(func() {
			comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
				y := ctx.PE / X % Y
				req := make([]byte, reqB)
				ctx.ReadMram(req2Off, req)
				embS := make([]byte, embB)
				ctx.ReadMram(embOff, embS)
				resp := make([]byte, respB)
				var hits int64
				for slot := 0; slot < N*Q; slot++ {
					row := int(binary.LittleEndian.Uint32(req[slot*reqEntry:]))
					tl := int(binary.LittleEndian.Uint32(req[slot*reqEntry+4:]))
					if row/Ry != y {
						continue // zeros already in place
					}
					hits++
					rl := row % Ry
					src := (tl*Ry + rl) * Dx * 4
					copy(resp[slot*Dx*4:(slot+1)*Dx*4], embS[src:src+Dx*4])
				}
				ctx.WriteMram(respOff, resp)
				ctx.Exec(int64(N*Q)*2 + hits*int64(Dx))
			})
		})
		// ReduceScatter along y completes the embedding slices (§ VII-A),
		// then AlltoAll over the xz-plane relocates every sample's column
		// slices and table shards to its final PE. The ReduceScatter output
		// is already in destination-block order (samples ascending), so it
		// is the AlltoAll source as-is — the fused per-batch sequence
		// compiled above runs both as one plan.
		if err := tr.CommSequence(rsAA.Submit(), nil); err != nil {
			return nil, nil, err
		}
		// Top-MLP kernel over each final PE's Bd samples.
		blockB := aaB / (X * Z) // one (x,z) source block
		perSampleB := Tz * Dx * 4
		tr.Kernel(func() {
			comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
				aa := make([]byte, aaB)
				ctx.ReadMram(aaOff, aa)
				w := make([]byte, wB)
				ctx.ReadMram(wOff, w)
				out := make([]byte, outB)
				vecLen := T * D
				ws := make([]int32, wB/4)
				for i := range ws {
					ws[i] = int32(binary.LittleEndian.Uint32(w[4*i:]))
				}
				for b := 0; b < Bd; b++ {
					// Assemble the input vector from the arrival blocks.
					vec := make([]int64, vecLen)
					for rnk := 0; rnk < X*Z; rnk++ {
						base := rnk*blockB + b*perSampleB
						for i := 0; i < Tz*Dx; i++ {
							vec[rnk*Tz*Dx+i] = int64(int32(binary.LittleEndian.Uint32(aa[base+4*i:])))
						}
					}
					res := cfg.topMLP(ws, vec)
					for o, v := range res {
						binary.LittleEndian.PutUint32(out[(b*cfg.TopOut+o)*4:], uint32(v))
					}
				}
				ctx.WriteMram(outOff, out)
				ctx.Exec(int64(Bd*cfg.TopOut*(vecLen+(cfg.TopLayers-1)*cfg.TopOut)) * 3)
			})
		})
		// Submit the per-sample output Gather; the next batch's index
		// Scatter overlaps it (disjoint regions), and the future owns its
		// result buffers, so the pipeline never clobbers them.
		gatherF = outGather.Submit()
	}
	if err := tr.CommFuture(core.Gather, gatherF, nil); err != nil {
		return nil, nil, err
	}
	// Reorder the last batch's outputs by global sample ID (earlier
	// batches' outputs are superseded, matching the CPU reference).
	bufs := gatherF.Results()
	final := make([]int32, B*cfg.TopOut)
	for s := 0; s < B; s++ {
		y := s / (B / Y)
		q := s % (B / Y)
		d := q / Bd
		b := q % Bd
		fx, fz := d%X, d/X
		pe := fx + X*(y+Y*fz)
		for o := 0; o < cfg.TopOut; o++ {
			final[s*cfg.TopOut+o] = int32(binary.LittleEndian.Uint32(bufs[0][pe*outB+(b*cfg.TopOut+o)*4:]))
		}
	}
	tr.Finish()
	return final, &tr.Prof, nil
}

// RunCPU computes the identical model on the CPU-only baseline.
func RunCPU(cfg Config) ([]int32, cost.Seconds, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	emb := cfg.embeddings()
	w := cfg.topWeights()
	T, Rr, D := cfg.Tables, cfg.RowsPerTable, cfg.EmbDim
	Tz := T / cfg.Z
	Dx := D / cfg.X
	vecLen := T * D
	out := make([]int32, cfg.Batch*cfg.TopOut)
	var cpuTotal cost.Seconds
	for batch := 0; batch < cfg.batches(); batch++ {
		clicks := cfg.clicks(batch)
		for s := 0; s < cfg.Batch; s++ {
			vec := make([]int64, vecLen)
			for t := 0; t < T; t++ {
				row := int(clicks.Index(s, t))
				z, tl := t/Tz, t%Tz
				for c := 0; c < D; c++ {
					x, cl := c/Dx, c%Dx
					vec[cfg.assembledIndex(x, z, tl, cl)] = int64(emb[(t*Rr+row)*D+c])
				}
			}
			copy(out[s*cfg.TopOut:], cfg.topMLP(w, vec))
		}
		cpu := appcore.DefaultCPU()
		// Embedding fetches are latency-bound at Criteo scale; the top MLP is
		// a streaming integer kernel.
		mlpOps := int64(cfg.Batch) * int64(cfg.TopOut) * int64(vecLen+(cfg.TopLayers-1)*cfg.TopOut) * 2
		cpuTotal += cpu.LookupTime(int64(cfg.Batch)*int64(T)) +
			cpu.Time(int64(cfg.Batch*vecLen*4), mlpOps)
	}
	return out, cpuTotal, nil
}

func i32bytes(v []int32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

func alignUp(n int) int { return (n + 7) &^ 7 }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
