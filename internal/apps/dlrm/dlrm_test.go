package dlrm

import (
	"testing"

	"repro/internal/core"
)

func testCfg() Config {
	return Config{Tables: 8, RowsPerTable: 512, EmbDim: 16, Batch: 256,
		X: 2, Y: 2, Z: 4, TopOut: 8, TopLayers: 2, Seed: 5}
}

func TestValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Tables = 6 },         // not divisible by Z
		func(c *Config) { c.RowsPerTable = 513 }, // not divisible by Y
		func(c *Config) { c.EmbDim = 18 },        // not divisible by X cleanly
		func(c *Config) { c.Batch = 100 },        // not divisible by PEs
		func(c *Config) { c.TopOut = 0 },
	}
	for i, mut := range cases {
		cfg := testCfg()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPIMMatchesCPU(t *testing.T) {
	cfg := testCfg()
	want, _, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []core.Level{core.Baseline, core.CM} {
		got, prof, err := RunPIM(cfg, lvl)
		if err != nil {
			t.Fatalf("%v: %v", lvl, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: out[%d] = %d, want %d", lvl, i, got[i], want[i])
			}
		}
		// Table III: DLRM uses Sc, Ga, Br(weights), AA, RS.
		for _, p := range []core.Primitive{core.Scatter, core.Gather, core.Broadcast, core.AlltoAll, core.ReduceScatter} {
			if prof.ByPrimitive[p] <= 0 {
				t.Errorf("%v: missing %v in profile", lvl, p)
			}
		}
	}
}

func TestEmbDim32(t *testing.T) {
	cfg := testCfg()
	cfg.EmbDim = 32 // the paper's second configuration
	want, _, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestOptimizedBeatsBaselineComm(t *testing.T) {
	// 64 PEs on one channel with a non-trivial batch: the smallest
	// configuration inside the paper's operating regime.
	cfg := Config{Tables: 16, RowsPerTable: 1024, EmbDim: 16, Batch: 2048,
		X: 2, Y: 2, Z: 16, TopOut: 8, TopLayers: 2, Seed: 5}
	_, base, err := RunPIM(cfg, core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	if opt.ByPrimitive[core.AlltoAll] >= base.ByPrimitive[core.AlltoAll] {
		t.Errorf("optimized AA (%v) should beat baseline (%v)",
			opt.ByPrimitive[core.AlltoAll], base.ByPrimitive[core.AlltoAll])
	}
}

func TestDeterministic(t *testing.T) {
	a, _, err := RunPIM(testCfg(), core.CM)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := RunPIM(testCfg(), core.CM)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic")
		}
	}
}

func TestBatchesAmortizeTableScatter(t *testing.T) {
	cfg := testCfg()
	cfg.Batches = 2
	want, _, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, prof2, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("batched output[%d] mismatch", i)
		}
	}
	// Two amortized batches cost less than two full runs.
	cfg.Batches = 1
	_, prof1, err := RunPIM(cfg, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	if float64(prof2.Total()) >= 2*float64(prof1.Total()) {
		t.Errorf("2 amortized batches (%v) should cost less than 2 full runs (%v)",
			prof2.Total(), 2*prof1.Total())
	}
}
