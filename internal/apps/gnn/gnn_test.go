package gnn

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/elem"
)

func testCfg() Config {
	in := data.GNNInput{Name: "test", Graph: data.RMAT(1024, 4096, 20), F: 16}
	return Config{Input: &in, Rows: 8, Cols: 8, Layers: 2, Elem: elem.I32, Seed: 3}
}

func TestValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCfg()
	bad.Rows = 3 // 1024 % 24 != 0
	if err := bad.Validate(); err == nil {
		t.Error("bad grid accepted")
	}
}

func TestPIMMatchesCPUBothVariants(t *testing.T) {
	cfg := testCfg()
	for _, variant := range []Variant{RSAR, ARAG} {
		want, _, err := RunCPU(cfg, variant)
		if err != nil {
			t.Fatal(err)
		}
		for _, lvl := range []core.Level{core.Baseline, core.IM} {
			t.Run(fmt.Sprintf("%v/%v", variant, lvl), func(t *testing.T) {
				got, prof, err := RunPIM(cfg, variant, lvl)
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("feature[%d] = %d, want %d", i, got[i], want[i])
					}
				}
				if prof.KernelTime <= 0 {
					t.Error("no kernel time")
				}
			})
		}
	}
}

func TestVariantsUseTheRightPrimitives(t *testing.T) {
	cfg := testCfg()
	_, rsar, err := RunPIM(cfg, RSAR, core.IM)
	if err != nil {
		t.Fatal(err)
	}
	if rsar.ByPrimitive[core.ReduceScatter] <= 0 || rsar.ByPrimitive[core.AllReduce] <= 0 {
		t.Error("RS&AR must use ReduceScatter and AllReduce")
	}
	if rsar.ByPrimitive[core.AllGather] != 0 {
		t.Error("RS&AR must not use AllGather")
	}
	_, arag, err := RunPIM(cfg, ARAG, core.IM)
	if err != nil {
		t.Fatal(err)
	}
	if arag.ByPrimitive[core.AllReduce] <= 0 || arag.ByPrimitive[core.AllGather] <= 0 {
		t.Error("AR&AG must use AllReduce and AllGather")
	}
	if arag.ByPrimitive[core.ReduceScatter] != 0 {
		t.Error("AR&AG must not use ReduceScatter")
	}
}

// Figure 22: smaller word widths speed communication up, and 8-bit
// elements remove domain transfer entirely (§ V-C).
func TestWordWidthSensitivity(t *testing.T) {
	times := map[elem.Type]cost.Seconds{}
	dts := map[elem.Type]cost.Seconds{}
	for _, et := range []elem.Type{elem.I8, elem.I16, elem.I32} {
		cfg := testCfg()
		cfg.Elem = et
		// Widths must agree between CPU and PIM despite wrapping.
		want, _, err := RunCPU(cfg, RSAR)
		if err != nil {
			t.Fatal(err)
		}
		got, prof, err := RunPIM(cfg, RSAR, core.IM)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: feature[%d] = %d, want %d", et, i, got[i], want[i])
			}
		}
		times[et] = prof.CommTotal()
		dts[et] = prof.CommBreakdown.Get(cost.DomainTransfer)
	}
	if !(times[elem.I8] < times[elem.I16] && times[elem.I16] < times[elem.I32]) {
		t.Errorf("comm time should grow with width: %v", times)
	}
	// INT8 removes DT from ReduceScatter and AllReduce (§ V-C); only the
	// setup/teardown primitives (Scatter/Broadcast/Gather) still pay it,
	// so the DT share must collapse relative to INT32 far beyond the 4x
	// data-size ratio.
	if dts[elem.I32] <= 0 {
		t.Fatal("INT32 should pay domain transfer")
	}
	if ratio := float64(dts[elem.I8]) / float64(dts[elem.I32]); ratio > 0.15 {
		t.Errorf("INT8 DT share %.3f of INT32's, want < 0.15 (only setup primitives)", ratio)
	}
}

func TestDeterministic(t *testing.T) {
	a, _, err := RunPIM(testCfg(), ARAG, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := RunPIM(testCfg(), ARAG, core.CM)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic")
		}
	}
}
