// Package gnn implements the graph-neural-network benchmark (§ VII-B,
// Figure 12): layers of sparse aggregation (SpGEMM) and dense combination
// (GeMM) over a 2-D hypercube of PEs, with two communication strategies:
//
//   - RS&AR: partial aggregations are ReduceScattered along x, combined,
//     and the padded per-column strips AllReduced along y.
//   - AR&AG: aggregations are AllReduced along x (full row strips),
//     combined into 2-D tiles, and AllGathered along y into the next
//     layer's strips.
//
// The vertex set is partitioned so that the strip each PE column needs
// next layer is exactly what the y-axis collective produces; the paper's
// per-layer dimension alternation (Algorithm 1) serves the same strip
// re-orientation and is fixed here by construction (documented in
// DESIGN.md). Feature elements are quantized integers of configurable
// width (INT8/16/32 — the Figure 22 sensitivity study); integer
// wraparound is bit-exact between the PIM run and the CPU reference.
package gnn

import (
	"fmt"
	"math/rand"

	"repro/internal/apps/appcore"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/dpu"
	"repro/internal/elem"
)

// Variant selects the communication strategy (Table III rows GNN RS&AR
// and GNN AR&AG).
type Variant int

const (
	// RSAR is the ReduceScatter + AllReduce strategy.
	RSAR Variant = iota
	// ARAG is the AllReduce + AllGather strategy (GNN-B in Figure 12).
	ARAG
)

// String returns the paper's label.
func (v Variant) String() string {
	if v == RSAR {
		return "RS&AR"
	}
	return "AR&AG"
}

// Config sizes the GNN benchmark.
type Config struct {
	// InputName selects "PM" (PubMed-like) or "RD" (Reddit-like).
	InputName string
	// Input optionally overrides the named dataset.
	Input *data.GNNInput
	// Rows, Cols define the PE grid (y and x lengths); Rows*Cols PEs.
	Rows, Cols int
	// Layers is the GNN depth (paper: 3).
	Layers int
	// Elem is the feature word width (Figure 22: INT8/16/32).
	Elem elem.Type
	// Seed makes features and weights deterministic.
	Seed int64
}

// DefaultConfig returns the reproduction-scale configuration.
func DefaultConfig() Config {
	return Config{InputName: "PM", Rows: 16, Cols: 16, Layers: 3, Elem: elem.I32, Seed: 1}
}

func (c Config) input() data.GNNInput {
	if c.Input != nil {
		return *c.Input
	}
	return data.GNNByName(c.InputName)
}

// Validate checks grid and divisibility constraints.
func (c Config) Validate() error {
	in := c.input()
	if c.Rows <= 0 || c.Cols <= 0 || c.Layers <= 0 {
		return fmt.Errorf("gnn: non-positive config")
	}
	if in.Graph.V%(c.Rows*c.Cols) != 0 {
		return fmt.Errorf("gnn: %d vertices not divisible by %dx%d grid", in.Graph.V, c.Rows, c.Cols)
	}
	sub := in.Graph.V / (c.Rows * c.Cols)
	if sub*in.F*c.Elem.Size()%8 != 0 || (sub*in.F*c.Elem.Size())/1 < 8 {
		return fmt.Errorf("gnn: sub-strip %dB too small or unaligned", sub*in.F*c.Elem.Size())
	}
	return nil
}

// activation quantizes combination outputs into int8 range, keeping all
// widths exact across layers.
func activation(v int64) int64 {
	v >>= 4
	if v > 127 {
		v = 127
	}
	if v < -128 {
		v = -128
	}
	return v
}

// stripRow maps (column j, strip-local index) to the global vertex ID:
// strip j interleaves one V/(R*C) sub-block from every row block.
func stripRow(v, rows, cols, j, idx int) int {
	sub := v / (rows * cols)
	i := idx / sub
	t := idx % sub
	return i*(v/rows) + j*sub + t
}

// localCol returns strip-local index of global vertex w in strip j, or -1.
func localCol(v, rows, cols, j, w int) int {
	sub := v / (rows * cols)
	blockPos := w % (v / rows)
	if blockPos/sub != j {
		return -1
	}
	return (w/(v/rows))*sub + blockPos%sub
}

func genWeights(cfg Config, l int, f int) []int64 {
	rng := rand.New(rand.NewSource(cfg.Seed*9000 + int64(l)))
	w := make([]int64, f*f)
	for i := range w {
		w[i] = int64(rng.Intn(7)) - 3
	}
	return w
}

func genFeatures(cfg Config, v, f int) []int64 {
	rng := rand.New(rand.NewSource(cfg.Seed * 555))
	x := make([]int64, v*f)
	for i := range x {
		x[i] = int64(rng.Intn(7)) - 3
	}
	return x
}

// packT stores int64 values as elements of type t (wrapping).
func packT(t elem.Type, vals []int64) []byte {
	out := make([]byte, len(vals)*t.Size())
	for i, v := range vals {
		elem.Store(t, out, i*t.Size(), v)
	}
	return out
}

func unpackT(t elem.Type, b []byte) []int64 {
	out := make([]int64, len(b)/t.Size())
	for i := range out {
		out[i] = elem.Load(t, b, i*t.Size())
	}
	return out
}

// tileCSR serializes A tile (i,j): rows are the row block's vertices,
// columns are strip-j locals.
func tileCSR(g *data.Graph, rows, cols, i, j int) []byte {
	rowsPer := g.V / rows
	var rp []int32
	var cs []int32
	rp = append(rp, 0)
	for r := 0; r < rowsPer; r++ {
		gl := i*rowsPer + r
		for _, w := range g.Neighbors(gl) {
			if lc := localCol(g.V, rows, cols, j, int(w)); lc >= 0 {
				cs = append(cs, int32(lc))
			}
		}
		rp = append(rp, int32(len(cs)))
	}
	buf := make([]byte, 4*len(rp)+4*len(cs))
	for k, v := range rp {
		putU32(buf[4*k:], uint32(v))
	}
	for k, v := range cs {
		putU32(buf[4*len(rp)+4*k:], uint32(v))
	}
	return buf
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// RunPIM executes the GNN on the simulated PIM system and returns the
// final feature matrix (V x F, row-major int64-widened) plus the profile.
func RunPIM(cfg Config, variant Variant, lvl core.Level) ([]int64, *appcore.Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	in := cfg.input()
	g := in.Graph
	R, C, F, T := cfg.Rows, cfg.Cols, in.F, cfg.Elem
	sz := T.Size()
	N := R * C
	V := g.V
	rowsPer := V / R  // A-tile rows per PE
	stripLen := V / C // strip rows per column
	sub := V / N      // sub-strip rows per PE

	// Serialized A tiles, padded to a common size.
	tiles := make([][]byte, N)
	maxTile := 0
	for i := 0; i < R; i++ {
		for j := 0; j < C; j++ {
			b := tileCSR(g, R, C, i, j)
			tiles[j+i*C] = b // PE linear = x + C*y
			if len(b) > maxTile {
				maxTile = len(b)
			}
		}
	}
	maxTile = (maxTile + 7) &^ 7
	for k := range tiles {
		p := make([]byte, maxTile)
		copy(p, tiles[k])
		tiles[k] = p
	}

	stripB := stripLen * F * sz
	wB := F * F * sz
	p1B := rowsPer * F * sz
	subB := sub * F * sz
	adjOff := 0
	xOff := adjOff + maxTile
	wOff := xOff + stripB
	p1Off := wOff + wB
	iOff := p1Off + p1B // RS dst (subB) or AR dst (p1B)
	candOff := iOff + p1B
	xsubOff := candOff + stripB
	mram := nextPow2(xsubOff + subB)

	comm, err := appcore.NewComm([]int{C, R}, N, mram, cost.DefaultParams())
	if err != nil {
		return nil, nil, err
	}
	tr := appcore.NewTracker(comm)

	// Distribute: A tiles and X strips by Scatter, W by Broadcast. The
	// two Scatters go through the fuser as one sequence: a single
	// distribution plan whose interior synchronization is elided.
	x0 := genFeatures(cfg, V, F)
	xbufs := make([]byte, 0, N*stripB)
	for i := 0; i < R; i++ {
		for j := 0; j < C; j++ {
			strip := make([]int64, stripLen*F)
			for c := 0; c < stripLen; c++ {
				gr := stripRow(V, R, C, j, c)
				copy(strip[c*F:(c+1)*F], x0[gr*F:(gr+1)*F])
			}
			xbufs = append(xbufs, packT(T, strip)...)
		}
	}
	setup, err := comm.CompileSequence(
		core.Collective{Prim: core.Scatter, Dims: "11",
			Hosts: [][]byte{concat(tiles)}, Dst: core.Span(adjOff, maxTile), Level: lvl},
		core.Collective{Prim: core.Scatter, Dims: "11",
			Hosts: [][]byte{xbufs}, Dst: core.Span(xOff, stripB), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	if err := tr.CommSequence(setup.Submit(), nil); err != nil {
		return nil, nil, err
	}

	pes := make([]int, N)
	for i := range pes {
		pes[i] = i
	}
	// Combination kernel: X'_sub = act(I_sub x W) for this PE's sub-block;
	// either zero-padded into a strip candidate at the PE's y-slot (RS&AR)
	// or staged densely for the AllGather (AR&AG).
	gemm := func(ctx *dpu.Ctx, srcOff, dstOff int, padStrip bool) {
		wb := make([]byte, wB)
		ctx.ReadMram(wOff, wb)
		ws := unpackT(T, wb)
		ib := make([]byte, subB)
		ctx.ReadMram(srcOff, ib)
		is := unpackT(T, ib)
		res := make([]int64, sub*F)
		for r := 0; r < sub; r++ {
			for fo := 0; fo < F; fo++ {
				var acc int64
				for fi := 0; fi < F; fi++ {
					acc += is[r*F+fi] * ws[fi*F+fo]
				}
				res[r*F+fo] = activation(acc)
			}
		}
		if padStrip {
			strip := make([]int64, stripLen*F)
			copy(strip[(ctx.PE/C)*sub*F:], res)
			ctx.WriteMram(dstOff, packT(T, strip))
		} else {
			ctx.WriteMram(dstOff, packT(T, res))
		}
		ctx.Exec(int64(sub*F*F) * 3)
	}

	// The layer loop replays the same collective signatures every layer,
	// so compile them once. The weight Broadcast binds wBuf, refilled in
	// place with each layer's packed weights.
	wBuf := packT(T, make([]int64, F*F))
	wBcast, err := comm.Compile(core.Collective{Prim: core.Broadcast, Dims: "11",
		Hosts: [][]byte{wBuf}, Dst: core.At(wOff), Level: lvl})
	if err != nil {
		return nil, nil, err
	}
	var rsPlan, arPlan, agPlan *core.CompiledPlan
	if variant == RSAR {
		if rsPlan, err = comm.Compile(core.Collective{Prim: core.ReduceScatter, Dims: "10",
			Src: core.Span(p1Off, p1B), Dst: core.At(iOff),
			Elem: T, Op: elem.Sum, Level: lvl}); err != nil {
			return nil, nil, err
		}
		if arPlan, err = comm.Compile(core.Collective{Prim: core.AllReduce, Dims: "01",
			Src: core.Span(candOff, stripB), Dst: core.At(xOff),
			Elem: T, Op: elem.Sum, Level: lvl}); err != nil {
			return nil, nil, err
		}
	} else {
		if arPlan, err = comm.Compile(core.Collective{Prim: core.AllReduce, Dims: "10",
			Src: core.Span(p1Off, p1B), Dst: core.At(iOff),
			Elem: T, Op: elem.Sum, Level: lvl}); err != nil {
			return nil, nil, err
		}
		if agPlan, err = comm.Compile(core.Collective{Prim: core.AllGather, Dims: "01",
			Src: core.Span(xsubOff, subB), Dst: core.At(xOff), Level: lvl}); err != nil {
			return nil, nil, err
		}
	}
	var pendF *core.Future // previous layer's y-axis collective, possibly in flight
	var pendPrim core.Primitive
	for l := 0; l < cfg.Layers; l++ {
		w := genWeights(cfg, l, F)
		// Refilling wBuf is safe: the previous Broadcast was waited before
		// the previous layer's aggregation kernel ran.
		copy(wBuf, packT(T, w))
		// The weight Broadcast (writes wOff) is independent of the previous
		// layer's y-axis collective (writes xOff), so the two overlap on
		// the elapsed-time timeline.
		wF := wBcast.Submit()
		if pendF != nil {
			if err := tr.CommFuture(pendPrim, pendF, nil); err != nil {
				return nil, nil, err
			}
			pendF = nil
		}
		if err := tr.CommFuture(core.Broadcast, wF, nil); err != nil {
			return nil, nil, err
		}
		// Aggregation kernel: P1 = A_tile x X_strip (SpGEMM).
		tr.Kernel(func() {
			comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
				adj := make([]byte, maxTile)
				ctx.ReadMram(adjOff, adj)
				xb := make([]byte, stripB)
				ctx.ReadMram(xOff, xb)
				xs := unpackT(T, xb)
				acc := make([]int64, rowsPer*F)
				var nnz int64
				for r := 0; r < rowsPer; r++ {
					lo := getU32(adj[4*r:])
					hi := getU32(adj[4*(r+1):])
					for e := lo; e < hi; e++ {
						c := int(getU32(adj[4*(rowsPer+1)+4*int(e):]))
						for f := 0; f < F; f++ {
							acc[r*F+f] += xs[c*F+f]
						}
					}
					nnz += int64(hi - lo)
				}
				ctx.WriteMram(p1Off, packT(T, acc)) // store wraps to T
				ctx.Exec(nnz*int64(F) + int64(rowsPer))
			})
		})
		if variant == RSAR {
			// ReduceScatter the partial aggregations along x.
			if err := tr.CommFuture(core.ReduceScatter, rsPlan.Submit(), nil); err != nil {
				return nil, nil, err
			}
			// Combination kernel on the received sub-block, placed into a
			// zero-padded strip candidate at this PE's y-rank slot.
			tr.Kernel(func() {
				comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
					gemm(ctx, iOff, candOff, true)
				})
			})
			// AllReduce the padded strips along y: summing the disjoint
			// slots concatenates them — every PE gets the full new strip.
			// Left in flight so the next layer's weight Broadcast overlaps.
			pendF, pendPrim = arPlan.Submit(), core.AllReduce
		} else {
			// AllReduce the partial aggregations along x (full strips).
			if err := tr.CommFuture(core.AllReduce, arPlan.Submit(), nil); err != nil {
				return nil, nil, err
			}
			// Combination on this PE's designated sub-block only (the j-th
			// sub-block of its row strip — 2-D tiled results), staged for
			// the AllGather.
			tr.Kernel(func() {
				comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
					gemm(ctx, iOff+(ctx.PE%C)*subB, xsubOff, false)
				})
			})
			// AllGather the sub-blocks along y into the new strips; left in
			// flight like the RS&AR AllReduce above.
			pendF, pendPrim = agPlan.Submit(), core.AllGather
		}
	}
	if pendF != nil {
		if err := tr.CommFuture(pendPrim, pendF, nil); err != nil {
			return nil, nil, err
		}
	}
	// Retrieve: each PE stages its unique sub-strip; host reassembles.
	tr.Kernel(func() {
		comm.Engine().Launch(dpu.LaunchSpec{PEs: pes, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
			i := ctx.PE / C
			b := make([]byte, subB)
			ctx.ReadMram(xOff+i*subB, b)
			ctx.WriteMram(xsubOff, b)
			ctx.Exec(int64(sub))
		})
	})
	gaF, err := comm.Submit(core.Collective{Prim: core.Gather, Dims: "11",
		Src: core.Span(xsubOff, subB), Level: lvl})
	if err := tr.CommFuture(core.Gather, gaF, err); err != nil {
		return nil, nil, err
	}
	bufs := gaF.Results()
	tr.Finish()
	out := make([]int64, V*F)
	for i := 0; i < R; i++ {
		for j := 0; j < C; j++ {
			pe := j + i*C
			vals := unpackT(T, bufs[0][pe*subB:(pe+1)*subB])
			for t := 0; t < sub; t++ {
				gr := stripRow(V, R, C, j, i*sub+t)
				copy(out[gr*F:(gr+1)*F], vals[t*F:(t+1)*F])
			}
		}
	}
	return out, &tr.Prof, nil
}

// RunCPU computes the identical GNN on the CPU-only model (same integer
// wrapping at width cfg.Elem) and returns the final features plus the
// roofline time.
func RunCPU(cfg Config, variant Variant) ([]int64, cost.Seconds, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	in := cfg.input()
	g := in.Graph
	F, T := in.F, cfg.Elem
	V := g.V
	x := genFeatures(cfg, V, F)
	cpu := appcore.DefaultCPU()
	var total cost.Seconds
	wrap := func(v int64) int64 {
		b := make([]byte, 8)
		elem.Store(T, b, 0, v)
		return elem.Load(T, b, 0)
	}
	for l := 0; l < cfg.Layers; l++ {
		w := genWeights(cfg, l, F)
		// Aggregation: I = wrapT(A x X).
		agg := make([]int64, V*F)
		var nnz int64
		for v := 0; v < V; v++ {
			for _, nb := range g.Neighbors(v) {
				for f := 0; f < F; f++ {
					agg[v*F+f] += x[int(nb)*F+f]
				}
			}
			nnz += int64(g.OutDegree(v))
		}
		for i := range agg {
			agg[i] = wrap(agg[i])
		}
		// Combination: X' = act(I x W).
		nx := make([]int64, V*F)
		for v := 0; v < V; v++ {
			for fo := 0; fo < F; fo++ {
				var acc int64
				for fi := 0; fi < F; fi++ {
					acc += agg[v*F+fi] * w[fi*F+fo]
				}
				nx[v*F+fo] = activation(acc)
			}
		}
		x = nx
		// Aggregation gathers random feature rows (latency-bound per
		// edge) and streams them; combination is a naive GEMM streaming
		// the full weight panel per row block (the reference OpenMP
		// kernels of [28]/[29] do not cache-block).
		total += cpu.GraphTime(nnz) +
			cpu.Time(nnz*int64(F*T.Size())+int64(V*F)*int64(F)*int64(T.Size()), nnz*int64(F)*2+int64(V*F*F)*2)
	}
	_ = variant // both variants compute identical results
	return x, total, nil
}

func concat(bufs [][]byte) []byte {
	var out []byte
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
