package appcore

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/dpu"
)

func TestGeoForPEs(t *testing.T) {
	cases := []struct {
		n        int
		channels int
		ok       bool
	}{
		{8, 1, true},    // 1 bank
		{64, 1, true},   // 8 banks
		{128, 1, true},  // 2 ranks
		{256, 1, true},  // full channel
		{512, 2, true},  // 2 channels
		{1024, 4, true}, // paper system
		{24, 3, true},   // 3 channels of 8 (non-pow2 channel count)
		{0, 0, false},
		{12, 0, false},
		{-8, 0, false},
	}
	for _, c := range cases {
		g, err := GeoForPEs(c.n, 4096)
		if (err == nil) != c.ok {
			t.Errorf("GeoForPEs(%d): err=%v, want ok=%v", c.n, err, c.ok)
			continue
		}
		if err != nil {
			continue
		}
		if g.NumPEs() != c.n {
			t.Errorf("GeoForPEs(%d) has %d PEs", c.n, g.NumPEs())
		}
		if g.Channels != c.channels {
			t.Errorf("GeoForPEs(%d) channels = %d, want %d", c.n, g.Channels, c.channels)
		}
		if g.RanksPerChannel > 4 || g.BanksPerChip > 8 {
			t.Errorf("GeoForPEs(%d) exceeds paper limits: %+v", c.n, g)
		}
	}
}

func TestGeoForPEsScalesBanksBeforeRanks(t *testing.T) {
	g, err := GeoForPEs(32, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if g.BanksPerChip != 4 || g.RanksPerChannel != 1 {
		t.Errorf("32 PEs should fill banks first: %+v", g)
	}
}

func TestPartitionCSRRoundTrip(t *testing.T) {
	g := data.RMAT(256, 1024, 3)
	for _, n := range []int{4, 16, 64} {
		bufs, size, err := PartitionCSR(g, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(bufs) != n {
			t.Fatalf("got %d buffers", len(bufs))
		}
		owned := g.V / n
		for p, buf := range bufs {
			if len(buf) != size || size%8 != 0 {
				t.Fatalf("buffer %d has size %d (common %d)", p, len(buf), size)
			}
			sg := NewSubgraphReader(buf, owned)
			for i := 0; i < owned; i++ {
				v := p*owned + i
				if got, want := sg.Degree(i), g.OutDegree(v); got != want {
					t.Fatalf("PE %d vertex %d degree %d, want %d", p, v, got, want)
				}
				for j, w := range g.Neighbors(v) {
					if sg.Neighbor(i, j) != w {
						t.Fatalf("PE %d vertex %d neighbor %d mismatch", p, v, j)
					}
				}
			}
		}
	}
}

func TestPartitionCSRRejectsBadSplit(t *testing.T) {
	g := data.RMAT(256, 512, 3)
	if _, _, err := PartitionCSR(g, 7); err == nil {
		t.Error("7-way split of 256 vertices accepted")
	}
}

func TestCPUModelRoofline(t *testing.T) {
	m := CPUModel{MemBW: 10, IntOps: 100, GraphTEPS: 5, LookupsPerSec: 2}
	if got := m.Time(100, 100); float64(got) != 10 {
		t.Errorf("memory-bound time = %v, want 10", got)
	}
	if got := m.Time(1, 1000); float64(got) != 10 {
		t.Errorf("compute-bound time = %v, want 10", got)
	}
	if got := m.GraphTime(50); float64(got) != 10 {
		t.Errorf("graph time = %v, want 10", got)
	}
	if got := m.LookupTime(20); float64(got) != 10 {
		t.Errorf("lookup time = %v, want 10", got)
	}
}

func TestDefaultCPUIsSane(t *testing.T) {
	m := DefaultCPU()
	if m.MemBW <= 0 || m.IntOps <= 0 || m.GraphTEPS <= 0 || m.LookupsPerSec <= 0 {
		t.Error("non-positive CPU parameter")
	}
	// Streaming must be far faster than latency-bound accesses.
	if m.MemBW/8 <= m.GraphTEPS {
		t.Error("graph traversal should be latency-bound, not bandwidth-bound")
	}
}

func TestTrackerAttribution(t *testing.T) {
	comm, err := NewComm([]int{16}, 16, 4096, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(comm)
	tr.Kernel(func() {
		comm.Engine().Launch(dpu.LaunchSpec{PEs: []int{0, 1}, Category: cost.Kernel}, comm.Meter(), func(ctx *dpu.Ctx) {
			ctx.Exec(1000)
		})
	})
	if tr.Prof.KernelTime <= 0 {
		t.Error("kernel time not tracked")
	}
	bufs := [][]byte{make([]byte, 16*8)}
	bd, err := comm.Run(core.Collective{Prim: core.Scatter, Dims: "1",
		Hosts: bufs, Dst: core.Span(0, 8), Level: core.IM})
	if err := tr.Comm(core.Scatter, bd, err); err != nil {
		t.Fatal(err)
	}
	if tr.Prof.ByPrimitive[core.Scatter] <= 0 {
		t.Error("scatter time not tracked")
	}
	if tr.Prof.Total() != tr.Prof.KernelTime+tr.Prof.CommTotal() {
		t.Error("profile total inconsistent")
	}
	if s := tr.Prof.String(); !strings.Contains(s, "kernel") || !strings.Contains(s, "Sc") {
		t.Errorf("profile string %q missing parts", s)
	}
}

func TestTrackerPropagatesErrors(t *testing.T) {
	comm, _ := NewComm([]int{16}, 16, 4096, cost.DefaultParams())
	tr := NewTracker(comm)
	bd, err := comm.Run(core.Collective{Prim: core.Gather, Dims: "bad-dims",
		Src: core.Span(0, 8), Level: core.IM})
	if err == nil {
		t.Fatal("expected error")
	}
	if tr.Comm(core.Gather, bd, err) == nil {
		t.Error("tracker swallowed error")
	}
}

func TestNewCommValidation(t *testing.T) {
	if _, err := NewComm([]int{10}, 10, 4096, cost.DefaultParams()); err == nil {
		t.Error("bad PE count accepted")
	}
	if _, err := NewComm([]int{32}, 64, 4096, cost.DefaultParams()); err == nil {
		t.Error("shape/PE mismatch accepted")
	}
}

// Property: PartitionCSR conserves the edge multiset.
func TestPartitionCSRConservesEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := data.Uniform(128, 512, seed)
		bufs, _, err := PartitionCSR(g, 8)
		if err != nil {
			return false
		}
		total := 0
		owned := g.V / 8
		for _, buf := range bufs {
			sg := NewSubgraphReader(buf, owned)
			for i := 0; i < owned; i++ {
				total += sg.Degree(i)
			}
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
