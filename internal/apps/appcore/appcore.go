// Package appcore provides shared infrastructure for the five benchmark
// applications (§ VII): per-primitive execution profiles (the stacked
// bars of Figures 4 and 13), PE-count-to-geometry mapping following the
// paper's channel scaling rule, and the CPU-only roofline model used by
// the Figure 21 comparison.
package appcore

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
)

// Profile splits an application run's simulated time into kernel compute
// and per-primitive communication, matching the paper's app breakdowns.
type Profile struct {
	// KernelTime is DPU application compute (including its launch
	// overhead).
	KernelTime cost.Seconds
	// ByPrimitive is total time per collective primitive.
	ByPrimitive map[core.Primitive]cost.Seconds
	// CommBreakdown aggregates the per-category breakdown of all
	// communication calls (for the Figure 4 pies).
	CommBreakdown cost.Breakdown
	// Elapsed is the overlap-aware elapsed simulated time (Comm.Elapsed
	// at the end of the run): at most Total, lower when asynchronously
	// submitted collectives overlapped on the timeline. Zero if the app
	// predates Tracker.Finish.
	Elapsed cost.Seconds
}

// Total returns kernel + communication time.
func (p *Profile) Total() cost.Seconds { return p.KernelTime + p.CommTotal() }

// CommTotal returns the summed communication time.
func (p *Profile) CommTotal() cost.Seconds {
	var t cost.Seconds
	for _, v := range p.ByPrimitive {
		t += v
	}
	return t
}

// String renders the profile as a single line.
func (p *Profile) String() string {
	s := fmt.Sprintf("total %.4gs (kernel %.4gs", float64(p.Total()), float64(p.KernelTime))
	for _, prim := range core.Primitives() {
		if t, ok := p.ByPrimitive[prim]; ok && t > 0 {
			s += fmt.Sprintf(", %v %.4gs", prim, float64(t))
		}
	}
	return s + ")"
}

// Tracker wraps a Comm and attributes simulated time to profile buckets.
type Tracker struct {
	C    *core.Comm
	Prof Profile
}

// NewTracker creates a tracker for the comm context.
func NewTracker(c *core.Comm) *Tracker {
	return &Tracker{C: c, Prof: Profile{ByPrimitive: make(map[core.Primitive]cost.Seconds)}}
}

// Kernel runs f (which launches app kernels on t.C's engine) and
// attributes the elapsed simulated time to KernelTime. Kernel is a
// barrier: it flushes the comm's submission queue first (kernels touch
// MRAM the in-flight collectives may be producing) and extends the
// elapsed-time timeline with the kernel's cost.
func (t *Tracker) Kernel(f func()) {
	t.C.Flush()
	before := t.C.Meter().Snapshot()
	f()
	bd := t.C.Meter().Snapshot().Sub(before)
	t.Prof.KernelTime += bd.Total()
	t.C.ExtendElapsed(bd)
}

// Comm records a collective call's breakdown under its primitive.
func (t *Tracker) Comm(p core.Primitive, bd cost.Breakdown, err error) error {
	if err != nil {
		return err
	}
	t.Prof.ByPrimitive[p] += bd.Total()
	t.Prof.CommBreakdown = t.Prof.CommBreakdown.Add(bd)
	return nil
}

// CommFuture waits for an asynchronously submitted collective and records
// its breakdown under p. err is the Submit error, letting call sites stay
// single-line: tr.CommFuture(p, comm.SubmitX(...)).
func (t *Tracker) CommFuture(p core.Primitive, f *core.Future, err error) error {
	if err != nil {
		return err
	}
	bd, werr := f.Wait()
	if werr != nil {
		return werr
	}
	return t.Comm(p, bd, nil)
}

// CommSequence waits for a fused multi-collective plan's future and
// attributes its measured charge across the sequence's member primitives
// in proportion to their unfused per-run costs (so fusion savings are
// shared pro rata and the per-primitive profile stays comparable to an
// unfused run); the aggregate communication breakdown records the full
// measured charge once. err is the Submit error, as in CommFuture.
func (t *Tracker) CommSequence(f *core.Future, err error) error {
	if err != nil {
		return err
	}
	bd, werr := f.Wait()
	if werr != nil {
		return werr
	}
	cp := f.Plan()
	members, costs := cp.Members(), cp.MemberCosts()
	var total float64
	for _, c := range costs {
		total += float64(c.Total())
	}
	if total <= 0 {
		t.Prof.ByPrimitive[members[0]] += bd.Total()
	} else {
		for i, p := range members {
			t.Prof.ByPrimitive[p] += cost.Seconds(float64(bd.Total()) * float64(costs[i].Total()) / total)
		}
	}
	t.Prof.CommBreakdown = t.Prof.CommBreakdown.Add(bd)
	return nil
}

// Finish flushes the comm and records the overlap-aware elapsed time in
// the profile. Call it once, after the run's last collective.
func (t *Tracker) Finish() {
	t.C.Flush()
	t.Prof.Elapsed = t.C.Elapsed()
}

// GeoForPEs returns the DIMM geometry the paper uses for a given PE count
// (§ VIII-E: up to 256 PEs on one channel, then more channels): PE counts
// must be n = channels * ranks * 8 chips * banks with ranks, banks <= the
// paper's 4 and 8.
func GeoForPEs(n, mramPerBank int) (dram.Geometry, error) {
	if n <= 0 || n%8 != 0 {
		return dram.Geometry{}, fmt.Errorf("appcore: PE count %d must be a positive multiple of 8", n)
	}
	g := dram.Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 1, MramPerBank: mramPerBank}
	rem := n / 8 // chips are fixed at 8
	for _, scale := range []struct {
		field *int
		max   int
	}{{&g.BanksPerChip, 8}, {&g.RanksPerChannel, 4}} {
		for *scale.field < scale.max && rem%2 == 0 {
			*scale.field *= 2
			rem /= 2
		}
	}
	g.Channels = rem
	if g.NumPEs() != n {
		return dram.Geometry{}, fmt.Errorf("appcore: cannot realize %d PEs", n)
	}
	return g, nil
}

// CPUModel is the roofline model for the CPU-only baselines of § VIII-G:
// a Xeon Gold 5215-class host. Streaming kernels are bounded by memory
// bandwidth or integer throughput; graph traversal and embedding lookups
// are bounded by memory latency. The latency-bound rates are calibrated
// to paper-scale datasets (LiveJournal, Criteo), where working sets far
// exceed the caches — see DESIGN.md's substitution table.
type CPUModel struct {
	// MemBW is achievable memory bandwidth for the streaming integer
	// kernels (bytes/s; naive-but-parallel code, not peak STREAM).
	MemBW float64
	// IntOps is sustained integer op throughput (ops/s, all cores).
	IntOps float64
	// GraphTEPS is traversed edges per second for irregular graph codes
	// (BFS/CC at LiveJournal scale: random accesses miss all caches).
	GraphTEPS float64
	// LookupsPerSec is embedding-row fetch throughput at Criteo scale
	// (TLB + DRAM latency per row).
	LookupsPerSec float64
}

// DefaultCPU returns the calibrated Xeon Gold 5215-class model.
func DefaultCPU() CPUModel {
	return CPUModel{MemBW: 25e9, IntOps: 40e9, GraphTEPS: 15e6, LookupsPerSec: 2.5e6}
}

// Time returns the roofline time for a phase touching the given bytes and
// executing the given scalar-equivalent integer ops: the max of the
// bandwidth and compute terms.
func (m CPUModel) Time(bytes, ops int64) cost.Seconds {
	bw := float64(bytes) / m.MemBW
	cp := float64(ops) / m.IntOps
	if bw > cp {
		return cost.Seconds(bw)
	}
	return cost.Seconds(cp)
}

// GraphTime returns the latency-bound time for traversing the given
// number of edges.
func (m CPUModel) GraphTime(edges int64) cost.Seconds {
	return cost.Seconds(float64(edges) / m.GraphTEPS)
}

// LookupTime returns the latency-bound time for the given number of
// embedding-row fetches.
func (m CPUModel) LookupTime(rows int64) cost.Seconds {
	return cost.Seconds(float64(rows) / m.LookupsPerSec)
}

// NewComm builds a system, hypercube and comm for an app config.
func NewComm(shape []int, pes, mramPerBank int, params cost.Params) (*core.Comm, error) {
	geo, err := GeoForPEs(pes, mramPerBank)
	if err != nil {
		return nil, err
	}
	sys, err := dram.NewSystem(geo)
	if err != nil {
		return nil, err
	}
	hc, err := core.NewHypercube(sys, shape)
	if err != nil {
		return nil, err
	}
	return core.NewComm(hc, params), nil
}
