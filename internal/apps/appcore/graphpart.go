package appcore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/data"
)

// PartitionCSR splits a graph into per-PE subgraphs by contiguous vertex
// ranges (PE p owns vertices [p*V/n, (p+1)*V/n)) and serializes each as
//
//	[rowptr: (ownedV+1) x u32, local offsets][cols: edges x u32]
//
// padded with zeros to a common 8-byte-aligned size, ready for Scatter.
// It returns the per-PE buffers and the common buffer size.
func PartitionCSR(g *data.Graph, n int) ([][]byte, int, error) {
	if g.V%n != 0 {
		return nil, 0, fmt.Errorf("appcore: %d vertices not divisible by %d PEs", g.V, n)
	}
	owned := g.V / n
	maxSz := 0
	sizes := make([]int, n)
	for p := 0; p < n; p++ {
		edges := int(g.RowPtr[(p+1)*owned] - g.RowPtr[p*owned])
		sizes[p] = 4*(owned+1) + 4*edges
		if sizes[p] > maxSz {
			maxSz = sizes[p]
		}
	}
	maxSz = (maxSz + 7) &^ 7
	bufs := make([][]byte, n)
	for p := 0; p < n; p++ {
		buf := make([]byte, maxSz)
		base := g.RowPtr[p*owned]
		for i := 0; i <= owned; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(g.RowPtr[p*owned+i]-base))
		}
		for i, c := range g.Col[base:g.RowPtr[(p+1)*owned]] {
			binary.LittleEndian.PutUint32(buf[4*(owned+1)+4*i:], uint32(c))
		}
		bufs[p] = buf
	}
	return bufs, maxSz, nil
}

// SubgraphReader decodes a PartitionCSR buffer inside a DPU kernel.
// The caller supplies the raw bytes read from MRAM.
type SubgraphReader struct {
	owned int
	buf   []byte
}

// NewSubgraphReader wraps a serialized subgraph with ownedV vertices.
func NewSubgraphReader(buf []byte, ownedV int) *SubgraphReader {
	return &SubgraphReader{owned: ownedV, buf: buf}
}

// Degree returns local vertex i's edge count.
func (r *SubgraphReader) Degree(i int) int {
	return int(r.rowptr(i+1) - r.rowptr(i))
}

// Neighbor returns the j-th neighbor (global vertex ID) of local vertex i.
func (r *SubgraphReader) Neighbor(i, j int) int32 {
	off := 4*(r.owned+1) + 4*(int(r.rowptr(i))+j)
	return int32(binary.LittleEndian.Uint32(r.buf[off:]))
}

func (r *SubgraphReader) rowptr(i int) uint32 {
	return binary.LittleEndian.Uint32(r.buf[4*i:])
}
