// Package host models the host CPU side of the PIM-DIMM system: the
// staging memory, the AVX-512 vector unit, the driver's domain-transfer
// engine, and the burst-level transfer engine between host and entangled
// groups (with rank-level parallelism).
//
// # Role
//
// Every byte that moves between PEs moves through the Host — PEs have no
// interconnect (§ II-A) — so this package is the chokepoint both designs
// share. All functional data movement is real: bursts move actual bytes
// between the simulated bank MRAMs and host buffers/registers. Costs are
// charged to a cost.Meter in the categories of the paper's breakdowns.
//
// # Key types and seams
//
//   - Host owns the attached dram.System, the cost parameters, and the
//     meter. Single-owner state (core.Comm serializes executions on it),
//     except Stats and Meter, which may be polled concurrently.
//   - Shards (host.go) are the worker-pool seam: each shard wraps its
//     own vector unit and burst/channel tallies so executor workers
//     stream disjoint column ranges concurrently, and MergeShards folds
//     the tallies back deterministically (shard order, then channel
//     order) on the executing goroutine before the epoch closes. The
//     concurrency contract is exactly that — shards touch disjoint
//     MRAM, all shared counters merge single-threaded — so worker count
//     never changes any statistic. SetWorkers sizes the sharded bulk
//     paths (mirrored from core.Comm.SetExecWorkers).
//   - Transfer epochs (BeginXfer/EndXfer): burst traffic is tallied per
//     channel and charged at epoch end as the *maximum* per-channel time
//     — channels transfer in parallel, as on real hardware; without
//     RankParallel the effective bandwidth halves (§ VIII ablation).
//   - ReadBurst/WriteBurst move one 64-byte burst per entangled group in
//     PIM byte order — the unit the optimized column-streaming engine
//     consumes (§ V-A2).
//   - BulkRead/BulkWrite are the conventional UPMEM-SDK-style staged
//     paths of the baseline design (§ III-A, Figure 3a): bus + automatic
//     domain transfer + staging-memory traffic.
//   - DomainTransfer is the driver's 8x8 byte transpose between PIM and
//     host byte domains (§ II-B, Figure 1).
//   - Charge* methods map one host-side work class each to the cost
//     model (scalar/local/SIMD modulation, reductions, staging traffic).
//   - Cost-only seams: TallyBursts, ChargeBulkRead, ChargeBulkWrite and
//     ApplyStats account traffic without moving bytes, with charge
//     sequences that mirror the functional paths exactly — the host-side
//     half of the cost-only backend's bit-identical guarantee.
//
// XferStats (stats.go) summarizes cumulative bus traffic for tests and
// cmd/pidtrace.
//
// # Paper map
//
//	Figure 1, § II-B  DomainTransfer
//	Figure 3a, § III  BulkRead / BulkWrite (baseline staging)
//	§ V-A2            ReadBurst / WriteBurst (column streaming)
//	§ VIII-D          Charge{Scalar,Local}Reduce calibration
package host
