package host

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/vec"
)

func testHost(t *testing.T) *Host {
	t.Helper()
	sys, err := dram.NewSystem(dram.Geometry{Channels: 2, RanksPerChannel: 2, BanksPerChip: 2, MramPerBank: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return New(sys, cost.DefaultParams())
}

func TestReadWriteBurstRoundTrip(t *testing.T) {
	h := testHost(t)
	var r vec.Reg
	for i := range r {
		r[i] = byte(i ^ 0x5A)
	}
	h.BeginXfer()
	h.WriteBurst(1, 64, r)
	got := h.ReadBurst(1, 64)
	h.EndXfer()
	if got != r {
		t.Fatal("burst round trip mismatch")
	}
	if h.Meter().Get(cost.PEMem) <= 0 {
		t.Error("no bus time charged")
	}
}

func TestBurstOutsideEpochPanics(t *testing.T) {
	h := testHost(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.ReadBurst(0, 0)
}

func TestEndXferWithoutBeginPanics(t *testing.T) {
	h := testHost(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.EndXfer()
}

func TestChannelsTransferInParallel(t *testing.T) {
	h := testHost(t)
	geo := h.System().Geometry()
	groupsPerChannel := geo.NumGroups() / geo.Channels

	// Same byte volume: all on channel 0 vs spread over both channels.
	timeFor := func(groups []int) cost.Seconds {
		hh := New(h.System(), h.Params())
		hh.BeginXfer()
		for _, g := range groups {
			hh.WriteBurst(g, 0, vec.Reg{})
			hh.WriteBurst(g, 0, vec.Reg{})
		}
		hh.EndXfer()
		return hh.Meter().Get(cost.PEMem)
	}
	sameChannel := timeFor([]int{0, 1, 2, 3})                              // all channel 0
	spread := timeFor([]int{0, 1, groupsPerChannel, groupsPerChannel + 1}) // 2+2
	if math.Abs(float64(sameChannel)/float64(spread)-2.0) > 1e-9 {
		t.Errorf("same-channel %v vs spread %v: want 2x", sameChannel, spread)
	}
}

func TestRankParallelAblation(t *testing.T) {
	h := testHost(t)
	p := h.Params()
	p.RankParallel = false
	slow := New(h.System(), p)

	run := func(hh *Host) cost.Seconds {
		hh.BeginXfer()
		hh.WriteBurst(0, 0, vec.Reg{})
		hh.EndXfer()
		return hh.Meter().Get(cost.PEMem)
	}
	if fast, s := run(h), run(slow); s <= fast {
		t.Errorf("serialized ranks (%v) should be slower than parallel (%v)", s, fast)
	}
}

func TestNestedEpochsChargeOnce(t *testing.T) {
	h := testHost(t)
	h.BeginXfer()
	h.BeginXfer()
	h.WriteBurst(0, 0, vec.Reg{})
	h.EndXfer()
	mid := h.Meter().Get(cost.PEMem)
	if mid != 0 {
		t.Error("inner EndXfer charged early")
	}
	h.EndXfer()
	if h.Meter().Get(cost.PEMem) <= 0 {
		t.Error("outer EndXfer did not charge")
	}
}

func TestDomainTransferIsInvolution(t *testing.T) {
	h := testHost(t)
	buf := make([]byte, 256)
	rng := rand.New(rand.NewSource(3))
	rng.Read(buf)
	orig := append([]byte(nil), buf...)
	h.DomainTransfer(buf)
	if bytes.Equal(buf, orig) {
		t.Error("DT did not change buffer")
	}
	h.DomainTransfer(buf)
	if !bytes.Equal(buf, orig) {
		t.Error("DT twice != identity")
	}
	if h.Meter().Get(cost.DomainTransfer) <= 0 {
		t.Error("DT not charged")
	}
}

func TestDomainTransferAlignmentPanics(t *testing.T) {
	h := testHost(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.DomainTransfer(make([]byte, 100))
}

// The critical domain-transfer semantics (§ II-B): writing a domain-
// transferred host buffer as bursts puts each full 8-byte element into a
// single bank.
func TestDTThenWritePlacesElementsInBanks(t *testing.T) {
	h := testHost(t)
	// Host-domain data: 8 elements of 8 bytes; element e = [e0 e1 ... e7]
	// with value byte e in all positions, distinguishable per element.
	hostData := make([]byte, 64)
	for e := 0; e < 8; e++ {
		for b := 0; b < 8; b++ {
			hostData[8*e+b] = byte(16*e + b)
		}
	}
	dt := append([]byte(nil), hostData...)
	h.DomainTransfer(dt)
	var r vec.Reg
	copy(r[:], dt)
	h.BeginXfer()
	h.WriteBurst(0, 0, r)
	h.EndXfer()
	// Bank c must now hold element c contiguously.
	for c := 0; c < dram.ChipsPerRank; c++ {
		bank := h.System().BankBytes(0*dram.ChipsPerRank + c)[:8]
		want := hostData[8*c : 8*c+8]
		if !bytes.Equal(bank, want) {
			t.Fatalf("bank %d holds %v, want element %d = %v", c, bank, c, want)
		}
	}
}

func TestBulkReadWriteRoundTrip(t *testing.T) {
	h := testHost(t)
	groups := []int{0, 3}
	perPE := 64
	data := make([]byte, len(groups)*dram.ChipsPerRank*perPE)
	rng := rand.New(rand.NewSource(11))
	rng.Read(data)

	h.BulkWrite(groups, 128, data)
	got := h.BulkRead(groups, 128, perPE)
	if !bytes.Equal(got, data) {
		t.Fatal("bulk round trip mismatch")
	}
	// All cost categories of the conventional path must be charged.
	for _, c := range []cost.Category{cost.PEMem, cost.DomainTransfer, cost.HostMem} {
		if h.Meter().Get(c) <= 0 {
			t.Errorf("category %v not charged", c)
		}
	}
}

func TestBulkWritePerPELayout(t *testing.T) {
	h := testHost(t)
	perPE := 8
	n := dram.ChipsPerRank
	data := make([]byte, n*perPE)
	for pe := 0; pe < n; pe++ {
		for i := 0; i < perPE; i++ {
			data[pe*perPE+i] = byte(pe*10 + i)
		}
	}
	h.BulkWrite([]int{0}, 0, data)
	// PE c (chip c of group 0) must hold its own 8 bytes contiguously.
	for c := 0; c < n; c++ {
		bank := h.System().BankBytes(c)[:perPE]
		if !bytes.Equal(bank, data[c*perPE:(c+1)*perPE]) {
			t.Fatalf("PE %d holds %v, want %v", c, bank, data[c*perPE:(c+1)*perPE])
		}
	}
}

func TestBulkAlignmentPanics(t *testing.T) {
	h := testHost(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.BulkRead([]int{0}, 0, 12)
}

func TestChargeHelpers(t *testing.T) {
	h := testHost(t)
	h.ChargeDT(1000)
	h.ChargeScalarMod(1000)
	h.ChargeLocalMod(1000)
	h.ChargeSIMD(1000)
	h.ChargeReduce(1000)
	h.ChargeHostMem(1000)
	h.ChargeSync()
	if h.Meter().Get(cost.DomainTransfer) <= 0 ||
		h.Meter().Get(cost.HostMod) <= 0 ||
		h.Meter().Get(cost.HostMem) <= 0 ||
		h.Meter().Get(cost.Other) <= 0 {
		t.Error("charge helpers missed a category")
	}
	// Scalar modulation must be slower than local, which is slower than SIMD.
	p := h.Params()
	if !(p.ScalarModBPC < p.LocalModBPC && p.LocalModBPC < p.SIMDModBPC) {
		t.Error("modulation throughput ordering violated in defaults")
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := testHost(t)
	if h.Stats().TotalBytes() != 0 || h.Stats().Bursts != 0 {
		t.Error("fresh host has traffic")
	}
	h.BeginXfer()
	h.WriteBurst(0, 0, vec.Reg{})
	h.WriteBurst(0, 8, vec.Reg{})
	_ = h.ReadBurst(0, 0)
	h.EndXfer()
	st := h.Stats()
	if st.Bursts != 3 {
		t.Errorf("bursts = %d, want 3", st.Bursts)
	}
	if st.TotalBytes() != 3*dram.BurstBytes {
		t.Errorf("bytes = %d, want %d", st.TotalBytes(), 3*dram.BurstBytes)
	}
	// Stats snapshots are independent copies.
	st.BytesPerChannel[0] = 999
	if h.Stats().BytesPerChannel[0] == 999 {
		t.Error("Stats exposed internal slice")
	}
}

// The optimized AlltoAll engine must move exactly what it claims: a
// traffic-accounting cross-check at the transfer layer.
func TestStatsMatchExpectedTraffic(t *testing.T) {
	h := testHost(t)
	perPE := 128
	groups := []int{0, 1}
	data := make([]byte, len(groups)*dram.ChipsPerRank*perPE)
	h.BulkWrite(groups, 0, data)
	want := int64(len(data))
	if got := h.Stats().TotalBytes(); got != want {
		t.Errorf("bulk write moved %d bytes, want %d", got, want)
	}
}
