package host

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/par"
	"repro/internal/vec"
)

// Host is the simulated host CPU attached to a dram.System. Host is
// single-owner state (core.Comm serializes all executions on it), except
// for the cumulative transfer statistics and the meter, which may be read
// concurrently (Stats, Meter) while an execution runs.
//
// Inside one execution, bulk transfers and the streaming engine shard
// their per-group work across worker goroutines (SetWorkers); each worker
// tallies bus traffic on a private Shard and the owner merges the shard
// totals deterministically, so the epoch accounting, the cumulative
// statistics and the charged times are byte-identical at any worker
// count (see doc.go, "Concurrency contract").
type Host struct {
	sys    *dram.System
	params cost.Params
	meter  *cost.Meter
	vu     vec.Unit

	epochDepth int
	chanBytes  []int64 // per-channel bytes this epoch

	// workers is the shard count for internally parallelized bulk
	// transfers; shards are the reusable per-worker tally contexts and
	// stag/brun/wrun the reusable staging state of the bulk paths.
	workers int
	shards  []*Shard
	stag    []byte
	brun    bulkReadRun
	wrun    bulkWriteRun

	// Cumulative transfer statistics (see stats.go). Updated and read
	// atomically so Stats() can be polled while collectives execute.
	totalBursts atomic.Int64
	totalByChan []atomic.Int64
}

// New returns a host for the given system with a fresh meter.
func New(sys *dram.System, params cost.Params) *Host {
	return &Host{
		sys:         sys,
		params:      params,
		meter:       cost.NewMeter(),
		chanBytes:   make([]int64, sys.Geometry().Channels),
		workers:     runtime.GOMAXPROCS(0),
		totalByChan: make([]atomic.Int64, sys.Geometry().Channels),
	}
}

// SetWorkers sets the shard count for internally parallelized bulk
// transfers (BulkRead/BulkWrite); n <= 1 runs them serially. Results and
// accounting are byte-identical at any count. core.Comm mirrors its
// ExecWorkers knob here.
func (h *Host) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	h.workers = n
}

// Workers returns the configured bulk-transfer shard count.
func (h *Host) Workers() int { return h.workers }

// System returns the attached memory system.
func (h *Host) System() *dram.System { return h.sys }

// Params returns the cost parameters.
func (h *Host) Params() cost.Params { return h.params }

// Meter returns the host's cost meter.
func (h *Host) Meter() *cost.Meter { return h.meter }

// VecUnit returns the host's vector unit (shared instruction counter).
func (h *Host) VecUnit() *vec.Unit { return &h.vu }

// BeginXfer opens a transfer epoch: burst traffic is tallied per channel
// and charged at EndXfer with channels running in parallel. Epochs nest;
// only the outermost EndXfer charges.
func (h *Host) BeginXfer() { h.epochDepth++ }

// EndXfer closes the epoch and charges PEMem with the bus time: the
// maximum per-channel time, where a channel's time is its byte count over
// the channel bandwidth. Without rank parallelism, transfers to the ranks
// of a channel serialize with per-rank turnaround, halving effective
// bandwidth (the UPMEM driver's rank-interleaved transfers avoid this).
func (h *Host) EndXfer() {
	if h.epochDepth <= 0 {
		panic("host: EndXfer without BeginXfer")
	}
	h.epochDepth--
	if h.epochDepth > 0 {
		return
	}
	bw := h.params.ChannelBW
	if !h.params.RankParallel {
		bw /= 2
	}
	var maxT cost.Seconds
	for _, b := range h.chanBytes {
		t := cost.Seconds(float64(b) / bw)
		if t > maxT {
			maxT = t
		}
	}
	h.meter.Add(cost.PEMem, maxT)
	for i := range h.chanBytes {
		h.chanBytes[i] = 0
	}
}

func (h *Host) tallyBurst(group int) { h.TallyBursts(group, 1) }

// TallyBursts accounts count 64-byte bursts to/from the entangled group
// without moving any bytes: the cost-only backend's replacement for
// ReadBurst/WriteBurst. The epoch and statistics bookkeeping is shared
// with the functional path, so per-channel totals — and therefore the
// PEMem time charged at EndXfer — are identical. Must run inside a
// transfer epoch.
func (h *Host) TallyBursts(group int, count int64) {
	if h.epochDepth == 0 {
		panic("host: TallyBursts outside transfer epoch")
	}
	bytes := count * dram.BurstBytes
	ch, _ := h.sys.RankOfGroup(group)
	h.chanBytes[ch] += bytes
	h.totalBursts.Add(count)
	h.totalByChan[ch].Add(bytes)
}

// ---------------------------------------------------------------------
// Shards: per-worker tally contexts for parallel execution
// ---------------------------------------------------------------------

// Shard is one worker's private view of the host during a parallel
// transfer epoch: burst movement goes straight to the memory system
// (workers touch disjoint bursts by construction), while bus tallies and
// vector-unit retirement accumulate shard-locally until the owner calls
// MergeShards. A Shard must only be used between BeginXfer/EndXfer of
// the host that issued it, and only by one goroutine at a time.
type Shard struct {
	h         *Host
	vu        vec.Unit
	bursts    int64
	chanBytes []int64
}

// VecUnit returns the shard's private vector unit.
func (s *Shard) VecUnit() *vec.Unit { return &s.vu }

// TallyBursts is the shard-local form of Host.TallyBursts.
func (s *Shard) TallyBursts(group int, count int64) {
	if s.h.epochDepth == 0 {
		panic("host: shard tally outside transfer epoch")
	}
	ch, _ := s.h.sys.RankOfGroup(group)
	s.chanBytes[ch] += count * dram.BurstBytes
	s.bursts += count
}

// ReadBurst is the shard-local form of Host.ReadBurst.
func (s *Shard) ReadBurst(group, off int) vec.Reg {
	var r vec.Reg
	s.h.sys.ReadBurst(group, off, (*[dram.BurstBytes]byte)(&r))
	s.TallyBursts(group, 1)
	return r
}

// WriteBurst is the shard-local form of Host.WriteBurst.
func (s *Shard) WriteBurst(group, off int, r vec.Reg) {
	s.h.sys.WriteBurst(group, off, (*[dram.BurstBytes]byte)(&r))
	s.TallyBursts(group, 1)
}

// Shards returns k reusable per-worker tally contexts (growing the set
// on demand). The caller must hold the execution serialized — shards are
// part of the host's single-owner state.
func (h *Host) Shards(k int) []*Shard {
	for len(h.shards) < k {
		h.shards = append(h.shards, &Shard{
			h:         h,
			chanBytes: make([]int64, h.sys.Geometry().Channels),
		})
	}
	return h.shards[:k]
}

// MergeShards folds every shard's pending tallies into the host's epoch
// and cumulative accounting and resets them. Deterministic: shards are
// folded in shard order, channels in channel order, and all tallies are
// integer sums — so the merged totals (and the PEMem time EndXfer
// charges from them) are byte-identical at any worker count. Must run
// inside the transfer epoch the tallies belong to.
func (h *Host) MergeShards() {
	for _, s := range h.shards {
		if s.bursts == 0 {
			continue
		}
		h.totalBursts.Add(s.bursts)
		s.bursts = 0
		for ch, b := range s.chanBytes {
			if b != 0 {
				h.chanBytes[ch] += b
				h.totalByChan[ch].Add(b)
				s.chanBytes[ch] = 0
			}
		}
	}
}

// ReadBurst reads one 64-byte burst from the entangled group into a vector
// register, in PIM byte order (as on the bus). Must be inside an epoch.
func (h *Host) ReadBurst(group, off int) vec.Reg {
	if h.epochDepth == 0 {
		panic("host: ReadBurst outside transfer epoch")
	}
	var buf [dram.BurstBytes]byte
	h.sys.ReadBurst(group, off, &buf)
	h.tallyBurst(group)
	var r vec.Reg
	copy(r[:], buf[:])
	return r
}

// WriteBurst writes a register to the entangled group as one burst.
func (h *Host) WriteBurst(group, off int, r vec.Reg) {
	if h.epochDepth == 0 {
		panic("host: WriteBurst outside transfer epoch")
	}
	var buf [dram.BurstBytes]byte
	copy(buf[:], r[:])
	h.sys.WriteBurst(group, off, &buf)
	h.tallyBurst(group)
}

// dsa returns the throughput multiplier for host-side transform work:
// 1 normally, DSAFactor under the § IX-B DSA-offload what-if.
func (h *Host) dsa() float64 {
	if h.params.DSAOffload {
		return h.params.DSAFactor
	}
	return 1
}

// ChargeDT charges domain-transfer compute for n bytes.
func (h *Host) ChargeDT(n int64) {
	h.meter.Add(cost.DomainTransfer, h.params.HostBytesAt(n, h.params.DTBPC*h.dsa()))
}

// ChargeScalarMod charges baseline global modulation (scalar, cache-
// hostile) for n bytes.
func (h *Host) ChargeScalarMod(n int64) {
	h.meter.Add(cost.HostMod, h.params.HostBytesAt(n, h.params.ScalarModBPC*h.dsa()))
}

// ChargeLocalMod charges cache-friendly local modulation (post PE-assisted
// reordering) for n bytes.
func (h *Host) ChargeLocalMod(n int64) {
	h.meter.Add(cost.HostMod, h.params.HostBytesAt(n, h.params.LocalModBPC*h.dsa()))
}

// ChargeSIMD charges in-register modulation (shuffles/rotates) for n bytes.
func (h *Host) ChargeSIMD(n int64) {
	h.meter.Add(cost.HostMod, h.params.HostBytesAt(n, h.params.SIMDModBPC*h.dsa()))
}

// ChargeReduce charges vertical SIMD reduction for n bytes of input.
func (h *Host) ChargeReduce(n int64) {
	h.meter.Add(cost.HostMod, h.params.HostBytesAt(n, h.params.ReduceBPC*h.dsa()))
}

// ChargeScalarReduce charges the baseline's scalar reduction loops over
// staged data for n input bytes.
func (h *Host) ChargeScalarReduce(n int64) {
	h.meter.Add(cost.HostMod, h.params.HostBytesAt(n, h.params.ScalarRedBPC*h.dsa()))
}

// ChargeLocalReduce charges reductions over PE-pre-reordered
// (cache-local) data for n input bytes.
func (h *Host) ChargeLocalReduce(n int64) {
	h.meter.Add(cost.HostMod, h.params.HostBytesAt(n, h.params.LocalRedBPC*h.dsa()))
}

// ChargeHostMem charges host main-memory traffic for n bytes.
func (h *Host) ChargeHostMem(n int64) {
	h.meter.AddBytes(cost.HostMem, n, h.params.HostMemBW)
}

// ChargeSync charges a fixed host-side synchronization/launch overhead.
func (h *Host) ChargeSync() {
	h.meter.Add(cost.Other, h.params.KernelLaunch)
}

// ChargeNetRounds charges rounds overlapped inter-host exchange rounds
// of bytesPerRound payload each (cost.Network). The per-round time comes
// from the parameterized network model (Params.Net): pairwise transfers
// of distinct host pairs overlap, so a round costs one host's traffic
// over the goodput plus the fixed round latency. The whole transfer is
// one meter addition, so a plan's charge trace carries one entry per
// network leg.
func (h *Host) ChargeNetRounds(rounds int, bytesPerRound int64) {
	if rounds <= 0 {
		return
	}
	h.meter.Add(cost.Network, cost.Seconds(rounds)*h.params.Net.RoundTime(bytesPerRound))
}

// DomainTransfer applies the driver's domain transfer in place: each
// aligned 64-byte block is 8x8 byte-transposed (§ II-B), converting
// between PIM byte order and host byte order. It charges DT compute.
// len(buf) must be a multiple of 64.
func (h *Host) DomainTransfer(buf []byte) {
	if len(buf)%dram.BurstBytes != 0 {
		panic(fmt.Sprintf("host: DT length %d not a multiple of %d", len(buf), dram.BurstBytes))
	}
	for off := 0; off < len(buf); off += dram.BurstBytes {
		r := h.vu.Load(buf[off:])
		r = h.vu.Transpose8x8(r)
		h.vu.Store(buf[off:], r)
	}
	h.ChargeDT(int64(len(buf)))
}

// bulkReadRun is the reusable par.Runner of BulkRead: shard workers own
// contiguous group ranges, so their staging-buffer writes and burst reads
// are disjoint.
type bulkReadRun struct {
	h      *Host
	groups []int
	off    int
	perPE  int
	buf    []byte
}

func (br *bulkReadRun) RunShard(shard, lo, hi int) {
	sh := br.h.shards[shard]
	for gi := lo; gi < hi; gi++ {
		g := br.groups[gi]
		for b := 0; b < br.perPE; b += dram.BankBurstBytes {
			r := sh.ReadBurst(g, br.off+b)
			r = sh.vu.Transpose8x8(r) // DT: lane c = PE c's 8 bytes
			for c := 0; c < dram.ChipsPerRank; c++ {
				pe := gi*dram.ChipsPerRank + c
				copy(br.buf[pe*br.perPE+b:pe*br.perPE+b+vec.LaneBytes], r[c*vec.LaneBytes:(c+1)*vec.LaneBytes])
			}
		}
	}
}

// staging returns the host's reusable staging slab grown to n bytes.
func (h *Host) staging(n int) []byte {
	if cap(h.stag) < n {
		h.stag = make([]byte, n)
	}
	return h.stag[:n]
}

// BulkRead is the conventional (UPMEM-SDK-style) retrieval path used by
// the baseline design: it reads perPE bytes starting at MRAM offset off
// from every PE of every listed group, applies the driver's automatic
// domain transfer, stores the result into a host staging buffer, and
// charges bus, DT and host-memory costs. The staging layout is PE-major:
// the bytes of the i-th PE (groups in the given order, chips in order
// within each group) occupy buf[i*perPE : (i+1)*perPE].
//
// The returned buffer is the host's own staging slab: it stays valid
// until the next BulkRead on this host. The group loop is sharded across
// the configured workers (SetWorkers); results and accounting are
// byte-identical at any worker count.
func (h *Host) BulkRead(groups []int, off, perPE int) []byte {
	if perPE%dram.BankBurstBytes != 0 {
		panic(fmt.Sprintf("host: perPE %d not burst-aligned", perPE))
	}
	buf := h.staging(len(groups) * dram.ChipsPerRank * perPE)
	h.Shards(h.workers)
	h.BeginXfer()
	h.brun = bulkReadRun{h: h, groups: groups, off: off, perPE: perPE, buf: buf}
	par.Do(h.workers, len(groups), &h.brun)
	h.MergeShards()
	h.EndXfer()
	h.ChargeDT(int64(len(buf)))
	h.ChargeHostMem(int64(len(buf))) // staging store
	return buf
}

// bulkWriteRun is the reusable par.Runner of BulkWrite (group ranges are
// disjoint in both the host buffer and MRAM).
type bulkWriteRun struct {
	h      *Host
	groups []int
	off    int
	perPE  int
	buf    []byte
}

func (bw *bulkWriteRun) RunShard(shard, lo, hi int) {
	sh := bw.h.shards[shard]
	for gi := lo; gi < hi; gi++ {
		g := bw.groups[gi]
		for b := 0; b < bw.perPE; b += dram.BankBurstBytes {
			var r vec.Reg
			for c := 0; c < dram.ChipsPerRank; c++ {
				pe := gi*dram.ChipsPerRank + c
				copy(r[c*vec.LaneBytes:(c+1)*vec.LaneBytes], bw.buf[pe*bw.perPE+b:])
			}
			r = sh.vu.Transpose8x8(r) // back to PIM byte order
			sh.WriteBurst(g, bw.off+b, r)
		}
	}
}

// BulkWrite is the inverse of BulkRead: it scatters a PE-major host buffer
// back to the PEs' MRAM at offset off, applying domain transfer, and
// charges host-memory (staging read), DT and bus costs. The group loop is
// sharded like BulkRead's.
func (h *Host) BulkWrite(groups []int, off int, buf []byte) {
	n := len(groups) * dram.ChipsPerRank
	if n == 0 {
		return
	}
	if len(buf)%n != 0 {
		panic(fmt.Sprintf("host: buffer %d not divisible by %d PEs", len(buf), n))
	}
	perPE := len(buf) / n
	if perPE%dram.BankBurstBytes != 0 {
		panic(fmt.Sprintf("host: perPE %d not burst-aligned", perPE))
	}
	h.ChargeHostMem(int64(len(buf))) // staging read
	h.ChargeDT(int64(len(buf)))
	h.Shards(h.workers)
	h.BeginXfer()
	h.wrun = bulkWriteRun{h: h, groups: groups, off: off, perPE: perPE, buf: buf}
	par.Do(h.workers, len(groups), &h.wrun)
	h.MergeShards()
	h.EndXfer()
}

// ChargeBulkRead accounts a BulkRead of perPE bytes per PE from every
// listed group without moving data: same bus epoch, DT and staging
// charges in the same order, so the resulting meter and transfer
// statistics match BulkRead exactly.
func (h *Host) ChargeBulkRead(groups []int, perPE int) {
	if perPE%dram.BankBurstBytes != 0 {
		panic(fmt.Sprintf("host: perPE %d not burst-aligned", perPE))
	}
	total := int64(len(groups)) * dram.ChipsPerRank * int64(perPE)
	h.BeginXfer()
	for _, g := range groups {
		h.TallyBursts(g, int64(perPE/dram.BankBurstBytes))
	}
	h.EndXfer()
	h.ChargeDT(total)
	h.ChargeHostMem(total) // staging store
}

// ChargeBulkWrite accounts a BulkWrite of perPE bytes per PE to every
// listed group without moving data; the charge sequence mirrors
// BulkWrite exactly.
func (h *Host) ChargeBulkWrite(groups []int, perPE int) {
	if perPE%dram.BankBurstBytes != 0 {
		panic(fmt.Sprintf("host: perPE %d not burst-aligned", perPE))
	}
	total := int64(len(groups)) * dram.ChipsPerRank * int64(perPE)
	h.ChargeHostMem(total) // staging read
	h.ChargeDT(total)
	h.BeginXfer()
	for _, g := range groups {
		h.TallyBursts(g, int64(perPE/dram.BankBurstBytes))
	}
	h.EndXfer()
}
