package host

// XferStats summarizes the cumulative bus traffic a host has issued:
// useful for verifying that an implementation moves the bytes it claims
// (cmd/pidtrace prints it) and for asserting traffic in tests.
type XferStats struct {
	// Bursts is the total number of 64-byte bursts transferred.
	Bursts int64
	// BytesPerChannel is the cumulative traffic per channel.
	BytesPerChannel []int64
}

// TotalBytes returns the overall bus traffic.
func (s XferStats) TotalBytes() int64 {
	var t int64
	for _, b := range s.BytesPerChannel {
		t += b
	}
	return t
}

// Stats returns a snapshot of the host's cumulative transfer statistics.
func (h *Host) Stats() XferStats {
	out := XferStats{
		Bursts:          h.totalBursts,
		BytesPerChannel: append([]int64(nil), h.totalByChan...),
	}
	return out
}
