package host

// XferStats summarizes the cumulative bus traffic a host has issued:
// useful for verifying that an implementation moves the bytes it claims
// (cmd/pidtrace prints it) and for asserting traffic in tests.
type XferStats struct {
	// Bursts is the total number of 64-byte bursts transferred.
	Bursts int64
	// BytesPerChannel is the cumulative traffic per channel.
	BytesPerChannel []int64
}

// TotalBytes returns the overall bus traffic.
func (s XferStats) TotalBytes() int64 {
	var t int64
	for _, b := range s.BytesPerChannel {
		t += b
	}
	return t
}

// Stats returns a snapshot of the host's cumulative transfer statistics.
// Safe to call while an execution runs on another goroutine (each counter
// is read atomically; a mid-execution snapshot may straddle a transfer).
func (h *Host) Stats() XferStats {
	out := XferStats{
		Bursts:          h.totalBursts.Load(),
		BytesPerChannel: make([]int64, len(h.totalByChan)),
	}
	for ch := range h.totalByChan {
		out.BytesPerChannel[ch] = h.totalByChan[ch].Load()
	}
	return out
}

// ApplyStats merges a precomputed traffic delta into the cumulative
// statistics without moving bytes or charging time: the replay half of
// the compiled-plan path, whose bus time was recorded as a meter trace.
// The delta must come from a host over the same system geometry.
func (h *Host) ApplyStats(s XferStats) {
	h.totalBursts.Add(s.Bursts)
	for ch, b := range s.BytesPerChannel {
		h.totalByChan[ch].Add(b)
	}
}
