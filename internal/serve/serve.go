package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/pidcomm"
)

// Model selects the request shape a serving tenant emits. Each model is
// a short pipeline of collectives over the tenant's arena, scaled off
// the driver's base payload; consecutive requests of one tenant chain
// on their data hazards (they reuse the same regions), while different
// tenants' requests overlap freely on the shared timeline.
type Model int

const (
	// DLRM is the embedding-exchange pipeline: AlltoAll (CM) feeding a
	// ReduceScatter (IM) — the paper's headline workload, full payload.
	DLRM Model = iota
	// GNN is neighbor aggregation: AllGather (IM) feeding an AllReduce
	// (IM), at half payload.
	GNN
	// MLP is gradient synchronization: one AllReduce (IM) at quarter
	// payload — the short, latency-sensitive request.
	MLP
)

// String names the model for tables.
func (m Model) String() string {
	switch m {
	case DLRM:
		return "dlrm"
	case GNN:
		return "gnn"
	case MLP:
		return "mlp"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// ArrivalKind selects a tenant's arrival process.
type ArrivalKind int

const (
	// Poisson draws i.i.d. exponential inter-arrival times at the
	// tenant's rate.
	Poisson ArrivalKind = iota
	// Bursty draws Poisson burst epochs at rate Rate/Burst, each
	// releasing a geometrically-sized clump (mean Burst) of simultaneous
	// requests — same mean rate as Poisson, far heavier tail.
	Bursty
)

// String names the arrival process for tables.
func (k ArrivalKind) String() string {
	if k == Bursty {
		return "bursty"
	}
	return "poisson"
}

// TenantSpec configures one serving tenant of the driver.
type TenantSpec struct {
	// Name labels the tenant; Model picks its request pipeline.
	Name  string
	Model Model
	// Arrivals and Rate define the open-loop arrival process (mean
	// requests per simulated second); Burst is the mean clump size for
	// Bursty (0 = 4).
	Arrivals ArrivalKind
	Rate     float64
	Burst    int
	// Weight is the tenant's weighted-fair scheduler share (0 = 1).
	Weight float64
	// Deadline is the per-request relative SLO (absolute deadline =
	// arrival + Deadline); 0 = best-effort. The EDF policy schedules
	// against it, and a completion past it counts as a miss.
	Deadline cost.Seconds
	// MaxPending bounds the tenant's in-flight submissions (0 = 64);
	// beyond it, submissions shed per Shed with ErrOverloaded.
	MaxPending int
	Shed       pidcomm.ShedPolicy
}

// Config parameterizes one serving run.
type Config struct {
	// Seed drives every per-tenant arrival PRNG: equal configs with
	// equal seeds replay bit-identically.
	Seed int64
	// Horizon is the arrival window [0, Horizon) in simulated seconds.
	Horizon cost.Seconds
	// Tenants are the serving sessions sharing the machine.
	Tenants []TenantSpec
	// Policy is the submission scheduling policy (SchedWFQ default).
	// SchedLookahead composes with deadlines: equal-makespan picks fall
	// back to EDF order, so the reordering stays deadline-aware.
	Policy pidcomm.SchedPolicy
	// Lookahead overrides the candidate window of the window-scanning
	// policies (0 = pidcomm.DefaultLookahead).
	Lookahead int
	// BytesPerPE is the base request payload (default 4096); rounded up
	// so every model's blocks align at the machine's group size.
	BytesPerPE int
	// Geometry and Shape size the simulated machine. Zero values give a
	// machine just big enough for the tenant arenas on the paper's
	// 1024-PE testbed (shape 32x32). Shape must be two-dimensional.
	Geometry dram.Geometry
	Shape    []int
	// Fused submits each request as one fused CompileSequence plan
	// instead of per-segment plans. The default (false) keeps the
	// segment boundaries as preemption points: the scheduler can place
	// an urgent plan between a long request's segments.
	Fused bool
	// ChurnEvery, if positive, retires and recreates a tenant after
	// every ChurnEvery completed requests of it — runtime tenant churn:
	// the arena goes back to the free-list allocator and the successor
	// re-carves (first-fit) from the coalesced pool.
	ChurnEvery int
	// MaxRequests caps the total generated arrivals (default 20000);
	// Run fails rather than truncate, so rates/horizons stay honest.
	MaxRequests int
}

// RequestStat is the per-request outcome of a run.
type RequestStat struct {
	// Tenant indexes Config.Tenants; Arrival is the request's simulated
	// arrival time and Deadline its absolute deadline (0 = none).
	Tenant   int
	Arrival  cost.Seconds
	Deadline cost.Seconds
	// Start is the placement start of the request's first segment, End
	// the completion time of its last; Sojourn = End - Arrival. All
	// zero when shed.
	Start   cost.Seconds
	End     cost.Seconds
	Sojourn cost.Seconds
	// Shed marks a request dropped by overload admission; Missed a
	// completed request that finished past its deadline.
	Shed   bool
	Missed bool
}

// Percentiles is a sojourn-time summary over one request population.
type Percentiles struct {
	Count            int
	P50, P99, P999   cost.Seconds
	Mean             cost.Seconds
	Completed, Shed  int
	Missed           int
	DeadlineCarrying int
}

// TenantStats aggregates one tenant's outcomes.
type TenantStats struct {
	Name  string
	Stats Percentiles
	// Churns counts teardown/recreate cycles the driver performed.
	Churns int
}

// Result is the outcome of one serving run.
type Result struct {
	// Submitted counts generated arrivals; Completed/Shed/Missed are
	// the global outcome counts.
	Submitted, Completed, Shed, Missed int
	// Makespan is the machine's final elapsed time; Throughput is
	// Completed/Makespan in requests per simulated second.
	Makespan   cost.Seconds
	Throughput float64
	// All aggregates every request; SLO only the deadline-carrying ones
	// (the population the p99 gate pins).
	All, SLO Percentiles
	// Tenants are the per-tenant aggregates in Config order.
	Tenants []TenantStats
	// Requests are the per-request outcomes in arrival order — the
	// deterministic replay surface the property tests compare.
	Requests []RequestStat
	// Breakdown is the machine-total attributed cost (live + retired
	// tenant meters).
	Breakdown pidcomm.Breakdown
	// FreeSpans is the allocator's free list after every tenant was
	// closed at the end of the run: a churn-clean run re-coalesces to
	// one span covering all of MRAM.
	FreeSpans []dram.Arena
}

// Percentile returns the nearest-rank p-quantile (0 < p <= 1) of the
// ascending-sorted xs: the smallest element whose rank covers p of the
// population. Zero for an empty slice.
func Percentile(xs []cost.Seconds, p float64) cost.Seconds {
	if len(xs) == 0 {
		return 0
	}
	r := int(math.Ceil(p * float64(len(xs))))
	if r < 1 {
		r = 1
	}
	if r > len(xs) {
		r = len(xs)
	}
	return xs[r-1]
}

// summarize folds a request subset into a Percentiles summary.
func summarize(reqs []RequestStat, keep func(RequestStat) bool) Percentiles {
	var s Percentiles
	var sojourns []cost.Seconds
	var sum cost.Seconds
	for _, r := range reqs {
		if !keep(r) {
			continue
		}
		s.Count++
		if r.Deadline > 0 {
			s.DeadlineCarrying++
		}
		if r.Shed {
			s.Shed++
			continue
		}
		s.Completed++
		if r.Missed {
			s.Missed++
		}
		sojourns = append(sojourns, r.Sojourn)
		sum += r.Sojourn
	}
	sort.Slice(sojourns, func(i, j int) bool { return sojourns[i] < sojourns[j] })
	s.P50 = Percentile(sojourns, 0.50)
	s.P99 = Percentile(sojourns, 0.99)
	s.P999 = Percentile(sojourns, 0.999)
	if s.Completed > 0 {
		s.Mean = sum / cost.Seconds(s.Completed)
	}
	return s
}

// arrival is one generated request arrival.
type arrival struct {
	t      cost.Seconds
	tenant int
}

// genArrivals draws every tenant's arrival process over [0, Horizon)
// from its own seeded PRNG and merges them in time order (ties by
// tenant index, so the merge is deterministic).
func genArrivals(cfg Config) ([]arrival, error) {
	maxReqs := cfg.MaxRequests
	if maxReqs <= 0 {
		maxReqs = 20000
	}
	var all []arrival
	for i, sp := range cfg.Tenants {
		if sp.Rate <= 0 {
			return nil, fmt.Errorf("serve: tenant %q rate %v must be positive", sp.Name, sp.Rate)
		}
		rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(i)*7919 + 1))
		burst := sp.Burst
		if burst <= 0 {
			burst = 4
		}
		t := cost.Seconds(0)
		for {
			switch sp.Arrivals {
			case Bursty:
				t += cost.Seconds(rng.ExpFloat64() / (sp.Rate / float64(burst)))
				if t >= cfg.Horizon {
					goto next
				}
				// Geometric clump with mean burst.
				k := 1
				for rng.Float64() > 1.0/float64(burst) {
					k++
				}
				for j := 0; j < k; j++ {
					all = append(all, arrival{t: t, tenant: i})
				}
			default:
				t += cost.Seconds(rng.ExpFloat64() / sp.Rate)
				if t >= cfg.Horizon {
					goto next
				}
				all = append(all, arrival{t: t, tenant: i})
			}
			if len(all) > maxReqs {
				return nil, fmt.Errorf("serve: more than %d arrivals over horizon %v — lower the rates or the horizon", maxReqs, cfg.Horizon)
			}
		}
	next:
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].t != all[b].t {
			return all[a].t < all[b].t
		}
		return all[a].tenant < all[b].tenant
	})
	return all, nil
}

// payload returns a model's per-PE payload off the base m.
func (m Model) payload(base int) int {
	switch m {
	case GNN:
		return base / 2
	case MLP:
		return base / 4
	}
	return base
}

// segments returns a model's request pipeline as arena-relative
// descriptors. n is the machine's group size; m the model payload.
// Chained segments share regions (RAW), so the scheduler always keeps
// them in order, and the last segment always finishes last.
func (m Model) segments(mp, n int) []pidcomm.Collective {
	switch m {
	case GNN:
		s := mp / n
		return []pidcomm.Collective{
			{Prim: pidcomm.AllGather, Dims: "10",
				Src: pidcomm.Span(0, s), Dst: pidcomm.At(s), Level: pidcomm.IM},
			{Prim: pidcomm.AllReduce, Dims: "10",
				Src: pidcomm.Span(s, mp), Dst: pidcomm.At(s + mp),
				Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.IM},
		}
	case MLP:
		return []pidcomm.Collective{
			{Prim: pidcomm.AllReduce, Dims: "10",
				Src: pidcomm.Span(0, mp), Dst: pidcomm.At(mp),
				Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.IM},
		}
	}
	return []pidcomm.Collective{
		{Prim: pidcomm.AlltoAll, Dims: "10",
			Src: pidcomm.Span(0, mp), Dst: pidcomm.At(mp), Level: pidcomm.CM},
		{Prim: pidcomm.ReduceScatter, Dims: "10",
			Src: pidcomm.Span(mp, mp), Dst: pidcomm.At(2 * mp),
			Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.IM},
	}
}

// resolve fills config defaults and derives the machine sizing.
func (cfg *Config) resolve() (base, arenaBytes, n int, err error) {
	if len(cfg.Tenants) == 0 {
		return 0, 0, 0, fmt.Errorf("serve: no tenants configured")
	}
	if cfg.Horizon <= 0 {
		return 0, 0, 0, fmt.Errorf("serve: horizon %v must be positive", cfg.Horizon)
	}
	if cfg.Shape == nil {
		cfg.Shape = []int{32, 32}
	}
	if len(cfg.Shape) != 2 {
		return 0, 0, 0, fmt.Errorf("serve: shape must be two-dimensional, got %v", cfg.Shape)
	}
	// Dims "10" selects axis 0, so the collectives run over groups of
	// the first shape dimension.
	n = cfg.Shape[0]
	base = cfg.BytesPerPE
	if base <= 0 {
		base = 4096
	}
	// Round the base payload up so every model's block size stays
	// burst-aligned: MLP runs at base/4 over groups of n.
	align := 4 * n * dram.BankBurstBytes
	if r := base % align; r != 0 {
		base += align - r
	}
	// The largest per-tenant footprint is DLRM's 3 windows of the full
	// payload (GNN needs s+2*mp < 3*mp too); one extra payload of slack.
	arenaBytes = 4 * base
	return base, arenaBytes, n, nil
}

// machineFor builds the serving machine: cost-only, stepped, under the
// configured scheduling policy, with MRAM sized for the tenant arenas.
func machineFor(cfg *Config, arenaBytes int) (*pidcomm.Machine, error) {
	geo := cfg.Geometry
	if geo == (dram.Geometry{}) {
		geo = pidcomm.PaperSystem((len(cfg.Tenants) + 1) * arenaBytes)
	}
	opts := []pidcomm.MachineOption{
		pidcomm.CostOnly(),
		pidcomm.WithStepped(true),
		pidcomm.WithSched(cfg.Policy),
	}
	if cfg.Lookahead != 0 {
		opts = append(opts, pidcomm.WithLookahead(cfg.Lookahead))
	}
	return pidcomm.NewMachine(geo, cfg.Shape, opts...)
}

// tenantState is the driver's handle on one live tenant session.
type tenantState struct {
	comm  *pidcomm.Comm
	plans []*pidcomm.CompiledPlan
}

// openTenant creates (or recreates, after churn) one tenant session and
// precompiles its request plans.
func openTenant(mach *pidcomm.Machine, cfg *Config, i, base, arenaBytes, n, gen int) (*tenantState, error) {
	sp := cfg.Tenants[i]
	maxPending := sp.MaxPending
	if maxPending <= 0 {
		maxPending = 64
	}
	name := sp.Name
	if gen > 0 {
		name = fmt.Sprintf("%s#%d", sp.Name, gen)
	}
	comm, err := mach.NewTenant(pidcomm.TenantConfig{
		Name: name, ArenaBytes: arenaBytes, Weight: sp.Weight,
		MaxPending: maxPending, Shed: sp.Shed,
	})
	if err != nil {
		return nil, err
	}
	ds := sp.Model.segments(sp.Model.payload(base), n)
	st := &tenantState{comm: comm}
	if cfg.Fused && len(ds) > 1 {
		cp, err := comm.CompileSequence(ds...)
		if err != nil {
			return nil, err
		}
		st.plans = []*pidcomm.CompiledPlan{cp}
	} else {
		for _, d := range ds {
			cp, err := comm.Compile(d)
			if err != nil {
				return nil, err
			}
			st.plans = append(st.plans, cp)
		}
	}
	return st, nil
}

// Calibrate returns each tenant's predicted single-request cost (the
// sum of its segment plans' predicted charges) on the configured
// machine — the service demand offered-load sweeps calibrate rates
// against.
func Calibrate(cfg Config) ([]cost.Seconds, error) {
	base, arenaBytes, n, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	mach, err := machineFor(&cfg, arenaBytes)
	if err != nil {
		return nil, err
	}
	out := make([]cost.Seconds, len(cfg.Tenants))
	for i := range cfg.Tenants {
		st, err := openTenant(mach, &cfg, i, base, arenaBytes, n, 0)
		if err != nil {
			return nil, err
		}
		for _, cp := range st.plans {
			out[i] += cp.Cost().Total()
		}
	}
	return out, nil
}

// Run drives one open-loop serving simulation: it generates every
// tenant's seeded arrival process, submits each arrival's segment plans
// with its arrival time and deadline, and steps the machine's scheduler
// one pick at a time in a single-threaded discrete-event loop — the
// simulated clock advances to the next arrival when the queue idles and
// to each placement's start otherwise, so admission order is a pure
// function of the config and the run replays bit-identically.
func Run(cfg Config) (Result, error) {
	base, arenaBytes, n, err := cfg.resolve()
	if err != nil {
		return Result{}, err
	}
	arrivals, err := genArrivals(cfg)
	if err != nil {
		return Result{}, err
	}
	mach, err := machineFor(&cfg, arenaBytes)
	if err != nil {
		return Result{}, err
	}
	tenants := make([]*tenantState, len(cfg.Tenants))
	gens := make([]int, len(cfg.Tenants))
	for i := range cfg.Tenants {
		if tenants[i], err = openTenant(mach, &cfg, i, base, arenaBytes, n, 0); err != nil {
			return Result{}, err
		}
	}

	res := Result{Submitted: len(arrivals)}
	res.Requests = make([]RequestStat, 0, len(arrivals))
	futures := make([][]*pidcomm.Future, 0, len(arrivals))
	completedAt := make([]int, len(cfg.Tenants)) // completions seen per tenant
	churns := make([]int, len(cfg.Tenants))      // churn cycles per tenant
	processed := 0                               // requests fully accounted in res.Requests[..processed)

	// process sweeps the oldest outstanding requests whose futures have
	// all completed, folding their outcome into the stats; it returns
	// the index of a tenant due for churn, if any.
	process := func() int {
		churn := -1
		for processed < len(res.Requests) {
			r := &res.Requests[processed]
			done := true
			for _, f := range futures[processed] {
				if !f.Done() {
					done = false
					break
				}
			}
			if !done {
				break
			}
			shed := false
			var start, end cost.Seconds
			for fi, f := range futures[processed] {
				if f.Err() != nil {
					shed = true
					continue
				}
				s, e := f.Window()
				if fi == 0 || s < start {
					start = s
				}
				if e > end {
					end = e
				}
			}
			if shed {
				r.Shed = true
				res.Shed++
			} else {
				r.Start = start
				r.End = end
				r.Sojourn = end - r.Arrival
				res.Completed++
				completedAt[r.Tenant]++
				if r.Deadline > 0 && end > r.Deadline {
					r.Missed = true
					res.Missed++
				}
				if cfg.ChurnEvery > 0 && completedAt[r.Tenant]%cfg.ChurnEvery == 0 && churn < 0 {
					churn = r.Tenant
				}
			}
			futures[processed] = nil
			processed++
		}
		return churn
	}

	clock := cost.Seconds(0)
	next := 0
	for next < len(arrivals) || mach.Pending() > 0 {
		if mach.Pending() == 0 && next < len(arrivals) && arrivals[next].t > clock {
			clock = arrivals[next].t
		}
		// Admit every arrival at or before the clock.
		for next < len(arrivals) && arrivals[next].t <= clock {
			a := arrivals[next]
			sp := cfg.Tenants[a.tenant]
			var deadline cost.Seconds
			if sp.Deadline > 0 {
				deadline = a.t + sp.Deadline
			}
			fs := make([]*pidcomm.Future, 0, len(tenants[a.tenant].plans))
			rejected := false
			for _, cp := range tenants[a.tenant].plans {
				f := cp.SubmitOpts(pidcomm.SubmitOptions{NotBefore: a.t, Deadline: deadline})
				fs = append(fs, f)
				if f.Done() && f.Err() != nil {
					rejected = true
					break // drop the request's remaining segments
				}
			}
			res.Requests = append(res.Requests, RequestStat{Tenant: a.tenant, Arrival: a.t, Deadline: deadline})
			futures = append(futures, fs)
			_ = rejected
			next++
		}
		f := mach.Step()
		if f == nil {
			if mach.Pending() > 0 {
				return Result{}, fmt.Errorf("serve: scheduler stalled with %d plans pending", mach.Pending())
			}
			if next < len(arrivals) {
				clock = arrivals[next].t
			}
			continue
		}
		if s, _ := f.Window(); s > clock {
			clock = s
		}
		if ti := process(); ti >= 0 {
			// Churn: retire the tenant (drains the machine) and recreate
			// it over the re-coalesced arena pool.
			if err := mach.CloseTenant(tenants[ti].comm); err != nil {
				return Result{}, err
			}
			gens[ti]++
			churns[ti]++
			if tenants[ti], err = openTenant(mach, &cfg, ti, base, arenaBytes, n, gens[ti]); err != nil {
				return Result{}, err
			}
			if e := mach.Elapsed(); e > clock {
				clock = e
			}
			process() // the drain may have completed more requests
		}
	}
	mach.Flush()
	process()

	res.Makespan = mach.Elapsed()
	if res.Makespan > 0 {
		res.Throughput = float64(res.Completed) / float64(res.Makespan)
	}
	res.All = summarize(res.Requests, func(RequestStat) bool { return true })
	res.SLO = summarize(res.Requests, func(r RequestStat) bool { return r.Deadline > 0 })
	res.Tenants = make([]TenantStats, len(cfg.Tenants))
	for i, sp := range cfg.Tenants {
		res.Tenants[i] = TenantStats{
			Name:   sp.Name,
			Stats:  summarize(res.Requests, func(r RequestStat) bool { return r.Tenant == i }),
			Churns: churns[i],
		}
	}
	// Tear every tenant down: the arenas must coalesce back into the
	// free pool (the churn invariant the fuzz scenario pins).
	for _, st := range tenants {
		if err := mach.CloseTenant(st.comm); err != nil {
			return Result{}, err
		}
	}
	res.Breakdown = mach.Breakdown()
	res.FreeSpans = mach.FreeArenaSpans()
	return res, nil
}

// Scenario builds the canonical serving mix the benchmark gate and the
// property tests pin: a latency-sensitive "chat" tenant (MLP, tight
// SLO), a "feed" tenant (GNN, bursty arrivals, looser SLO) and a
// best-effort "batch" tenant (DLRM, no deadline) sharing the paper
// machine. Rates are calibrated against each tenant's predicted request
// cost so the offered load is rho (fraction of machine capacity) split
// 20/20/60 across the tenants, and the SLOs leave room for one
// non-preemptible batch segment of head-of-line blocking — below
// saturation an EDF schedule meets every deadline.
func Scenario(policy pidcomm.SchedPolicy, rho float64, requests int) (Config, error) {
	cfg := Config{
		Seed:    42,
		Policy:  policy,
		Horizon: 1, // placeholder until rates are known
		Tenants: []TenantSpec{
			{Name: "chat", Model: MLP, Arrivals: Poisson, Rate: 1},
			{Name: "feed", Model: GNN, Arrivals: Bursty, Burst: 6, Rate: 1},
			{Name: "batch", Model: DLRM, Arrivals: Poisson, Rate: 1},
		},
		MaxRequests: requests + requests/2,
	}
	costs, err := Calibrate(cfg)
	if err != nil {
		return Config{}, err
	}
	shares := []float64{0.2, 0.2, 0.6}
	total := 0.0
	for i := range cfg.Tenants {
		cfg.Tenants[i].Rate = rho * shares[i] / float64(costs[i])
		total += cfg.Tenants[i].Rate
	}
	// Tight-but-feasible SLOs: service demand, plus one batch request of
	// blocking (EDF cannot preempt a placed segment), plus slack for the
	// tenant's own hazard-serialized backlog (feed's bursts clump).
	cfg.Tenants[0].Deadline = 6*costs[0] + costs[2]
	cfg.Tenants[1].Deadline = 40*costs[1] + 2*costs[2]
	cfg.Horizon = cost.Seconds(float64(requests) / total)
	return cfg, nil
}
