package serve

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/pidcomm"
)

func mustScenario(t *testing.T, pol pidcomm.SchedPolicy, rho float64, n int) Config {
	t.Helper()
	cfg, err := Scenario(pol, rho, n)
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	return cfg
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestPercentileNearestRank pits Percentile against a brute-force
// restatement of the nearest-rank definition — the smallest element
// covering fraction p of the population — over random populations with
// duplicates.
func TestPercentileNearestRank(t *testing.T) {
	brute := func(xs []cost.Seconds, p float64) cost.Seconds {
		for i := range xs {
			if float64(i+1) >= p*float64(len(xs)) {
				return xs[i]
			}
		}
		return xs[len(xs)-1]
	}
	rng := rand.New(rand.NewSource(7))
	ps := []float64{0.001, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		xs := make([]cost.Seconds, n)
		v := cost.Seconds(0)
		for i := range xs {
			if rng.Float64() < 0.7 { // duplicates are common in quantized sojourns
				v += cost.Seconds(rng.Float64())
			}
			xs[i] = v
		}
		for _, p := range ps {
			if got, want := Percentile(xs, p), brute(xs, p); got != want {
				t.Fatalf("trial %d n=%d p=%v: Percentile=%v brute=%v", trial, n, p, got, want)
			}
		}
	}
	if got := Percentile(nil, 0.99); got != 0 {
		t.Fatalf("empty population: got %v, want 0", got)
	}
}

// TestRunDeterminism pins the driver's replay guarantee: identical
// configs with identical seeds produce bit-identical per-request
// outcomes, and a different seed produces a different trace. Covers the
// plain, churning and fused variants under both policies.
func TestRunDeterminism(t *testing.T) {
	for _, pol := range []pidcomm.SchedPolicy{pidcomm.SchedWFQ, pidcomm.SchedEDF} {
		base := mustScenario(t, pol, 0.9, 400)
		for name, mutate := range map[string]func(*Config){
			"plain": func(*Config) {},
			"churn": func(c *Config) { c.ChurnEvery = 40 },
			"fused": func(c *Config) { c.Fused = true },
		} {
			cfg := base
			mutate(&cfg)
			a, b := mustRun(t, cfg), mustRun(t, cfg)
			if !reflect.DeepEqual(a.Requests, b.Requests) {
				t.Fatalf("%v/%s: replay diverged", pol, name)
			}
			if a.Breakdown != b.Breakdown || a.Makespan != b.Makespan {
				t.Fatalf("%v/%s: aggregate replay diverged", pol, name)
			}
		}
		reseeded := base
		reseeded.Seed = base.Seed + 1
		if reflect.DeepEqual(mustRun(t, base).Requests, mustRun(t, reseeded).Requests) {
			t.Fatalf("%v: different seeds produced identical traces", pol)
		}
	}
}

// TestHazardOrdering asserts the scheduler never violates data hazards,
// EDF included: one tenant's requests reuse the same arena regions, so
// their placed windows must serialize in arrival order no matter how
// the policy reorders picks across tenants. Also pins NotBefore — no
// request may start before it arrived ("future leak").
func TestHazardOrdering(t *testing.T) {
	for _, pol := range []pidcomm.SchedPolicy{pidcomm.SchedWFQ, pidcomm.SchedEDF} {
		for _, churn := range []int{0, 40} {
			cfg := mustScenario(t, pol, 0.9, 600)
			cfg.ChurnEvery = churn
			res := mustRun(t, cfg)
			lastEnd := make([]cost.Seconds, len(cfg.Tenants))
			for i, r := range res.Requests {
				if r.Shed {
					continue
				}
				if r.Start < r.Arrival {
					t.Fatalf("%v churn=%d req %d: started %v before arrival %v", pol, churn, i, r.Start, r.Arrival)
				}
				if r.End <= r.Start {
					t.Fatalf("%v churn=%d req %d: empty window [%v,%v]", pol, churn, i, r.Start, r.End)
				}
				if r.Start < lastEnd[r.Tenant] {
					t.Fatalf("%v churn=%d req %d: hazard violated — starts %v before tenant %d frontier %v",
						pol, churn, i, r.Start, r.Tenant, lastEnd[r.Tenant])
				}
				lastEnd[r.Tenant] = r.End
			}
		}
	}
}

// TestEDFBeatsWFQGate is the acceptance pin behind the benchmark gate:
// at the canonical rho=0.9 operating point EDF must miss zero deadlines
// and deliver at least 1.2x lower SLO-population p99 than plain WFQ on
// the same arrival trace, without losing throughput.
func TestEDFBeatsWFQGate(t *testing.T) {
	wfq := mustRun(t, mustScenario(t, pidcomm.SchedWFQ, 0.9, 800))
	edf := mustRun(t, mustScenario(t, pidcomm.SchedEDF, 0.9, 800))
	if edf.Missed != 0 {
		t.Fatalf("EDF missed %d deadlines below saturation", edf.Missed)
	}
	if edf.Completed != wfq.Completed || edf.Shed != 0 || wfq.Shed != 0 {
		t.Fatalf("policies diverged on work done: edf %d/%d wfq %d/%d",
			edf.Completed, edf.Shed, wfq.Completed, wfq.Shed)
	}
	if float64(wfq.SLO.P99) < 1.2*float64(edf.SLO.P99) {
		t.Fatalf("EDF p99 advantage below 1.2x gate: wfq=%v edf=%v (%.3fx)",
			wfq.SLO.P99, edf.SLO.P99, float64(wfq.SLO.P99)/float64(edf.SLO.P99))
	}
	if diff := float64(wfq.Makespan - edf.Makespan); diff > 0.01*float64(wfq.Makespan) || -diff > 0.01*float64(wfq.Makespan) {
		t.Fatalf("makespans diverged: wfq=%v edf=%v", wfq.Makespan, edf.Makespan)
	}
}

// TestWFQvsEDFDifferential widens the gate across loads and seeds: EDF
// never trails WFQ on SLO p99 or deadline misses on the same trace.
func TestWFQvsEDFDifferential(t *testing.T) {
	for _, rho := range []float64{0.6, 0.75, 1.1} {
		for _, seed := range []int64{42, 1234} {
			wcfg := mustScenario(t, pidcomm.SchedWFQ, rho, 500)
			ecfg := mustScenario(t, pidcomm.SchedEDF, rho, 500)
			wcfg.Seed, ecfg.Seed = seed, seed
			wfq, edf := mustRun(t, wcfg), mustRun(t, ecfg)
			if edf.SLO.P99 > wfq.SLO.P99 {
				t.Errorf("rho=%v seed=%d: EDF p99 %v worse than WFQ %v", rho, seed, edf.SLO.P99, wfq.SLO.P99)
			}
			if edf.Missed > wfq.Missed {
				t.Errorf("rho=%v seed=%d: EDF missed %d > WFQ %d", rho, seed, edf.Missed, wfq.Missed)
			}
		}
	}
}

// TestPreemptionPoints pins why the driver submits per-segment plans by
// default: fusing a request into one plan removes the scheduler's
// preemption points, so the tight-SLO chat tenant's tail grows even
// though fusion lowers total work.
func TestPreemptionPoints(t *testing.T) {
	seg := mustRun(t, mustScenario(t, pidcomm.SchedEDF, 0.9, 600))
	fcfg := mustScenario(t, pidcomm.SchedEDF, 0.9, 600)
	fcfg.Fused = true
	fused := mustRun(t, fcfg)
	if fused.Completed != seg.Completed {
		t.Fatalf("fused completed %d != segmented %d", fused.Completed, seg.Completed)
	}
	if fused.Tenants[0].Stats.P99 <= seg.Tenants[0].Stats.P99 {
		t.Fatalf("expected fused chat p99 above segmented: fused=%v segmented=%v",
			fused.Tenants[0].Stats.P99, seg.Tenants[0].Stats.P99)
	}
}

// TestChurnRun pins the tenant-churn invariants at the driver level:
// churn changes neither the work done nor (beyond float fold order) the
// attributed cost, every tenant actually cycles, and the allocator ends
// re-coalesced to the same free state as a churn-free run.
func TestChurnRun(t *testing.T) {
	cfg := mustScenario(t, pidcomm.SchedEDF, 0.9, 600)
	plain := mustRun(t, cfg)
	cfg.ChurnEvery = 50
	churned := mustRun(t, cfg)
	if churned.Completed != plain.Completed || churned.Shed != 0 {
		t.Fatalf("churn changed work done: %d/%d vs %d", churned.Completed, churned.Shed, plain.Completed)
	}
	for i, ts := range churned.Tenants {
		if ts.Churns == 0 {
			t.Fatalf("tenant %d never churned", i)
		}
	}
	if !reflect.DeepEqual(churned.FreeSpans, plain.FreeSpans) {
		t.Fatalf("allocator did not re-coalesce after churn: %v vs %v", churned.FreeSpans, plain.FreeSpans)
	}
	if len(plain.FreeSpans) != 1 || plain.FreeSpans[0].Base != 0 {
		t.Fatalf("expected one full free span, got %v", plain.FreeSpans)
	}
	got, want := float64(churned.Breakdown.Total()), float64(plain.Breakdown.Total())
	if diff := got - want; diff > 1e-9*want || -diff > 1e-9*want {
		t.Fatalf("churn changed attributed cost: %v vs %v", got, want)
	}
}

// TestOverloadShed drives the scenario far past each tenant's pending
// budget and checks admission control: requests shed with zero windows,
// and accounting stays closed (submitted = completed + shed).
func TestOverloadShed(t *testing.T) {
	for _, shed := range []pidcomm.ShedPolicy{pidcomm.ShedReject, pidcomm.ShedOldest} {
		cfg := mustScenario(t, pidcomm.SchedEDF, 0.9, 500)
		for i := range cfg.Tenants {
			cfg.Tenants[i].Rate *= 4
			cfg.Tenants[i].MaxPending = 4
			cfg.Tenants[i].Shed = shed
		}
		cfg.MaxRequests = 8000
		res := mustRun(t, cfg)
		if res.Shed == 0 {
			t.Fatalf("%v: overload run shed nothing", shed)
		}
		if res.Completed+res.Shed != res.Submitted {
			t.Fatalf("%v: accounting leak: %d completed + %d shed != %d submitted",
				shed, res.Completed, res.Shed, res.Submitted)
		}
		for i, r := range res.Requests {
			if r.Shed && (r.End != 0 || r.Start != 0 || r.Missed) {
				t.Fatalf("%v: shed request %d carries a window: %+v", shed, i, r)
			}
		}
	}
}

// TestConfigErrors pins the driver's input validation.
func TestConfigErrors(t *testing.T) {
	good := TenantSpec{Name: "t", Model: MLP, Rate: 100}
	cases := map[string]Config{
		"no tenants":   {Horizon: 1},
		"zero horizon": {Tenants: []TenantSpec{good}},
		"bad shape":    {Horizon: 1, Tenants: []TenantSpec{good}, Shape: []int{8, 8, 8}},
		"bad rate":     {Horizon: 1, Tenants: []TenantSpec{{Name: "t", Model: MLP}}},
		"too many":     {Horizon: 1, Tenants: []TenantSpec{{Name: "t", Model: MLP, Rate: 1e6}}, MaxRequests: 10},
	}
	for name, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted a bad config", name)
		}
	}
}
