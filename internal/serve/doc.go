// Package serve is the online-serving harness over the pidcomm machine:
// a deterministic open-loop workload driver with SLO accounting, built
// to exercise the asynchronous scheduler the way an inference cluster
// would — many tenants, mixed request shapes, deadlines, overload and
// churn — entirely on the simulated timeline.
//
// # The driver
//
// Run takes a Config naming the tenants (model mix, arrival process,
// rate, SLO, overload budget) and simulates one serving session as a
// single-threaded discrete-event loop: each tenant's arrivals are drawn
// from its own seeded PRNG (Poisson or bursty), submitted as compiled
// plans carrying their arrival time (NotBefore) and absolute deadline,
// and scheduled by stepping the machine one pick at a time. The
// simulated clock chases placements and idles forward to the next
// arrival, so the whole run — admission order, placements, shedding —
// is a pure function of the Config and replays bit-identically.
//
// Requests are short collective pipelines modeled on the paper's
// workloads (DLRM embedding exchange, GNN aggregation, MLP gradient
// sync). By default each pipeline stage is submitted as its own plan,
// keeping the stage boundaries as preemption points for the scheduler;
// Fused collapses a request into one fused plan for contrast.
//
// # Outcomes
//
// Result reports nearest-rank sojourn percentiles (p50/p99/p99.9) over
// all requests, over the deadline-carrying (SLO) population and per
// tenant, plus throughput, deadline misses, shed counts, the attributed
// cost breakdown and the allocator's final free list. Requests keeps
// the per-request trace the property tests diff across runs.
//
// Scenario builds the canonical chat/feed/batch mix with rates
// calibrated against predicted request cost so load is a fraction rho
// of machine capacity; `pidbench -exp serving` sweeps it into a
// throughput-vs-p99 curve and the CI gate pins EDF's p99 advantage on
// it. ChurnEvery recycles tenants mid-run (retire, free the arena,
// recreate over the coalesced pool), pinning the allocator and meter
// invariants under churn.
package serve
