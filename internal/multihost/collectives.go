package multihost

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/elem"
)

// ReduceScatter performs a global ReduceScatter over all hosts' PEs:
// every PE contributes H*P blocks (global-rank order, blockBytes each);
// block g, reduced elementwise over every PE in the cluster, ends on
// global PE g (= host g/P, local PE g%P).
//
// Flow (§ IX-A: "data are sent after reduction"): each host locally
// Reduces the full buffer, the hosts ring-reduce-scatter the per-host
// portions over the network ((H-1)/H of one reduced copy), and each host
// Scatters its final portion to its PEs.
func (cl *Cluster) ReduceScatter(srcOff, dstOff, blockBytes int, t elem.Type, op elem.Op, lvl core.Level) (cost.Breakdown, error) {
	before := cl.Breakdown()
	H := len(cl.hosts)
	P := cl.PEsPerHost()
	m := H * P * blockBytes
	hostPart := P * blockBytes

	partials := make([][]byte, H)
	for h, comm := range cl.hosts {
		bufs, _, err := comm.Reduce("1", srcOff, m, t, op, lvl)
		if err != nil {
			return cost.Breakdown{}, fmt.Errorf("multihost ReduceScatter host %d: %w", h, err)
		}
		if cl.Functional() {
			partials[h] = bufs[0]
		}
	}
	// Network reduce-scatter among hosts: H-1 overlapped rounds, each
	// moving one host portion per host.
	for r := 0; r < H-1; r++ {
		cl.chargeNet(int64(hostPart))
	}
	// Cost-only clusters have nil partials; Scatter then runs buffer-less.
	var global []byte
	if cl.Functional() {
		global = core.RefReduce(t, op, partials)
	}
	for h, comm := range cl.hosts {
		// Host h owns global blocks [h*P, (h+1)*P): block h*P+p to PE p.
		var bufs [][]byte
		if cl.Functional() {
			bufs = [][]byte{global[h*hostPart : (h+1)*hostPart]}
		}
		if _, err := comm.Scatter("1", bufs, dstOff, blockBytes, lvl); err != nil {
			return cost.Breakdown{}, fmt.Errorf("multihost ReduceScatter host %d: %w", h, err)
		}
	}
	return cl.Breakdown().Sub(before), nil
}

// AllGather performs a global AllGather over all hosts' PEs: every PE
// contributes bytesPerPE bytes and ends with the concatenation of every
// PE's buffer in global-rank order (H*P*bytesPerPE bytes at dstOff).
//
// Flow (§ IX-A: "data are sent before duplication"): each host locally
// Gathers its PEs' buffers, the hosts all-gather the per-host portions
// over the network, and each host Broadcasts the assembled buffer to its
// PEs (the duplication happens after the wire).
func (cl *Cluster) AllGather(srcOff, dstOff, bytesPerPE int, lvl core.Level) (cost.Breakdown, error) {
	before := cl.Breakdown()
	H := len(cl.hosts)
	P := cl.PEsPerHost()
	hostPart := P * bytesPerPE

	parts := make([][]byte, H)
	for h, comm := range cl.hosts {
		bufs, _, err := comm.Gather("1", srcOff, bytesPerPE, lvl)
		if err != nil {
			return cost.Breakdown{}, fmt.Errorf("multihost AllGather host %d: %w", h, err)
		}
		if cl.Functional() {
			parts[h] = bufs[0]
		}
	}
	// Network all-gather: H-1 overlapped rounds of one portion per host.
	for r := 0; r < H-1; r++ {
		cl.chargeNet(int64(hostPart))
	}
	// Cost-only: parts are nil, so broadcast a correctly-sized zero
	// payload (never read by the backend).
	assembled := cl.zero(H * hostPart)
	if cl.Functional() {
		assembled = make([]byte, 0, H*hostPart)
		for _, p := range parts {
			assembled = append(assembled, p...)
		}
	}
	for h, comm := range cl.hosts {
		if _, err := comm.Broadcast("1", [][]byte{assembled}, dstOff, lvl); err != nil {
			return cost.Breakdown{}, fmt.Errorf("multihost AllGather host %d: %w", h, err)
		}
	}
	return cl.Breakdown().Sub(before), nil
}
