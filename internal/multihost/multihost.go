// Package multihost implements the hierarchical multi-host extension of
// PID-Comm (§ IX-A, Figure 23(b)): several hosts, each driving its own
// channel(s) of PIM-enabled DIMMs, cooperate through an MPI-like network.
// Each host first runs a local PID-Comm collective, then the hosts run a
// global collective over the network, then results are redistributed to
// the PEs — mirroring typical hierarchical distributed systems.
//
// The network is modeled with latency and bandwidth (the paper controls
// MPI bandwidth to 10 Gbps high-speed Ethernet); transfers between
// distinct host pairs overlap, as MPI point-to-points do.
package multihost

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// Cluster is a set of hosts, each owning an identical PIM subsystem.
type Cluster struct {
	hosts  []*core.Comm
	params cost.Params
	// netMeter accrues network time (the critical path across steps).
	netMeter *cost.Meter
	// costOnly marks a cluster whose hosts run the cost-only backend:
	// collectives charge identical costs but move no data and return nil
	// result buffers.
	costOnly bool
	// scratch is a reusable zero buffer handed to size-validated host
	// payload parameters (Broadcast) in cost-only mode, so sweeps don't
	// re-allocate O(data) per call.
	scratch []byte
}

// zero returns an n-byte all-zero buffer, growing a shared scratch
// allocation. Cost-only collectives never read or write it; it exists
// only to satisfy payload-size validation.
func (cl *Cluster) zero(n int) []byte {
	if len(cl.scratch) < n {
		cl.scratch = make([]byte, n)
	}
	return cl.scratch[:n]
}

// New builds a cluster of numHosts hosts, each with its own system of the
// given per-host geometry and a 1-D hypercube over its PEs.
func New(numHosts int, geo dram.Geometry, params cost.Params) (*Cluster, error) {
	return build(numHosts, geo, params, false)
}

// NewCostOnly builds a cluster on the cost-only backend over phantom
// systems: no MRAM is allocated, no bytes move, and every collective's
// breakdown matches the functional cluster's bit-for-bit. Rooted results
// and gathered buffers are nil.
func NewCostOnly(numHosts int, geo dram.Geometry, params cost.Params) (*Cluster, error) {
	return build(numHosts, geo, params, true)
}

func build(numHosts int, geo dram.Geometry, params cost.Params, costOnly bool) (*Cluster, error) {
	if numHosts <= 0 {
		return nil, fmt.Errorf("multihost: need at least one host, got %d", numHosts)
	}
	cl := &Cluster{params: params, netMeter: cost.NewMeter(), costOnly: costOnly}
	for i := 0; i < numHosts; i++ {
		var sys *dram.System
		var err error
		if costOnly {
			sys, err = dram.NewPhantomSystem(geo)
		} else {
			sys, err = dram.NewSystem(geo)
		}
		if err != nil {
			return nil, err
		}
		hc, err := core.NewHypercube(sys, []int{geo.NumPEs()})
		if err != nil {
			return nil, err
		}
		if costOnly {
			cl.hosts = append(cl.hosts, core.NewCostComm(hc, params))
		} else {
			cl.hosts = append(cl.hosts, core.NewComm(hc, params))
		}
	}
	return cl, nil
}

// Functional reports whether the cluster moves real bytes.
func (cl *Cluster) Functional() bool { return !cl.costOnly }

// NumHosts returns the number of hosts.
func (cl *Cluster) NumHosts() int { return len(cl.hosts) }

// Host returns host h's communication context.
func (cl *Cluster) Host(h int) *core.Comm { return cl.hosts[h] }

// PEsPerHost returns the PE count per host.
func (cl *Cluster) PEsPerHost() int {
	return cl.hosts[0].Hypercube().System().Geometry().NumPEs()
}

// chargeNet charges one network exchange step where every host sends
// bytesPerHost bytes; pairwise transfers overlap, so elapsed time is one
// host's traffic over the link bandwidth plus latency.
func (cl *Cluster) chargeNet(bytesPerHost int64) {
	cl.netMeter.Add(cost.Network, cl.params.NetworkLatency)
	cl.netMeter.AddBytes(cost.Network, bytesPerHost, cl.params.NetworkBW)
}

// Breakdown returns the cluster's cost snapshot: the slowest host's local
// time (hosts run concurrently) plus the network time.
func (cl *Cluster) Breakdown() cost.Breakdown {
	agg := cost.NewMeter()
	for _, h := range cl.hosts {
		agg.MergeMax(h.Meter())
	}
	agg.Merge(cl.netMeter)
	return agg.Snapshot()
}

// AllReduce performs a global AllReduce over all hosts' PEs: every PE
// ends with the elementwise reduction of every PE's buffer in the whole
// cluster. Flow (§ IX-A): local Reduce to each host (1/P of the data
// crosses the network, P = PEs/host), ring AllReduce among hosts over
// MPI, local Broadcast.
func (cl *Cluster) AllReduce(srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl core.Level) (cost.Breakdown, error) {
	before := cl.Breakdown()
	dims := "1"
	partials := make([][]byte, len(cl.hosts))
	for h, comm := range cl.hosts {
		bufs, _, err := comm.Reduce(dims, srcOff, bytesPerPE, t, op, lvl)
		if err != nil {
			return cost.Breakdown{}, fmt.Errorf("multihost AllReduce host %d: %w", h, err)
		}
		if cl.Functional() {
			partials[h] = bufs[0] // 1-D hypercube: single group
		}
	}
	// Inter-host ring AllReduce on the reduced buffers: 2(H-1) steps each
	// moving bytesPerPE/H per host.
	if len(cl.hosts) > 1 {
		h := len(cl.hosts)
		steps := 2 * (h - 1)
		for i := 0; i < steps; i++ {
			cl.chargeNet(int64(bytesPerPE / h))
		}
	}
	// In cost-only mode the per-host partials are nil; broadcast a
	// correctly-sized zero payload (never read by the backend).
	global := cl.zero(bytesPerPE)
	if cl.Functional() {
		global = core.RefReduce(t, op, partials)
	}
	for h, comm := range cl.hosts {
		if _, err := comm.Broadcast(dims, [][]byte{global}, dstOff, lvl); err != nil {
			return cost.Breakdown{}, fmt.Errorf("multihost AllReduce host %d: %w", h, err)
		}
	}
	return cl.Breakdown().Sub(before), nil
}

// AlltoAll performs a global AlltoAll over all hosts' PEs. Every PE's
// buffer holds one block per global PE (H*P blocks of blockBytes); block
// q of global PE p ends as block p of global PE q, where global PE index
// is host*P + localPE.
//
// Flow: the intra-host portion is one local PID-Comm AlltoAll (the
// contiguous region of blocks destined to the local host); each remote
// portion is Gathered, exchanged over the network ((H-1)/H of all data),
// transposed on the receiving host, and Scattered into place.
func (cl *Cluster) AlltoAll(srcOff, dstOff, blockBytes int, lvl core.Level) (cost.Breakdown, error) {
	before := cl.Breakdown()
	H := len(cl.hosts)
	P := cl.PEsPerHost()
	dims := "1"
	hostPart := P * blockBytes // bytes destined to one host, per PE

	// Intra-host: local AlltoAll on the region of locally-destined blocks.
	for h, comm := range cl.hosts {
		if _, err := comm.AlltoAll(dims, srcOff+h*hostPart, dstOff+h*hostPart, hostPart, lvl); err != nil {
			return cost.Breakdown{}, fmt.Errorf("multihost AlltoAll host %d: %w", h, err)
		}
	}
	// Cross-host exchange cost: H-1 overlapped rounds in which every host
	// sends one remote portion (P*hostPart bytes) — the (H-1)/H traffic
	// scaling of § IX-A.
	for r := 0; r < H-1; r++ {
		cl.chargeNet(int64(P * hostPart))
	}
	// Cross-host data movement: gather each remote portion, exchange,
	// transpose, scatter. In cost-only mode the gathered payload is nil,
	// the transpose is skipped (its time is the LocalMod charge below)
	// and Scatter runs buffer-less.
	for src := 0; src < H; src++ {
		for dst := 0; dst < H; dst++ {
			if src == dst {
				continue
			}
			bufs, _, err := cl.hosts[src].Gather(dims, srcOff+dst*hostPart, hostPart, lvl)
			if err != nil {
				return cost.Breakdown{}, fmt.Errorf("multihost AlltoAll gather %d->%d: %w", src, dst, err)
			}
			var scatterBufs [][]byte
			if cl.Functional() {
				payload := bufs[0] // [src local p][dst local p'] blocks
				// Receiving host transposes [src p][dst p'] -> [dst p'][src p]
				// and scatters so block from (src,p) lands at dst slot.
				re := make([]byte, len(payload))
				for p := 0; p < P; p++ {
					for q := 0; q < P; q++ {
						copy(re[q*P*blockBytes+p*blockBytes:q*P*blockBytes+(p+1)*blockBytes],
							payload[p*P*blockBytes+q*blockBytes:p*P*blockBytes+(q+1)*blockBytes])
					}
				}
				scatterBufs = [][]byte{re}
			}
			cl.hosts[dst].Host().ChargeLocalMod(int64(P) * int64(hostPart))
			if _, err := cl.hosts[dst].Scatter(dims, scatterBufs, dstOff+src*hostPart, P*blockBytes, lvl); err != nil {
				return cost.Breakdown{}, fmt.Errorf("multihost AlltoAll scatter %d->%d: %w", src, dst, err)
			}
		}
	}
	return cl.Breakdown().Sub(before), nil
}
