// Package multihost is the compatibility surface of the hierarchical
// multi-host extension of PID-Comm (§ IX-A, Figure 23(b)): several
// hosts, each driving its own channel(s) of PIM-enabled DIMMs,
// cooperate through an MPI-like network. It is a thin wrapper over the
// first-class cluster layer (core.NewCluster / pidcomm.NewCluster),
// which lowers each global collective into ONE schedule-IR plan per
// host — intra-host leg, network leg (a StepNetTransfer priced by the
// parameterized cost.NetParams model), redistribution leg — so cluster
// collectives compile, cache, fuse and replay exactly like single-host
// ones. New code should use the cluster layer directly; this package
// keeps the original positional call surface for the § IX-A study.
//
// The network is modeled with parameterized per-round latency and
// bandwidth (the paper controls MPI bandwidth to 10 Gbps high-speed
// Ethernet, the DefaultNetParams); transfers between distinct host
// pairs overlap, as MPI point-to-points do.
package multihost

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// Cluster is a set of hosts, each owning an identical PIM subsystem,
// wrapping a core.Cluster over 1-D hypercubes.
type Cluster struct {
	cc *core.Cluster
}

// dims selects the single dimension of each host's 1-D hypercube, so
// every global collective spans the whole host.
const dims = "1"

// New builds a cluster of numHosts hosts, each with its own system of the
// given per-host geometry and a 1-D hypercube over its PEs.
func New(numHosts int, geo dram.Geometry, params cost.Params) (*Cluster, error) {
	return build(numHosts, geo, params, false)
}

// NewCostOnly builds a cluster on the cost-only backend over phantom
// systems: no MRAM is allocated, no bytes move, and every collective's
// breakdown matches the functional cluster's bit-for-bit. Rooted results
// and gathered buffers are nil, and the rooted payload parameters may be
// nil too — cost-only sweeps allocate no per-call staging at all.
func NewCostOnly(numHosts int, geo dram.Geometry, params cost.Params) (*Cluster, error) {
	return build(numHosts, geo, params, true)
}

func build(numHosts int, geo dram.Geometry, params cost.Params, costOnly bool) (*Cluster, error) {
	if numHosts <= 0 {
		return nil, fmt.Errorf("multihost: need at least one host, got %d", numHosts)
	}
	comms := make([]*core.Comm, numHosts)
	for i := 0; i < numHosts; i++ {
		var sys *dram.System
		var err error
		if costOnly {
			sys, err = dram.NewPhantomSystem(geo)
		} else {
			sys, err = dram.NewSystem(geo)
		}
		if err != nil {
			return nil, err
		}
		hc, err := core.NewHypercube(sys, []int{geo.NumPEs()})
		if err != nil {
			return nil, err
		}
		if costOnly {
			comms[i] = core.NewCostComm(hc, params)
		} else {
			comms[i] = core.NewComm(hc, params)
		}
	}
	cc, err := core.NewCluster(comms)
	if err != nil {
		return nil, fmt.Errorf("multihost: %w", err)
	}
	return &Cluster{cc: cc}, nil
}

// Cluster returns the underlying first-class cluster layer, for callers
// migrating to descriptor-based cluster collectives.
func (cl *Cluster) Cluster() *core.Cluster { return cl.cc }

// Functional reports whether the cluster moves real bytes.
func (cl *Cluster) Functional() bool { return cl.cc.Functional() }

// NumHosts returns the number of hosts.
func (cl *Cluster) NumHosts() int { return cl.cc.NumHosts() }

// Host returns host h's communication context.
func (cl *Cluster) Host(h int) *core.Comm { return cl.cc.Host(h) }

// PEsPerHost returns the PE count per host.
func (cl *Cluster) PEsPerHost() int { return cl.cc.PEsPerHost() }

// Breakdown returns the cluster's cost snapshot: the slowest host's
// time per category (hosts run concurrently; each host's meter includes
// its own network-leg time).
func (cl *Cluster) Breakdown() cost.Breakdown { return cl.cc.Breakdown() }

// AllReduce performs a global AllReduce over all hosts' PEs: every PE
// ends with the elementwise reduction of every PE's buffer in the whole
// cluster. Flow (§ IX-A): local Reduce on each host (1/P of the data
// crosses the network, P = PEs/host), ring AllReduce among hosts over
// MPI, local Broadcast.
func (cl *Cluster) AllReduce(srcOff, dstOff, bytesPerPE int, t elem.Type, op elem.Op, lvl core.Level) (cost.Breakdown, error) {
	return cl.run("AllReduce", core.ClusterCollective{Collective: core.Collective{
		Prim: core.AllReduce, Dims: dims,
		Src: core.Span(srcOff, bytesPerPE), Dst: core.At(dstOff),
		Elem: t, Op: op, Level: lvl,
	}})
}

// AlltoAll performs a global AlltoAll over all hosts' PEs. Every PE's
// buffer holds one block per global PE (H*P blocks of blockBytes); block
// q of global PE p ends as block p of global PE q, where global PE index
// is host*P + localPE. The intra-host portion is one local PID-Comm
// AlltoAll; the remote portions are packed, exchanged over the network
// ((H-1)/H of all data) and transposed into place on the receivers.
func (cl *Cluster) AlltoAll(srcOff, dstOff, blockBytes int, lvl core.Level) (cost.Breakdown, error) {
	m := cl.cc.NumPEs() * blockBytes
	return cl.run("AlltoAll", core.ClusterCollective{Collective: core.Collective{
		Prim: core.AlltoAll, Dims: dims,
		Src: core.Span(srcOff, m), Dst: core.At(dstOff), Level: lvl,
	}})
}

// ReduceScatter performs a global ReduceScatter over all hosts' PEs:
// every PE contributes H*P blocks (global-rank order, blockBytes each);
// block g, reduced elementwise over every PE in the cluster, ends on
// global PE g (= host g/P, local PE g%P). Per § IX-A data are sent
// after reduction: only per-host portions of one reduced copy cross the
// network.
func (cl *Cluster) ReduceScatter(srcOff, dstOff, blockBytes int, t elem.Type, op elem.Op, lvl core.Level) (cost.Breakdown, error) {
	m := cl.cc.NumPEs() * blockBytes
	return cl.run("ReduceScatter", core.ClusterCollective{Collective: core.Collective{
		Prim: core.ReduceScatter, Dims: dims,
		Src: core.Span(srcOff, m), Dst: core.At(dstOff),
		Elem: t, Op: op, Level: lvl,
	}})
}

// AllGather performs a global AllGather over all hosts' PEs: every PE
// contributes bytesPerPE bytes and ends with the concatenation of every
// PE's buffer in global-rank order (H*P*bytesPerPE bytes at dstOff).
// Per § IX-A data are sent before duplication: per-host portions cross
// the network once, the H*P-fold fan-out happens locally after.
func (cl *Cluster) AllGather(srcOff, dstOff, bytesPerPE int, lvl core.Level) (cost.Breakdown, error) {
	return cl.run("AllGather", core.ClusterCollective{Collective: core.Collective{
		Prim: core.AllGather, Dims: dims,
		Src: core.Span(srcOff, bytesPerPE), Dst: core.At(dstOff), Level: lvl,
	}})
}

// Broadcast sends buf from the root host to every PE in the cluster at
// dstOff. On a cost-only cluster buf supplies only the payload size and
// its bytes are never read.
func (cl *Cluster) Broadcast(root int, buf []byte, dstOff int, lvl core.Level) (cost.Breakdown, error) {
	d := core.ClusterCollective{Collective: core.Collective{
		Prim: core.Broadcast, Dims: dims,
		Dst: core.Span(dstOff, len(buf)), Level: lvl,
	}, Root: root}
	if cl.Functional() {
		d.Hosts = [][]byte{buf}
	}
	return cl.run("Broadcast", d)
}

// Scatter sends block g of buf to global PE g (host g/P, local g%P);
// each PE receives blockBytes at dstOff. buf must hold H*P blocks; on a
// cost-only cluster it may be nil (no bytes are read either way).
func (cl *Cluster) Scatter(root int, buf []byte, dstOff, blockBytes int, lvl core.Level) (cost.Breakdown, error) {
	if want := cl.cc.NumPEs() * blockBytes; buf != nil && len(buf) != want {
		return cost.Breakdown{}, fmt.Errorf("multihost Scatter: buffer %d bytes, want %d", len(buf), want)
	}
	d := core.ClusterCollective{Collective: core.Collective{
		Prim: core.Scatter, Dims: dims,
		Dst: core.Span(dstOff, blockBytes), Level: lvl,
	}, Root: root}
	if cl.Functional() {
		d.Hosts = [][]byte{buf}
	}
	return cl.run("Scatter", d)
}

// Gather collects bytesPerPE bytes from every PE (global-rank order) to
// the root host. The returned buffer is nil on a cost-only cluster.
func (cl *Cluster) Gather(root int, srcOff, bytesPerPE int, lvl core.Level) ([]byte, cost.Breakdown, error) {
	return cl.runRooted("Gather", core.ClusterCollective{Collective: core.Collective{
		Prim: core.Gather, Dims: dims,
		Src: core.Span(srcOff, bytesPerPE), Level: lvl,
	}, Root: root})
}

// Reduce returns the elementwise reduction of every PE's bytesPerPE
// buffer to the root host ("data are sent after being reduced": only one
// reduced copy per non-root host crosses the network). The returned
// buffer is nil on a cost-only cluster.
func (cl *Cluster) Reduce(root int, srcOff, bytesPerPE int, t elem.Type, op elem.Op, lvl core.Level) ([]byte, cost.Breakdown, error) {
	return cl.runRooted("Reduce", core.ClusterCollective{Collective: core.Collective{
		Prim: core.Reduce, Dims: dims,
		Src:  core.Span(srcOff, bytesPerPE),
		Elem: t, Op: op, Level: lvl,
	}, Root: root})
}

func (cl *Cluster) run(name string, d core.ClusterCollective) (cost.Breakdown, error) {
	bd, err := cl.cc.Run(d)
	if err != nil {
		return cost.Breakdown{}, fmt.Errorf("multihost %s: %w", name, err)
	}
	return bd, nil
}

func (cl *Cluster) runRooted(name string, d core.ClusterCollective) ([]byte, cost.Breakdown, error) {
	cp, err := cl.cc.Compile(d)
	if err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("multihost %s: %w", name, err)
	}
	bd, err := cp.Run()
	if err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("multihost %s: %w", name, err)
	}
	return cp.Results(), bd, nil
}
