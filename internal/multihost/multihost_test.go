package multihost

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

var testGeo = dram.Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 14} // 16 PEs/host

func newCluster(t *testing.T, hosts int) *Cluster {
	t.Helper()
	cl, err := New(hosts, testGeo, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// fill writes per-global-PE data and returns it indexed by global PE.
func fill(cl *Cluster, off, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	P := cl.PEsPerHost()
	out := make([][]byte, cl.NumHosts()*P)
	for h := 0; h < cl.NumHosts(); h++ {
		for p := 0; p < P; p++ {
			b := make([]byte, n)
			rng.Read(b)
			cl.Host(h).SetPEBuffer(p, off, b)
			out[h*P+p] = b
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, testGeo, cost.DefaultParams()); err == nil {
		t.Error("zero hosts accepted")
	}
	if _, err := New(2, dram.Geometry{}, cost.DefaultParams()); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestAllReduceCorrectAcrossHosts(t *testing.T) {
	for _, hosts := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("%dhosts", hosts), func(t *testing.T) {
			cl := newCluster(t, hosts)
			P := cl.PEsPerHost()
			m := P * 8
			in := fill(cl, 0, m, 17)
			if _, err := cl.AllReduce(0, 2*m, m, elem.I32, elem.Sum, core.CM); err != nil {
				t.Fatal(err)
			}
			want := core.RefReduce(elem.I32, elem.Sum, in)
			for h := 0; h < hosts; h++ {
				for p := 0; p < P; p++ {
					got := cl.Host(h).GetPEBuffer(p, 2*m, m)
					if !bytes.Equal(got, want) {
						t.Fatalf("host %d PE %d mismatch", h, p)
					}
				}
			}
		})
	}
}

func TestAlltoAllCorrectAcrossHosts(t *testing.T) {
	for _, hosts := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("%dhosts", hosts), func(t *testing.T) {
			cl := newCluster(t, hosts)
			P := cl.PEsPerHost()
			s := 8
			total := hosts * P
			m := total * s
			in := fill(cl, 0, m, 23)
			if _, err := cl.AlltoAll(0, 2*m, s, core.CM); err != nil {
				t.Fatal(err)
			}
			want := core.RefAlltoAll(in, s)
			for h := 0; h < hosts; h++ {
				for p := 0; p < P; p++ {
					got := cl.Host(h).GetPEBuffer(p, 2*m, m)
					if !bytes.Equal(got, want[h*P+p]) {
						t.Fatalf("host %d PE %d mismatch", h, p)
					}
				}
			}
		})
	}
}

// Figure 23(b) shapes: network overhead grows with host count; AllReduce's
// network share is far smaller than AlltoAll's (reduced data crosses the
// wire); PID-Comm stays ahead of the baseline.
func TestFigure23bShapes(t *testing.T) {
	// Sizes large enough that bandwidth terms dominate latency and launch
	// overheads (the regime of Figure 23(b): 2 MB per PE on real hardware).
	// 128 PEs per host on one channel approximates the paper's 256-PE
	// hosts' bus-share-per-PE regime.
	bigGeo := dram.Geometry{Channels: 1, RanksPerChannel: 2, BanksPerChip: 8, MramPerBank: 1 << 19}
	run := func(hosts int, lvl core.Level, aa bool) cost.Breakdown {
		cl, err := New(hosts, bigGeo, cost.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		P := cl.PEsPerHost()
		var m int
		if aa {
			m = hosts * P * 512 // 512 B blocks per global PE
		} else {
			m = P * 1024
		}
		fill(cl, 0, m, 3)
		var bd cost.Breakdown
		if aa {
			bd, err = cl.AlltoAll(0, 2*m, 512, lvl)
		} else {
			bd, err = cl.AllReduce(0, 2*m, m, elem.I32, elem.Sum, lvl)
		}
		if err != nil {
			t.Fatal(err)
		}
		return bd
	}
	// Network time grows with hosts.
	ar2 := run(2, core.CM, false)
	ar4 := run(4, core.CM, false)
	if !(ar4.Get(cost.Network) > ar2.Get(cost.Network)) {
		t.Error("AllReduce network time should grow with hosts")
	}
	if run(1, core.CM, false).Get(cost.Network) != 0 {
		t.Error("single host should have no network time")
	}
	// AlltoAll's network fraction exceeds AllReduce's.
	aa2 := run(2, core.CM, true)
	arFrac := float64(ar2.Get(cost.Network)) / float64(ar2.Total())
	aaFrac := float64(aa2.Get(cost.Network)) / float64(aa2.Total())
	if aaFrac <= arFrac {
		t.Errorf("AlltoAll net fraction %.3f should exceed AllReduce's %.3f", aaFrac, arFrac)
	}
	// PID-Comm beats the baseline in the multi-host setting too.
	if base := run(2, core.Baseline, true); base.Total() <= aa2.Total() {
		t.Errorf("baseline multihost AlltoAll (%v) should be slower than PID-Comm (%v)",
			base.Total(), aa2.Total())
	}
}

func TestBreakdownTakesSlowestHost(t *testing.T) {
	cl := newCluster(t, 2)
	// Host 0 does work; host 1 idles. Cluster time = host 0's.
	P := cl.PEsPerHost()
	m := P * 8
	rng := rand.New(rand.NewSource(1))
	for p := 0; p < P; p++ {
		b := make([]byte, m)
		rng.Read(b)
		cl.Host(0).SetPEBuffer(p, 0, b)
	}
	if _, err := cl.Host(0).AlltoAll("1", 0, 2*m, m, core.CM); err != nil {
		t.Fatal(err)
	}
	bd := cl.Breakdown()
	if bd.Total() != cl.Host(0).Meter().Snapshot().Total() {
		t.Error("cluster breakdown should equal the busiest host's meter")
	}
}

// A cost-only cluster (phantom systems, no data) must charge exactly
// what the functional cluster charges, for every cluster collective.
func TestCostOnlyClusterMatchesFunctional(t *testing.T) {
	for _, hosts := range []int{1, 2} {
		fc := newCluster(t, hosts)
		cc, err := NewCostOnly(hosts, testGeo, cost.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if cc.Functional() {
			t.Fatal("NewCostOnly built a functional cluster")
		}
		P := fc.PEsPerHost()
		m := P * 8
		rootBuf := make([]byte, hosts*P*8)

		type step struct {
			name string
			run  func(cl *Cluster) (cost.Breakdown, error)
		}
		steps := []step{
			{"AllReduce", func(cl *Cluster) (cost.Breakdown, error) {
				return cl.AllReduce(0, 2*m, m, elem.I32, elem.Sum, core.CM)
			}},
			{"ReduceScatter", func(cl *Cluster) (cost.Breakdown, error) {
				gm := hosts * P * 8 // 8-byte blocks, one per global PE
				return cl.ReduceScatter(0, 2*gm, 8, elem.I32, elem.Sum, core.IM)
			}},
			{"AllGather", func(cl *Cluster) (cost.Breakdown, error) {
				return cl.AllGather(0, 2*m, 8, core.IM)
			}},
			{"AlltoAll", func(cl *Cluster) (cost.Breakdown, error) {
				gm := hosts * P * 8
				return cl.AlltoAll(0, 2*gm, 8, core.CM)
			}},
			{"Broadcast", func(cl *Cluster) (cost.Breakdown, error) {
				return cl.Broadcast(0, rootBuf[:m], 0, core.Baseline)
			}},
			{"Scatter", func(cl *Cluster) (cost.Breakdown, error) {
				return cl.Scatter(0, rootBuf, 0, 8, core.IM)
			}},
			{"Gather", func(cl *Cluster) (cost.Breakdown, error) {
				_, bd, err := cl.Gather(0, 0, 8, core.IM)
				return bd, err
			}},
			{"Reduce", func(cl *Cluster) (cost.Breakdown, error) {
				_, bd, err := cl.Reduce(0, 0, m, elem.I32, elem.Sum, core.IM)
				return bd, err
			}},
		}
		for _, s := range steps {
			fill(fc, 0, m, 9)
			want, err := s.run(fc)
			if err != nil {
				t.Fatalf("%s functional (%d hosts): %v", s.name, hosts, err)
			}
			got, err := s.run(cc)
			if err != nil {
				t.Fatalf("%s cost-only (%d hosts): %v", s.name, hosts, err)
			}
			if want != got {
				t.Errorf("%s (%d hosts): functional %v, cost-only %v", s.name, hosts, want, got)
			}
		}
	}
}
