package multihost

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/elem"
)

// The rooted primitives in a multi-host cluster follow the same
// hierarchical pattern as the symmetric ones (§ IX-A): one designated
// root host talks to the others over the network, and each host uses the
// local PID-Comm primitive for its own PEs.

// Broadcast sends buf from the root host to every PE in the cluster at
// dstOff.
func (cl *Cluster) Broadcast(root int, buf []byte, dstOff int, lvl core.Level) (cost.Breakdown, error) {
	if err := cl.checkRoot(root); err != nil {
		return cost.Breakdown{}, fmt.Errorf("multihost Broadcast: %w", err)
	}
	before := cl.Breakdown()
	// Root ships the payload to the other hosts (overlapped fan-out
	// rounds: ceil(log2 H) with a binomial tree).
	for r := 1; r < len(cl.hosts); r *= 2 {
		cl.chargeNet(int64(len(buf)))
	}
	for h, comm := range cl.hosts {
		if _, err := comm.Broadcast("1", [][]byte{buf}, dstOff, lvl); err != nil {
			return cost.Breakdown{}, fmt.Errorf("multihost Broadcast host %d: %w", h, err)
		}
	}
	return cl.Breakdown().Sub(before), nil
}

// Scatter sends block g of buf to global PE g (host g/P, local g%P);
// each PE receives blockBytes at dstOff. buf must hold H*P blocks.
func (cl *Cluster) Scatter(root int, buf []byte, dstOff, blockBytes int, lvl core.Level) (cost.Breakdown, error) {
	if err := cl.checkRoot(root); err != nil {
		return cost.Breakdown{}, fmt.Errorf("multihost Scatter: %w", err)
	}
	H := len(cl.hosts)
	P := cl.PEsPerHost()
	if len(buf) != H*P*blockBytes {
		return cost.Breakdown{}, fmt.Errorf("multihost Scatter: buffer %d bytes, want %d", len(buf), H*P*blockBytes)
	}
	before := cl.Breakdown()
	hostPart := P * blockBytes
	// Root ships each non-root host its portion (pipelined rounds).
	for h := 0; h < H; h++ {
		if h != root {
			cl.chargeNet(int64(hostPart))
		}
	}
	for h, comm := range cl.hosts {
		part := buf[h*hostPart : (h+1)*hostPart]
		if _, err := comm.Scatter("1", [][]byte{part}, dstOff, blockBytes, lvl); err != nil {
			return cost.Breakdown{}, fmt.Errorf("multihost Scatter host %d: %w", h, err)
		}
	}
	return cl.Breakdown().Sub(before), nil
}

// Gather collects bytesPerPE bytes from every PE (global-rank order) to
// the root host.
func (cl *Cluster) Gather(root int, srcOff, bytesPerPE int, lvl core.Level) ([]byte, cost.Breakdown, error) {
	if err := cl.checkRoot(root); err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("multihost Gather: %w", err)
	}
	before := cl.Breakdown()
	H := len(cl.hosts)
	P := cl.PEsPerHost()
	out := make([]byte, 0, H*P*bytesPerPE)
	for h, comm := range cl.hosts {
		bufs, _, err := comm.Gather("1", srcOff, bytesPerPE, lvl)
		if err != nil {
			return nil, cost.Breakdown{}, fmt.Errorf("multihost Gather host %d: %w", h, err)
		}
		if h != root {
			cl.chargeNet(int64(P) * int64(bytesPerPE))
		}
		if cl.Functional() {
			out = append(out, bufs[0]...)
		}
	}
	if !cl.Functional() {
		out = nil
	}
	return out, cl.Breakdown().Sub(before), nil
}

// Reduce returns the elementwise reduction of every PE's bytesPerPE
// buffer to the root host ("data are sent after being reduced": only one
// reduced copy per non-root host crosses the network).
func (cl *Cluster) Reduce(root int, srcOff, bytesPerPE int, t elem.Type, op elem.Op, lvl core.Level) ([]byte, cost.Breakdown, error) {
	if err := cl.checkRoot(root); err != nil {
		return nil, cost.Breakdown{}, fmt.Errorf("multihost Reduce: %w", err)
	}
	before := cl.Breakdown()
	partials := make([][]byte, len(cl.hosts))
	for h, comm := range cl.hosts {
		bufs, _, err := comm.Reduce("1", srcOff, bytesPerPE, t, op, lvl)
		if err != nil {
			return nil, cost.Breakdown{}, fmt.Errorf("multihost Reduce host %d: %w", h, err)
		}
		if h != root {
			cl.chargeNet(int64(bytesPerPE))
		}
		if cl.Functional() {
			partials[h] = bufs[0]
		}
	}
	var out []byte
	if cl.Functional() {
		out = core.RefReduce(t, op, partials)
	}
	return out, cl.Breakdown().Sub(before), nil
}

func (cl *Cluster) checkRoot(root int) error {
	if root < 0 || root >= len(cl.hosts) {
		return fmt.Errorf("root host %d out of range [0,%d)", root, len(cl.hosts))
	}
	return nil
}
