package multihost

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/elem"
)

func TestGlobalReduceScatter(t *testing.T) {
	for _, hosts := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("%dhosts", hosts), func(t *testing.T) {
			cl := newCluster(t, hosts)
			P := cl.PEsPerHost()
			blk := 8
			m := hosts * P * blk
			in := fill(cl, 0, m, 41)
			if _, err := cl.ReduceScatter(0, 2*m, blk, elem.I32, elem.Sum, core.IM); err != nil {
				t.Fatal(err)
			}
			want := core.RefReduceScatter(elem.I32, elem.Sum, in, blk)
			for h := 0; h < hosts; h++ {
				for p := 0; p < P; p++ {
					got := cl.Host(h).GetPEBuffer(p, 2*m, blk)
					if !bytes.Equal(got, want[h*P+p]) {
						t.Fatalf("host %d PE %d mismatch", h, p)
					}
				}
			}
		})
	}
}

func TestGlobalAllGather(t *testing.T) {
	for _, hosts := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("%dhosts", hosts), func(t *testing.T) {
			cl := newCluster(t, hosts)
			P := cl.PEsPerHost()
			s := 16
			in := fill(cl, 0, s, 43)
			if _, err := cl.AllGather(0, 256, s, core.CM); err != nil {
				t.Fatal(err)
			}
			want := core.RefAllGather(in)
			for h := 0; h < hosts; h++ {
				for p := 0; p < P; p++ {
					got := cl.Host(h).GetPEBuffer(p, 256, hosts*P*s)
					if !bytes.Equal(got, want[h*P+p]) {
						t.Fatalf("host %d PE %d mismatch", h, p)
					}
				}
			}
		})
	}
}

// § IX-A trends: RS sends data after reduction, AG before duplication —
// both keep the network share far below AlltoAll's.
func TestReducedTrafficTrends(t *testing.T) {
	cl := newCluster(t, 2)
	P := cl.PEsPerHost()
	blk := 64
	m := 2 * P * blk
	fill(cl, 0, m, 5)
	rsBD, err := cl.ReduceScatter(0, 2*m, blk, elem.I32, elem.Sum, core.IM)
	if err != nil {
		t.Fatal(err)
	}
	cl2 := newCluster(t, 2)
	fill(cl2, 0, m, 5)
	aaBD, err := cl2.AlltoAll(0, 2*m, blk, core.CM)
	if err != nil {
		t.Fatal(err)
	}
	rsNet := float64(rsBD.Get(cost.Network))
	aaNet := float64(aaBD.Get(cost.Network))
	if rsNet >= aaNet {
		t.Errorf("RS network time %v should be below AlltoAll's %v", rsNet, aaNet)
	}
}
