package multihost

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/elem"
)

func TestRootedBroadcast(t *testing.T) {
	cl := newCluster(t, 3)
	buf := make([]byte, 64)
	rand.New(rand.NewSource(1)).Read(buf)
	if _, err := cl.Broadcast(0, buf, 128, core.CM); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		for p := 0; p < cl.PEsPerHost(); p++ {
			if !bytes.Equal(cl.Host(h).GetPEBuffer(p, 128, 64), buf) {
				t.Fatalf("host %d PE %d missing payload", h, p)
			}
		}
	}
}

func TestRootedScatterGatherRoundTrip(t *testing.T) {
	cl := newCluster(t, 2)
	P := cl.PEsPerHost()
	blk := 16
	buf := make([]byte, 2*P*blk)
	rand.New(rand.NewSource(2)).Read(buf)
	if _, err := cl.Scatter(0, buf, 0, blk, core.IM); err != nil {
		t.Fatal(err)
	}
	got, _, err := cl.Gather(0, 0, blk, core.IM)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("scatter/gather round trip mismatch")
	}
}

func TestRootedReduce(t *testing.T) {
	cl := newCluster(t, 4)
	P := cl.PEsPerHost()
	m := P * 8
	in := fill(cl, 0, m, 9)
	got, bd, err := cl.Reduce(0, 0, m, elem.I32, elem.Sum, core.IM)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, core.RefReduce(elem.I32, elem.Sum, in)) {
		t.Fatal("reduce mismatch")
	}
	// Only reduced copies cross the wire: 3 host portions of m bytes.
	if bd.Get(cost.Network) <= 0 {
		t.Error("no network time charged")
	}
}

func TestRootedValidation(t *testing.T) {
	cl := newCluster(t, 2)
	if _, err := cl.Broadcast(5, make([]byte, 8), 0, core.IM); err == nil {
		t.Error("bad root accepted")
	}
	if _, err := cl.Scatter(0, make([]byte, 3), 0, 8, core.IM); err == nil {
		t.Error("bad buffer size accepted")
	}
}
