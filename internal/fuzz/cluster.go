package fuzz

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// ClusterScenario is one randomized cluster differential-test
// configuration: H identical hosts of the geometry joined by
// core.NewCluster, every global collective run over whole-host Dims and
// compared against the reference model on global-rank-concatenated
// inputs, and — after each functional call — the same descriptor run on
// a cost-only twin cluster, whose breakdown must match bit-for-bit.
type ClusterScenario struct {
	Geo   dram.Geometry
	Shape []int
	Hosts int
	S     int // block bytes
	Lvl   core.Level
	Typ   elem.Type
	Op    elem.Op
}

// RandomCluster draws a cluster scenario: 1-4 hosts (non-power-of-two
// counts included), 1-D and 2-D per-host shapes, integer element types
// so hierarchical regrouping stays bit-exact.
func RandomCluster(rng *rand.Rand) ClusterScenario {
	geos := []dram.Geometry{
		{Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 14}, // 16 PEs
		{Channels: 3, RanksPerChannel: 1, BanksPerChip: 1, MramPerBank: 1 << 14}, // 24 PEs
	}
	geo := geos[rng.Intn(len(geos))]
	shapes := map[int][][]int{
		16: {{16}, {4, 4}, {2, 8}},
		24: {{24}, {8, 3}, {4, 6}},
	}
	opts := shapes[geo.NumPEs()]
	levels := core.Levels()
	return ClusterScenario{
		Geo:   geo,
		Shape: opts[rng.Intn(len(opts))],
		Hosts: 1 + rng.Intn(4),
		S:     8 * (1 + rng.Intn(3)),
		Lvl:   levels[rng.Intn(len(levels))],
		Typ:   elem.Types()[rng.Intn(4)],
		Op:    elem.Ops()[rng.Intn(6)],
	}
}

// mkCluster builds a functional or cost-only cluster of the scenario.
func (sc ClusterScenario) mkCluster(costOnly bool) (*core.Cluster, error) {
	comms := make([]*core.Comm, sc.Hosts)
	for h := range comms {
		var sys *dram.System
		var err error
		if costOnly {
			sys, err = dram.NewPhantomSystem(sc.Geo)
		} else {
			sys, err = dram.NewSystem(sc.Geo)
		}
		if err != nil {
			return nil, err
		}
		hc, err := core.NewHypercube(sys, sc.Shape)
		if err != nil {
			return nil, err
		}
		if costOnly {
			comms[h] = core.NewCostComm(hc, cost.DefaultParams())
		} else {
			comms[h] = core.NewComm(hc, cost.DefaultParams())
		}
	}
	return core.NewCluster(comms)
}

// Check runs every cluster primitive under the scenario, byte-compares
// the functional cluster against the reference model on global ranks,
// and requires the cost-only twin's breakdown to equal the functional
// one exactly on every call.
func (sc ClusterScenario) Check(rng *rand.Rand) error {
	dims := strings.Repeat("1", len(sc.Shape))
	fn, err := sc.mkCluster(false)
	if err != nil {
		return err
	}
	co, err := sc.mkCluster(true)
	if err != nil {
		return err
	}
	H, P := sc.Hosts, sc.Geo.NumPEs()
	G := H * P

	// ranks[h][j] is the PE holding global rank h*P+j.
	ranks := make([][]int, H)
	for h := range ranks {
		groups, err := fn.Host(h).Hypercube().Groups(dims)
		if err != nil {
			return err
		}
		ranks[h] = groups[0]
	}
	seed := func(off, n int) [][]byte {
		in := make([][]byte, G)
		for g := range in {
			in[g] = make([]byte, n)
			rng.Read(in[g])
			fn.Host(g/P).SetPEBuffer(ranks[g/P][g%P], off, in[g])
		}
		return in
	}
	// both runs d on the functional cluster and its payload-free twin on
	// the cost-only cluster and diffs the breakdowns.
	both := func(name string, d core.ClusterCollective) error {
		want, err := fn.Run(d)
		if err != nil {
			return fmt.Errorf("cluster %s: %w", name, err)
		}
		cd := d
		cd.Hosts = nil
		got, err := co.Run(cd)
		if err != nil {
			return fmt.Errorf("cost-only cluster %s: %w", name, err)
		}
		if want != got {
			return fmt.Errorf("cluster %s: cost-only breakdown %+v != functional %+v (%+v)", name, got, want, sc)
		}
		return nil
	}
	peAt := func(g, off, n int) []byte {
		return fn.Host(g/P).GetPEBuffer(ranks[g/P][g%P], off, n)
	}

	// AllReduce: m/P = S*H stays 8-byte aligned for the local leg.
	m := sc.S * G
	in := seed(0, m)
	if err := both("AllReduce", core.ClusterCollective{Collective: core.Collective{
		Prim: core.AllReduce, Dims: dims, Src: core.Span(0, m), Dst: core.At(2 * m),
		Elem: sc.Typ, Op: sc.Op, Level: sc.Lvl,
	}}); err != nil {
		return err
	}
	want := core.RefAllReduce(sc.Typ, sc.Op, in)
	for g := 0; g < G; g++ {
		if !bytes.Equal(peAt(g, 2*m, m), want[g]) {
			return fmt.Errorf("cluster AllReduce diverges at global rank %d (%+v)", g, sc)
		}
	}

	// ReduceScatter: G blocks of S per PE, block g lands on global rank g.
	in = seed(0, m)
	if err := both("ReduceScatter", core.ClusterCollective{Collective: core.Collective{
		Prim: core.ReduceScatter, Dims: dims, Src: core.Span(0, m), Dst: core.At(2 * m),
		Elem: sc.Typ, Op: sc.Op, Level: sc.Lvl,
	}}); err != nil {
		return err
	}
	wantRS := core.RefReduceScatter(sc.Typ, sc.Op, in, sc.S)
	for g := 0; g < G; g++ {
		if !bytes.Equal(peAt(g, 2*m, sc.S), wantRS[g]) {
			return fmt.Errorf("cluster ReduceScatter diverges at global rank %d (%+v)", g, sc)
		}
	}

	// AllGather: S per PE in, G*S concatenation out everywhere.
	in = seed(0, sc.S)
	if err := both("AllGather", core.ClusterCollective{Collective: core.Collective{
		Prim: core.AllGather, Dims: dims, Src: core.Span(0, sc.S), Dst: core.At(2 * m), Level: sc.Lvl,
	}}); err != nil {
		return err
	}
	wantAG := core.RefAllGather(in)
	for g := 0; g < G; g++ {
		if !bytes.Equal(peAt(g, 2*m, G*sc.S), wantAG[g]) {
			return fmt.Errorf("cluster AllGather diverges at global rank %d (%+v)", g, sc)
		}
	}

	// AlltoAll: block q of global rank p becomes block p of global rank q.
	in = seed(0, m)
	if err := both("AlltoAll", core.ClusterCollective{Collective: core.Collective{
		Prim: core.AlltoAll, Dims: dims, Src: core.Span(0, m), Dst: core.At(2 * m), Level: sc.Lvl,
	}}); err != nil {
		return err
	}
	wantAA := core.RefAlltoAll(in, sc.S)
	for g := 0; g < G; g++ {
		if !bytes.Equal(peAt(g, 2*m, m), wantAA[g]) {
			return fmt.Errorf("cluster AlltoAll diverges at global rank %d (%+v)", g, sc)
		}
	}

	// Broadcast from a random root host; the cost-only twin prices it
	// with a nil payload (size rides on Dst.Bytes).
	n := 8 * (1 + rng.Intn(25))
	payload := make([]byte, n)
	rng.Read(payload)
	if err := both("Broadcast", core.ClusterCollective{Collective: core.Collective{
		Prim: core.Broadcast, Dims: dims, Dst: core.Span(0, n), Level: sc.Lvl,
		Hosts: [][]byte{payload},
	}, Root: rng.Intn(H)}); err != nil {
		return err
	}
	for g := 0; g < G; g++ {
		if !bytes.Equal(peAt(g, 0, n), payload) {
			return fmt.Errorf("cluster Broadcast diverges at global rank %d (%+v)", g, sc)
		}
	}

	// Scatter: block g of the root's buffer lands on global rank g.
	buf := make([]byte, G*sc.S)
	rng.Read(buf)
	if err := both("Scatter", core.ClusterCollective{Collective: core.Collective{
		Prim: core.Scatter, Dims: dims, Dst: core.Span(0, sc.S), Level: sc.Lvl,
		Hosts: [][]byte{buf},
	}, Root: rng.Intn(H)}); err != nil {
		return err
	}
	for g := 0; g < G; g++ {
		if !bytes.Equal(peAt(g, 0, sc.S), buf[g*sc.S:(g+1)*sc.S]) {
			return fmt.Errorf("cluster Scatter diverges at global rank %d (%+v)", g, sc)
		}
	}

	// Gather and Reduce: rooted results come off the compiled plan.
	in = seed(0, m)
	rooted := func(name string, d core.ClusterCollective, want []byte) error {
		cp, err := fn.Compile(d)
		if err != nil {
			return fmt.Errorf("cluster %s: %w", name, err)
		}
		wantBD, err := cp.Run()
		if err != nil {
			return fmt.Errorf("cluster %s: %w", name, err)
		}
		if got := cp.Results(); !bytes.Equal(got, want) {
			return fmt.Errorf("cluster %s diverges from reference (%+v)", name, sc)
		}
		gotBD, err := co.Run(d)
		if err != nil {
			return fmt.Errorf("cost-only cluster %s: %w", name, err)
		}
		if wantBD != gotBD {
			return fmt.Errorf("cluster %s: cost-only breakdown %+v != functional %+v (%+v)", name, gotBD, wantBD, sc)
		}
		return nil
	}
	heads := make([][]byte, G)
	for g := range heads {
		heads[g] = in[g][:sc.S]
	}
	if err := rooted("Gather", core.ClusterCollective{Collective: core.Collective{
		Prim: core.Gather, Dims: dims, Src: core.Span(0, sc.S), Level: sc.Lvl,
	}, Root: rng.Intn(H)}, core.RefGather(heads)); err != nil {
		return err
	}
	if err := rooted("Reduce", core.ClusterCollective{Collective: core.Collective{
		Prim: core.Reduce, Dims: dims, Src: core.Span(0, m),
		Elem: sc.Typ, Op: sc.Op, Level: sc.Lvl,
	}, Root: rng.Intn(H)}, core.RefReduce(sc.Typ, sc.Op, in)); err != nil {
		return err
	}
	return nil
}
