package fuzz

import (
	"fmt"
	"math/rand"
	"reflect"

	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/serve"
	"repro/pidcomm"
)

// ServingScenario is one randomized online-serving configuration: a
// random tenant mix (models, arrival processes, rates, SLOs, overload
// budgets) under a scheduling policy drawn from the whole registry
// (WFQ, EDF, FIFO, lookahead) with a randomized candidate window, with
// optional tenant churn and fused submission, driven end-to-end through
// internal/serve.
//
// Check pins the serving invariants rather than byte equality: the run
// must replay bit-identically, resolve every submitted request (no
// future leaks), never start a request before its arrival, never
// reorder one tenant's hazard-chained requests, and return every arena
// to one coalesced free span after the final teardown — even when
// tenants churn mid-run and requests shed under overload.
type ServingScenario struct {
	Cfg serve.Config
}

// RandomServing draws a serving scenario. Rates are calibrated against
// the tenants' predicted request costs so the offered load lands in a
// drawn rho in [0.3, 1.6) — spanning easy, near-knee and overloaded
// operating points.
func RandomServing(rng *rand.Rand) (ServingScenario, error) {
	type machine struct {
		geo   dram.Geometry
		shape []int
	}
	machines := []machine{
		{dram.Geometry{Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14}, []int{8, 8}},  // 64 PEs
		{dram.Geometry{Channels: 2, RanksPerChannel: 1, BanksPerChip: 4, MramPerBank: 1 << 14}, []int{16, 4}}, // 64 PEs
		{dram.Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 13}, []int{4, 4}},  // 16 PEs
	}
	m := machines[rng.Intn(len(machines))]

	nTenants := 1 + rng.Intn(3)
	pols := pidcomm.SchedPolicies()
	cfg := serve.Config{
		Seed:       rng.Int63(),
		Policy:     pols[rng.Intn(len(pols))],
		Geometry:   m.geo,
		Shape:      m.shape,
		BytesPerPE: 256 << rng.Intn(2),
		Fused:      rng.Intn(4) == 0,
		Horizon:    1, // placeholder until rates are calibrated
	}
	if rng.Intn(2) == 0 {
		// Small windows keep the lookahead policy's O(window^2) scoring
		// cheap and still exercise partial-backlog reordering.
		cfg.Lookahead = 2 + rng.Intn(7)
	}
	if rng.Intn(2) == 0 {
		cfg.ChurnEvery = 5 + rng.Intn(20)
	}
	for i := 0; i < nTenants; i++ {
		sp := serve.TenantSpec{
			Name:     fmt.Sprintf("t%d", i),
			Model:    serve.Model(rng.Intn(3)),
			Arrivals: serve.ArrivalKind(rng.Intn(2)),
			Burst:    2 + rng.Intn(6),
			Rate:     1, // placeholder
			Weight:   float64(1 + rng.Intn(3)),
		}
		if rng.Intn(2) == 0 {
			sp.Deadline = cost.Seconds(0.001 * float64(1+rng.Intn(50)))
		}
		if rng.Intn(2) == 0 {
			sp.MaxPending = 2 + rng.Intn(8)
			sp.Shed = []pidcomm.ShedPolicy{pidcomm.ShedReject, pidcomm.ShedOldest}[rng.Intn(2)]
		}
		cfg.Tenants = append(cfg.Tenants, sp)
	}
	// Size the machine's MRAM for the arenas the driver will carve (4x
	// the aligned base payload per tenant, one spare).
	align := 4 * m.shape[0] * dram.BankBurstBytes
	base := cfg.BytesPerPE
	if r := base % align; r != 0 {
		base += align - r
	}
	cfg.Geometry.MramPerBank = (nTenants + 1) * 4 * base

	costs, err := serve.Calibrate(cfg)
	if err != nil {
		return ServingScenario{}, err
	}
	rho := 0.3 + 1.3*rng.Float64()
	total := 0.0
	for i := range cfg.Tenants {
		cfg.Tenants[i].Rate = rho / float64(nTenants) / float64(costs[i])
		total += cfg.Tenants[i].Rate
	}
	requests := 60 + rng.Intn(140)
	cfg.Horizon = cost.Seconds(float64(requests) / total)
	cfg.MaxRequests = 4 * requests
	return ServingScenario{Cfg: cfg}, nil
}

// Check runs the scenario twice and verifies the serving invariants.
func (sc ServingScenario) Check() error {
	res, err := serve.Run(sc.Cfg)
	if err != nil {
		return fmt.Errorf("serving: %v (config %+v)", err, sc.Cfg)
	}
	again, err := serve.Run(sc.Cfg)
	if err != nil {
		return fmt.Errorf("serving replay: %v", err)
	}
	if !reflect.DeepEqual(res.Requests, again.Requests) || res.Breakdown != again.Breakdown {
		return fmt.Errorf("serving: run is not deterministic under seed %d", sc.Cfg.Seed)
	}
	if res.Completed+res.Shed != res.Submitted {
		return fmt.Errorf("serving: future leak: %d completed + %d shed != %d submitted",
			res.Completed, res.Shed, res.Submitted)
	}
	frontier := make([]cost.Seconds, len(sc.Cfg.Tenants))
	for i, r := range res.Requests {
		if r.Shed {
			if r.Start != 0 || r.End != 0 {
				return fmt.Errorf("serving: shed request %d carries a window %+v", i, r)
			}
			continue
		}
		if r.Start < r.Arrival {
			return fmt.Errorf("serving: request %d ran at %v before its arrival %v", i, r.Start, r.Arrival)
		}
		if r.End <= r.Start {
			return fmt.Errorf("serving: request %d has an empty window [%v,%v]", i, r.Start, r.End)
		}
		if r.Start < frontier[r.Tenant] {
			return fmt.Errorf("serving: request %d violates tenant %d's hazard chain (%v < %v)",
				i, r.Tenant, r.Start, frontier[r.Tenant])
		}
		frontier[r.Tenant] = r.End
	}
	if len(res.FreeSpans) != 1 || res.FreeSpans[0].Base != 0 ||
		res.FreeSpans[0].Bytes != sc.Cfg.Geometry.MramPerBank {
		return fmt.Errorf("serving: allocator did not re-coalesce after teardown: %v (MRAM %d)",
			res.FreeSpans, sc.Cfg.Geometry.MramPerBank)
	}
	return nil
}
