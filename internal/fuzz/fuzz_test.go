package fuzz

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestFuzzSmoke runs a small, deterministic slice of the pidfuzz loop in
// process so CI catches reference-model divergences without the
// standalone binary. The Auto pseudo-level is in the draw pool, so the
// autotuner's dry-run, cache and level-skip paths are exercised too.
func TestFuzzSmoke(t *testing.T) {
	const scenarios = 24
	rng := rand.New(rand.NewSource(7))
	autoSeen := false
	for i := 0; i < scenarios; i++ {
		sc := Random(rng, true)
		if sc.Lvl == core.Auto {
			autoSeen = true
		}
		if err := sc.Check(rng); err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
	}
	if !autoSeen {
		// The fixed seed should draw Auto at least once; if a draw-pool
		// change broke that, pin one explicitly.
		sc := Random(rng, false)
		sc.Lvl = core.Auto
		if err := sc.Check(rng); err != nil {
			t.Fatalf("pinned Auto scenario: %v", err)
		}
	}
}

// TestServingFuzzSmoke runs a deterministic slice of randomized
// online-serving scenarios: random tenant mixes, arrival processes,
// deadlines, overload budgets and mid-run churn, checked for replay
// determinism, future leaks, hazard violations and allocator
// re-coalescing (see ServingScenario).
func TestServingFuzzSmoke(t *testing.T) {
	const scenarios = 12
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < scenarios; i++ {
		sc, err := RandomServing(rng)
		if err != nil {
			t.Fatalf("serving scenario %d: draw: %v", i, err)
		}
		if err := sc.Check(); err != nil {
			t.Fatalf("serving scenario %d: %v", i, err)
		}
	}
}

// TestClusterFuzzSmoke runs a deterministic slice of randomized cluster
// scenarios: hierarchical collectives over 1-4 hosts diffed against the
// reference model on global ranks, with a cost-only twin cluster whose
// breakdowns must match the functional ones bit-for-bit.
func TestClusterFuzzSmoke(t *testing.T) {
	const scenarios = 8
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < scenarios; i++ {
		sc := RandomCluster(rng)
		if err := sc.Check(rng); err != nil {
			t.Fatalf("cluster scenario %d: %v", i, err)
		}
	}
}
