// Package fuzz holds the randomized differential-testing core shared by
// cmd/pidfuzz (the long-running standalone binary) and the in-process
// smoke test that runs a small number of scenarios in CI: random system
// geometries, hypercube shapes, dimension selections, payload sizes,
// element types, reduction operators and optimization levels (including
// the Auto pseudo-level), every primitive run and compared against the
// independent reference model. Every scenario additionally compiles an
// AlltoAll→ReduceScatter chain through the schedule-fusion optimizer
// (the default) and diffs the resulting MRAM against an unfused
// execution, giving the peephole passes randomized coverage on every
// run.
package fuzz

import (
	"bytes"
	"fmt"
	"math/rand"

	_ "repro/internal/algo" // register the alternative collective lowerings
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// Scenario is one randomized differential-test configuration.
type Scenario struct {
	Geo   dram.Geometry
	Shape []int
	Dims  string
	S     int // block bytes
	Lvl   core.Level
	Typ   elem.Type
	Op    elem.Op
	// Workers is the ExecWorkers setting every comm in the scenario runs
	// at, so the fuzzer also differential-tests the parallel executor's
	// shard boundaries against the reference model (the worker count must
	// never change results).
	Workers int
	// Algo is the algorithm constraint of the scenario's AllReduce leg:
	// AlgoAuto, the reference, or one of the registered alternatives
	// (only drawn when the level and group size permit it), so the
	// alternative lowerings get randomized differential coverage too.
	Algo core.Algorithm
}

// Random draws a scenario. When includeAuto is set, the Auto pseudo-level
// is among the optimization-level choices, exercising the autotuner's
// dry-run/cache path on every primitive.
func Random(rng *rand.Rand, includeAuto bool) Scenario {
	geos := []dram.Geometry{
		{Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 14}, // 16 PEs
		{Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14}, // 64 PEs
		{Channels: 2, RanksPerChannel: 1, BanksPerChip: 4, MramPerBank: 1 << 14}, // 64 PEs
		{Channels: 3, RanksPerChannel: 1, BanksPerChip: 1, MramPerBank: 1 << 14}, // 24 PEs
	}
	geo := geos[rng.Intn(len(geos))]
	n := geo.NumPEs()

	// Random shape: factor n into 1-3 dimensions (power-of-two except
	// possibly last).
	var shape []int
	rem := n
	for len(shape) < 2 && rem > 1 {
		// Pick a power-of-two factor of rem.
		var opts []int
		for f := 2; f <= rem; f *= 2 {
			if rem%f == 0 {
				opts = append(opts, f)
			}
		}
		if len(opts) == 0 || rng.Intn(3) == 0 {
			break
		}
		f := opts[rng.Intn(len(opts))]
		shape = append(shape, f)
		rem /= f
	}
	shape = append(shape, rem) // last dim may be non-power-of-two
	if len(shape) == 1 && shape[0] == 1 {
		shape = []int{n}
	}

	// Random non-empty dims selection.
	dims := make([]byte, len(shape))
	any := false
	for i := range dims {
		if rng.Intn(2) == 0 {
			dims[i] = '0'
		} else {
			dims[i] = '1'
			any = true
		}
	}
	if !any {
		dims[rng.Intn(len(dims))] = '1'
	}

	levels := core.Levels()
	if includeAuto {
		levels = append(levels, core.Auto)
	}
	lvl := levels[rng.Intn(len(levels))]

	// Algorithm constraint for the AllReduce leg: the registered
	// alternatives implement the Baseline host path over multi-member
	// groups, so only draw them when the scenario can satisfy that
	// (explicit Baseline, or Auto where the search lands on it).
	groupSize := 1
	for i := range dims {
		if dims[i] == '1' {
			groupSize *= shape[i]
		}
	}
	algo := core.AlgoAuto
	if groupSize >= 2 && (lvl == core.Auto || core.EffectiveLevel(core.AllReduce, lvl) == core.Baseline) {
		opts := append(core.RegisteredAlgorithms(core.AllReduce), core.AlgoAuto)
		algo = opts[rng.Intn(len(opts))]
	}
	return Scenario{
		Geo:     geo,
		Shape:   shape,
		Dims:    string(dims),
		S:       8 * (1 + rng.Intn(4)),
		Lvl:     lvl,
		Typ:     elem.Types()[rng.Intn(4)],
		Op:      elem.Ops()[rng.Intn(6)],
		Workers: 1 + rng.Intn(4),
		Algo:    algo,
	}
}

// Check runs every primitive under the scenario and returns an error
// naming the first divergence from the reference model.
func (sc Scenario) Check(rng *rand.Rand) error {
	sys, err := dram.NewSystem(sc.Geo)
	if err != nil {
		return err
	}
	hc, err := core.NewHypercube(sys, sc.Shape)
	if err != nil {
		return err
	}
	mk := func() (*core.Comm, [][]byte, [][]int, int) {
		c := core.NewComm(hc, cost.DefaultParams())
		c.SetExecWorkers(sc.Workers)
		groups, err := hc.Groups(sc.Dims)
		if err != nil {
			panic(err)
		}
		n := len(groups[0])
		m := n * sc.S
		in := make([][]byte, sc.Geo.NumPEs())
		for pe := range in {
			in[pe] = make([]byte, m)
			rng.Read(in[pe])
			c.SetPEBuffer(pe, 0, in[pe])
		}
		return c, in, groups, m
	}
	sel := func(in [][]byte, grp []int) [][]byte {
		out := make([][]byte, len(grp))
		for i, pe := range grp {
			out[i] = in[pe]
		}
		return out
	}

	// AlltoAll.
	c, in, groups, m := mk()
	if _, err := c.AlltoAll(sc.Dims, 0, 2*m, m, sc.Lvl); err != nil {
		return fmt.Errorf("AlltoAll: %w", err)
	}
	for _, grp := range groups {
		want := core.RefAlltoAll(sel(in, grp), sc.S)
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, 2*m, m), want[j]) {
				return fmt.Errorf("AlltoAll diverges at PE %d (%+v)", pe, sc)
			}
		}
	}
	// ReduceScatter.
	c, in, groups, m = mk()
	if _, err := c.ReduceScatter(sc.Dims, 0, 2*m, m, sc.Typ, sc.Op, sc.Lvl); err != nil {
		return fmt.Errorf("ReduceScatter: %w", err)
	}
	for _, grp := range groups {
		want := core.RefReduceScatter(sc.Typ, sc.Op, sel(in, grp), sc.S)
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, 2*m, sc.S), want[j]) {
				return fmt.Errorf("ReduceScatter diverges at PE %d (%+v)", pe, sc)
			}
		}
	}
	// AllReduce — through the descriptor form so the scenario's algorithm
	// constraint applies (reference, ring, tree or Rabenseifner must all
	// match the reference model bytes).
	c, in, groups, m = mk()
	if _, err := c.Run(core.Collective{Prim: core.AllReduce, Dims: sc.Dims,
		Src: core.Span(0, m), Dst: core.At(2 * m), Elem: sc.Typ, Op: sc.Op,
		Level: sc.Lvl, Algorithm: sc.Algo}); err != nil {
		return fmt.Errorf("AllReduce(%v): %w", sc.Algo, err)
	}
	for _, grp := range groups {
		want := core.RefAllReduce(sc.Typ, sc.Op, sel(in, grp))
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, 2*m, m), want[j]) {
				return fmt.Errorf("AllReduce diverges at PE %d (%+v)", pe, sc)
			}
		}
	}
	// AllGather (input s per PE).
	c, in, groups, _ = mk()
	n := len(groups[0])
	if _, err := c.AllGather(sc.Dims, 0, m, sc.S, sc.Lvl); err != nil {
		return fmt.Errorf("AllGather: %w", err)
	}
	for _, grp := range groups {
		heads := make([][]byte, len(grp))
		for i, pe := range grp {
			heads[i] = in[pe][:sc.S]
		}
		want := core.RefAllGather(heads)
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, m, n*sc.S), want[j]) {
				return fmt.Errorf("AllGather diverges at PE %d (%+v)", pe, sc)
			}
		}
	}
	// In-place AlltoAll on the staged path (src == dst); with Auto the
	// streaming candidates are inapplicable and must be skipped.
	c, in, groups, m = mk()
	ipLvl := sc.Lvl
	if core.EffectiveLevel(core.AlltoAll, ipLvl) >= core.IM {
		ipLvl = core.Auto
	}
	if _, err := c.AlltoAll(sc.Dims, 0, 0, m, ipLvl); err != nil {
		return fmt.Errorf("in-place AlltoAll: %w", err)
	}
	for _, grp := range groups {
		want := core.RefAlltoAll(sel(in, grp), sc.S)
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, 0, m), want[j]) {
				return fmt.Errorf("in-place AlltoAll diverges at PE %d (%+v)", pe, sc)
			}
		}
	}
	// Gather + Reduce round trips (host-rooted).
	c, in, groups, m = mk()
	got, _, err := c.Gather(sc.Dims, 0, sc.S, sc.Lvl)
	if err != nil {
		return fmt.Errorf("Gather: %w", err)
	}
	for g, grp := range groups {
		heads := make([][]byte, len(grp))
		for i, pe := range grp {
			heads[i] = in[pe][:sc.S]
		}
		if !bytes.Equal(got[g], core.RefGather(heads)) {
			return fmt.Errorf("Gather diverges at group %d (%+v)", g, sc)
		}
	}
	red, _, err := c.Reduce(sc.Dims, 0, m, sc.Typ, sc.Op, sc.Lvl)
	if err != nil {
		return fmt.Errorf("Reduce: %w", err)
	}
	for g, grp := range groups {
		if !bytes.Equal(red[g], core.RefReduce(sc.Typ, sc.Op, sel(in, grp))) {
			return fmt.Errorf("Reduce diverges at group %d (%+v)", g, sc)
		}
	}

	// Fused-sequence differential: the AlltoAll→ReduceScatter chain
	// compiled through the fusion optimizer (the default) must leave
	// every PE's MRAM byte-identical to the same sequence compiled with
	// fusion off — randomized coverage of the peephole passes, including
	// the cross-collective rotate/unrotate cancellation the pair
	// triggers at the rotating levels.
	if err := sc.checkFusedSequence(hc, rng); err != nil {
		return err
	}
	return nil
}

// checkFusedSequence runs the fused-vs-unfused differential of Check on
// two fresh systems of the scenario's geometry with identical contents.
func (sc Scenario) checkFusedSequence(hc *core.Hypercube, rng *rand.Rand) error {
	groups, err := hc.Groups(sc.Dims)
	if err != nil {
		return err
	}
	n := len(groups[0])
	m := n * sc.S
	mkAt := func(fuse core.FuseLevel) (*core.Comm, error) {
		sys, err := dram.NewSystem(sc.Geo)
		if err != nil {
			return nil, err
		}
		h, err := core.NewHypercube(sys, sc.Shape)
		if err != nil {
			return nil, err
		}
		c := core.NewComm(h, cost.DefaultParams())
		c.SetExecWorkers(sc.Workers)
		c.SetFuse(fuse)
		return c, nil
	}
	fused, err := mkAt(core.FuseFull)
	if err != nil {
		return err
	}
	plain, err := mkAt(core.FuseOff)
	if err != nil {
		return err
	}
	span := 4*m + sc.S // A=[0,m) B=[2m,3m) C=[4m,4m+s)
	buf := make([]byte, span)
	for pe := 0; pe < sc.Geo.NumPEs(); pe++ {
		rng.Read(buf)
		fused.SetPEBuffer(pe, 0, buf)
		plain.SetPEBuffer(pe, 0, buf)
	}
	ds := []core.Collective{
		{Prim: core.AlltoAll, Dims: sc.Dims, Src: core.Span(0, m), Dst: core.At(2 * m), Level: sc.Lvl},
		{Prim: core.ReduceScatter, Dims: sc.Dims, Src: core.Span(2*m, m), Dst: core.At(4 * m),
			Elem: sc.Typ, Op: sc.Op, Level: sc.Lvl},
	}
	for _, pair := range []struct {
		c    *core.Comm
		name string
	}{{fused, "fused"}, {plain, "unfused"}} {
		cp, err := pair.c.CompileSequence(ds...)
		if err != nil {
			return fmt.Errorf("%s sequence: %w", pair.name, err)
		}
		if _, err := cp.Run(); err != nil {
			return fmt.Errorf("%s sequence run: %w", pair.name, err)
		}
	}
	for pe := 0; pe < sc.Geo.NumPEs(); pe++ {
		if !bytes.Equal(fused.GetPEBuffer(pe, 0, span), plain.GetPEBuffer(pe, 0, span)) {
			return fmt.Errorf("fused sequence diverges from unfused at PE %d (%+v)", pe, sc)
		}
	}
	return nil
}
