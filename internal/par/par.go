// Package par provides the fixed worker pool the functional backend
// shards schedule-step work across (see the "Parallel functional
// backend" chapter of the README).
//
// The pool is a process-wide set of GOMAXPROCS helper goroutines parked
// on an unbuffered channel, started lazily on first use. Do splits an
// index range [0, n) into at most `workers` contiguous shards and runs
// them via a Runner; the calling goroutine always participates, so a
// serial Do (workers <= 1) is a plain function call with no channel
// traffic, no goroutines and no allocation — the property the zero-alloc
// cached-replay path of internal/core relies on.
//
// Determinism contract: Do makes no promise about which shard runs on
// which goroutine or in which order shards complete. Callers must
// therefore only submit work whose shards are mutually independent
// (write-disjoint) and must merge any shard-local accumulations
// themselves, in shard order, after Do returns. Do establishes the
// happens-before edges: everything before Do is visible to every shard,
// and every shard's writes are visible after Do returns.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes one contiguous shard [lo, hi) of a Do call. Shard is
// the shard index in [0, shards); implementations typically use it to
// pick a per-shard scratch context.
type Runner interface {
	RunShard(shard, lo, hi int)
}

// job is one in-flight Do call. Helpers and the caller claim shards from
// next until exhausted; wg counts outstanding helper hand-offs so the
// job can be recycled only after every helper is done touching it.
type job struct {
	r      Runner
	n      int32
	shards int32
	next   atomic.Int32
	wg     sync.WaitGroup
}

var (
	jobPool  = sync.Pool{New: func() any { return new(job) }}
	poolOnce sync.Once
	workCh   chan *job
	poolSize int
)

// startPool launches the process-wide helpers. The pool size is fixed at
// the GOMAXPROCS value of first use: more helpers than schedulable
// threads cannot add parallelism, and Do degrades gracefully (the caller
// runs shards itself) when fewer helpers are free than requested.
func startPool() {
	poolSize = runtime.GOMAXPROCS(0)
	workCh = make(chan *job)
	for i := 0; i < poolSize; i++ {
		go func() {
			for j := range workCh {
				j.run()
				j.wg.Done()
			}
		}()
	}
}

// run claims and executes shards until none remain.
func (j *job) run() {
	n, shards, r := int(j.n), int(j.shards), j.r
	for {
		k := int(j.next.Add(1)) - 1
		if k >= shards {
			return
		}
		lo, hi := k*n/shards, (k+1)*n/shards
		if lo < hi {
			r.RunShard(k, lo, hi)
		}
	}
}

// PoolSize returns the number of helper goroutines (0 before first use).
func PoolSize() int { return poolSize }

// Do partitions [0, n) into min(workers, n) contiguous shards and runs
// r.RunShard on each, using up to workers-1 idle pool helpers plus the
// calling goroutine. It returns after every shard has completed.
//
// workers <= 1 (or n <= 1) runs the whole range inline on the caller —
// the exact serial path, with zero synchronization and zero allocation.
// Helpers are recruited with non-blocking sends: if the pool is busy
// (including nested Do calls issued from inside a shard), the caller
// simply runs more shards itself, so Do never deadlocks.
func Do(workers, n int, r Runner) {
	if n <= 0 {
		return
	}
	shards := workers
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		r.RunShard(0, 0, n)
		return
	}
	poolOnce.Do(startPool)
	j := jobPool.Get().(*job)
	j.r, j.n, j.shards = r, int32(n), int32(shards)
	j.next.Store(0)
	for i := 1; i < shards; i++ {
		// Add before the send so a helper's Done can never race the
		// final Wait; on a failed (pool-saturated) send the token is
		// returned immediately and recruitment stops.
		j.wg.Add(1)
		sent := false
		select {
		case workCh <- j:
			sent = true
		default:
		}
		if !sent {
			j.wg.Done()
			break
		}
	}
	j.run()
	j.wg.Wait()
	j.r = nil
	jobPool.Put(j)
}
