package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// sumRunner records per-shard coverage of [0, n).
type sumRunner struct {
	hits   []atomic.Int32
	shards []atomic.Int32 // shard index that claimed each element
}

func (r *sumRunner) RunShard(shard, lo, hi int) {
	for i := lo; i < hi; i++ {
		r.hits[i].Add(1)
		r.shards[i].Store(int32(shard + 1))
	}
}

func checkCoverage(t *testing.T, workers, n int) {
	t.Helper()
	r := &sumRunner{hits: make([]atomic.Int32, n), shards: make([]atomic.Int32, n)}
	Do(workers, n, r)
	for i := range r.hits {
		if got := r.hits[i].Load(); got != 1 {
			t.Fatalf("workers=%d n=%d: element %d visited %d times", workers, n, i, got)
		}
	}
	// Shards must be contiguous and in index order.
	last := int32(0)
	for i := range r.shards {
		s := r.shards[i].Load()
		if s < last {
			t.Fatalf("workers=%d n=%d: shard order not monotone at %d", workers, n, i)
		}
		last = s
	}
}

func TestDoCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{1, 2, 7, 64, 1000} {
			checkCoverage(t, workers, n)
		}
	}
}

func TestDoZeroOrNegativeN(t *testing.T) {
	r := &sumRunner{}
	Do(4, 0, r)  // must not call RunShard
	Do(4, -3, r) // ditto
}

func TestDoSerialRunsInline(t *testing.T) {
	// workers <= 1 must run on the calling goroutine with no pool use.
	var ran bool
	Do(1, 100, runnerFunc(func(shard, lo, hi int) {
		if shard != 0 || lo != 0 || hi != 100 {
			t.Fatalf("inline shard (%d,%d,%d), want (0,0,100)", shard, lo, hi)
		}
		ran = true
	}))
	if !ran {
		t.Fatal("inline runner did not run")
	}
}

type runnerFunc func(shard, lo, hi int)

func (f runnerFunc) RunShard(shard, lo, hi int) { f(shard, lo, hi) }

// Nested Do from inside a shard must not deadlock: inner calls recruit
// only idle helpers and otherwise run inline on the (busy) worker.
func TestNestedDoDoesNotDeadlock(t *testing.T) {
	var total atomic.Int64
	Do(runtime.GOMAXPROCS(0)+2, 16, runnerFunc(func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			Do(4, 8, runnerFunc(func(_, lo2, hi2 int) {
				total.Add(int64(hi2 - lo2))
			}))
		}
	}))
	if got := total.Load(); got != 16*8 {
		t.Fatalf("nested Do covered %d elements, want %d", got, 16*8)
	}
}

// Repeated Do calls recycle job descriptors; run many rounds under -race
// to shake out reuse bugs.
func TestDoStressReuse(t *testing.T) {
	for round := 0; round < 200; round++ {
		var sum atomic.Int64
		Do(4, 37, runnerFunc(func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(int64(i))
			}
		}))
		if got := sum.Load(); got != 37*36/2 {
			t.Fatalf("round %d: sum %d, want %d", round, got, 37*36/2)
		}
	}
}

func TestSerialDoDoesNotAllocate(t *testing.T) {
	r := runnerFunc(func(_, _, _ int) {})
	if avg := testing.AllocsPerRun(100, func() { Do(1, 1000, r) }); avg > 0 {
		t.Fatalf("serial Do allocates %.1f times per call", avg)
	}
}
