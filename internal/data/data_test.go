package data

import (
	"testing"
	"testing/quick"
)

func TestRMATBasicProperties(t *testing.T) {
	g := RMAT(1024, 4096, 1)
	if g.V != 1024 {
		t.Errorf("V = %d", g.V)
	}
	if g.NumEdges() != 4096 {
		t.Errorf("E = %d", g.NumEdges())
	}
	if int(g.RowPtr[g.V]) != g.NumEdges() {
		t.Error("CSR rowptr does not cover all edges")
	}
	for v := 0; v < g.V; v++ {
		prev := int32(-1)
		for _, w := range g.Neighbors(v) {
			if w < 0 || int(w) >= g.V {
				t.Fatalf("edge target %d out of range", w)
			}
			if w <= prev {
				t.Fatalf("adjacency of %d not sorted/deduped", v)
			}
			prev = w
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(256, 1024, 7)
	b := RMAT(256, 1024, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			t.Fatal("nondeterministic edges")
		}
	}
	c := RMAT(256, 1024, 8)
	same := true
	for i := range a.Col {
		if a.Col[i] != c.Col[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical graphs")
	}
}

func TestRMATIsSkewed(t *testing.T) {
	g := RMAT(4096, 1<<15, 3)
	u := Uniform(4096, 1<<15, 3)
	maxDeg := func(g *Graph) int {
		m := 0
		for v := 0; v < g.V; v++ {
			if d := g.OutDegree(v); d > m {
				m = d
			}
		}
		return m
	}
	if maxDeg(g) <= 2*maxDeg(u) {
		t.Errorf("RMAT max degree %d not much larger than uniform %d", maxDeg(g), maxDeg(u))
	}
}

func TestRMATRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RMAT(1000, 100, 1)
}

func TestUndirectedIsSymmetric(t *testing.T) {
	g := Undirected(RMAT(512, 2048, 5))
	adj := make(map[[2]int32]bool)
	for v := 0; v < g.V; v++ {
		for _, w := range g.Neighbors(v) {
			adj[[2]int32{int32(v), w}] = true
		}
	}
	for k := range adj {
		if !adj[[2]int32{k[1], k[0]}] {
			t.Fatalf("edge %v has no mirror", k)
		}
	}
}

func TestGraphByName(t *testing.T) {
	for _, name := range []string{"LJ", "LG"} {
		g := GraphByName(name)
		if g.V == 0 || g.NumEdges() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	lj, lg := GraphByName("LJ"), GraphByName("LG")
	if lj.V <= lg.V {
		t.Error("LJ should be larger than LG")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown graph name accepted")
		}
	}()
	GraphByName("nope")
}

func TestGNNByName(t *testing.T) {
	pm, rd := GNNByName("PM"), GNNByName("RD")
	if pm.F >= rd.F {
		t.Error("RD should have wider features than PM")
	}
	densPM := float64(pm.Graph.NumEdges()) / float64(pm.Graph.V)
	densRD := float64(rd.Graph.NumEdges()) / float64(rd.Graph.V)
	if densRD <= densPM {
		t.Error("RD should be denser than PM")
	}
}

func TestFeaturesDeterministicBounded(t *testing.T) {
	a := Features(64, 16, 9)
	b := Features(64, 16, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic features")
		}
		if a[i] < -3 || a[i] > 3 {
			t.Fatalf("feature %d out of bounds", a[i])
		}
	}
}

func TestClicksShapeAndSkew(t *testing.T) {
	log := Clicks(8, 4096, 1024, 11)
	if len(log.Indices) != 8*1024 {
		t.Fatalf("indices len %d", len(log.Indices))
	}
	counts := make(map[int32]int)
	for _, ix := range log.Indices {
		if ix < 0 || int(ix) >= 4096 {
			t.Fatalf("index %d out of range", ix)
		}
		counts[ix]++
	}
	// Zipf: the most popular row should appear far above the mean.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(len(log.Indices)) / float64(len(counts))
	if float64(max) < 4*mean {
		t.Errorf("click skew too flat: max %d vs mean %.1f", max, mean)
	}
}

func TestClickIndexAccessor(t *testing.T) {
	log := Clicks(4, 128, 16, 2)
	f := func(s, tb uint8) bool {
		sample := int(s) % 16
		table := int(tb) % 4
		return log.Index(sample, table) == log.Indices[sample*4+table]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
