// Package data provides deterministic synthetic datasets standing in for
// the paper's inputs (Table III): RMAT social graphs for LiveJournal (LJ)
// and Gowalla (LG), GNN inputs for PubMed (PM) and Reddit (RD), and a
// Criteo-like categorical click log for DLRM. Generators preserve the
// structural properties that drive communication volume (degree skew,
// density, dimensionality) at simulator-friendly scale; EXPERIMENTS.md
// records the scale mapping.
package data

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a directed graph in CSR form. Vertex IDs are dense [0, V).
type Graph struct {
	V      int
	RowPtr []int32 // len V+1
	Col    []int32 // len E
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Col) }

// OutDegree returns vertex v's out-degree.
func (g *Graph) OutDegree(v int) int { return int(g.RowPtr[v+1] - g.RowPtr[v]) }

// Neighbors returns vertex v's out-neighbor slice (shared storage).
func (g *Graph) Neighbors(v int) []int32 {
	return g.Col[g.RowPtr[v]:g.RowPtr[v+1]]
}

// RMAT generates a scale-free graph with the classic R-MAT recursive
// partitioning (a=0.57, b=0.19, c=0.19, d=0.05 — the Graph500 skew that
// social networks like LiveJournal exhibit). Self-loops are kept,
// duplicate edges removed, and adjacency lists sorted.
func RMAT(v, e int, seed int64) *Graph {
	if v <= 0 || v&(v-1) != 0 {
		panic(fmt.Sprintf("data: RMAT vertex count %d must be a positive power of two", v))
	}
	rng := rand.New(rand.NewSource(seed))
	type edge struct{ u, w int32 }
	seen := make(map[[2]int32]bool, e)
	edges := make([]edge, 0, e)
	for len(edges) < e {
		lo, hi := 0, v
		loC, hiC := 0, v
		for hi-lo > 1 {
			r := rng.Float64()
			switch {
			case r < 0.57: // a: top-left
				hi = (lo + hi) / 2
				hiC = (loC + hiC) / 2
			case r < 0.76: // b: top-right
				hi = (lo + hi) / 2
				loC = (loC + hiC) / 2
			case r < 0.95: // c: bottom-left
				lo = (lo + hi) / 2
				hiC = (loC + hiC) / 2
			default: // d: bottom-right
				lo = (lo + hi) / 2
				loC = (loC + hiC) / 2
			}
		}
		k := [2]int32{int32(lo), int32(loC)}
		if !seen[k] {
			seen[k] = true
			edges = append(edges, edge{k[0], k[1]})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].w < edges[j].w
	})
	g := &Graph{V: v, RowPtr: make([]int32, v+1), Col: make([]int32, len(edges))}
	for i, ed := range edges {
		g.RowPtr[ed.u+1]++
		g.Col[i] = ed.w
	}
	for i := 0; i < v; i++ {
		g.RowPtr[i+1] += g.RowPtr[i]
	}
	return g
}

// Uniform generates an Erdos-Renyi-style graph with e random edges.
func Uniform(v, e int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	type edge struct{ u, w int32 }
	seen := make(map[[2]int32]bool, e)
	edges := make([]edge, 0, e)
	for len(edges) < e {
		k := [2]int32{int32(rng.Intn(v)), int32(rng.Intn(v))}
		if !seen[k] {
			seen[k] = true
			edges = append(edges, edge{k[0], k[1]})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].w < edges[j].w
	})
	g := &Graph{V: v, RowPtr: make([]int32, v+1), Col: make([]int32, len(edges))}
	for i, ed := range edges {
		g.RowPtr[ed.u+1]++
		g.Col[i] = ed.w
	}
	for i := 0; i < v; i++ {
		g.RowPtr[i+1] += g.RowPtr[i]
	}
	return g
}

// Undirected returns the graph with every edge mirrored (the CC
// preprocessing of § VII-D), deduplicated.
func Undirected(g *Graph) *Graph {
	seen := make(map[[2]int32]bool, 2*g.NumEdges())
	type edge struct{ u, w int32 }
	var edges []edge
	add := func(u, w int32) {
		k := [2]int32{u, w}
		if !seen[k] {
			seen[k] = true
			edges = append(edges, edge{u, w})
		}
	}
	for u := 0; u < g.V; u++ {
		for _, w := range g.Neighbors(u) {
			add(int32(u), w)
			add(w, int32(u))
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].w < edges[j].w
	})
	out := &Graph{V: g.V, RowPtr: make([]int32, g.V+1), Col: make([]int32, len(edges))}
	for i, ed := range edges {
		out.RowPtr[ed.u+1]++
		out.Col[i] = ed.w
	}
	for i := 0; i < g.V; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// GraphByName builds the named benchmark graph at reproduction scale:
// "LJ" (LiveJournal-like, large skewed), "LG" (Gowalla-like, smaller).
func GraphByName(name string) *Graph {
	switch name {
	case "LJ":
		return RMAT(1<<15, 1<<18, 1001)
	case "LG":
		return RMAT(1<<13, 1<<15, 1002)
	default:
		panic(fmt.Sprintf("data: unknown graph %q", name))
	}
}

// Features generates a dense V x F int32 feature matrix with small values
// (bounded so several GNN layers stay within int32 without UB; wraparound
// is well-defined anyway).
func Features(v, f int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, v*f)
	for i := range out {
		out[i] = int32(rng.Intn(7)) - 3
	}
	return out
}

// GNNInput bundles a graph and features for the GNN benchmarks.
type GNNInput struct {
	Name  string
	Graph *Graph
	F     int // feature width
}

// GNNByName builds "PM" (PubMed-like: small, sparse) or "RD"
// (Reddit-like: denser, wider) at reproduction scale.
func GNNByName(name string) GNNInput {
	switch name {
	case "PM":
		return GNNInput{Name: name, Graph: RMAT(1<<12, 1<<14, 2001), F: 256}
	case "RD":
		return GNNInput{Name: name, Graph: RMAT(1<<13, 1<<17, 2002), F: 320}
	default:
		panic(fmt.Sprintf("data: unknown GNN input %q", name))
	}
}

// ClickLog is a Criteo-like categorical log: for each sample, one row
// index per embedding table, with a Zipf-like popularity skew.
type ClickLog struct {
	Tables  int
	Rows    int // rows per table
	Batch   int
	Indices []int32 // Batch x Tables, row-major
}

// Clicks generates a click log with zipfian row popularity (s=1.07, like
// production recommendation traffic).
func Clicks(tables, rows, batch int, seed int64) *ClickLog {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.07, 1, uint64(rows-1))
	log := &ClickLog{Tables: tables, Rows: rows, Batch: batch, Indices: make([]int32, batch*tables)}
	for i := range log.Indices {
		log.Indices[i] = int32(z.Uint64())
	}
	return log
}

// Index returns the row index for (sample, table).
func (c *ClickLog) Index(sample, table int) int32 {
	return c.Indices[sample*c.Tables+table]
}
