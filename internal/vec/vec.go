// Package vec models the host CPU's 512-bit vector unit.
//
// PID-Comm's in-register and cross-domain modulation are register-level
// byte permutations executed with AVX-512 instructions on the real system
// (§ VI-B cites _mm512_rol_epi64 and friends). This package performs the
// identical permutations on real bytes — so collective results are
// bit-exact — and counts instructions so the cost model can charge them.
//
// A Reg is exactly one DDR4 burst (64 bytes), which is also the unit PID-Comm
// streams between the host and an entangled group of 8 banks.
package vec

import "fmt"

// RegBytes is the register width in bytes (AVX-512 / one DDR4 burst).
const RegBytes = 64

// Lanes is the number of 64-bit lanes in a register; it equals the number
// of banks (PEs) in an entangled group, which is why one register holds one
// element from each PE of a group.
const Lanes = 8

// LaneBytes is the width of one 64-bit lane.
const LaneBytes = 8

// Reg is a 512-bit vector register.
type Reg [RegBytes]byte

// Unit is a vector execution unit with instruction accounting. The zero
// value is ready to use. Callers read Ops() to charge the cost model.
type Unit struct {
	ops int64 // retired vector instructions
}

// Ops returns the number of vector instructions retired since ResetOps.
func (u *Unit) Ops() int64 { return u.ops }

// ResetOps zeroes the instruction counter.
func (u *Unit) ResetOps() { u.ops = 0 }

func (u *Unit) retire(n int64) { u.ops += n }

// Load fills a register from src (len >= RegBytes). One vector load.
func (u *Unit) Load(src []byte) Reg {
	var r Reg
	copy(r[:], src[:RegBytes])
	u.retire(1)
	return r
}

// Store writes the register to dst (len >= RegBytes). One vector store.
func (u *Unit) Store(dst []byte, r Reg) {
	copy(dst[:RegBytes], r[:])
	u.retire(1)
}

// RotBytes rotates the whole register left by n bytes (n may be negative
// or larger than RegBytes). One shuffle instruction.
func (u *Unit) RotBytes(r Reg, n int) Reg {
	n = mod(n, RegBytes)
	var out Reg
	for i := 0; i < RegBytes; i++ {
		out[(i+n)%RegBytes] = r[i]
	}
	u.retire(1)
	return out
}

// RotBytesWithin rotates bytes left by n within each consecutive block of
// blockBytes bytes. It implements lane rotation for communication groups
// smaller than an entangled group (Figure 9: a group of 4 PEs occupies half
// a burst, so rotation must stay within the 32-byte half). blockBytes must
// divide RegBytes. One shuffle instruction.
func (u *Unit) RotBytesWithin(r Reg, blockBytes, n int) Reg {
	if blockBytes <= 0 || RegBytes%blockBytes != 0 {
		panic(fmt.Sprintf("vec: blockBytes %d does not divide %d", blockBytes, RegBytes))
	}
	n = mod(n, blockBytes)
	var out Reg
	for base := 0; base < RegBytes; base += blockBytes {
		for i := 0; i < blockBytes; i++ {
			out[base+(i+n)%blockBytes] = r[base+i]
		}
	}
	u.retire(1)
	return out
}

// RotLanes rotates the 8 64-bit lanes left by n lanes. Used for host-domain
// (post-domain-transfer) word-level shifts in in-register modulation.
// One permute instruction.
func (u *Unit) RotLanes(r Reg, n int) Reg {
	return u.RotBytes(r, n*LaneBytes) // same shuffle, different granularity
}

// RotBanks is the fused byte-level shift of cross-domain modulation
// (§ V-A3). In the PIM byte domain, byte i of a burst belongs to bank i%8,
// so an 8-byte element of bank k occupies byte k of every aligned 8-byte
// word. Rotating each 8-byte word left by rot bytes therefore moves every
// element intact from bank k to bank (k+rot)%g within its sub-group of g
// banks, with no domain transfer. It is exactly what _mm512_rol_epi64
// performs on real hardware; it equals DT -> RotLanesWithin(g, rot) -> DT
// but costs a single instruction. g must divide Lanes.
func (u *Unit) RotBanks(r Reg, g, rot int) Reg {
	if g <= 0 || Lanes%g != 0 {
		panic(fmt.Sprintf("vec: bank group %d does not divide %d", g, Lanes))
	}
	return u.RotBytesWithin(r, g, rot)
}

// RotLanesWithin rotates lanes left by n within consecutive groups of
// groupLanes lanes. groupLanes must divide Lanes.
func (u *Unit) RotLanesWithin(r Reg, groupLanes, n int) Reg {
	if groupLanes <= 0 || Lanes%groupLanes != 0 {
		panic(fmt.Sprintf("vec: groupLanes %d does not divide %d", groupLanes, Lanes))
	}
	return u.RotBytesWithin(r, groupLanes*LaneBytes, n*LaneBytes)
}

// Transpose8x8 transposes the register seen as an 8x8 byte matrix:
// out[8*k+w] = in[8*w+k]. This is exactly one burst's domain transfer
// (§ II-B): it converts between host byte order and PIM byte order.
// It is an involution. Modeled as a short shuffle sequence (3 instructions,
// matching a log2(8)-step in-register transpose network).
func (u *Unit) Transpose8x8(r Reg) Reg {
	var out Reg
	for w := 0; w < 8; w++ {
		for k := 0; k < 8; k++ {
			out[8*k+w] = r[8*w+k]
		}
	}
	u.retire(3)
	return out
}

// Lane returns lane i as a byte slice view of a copy (8 bytes).
func (r Reg) Lane(i int) []byte {
	if i < 0 || i >= Lanes {
		panic(fmt.Sprintf("vec: lane %d out of range", i))
	}
	out := make([]byte, LaneBytes)
	copy(out, r[i*LaneBytes:(i+1)*LaneBytes])
	return out
}

// SetLane overwrites lane i with the first 8 bytes of b.
func (r *Reg) SetLane(i int, b []byte) {
	if i < 0 || i >= Lanes {
		panic(fmt.Sprintf("vec: lane %d out of range", i))
	}
	copy(r[i*LaneBytes:(i+1)*LaneBytes], b[:LaneBytes])
}

// BroadcastLane returns a register with every lane equal to lane i of r.
// One broadcast instruction.
func (u *Unit) BroadcastLane(r Reg, i int) Reg {
	lane := r.Lane(i)
	var out Reg
	for l := 0; l < Lanes; l++ {
		copy(out[l*LaneBytes:], lane)
	}
	u.retire(1)
	return out
}

func mod(n, m int) int {
	n %= m
	if n < 0 {
		n += m
	}
	return n
}
