package vec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/elem"
)

func seqReg() Reg {
	var r Reg
	for i := range r {
		r[i] = byte(i)
	}
	return r
}

func TestLoadStoreRoundTrip(t *testing.T) {
	var u Unit
	src := make([]byte, RegBytes)
	for i := range src {
		src[i] = byte(200 - i)
	}
	r := u.Load(src)
	dst := make([]byte, RegBytes)
	u.Store(dst, r)
	if !bytes.Equal(src, dst) {
		t.Fatal("load/store round trip mismatch")
	}
	if u.Ops() != 2 {
		t.Errorf("Ops() = %d, want 2", u.Ops())
	}
}

func TestRotBytesBasic(t *testing.T) {
	var u Unit
	r := seqReg()
	out := u.RotBytes(r, 1)
	if out[1] != 0 || out[0] != 63 {
		t.Errorf("RotBytes(1): out[1]=%d out[0]=%d", out[1], out[0])
	}
}

func TestRotBytesNegativeAndWrap(t *testing.T) {
	var u Unit
	r := seqReg()
	if u.RotBytes(r, -1) != u.RotBytes(r, 63) {
		t.Error("RotBytes(-1) != RotBytes(63)")
	}
	if u.RotBytes(r, 64) != r {
		t.Error("RotBytes(64) should be identity")
	}
	if u.RotBytes(r, 0) != r {
		t.Error("RotBytes(0) should be identity")
	}
}

func TestRotBytesComposition(t *testing.T) {
	var u Unit
	r := seqReg()
	a := u.RotBytes(u.RotBytes(r, 5), 7)
	b := u.RotBytes(r, 12)
	if a != b {
		t.Error("rotation composition failed")
	}
}

func TestRotBytesWithinHalves(t *testing.T) {
	var u Unit
	r := seqReg()
	out := u.RotBytesWithin(r, 32, 8)
	// Byte 0 moves to position 8; byte 31 wraps to position 7 within block 0.
	if out[8] != 0 {
		t.Errorf("out[8] = %d, want 0", out[8])
	}
	if out[7] != 31 {
		t.Errorf("out[7] = %d, want 31", out[7])
	}
	// Second block independent: byte 32 moves to position 40.
	if out[40] != 32 {
		t.Errorf("out[40] = %d, want 32", out[40])
	}
}

func TestRotBytesWithinFullBlockEqualsRotBytes(t *testing.T) {
	var u Unit
	r := seqReg()
	if u.RotBytesWithin(r, RegBytes, 13) != u.RotBytes(r, 13) {
		t.Error("RotBytesWithin(64, n) != RotBytes(n)")
	}
}

func TestRotBytesWithinBadBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var u Unit
	u.RotBytesWithin(seqReg(), 7, 1)
}

func TestRotLanesMovesWholeElements(t *testing.T) {
	var u Unit
	r := seqReg()
	out := u.RotLanes(r, 1)
	// Lane 0 (bytes 0..7) should now be at lane 1.
	if !bytes.Equal(out.Lane(1), r.Lane(0)) {
		t.Error("RotLanes(1) did not move lane 0 to lane 1")
	}
	if !bytes.Equal(out.Lane(0), r.Lane(7)) {
		t.Error("RotLanes(1) did not wrap lane 7 to lane 0")
	}
}

func TestRotLanesWithinSubGroups(t *testing.T) {
	var u Unit
	r := seqReg()
	out := u.RotLanesWithin(r, 4, 1)
	if !bytes.Equal(out.Lane(1), r.Lane(0)) || !bytes.Equal(out.Lane(0), r.Lane(3)) {
		t.Error("first sub-group rotation wrong")
	}
	if !bytes.Equal(out.Lane(5), r.Lane(4)) || !bytes.Equal(out.Lane(4), r.Lane(7)) {
		t.Error("second sub-group rotation wrong")
	}
}

func TestTranspose8x8IsInvolution(t *testing.T) {
	var u Unit
	r := seqReg()
	if u.Transpose8x8(u.Transpose8x8(r)) != r {
		t.Error("transpose twice != identity")
	}
}

func TestTranspose8x8Mapping(t *testing.T) {
	var u Unit
	r := seqReg()
	out := u.Transpose8x8(r)
	// in[8*w+k] -> out[8*k+w]: byte at word 2, pos 3 (=19) goes to 8*3+2=26.
	if out[26] != 19 {
		t.Errorf("out[26] = %d, want 19", out[26])
	}
}

// The cross-domain modulation identity (§ V-A3): the fused PIM-domain
// byte shift equals DT -> lane-rotate -> DT, for full entangled groups and
// for sub-groups.
func TestCrossDomainModulationIdentity(t *testing.T) {
	var u Unit
	rng := rand.New(rand.NewSource(7))
	for _, g := range []int{2, 4, 8} {
		for trial := 0; trial < 50; trial++ {
			var r Reg
			rng.Read(r[:])
			rot := rng.Intn(2*g) - g
			fused := u.RotBanks(r, g, rot)
			viaDT := u.Transpose8x8(u.RotLanesWithin(u.Transpose8x8(r), g, rot))
			if fused != viaDT {
				t.Fatalf("g %d trial %d rot %d: fused != via-DT", g, trial, rot)
			}
		}
	}
}

func TestRotBanksMovesElementIntact(t *testing.T) {
	var u Unit
	// Put a recognizable element in bank 2: in PIM domain that is byte 2 of
	// every aligned 8-byte word.
	var r Reg
	for w := 0; w < 8; w++ {
		r[8*w+2] = byte(0xA0 + w)
	}
	out := u.RotBanks(r, 8, 3) // bank 2 -> bank 5
	for w := 0; w < 8; w++ {
		if out[8*w+5] != byte(0xA0+w) {
			t.Fatalf("word %d: bank 5 byte = %#x, want %#x", w, out[8*w+5], 0xA0+w)
		}
	}
}

// Property-based: RotBytes preserves multiset of bytes and is a bijection.
func TestRotBytesIsPermutation(t *testing.T) {
	var u Unit
	f := func(seed int64, n int) bool {
		rng := rand.New(rand.NewSource(seed))
		var r Reg
		rng.Read(r[:])
		out := u.RotBytes(r, n%200)
		var cin, cout [256]int
		for i := 0; i < RegBytes; i++ {
			cin[r[i]]++
			cout[out[i]]++
		}
		return cin == cout
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLaneSetLane(t *testing.T) {
	var r Reg
	b := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	r.SetLane(3, b)
	if !bytes.Equal(r.Lane(3), b) {
		t.Error("SetLane/Lane mismatch")
	}
	if r.Lane(2)[0] != 0 {
		t.Error("SetLane touched neighboring lane")
	}
}

func TestLaneBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var r Reg
	r.Lane(8)
}

func TestBroadcastLane(t *testing.T) {
	var u Unit
	r := seqReg()
	out := u.BroadcastLane(r, 2)
	for l := 0; l < Lanes; l++ {
		if !bytes.Equal(out.Lane(l), r.Lane(2)) {
			t.Fatalf("lane %d not broadcast", l)
		}
	}
}

func TestReduceSumI32(t *testing.T) {
	var u Unit
	var a, b Reg
	elem.Fill(elem.I32, a[:], 100)
	elem.Fill(elem.I32, b[:], 23)
	out := u.Reduce(elem.I32, elem.Sum, a, b)
	for off := 0; off < RegBytes; off += 4 {
		if got := elem.Load(elem.I32, out[:], off); got != 123 {
			t.Fatalf("sum at %d = %d, want 123", off, got)
		}
	}
}

func TestReduceMinSigned(t *testing.T) {
	var u Unit
	var a, b Reg
	elem.Fill(elem.I16, a[:], -5)
	elem.Fill(elem.I16, b[:], 3)
	out := u.Reduce(elem.I16, elem.Min, a, b)
	if got := elem.Load(elem.I16, out[:], 0); got != -5 {
		t.Fatalf("min = %d, want -5", got)
	}
}

func TestReduceWrapsAtWidth(t *testing.T) {
	var u Unit
	var a, b Reg
	elem.Fill(elem.I8, a[:], 127)
	elem.Fill(elem.I8, b[:], 1)
	out := u.Reduce(elem.I8, elem.Sum, a, b)
	if got := elem.Load(elem.I8, out[:], 0); got != -128 {
		t.Fatalf("I8 wrap: got %d, want -128", got)
	}
}

func TestFillIdentityNeutral(t *testing.T) {
	var u Unit
	for _, typ := range elem.Types() {
		for _, op := range elem.Ops() {
			id := u.FillIdentity(typ, op)
			var x Reg
			rng := rand.New(rand.NewSource(int64(typ)*10 + int64(op)))
			rng.Read(x[:])
			got := u.Reduce(typ, op, id, x)
			if got != x {
				t.Errorf("%v/%v: identity not neutral", typ, op)
			}
		}
	}
}

func TestOpsAccounting(t *testing.T) {
	var u Unit
	u.RotBytes(Reg{}, 1)
	u.Transpose8x8(Reg{})
	u.Reduce(elem.I64, elem.Sum, Reg{}, Reg{})
	if u.Ops() != 1+3+1 {
		t.Errorf("Ops() = %d, want 5", u.Ops())
	}
	u.ResetOps()
	if u.Ops() != 0 {
		t.Error("ResetOps failed")
	}
}
