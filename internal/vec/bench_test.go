package vec

import (
	"testing"

	"repro/internal/elem"
)

// Micro-benchmarks of the simulated vector unit: these measure the
// simulator's wall-clock cost per operation (not modeled time), which
// bounds how fast the streaming engine can run large payloads.

func BenchmarkRotBanks(b *testing.B) {
	var u Unit
	r := seqReg()
	b.SetBytes(RegBytes)
	for i := 0; i < b.N; i++ {
		r = u.RotBanks(r, 8, 3)
	}
	sinkReg = r
}

func BenchmarkTranspose8x8(b *testing.B) {
	var u Unit
	r := seqReg()
	b.SetBytes(RegBytes)
	for i := 0; i < b.N; i++ {
		r = u.Transpose8x8(r)
	}
	sinkReg = r
}

func BenchmarkReduceI32Sum(b *testing.B) {
	var u Unit
	var x, y Reg
	elem.Fill(elem.I32, x[:], 3)
	elem.Fill(elem.I32, y[:], 4)
	b.SetBytes(RegBytes)
	for i := 0; i < b.N; i++ {
		x = u.Reduce(elem.I32, elem.Sum, x, y)
	}
	sinkReg = x
}

var sinkReg Reg
