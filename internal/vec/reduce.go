package vec

import "repro/internal/elem"

// Reduce performs a vertical (lane-parallel) elementwise reduction of two
// registers: out = op(a, b) per element of type t. This is the single-SIMD-
// instruction vertical reduction that in-register modulation relies on
// (§ V-B2): elements to be combined are placed in different registers but
// identical slots, so one instruction reduces a whole burst.
func (u *Unit) Reduce(t elem.Type, op elem.Op, a, b Reg) Reg {
	var out Reg
	sz := t.Size()
	for off := 0; off < RegBytes; off += sz {
		v := op.Combine(elem.Load(t, a[:], off), elem.Load(t, b[:], off))
		elem.Store(t, out[:], off, v)
	}
	u.retire(1)
	return out
}

// FillIdentity returns a register whose every element of type t is the
// identity of op. One instruction (set/broadcast).
func (u *Unit) FillIdentity(t elem.Type, op elem.Op) Reg {
	var out Reg
	elem.Fill(t, out[:], op.Identity(t))
	u.retire(1)
	return out
}
